package sciview

import (
	"strings"
	"sync"
	"testing"
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := GenerateOilReservoir(OilReservoirSpec{
		Grid:         Dims{X: 16, Y: 16, Z: 4},
		LeftPart:     Dims{X: 4, Y: 4, Z: 4},
		RightPart:    Dims{X: 4, Y: 4, Z: 4},
		StorageNodes: 3,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(testDataset(t), ClusterSpec{ComputeNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetAlphas(100e-9, 50e-9) // skip calibration in tests
	return sys
}

func TestDatasetAccessors(t *testing.T) {
	ds := testDataset(t)
	if ds.StorageNodes() != 3 {
		t.Errorf("StorageNodes = %d", ds.StorageNodes())
	}
	tables := ds.Tables()
	if len(tables) != 2 {
		t.Fatalf("Tables = %v", tables)
	}
	schema, err := ds.TableSchema("T1")
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 4 || !schema[0].Coord || schema[3].Coord {
		t.Errorf("schema = %+v", schema)
	}
	if _, err := ds.TableSchema("nope"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	ds := testDataset(t)
	if _, err := NewSystem(ds, ClusterSpec{StorageNodes: 5}); err == nil {
		t.Error("storage node mismatch accepted")
	}
	sys, err := NewSystem(ds, ClusterSpec{}) // defaults: 3 storage (from ds), 1 compute
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
}

func TestEndToEndSQL(t *testing.T) {
	sys := testSystem(t)
	res, err := sys.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)")
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewCreated != "V1" {
		t.Errorf("res = %+v", res)
	}

	res, err = sys.Exec("SELECT * FROM V1 WHERE z = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.NumRows() != 16*16 {
		t.Errorf("rows = %d", res.Rows.NumRows())
	}
	if res.Plan == nil || res.Plan.Tuples != 256 || res.Plan.Engine == "" {
		t.Errorf("plan = %+v", res.Plan)
	}
	cols := res.Rows.Columns()
	if len(cols) != 5 || cols[4] != "wp" {
		t.Errorf("columns = %v", cols)
	}

	// Aggregation with grouping.
	res, err = sys.Exec("SELECT AVG(wp), COUNT(*) FROM V1 GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.NumRows() != 4 {
		t.Errorf("groups = %d", res.Rows.NumRows())
	}
	if c := res.Rows.Col("count"); c < 0 || res.Rows.Value(0, c) != 256 {
		t.Errorf("count column wrong")
	}
}

func TestForceEngine(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.ForceEngine("zzz"); err == nil {
		t.Error("bad engine name accepted")
	}
	for _, name := range []string{"gh", "ij"} {
		if err := sys.ForceEngine(name); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Exec("SELECT * FROM V1 WHERE z = 1")
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Engine != name || !res.Plan.Forced {
			t.Errorf("plan = %+v, want forced %s", res.Plan, name)
		}
	}
	if err := sys.ForceEngine(""); err != nil {
		t.Fatal(err)
	}
}

func TestExplain(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	info, err := sys.Explain("V1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Engine != "ij" && info.Engine != "gh" {
		t.Errorf("engine = %q", info.Engine)
	}
	if info.Measured != 0 {
		t.Error("Explain must not execute")
	}
	if _, err := sys.Explain("nope"); err == nil {
		t.Error("unknown view accepted")
	}
}

func TestTableRendering(t *testing.T) {
	sys := testSystem(t)
	res, err := sys.Exec("SELECT * FROM T1 WHERE x = 0 AND y = 0")
	if err != nil {
		t.Fatal(err)
	}
	s := res.Rows.String()
	if !strings.Contains(s, "oilp") {
		t.Errorf("render missing header:\n%s", s)
	}
	var sb strings.Builder
	n := res.Rows.WriteTo(&sb, 2)
	if n != 2 || !strings.Contains(sb.String(), "more rows") {
		t.Errorf("truncation wrong: n=%d %q", n, sb.String())
	}
	if res.Rows.NumCols() != 4 {
		t.Errorf("NumCols = %d", res.Rows.NumCols())
	}
	row := res.Rows.Row(0, nil)
	if len(row) != 4 {
		t.Errorf("Row = %v", row)
	}
}

func TestDatasetBuilder(t *testing.T) {
	b := NewDatasetBuilder(2)
	schema := Schema{{Name: "x", Coord: true}, {Name: "y", Coord: true}, {Name: "v"}}
	b.CreateTable("A", schema).CreateTable("B", schema)
	for n := 0; n < 2; n++ {
		var rowsA, rowsB [][]float32
		for i := 0; i < 8; i++ {
			x, y := float32(i%4), float32(i/4+2*n)
			rowsA = append(rowsA, []float32{x, y, float32(i)})
			rowsB = append(rowsB, []float32{x, y, float32(i) + 100})
		}
		b.AppendChunk("A", n, "rowmajor", rowsA)
		b.AppendChunk("B", n, "colmajor", rowsB)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(ds, ClusterSpec{ComputeNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetAlphas(100e-9, 50e-9)
	if _, err := sys.Exec("CREATE VIEW AB AS SELECT * FROM A JOIN B ON (x, y)"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec("SELECT * FROM AB")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.NumRows() != 16 {
		t.Errorf("rows = %d, want 16", res.Rows.NumRows())
	}
	// Matched values differ by 100 by construction.
	vi := res.Rows.Col("v")
	ri := res.Rows.Col("r_v")
	if vi < 0 || ri < 0 {
		t.Fatalf("columns = %v", res.Rows.Columns())
	}
	for r := 0; r < res.Rows.NumRows(); r++ {
		if res.Rows.Value(r, ri)-res.Rows.Value(r, vi) != 100 {
			t.Fatalf("row %d: v=%v r_v=%v", r, res.Rows.Value(r, vi), res.Rows.Value(r, ri))
		}
	}
}

func TestDatasetBuilderErrors(t *testing.T) {
	b := NewDatasetBuilder(1)
	b.AppendChunk("missing", 0, "", [][]float32{{1}})
	if _, err := b.Build(); err == nil {
		t.Error("chunk for missing table accepted")
	}
	b = NewDatasetBuilder(1)
	b.CreateTable("A", Schema{{Name: "x", Coord: true}})
	b.AppendChunk("A", 5, "", [][]float32{{1}})
	if _, err := b.Build(); err == nil {
		t.Error("bad node accepted")
	}
	b = NewDatasetBuilder(1)
	b.CreateTable("A", Schema{{Name: "x", Coord: true}})
	b.AppendChunk("A", 0, "", [][]float32{{1, 2}})
	if _, err := b.Build(); err == nil {
		t.Error("bad row arity accepted")
	}
	b = NewDatasetBuilder(1)
	b.CreateTable("A", Schema{{Name: "x", Coord: true}})
	b.AppendChunk("A", 0, "hdf5", [][]float32{{1}})
	if _, err := b.Build(); err == nil {
		t.Error("unknown format accepted")
	}
	b = NewDatasetBuilder(1)
	b.CreateTable("A", Schema{{Name: "v"}}) // no coordinates
	if _, err := b.Build(); err == nil {
		t.Error("coordinate-free table accepted")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", ExperimentSpec{Quick: true}); err == nil {
		t.Error("unknown figure accepted")
	}
	if len(Figures()) != 6 {
		t.Errorf("Figures() = %v", Figures())
	}
}

func TestRunExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	e, err := RunExperiment("fig6", ExperimentSpec{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig6" || len(e.Rows) < 2 {
		t.Errorf("experiment = %+v", e)
	}
	var sb strings.Builder
	e.Print(&sb)
	if !strings.Contains(sb.String(), "fig6") {
		t.Error("print missing id")
	}
}

func TestTCPSystemEndToEnd(t *testing.T) {
	sys, err := NewSystem(testDataset(t), ClusterSpec{ComputeNodes: 2, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.SetAlphas(100e-9, 50e-9)
	if _, err := sys.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	// The Indexed Join engine fetches every sub-table over real sockets.
	if err := sys.ForceEngine("ij"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec("SELECT COUNT(*) FROM V1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Tuples != 16*16*4 {
		t.Errorf("tuples over TCP = %d", res.Plan.Tuples)
	}
	if err := sys.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestSQLOrderLimitAndLayering(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z) WHERE z = 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec("CREATE VIEW corner AS SELECT * FROM V1 WHERE x BETWEEN 0 AND 1 AND y BETWEEN 0 AND 1"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec("SELECT * FROM corner ORDER BY x DESC, y LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Rows.NumRows())
	}
	// Descending x then ascending y over cells {0,1}²: (1,0), (1,1), (0,0).
	wantXY := [][2]float32{{1, 0}, {1, 1}, {0, 0}}
	for i, w := range wantXY {
		if res.Rows.Value(i, 0) != w[0] || res.Rows.Value(i, 1) != w[1] {
			t.Errorf("row %d = (%v,%v), want %v", i, res.Rows.Value(i, 0), res.Rows.Value(i, 1), w)
		}
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t)
	if err := SaveDataset(ds, dir); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.StorageNodes() != ds.StorageNodes() {
		t.Errorf("nodes = %d, want %d", re.StorageNodes(), ds.StorageNodes())
	}
	sys, err := NewSystem(re, ClusterSpec{ComputeNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetAlphas(100e-9, 50e-9)
	if _, err := sys.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec("SELECT COUNT(*) FROM V")
	if err != nil || res.Rows.Value(0, 0) != 16*16*4 {
		t.Errorf("reopened dataset join: %v count=%v", err, res.Rows.Value(0, 0))
	}
	// Open failures.
	if _, err := OpenDataset(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestExecutorProjectionPushdown(t *testing.T) {
	// The SQL layer pushes needed attributes down automatically; results
	// must match the unprojected query.
	sys := testSystem(t)
	if _, err := sys.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	agg, err := sys.Exec("SELECT AVG(wp) FROM V GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	star, err := sys.Exec("SELECT * FROM V")
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check one group average against the star output.
	wpCol := star.Rows.Col("wp")
	zCol := star.Rows.Col("z")
	var sum float64
	var n int
	for r := 0; r < star.Rows.NumRows(); r++ {
		if star.Rows.Value(r, zCol) == 0 {
			sum += float64(star.Rows.Value(r, wpCol))
			n++
		}
	}
	got := float64(agg.Rows.Value(0, 1))
	want := sum / float64(n)
	if got < want-1e-4 || got > want+1e-4 {
		t.Errorf("pushed-down AVG = %v, recomputed %v", got, want)
	}
}

func TestTraceSummaryFacade(t *testing.T) {
	sys := testSystem(t)
	if s := sys.TraceSummary(); s != "" {
		t.Errorf("summary before enable = %q", s)
	}
	sys.EnableTrace()
	if _, err := sys.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec("SELECT COUNT(*) FROM V"); err != nil {
		t.Fatal(err)
	}
	s := sys.TraceSummary()
	if !strings.Contains(s, "fetch") || !strings.Contains(s, "probe") {
		t.Errorf("summary missing kinds:\n%s", s)
	}
	// Summary reads-and-clears.
	if s2 := sys.TraceSummary(); !strings.Contains(s2, "0 events") {
		t.Errorf("second summary = %q", s2)
	}
}

func TestConcurrentQueriesSerialize(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	counts := make([]float32, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sys.Exec("SELECT COUNT(*) FROM V WHERE z = 0")
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = res.Rows.Value(0, 0)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if counts[i] != 256 {
			t.Errorf("query %d count = %v, want 256", i, counts[i])
		}
	}
}

func TestWriteCSV(t *testing.T) {
	sys := testSystem(t)
	res, err := sys.Exec("SELECT * FROM T1 WHERE x = 0 AND y = 0 ORDER BY z LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Rows.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "x,y,z,oilp" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,0,") || !strings.HasPrefix(lines[2], "0,0,1,") {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
}

func TestPaperNotationEndToEnd(t *testing.T) {
	// The paper's running query, verbatim shape:
	// SELECT * FROM T1 WHERE x IN [0, 256], y IN [0, 512] — with AND.
	sys := testSystem(t)
	res, err := sys.Exec("SELECT * FROM T1 WHERE x IN [0, 3] AND y IN [0, 1]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.NumRows() != 4*2*4 {
		t.Errorf("rows = %d, want 32", res.Rows.NumRows())
	}
}
