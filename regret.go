package sciview

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The regret harness closes the evaluation loop on the adaptive planner:
// it replays a golden SQL corpus under several cluster regimes, measures
// every query under BOTH engines on dedicated forced systems, and scores
// the planner's choices (static configuration layer vs the online-
// calibrated layer) against the measured-faster engine. Accuracy is the
// fraction of decisions that picked the faster engine; regret is the
// wall-clock time lost when they didn't.

// RegretSpec configures a regret replay.
type RegretSpec struct {
	// Quick trims the replay to one scenario and a short corpus (CI smoke).
	Quick bool
	// Seed overrides the dataset seed (default 2006).
	Seed int64
	// Out, when non-empty, also writes the report as indented JSON to this
	// path.
	Out string
}

// RegretQuery is one scored corpus query.
type RegretQuery struct {
	Scenario string `json:"scenario"`
	SQL      string `json:"sql"`
	// IJSeconds and GHSeconds are the engine times measured on the forced
	// reference systems; Faster names the measured winner.
	IJSeconds float64 `json:"ij_seconds"`
	GHSeconds float64 `json:"gh_seconds"`
	Faster    string  `json:"faster"`
	// Static and Adaptive are the engines the two planner layers chose;
	// AdaptiveCalibrated reports whether live constants actually displaced
	// the configuration for the adaptive decision.
	Static             string `json:"static"`
	Adaptive           string `json:"adaptive"`
	AdaptiveCalibrated bool   `json:"adaptive_calibrated"`
	// StaticCorrect / AdaptiveCorrect: the choice was the measured-faster
	// engine, or within the tie band of it (no meaningful regret).
	StaticCorrect   bool `json:"static_correct"`
	AdaptiveCorrect bool `json:"adaptive_correct"`
	// StaticRegret / AdaptiveRegret are seconds lost versus the faster
	// engine (zero when correct).
	StaticRegret   float64 `json:"static_regret_seconds"`
	AdaptiveRegret float64 `json:"adaptive_regret_seconds"`
}

// RegretReport is the replay's scorecard.
type RegretReport struct {
	Queries []RegretQuery `json:"queries"`
	Total   int           `json:"total"`
	// StaticCorrect / StaticAccuracy score the static configuration layer;
	// the Adaptive fields score the online-calibrated estimator.
	StaticCorrect    int     `json:"static_correct"`
	StaticAccuracy   float64 `json:"static_accuracy"`
	AdaptiveCorrect  int     `json:"adaptive_correct"`
	AdaptiveAccuracy float64 `json:"adaptive_accuracy"`
	// Total regret (seconds) accumulated by each layer, and the oracle's
	// total time (always the faster engine) for scale.
	StaticRegret   float64 `json:"static_regret_seconds"`
	AdaptiveRegret float64 `json:"adaptive_regret_seconds"`
	OracleSeconds  float64 `json:"oracle_seconds"`
}

// regretTieBand treats a decision as correct when its engine's measured
// time is within 10% of the faster engine's: below measurement noise the
// "wrong" choice carries no meaningful regret and scoring it as an error
// would make accuracy a coin flip on balanced scenarios.
const regretTieBand = 0.10

// regretScenario is one cluster regime of the replay. The throttles are
// chosen so different resources dominate and the measured-faster engine
// genuinely differs across scenarios.
type regretScenario struct {
	name string
	spec ClusterSpec
}

func regretScenarios(quick bool) []regretScenario {
	scenarios := []regretScenario{
		// Slow scratch disks: GH pays the partition spill, IJ does not.
		{"spill-bound", ClusterSpec{
			ComputeNodes: 2, DiskReadBw: 4 << 20, DiskWriteBw: 2 << 20,
		}},
		// Era CPU with free I/O: the per-edge lookup volume decides it.
		{"cpu-bound", ClusterSpec{
			ComputeNodes: 2, CPUSecPerOp: 2e-6,
		}},
	}
	if quick {
		return scenarios[:1]
	}
	scenarios = append(scenarios,
		// Both throttles at once: neither term vanishes from the models.
		regretScenario{"mixed", ClusterSpec{
			ComputeNodes: 3, DiskReadBw: 8 << 20, DiskWriteBw: 4 << 20, CPUSecPerOp: 1e-6,
		}},
	)
	return scenarios
}

func regretCorpus(quick bool) []string {
	corpus := []string{
		"SELECT COUNT(*) FROM V1",
		"SELECT * FROM V1 WHERE x BETWEEN 0 AND 7",
		"SELECT wp, oilp FROM V1 WHERE z = 1",
	}
	if quick {
		return corpus
	}
	return append(corpus,
		"SELECT x, AVG(wp) FROM V1 GROUP BY x ORDER BY x",
		"SELECT MIN(wp), MAX(oilp) FROM V1",
		"SELECT * FROM V1 WHERE x >= 4 AND y < 12",
	)
}

// regretSystem builds one system over ds with the given force mode
// ("ij"/"gh" pins the engine, "" adaptive, "static" adaptive layer off)
// and defines the corpus view.
func regretSystem(ds *Dataset, spec ClusterSpec, mode string) (*System, error) {
	sys, err := NewSystem(ds, spec)
	if err != nil {
		return nil, err
	}
	switch mode {
	case "static":
		sys.DisableCalibration()
	default:
		if err := sys.ForceEngine(mode); err != nil {
			return nil, err
		}
	}
	// Fixed α so the replay does not depend on the build host's one-shot
	// calibration; the adaptive system refines them from its own runs.
	sys.SetAlphas(80e-9, 40e-9)
	if _, err := sys.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		return nil, err
	}
	return sys, nil
}

func regretRun(sys *System, sql string) (seconds float64, plan *PlanInfo, err error) {
	res, err := sys.Exec(sql)
	if err != nil {
		return 0, nil, err
	}
	if res.Plan == nil {
		return 0, nil, fmt.Errorf("sciview: regret query %q produced no plan", sql)
	}
	return res.Plan.Measured.Seconds(), res.Plan, nil
}

// RunRegret replays the corpus under every scenario and scores both
// planner layers, printing the per-query table and summary to w and, when
// spec.Out is set, writing the report JSON there.
func RunRegret(spec RegretSpec, w io.Writer) (*RegretReport, error) {
	seed := spec.Seed
	if seed == 0 {
		seed = 2006
	}
	grid, left, right := Dims{16, 16, 8}, Dims{4, 4, 2}, Dims{2, 2, 4}
	if spec.Quick {
		grid = Dims{8, 8, 4}
	}
	rep := &RegretReport{}
	fmt.Fprintf(w, "%-12s %-44s %10s %10s %-6s %-10s %-10s\n",
		"scenario", "sql", "ij", "gh", "faster", "static", "adaptive")
	for _, sc := range regretScenarios(spec.Quick) {
		// Fresh dataset per scenario: each system keeps its own caches, so
		// forced timings stay comparable within a scenario.
		ds, err := GenerateOilReservoir(OilReservoirSpec{
			Grid: grid, LeftPart: left, RightPart: right,
			StorageNodes: 2, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		sysIJ, err := regretSystem(ds, sc.spec, "ij")
		if err != nil {
			return nil, err
		}
		sysGH, err := regretSystem(ds, sc.spec, "gh")
		if err != nil {
			return nil, err
		}
		sysAuto, err := regretSystem(ds, sc.spec, "")
		if err != nil {
			return nil, err
		}
		sysStatic, err := regretSystem(ds, sc.spec, "static")
		if err != nil {
			return nil, err
		}
		corpus := regretCorpus(spec.Quick)
		// Warmup: charge every system's caches once, and give the adaptive
		// estimator enough observed runs to graduate its live signals
		// before any scored decision.
		for _, sys := range []*System{sysIJ, sysGH, sysStatic} {
			if _, _, err := regretRun(sys, corpus[0]); err != nil {
				return nil, err
			}
		}
		for i := 0; i < 3; i++ {
			if _, _, err := regretRun(sysAuto, corpus[0]); err != nil {
				return nil, err
			}
		}
		for _, sql := range corpus {
			tIJ, _, err := regretRun(sysIJ, sql)
			if err != nil {
				return nil, err
			}
			tGH, _, err := regretRun(sysGH, sql)
			if err != nil {
				return nil, err
			}
			_, autoPlan, err := regretRun(sysAuto, sql)
			if err != nil {
				return nil, err
			}
			_, staticPlan, err := regretRun(sysStatic, sql)
			if err != nil {
				return nil, err
			}
			q := RegretQuery{
				Scenario: sc.name, SQL: sql,
				IJSeconds: tIJ, GHSeconds: tGH,
				Static:             staticPlan.Engine,
				Adaptive:           autoPlan.Engine,
				AdaptiveCalibrated: autoPlan.Calibrated,
			}
			faster, tFast := "ij", tIJ
			if tGH < tIJ {
				faster, tFast = "gh", tGH
			}
			q.Faster = faster
			score := func(choice string) (bool, float64) {
				tChoice := tIJ
				if choice == "gh" {
					tChoice = tGH
				}
				regret := tChoice - tFast
				return regret <= regretTieBand*tFast, regret
			}
			q.StaticCorrect, q.StaticRegret = score(q.Static)
			q.AdaptiveCorrect, q.AdaptiveRegret = score(q.Adaptive)
			rep.Queries = append(rep.Queries, q)
			rep.OracleSeconds += tFast
			fmt.Fprintf(w, "%-12s %-44s %9.2fms %9.2fms %-6s %-10s %-10s\n",
				sc.name, q.SQL, tIJ*1e3, tGH*1e3, faster,
				mark(q.Static, q.StaticCorrect), mark(q.Adaptive, q.AdaptiveCorrect))
		}
		sysIJ.Close()
		sysGH.Close()
		sysAuto.Close()
		sysStatic.Close()
	}
	rep.Total = len(rep.Queries)
	for _, q := range rep.Queries {
		if q.StaticCorrect {
			rep.StaticCorrect++
		}
		if q.AdaptiveCorrect {
			rep.AdaptiveCorrect++
		}
		rep.StaticRegret += q.StaticRegret
		rep.AdaptiveRegret += q.AdaptiveRegret
	}
	if rep.Total > 0 {
		rep.StaticAccuracy = float64(rep.StaticCorrect) / float64(rep.Total)
		rep.AdaptiveAccuracy = float64(rep.AdaptiveCorrect) / float64(rep.Total)
	}
	fmt.Fprintf(w, "\nstatic:   accuracy %d/%d = %.2f, regret %.2fms\n",
		rep.StaticCorrect, rep.Total, rep.StaticAccuracy, rep.StaticRegret*1e3)
	fmt.Fprintf(w, "adaptive: accuracy %d/%d = %.2f, regret %.2fms (oracle %.2fms)\n",
		rep.AdaptiveCorrect, rep.Total, rep.AdaptiveAccuracy, rep.AdaptiveRegret*1e3,
		rep.OracleSeconds*1e3)
	if spec.Out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(spec.Out, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "report written to %s\n", spec.Out)
	}
	return rep, nil
}

func mark(engine string, correct bool) string {
	if correct {
		return engine + " ✓"
	}
	return engine + " ✗"
}
