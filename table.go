package sciview

import (
	"fmt"
	"io"
	"strings"

	"sciview/internal/tuple"
)

// Table is a read-only result set: rows of float32 values under a schema.
type Table struct {
	st *tuple.SubTable
}

// Columns returns the column names in order.
func (t *Table) Columns() []string { return t.st.Schema.Names() }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.st.NumRows() }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return t.st.Schema.NumAttrs() }

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) float32 { return t.st.Value(row, col) }

// Row copies row `row` into dst (allocated if nil) and returns it.
func (t *Table) Row(row int, dst []float32) []float32 { return t.st.Row(row, dst) }

// Col returns the index of a named column, or -1.
func (t *Table) Col(name string) int { return t.st.Schema.Index(name) }

// WriteTo renders the table as aligned text, truncating after maxRows
// (<= 0 prints everything). It returns the number of rows printed.
func (t *Table) WriteTo(w io.Writer, maxRows int) int {
	cols := t.Columns()
	fmt.Fprintln(w, strings.Join(cols, "\t"))
	n := t.NumRows()
	printed := n
	if maxRows > 0 && n > maxRows {
		printed = maxRows
	}
	for r := 0; r < printed; r++ {
		parts := make([]string, len(cols))
		for c := range cols {
			parts[c] = fmt.Sprintf("%g", t.Value(r, c))
		}
		fmt.Fprintln(w, strings.Join(parts, "\t"))
	}
	if printed < n {
		fmt.Fprintf(w, "... (%d more rows)\n", n-printed)
	}
	return printed
}

// WriteCSV writes the table as RFC-4180-ish CSV (header row + data rows).
// Values render with %g. It returns any write error.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns(), ",")); err != nil {
		return err
	}
	cols := t.NumCols()
	for r := 0; r < t.NumRows(); r++ {
		parts := make([]string, cols)
		for c := 0; c < cols; c++ {
			parts[c] = fmt.Sprintf("%g", t.Value(r, c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// String renders up to 20 rows.
func (t *Table) String() string {
	var sb strings.Builder
	t.WriteTo(&sb, 20)
	return sb.String()
}
