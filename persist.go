package sciview

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"sciview/internal/metadata"
	"sciview/internal/simio"
)

// Dataset directory layout:
//
//	<dir>/catalog.gob    MetaData Service image
//	<dir>/node0/...      storage node 0's data files
//	<dir>/node1/...      ...
//
// SaveDataset writes a dataset (catalog and every node's objects) to dir,
// creating it if needed, so the command-line tools can operate on
// persistent datasets.
func SaveDataset(ds *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := ds.catalog.Save(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "catalog.gob"), buf.Bytes(), 0o644); err != nil {
		return err
	}
	for n, store := range ds.stores {
		fs, err := simio.NewFileStore(filepath.Join(dir, fmt.Sprintf("node%d", n)))
		if err != nil {
			return err
		}
		names, err := store.List()
		if err != nil {
			return err
		}
		for _, name := range names {
			data, err := store.ReadRange(name, 0, -1)
			if err != nil {
				return err
			}
			if err := fs.Put(name, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// OpenDataset loads a dataset previously written by SaveDataset (or
// generated directly into a directory). Chunk bytes stay on disk; only the
// catalog is loaded.
func OpenDataset(dir string) (*Dataset, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "catalog.gob"))
	if err != nil {
		return nil, fmt.Errorf("sciview: reading catalog: %w", err)
	}
	catalog := metadata.NewCatalog()
	if err := catalog.Load(bytes.NewReader(raw)); err != nil {
		return nil, err
	}
	var stores []simio.Store
	for n := 0; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("node%d", n))
		if _, err := os.Stat(p); err != nil {
			break
		}
		fs, err := simio.NewFileStore(p)
		if err != nil {
			return nil, err
		}
		stores = append(stores, fs)
	}
	if len(stores) == 0 {
		return nil, fmt.Errorf("sciview: no node directories under %s", dir)
	}
	return &Dataset{catalog: catalog, stores: stores}, nil
}
