package sciview

// Benchmarks regenerating the paper's evaluation. One benchmark per figure
// (the paper has no result tables beyond the parameter glossary of Table
// 1), each running the corresponding experiment sweep in its quick
// configuration and reporting headline metrics:
//
//	ij_first_s / gh_first_s — measured seconds at the sweep's first point
//	ij_last_s  / gh_last_s  — measured seconds at the sweep's last point
//	winner_flips            — 1 if the measured winner changes across the
//	                          sweep (the Figure 4 / Figure 8 crossover)
//	model_agree             — fraction of sweep points where the cost
//	                          model predicts the measured winner
//
// Run with: go test -bench=Fig -benchtime=1x
// Full-scale sweeps: cmd/sciview-bench (no -quick).

import (
	"testing"
	"time"
)

// TestServiceBenchShort drives the concurrent query service closed-loop
// for a moment — small enough for `go test -short`, and the hook that
// puts the service under the race detector when the root suite runs with
// -race. Every completed query must have run; the dedup counters must be
// consistent (shared fetches require at least one leader).
func TestServiceBenchShort(t *testing.T) {
	res, err := RunServiceBench(ServiceBenchSpec{
		Concurrency:  4,
		Duration:     500 * time.Millisecond,
		StorageNodes: 2,
		ComputeNodes: 2,
		Engine:       "ij",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed in the window")
	}
	if res.Stats.Completed < res.Queries {
		t.Errorf("stats completed %d < measured %d", res.Stats.Completed, res.Queries)
	}
	if res.Stats.Dedup.Shared > 0 && res.Stats.Dedup.Leads == 0 {
		t.Errorf("dedup counters inconsistent: %+v", res.Stats.Dedup)
	}
}

// TestServiceBenchShortSQL drives the same closed loop through the
// streaming plan layer (-sql mode): every client lowers, gets admitted on
// the plan's memory estimate and executes the operator DAG concurrently,
// which puts the shared executor and reorder sinks under the race
// detector.
func TestServiceBenchShortSQL(t *testing.T) {
	res, err := RunServiceBench(ServiceBenchSpec{
		Concurrency:  4,
		Duration:     500 * time.Millisecond,
		StorageNodes: 2,
		ComputeNodes: 2,
		Engine:       "ij",
		SQL:          "SELECT * FROM V1 WHERE x < 8 LIMIT 64",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no SQL queries completed in the window")
	}
	if res.Stats.Completed < res.Queries {
		t.Errorf("stats completed %d < measured %d", res.Stats.Completed, res.Queries)
	}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	var last *Experiment
	for i := 0; i < b.N; i++ {
		e, err := RunExperiment(id, ExperimentSpec{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		last = e
	}
	rows := last.Rows
	if len(rows) == 0 {
		b.Fatal("no rows")
	}
	first, end := rows[0], rows[len(rows)-1]
	b.ReportMetric(first.IJMeasured, "ij_first_s")
	b.ReportMetric(first.GHMeasured, "gh_first_s")
	b.ReportMetric(end.IJMeasured, "ij_last_s")
	b.ReportMetric(end.GHMeasured, "gh_last_s")
	flips := 0.0
	if winner(first.IJMeasured, first.GHMeasured) != winner(end.IJMeasured, end.GHMeasured) {
		flips = 1
	}
	b.ReportMetric(flips, "winner_flips")
	agree := 0
	for _, r := range rows {
		if winner(r.IJMeasured, r.GHMeasured) == winner(r.IJModel, r.GHModel) {
			agree++
		}
	}
	b.ReportMetric(float64(agree)/float64(len(rows)), "model_agree")
}

func winner(ij, gh float64) string {
	if ij <= gh {
		return "ij"
	}
	return "gh"
}

// BenchmarkFig4_VaryNeCs regenerates Figure 4: execution time versus the
// dataset parameter n_e·c_S at constant grid size and edge ratio. Expected
// shape: IJ grows, GH flat, measured and modeled crossover agree.
func BenchmarkFig4_VaryNeCs(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig5_VaryComputeNodes regenerates Figure 5: both algorithms
// versus the number of compute nodes on a low-n_e·c_S dataset. Expected
// shape: both drop with n_j, IJ wins, gap shrinks as 1/n_j.
func BenchmarkFig5_VaryComputeNodes(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6_VaryTuples regenerates Figure 6: both algorithms versus T.
// Expected shape: linear scaling for both; the gap grows linearly.
func BenchmarkFig6_VaryTuples(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7_VaryAttributes regenerates Figure 7: both algorithms
// versus the number of 4-byte attributes. Expected shape: both grow with
// record size; GH's slope is steeper (bucket write+read).
func BenchmarkFig7_VaryAttributes(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8_ComputePower regenerates Figure 8: the effect of compute
// power (scaled per-op CPU cost). Expected shape: rising compute power
// favors IJ, which overtakes GH.
func BenchmarkFig8_ComputePower(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9_SharedFS regenerates Figure 9: a single NFS-like server
// performs all I/O. Expected shape: GH suffers far more than IJ and
// degrades as compute nodes are added.
func BenchmarkFig9_SharedFS(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkJoinEngines measures raw engine throughput (tuples/second,
// unthrottled cluster) for both QES implementations on a mid-size dataset,
// independent of the figure sweeps.
func BenchmarkJoinEngines(b *testing.B) {
	ds, err := GenerateOilReservoir(OilReservoirSpec{
		Grid:         Dims{X: 64, Y: 64, Z: 16},
		LeftPart:     Dims{X: 16, Y: 16, Z: 8},
		RightPart:    Dims{X: 8, Y: 8, Z: 8},
		StorageNodes: 4,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []string{"ij", "gh"} {
		b.Run(engine, func(b *testing.B) {
			sys, err := NewSystem(ds, ClusterSpec{ComputeNodes: 4})
			if err != nil {
				b.Fatal(err)
			}
			sys.SetAlphas(100e-9, 50e-9)
			if err := sys.ForceEngine(engine); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Exec(`CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var tuples int64
			for i := 0; i < b.N; i++ {
				res, err := sys.Exec(`SELECT COUNT(*) FROM V`)
				if err != nil {
					b.Fatal(err)
				}
				tuples += res.Plan.Tuples
			}
			b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkSQLParse measures the query front end.
func BenchmarkSQLParse(b *testing.B) {
	ds, err := GenerateOilReservoir(OilReservoirSpec{
		Grid:         Dims{X: 8, Y: 8, Z: 4},
		LeftPart:     Dims{X: 4, Y: 4, Z: 4},
		RightPart:    Dims{X: 4, Y: 4, Z: 4},
		StorageNodes: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(ds, ClusterSpec{ComputeNodes: 1})
	if err != nil {
		b.Fatal(err)
	}
	sys.SetAlphas(100e-9, 50e-9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Exec(`SELECT MAX(oilp) FROM T1 WHERE x BETWEEN 0 AND 3 AND z = 0`); err != nil {
			b.Fatal(err)
		}
	}
}
