// Package sciview provides efficient object-relational views over
// scientific datasets stored as flat-file chunks distributed across storage
// nodes, reproducing the system of Narayanan, Kurc, Catalyurek and Saltz,
// "On Creating Efficient Object-relational Views of Scientific Datasets"
// (ICPP 2006).
//
// Scientific datasets — simulation outputs, sensor captures, imagery — are
// kept in application-specific flat files, not in a DBMS, because ingestion
// at terabyte scale is prohibitive. sciview layers an object-relational
// view on top of the files instead:
//
//   - Basic Data Sources (BDS) interpret file chunks as sub-tables using
//     registered extractor functions (row-major, column-major, CSV, or
//     custom layouts).
//   - Derived Data Sources (DDS) provide join-based views, range
//     selection, projection and aggregation over BDS tables.
//   - A MetaData Service resolves range predicates to chunks with an
//     R-tree over chunk bounding boxes.
//   - Two distributed join engines execute view queries: the page-level
//     Indexed Join (IJ), which schedules connected components of the
//     sub-table connectivity graph across compute nodes, and Grace Hash
//     (GH), which repartitions records into spill buckets.
//   - A Query Planning Service picks the engine using the paper's cost
//     models, calibrated to the host.
//
// The package runs against an emulated cluster — storage and compute nodes
// as goroutines with modeled disk, network and CPU resources — so the
// performance trade-offs of the paper (Figures 4–9) are reproducible on a
// single machine. See the examples directory for end-to-end usage and
// cmd/sciview-bench for the experiment harness.
//
// Quick start:
//
//	ds, _ := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
//		Grid: sciview.Dims{X: 32, Y: 32, Z: 8},
//		LeftPart: sciview.Dims{X: 8, Y: 8, Z: 8},
//		RightPart: sciview.Dims{X: 8, Y: 8, Z: 8},
//		StorageNodes: 4,
//	})
//	sys, _ := sciview.NewSystem(ds, sciview.ClusterSpec{StorageNodes: 4, ComputeNodes: 2})
//	sys.Exec(`CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`)
//	res, _ := sys.Exec(`SELECT AVG(wp) FROM V1 WHERE x BETWEEN 0 AND 15 GROUP BY z`)
package sciview
