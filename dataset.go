package sciview

import (
	"fmt"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/metadata"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/simio"
	"sciview/internal/tuple"
)

// Dims is a 3-D extent in grid cells.
type Dims struct {
	X, Y, Z int
}

func (d Dims) internal() partition.Dims { return partition.D(d.X, d.Y, d.Z) }

// Attr declares one attribute of a virtual table. Coordinate attributes
// define the dataset's spatial embedding and are the usual join and
// partitioning keys.
type Attr struct {
	Name  string
	Coord bool
}

// Schema is an ordered attribute list. All attributes are 4-byte values.
type Schema []Attr

func (s Schema) internal() tuple.Schema {
	attrs := make([]tuple.Attr, len(s))
	for i, a := range s {
		kind := tuple.Measure
		if a.Coord {
			kind = tuple.Coord
		}
		attrs[i] = tuple.Attr{Name: a.Name, Kind: kind}
	}
	return tuple.NewSchema(attrs...)
}

func publicSchema(s tuple.Schema) Schema {
	out := make(Schema, s.NumAttrs())
	for i, a := range s.Attrs {
		out[i] = Attr{Name: a.Name, Coord: a.Kind == tuple.Coord}
	}
	return out
}

// Dataset is a registered collection of virtual tables: a chunk catalog
// plus one object store per storage node holding the flat-file bytes.
type Dataset struct {
	catalog *metadata.Catalog
	stores  []simio.Store
}

// StorageNodes returns the number of storage nodes the dataset spans.
func (d *Dataset) StorageNodes() int { return len(d.stores) }

// Replicate raises every chunk to `copies` total placements (primary
// included), copying chunk bytes to the following nodes round-robin and
// registering the placements with the MetaData Service. copies is clamped
// to the node count; values < 2 are a no-op. With R copies, fetches
// survive R−1 storage-node failures.
func (d *Dataset) Replicate(copies int) error {
	return oilres.Replicate(d.catalog, d.stores, copies)
}

// Tables returns the names of the dataset's virtual tables.
func (d *Dataset) Tables() []string {
	defs := d.catalog.Tables()
	names := make([]string, 0, len(defs))
	for _, def := range defs {
		names = append(names, def.Name)
	}
	return names
}

// TableSchema returns a table's schema.
func (d *Dataset) TableSchema(name string) (Schema, error) {
	def, err := d.catalog.Table(name)
	if err != nil {
		return nil, err
	}
	return publicSchema(def.Schema), nil
}

// OilReservoirSpec configures the synthetic oil-reservoir-study dataset
// generator: two tables (default T1(x,y,z,oilp) and T2(x,y,z,wp)) covering
// the same grid with independent regular partitionings, distributed
// block-cyclically across storage nodes.
type OilReservoirSpec struct {
	Grid          Dims
	LeftPart      Dims
	RightPart     Dims
	LeftName      string   // default "T1"
	RightName     string   // default "T2"
	LeftMeasures  []string // default ["oilp"]
	RightMeasures []string // default ["wp"]
	StorageNodes  int      // default 1
	Format        string   // chunk layout: "rowmajor" (default), "colmajor", "csv"
	Seed          int64
	// Replicas is the total number of placements per chunk (primary
	// included), clamped to StorageNodes; < 2 means no replication. With
	// R ≥ 2 the cluster's fetch path survives R−1 storage-node failures.
	Replicas int
}

func (spec OilReservoirSpec) internal() oilres.Config {
	return oilres.Config{
		Grid:          spec.Grid.internal(),
		LeftPart:      spec.LeftPart.internal(),
		RightPart:     spec.RightPart.internal(),
		LeftName:      spec.LeftName,
		RightName:     spec.RightName,
		LeftMeasures:  spec.LeftMeasures,
		RightMeasures: spec.RightMeasures,
		StorageNodes:  spec.StorageNodes,
		Format:        spec.Format,
		Seed:          spec.Seed,
		Replicas:      spec.Replicas,
	}
}

// GenerateOilReservoir builds the synthetic dataset in memory.
func GenerateOilReservoir(spec OilReservoirSpec) (*Dataset, error) {
	ds, err := oilres.Generate(spec.internal())
	if err != nil {
		return nil, err
	}
	return &Dataset{catalog: ds.Catalog, stores: ds.Stores}, nil
}

// DatasetBuilder assembles a custom dataset: declare tables, then append
// chunks of records. Chunks are laid out in a registered flat-file format,
// written to the owning node's store, and registered with the MetaData
// Service (location, size, schema, bounding box).
type DatasetBuilder struct {
	catalog *metadata.Catalog
	stores  []simio.Store
	offsets map[string]int64
	err     error
}

// NewDatasetBuilder starts a dataset spanning the given number of storage
// nodes.
func NewDatasetBuilder(storageNodes int) *DatasetBuilder {
	if storageNodes < 1 {
		storageNodes = 1
	}
	stores := make([]simio.Store, storageNodes)
	for i := range stores {
		stores[i] = simio.NewMemStore()
	}
	return &DatasetBuilder{
		catalog: metadata.NewCatalog(),
		stores:  stores,
		offsets: make(map[string]int64),
	}
}

// CreateTable declares a virtual table. The schema needs at least one
// coordinate attribute.
func (b *DatasetBuilder) CreateTable(name string, schema Schema) *DatasetBuilder {
	if b.err != nil {
		return b
	}
	_, b.err = b.catalog.CreateTable(name, schema.internal())
	return b
}

// AppendChunk adds one chunk of records to a table on the given storage
// node. Each row must have one value per schema attribute. format names a
// registered chunk layout ("rowmajor", "colmajor", "csv"; "" = rowmajor).
func (b *DatasetBuilder) AppendChunk(table string, node int, format string, rows [][]float32) *DatasetBuilder {
	if b.err != nil {
		return b
	}
	if node < 0 || node >= len(b.stores) {
		b.err = fmt.Errorf("sciview: node %d out of range (0..%d)", node, len(b.stores)-1)
		return b
	}
	if format == "" {
		format = "rowmajor"
	}
	def, err := b.catalog.Table(table)
	if err != nil {
		b.err = err
		return b
	}
	ex, err := chunk.Lookup(format)
	if err != nil {
		b.err = err
		return b
	}
	st := tuple.NewSubTable(tuple.ID{Table: def.ID}, def.Schema, len(rows))
	for i, row := range rows {
		if len(row) != def.Schema.NumAttrs() {
			b.err = fmt.Errorf("sciview: row %d has %d values for %d attributes", i, len(row), def.Schema.NumAttrs())
			return b
		}
		st.AppendRow(row...)
	}
	data, err := ex.Encode(st)
	if err != nil {
		b.err = err
		return b
	}
	object := fmt.Sprintf("%s/node%d.dat", table, node)
	key := fmt.Sprintf("%d/%s", node, object)
	if err := b.stores[node].Append(object, data); err != nil {
		b.err = err
		return b
	}
	bounds := st.Bounds()
	desc := &chunk.Desc{
		Object: object,
		Offset: b.offsets[key],
		Size:   int64(len(data)),
		Node:   node,
		Format: format,
		Attrs:  def.Schema.Attrs,
		Rows:   st.NumRows(),
		Bounds: bbox.New(bounds.Lo, bounds.Hi),
	}
	b.offsets[key] += int64(len(data))
	if _, err := b.catalog.AddChunk(def.ID, desc); err != nil {
		b.err = err
	}
	return b
}

// Build finalizes the dataset.
func (b *DatasetBuilder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	return &Dataset{catalog: b.catalog, stores: b.stores}, nil
}
