package sciview

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sciview/internal/engine"
	"sciview/internal/metrics"
	"sciview/internal/planner"
	"sciview/internal/service"
	"sciview/internal/transport"
)

// DefaultPrefetch re-exports engine.DefaultPrefetch so command-line tools
// outside internal/ can use it as their flag default.
const DefaultPrefetch = engine.DefaultPrefetch

// ServiceBenchSpec configures the closed-loop multi-client benchmark of
// the concurrent query service: Concurrency workers each submit the same
// join-view query back-to-back for Duration, exercising admission
// control, shared caches and the fetch deduplicator under load.
type ServiceBenchSpec struct {
	// Concurrency is the number of closed-loop clients (default 8).
	Concurrency int
	// Duration bounds the measurement window (default 5s).
	Duration time.Duration
	// MaxInFlight is the service's execution-slot count (default =
	// Concurrency); MemoryBudget is its working-set budget (0 =
	// unlimited).
	MaxInFlight  int
	MemoryBudget int64
	// StorageNodes/ComputeNodes size the emulated cluster (default 4/4).
	StorageNodes int
	ComputeNodes int
	// Engine forces "ij" or "gh" ("" = cost-model choice).
	Engine string
	// Wire selects the fetch codec: "" or "rowmajor" for decoded
	// sub-tables, "colenc" for compressed columnar frames.
	Wire string
	// Seed varies the dataset (default 2006).
	Seed int64
	// Replicas places each chunk on this many storage nodes (default 1 =
	// no replication), enabling failover under injected faults.
	Replicas int
	// Faults is a deterministic chaos schedule (see internal/fault.Parse),
	// e.g. "crash:storage-1:fetch:20". Empty disables injection.
	Faults string
	// Prefetch is the IJ joiner lookahead depth applied to every query
	// (0 = disabled); Parallelism bounds the hash-join kernel workers
	// (0 = all CPUs, 1 = serial).
	Prefetch    int
	Parallelism int
	// SQL, when set, makes every client submit this statement through the
	// streaming plan layer (service.SubmitSQL) instead of the raw join
	// request, so admission charges the plan's per-operator resident-set
	// bound. The statement may reference T1, T2 and the predefined join
	// view V1 (T1 ⋈ T2 on x, y, z), e.g.
	// "SELECT * FROM V1 WHERE x < 8 LIMIT 64".
	SQL string
	// IngestSteps, when > 0, makes this an ingest-while-querying run: the
	// dataset is generated with that many time-step slabs withheld, and an
	// ingest goroutine commits them spread evenly across the measurement
	// window while the clients query. The grid's Z axis grows by one slab
	// (8 cells) per step so the base dataset the clients start on keeps
	// its usual size. After every commit a pinned auditor re-submits the
	// benchmark join pinned to the pre-ingest dataset version and verifies
	// its cardinality never changes — the snapshot-isolation invariant
	// under live load.
	IngestSteps int
	// MetricsAddr, when set, instruments the whole stack with a live
	// metrics registry, serves it (Prometheus text format on /metrics,
	// pprof on /debug/pprof/) at this address for the duration of the run,
	// and appends a registry snapshot to the report. ":0" picks a free
	// port. Empty disables instrumentation entirely.
	MetricsAddr string
	// RepairInterval, when > 0, runs the self-healing repair tier for the
	// duration of the run: node lifecycle tracking, catch-up replay for
	// storage nodes revived by a restart fault rule, and anti-entropy
	// re-replication sweeps at this period. Its counters join the report.
	RepairInterval time.Duration
	// RepairBw caps repair copy traffic in bytes/second (0 = uncapped).
	RepairBw float64
}

// ServiceBenchResult reports one benchmark run.
type ServiceBenchResult struct {
	Queries    int64
	Throughput float64 // completed queries per second
	LatMean    time.Duration
	LatP50     time.Duration
	LatP95     time.Duration
	LatMax     time.Duration
	QueueMean  time.Duration
	// Failed counts queries that errored mid-run (injected faults past the
	// cluster's tolerance); Refused counts submissions turned away at
	// admission (queue full, or the window closing mid-drain). Neither ends
	// a worker: clients carry on to the next query.
	Failed  int64
	Refused int64
	Stats   service.Stats
	// Ingest-while-querying accounting (IngestSteps > 0): batches
	// committed, the dataset version the run ended at, and the pinned
	// auditor's checks/violations (a violation means a reader pinned to
	// the pre-ingest version observed an appended batch — must be 0).
	IngestAppends    int64
	FinalVersion     int64
	PinnedChecks     int64
	PinnedViolations int64
}

// RunServiceBench generates a mid-size dataset, stands up the concurrent
// query service over an unthrottled cluster, and drives it closed-loop.
func RunServiceBench(spec ServiceBenchSpec, w io.Writer) (*ServiceBenchResult, error) {
	if spec.Concurrency <= 0 {
		spec.Concurrency = 8
	}
	if spec.Duration <= 0 {
		spec.Duration = 5 * time.Second
	}
	if spec.MaxInFlight <= 0 {
		spec.MaxInFlight = spec.Concurrency
	}
	if spec.StorageNodes <= 0 {
		spec.StorageNodes = 4
	}
	if spec.ComputeNodes <= 0 {
		spec.ComputeNodes = 4
	}
	if spec.Seed == 0 {
		spec.Seed = 2006
	}
	dspec := OilReservoirSpec{
		Grid:         Dims{X: 32, Y: 32, Z: 16 + 8*spec.IngestSteps},
		LeftPart:     Dims{X: 8, Y: 8, Z: 8},
		RightPart:    Dims{X: 8, Y: 8, Z: 8},
		StorageNodes: spec.StorageNodes,
		Seed:         spec.Seed,
		Replicas:     spec.Replicas,
	}
	var (
		ds      *Dataset
		batches []*Batch
		err     error
	)
	if spec.IngestSteps > 0 {
		ds, batches, err = GenerateOilReservoirSteps(dspec, spec.IngestSteps)
	} else {
		ds, err = GenerateOilReservoir(dspec)
	}
	if err != nil {
		return nil, err
	}
	var reg *metrics.Registry
	if spec.MetricsAddr != "" {
		reg = metrics.NewRegistry()
		transport.WireMetrics(reg)
	}
	sys, err := NewSystem(ds, ClusterSpec{ComputeNodes: spec.ComputeNodes, Wire: spec.Wire, Faults: spec.Faults, Metrics: reg})
	if err != nil {
		return nil, err
	}
	svc := service.New(sys.Cluster(), service.Config{
		MaxInFlight:  spec.MaxInFlight,
		MemoryBudget: spec.MemoryBudget,
		Force:        spec.Engine,
		Metrics:      reg,
	})
	defer svc.Close()
	if spec.RepairInterval > 0 {
		rep, err := sys.Repair(spec.Replicas, spec.RepairInterval, spec.RepairBw)
		if err != nil {
			return nil, err
		}
		rep.Start()
		defer rep.Stop()
		svc.AttachRepair(rep)
	}
	if reg != nil {
		closer, addr, err := metrics.Serve(spec.MetricsAddr, reg)
		if err != nil {
			return nil, fmt.Errorf("sciview: metrics listener: %w", err)
		}
		defer closer.Close()
		if w != nil {
			fmt.Fprintf(w, "metrics: http://%s/metrics (pprof on /debug/pprof/)\n", addr)
		}
	}

	query := service.Query{Req: engine.Request{
		LeftTable: "T1", RightTable: "T2", JoinAttrs: []string{"x", "y", "z"},
		Prefetch: spec.Prefetch, Parallelism: spec.Parallelism,
	}}
	var ex *planner.Executor
	if spec.SQL != "" {
		ex = svc.Executor()
		if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
			return nil, err
		}
		if _, err := ex.Lower(spec.SQL); err != nil {
			return nil, fmt.Errorf("sciview: -sql statement does not plan: %w", err)
		}
	}
	// Ingest-while-querying: baseline the pinned auditor before anything
	// can append — the version every later pinned submission re-reads at.
	var (
		ingestor   *Ingestor
		pinned     service.Query
		pinnedWant int64
	)
	if spec.IngestSteps > 0 {
		if ingestor, err = sys.Ingestor(spec.Replicas); err != nil {
			return nil, err
		}
		pinned = query
		pinned.Req.AsOf = sys.DatasetVersion()
		resp, err := svc.Submit(context.Background(), pinned)
		if err != nil {
			return nil, fmt.Errorf("sciview: pinned baseline query: %w", err)
		}
		pinnedWant = resp.Result.Tuples
	}

	ctx, cancel := context.WithTimeout(context.Background(), spec.Duration)
	defer cancel()

	var mu sync.Mutex
	var lats, waits []time.Duration
	var failed, refused int64
	var ingestAppends, pinnedChecks, pinnedViolations int64
	var wg sync.WaitGroup
	for c := 0; c < spec.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				start := time.Now()
				var resp *service.Response
				var err error
				if ex != nil {
					resp, err = svc.SubmitSQL(ctx, ex, service.SQL{Query: spec.SQL})
				} else {
					resp, err = svc.Submit(ctx, query)
				}
				switch {
				case err == nil:
					mu.Lock()
					lats = append(lats, time.Since(start))
					waits = append(waits, resp.QueueWait)
					mu.Unlock()
				case ctx.Err() != nil:
					return // window closed mid-query
				case errors.Is(err, service.ErrClosed), errors.Is(err, service.ErrQueueFull):
					// Turned away at admission; a fault-free service only
					// refuses while draining, so keep the worker alive.
					mu.Lock()
					refused++
					mu.Unlock()
				default:
					// A query failed outright (faults past the cluster's
					// tolerance). The service and cluster are still up —
					// the next query may well succeed.
					mu.Lock()
					failed++
					mu.Unlock()
				}
			}
		}()
	}
	if spec.IngestSteps > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			interval := spec.Duration / time.Duration(len(batches)+1)
			for _, b := range batches {
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
				}
				if _, err := ingestor.Append(b); err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				mu.Lock()
				ingestAppends++
				mu.Unlock()
				// The isolation audit: a reader pinned to the pre-ingest
				// version must reproduce its baseline cardinality no matter
				// how many batches have landed.
				resp, err := svc.Submit(ctx, pinned)
				if err != nil {
					continue // window closing or admission refusal
				}
				mu.Lock()
				pinnedChecks++
				if resp.Result.Tuples != pinnedWant {
					pinnedViolations++
				}
				mu.Unlock()
			}
		}()
	}
	benchStart := time.Now()
	wg.Wait()
	elapsed := time.Since(benchStart)

	res := &ServiceBenchResult{
		Queries:          int64(len(lats)),
		Failed:           failed,
		Refused:          refused,
		Stats:            svc.Stats(),
		IngestAppends:    ingestAppends,
		FinalVersion:     sys.DatasetVersion(),
		PinnedChecks:     pinnedChecks,
		PinnedViolations: pinnedViolations,
	}
	if len(lats) > 0 {
		res.Throughput = float64(len(lats)) / elapsed.Seconds()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum, wsum time.Duration
		for _, l := range lats {
			sum += l
		}
		for _, qw := range waits {
			wsum += qw
		}
		res.LatMean = sum / time.Duration(len(lats))
		res.LatP50 = lats[len(lats)/2]
		res.LatP95 = lats[len(lats)*95/100]
		res.LatMax = lats[len(lats)-1]
		res.QueueMean = wsum / time.Duration(len(waits))
	}
	if w != nil {
		res.Print(w, spec)
		if reg != nil {
			fmt.Fprintln(w, "  metrics snapshot:")
			for _, s := range reg.Snapshot() {
				if s.IsHist {
					fmt.Fprintf(w, "    %-44s count %.0f sum %.6g\n", s.Name, s.Value, s.Sum)
					continue
				}
				fmt.Fprintf(w, "    %-44s %g\n", s.Name, s.Value)
			}
		}
	}
	return res, nil
}

// Print renders the result as aligned text.
func (r *ServiceBenchResult) Print(w io.Writer, spec ServiceBenchSpec) {
	fmt.Fprintf(w, "service bench: %d clients, %d slots, %v window\n",
		spec.Concurrency, spec.MaxInFlight, spec.Duration)
	if spec.SQL != "" {
		fmt.Fprintf(w, "  workload    %s (streaming plan per submission)\n", spec.SQL)
	}
	fmt.Fprintf(w, "  completed   %d queries (%.1f q/s)\n", r.Queries, r.Throughput)
	fmt.Fprintf(w, "  latency     mean %v  p50 %v  p95 %v  max %v\n",
		r.LatMean.Round(time.Microsecond), r.LatP50.Round(time.Microsecond),
		r.LatP95.Round(time.Microsecond), r.LatMax.Round(time.Microsecond))
	fmt.Fprintf(w, "  queue wait  mean %v\n", r.QueueMean.Round(time.Microsecond))
	if r.Failed > 0 || r.Refused > 0 {
		fmt.Fprintf(w, "  errors      %d failed, %d refused at admission\n", r.Failed, r.Refused)
	}
	if spec.IngestSteps > 0 {
		fmt.Fprintf(w, "  ingest      %d batches committed mid-run (dataset version %d); pinned audits %d, violations %d\n",
			r.IngestAppends, r.FinalVersion, r.PinnedChecks, r.PinnedViolations)
	}
	h := r.Stats.Health
	if h.Retries+h.Failovers+h.BreakerTrips+h.Recoveries+h.Rebuilds > 0 {
		fmt.Fprintf(w, "  recovery    %d retries, %d failovers, %d breaker trips, %d node recoveries, %d group rebuilds\n",
			h.Retries, h.Failovers, h.BreakerTrips, h.Recoveries, h.Rebuilds)
	}
	if rp := r.Stats.Repair; spec.RepairInterval > 0 {
		fmt.Fprintf(w, "  repair      %d catch-ups, %d chunks (%d bytes) re-replicated, %d objects rebuilt, %d under-replicated\n",
			rp.CatchUps, rp.ChunksRepaired, rp.BytesRepaired, rp.ObjectsRebuilt, rp.UnderReplicated)
		fmt.Fprintf(w, "  nodes       states %v, versions behind %v\n", rp.NodeStates, rp.VersionsBehind)
	}
	fmt.Fprintf(w, "  %s\n", r.Stats)
}
