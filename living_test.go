package sciview

import (
	"testing"
)

func livingSpec() OilReservoirSpec {
	return OilReservoirSpec{
		Grid:     Dims{8, 8, 16},
		LeftPart: Dims{4, 4, 2}, RightPart: Dims{2, 2, 4},
		StorageNodes: 2, Seed: 5,
	}
}

// TestLivingDataset drives the public API end to end: generate with
// withheld time steps, save/load the batch files, materialize a view,
// append while a pinned statement's result is held, and refresh
// incrementally.
func TestLivingDataset(t *testing.T) {
	ds, batches, err := GenerateOilReservoirSteps(livingSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}

	dir := t.TempDir()
	if err := SaveBatches(dir, batches); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBatches(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(batches) {
		t.Fatalf("loaded %d batches, want %d", len(loaded), len(batches))
	}
	for i := range loaded {
		if loaded[i].Step() != batches[i].Step() || loaded[i].NumChunks() != batches[i].NumChunks() {
			t.Fatalf("batch %d roundtrip mismatch", i)
		}
	}

	sys, err := NewSystem(ds, ClusterSpec{ComputeNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if v := sys.DatasetVersion(); v != 1 {
		t.Fatalf("initial version = %d, want 1", v)
	}
	if _, err := sys.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	lv, err := sys.MaterializeView("V1")
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	base, baseVer := lv.Rows()
	if baseVer != 1 {
		t.Fatalf("view materialized at version %d, want 1", baseVer)
	}

	before, err := sys.Exec("SELECT COUNT(*) FROM V1")
	if err != nil {
		t.Fatal(err)
	}

	ing, err := sys.Ingestor(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range loaded {
		v, err := ing.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(i + 2); v != want {
			t.Fatalf("append %d committed version %d, want %d", i, v, want)
		}
	}
	if !lv.Stale() {
		t.Fatal("view not stale after intersecting appends")
	}
	if _, err := lv.Refresh(); err != nil {
		t.Fatal(err)
	}
	grown, grownVer := lv.Rows()
	if grownVer != 3 {
		t.Fatalf("refreshed view at version %d, want 3", grownVer)
	}
	if grown.NumRows() <= base.NumRows() {
		t.Fatalf("refresh did not grow the view: %d rows vs %d", grown.NumRows(), base.NumRows())
	}
	if _, err := lv.RefreshFull(); err != nil {
		t.Fatal(err)
	}
	oracle, _ := lv.Rows()
	if oracle.NumRows() != grown.NumRows() {
		t.Fatalf("delta view has %d rows, full recompute %d", grown.NumRows(), oracle.NumRows())
	}

	after, err := sys.Exec("SELECT COUNT(*) FROM V1")
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows.Value(0, 0) <= before.Rows.Value(0, 0) {
		t.Fatalf("post-append COUNT(*) = %v, want > pre-append %v",
			after.Rows.Value(0, 0), before.Rows.Value(0, 0))
	}
}
