package sciview

import (
	"fmt"
	"io"

	"sciview/internal/harness"
)

// ExperimentSpec configures a reproduction of one of the paper's figures.
// The zero value uses the standard configuration (5 storage + 5 compute
// nodes, IDE-era disk/network bandwidths, PIII-era per-op CPU cost).
type ExperimentSpec struct {
	// Quick trims sweeps to a few sub-second points (for CI).
	Quick bool
	// StorageNodes/ComputeNodes override the 5+5 default.
	StorageNodes int
	ComputeNodes int
	// Seed overrides the dataset seed.
	Seed int64
}

func (s ExperimentSpec) config() harness.Config {
	var cfg harness.Config
	if s.Quick {
		cfg = harness.Quick()
	} else {
		cfg = harness.Defaults()
	}
	if s.StorageNodes > 0 {
		cfg.StorageNodes = s.StorageNodes
	}
	if s.ComputeNodes > 0 {
		cfg.ComputeNodes = s.ComputeNodes
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	return cfg
}

// ExperimentRow is one sweep point: measured and model-predicted execution
// times (seconds) for both join engines.
type ExperimentRow struct {
	Label      string
	X          float64
	IJMeasured float64
	GHMeasured float64
	IJModel    float64
	GHModel    float64
}

// Experiment is one regenerated figure.
type Experiment struct {
	ID    string
	Title string
	XName string
	Rows  []ExperimentRow
	Notes []string
}

// Figures lists the reproducible experiment ids, in paper order.
func Figures() []string {
	return []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
}

// RunExperiment regenerates one figure of the paper's evaluation.
func RunExperiment(id string, spec ExperimentSpec) (*Experiment, error) {
	cfg := spec.config()
	var (
		e   *harness.Experiment
		err error
	)
	switch id {
	case "fig4":
		e, err = harness.Fig4(cfg)
	case "fig5":
		e, err = harness.Fig5(cfg)
	case "fig6":
		e, err = harness.Fig6(cfg)
	case "fig7":
		e, err = harness.Fig7(cfg)
	case "fig8":
		e, err = harness.Fig8(cfg)
	case "fig9":
		e, err = harness.Fig9(cfg)
	default:
		return nil, fmt.Errorf("sciview: unknown experiment %q (want one of %v)", id, Figures())
	}
	if err != nil {
		return nil, err
	}
	out := &Experiment{ID: e.ID, Title: e.Title, XName: e.XName, Notes: e.Notes}
	for _, r := range e.Rows {
		out.Rows = append(out.Rows, ExperimentRow{
			Label: r.Label, X: r.X,
			IJMeasured: r.IJMeasured, GHMeasured: r.GHMeasured,
			IJModel: r.IJModel, GHModel: r.GHModel,
		})
	}
	return out, nil
}

// RunAllExperiments regenerates every figure, printing each table to w as
// it completes.
func RunAllExperiments(spec ExperimentSpec, w io.Writer) error {
	return harness.RunAndPrint(spec.config(), w)
}

// RunAblations runs the design-choice ablations (cache size vs the memory
// assumption, IJ scheduling strategies, chunk placement), printing each
// table to w.
func RunAblations(spec ExperimentSpec, w io.Writer) error {
	return harness.RunAblations(spec.config(), w)
}

// RunPaperScale prints the cost-model extrapolation of Figure 6 to the
// paper's 2-billion-tuple endpoint at 2006 testbed parameters.
func RunPaperScale(w io.Writer) {
	harness.Fig6PaperScale().Print(w)
}

// CSV writes the experiment as a CSV table (label + measured and model
// columns), for plotting.
func (e *Experiment) CSV(w io.Writer) error {
	h := e.internal()
	return h.CSV(w)
}

func (e *Experiment) internal() harness.Experiment {
	h := harness.Experiment{ID: e.ID, Title: e.Title, XName: e.XName, Notes: e.Notes}
	for _, r := range e.Rows {
		h.Rows = append(h.Rows, harness.Row{
			Label: r.Label, X: r.X,
			IJMeasured: r.IJMeasured, GHMeasured: r.GHMeasured,
			IJModel: r.IJModel, GHModel: r.GHModel,
		})
	}
	return h
}

// Print renders the experiment as an aligned text table.
func (e *Experiment) Print(w io.Writer) {
	h := e.internal()
	h.Print(w)
}
