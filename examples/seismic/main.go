// Seismic data analysis (named in the paper's Section 2 as an application
// with the same characteristics): a survey records pressure-wave amplitude
// over a 3-D volume; a migration pipeline produces a velocity model over
// the same volume with a different blocking. Interpreters correlate the
// two to pick horizon candidates.
//
// The example emphasizes the analyst-side query features: the paper's
// IN-interval notation, restriction-view layering, ORDER BY/LIMIT for
// top-k picks, and CSV export for downstream tools.
package main

import (
	"fmt"
	"log"
	"os"

	"sciview"
)

func main() {
	log.SetFlags(0)

	// Survey volume 64×64×32; amplitudes blocked 16×16×8 (acquisition
	// order), velocity model blocked 8×8×16 (migration tiles).
	ds, err := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
		Grid:          sciview.Dims{X: 64, Y: 64, Z: 32},
		LeftPart:      sciview.Dims{X: 16, Y: 16, Z: 8},
		RightPart:     sciview.Dims{X: 8, Y: 8, Z: 16},
		LeftName:      "amplitude",
		RightName:     "velocity",
		LeftMeasures:  []string{"amp"},
		RightMeasures: []string{"vel"},
		StorageNodes:  4,
		Seed:          13,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: 4,
		DiskReadBw:   25e6, DiskWriteBw: 20e6, NetBw: 12e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The correlation view, then a survey-area restriction layered on it
	// (a DDS on a DDS): interpreters usually work one prospect at a time.
	if _, err := sys.Exec(`CREATE VIEW scene AS SELECT * FROM amplitude JOIN velocity ON (x, y, z)`); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Exec(`CREATE VIEW prospect AS SELECT * FROM scene WHERE x IN [16, 47] AND y IN [16, 47]`); err != nil {
		log.Fatal(err)
	}

	// Depth profile of the prospect: average velocity and peak amplitude
	// per depth slice (paper's aggregation future work, distributed).
	res, err := sys.Exec(`SELECT z, AVG(vel), MAX(amp) FROM prospect GROUP BY z ORDER BY z LIMIT 6`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- depth profile (top 6 slices):")
	res.Rows.WriteTo(os.Stdout, 0)
	fmt.Println()

	// Horizon candidates: the 5 depth slices with the strongest
	// average amplitude under a velocity floor.
	res, err = sys.Exec(`SELECT z, AVG(amp), COUNT(*) FROM prospect
		WHERE vel >= 0.25 GROUP BY z ORDER BY avg_amp DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- top-5 horizon candidate slices (CSV export):")
	if err := res.Rows.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoin engine used: %s (measured %v)\n", res.Plan.Engine, res.Plan.Measured)
}
