// Deployment shapes: the same view framework running against (1) a
// persistent on-disk dataset, and (2) Basic Data Source services on real
// TCP sockets — the paper's target architecture, where BDS instances
// execute on storage nodes and compute-node QES instances request
// sub-tables remotely.
//
// The example also exercises two operational knobs: the Caching Service's
// replacement policy and the OPAS-style fallback the planner's engines
// offer for memory-constrained compute nodes.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sciview"
)

func main() {
	log.SetFlags(0)
	dir := filepath.Join(os.TempDir(), "sciview-deployment-demo")
	defer os.RemoveAll(dir)

	// 1. Generate once, persist to a dataset directory (what a simulation
	// campaign or ingest pipeline would produce).
	gen, err := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
		Grid:         sciview.Dims{X: 32, Y: 32, Z: 8},
		LeftPart:     sciview.Dims{X: 8, Y: 8, Z: 8},
		RightPart:    sciview.Dims{X: 8, Y: 8, Z: 4},
		StorageNodes: 3,
		Format:       "rle", // compressed chunks: smaller files, real decode work
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sciview.SaveDataset(gen, dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset persisted under %s\n", dir)

	// 2. Reopen from disk — only the catalog loads; chunk bytes stay in
	// the node directories until queries need them.
	ds, err := sciview.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened: tables %v on %d storage nodes\n\n", ds.Tables(), ds.StorageNodes())

	// 3. Run with BDS services on real TCP loopback sockets: every
	// sub-table fetch crosses the wire codec and a socket, on top of the
	// modeled disk/network bandwidths.
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: 3,
		DiskReadBw:   25e6, DiskWriteBw: 20e6, NetBw: 12e6,
		CachePolicy: "clock", // second-chance caching instead of strict LRU
		UseTCP:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.Exec(`CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Exec(`SELECT COUNT(*) FROM V`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full view over TCP: %d tuples via %s in %v\n",
		res.Plan.Tuples, res.Plan.Engine, res.Plan.Measured)

	res, err = sys.Exec(`SELECT AVG(wp), MIN(oilp) FROM V WHERE x BETWEEN 8 AND 23 GROUP BY z`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-plane statistics of the central region:")
	res.Rows.WriteTo(os.Stdout, 4)
}
