// Satellite data processing (one of the paper's motivating application
// classes): ground-station captures arrive as per-orbit tiles in an
// application-specific layout, while a derived vegetation-index product is
// tiled differently by the processing pipeline. Correlating raw radiance
// with the derived index requires a join view over two differently
// partitioned, differently formatted flat-file collections.
//
// This example builds a custom dataset with the DatasetBuilder (no
// oil-reservoir generator): tile chunks in CSV (station export) and
// column-major binary (pipeline output), registered with their bounding
// boxes, then queried through a join view.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"sciview"
)

const (
	width, height = 64, 64 // pixels
	tile          = 16     // station tile edge
	stripe        = 8      // pipeline stripe height
	nodes         = 3
)

// radiance simulates a raw band value at a pixel.
func radiance(x, y int) float32 {
	return float32(0.5 + 0.4*math.Sin(float64(x)/9)*math.Cos(float64(y)/7))
}

// ndvi simulates the derived vegetation index at a pixel.
func ndvi(x, y int) float32 {
	return float32(0.3 + 0.3*math.Cos(float64(x+y)/11))
}

func main() {
	log.SetFlags(0)

	b := sciview.NewDatasetBuilder(nodes)
	b.CreateTable("radiance", sciview.Schema{
		{Name: "x", Coord: true}, {Name: "y", Coord: true},
		{Name: "band1"}, {Name: "band2"},
	})
	b.CreateTable("ndvi", sciview.Schema{
		{Name: "x", Coord: true}, {Name: "y", Coord: true},
		{Name: "index"},
	})

	// Station tiles: 16×16 pixel squares, CSV exports, round-robin over
	// storage nodes.
	chunkID := 0
	for ty := 0; ty < height/tile; ty++ {
		for tx := 0; tx < width/tile; tx++ {
			var rows [][]float32
			for y := ty * tile; y < (ty+1)*tile; y++ {
				for x := tx * tile; x < (tx+1)*tile; x++ {
					rows = append(rows, []float32{
						float32(x), float32(y),
						radiance(x, y), radiance(x, y) * 0.9,
					})
				}
			}
			b.AppendChunk("radiance", chunkID%nodes, "csv", rows)
			chunkID++
		}
	}

	// Pipeline stripes: full-width 8-row bands, column-major binary.
	for sy := 0; sy < height/stripe; sy++ {
		var rows [][]float32
		for y := sy * stripe; y < (sy+1)*stripe; y++ {
			for x := 0; x < width; x++ {
				rows = append(rows, []float32{float32(x), float32(y), ndvi(x, y)})
			}
		}
		b.AppendChunk("ndvi", sy%nodes, "colmajor", rows)
	}

	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: tables %v over %d storage nodes\n\n", ds.Tables(), ds.StorageNodes())

	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: 3,
		DiskReadBw:   25e6, DiskWriteBw: 20e6, NetBw: 12e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The view correlates raw radiance with the derived index per pixel.
	// Tiles (16×16) and stripes (64×8) overlap in a 2-D connectivity
	// graph — exactly the page-level join index the IJ engine schedules.
	if _, err := sys.Exec(`CREATE VIEW scene AS SELECT * FROM radiance JOIN ndvi ON (x, y)`); err != nil {
		log.Fatal(err)
	}
	info, err := sys.Explain("scene")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner chose %s (IJ %v vs GH %v)\n\n", info.Engine, info.PredictIJ, info.PredictGH)

	// Calibration check over a ground-truth strip.
	res, err := sys.Exec(`SELECT x, y, band1, index FROM scene WHERE y = 10 AND x BETWEEN 0 AND 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- pixel strip y=10:")
	res.Rows.WriteTo(os.Stdout, 0)
	fmt.Println()

	// Vegetation screening: mean index per tile row where radiance stays
	// meaningful.
	res, err = sys.Exec(`SELECT AVG(index), MIN(band1), COUNT(*) FROM scene
		WHERE band1 >= 0.2 GROUP BY y HAVING COUNT(*) >= 32`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- %d image rows with >=32 bright pixels:\n", res.Rows.NumRows())
	res.Rows.WriteTo(os.Stdout, 5)

	// Sanity: every pixel matched exactly once.
	all, err := sys.Exec(`SELECT COUNT(*) FROM scene`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoined pixels: %g (want %d)\n", all.Rows.Value(0, 0), width*height)
}
