// Quickstart: generate a small scientific dataset, define a join view over
// its two tables, and query it with plain SQL. The Query Planning Service
// picks the join engine automatically.
package main

import (
	"fmt"
	"log"
	"os"

	"sciview"
)

func main() {
	log.SetFlags(0)

	// A 32×32×8 grid simulated twice: T1 holds oil pressure, T2 holds
	// water pressure, partitioned differently and spread over 4 storage
	// nodes — the typical layout of parallel simulation output.
	ds, err := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
		Grid:         sciview.Dims{X: 32, Y: 32, Z: 8},
		LeftPart:     sciview.Dims{X: 8, Y: 8, Z: 8},
		RightPart:    sciview.Dims{X: 8, Y: 8, Z: 8},
		StorageNodes: 4,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// An emulated cluster: 4 storage nodes + 2 compute nodes with
	// IDE-era disk and Fast-Ethernet-era network bandwidths.
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: 2,
		DiskReadBw:   25e6, DiskWriteBw: 20e6,
		NetBw: 12e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A derived data source: the join-based view V1 = T1 ⊕xyz T2.
	if _, err := sys.Exec(`CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`); err != nil {
		log.Fatal(err)
	}

	// Range query against the view — the paper's running example: access
	// water pressure and oil pressure of grid points in a sub-region.
	res, err := sys.Exec(`SELECT * FROM V1 WHERE x BETWEEN 0 AND 7 AND y BETWEEN 0 AND 7 AND z = 0`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- grid points in [0,7]x[0,7]x{0} with both pressures:")
	res.Rows.WriteTo(os.Stdout, 5)
	fmt.Printf("engine: %s (predicted IJ %v vs GH %v), %d tuples in %v\n\n",
		res.Plan.Engine, res.Plan.PredictIJ, res.Plan.PredictGH, res.Plan.Tuples, res.Plan.Measured)

	// Aggregation over the view: average water pressure per z-plane.
	res, err = sys.Exec(`SELECT AVG(wp), MAX(oilp), COUNT(*) FROM V1 GROUP BY z`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- per-plane statistics:")
	res.Rows.WriteTo(os.Stdout, 0)
}
