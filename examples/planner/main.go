// Cost-model-driven engine selection (paper Sections 5–6): the Query
// Planning Service predicts Indexed Join and Grace Hash run times from
// dataset parameters (T, c_R, c_S, n_e, record sizes) and system parameters
// (nodes, bandwidths, CPU constants) and picks the winner.
//
// This example sweeps the dataset parameter n_e·c_S — the paper's Figure 4
// axis — and shows the planner switching engines at the predicted
// crossover, then verifies both engines against each other at one point.
package main

import (
	"fmt"
	"log"

	"sciview"
)

func main() {
	log.SetFlags(0)

	grid := sciview.Dims{X: 32, Y: 32, Z: 8}
	right := sciview.Dims{X: 8, Y: 8, Z: 4} // fixed right partition
	// Left partitions nested inside the right one: each right sub-table
	// overlaps 2^d left sub-tables, scaling n_e·c_S by 2^d at constant
	// edge ratio.
	lefts := []sciview.Dims{
		{X: 8, Y: 8, Z: 4},
		{X: 4, Y: 8, Z: 4},
		{X: 4, Y: 4, Z: 4},
		{X: 2, Y: 4, Z: 4},
		{X: 2, Y: 2, Z: 4},
		{X: 2, Y: 2, Z: 2},
		{X: 1, Y: 2, Z: 2},
	}

	fmt.Println("degree  n_e*c_S     planner   predicted IJ  predicted GH")
	for d, left := range lefts {
		ds, err := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
			Grid: grid, LeftPart: left, RightPart: right,
			StorageNodes: 4, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
			ComputeNodes: 4,
			// The 2006 balance point: slow disks relative to CPU…
			DiskReadBw: 2e6, DiskWriteBw: 2e6, NetBw: 4e6,
			// …and a PIII-era per-hash-op cost.
			CPUSecPerOp: 2.5e-6,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Exec(`CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`); err != nil {
			log.Fatal(err)
		}
		info, err := sys.Explain("V")
		if err != nil {
			log.Fatal(err)
		}
		neCs := (1 << d) * grid.X * grid.Y * grid.Z
		fmt.Printf("%6d  %-10d  %-8s  %12v  %12v\n",
			1<<d, neCs, info.Engine, info.PredictIJ, info.PredictGH)
	}

	// Execute both engines at the last (GH-favoring) point and check they
	// agree on the result cardinality.
	ds, err := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
		Grid: grid, LeftPart: lefts[len(lefts)-1], RightPart: right,
		StorageNodes: 4, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: 4,
		DiskReadBw:   2e6, DiskWriteBw: 2e6, NetBw: 4e6,
		CPUSecPerOp: 2.5e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Exec(`CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, engine := range []string{"ij", "gh"} {
		if err := sys.ForceEngine(engine); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Exec(`SELECT COUNT(*) FROM V`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d tuples in %v\n", engine, res.Plan.Tuples, res.Plan.Measured)
	}
}
