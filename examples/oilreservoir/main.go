// Oil reservoir management study (paper Section 2): simulations of a
// reservoir are run at different grid partitionings and distributed over a
// storage cluster; an analyst correlates oil and water pressures and hunts
// for regions of interest — "Find all reservoirs with average wp > 0.5".
//
// This example shows the full workflow the paper motivates:
//  1. a join-based Derived Data Source over differently-partitioned tables,
//  2. range-restricted analysis queries pushed down to chunks,
//  3. the aggregation + HAVING extension for region screening,
//  4. the cost-model decision behind every join execution.
package main

import (
	"fmt"
	"log"
	"os"

	"sciview"
)

func main() {
	log.SetFlags(0)

	// The simulation wrote T1 in 16x16x8 blocks and T2 in 8x8x8 blocks —
	// different runs partition differently — across 5 storage nodes, with
	// several physical attributes per grid point.
	ds, err := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
		Grid:          sciview.Dims{X: 64, Y: 64, Z: 16},
		LeftPart:      sciview.Dims{X: 16, Y: 16, Z: 8},
		RightPart:     sciview.Dims{X: 8, Y: 8, Z: 8},
		LeftMeasures:  []string{"oilp", "soil"}, // oil pressure, oil saturation
		RightMeasures: []string{"wp", "velmag"}, // water pressure, |velocity|
		StorageNodes:  5,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: 5,
		DiskReadBw:   25e6, DiskWriteBw: 20e6, NetBw: 12e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// V1 = T1 ⊕xyz T2 — the paper's "wp and soil of all grid points"
	// view requires joining on the shared coordinates.
	if _, err := sys.Exec(`CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`); err != nil {
		log.Fatal(err)
	}

	// What would each engine cost? (The QPS consults the Section 5 cost
	// models with calibrated CPU constants.)
	info, err := sys.Explain("V1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner: full view scan would use %s (IJ %v vs GH %v)\n\n",
		info.Engine, info.PredictIJ, info.PredictGH)

	// Analysis 1: water pressure and oil saturation in a well candidate
	// region (range pushdown prunes chunks via the R-tree and records via
	// the BDS filter).
	res, err := sys.Exec(`SELECT wp, soil FROM V1
		WHERE x BETWEEN 0 AND 15 AND y BETWEEN 16 AND 31 AND z BETWEEN 0 AND 7`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- region scan: %d grid points (engine %s, %v)\n",
		res.Rows.NumRows(), res.Plan.Engine, res.Plan.Measured)
	res.Rows.WriteTo(os.Stdout, 4)
	fmt.Println()

	// Analysis 2: screen vertical columns by average water pressure —
	// the paper's "find all reservoirs with average wp > 0.5" shape,
	// grouping by (x, y) columns.
	res, err = sys.Exec(`SELECT x, y, AVG(wp) FROM V1 GROUP BY x, y HAVING AVG(wp) >= 0.62`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- columns with average wp >= 0.62: %d of %d\n", res.Rows.NumRows(), 64*64)
	res.Rows.WriteTo(os.Stdout, 6)
	fmt.Println()

	// Analysis 3: compare engines explicitly on the same query.
	for _, engine := range []string{"ij", "gh"} {
		if err := sys.ForceEngine(engine); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Exec(`SELECT COUNT(*) FROM V1 WHERE z = 3`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("z=3 slice via %s: %v (%d tuples)\n",
			engine, res.Plan.Measured, res.Plan.Tuples)
	}
}
