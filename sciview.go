package sciview

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/fault"
	"sciview/internal/ingest"
	"sciview/internal/metrics"
	"sciview/internal/planner"
	"sciview/internal/repair"
	"sciview/internal/trace"
)

// ClusterSpec describes the emulated coupled storage/compute platform a
// System runs on. Bandwidths are bytes/second; zero means unlimited (no
// modeled delay).
type ClusterSpec struct {
	// StorageNodes must match the dataset's storage node count;
	// ComputeNodes is the number of join (QES) nodes.
	StorageNodes int
	ComputeNodes int
	// DiskReadBw / DiskWriteBw model each node's local disk.
	DiskReadBw  float64
	DiskWriteBw float64
	// NetBw models each node's network interface.
	NetBw float64
	// SharedFS replaces local disks with a single NFS-like server that
	// performs all I/O (the paper's Figure 9 configuration);
	// NFSContention adds the shared server's thrash penalty per
	// concurrent client.
	SharedFS      bool
	NFSContention float64
	// CacheBytes is each compute node's sub-table cache capacity
	// (default 64 MiB); CachePolicy selects the replacement policy
	// ("lru" default, "fifo", "clock").
	CacheBytes  int64
	CachePolicy string
	// CPUSecPerOp charges each hash operation this many seconds on the
	// owning compute node's modeled CPU, emulating era-appropriate
	// processors (0 = only real host cost).
	CPUSecPerOp float64
	// UseTCP serves every BDS over real TCP loopback sockets and fetches
	// sub-tables through them (wire codec and all). Call Close when done.
	UseTCP bool
	// Wire selects the storage→compute fetch codec: "" or "rowmajor" for
	// decoded sub-tables (SVT1), "colenc" for the compressed columnar
	// frames (SVT2) that shrink the modeled network transfer.
	Wire string
	// Faults is a deterministic chaos schedule injected into the cluster's
	// disks and transports, e.g.
	// "crash:storage-1:fetch:3,delay:compute-0:write:2:5ms" (see
	// internal/fault.Parse). Empty disables injection.
	Faults string
	// BreakerThreshold and BreakerCooldown tune the per-storage-node
	// circuit breakers (0 = defaults: trip after 3 consecutive failures,
	// probe after 100ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Metrics, when set, wires the system into a live metrics registry
	// (cache, breaker, fetch and per-operator instruments); serve it with
	// metrics.Handler or metrics.Serve. Nil disables instrumentation.
	Metrics *metrics.Registry
	// MemBudget, when positive, caps each query's resident working set:
	// blocking operators (sort, grouped aggregation, join builds) spill
	// to compute-node scratch disks instead of exceeding their share.
	// Results are byte-identical to unbudgeted execution.
	MemBudget int64
}

// System is a running view-creation framework instance: an emulated
// cluster serving a dataset, an SQL executor, and the cost-model-driven
// Query Planning Service.
type System struct {
	cluster  *cluster.Cluster
	executor *planner.Executor
	dataset  *Dataset
	metrics  *metrics.Registry

	liveMu   sync.Mutex
	watcher  *ingest.Watcher
	ingestor *Ingestor
}

// NewSystem assembles a system over a dataset.
func NewSystem(ds *Dataset, spec ClusterSpec) (*System, error) {
	if spec.StorageNodes == 0 {
		spec.StorageNodes = ds.StorageNodes()
	}
	if spec.StorageNodes != ds.StorageNodes() {
		return nil, fmt.Errorf("sciview: cluster has %d storage nodes but dataset spans %d",
			spec.StorageNodes, ds.StorageNodes())
	}
	if spec.ComputeNodes == 0 {
		spec.ComputeNodes = 1
	}
	if spec.CacheBytes == 0 {
		spec.CacheBytes = 64 << 20
	}
	var inj *fault.Injector
	if spec.Faults != "" {
		var err error
		if inj, err = fault.Parse(spec.Faults); err != nil {
			return nil, fmt.Errorf("sciview: fault spec: %w", err)
		}
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes:     spec.StorageNodes,
		ComputeNodes:     spec.ComputeNodes,
		DiskReadBw:       spec.DiskReadBw,
		DiskWriteBw:      spec.DiskWriteBw,
		NetBw:            spec.NetBw,
		SharedFS:         spec.SharedFS,
		NFSContention:    spec.NFSContention,
		CacheBytes:       spec.CacheBytes,
		CachePolicy:      spec.CachePolicy,
		CPUSecPerOp:      spec.CPUSecPerOp,
		UseTCP:           spec.UseTCP,
		Wire:             spec.Wire,
		Faults:           inj,
		BreakerThreshold: spec.BreakerThreshold,
		BreakerCooldown:  spec.BreakerCooldown,
		Metrics:          spec.Metrics,
	}, ds.catalog, ds.stores)
	if err != nil {
		return nil, err
	}
	ex := planner.NewExecutor(cl)
	ex.Metrics = spec.Metrics
	ex.MemBudget = spec.MemBudget
	return &System{cluster: cl, executor: ex, dataset: ds, metrics: spec.Metrics}, nil
}

// Close releases the system's network resources (TCP mode only).
func (s *System) Close() error { return s.cluster.Close() }

// Repair builds (without starting) a self-healing repair manager over the
// system's cluster: node lifecycle tracking, catch-up replay for returning
// storage nodes, and periodic anti-entropy re-replication. replicas = 0
// infers the replication factor from the catalog; interval = 0 uses the
// default sweep period; bandwidth caps repair traffic in bytes/second
// (0 = uncapped). Call Start on the returned manager, Stop when done, and
// service.AttachRepair to surface its stats.
func (s *System) Repair(replicas int, interval time.Duration, bandwidth float64) (*repair.Manager, error) {
	return repair.New(repair.Config{
		Cluster:   s.cluster,
		Replicas:  replicas,
		Interval:  interval,
		Bandwidth: bandwidth,
		Metrics:   s.metrics,
	})
}

// Cluster exposes the underlying emulated cluster, so in-module tools can
// layer additional services (e.g. the concurrent query service) over a
// System's platform.
func (s *System) Cluster() *cluster.Cluster { return s.cluster }

// EnableTrace turns on per-operation execution tracing for subsequent join
// queries; TraceSummary reads and clears the collected events.
func (s *System) EnableTrace() {
	s.executor.Trace = trace.New()
}

// TraceSummary renders the events recorded since the last call (or since
// EnableTrace) and clears them. It returns "" when tracing is off.
func (s *System) TraceSummary() string {
	if s.executor.Trace == nil {
		return ""
	}
	events := s.executor.Trace.Events()
	s.executor.Trace.Reset()
	var sb strings.Builder
	trace.Summarize(events).Print(&sb)
	return sb.String()
}

// ForceEngine overrides the planner's cost-model decision: "ij", "gh", or
// "" to restore automatic selection.
func (s *System) ForceEngine(name string) error {
	switch name {
	case "", "ij", "gh":
		s.executor.Planner.Force = name
		return nil
	default:
		return fmt.Errorf("sciview: unknown engine %q (want \"ij\", \"gh\" or \"\")", name)
	}
}

// SetAlphas sets the cost-model CPU constants (seconds per hash build and
// lookup operation) instead of calibrating them on first use.
func (s *System) SetAlphas(build, lookup float64) {
	s.executor.Planner.AlphaBuild = build
	s.executor.Planner.AlphaLookup = lookup
}

// DisableCalibration pins the planner to the static configuration layer:
// observed run costs are no longer folded back, and every decision uses
// the configured simio rates and alphas.
func (s *System) DisableCalibration() {
	s.executor.Planner.Est = nil
}

// PlanInfo reports how a join query was (or would be) executed.
type PlanInfo struct {
	// Engine is the chosen QES: "ij" or "gh".
	Engine string
	// Forced reports whether the choice was forced rather than planned.
	Forced bool
	// Calibrated reports whether live-calibrated constants (derived from
	// observed runs) displaced the static configuration in the predictions.
	Calibrated bool
	// PredictIJ and PredictGH are the cost models' predicted run times.
	PredictIJ time.Duration
	PredictGH time.Duration
	// Measured is the actual execution time (zero for Explain).
	Measured time.Duration
	// Tuples is the number of result tuples the join produced.
	Tuples int64
	// SpillBytes and SpillReadBytes total the scratch traffic the run's
	// out-of-core operators caused (zero for unbudgeted or fitting runs).
	SpillBytes     int64
	SpillReadBytes int64
}

// Result is the outcome of one statement.
type Result struct {
	// ViewCreated names the view defined by a CREATE VIEW statement.
	ViewCreated string
	// Rows holds a SELECT's result.
	Rows *Table
	// Plan describes the join execution, when one ran.
	Plan *PlanInfo
	// Explain holds the rendered plan tree for EXPLAIN statements.
	Explain string
}

// Exec parses and executes one SQL statement:
//
//	CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y) [WHERE ...]
//	CREATE VIEW V2 AS SELECT * FROM V1 WHERE ...           -- view layering
//	SELECT */cols/aggregates FROM table-or-view [WHERE ...]
//	    [GROUP BY ...] [HAVING AGG(col) <op> num]
//	    [ORDER BY col [DESC], ...] [LIMIT n]
//	EXPLAIN SELECT ...                          -- render the plan, don't run
func (s *System) Exec(sql string) (*Result, error) {
	out, err := s.executor.Exec(sql)
	if err != nil {
		return nil, err
	}
	res := &Result{ViewCreated: out.ViewCreated, Explain: out.Explain}
	if out.Rows != nil {
		res.Rows = &Table{st: out.Rows}
	}
	if out.Result != nil && out.Decision != nil {
		res.Plan = &PlanInfo{
			Engine:     out.Decision.Chosen,
			Forced:     out.Decision.Forced,
			Calibrated: out.Decision.Calibrated,
			PredictIJ:  durationOf(out.Decision.PredictIJ.Total),
			PredictGH:  durationOf(out.Decision.PredictGH.Total),
			Measured:   out.Result.Elapsed,
			Tuples:     out.Result.Tuples,
		}
		for _, st := range out.Result.Operators {
			res.Plan.SpillBytes += st.SpillBytes
			res.Plan.SpillReadBytes += st.SpillReadBytes
		}
	}
	return res, nil
}

// Explain plans a join view query without executing it, returning the
// cost-model comparison. The query must select from a defined view.
func (s *System) Explain(view string) (*PlanInfo, error) {
	v, ok := s.executor.View(view)
	if !ok {
		return nil, fmt.Errorf("sciview: unknown view %q", view)
	}
	req, err := v.Request(nil, false)
	if err != nil {
		return nil, err
	}
	eng, dec, err := s.executor.Planner.Choose(s.cluster, req)
	if err != nil {
		return nil, err
	}
	return &PlanInfo{
		Engine:     eng.Name(),
		Forced:     dec.Forced,
		Calibrated: dec.Calibrated,
		PredictIJ:  durationOf(dec.PredictIJ.Total),
		PredictGH:  durationOf(dec.PredictGH.Total),
	}, nil
}

func durationOf(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}
