// sciview-node runs one storage node's Basic Data Source Service as a
// standalone process, serving sub-tables over TCP — the deployment shape
// the paper targets, where BDS instances execute on the storage cluster
// and compute-node QES instances request sub-tables remotely.
//
// Serve a node:
//
//	sciview-node -data /tmp/reservoir -node 0 -addr 127.0.0.1:7070
//
// Fetch a sub-table from a running node (client mode):
//
//	sciview-node -fetch -addr 127.0.0.1:7070 -table 0 -chunk 3
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"sciview/internal/bds"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/repair"
	"sciview/internal/simio"
	"sciview/internal/transport"
	"sciview/internal/tuple"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sciview-node: ")
	var (
		data        = flag.String("data", "", "dataset directory (serve mode)")
		node        = flag.Int("node", 0, "storage node id to serve")
		addr        = flag.String("addr", "127.0.0.1:0", "listen address (serve) or target address (fetch)")
		fetch       = flag.Bool("fetch", false, "client mode: fetch one sub-table and print it")
		table       = flag.Int("table", 0, "table id to fetch")
		chunk       = flag.Int("chunk", 0, "chunk id to fetch")
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics (Prometheus text on /metrics, pprof on /debug/pprof/) at this address (serve mode; empty disables instrumentation)")
		repairEvery = flag.Duration("repair-interval", 0, "periodically verify this node's store against the catalog's placements — the integrity check the repair tier's rejoin path runs; broken objects are logged and exported as a gauge (0 disables)")
	)
	flag.Parse()

	if *fetch {
		conn, err := transport.DialAddr(bds.ServiceName(*node), *addr)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		client := bds.ClientFromConn(conn)
		st, err := client.SubTable(tuple.ID{Table: int32(*table), Chunk: int32(*chunk)}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sub-table %v: %d rows, schema %v\n", st.ID, st.NumRows(), st.Schema)
		limit := st.NumRows()
		if limit > 10 {
			limit = 10
		}
		for r := 0; r < limit; r++ {
			fmt.Println(st.Row(r, nil))
		}
		if limit < st.NumRows() {
			fmt.Printf("... (%d more rows)\n", st.NumRows()-limit)
		}
		return
	}

	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(filepath.Join(*data, "catalog.gob"))
	if err != nil {
		log.Fatal(err)
	}
	catalog := metadata.NewCatalog()
	if err := catalog.Load(bytes.NewReader(raw)); err != nil {
		log.Fatal(err)
	}
	store, err := simio.NewFileStore(filepath.Join(*data, fmt.Sprintf("node%d", *node)))
	if err != nil {
		log.Fatal(err)
	}
	disk := simio.NewDisk(store, 0, 0)
	svc := bds.New(*node, catalog, disk)

	var brokenObjects atomic.Int64
	if *repairEvery > 0 {
		go func() {
			ticker := time.NewTicker(*repairEvery)
			defer ticker.Stop()
			for range ticker.C {
				broken := repair.VerifyStore(catalog, *node, store.Size)
				prev := brokenObjects.Swap(int64(len(broken)))
				switch {
				case len(broken) > 0 && int64(len(broken)) != prev:
					log.Printf("repair: %d objects missing or truncated (first: %q); a cluster repair tier would rebuild them from replicas", len(broken), broken[0])
				case len(broken) == 0 && prev > 0:
					log.Printf("repair: store verify clean again")
				}
			}
		}()
		fmt.Printf("repair: verifying store against catalog every %v\n", *repairEvery)
	}

	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		transport.WireMetrics(reg)
		reg.GaugeFunc("sciview_bds_subtables_served", "Sub-tables this BDS has served.", func() float64 {
			return float64(svc.Stats.SubTablesServed.Load())
		})
		reg.GaugeFunc("sciview_bds_records_served", "Records this BDS has served.", func() float64 {
			return float64(svc.Stats.RecordsServed.Load())
		})
		if *repairEvery > 0 {
			reg.GaugeFunc("sciview_node_broken_objects", "Objects the periodic store verify found missing or truncated.", func() float64 {
				return float64(brokenObjects.Load())
			})
		}
		mcloser, maddr, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer mcloser.Close()
		fmt.Printf("metrics at http://%s/metrics (pprof on /debug/pprof/)\n", maddr)
	}

	tr := transport.NewTCP()
	closer, err := tr.ServeAddr(bds.ServiceName(*node), *addr, svc.Handler())
	if err != nil {
		log.Fatal(err)
	}
	actual, _ := tr.Addr(bds.ServiceName(*node))
	fmt.Printf("serving BDS for storage node %d at %s (ctrl-c to stop)\n", *node, actual)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, let requests already being handled
	// send their responses, then tear the connections down.
	fmt.Println("draining in-flight requests...")
	if err := closer.Close(); err != nil {
		log.Print(err)
	}
	fmt.Printf("served %d sub-tables (%d records)\n",
		svc.Stats.SubTablesServed.Load(), svc.Stats.RecordsServed.Load())
}
