// sciview-gen generates a synthetic oil-reservoir-study dataset — two
// virtual tables over one 3-D grid, partitioned into binary chunks spread
// block-cyclically across storage nodes — and writes it to a dataset
// directory for use with sciview-query and sciview-node.
//
// Usage:
//
//	sciview-gen -out /tmp/reservoir -grid 64x64x16 -left 16x16x8 -right 8x8x8 -nodes 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sciview"
)

func parseDims(s string) (sciview.Dims, error) {
	var d sciview.Dims
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return d, fmt.Errorf("want XxYxZ, got %q", s)
	}
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &d.X, &d.Y, &d.Z); err != nil {
		return d, fmt.Errorf("parsing %q: %w", s, err)
	}
	return d, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sciview-gen: ")
	var (
		out      = flag.String("out", "", "output dataset directory (required)")
		grid     = flag.String("grid", "64x64x16", "grid size XxYxZ (T = X*Y*Z tuples per table)")
		left     = flag.String("left", "16x16x8", "left table partition size")
		right    = flag.String("right", "8x8x8", "right table partition size")
		nodes    = flag.Int("nodes", 5, "number of storage nodes")
		format   = flag.String("format", "rowmajor", "chunk layout: rowmajor, colmajor or csv")
		seed     = flag.Int64("seed", 2006, "measure-value seed")
		measures = flag.Int("measures", 1, "scalar attributes per table (record = 3 coords + measures)")
		replicas = flag.Int("replicas", 1, "placements per chunk (clamped to -nodes; R>=2 survives R-1 storage failures)")
		steps    = flag.Int("timesteps", 0, "withhold the last N time-step slabs (along Z) as append batches under <out>/steps/")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := parseDims(*grid)
	if err != nil {
		log.Fatalf("-grid: %v", err)
	}
	p, err := parseDims(*left)
	if err != nil {
		log.Fatalf("-left: %v", err)
	}
	q, err := parseDims(*right)
	if err != nil {
		log.Fatalf("-right: %v", err)
	}
	spec := sciview.OilReservoirSpec{
		Grid: g, LeftPart: p, RightPart: q,
		StorageNodes: *nodes, Format: *format, Seed: *seed,
		Replicas: *replicas,
	}
	if *measures > 1 {
		spec.LeftMeasures = []string{"oilp"}
		spec.RightMeasures = []string{"wp"}
		for i := 1; i < *measures; i++ {
			spec.LeftMeasures = append(spec.LeftMeasures, fmt.Sprintf("lm%d", i))
			spec.RightMeasures = append(spec.RightMeasures, fmt.Sprintf("rm%d", i))
		}
	}
	var (
		ds      *sciview.Dataset
		batches []*sciview.Batch
		err2    error
	)
	if *steps > 0 {
		ds, batches, err2 = sciview.GenerateOilReservoirSteps(spec, *steps)
	} else {
		ds, err2 = sciview.GenerateOilReservoir(spec)
	}
	if err2 != nil {
		log.Fatal(err2)
	}
	if err := sciview.SaveDataset(ds, *out); err != nil {
		log.Fatal(err)
	}
	if len(batches) > 0 {
		if err := sciview.SaveBatches(*out, batches); err != nil {
			log.Fatal(err)
		}
	}
	tuples := int64(g.X) * int64(g.Y) * int64(g.Z)
	fmt.Printf("wrote dataset to %s: tables %v, T=%d tuples/table, %d storage nodes\n",
		*out, ds.Tables(), tuples, *nodes)
	if len(batches) > 0 {
		fmt.Printf("withheld %d time-step append batches under %s/steps/ (base covers the first %d Z cells)\n",
			len(batches), *out, g.Z-*steps*stepZ(p, q))
	}
}

// stepZ mirrors the generator's slab depth: the smallest Z extent that is
// whole block layers in both partitions.
func stepZ(p, q sciview.Dims) int {
	a, b := p.Z, q.Z
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}
