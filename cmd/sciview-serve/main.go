// sciview-serve runs the concurrent query service as a standalone TCP
// server: an emulated cluster over a dataset directory, fronted by the
// admission controller, priority queue and fetch deduplicator, accepting
// join-view queries from many remote clients at once. SIGTERM/ctrl-c
// drains gracefully: in-flight queries finish, queued ones are refused.
//
// Serve:
//
//	sciview-serve -data /tmp/reservoir -addr 127.0.0.1:7080 \
//	    -compute 4 -max-inflight 4 -mem-budget 268435456
//
// A dataset generated with `sciview-gen -timesteps N` carries withheld
// time-step append batches; -replay-steps commits them on an interval
// while serving, so clients watch the dataset grow (each commit is one
// new dataset version; queries stay pinned to their admission version):
//
//	sciview-serve -data /tmp/reservoir -replay-steps 5s ...
//
// Submit a query from another process (client mode):
//
//	sciview-serve -query -addr 127.0.0.1:7080 -left T1 -right T2 \
//	    -on x,y,z -range x:0:31,y:0:15 -priority 2 -timeout 30s
//
// Read the server's counters:
//
//	sciview-serve -stats -addr 127.0.0.1:7080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sciview"
	"sciview/internal/engine"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/service"
	"sciview/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sciview-serve: ")
	var (
		// Serve mode.
		data        = flag.String("data", "", "dataset directory (serve mode)")
		addr        = flag.String("addr", "127.0.0.1:0", "listen address (serve) or server address (client)")
		compute     = flag.Int("compute", 4, "number of compute nodes")
		cacheBytes  = flag.Int64("cache", 64<<20, "per-compute-node sub-table cache bytes")
		diskBw      = flag.Float64("disk-bw", 0, "disk bandwidth in bytes/s (0 = unlimited)")
		netBw       = flag.Float64("net-bw", 0, "per-NIC bandwidth in bytes/s (0 = unlimited)")
		maxInFlight = flag.Int("max-inflight", 4, "max concurrently executing queries")
		memBudget   = flag.Int64("mem-budget", 0, "working-set budget across in-flight queries in bytes (0 = unlimited)")
		strict      = flag.Bool("strict", false, "reject queries whose estimate exceeds -mem-budget instead of admitting them degraded (spilling to scratch)")
		maxQueue    = flag.Int("max-queue", 0, "max queued queries; excess fail fast (0 = unlimited)")
		force       = flag.String("engine", "", "force engine: ij or gh (default: cost-model choice per query)")
		noCalibrate = flag.Bool("no-calibrate", false, "pin the planner to the static configuration layer instead of folding observed run costs into the cost-model constants")
		faults      = flag.String("faults", "", "chaos schedule, e.g. crash:storage-1:fetch:20,delay:compute-0:write:2:5ms")
		wire        = flag.String("wire", "", "fetch codec: rowmajor (default) or colenc (compressed columnar frames)")
		prefetch    = flag.Int("prefetch", engine.DefaultPrefetch, "default IJ joiner lookahead depth for queries that leave it unset (0 = disabled)")
		parallelism = flag.Int("parallelism", 0, "default hash-join kernel workers for queries that leave it unset (0 = all CPUs, 1 = serial)")
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics (Prometheus text on /metrics, pprof on /debug/pprof/) at this address (serve mode; empty disables instrumentation)")
		replaySteps = flag.Duration("replay-steps", 0, "replay the dataset's withheld time-step batches (<data>/steps/, from sciview-gen -timesteps) at this interval while serving; queries in flight stay pinned to their admission version (0 disables)")
		repairEvery = flag.Duration("repair-interval", 0, "run the self-healing repair tier: catch up storage nodes revived by restart fault rules and re-replicate under-replicated chunks at this period (0 disables)")
		repairBw    = flag.Float64("repair-bw", 0, "repair copy-traffic bandwidth cap in bytes/s (0 = uncapped)")
		// Client mode.
		query    = flag.Bool("query", false, "client mode: submit one query and print the outcome")
		stats    = flag.Bool("stats", false, "client mode: print the server's service counters")
		left     = flag.String("left", "T1", "left (build) table")
		right    = flag.String("right", "T2", "right (probe) table")
		on       = flag.String("on", "x,y,z", "comma-separated join attributes")
		ranges   = flag.String("range", "", "filter, comma-separated attr:lo:hi triples (e.g. x:0:31,y:0:15)")
		priority = flag.Int("priority", 0, "admission priority (higher runs sooner)")
		timeout  = flag.Duration("timeout", 0, "query deadline; also enforced server-side (0 = none)")
	)
	flag.Parse()

	if *query || *stats {
		runClient(*addr, *query, *left, *right, *on, *ranges, *priority, *timeout)
		return
	}
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds, err := sciview.OpenDataset(*data)
	if err != nil {
		log.Fatal(err)
	}
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		transport.WireMetrics(reg)
	}
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: *compute,
		CacheBytes:   *cacheBytes,
		DiskReadBw:   *diskBw,
		DiskWriteBw:  *diskBw,
		NetBw:        *netBw,
		Wire:         *wire,
		Faults:       *faults,
		Metrics:      reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := service.New(sys.Cluster(), service.Config{
		MaxInFlight:  *maxInFlight,
		MemoryBudget: *memBudget,
		Strict:       *strict,
		MaxQueue:     *maxQueue,
		Force:        *force,
		NoCalibrate:  *noCalibrate,
		Prefetch:     *prefetch,
		Parallelism:  *parallelism,
		Metrics:      reg,
	})
	if *repairEvery > 0 {
		rep, err := sys.Repair(0, *repairEvery, *repairBw)
		if err != nil {
			log.Fatal(err)
		}
		rep.Start()
		defer rep.Stop()
		svc.AttachRepair(rep)
		fmt.Printf("repair: anti-entropy sweep every %v", *repairEvery)
		if *repairBw > 0 {
			fmt.Printf(", copy traffic capped at %.0f B/s", *repairBw)
		}
		fmt.Println()
	}
	if reg != nil {
		mcloser, maddr, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer mcloser.Close()
		fmt.Printf("metrics at http://%s/metrics (pprof on /debug/pprof/)\n", maddr)
	}

	if *replaySteps > 0 {
		batches, err := sciview.LoadBatches(*data)
		if err != nil {
			log.Fatal(err)
		}
		if len(batches) == 0 {
			log.Fatalf("-replay-steps: no append batches under %s/steps/ (generate with sciview-gen -timesteps)", *data)
		}
		ing, err := sys.Ingestor(1)
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			for _, b := range batches {
				time.Sleep(*replaySteps)
				v, err := ing.Append(b)
				if err != nil {
					log.Printf("ingest: step %d failed: %v", b.Step(), err)
					return
				}
				fmt.Printf("ingest: step %d committed as dataset version %d (%d chunks)\n",
					b.Step(), v, b.NumChunks())
			}
			fmt.Println("ingest: replay complete; dataset fully grown")
		}()
		fmt.Printf("ingest: replaying %d time-step batches every %v\n", len(batches), *replaySteps)
	}

	tr := transport.NewTCP()
	closer, err := tr.ServeAddr(service.DefaultServiceName, *addr, svc.Handler())
	if err != nil {
		log.Fatal(err)
	}
	actual, _ := tr.Addr(service.DefaultServiceName)
	fmt.Printf("query service at %s (%d slots", actual, *maxInFlight)
	if *memBudget > 0 {
		mode := "degraded admission"
		if *strict {
			mode = "strict admission"
		}
		fmt.Printf(", %d byte budget, %s", *memBudget, mode)
	}
	fmt.Println("; ctrl-c to drain and stop)")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining: refusing new queries, finishing in-flight...")
	if err := closer.Close(); err != nil { // TCP drain: responses still go out
		log.Print(err)
	}
	svc.Close() // admission drain: blocks until in-flight queries finish
	fmt.Println(svc.Stats())
}

func runClient(addr string, query bool, left, right, on, ranges string, priority int, timeout time.Duration) {
	conn, err := transport.DialAddr(service.DefaultServiceName, addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	client := service.NewClient(conn)

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if !query { // -stats
		st, err := client.Stats(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(st)
		return
	}

	filter, err := parseRanges(ranges)
	if err != nil {
		log.Fatalf("-range: %v", err)
	}
	resp, err := client.Query(ctx, service.Query{
		Req: engine.Request{
			LeftTable:  left,
			RightTable: right,
			JoinAttrs:  strings.Split(on, ","),
			Filter:     filter,
		},
		Priority: priority,
	})
	if err != nil {
		log.Fatal(err)
	}
	degraded := ""
	if resp.Degraded {
		degraded = ", degraded: over budget, spilled to scratch"
	}
	fmt.Printf("%s: %d tuples in %v (queued %v, weight %d bytes%s)\n",
		resp.Result.Engine, resp.Result.Tuples,
		resp.Result.Elapsed.Round(time.Microsecond),
		resp.QueueWait.Round(time.Microsecond), resp.Weight, degraded)
}

// parseRanges parses comma-separated attr:lo:hi triples.
func parseRanges(s string) (metadata.Range, error) {
	var r metadata.Range
	if s == "" {
		return r, nil
	}
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(part, ":")
		if len(f) != 3 {
			return r, fmt.Errorf("want attr:lo:hi, got %q", part)
		}
		lo, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return r, fmt.Errorf("parsing %q: %w", part, err)
		}
		hi, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return r, fmt.Errorf("parsing %q: %w", part, err)
		}
		r.Attrs = append(r.Attrs, f[0])
		r.Lo = append(r.Lo, lo)
		r.Hi = append(r.Hi, hi)
	}
	return r, nil
}
