// sciview-query executes SQL statements against a dataset directory on an
// emulated cluster, printing result rows and, for join queries, the Query
// Planning Service's cost-model decision.
//
// Usage:
//
//	sciview-query -data /tmp/reservoir -compute 5 \
//	   "CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)" \
//	   "SELECT AVG(wp) FROM V1 WHERE x BETWEEN 0 AND 31 GROUP BY z"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sciview"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sciview-query: ")
	var (
		data       = flag.String("data", "", "dataset directory (required)")
		compute    = flag.Int("compute", 4, "number of compute nodes")
		engine     = flag.String("engine", "", "force engine: ij or gh (default: cost-model choice)")
		diskBw     = flag.Float64("disk-bw", 0, "disk bandwidth in bytes/s (0 = unlimited)")
		netBw      = flag.Float64("net-bw", 0, "per-NIC bandwidth in bytes/s (0 = unlimited)")
		wire       = flag.String("wire", "", "fetch codec: rowmajor (default) or colenc (compressed columnar frames)")
		cpuPerOp   = flag.Float64("cpu-per-op", 0, "modeled seconds per hash operation (0 = native)")
		memBudget  = flag.Int64("mem-budget", 0, "per-query memory budget in bytes; blocking operators spill to scratch when over (0 = unlimited)")
		sharedFS   = flag.Bool("shared-fs", false, "route all I/O through a single shared server")
		maxRows    = flag.Int("max-rows", 20, "rows to print per result (0 = all)")
		explainAll = flag.Bool("explain", false, "print cost-model predictions for join queries")
		traceRuns  = flag.Bool("trace", false, "print a per-operation execution trace after each join")
		csvOut     = flag.Bool("csv", false, "print results as CSV instead of aligned text")
	)
	flag.Parse()
	if *data == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := sciview.OpenDataset(*data)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: *compute,
		DiskReadBw:   *diskBw,
		DiskWriteBw:  *diskBw,
		NetBw:        *netBw,
		Wire:         *wire,
		CPUSecPerOp:  *cpuPerOp,
		SharedFS:     *sharedFS,
		MemBudget:    *memBudget,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ForceEngine(*engine); err != nil {
		log.Fatal(err)
	}
	if *traceRuns {
		sys.EnableTrace()
	}
	for _, sql := range flag.Args() {
		fmt.Printf("> %s\n", sql)
		res, err := sys.Exec(sql)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.ViewCreated != "":
			fmt.Printf("view %s created\n", res.ViewCreated)
		case res.Rows != nil:
			if *csvOut {
				if err := res.Rows.WriteCSV(os.Stdout); err != nil {
					log.Fatal(err)
				}
			} else {
				res.Rows.WriteTo(os.Stdout, *maxRows)
				fmt.Printf("(%d rows)\n", res.Rows.NumRows())
			}
		}
		if res.Plan != nil && *explainAll {
			calib := "static"
			if res.Plan.Calibrated {
				calib = "live"
			}
			fmt.Printf("plan: engine=%s forced=%v calib=%s predicted IJ=%v GH=%v measured=%v tuples=%d\n",
				res.Plan.Engine, res.Plan.Forced, calib, res.Plan.PredictIJ, res.Plan.PredictGH,
				res.Plan.Measured, res.Plan.Tuples)
			if res.Plan.SpillBytes > 0 || res.Plan.SpillReadBytes > 0 {
				fmt.Printf("spill: wrote=%d read=%d bytes to scratch (budget %d)\n",
					res.Plan.SpillBytes, res.Plan.SpillReadBytes, *memBudget)
			}
		}
		if *traceRuns {
			if s := sys.TraceSummary(); s != "" {
				fmt.Print(s)
			}
		}
		fmt.Println()
	}
}
