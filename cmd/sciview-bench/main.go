// sciview-bench regenerates the paper's evaluation (Figures 4–9) on the
// emulated cluster, printing for every sweep point the measured IJ and GH
// execution times next to the cost-model predictions.
//
// Usage:
//
//	sciview-bench               # all figures, standard configuration
//	sciview-bench -fig fig4     # one figure
//	sciview-bench -quick        # trimmed sweeps (seconds, for smoke tests)
//
// With -concurrency N it instead drives the concurrent query service
// closed-loop: N clients submit the same join back-to-back, reporting
// throughput, latency percentiles, queue waits and the fetch-dedup rate.
// Adding -sql routes every submission through the streaming plan layer
// (lower, admit on the plan's memory estimate, execute the operator DAG),
// so LIMIT early exit and pushdown show up in the latency numbers.
//
//	sciview-bench -concurrency 8 -duration 10s -max-inflight 4
//	sciview-bench -concurrency 8 -sql 'SELECT * FROM V1 WHERE x < 8 LIMIT 64'
//
// Adding -ingest-steps N turns a -concurrency run into the
// ingest-while-querying scenario: N time-step append batches commit
// spread across the window while the clients query, and a reader pinned
// to the pre-ingest dataset version audits snapshot isolation after every
// commit.
//
//	sciview-bench -concurrency 8 -ingest-steps 4
//
// With -regret it instead replays the golden SQL corpus under several
// cluster regimes, timing every query under both forced engines and
// scoring the planner's static and online-calibrated decisions against
// the measured winner (decision accuracy and wall-clock regret).
//
//	sciview-bench -regret -regret-out BENCH_pr9.json
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"sciview"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sciview-bench: ")
	var (
		fig       = flag.String("fig", "", "figure to run (fig4..fig9; default all)")
		quick     = flag.Bool("quick", false, "trimmed sweeps")
		storage   = flag.Int("storage", 0, "storage nodes (default 5)")
		compute   = flag.Int("compute", 0, "compute nodes (default 5)")
		seed      = flag.Int64("seed", 0, "dataset seed (default 2006)")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations instead of the figures")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned text (single -fig only)")

		concurrency = flag.Int("concurrency", 0, "closed-loop clients driving the query service (0 = run the figures instead)")
		duration    = flag.Duration("duration", 5*time.Second, "measurement window of the -concurrency driver")
		maxInFlight = flag.Int("max-inflight", 0, "service execution slots (default = -concurrency)")
		memBudget   = flag.Int64("mem-budget", 0, "service working-set budget in bytes (0 = unlimited)")
		forceEngine = flag.String("engine", "", "force engine for -concurrency: ij or gh")
		wire        = flag.String("wire", "", "fetch codec for -concurrency: rowmajor (default) or colenc (compressed columnar frames)")
		replicas    = flag.Int("replicas", 1, "chunk copies across storage nodes for -concurrency (enables failover)")
		faults      = flag.String("faults", "", "chaos schedule for -concurrency, e.g. crash:storage-1:fetch:20 (see internal/fault)")
		prefetch    = flag.Int("prefetch", sciview.DefaultPrefetch, "IJ joiner lookahead depth for -concurrency (0 = disabled)")
		parallelism = flag.Int("parallelism", 0, "hash-join kernel workers for -concurrency (0 = all CPUs, 1 = serial)")
		sqlQuery    = flag.String("sql", "", "SQL SELECT each -concurrency client submits via the streaming plan layer (may use T1, T2 and view V1; empty = raw join request)")
		ingestSteps = flag.Int("ingest-steps", 0, "commit this many time-step append batches spread across the -concurrency window, auditing snapshot isolation with a version-pinned reader")
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics (/metrics, /debug/pprof/) at this address during -concurrency runs and dump a snapshot in the report; empty disables instrumentation")

		repairInterval = flag.Duration("repair-interval", 0, "run the self-healing repair tier during -concurrency runs, sweeping for under-replicated chunks and catching up restarted nodes at this period (0 disables)")
		repairBw       = flag.Float64("repair-bw", 0, "repair copy-traffic bandwidth cap in bytes/s (0 = uncapped)")

		regret    = flag.Bool("regret", false, "replay the golden SQL corpus under several cluster regimes, scoring the static and online-calibrated planner layers against the measured-faster engine")
		regretOut = flag.String("regret-out", "", "write the -regret report as JSON to this path")
	)
	flag.Parse()
	if *regret {
		if _, err := sciview.RunRegret(sciview.RegretSpec{
			Quick: *quick,
			Seed:  *seed,
			Out:   *regretOut,
		}, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *concurrency > 0 {
		if _, err := sciview.RunServiceBench(sciview.ServiceBenchSpec{
			Concurrency:    *concurrency,
			Duration:       *duration,
			MaxInFlight:    *maxInFlight,
			MemoryBudget:   *memBudget,
			StorageNodes:   *storage,
			ComputeNodes:   *compute,
			Engine:         *forceEngine,
			Wire:           *wire,
			Seed:           *seed,
			Replicas:       *replicas,
			Faults:         *faults,
			Prefetch:       *prefetch,
			Parallelism:    *parallelism,
			SQL:            *sqlQuery,
			IngestSteps:    *ingestSteps,
			MetricsAddr:    *metricsAddr,
			RepairInterval: *repairInterval,
			RepairBw:       *repairBw,
		}, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	spec := sciview.ExperimentSpec{
		Quick:        *quick,
		StorageNodes: *storage,
		ComputeNodes: *compute,
		Seed:         *seed,
	}
	if *ablations {
		if err := sciview.RunAblations(spec, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *fig == "fig6scale" {
		sciview.RunPaperScale(os.Stdout)
		return
	}
	if *fig == "" {
		if err := sciview.RunAllExperiments(spec, os.Stdout); err != nil {
			log.Fatal(err)
		}
		sciview.RunPaperScale(os.Stdout)
		return
	}
	e, err := sciview.RunExperiment(*fig, spec)
	if err != nil {
		log.Fatal(err)
	}
	if *csvOut {
		if err := e.CSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	e.Print(os.Stdout)
}
