// sciview-repl is an interactive SQL shell over a dataset directory: an
// emulated cluster is assembled around the dataset and statements are read
// from stdin, one per line.
//
//	$ sciview-repl -data /tmp/resv -compute 4
//	sciview> CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)
//	view V1 created
//	sciview> SELECT AVG(wp) FROM V1 GROUP BY z LIMIT 4
//	...
//
// Shell commands: \engine ij|gh|auto, \explain <view>, \tables, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sciview"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sciview-repl: ")
	var (
		data      = flag.String("data", "", "dataset directory (required)")
		compute   = flag.Int("compute", 4, "number of compute nodes")
		diskBw    = flag.Float64("disk-bw", 0, "disk bandwidth in bytes/s (0 = unlimited)")
		netBw     = flag.Float64("net-bw", 0, "per-NIC bandwidth in bytes/s (0 = unlimited)")
		wire      = flag.String("wire", "", "fetch codec: rowmajor (default) or colenc (compressed columnar frames)")
		maxRows   = flag.Int("max-rows", 20, "rows to print per result (0 = all)")
		memBudget = flag.Int64("mem-budget", 0, "per-query memory budget in bytes; blocking operators spill to scratch when over (0 = unlimited)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := sciview.OpenDataset(*data)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: *compute,
		DiskReadBw:   *diskBw, DiskWriteBw: *diskBw,
		NetBw:     *netBw,
		Wire:      *wire,
		MemBudget: *memBudget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tables: %s — type SQL, or \\help\n", strings.Join(ds.Tables(), ", "))

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("sciview> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\quit`, line == `\q`, line == "exit":
			return
		case line == `\help`:
			fmt.Println(`SQL:  CREATE VIEW v AS SELECT * FROM a JOIN b ON (x, y) [WHERE ...]
      CREATE VIEW v2 AS SELECT * FROM v [WHERE ...]
      SELECT cols|*|AGG(col) FROM t [WHERE ...] [GROUP BY ...]
          [HAVING ...] [ORDER BY ...] [LIMIT n]
      EXPLAIN SELECT ...    print the streaming plan, don't execute
Shell: \engine ij|gh|auto   force or restore engine choice
       \explain <view>      cost-model comparison for a view
       \tables              list tables
       \quit`)
		case line == `\tables`:
			fmt.Println(strings.Join(ds.Tables(), ", "))
		case strings.HasPrefix(line, `\engine`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\engine`))
			if arg == "auto" {
				arg = ""
			}
			if err := sys.ForceEngine(arg); err != nil {
				fmt.Println(err)
			} else if arg == "" {
				fmt.Println("engine: cost-model choice")
			} else {
				fmt.Printf("engine forced: %s\n", arg)
			}
		case strings.HasPrefix(line, `\explain`):
			view := strings.TrimSpace(strings.TrimPrefix(line, `\explain`))
			info, err := sys.Explain(view)
			if err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Printf("engine %s: predicted IJ %v, GH %v\n", info.Engine, info.PredictIJ, info.PredictGH)
		default:
			res, err := sys.Exec(line)
			if err != nil {
				fmt.Println(err)
				continue
			}
			switch {
			case res.ViewCreated != "":
				fmt.Printf("view %s created\n", res.ViewCreated)
			case res.Explain != "":
				fmt.Print(res.Explain)
			case res.Rows != nil:
				res.Rows.WriteTo(os.Stdout, *maxRows)
				if res.Plan != nil {
					calib := "static"
					if res.Plan.Calibrated {
						calib = "live"
					}
					fmt.Printf("(%d rows; engine %s, %s constants, in %v)\n",
						res.Rows.NumRows(), res.Plan.Engine, calib, res.Plan.Measured)
				} else {
					fmt.Printf("(%d rows)\n", res.Rows.NumRows())
				}
			}
		}
	}
}
