#!/bin/sh
# Microbenchmark harness for the pipelined-joiner work: runs the hash-join
# kernel benches (map baseline vs flat table, serial vs parallel), the
# tuple codec benches (seed append-growth encoder vs pooled single-shot)
# and the end-to-end IJ workload (prefetch off vs on), all with -benchmem,
# and writes the parsed results plus headline ratios to BENCH_pr3.json.
# A second leg runs the streaming-plan LIMIT early-exit benchmark
# (materialized full-schedule join vs streaming cancel-on-limit) and writes
# the edge-fraction/peak-memory comparison to BENCH_pr4.json.
# A third leg is the metrics overhead guard: the IJ workload with a no-op
# (nil) registry vs a live instrumented one, plus the instrument
# microbenches, written to BENCH_pr5.json; the headline ratio
# metrics_overhead_fraction must stay ≤ 0.03.
# A fourth leg benchmarks living-dataset view maintenance on an
# append-heavy workload (fold one committed time step into a materialized
# join view): delta-join refresh vs full recompute, written to
# BENCH_pr6.json with the headline delta_refresh_speedup_vs_full.
# A fifth leg benchmarks the compressed columnar wire format on
# network-bound IJ and GH workloads (8 MB/s NICs): row-major vs colenc
# fetch codec, written to BENCH_pr8.json with the headline fetch-byte and
# wall-clock reductions (both must clear 30% on this data).
# A sixth leg runs the adaptive-planner regret replay: the golden SQL
# corpus under several cluster regimes, each query timed under both forced
# engines, scoring the static and online-calibrated decisions against the
# measured winner. The harness writes BENCH_pr9.json itself (decision
# accuracy and wall-clock regret per layer); adaptive accuracy must stay
# >= 0.80.
# A seventh leg prices out-of-core execution: one sort + grouped-aggregate
# + join query swept from unbudgeted down to a 4 KiB budget (sort runs,
# aggregation partitions and join build all on scratch), written to
# BENCH_pr10.json with the per-budget wall-clock ratios vs in-memory and
# the scratch volume each budget causes.
#
#   scripts/bench.sh [pr3.json] [pr4.json] [pr5.json] [pr6.json] [pr8.json] [pr9.json] [pr10.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr3.json}"
out4="${2:-BENCH_pr4.json}"
out5="${3:-BENCH_pr5.json}"
out6="${4:-BENCH_pr6.json}"
out8="${5:-BENCH_pr8.json}"
out9="${6:-BENCH_pr9.json}"
out10="${7:-BENCH_pr10.json}"
raw="$(mktemp)"
raw4="$(mktemp)"
raw5="$(mktemp)"
raw6="$(mktemp)"
raw8="$(mktemp)"
raw10="$(mktemp)"
trap 'rm -f "$raw" "$raw4" "$raw5" "$raw6" "$raw8" "$raw10"' EXIT

echo "== hashjoin kernels (Build/Probe: map vs flat, serial vs parallel)"
go test -run '^$' -bench 'BenchmarkBuild|BenchmarkProbe' -benchtime 200x -benchmem \
    ./internal/hashjoin/ | tee -a "$raw"

echo "== tuple codec (Encode: seed vs pooled; Decode)"
go test -run '^$' -bench 'BenchmarkEncode|BenchmarkDecode' -benchtime 200x -benchmem \
    ./internal/tuple/ | tee -a "$raw"

echo "== IJ workload (throttled cluster, prefetch off vs on)"
go test -run '^$' -bench BenchmarkIJWorkload -benchtime 5x -benchmem \
    ./internal/ij/ | tee -a "$raw"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bop[name] = $(i-1)
        if ($i == "allocs/op") aop[name] = $(i-1)
        if ($i == "MB/s")      mbs[name] = $(i-1)
    }
    order[++n] = name
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", k, ns[k]
        if (k in mbs) printf ", \"mb_per_s\": %s", mbs[k]
        if (k in bop) printf ", \"bytes_per_op\": %s", bop[k]
        if (k in aop) printf ", \"allocs_per_op\": %s", aop[k]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n  \"ratios\": {\n"
    bm = ns["BenchmarkBuild/map/n=262144"];  bf = ns["BenchmarkBuild/flatpar/n=262144"]
    pm = ns["BenchmarkProbe/map/n=262144"]; pf = ns["BenchmarkProbe/flatpar/n=262144"]
    es = ns["BenchmarkEncode/seed/n=65536"]; ep = ns["BenchmarkEncode/pooled/n=65536"]
    as = aop["BenchmarkEncode/seed/n=65536"]; ap = aop["BenchmarkEncode/pooled/n=65536"]
    i0 = ns["BenchmarkIJWorkload/prefetch=0"]; i2 = ns["BenchmarkIJWorkload/prefetch=2"]
    if (bm && bf) printf "    \"build_speedup_vs_map\": %.2f,\n", bm / bf
    if (pm && pf) printf "    \"probe_speedup_vs_map\": %.2f,\n", pm / pf
    if (bm && bf && pm && pf)
        printf "    \"build_plus_probe_speedup_vs_map\": %.2f,\n", (bm + pm) / (bf + pf)
    if (es && ep) printf "    \"encode_speedup_vs_seed\": %.2f,\n", es / ep
    if (ap != "" && as) printf "    \"encode_allocs_reduction\": %.3f,\n", 1 - ap / as
    if (i0 && i2) printf "    \"ij_prefetch_wallclock_reduction\": %.3f\n", 1 - i2 / i0
    printf "  }\n}\n"
}
' "$raw" > "$out"

echo "== wrote $out"
cat "$out"

echo "== streaming plan LIMIT early exit (materialized vs streaming)"
go test -run '^$' -bench BenchmarkLimitEarlyExit -benchtime 10x \
    ./internal/planner/ | tee "$raw4"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($i == "edgefrac") ef[name] = $(i-1)
        if ($i == "peakMB")   pk[name] = $(i-1)
    }
    order[++n] = name
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", k, ns[k]
        if (k in ef) printf ", \"edge_fraction_joined\": %s", ef[k]
        if (k in pk) printf ", \"peak_mb\": %s", pk[k]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n  \"ratios\": {\n"
    m = "BenchmarkLimitEarlyExit/materialized"; s = "BenchmarkLimitEarlyExit/streaming"
    if (ns[m] && ns[s]) printf "    \"limit_wallclock_reduction\": %.3f,\n", 1 - ns[s] / ns[m]
    if (ef[m] && ef[s]) printf "    \"limit_edge_fraction_joined\": %.3f,\n", ef[s] / ef[m]
    if (pk[m] && pk[s]) printf "    \"limit_peak_memory_reduction\": %.3f\n", 1 - pk[s] / pk[m]
    printf "  }\n}\n"
}
' "$raw4" > "$out4"

echo "== wrote $out4"
cat "$out4"

echo "== metrics overhead (IJ workload: no-op registry vs instrumented)"
go test -run '^$' -bench BenchmarkIJMetricsOverhead -benchtime 5x \
    ./internal/ij/ | tee "$raw5"

echo "== metrics instruments (nil vs live counter, live histogram)"
go test -run '^$' -bench 'BenchmarkCounterNoop|BenchmarkCounterLive|BenchmarkHistogramLive' \
    -benchmem ./internal/metrics/ | tee -a "$raw5"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bop[name] = $(i-1)
        if ($i == "allocs/op") aop[name] = $(i-1)
    }
    order[++n] = name
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", k, ns[k]
        if (k in bop) printf ", \"bytes_per_op\": %s", bop[k]
        if (k in aop) printf ", \"allocs_per_op\": %s", aop[k]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n  \"ratios\": {\n"
    off = ns["BenchmarkIJMetricsOverhead/noop"]
    on  = ns["BenchmarkIJMetricsOverhead/instrumented"]
    if (off && on) printf "    \"metrics_overhead_fraction\": %.4f\n", on / off - 1
    printf "  }\n}\n"
}
' "$raw5" > "$out5"

echo "== wrote $out5"
cat "$out5"

echo "== view maintenance (delta-join refresh vs full recompute per appended step)"
go test -run '^$' -bench BenchmarkViewMaintenance -benchtime 5x \
    ./internal/ingest/ | tee "$raw6"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    order[++n] = name
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s}%s\n", k, ns[k], (i < n ? "," : "")
    }
    printf "  ],\n  \"ratios\": {\n"
    d = ns["BenchmarkViewMaintenance/delta"]
    f = ns["BenchmarkViewMaintenance/full"]
    if (d && f) {
        printf "    \"delta_refresh_speedup_vs_full\": %.2f,\n", f / d
        printf "    \"delta_refresh_wallclock_reduction\": %.3f\n", 1 - d / f
    }
    printf "  }\n}\n"
}
' "$raw6" > "$out6"

echo "== wrote $out6"
cat "$out6"

echo "== compressed wire format (network-bound IJ + GH: rowmajor vs colenc)"
go test -run '^$' -bench 'BenchmarkIJWire|BenchmarkGHWire' -benchtime 5x \
    ./internal/ij/ ./internal/gh/ | tee "$raw8"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($i == "fetchMB") mb[name] = $(i-1)
    }
    order[++n] = name
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", k, ns[k]
        if (k in mb) printf ", \"fetch_mb\": %s", mb[k]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n  \"ratios\": {\n"
    ir = "BenchmarkIJWire/wire=rowmajor"; ic = "BenchmarkIJWire/wire=colenc"
    gr = "BenchmarkGHWire/wire=rowmajor"; gc = "BenchmarkGHWire/wire=colenc"
    if (mb[ir] && mb[ic]) printf "    \"ij_fetch_bytes_reduction\": %.3f,\n", 1 - mb[ic] / mb[ir]
    if (ns[ir] && ns[ic]) printf "    \"ij_wire_wallclock_reduction\": %.3f,\n", 1 - ns[ic] / ns[ir]
    if (mb[gr] && mb[gc]) printf "    \"gh_fetch_bytes_reduction\": %.3f,\n", 1 - mb[gc] / mb[gr]
    if (ns[gr] && ns[gc]) printf "    \"gh_wire_wallclock_reduction\": %.3f\n", 1 - ns[gc] / ns[gr]
    printf "  }\n}\n"
}
' "$raw8" > "$out8"

echo "== wrote $out8"
cat "$out8"

echo "== adaptive planner regret replay (static vs calibrated vs forced engines)"
go run ./cmd/sciview-bench -regret -regret-out "$out9"

echo "== wrote $out9"
awk '/"adaptive_accuracy"/ {
    acc = $2 + 0
    if (acc < 0.80) { printf "adaptive_accuracy %.2f below 0.80 floor\n", acc; exit 1 }
    printf "adaptive_accuracy %.2f >= 0.80\n", acc
}' "$out9"

echo "== out-of-core sweep (sort+aggregate+join at shrinking budgets vs in-memory)"
go test -run '^$' -bench BenchmarkSpillSweep -benchtime 5x \
    ./internal/planner/ | tee "$raw10"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($i == "spillMB") mb[name] = $(i-1)
    }
    order[++n] = name
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", k, ns[k]
        if (k in mb) printf ", \"spill_mb\": %s", mb[k]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n  \"ratios\": {\n"
    base = ns["BenchmarkSpillSweep/budget=inmem"]
    b1 = ns["BenchmarkSpillSweep/budget=1MiB"]
    b64 = ns["BenchmarkSpillSweep/budget=64KiB"]
    b4 = ns["BenchmarkSpillSweep/budget=4KiB"]
    if (base && b1)  printf "    \"spill_1MiB_wallclock_ratio\": %.2f,\n", b1 / base
    if (base && b64) printf "    \"spill_64KiB_wallclock_ratio\": %.2f,\n", b64 / base
    if (base && b4)  printf "    \"spill_4KiB_wallclock_ratio\": %.2f\n", b4 / base
    printf "  }\n}\n"
}
' "$raw10" > "$out10"

echo "== wrote $out10"
cat "$out10"
