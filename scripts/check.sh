#!/bin/sh
# Repository health check: build, vet, full test suite, then the race
# detector over the concurrency-sensitive packages (query service, cache +
# singleflight, transport, cluster) and the root short-mode service bench,
# the metrics stress test (/metrics scraped while concurrent queries run),
# the differential harness, the living-dataset ingest suite (snapshot
# isolation, delta==full view maintenance, R-tree insert-during-query),
# the out-of-core suite (scratch manager, budget-sweep differential,
# spill hygiene + chaos, degraded admission),
# and parser + chunk-extractor fuzz smokes.
# Mirrors `make check` for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (service, cache, transport, cluster)"
go test -race -count=1 ./internal/service ./internal/cache ./internal/transport ./internal/cluster

echo "== go test -race -short (root service bench)"
go test -race -short -count=1 -run TestServiceBenchShort .

echo "== go test -race (chaos matrix: fault/retry/breaker + drop/delay/crash x IJ/GH)"
go test -race -count=1 ./internal/chaos ./internal/fault ./internal/retry ./internal/breaker

echo "== go test -race (self-healing: repair manager unit suite + crash-restart-converge)"
go test -race -count=1 ./internal/repair
go test -race -count=1 -run TestCrashRestartConverge ./internal/chaos

echo "== go test -race (streaming plan goldens: streaming == materialized, incl. chaos + views races)"
go test -race -count=1 ./internal/plan
go test -race -count=1 -run 'TestGolden|TestConcurrentView|TestExplain' ./internal/planner

echo "== go test -race (parallel kernels + pipelined joiners, stressed)"
go test -race -count=3 ./internal/hashjoin ./internal/ij ./internal/gh ./internal/tuple

echo "== go test (GOMAXPROCS=1: parallel paths degrade to serial cleanly)"
GOMAXPROCS=1 go test -count=1 ./internal/hashjoin ./internal/ij ./internal/gh

echo "== go test -race (metrics registry + /metrics scraped during a concurrent bench run)"
go test -race -count=1 ./internal/metrics
go test -race -count=1 -run TestMetricsScrapeDuringServiceBench .

echo "== go test -race (differential harness: streaming==materialized, IJ==GH, faulted leg)"
go test -race -count=1 -run TestDifferential ./internal/planner

echo "== go test -race (out-of-core: scratch manager, budget sweep, spill hygiene, degraded admission, chaos spill)"
go test -race -count=1 ./internal/scratch
go test -race -count=1 -run 'TestBudgetSweep|TestScratchReaped|TestExplainSpillAnnotations' ./internal/planner
go test -race -count=1 -run 'TestDegradedAdmission|TestStrictRejectsOverBudget' ./internal/service
go test -race -count=1 -run 'TestSpillUnderChaos' ./internal/chaos
go test -race -count=1 -run 'TestJoinPairSpill' ./internal/hashjoin

echo "== go test -race (wire codec: compressed vs row-major byte-identical, incl. faulted leg)"
go test -race -count=1 -run 'TestGoldenCorpusWireInvariant|TestDifferentialWire|TestWire' ./internal/planner ./internal/cluster ./internal/colenc

echo "== go test -race (living datasets: ingest, snapshot pins, delta==full, insert-during-query)"
go test -race -count=1 ./internal/ingest
go test -race -count=3 -run TestConcurrentAppendDuringQuery ./internal/metadata
go test -race -count=1 -run TestLivingDataset .

echo "== go test -race (adaptive planner: calibration flip, cost-model default path, regret smoke)"
go test -race -count=1 -run 'TestCalibrationMovesConstantsAndFlipsDecision' ./internal/planner
go test -race -count=1 -run 'TestSubmitSQLCostModelDefault' ./internal/service
go test -race -count=1 -run TestRegretSmoke .

echo "== fuzz smoke (parser must never panic, 10s)"
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/query

echo "== fuzz smoke (chunk extractors over the seeded RLE/ColMajor/dict/delta corpus, 10s)"
go test -run '^$' -fuzz FuzzExtractors -fuzztime 10s ./internal/chunk

echo "== fuzz smoke (SVT2 wire codec round-trip over the seeded frame corpus, 10s)"
go test -run '^$' -fuzz FuzzWireCodec -fuzztime 10s ./internal/colenc

echo "== bench smoke (kernels + codec, 100 iterations)"
go test -run '^$' -bench . -benchtime 100x ./internal/hashjoin ./internal/tuple

echo "OK"
