package sciview

import (
	"io"
	"testing"
)

// TestRegretSmoke replays the quick regret corpus (one scenario) and
// guards the adaptive planner's decision quality: on a regime this
// lopsided the calibrated layer must beat a coin flip, report every query,
// and never regress below the static layer by more than one decision.
func TestRegretSmoke(t *testing.T) {
	rep, err := RunRegret(RegretSpec{Quick: true}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || len(rep.Queries) != rep.Total {
		t.Fatalf("report counted %d queries over %d entries", rep.Total, len(rep.Queries))
	}
	if rep.AdaptiveAccuracy < 0.5 {
		t.Errorf("adaptive decision accuracy %.2f (%d/%d), want >= 0.5:\n%+v",
			rep.AdaptiveAccuracy, rep.AdaptiveCorrect, rep.Total, rep.Queries)
	}
	if rep.AdaptiveCorrect < rep.StaticCorrect-1 {
		t.Errorf("calibration made decisions worse: adaptive %d vs static %d correct",
			rep.AdaptiveCorrect, rep.StaticCorrect)
	}
	for _, q := range rep.Queries {
		if q.AdaptiveRegret < 0 || q.StaticRegret < 0 {
			t.Errorf("%s: negative regret (%g / %g)", q.SQL, q.StaticRegret, q.AdaptiveRegret)
		}
		if q.Faster != "ij" && q.Faster != "gh" {
			t.Errorf("%s: faster = %q", q.SQL, q.Faster)
		}
	}
}
