package sciview

import (
	"bufio"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsScrapeDuringServiceBench is the system-level observability
// stress test: a sciview-bench-style closed loop (concurrent SQL clients
// through admission + streaming plans) runs with MetricsAddr set, while
// scrapers hammer /metrics mid-run. It proves the acceptance criterion
// directly — the endpoint serves live cache, breaker, admission,
// per-operator, fetch and transport counters while queries are in flight
// — and, under check.sh's -race leg, that scrape-time reads (GaugeFunc
// callbacks taking the service/cache locks, histogram bucket loads) are
// race-free against the instrumented hot paths.
func TestMetricsScrapeDuringServiceBench(t *testing.T) {
	// RunServiceBench announces the bound metrics address on its writer
	// before starting the closed loop; read it through a pipe.
	pr, pw := io.Pipe()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "metrics: http://"); ok {
				addrCh <- strings.TrimSuffix(strings.Fields(rest)[0], "/metrics")
			}
		}
	}()
	type outcome struct {
		res *ServiceBenchResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunServiceBench(ServiceBenchSpec{
			Concurrency:  4,
			Duration:     1500 * time.Millisecond,
			StorageNodes: 2,
			ComputeNodes: 2,
			Engine:       "ij",
			SQL:          "SELECT * FROM V1 WHERE x < 8 LIMIT 64",
			MetricsAddr:  "127.0.0.1:0",
		}, pw)
		pw.Close()
		done <- outcome{res, err}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case o := <-done:
		t.Fatalf("bench finished before announcing a metrics address (err: %v)", o.err)
	}

	// Background scrapers add scrape-vs-update contention beyond the
	// asserting loop below; they stop at the first post-shutdown error.
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				resp, err := http.Get("http://" + addr + "/metrics")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	defer scrapers.Wait()

	// The families every layer must surface mid-run. Operator counters
	// appear once the first streaming plan completes; everything else
	// registers at construction.
	want := []string{
		"sciview_cache_hits_total",
		"sciview_cache_misses_total",
		"sciview_cache_bytes",
		"sciview_flight_leads_total",
		"sciview_breaker_state",
		"sciview_queries_total",
		"sciview_queue_depth",
		"sciview_inflight",
		"sciview_mem_used_bytes",
		"sciview_queue_wait_seconds_count",
		"sciview_query_seconds_count",
		"sciview_operator_rows_total",
		"sciview_fetch_total",
		"sciview_transport_frames_total",
	}
	missing := func(body string) []string {
		var m []string
		for _, w := range want {
			if !strings.Contains(body, w) {
				m = append(m, w)
			}
		}
		return m
	}
	var lastBody string
	for {
		select {
		case o := <-done:
			// The run ended (and closed the listener) before a scrape saw
			// every family — judge the last successful scrape.
			if o.err != nil {
				t.Fatal(o.err)
			}
			if m := missing(lastBody); len(m) > 0 {
				t.Fatalf("families never scraped mid-run: %v\nlast scrape:\n%s", m, lastBody)
			}
			return
		default:
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lastBody = string(b)
			if len(missing(lastBody)) == 0 {
				o := <-done
				if o.err != nil {
					t.Fatal(o.err)
				}
				if o.res.Queries == 0 {
					t.Fatal("no queries completed in the window")
				}
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
}
