package sciview_test

import (
	"fmt"
	"log"

	"sciview"
)

// ExampleSystem demonstrates the end-to-end flow: generate a dataset,
// define a join view, and run range and aggregation queries.
func ExampleSystem() {
	ds, err := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
		Grid:         sciview.Dims{X: 8, Y: 8, Z: 4},
		LeftPart:     sciview.Dims{X: 4, Y: 4, Z: 4},
		RightPart:    sciview.Dims{X: 4, Y: 4, Z: 4},
		StorageNodes: 2,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{ComputeNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	sys.SetAlphas(100e-9, 50e-9) // skip calibration for a deterministic example

	if _, err := sys.Exec(`CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Exec(`SELECT COUNT(*) FROM V1 WHERE z = 0`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid points in plane z=0: %g\n", res.Rows.Value(0, 0))
	// Output:
	// grid points in plane z=0: 64
}

// ExampleDatasetBuilder shows registering a custom dataset: your own
// tables, chunk layouts, and placement.
func ExampleDatasetBuilder() {
	b := sciview.NewDatasetBuilder(1)
	b.CreateTable("sensors", sciview.Schema{
		{Name: "x", Coord: true},
		{Name: "y", Coord: true},
		{Name: "temp"},
	})
	b.AppendChunk("sensors", 0, "csv", [][]float32{
		{0, 0, 21.5},
		{1, 0, 22.0},
		{0, 1, 20.8},
		{1, 1, 23.1},
	})
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{})
	if err != nil {
		log.Fatal(err)
	}
	sys.SetAlphas(100e-9, 50e-9)
	res, err := sys.Exec(`SELECT MAX(temp) FROM sensors WHERE y = 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hottest sensor in row 1: %.1f\n", res.Rows.Value(0, 0))
	// Output:
	// hottest sensor in row 1: 23.1
}

// ExampleSystem_Explain shows the Query Planning Service's cost-model
// decision without executing the join.
func ExampleSystem_Explain() {
	ds, err := sciview.GenerateOilReservoir(sciview.OilReservoirSpec{
		Grid:         sciview.Dims{X: 16, Y: 16, Z: 8},
		LeftPart:     sciview.Dims{X: 4, Y: 4, Z: 8},
		RightPart:    sciview.Dims{X: 4, Y: 4, Z: 8},
		StorageNodes: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sciview.NewSystem(ds, sciview.ClusterSpec{
		ComputeNodes: 2,
		DiskReadBw:   2e6, DiskWriteBw: 2e6, NetBw: 4e6,
		CPUSecPerOp: 2.5e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.SetAlphas(100e-9, 50e-9)
	if _, err := sys.Exec(`CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)`); err != nil {
		log.Fatal(err)
	}
	info, err := sys.Explain("V")
	if err != nil {
		log.Fatal(err)
	}
	// A degree-1 connectivity graph: IJ avoids Grace Hash's bucket I/O.
	fmt.Printf("planner chose: %s\n", info.Engine)
	// Output:
	// planner chose: ij
}
