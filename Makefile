GO ?= go

.PHONY: all build vet test race chaos fuzz check bench benchfig clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector: the query
# service, the caches/singleflight groups, the transport, the cluster and
# both engines in shared mode.
race:
	$(GO) test -race -count=1 ./internal/service ./internal/cache ./internal/transport ./internal/cluster ./internal/metrics
	$(GO) test -race -short -count=1 -run TestServiceBenchShort .
	$(GO) test -race -count=1 -run TestMetricsScrapeDuringServiceBench .

# The fault-injection matrix (drop/delay/crash × IJ/GH) plus the recovery
# building blocks, all under the race detector: chaos recovery paths are
# where concurrent state transitions hide.
chaos:
	$(GO) test -race -count=1 ./internal/chaos ./internal/fault ./internal/retry ./internal/breaker
	$(GO) test -race -count=1 ./internal/repair
	$(GO) test -race -count=1 -run TestCrashRestartConverge ./internal/chaos

# Parser fuzz smoke: the grammar must reject, never panic. Seeds come
# from the golden-test SQL corpus; 10s is the CI budget, run longer when
# touching the parser.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/query

check: build vet test race chaos fuzz

# Kernel/codec/IJ-workload microbenchmarks with -benchmem, parsed into
# BENCH_pr3.json (map-vs-flat and prefetch-off-vs-on ratios included),
# the streaming LIMIT early-exit leg (BENCH_pr4.json), and the metrics
# overhead guard (BENCH_pr5.json: instrumented vs no-op registry on the
# IJ workload; the overhead fraction must stay ≤ 0.03).
bench:
	sh scripts/bench.sh

# The paper-figure reproduction benches (the old `make bench`).
benchfig:
	$(GO) test -bench=Fig -benchtime=1x ./...

clean:
	$(GO) clean ./...
