GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector: the query
# service, the caches/singleflight groups, the transport, the cluster and
# both engines in shared mode.
race:
	$(GO) test -race -count=1 ./internal/service ./internal/cache ./internal/transport ./internal/cluster
	$(GO) test -race -short -count=1 -run TestServiceBenchShort .

check: build vet test race

bench:
	$(GO) test -bench=Fig -benchtime=1x ./...

clean:
	$(GO) clean ./...
