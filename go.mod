module sciview

go 1.22
