package ingest

import (
	"sync"

	"sciview/internal/bbox"
	"sciview/internal/cache"
	"sciview/internal/chunk"
	"sciview/internal/tuple"
)

// ResultCache is a derived-result cache that stays correct under ingest:
// each entry registers the table regions its result was computed from, and
// an append commit removes exactly the entries whose regions intersect the
// new chunks — the watcher's R-tree answers "which entries", so a commit
// never flushes the cache wholesale. Entries for untouched regions keep
// serving hits across any number of appends.
//
// (The per-chunk sub-table caches on the compute nodes need no
// invalidation at all: chunk bytes are immutable and chunk ids are never
// reused, so those entries are valid at every version that can see their
// chunk. Only results derived from a *set* of chunks — the set an append
// can grow — go stale, and those are what this cache holds.)
type ResultCache struct {
	w *Watcher

	mu      sync.Mutex
	c       cache.Cache[string, *tuple.SubTable]
	handles map[string]int
}

// NewResultCache builds an LRU result cache of the given byte capacity,
// wired to the watcher for targeted invalidation.
func NewResultCache(w *Watcher, capacity int64) (*ResultCache, error) {
	c, err := cache.NewPolicy[string, *tuple.SubTable]("lru", capacity)
	if err != nil {
		return nil, err
	}
	return &ResultCache{w: w, c: c, handles: make(map[string]int)}, nil
}

// Get returns the cached result for key, if still valid.
func (rc *ResultCache) Get(key string) (*tuple.SubTable, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	v, ok := rc.c.Get(key)
	if !ok {
		// Capacity eviction bypasses invalidate: reap the orphaned
		// watcher registration here so the region index doesn't
		// accumulate dead entries.
		if h, reg := rc.handles[key]; reg {
			rc.w.Unregister(h)
			delete(rc.handles, key)
		}
	}
	return v, ok
}

// Put caches a result with the regions it depends on (table name →
// coordinate box, see RegionFor). A later commit intersecting any region
// removes the entry.
func (rc *ResultCache) Put(key string, rows *tuple.SubTable, regions map[string]bbox.Box) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if h, ok := rc.handles[key]; ok {
		rc.w.Unregister(h)
		delete(rc.handles, key)
	}
	rc.c.Put(key, rows, int64(rows.Bytes()))
	rc.handles[key] = rc.w.Register(&Dependent{
		Name:    "result:" + key,
		Regions: regions,
		Notify:  func(int64, []*chunk.Desc) { rc.invalidate(key) },
	})
}

// invalidate drops one entry and its watcher registration.
func (rc *ResultCache) invalidate(key string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	h, ok := rc.handles[key]
	if !ok {
		return
	}
	rc.w.Unregister(h)
	delete(rc.handles, key)
	rc.c.Remove(key)
}

// Len reports the number of live entries.
func (rc *ResultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.c.Len()
}
