package ingest

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/cluster"
	"sciview/internal/dds"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/plan"
	"sciview/internal/planner"
	"sciview/internal/query"
	"sciview/internal/tuple"
)

// ViewConfig assembles a MaterializedView.
type ViewConfig struct {
	Cluster *cluster.Cluster
	Planner *planner.Planner
	// View is the equi-join view to materialize.
	View *dds.JoinView
	// Watcher, when set, registers the view's filter region so commits
	// that intersect it mark the view stale (and commits that don't,
	// don't).
	Watcher *Watcher
	// Metrics, when set, registers sciview_ingest_refreshes_total with a
	// mode label ("delta" or "full").
	Metrics *metrics.Registry
}

// MaterializedView holds a join view's full result, canonically ordered,
// together with the catalog version it reflects. Refresh folds committed
// append batches in incrementally with the delta-join identity
//
//	ΔV = ΔL ⋈ R_old  ∪  L_old ⋈ ΔR  ∪  ΔL ⋈ ΔR
//
// where each term runs through the ordinary streaming plan operators with
// per-side catalog-version windows — the same code path queries use, just
// restricted to the right slices of the version history. The maintained
// result is byte-identical to recomputing the view from scratch at the
// same version (RefreshFull), which the differential tests assert.
//
// Rows are kept in canonical order (lexicographic over all columns):
// engine arrival order depends on scheduling and is not stable across
// maintenance strategies, so the canonical sort is what makes
// "byte-identical" well-defined.
type MaterializedView struct {
	cfg ViewConfig

	mu      sync.Mutex
	rows    *tuple.SubTable
	version int64
	stale   bool
	handle  int

	refreshDelta *metrics.Counter
	refreshFull  *metrics.Counter
}

// NewMaterializedView builds the view's initial materialization at the
// catalog's current version.
func NewMaterializedView(cfg ViewConfig) (*MaterializedView, error) {
	if cfg.Cluster == nil || cfg.Planner == nil || cfg.View == nil {
		return nil, fmt.Errorf("ingest: view config needs Cluster, Planner and View")
	}
	m := &MaterializedView{cfg: cfg, handle: -1}
	reg := cfg.Metrics
	m.refreshDelta = reg.Counter("sciview_ingest_refreshes_total", "Materialized view refreshes by mode.", "mode", "delta")
	m.refreshFull = reg.Counter("sciview_ingest_refreshes_total", "Materialized view refreshes by mode.", "mode", "full")
	if _, err := m.RefreshFull(); err != nil {
		return nil, err
	}
	if cfg.Watcher != nil {
		filter := query.ToRange(cfg.View.Where)
		regions := make(map[string]bbox.Box, 2)
		for _, table := range []string{cfg.View.Left, cfg.View.Right} {
			def, err := cfg.Cluster.Catalog.Table(table)
			if err != nil {
				return nil, err
			}
			regions[table] = RegionFor(def.Schema, filter)
		}
		m.handle = cfg.Watcher.Register(&Dependent{
			Name:    "mview:" + cfg.View.Name,
			Regions: regions,
			Notify:  func(int64, []*chunk.Desc) { m.markStale() },
		})
	}
	return m, nil
}

// Close unregisters the view from its watcher.
func (m *MaterializedView) Close() {
	if m.cfg.Watcher != nil && m.handle >= 0 {
		m.cfg.Watcher.Unregister(m.handle)
		m.handle = -1
	}
}

// Rows returns the materialized result (canonical order) and the version
// it reflects. The sub-table is shared — callers must not modify it.
func (m *MaterializedView) Rows() (*tuple.SubTable, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rows, m.version
}

// Stale reports whether a commit intersecting the view landed after its
// last refresh.
func (m *MaterializedView) Stale() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stale
}

// Refresh brings the view to the catalog's current version by delta-join
// maintenance and returns that version. A view already at the current
// version returns immediately.
func (m *MaterializedView) Refresh() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	target := m.cfg.Cluster.Catalog.Version()
	if target == m.version {
		return target, nil
	}
	old := m.version
	// The three delta terms. Windows are half-open (Since, Until]: the
	// "old" side is everything visible at the last refresh, the "new" side
	// exactly the versions committed since.
	terms := []struct {
		lw, rw metadata.VersionWindow
	}{
		{metadata.VersionWindow{Until: old}, metadata.VersionWindow{Since: old, Until: target}},                // L_old ⋈ ΔR
		{metadata.VersionWindow{Since: old, Until: target}, metadata.VersionWindow{Until: old}},                // ΔL ⋈ R_old
		{metadata.VersionWindow{Since: old, Until: target}, metadata.VersionWindow{Since: old, Until: target}}, // ΔL ⋈ ΔR
	}
	merged := m.rows
	for _, t := range terms {
		delta, err := m.joinTerm(t.lw, t.rw, target)
		if err != nil {
			return 0, err
		}
		if delta == nil || delta.NumRows() == 0 {
			continue
		}
		if merged == m.rows {
			// First contributing term: copy-on-write so concurrent readers
			// of the old Rows() are never mutated under.
			merged = tuple.NewSubTable(m.rows.ID, m.rows.Schema, m.rows.NumRows()+delta.NumRows())
			if err := merged.AppendAll(m.rows); err != nil {
				return 0, err
			}
		}
		if err := merged.AppendAll(delta); err != nil {
			return 0, err
		}
	}
	if merged != m.rows {
		m.rows = Canonicalize(merged)
	}
	m.version = target
	m.stale = false
	m.refreshDelta.Inc()
	return target, nil
}

// RefreshFull recomputes the view from scratch at the catalog's current
// version — the oracle the delta path is checked against, and the fallback
// for non-equi-join maintenance.
func (m *MaterializedView) RefreshFull() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	target := m.cfg.Cluster.Catalog.Version()
	rows, err := m.joinTerm(metadata.VersionWindow{}, metadata.VersionWindow{}, target)
	if err != nil {
		return 0, err
	}
	if rows == nil {
		return 0, fmt.Errorf("ingest: view %s selects no chunks", m.cfg.View.Name)
	}
	m.rows = Canonicalize(rows)
	m.version = target
	m.stale = false
	m.refreshFull.Inc()
	return target, nil
}

// joinTerm runs one delta term through the streaming plan layer: the
// view's join with per-side version windows, pinned at target. Returns nil
// (no rows) when either side's window selects no chunks — the join of
// anything with an empty chunk set is empty, and the planner treats an
// empty side as an error.
func (m *MaterializedView) joinTerm(lw, rw metadata.VersionWindow, target int64) (*tuple.SubTable, error) {
	v := m.cfg.View
	req, err := v.Request(nil, false)
	if err != nil {
		return nil, err
	}
	req.AsOf = target
	req.LeftVersions = lw
	req.RightVersions = rw
	req.Shared = true // never reset the cluster under concurrent queries

	// Prune through the equi-join: every tuple a delta term emits agrees
	// with some delta-side tuple on the join attributes, so both sides can
	// be restricted to the delta chunks' bounding region. For time-step
	// appends this collapses the old side of ΔL⋈R_old / L_old⋈ΔR to the
	// few chunks overlapping the new slab — usually none.
	for _, side := range []struct {
		table string
		w     metadata.VersionWindow
	}{
		{req.LeftTable, req.LeftWindow()},
		{req.RightTable, req.RightWindow()},
	} {
		if side.w.Since == 0 {
			continue
		}
		r, ok, err := m.deltaJoinBounds(side.table, side.w)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		req.Filter = intersectRanges(req.Filter, r)
	}

	nl, err := m.sideChunks(req.LeftTable, req.Filter, req.LeftWindow())
	if err != nil {
		return nil, err
	}
	nr, err := m.sideChunks(req.RightTable, req.Filter, req.RightWindow())
	if err != nil {
		return nil, err
	}
	if nl == 0 || nr == 0 {
		return nil, nil
	}

	eng, dec, err := m.cfg.Planner.Choose(m.cfg.Cluster, req)
	if err != nil {
		return nil, err
	}
	jn, err := plan.NewJoin(eng, m.cfg.Cluster, v.Name, req, &plan.JoinCost{
		Chosen: dec.Chosen, Forced: dec.Forced, Params: dec.Params,
		PredictIJ: dec.PredictIJ, PredictGH: dec.PredictGH,
		Calibrated: dec.Calibrated, Constants: dec.Constants,
	})
	if err != nil {
		return nil, err
	}
	p := &plan.Plan{Root: jn, OutID: tuple.ID{Table: -1, Chunk: -1}}
	rows, _, err := plan.Run(context.Background(), p)
	return rows, err
}

// deltaJoinBounds returns the union of the bounding intervals, projected
// onto the view's join attributes, of the chunks a delta version window
// selects from table. ok is false when the window selects no chunks, in
// which case the whole term is empty.
func (m *MaterializedView) deltaJoinBounds(table string, w metadata.VersionWindow) (metadata.Range, bool, error) {
	descs, err := m.cfg.Cluster.Catalog.ChunksInRange(table, metadata.Range{Versions: w})
	if err != nil || len(descs) == 0 {
		return metadata.Range{}, false, err
	}
	var r metadata.Range
	for _, a := range m.cfg.View.JoinAttrs {
		lo, hi := 0.0, 0.0
		seen := false
		for _, d := range descs {
			for i, at := range d.Attrs {
				if at.Name != a || i >= d.Bounds.Dims() {
					continue
				}
				if !seen || d.Bounds.Lo[i] < lo {
					lo = d.Bounds.Lo[i]
				}
				if !seen || d.Bounds.Hi[i] > hi {
					hi = d.Bounds.Hi[i]
				}
				seen = true
			}
		}
		if seen {
			r.Attrs = append(r.Attrs, a)
			r.Lo = append(r.Lo, lo)
			r.Hi = append(r.Hi, hi)
		}
	}
	return r, true, nil
}

// intersectRanges conjoins two range filters, intersecting intervals on
// shared attributes.
func intersectRanges(a, b metadata.Range) metadata.Range {
	out := metadata.Range{
		Attrs:    append([]string(nil), a.Attrs...),
		Lo:       append([]float64(nil), a.Lo...),
		Hi:       append([]float64(nil), a.Hi...),
		Versions: a.Versions,
	}
	for j, attr := range b.Attrs {
		found := false
		for i, have := range out.Attrs {
			if have != attr {
				continue
			}
			if b.Lo[j] > out.Lo[i] {
				out.Lo[i] = b.Lo[j]
			}
			if b.Hi[j] < out.Hi[i] {
				out.Hi[i] = b.Hi[j]
			}
			found = true
			break
		}
		if !found {
			out.Attrs = append(out.Attrs, attr)
			out.Lo = append(out.Lo, b.Lo[j])
			out.Hi = append(out.Hi, b.Hi[j])
		}
	}
	return out
}

// sideChunks counts the chunks one side resolves to under a filter and
// version window.
func (m *MaterializedView) sideChunks(table string, filter metadata.Range, w metadata.VersionWindow) (int, error) {
	def, err := m.cfg.Cluster.Catalog.Table(table)
	if err != nil {
		return 0, err
	}
	var r metadata.Range
	for i, a := range filter.Attrs {
		if def.Schema.Index(a) < 0 {
			continue
		}
		r.Attrs = append(r.Attrs, a)
		r.Lo = append(r.Lo, filter.Lo[i])
		r.Hi = append(r.Hi, filter.Hi[i])
	}
	r.Versions = w
	descs, err := m.cfg.Cluster.Catalog.ChunksInRange(table, r)
	if err != nil {
		return 0, err
	}
	return len(descs), nil
}

// markStale is the watcher callback target.
func (m *MaterializedView) markStale() {
	m.mu.Lock()
	m.stale = true
	m.mu.Unlock()
}

// Canonicalize returns the rows of st in canonical order: lexicographic
// over all columns, left to right. Equal rows are interchangeable, so any
// two sub-tables holding the same multiset of rows canonicalize to
// byte-identical encodings — the well-definedness behind "delta
// maintenance is byte-identical to recompute".
func Canonicalize(st *tuple.SubTable) *tuple.SubTable {
	n := st.NumRows()
	cols := st.Schema.NumAttrs()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		for c := 0; c < cols; c++ {
			av, bv := st.Value(a, c), st.Value(b, c)
			if av != bv {
				return av < bv
			}
		}
		return false
	})
	out := tuple.NewSubTable(st.ID, st.Schema, n)
	row := make([]float32, cols)
	for _, r := range idx {
		out.AppendRow(st.Row(r, row)...)
	}
	return out
}
