// Package ingest makes datasets append-only-mutable while queries keep
// running: it is the write path of a living dataset. A producer hands the
// Ingestor batches of encoded chunks; each batch commits atomically as one
// new catalog version (the monotonic dataset version), placed in the
// R-tree through the incremental insert path and replicated with the same
// machinery the generator uses. Readers are snapshot-isolated — a query
// pins the catalog version it admitted under, and an append committing
// mid-query is entirely invisible to it — so ingest never perturbs an
// in-flight result.
//
// On top of the write path sit the freshness mechanisms: a Watcher that,
// on each committed version, notifies only the dependents whose bounding
// boxes intersect the new chunks (an R-tree query, not a full flush); a
// ResultCache whose entries are invalidated by that intersection rule; and
// delta-join incremental maintenance for materialized equi-join views
// (MaterializedView), which folds in new-left×old-right, old-left×new-right
// and new-left×new-right instead of recomputing — byte-identical to a
// recompute from scratch.
package ingest

import (
	"encoding/gob"
	"fmt"
	"io"

	"sciview/internal/bbox"
	"sciview/internal/oilres"
)

// BatchChunk is one chunk payload of an append batch: encoded bytes plus
// the metadata the catalog needs to register them. Bounds must cover the
// destination table's full schema, in schema order (the generator's
// SubTable.Bounds() does this).
type BatchChunk struct {
	// Table names the destination virtual table.
	Table string
	// Format names the extractor that parses Data.
	Format string
	// Data is the encoded chunk.
	Data []byte
	// Rows is the record count of the chunk.
	Rows int
	// Bounds is the chunk's bounding box over the table's schema.
	Bounds bbox.Box
	// Node is the storage node the chunk is placed on (primary copy).
	Node int
}

// Batch is one append unit: all chunks of one arrival (e.g. a simulation
// time step). A batch commits as a whole — one new catalog version.
type Batch struct {
	// Step is a producer-assigned sequence number (informational).
	Step int
	// Chunks are the batch's payloads.
	Chunks []BatchChunk
}

// FromStepChunks wraps generator output as an append batch.
func FromStepChunks(step int, chunks []oilres.StepChunk) *Batch {
	b := &Batch{Step: step, Chunks: make([]BatchChunk, len(chunks))}
	for i, c := range chunks {
		b.Chunks[i] = BatchChunk{
			Table: c.Table, Format: c.Format, Data: c.Data,
			Rows: c.Rows, Bounds: c.Bounds, Node: c.Node,
		}
	}
	return b
}

// Encode writes the batch to w (gob), the on-disk format of
// `sciview-gen -timesteps` batch files.
func (b *Batch) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(b); err != nil {
		return fmt.Errorf("ingest: encoding batch %d: %w", b.Step, err)
	}
	return nil
}

// DecodeBatch reads one batch previously written by Encode.
func DecodeBatch(r io.Reader) (*Batch, error) {
	var b Batch
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("ingest: decoding batch: %w", err)
	}
	return &b, nil
}
