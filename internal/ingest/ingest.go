package ingest

import (
	"fmt"
	"sync"

	"sciview/internal/chunk"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/oilres"
	"sciview/internal/simio"
)

// Config assembles an Ingestor.
type Config struct {
	// Catalog is the MetaData Service the appended chunks register with.
	Catalog *metadata.Catalog
	// Stores are the storage nodes' object stores, indexed by node.
	Stores []simio.Store
	// Replicas is the total number of placements per appended chunk
	// (primary included), clamped to the node count; < 2 disables
	// replication. Matches oilres.Config.Replicas.
	Replicas int
	// Watcher, when set, is notified after each committed version with the
	// batch's descriptors, driving targeted invalidation and view
	// refreshes.
	Watcher *Watcher
	// Metrics, when set, registers the ingest counters
	// (sciview_ingest_appends_total, sciview_ingest_chunks_total) and the
	// sciview_ingest_version gauge. Nil keeps the hot path on no-ops.
	Metrics *metrics.Registry
	// Avoid, when set, vetoes placement nodes: a batch chunk whose
	// requested primary node is vetoed (down or rejoining) is redirected to
	// the next non-vetoed node, and replication skips vetoed nodes. The
	// batch then commits under-replicated and the repair tier's catch-up /
	// anti-entropy passes restore the replication factor when nodes return.
	// An append fails only if every node is vetoed.
	Avoid func(node int) bool
}

// Ingestor is the chunk-append path of a living dataset. Append is safe
// for concurrent use with any number of running queries: bytes land in the
// object stores before the catalog commit makes them visible, the commit
// itself is atomic, and snapshot-pinned readers never observe a batch
// committed after their pin.
type Ingestor struct {
	cfg Config

	mu sync.Mutex // serializes appends (offset accounting per object)

	appends *metrics.Counter
	chunks  *metrics.Counter
}

// New builds an Ingestor over a dataset's catalog and stores.
func New(cfg Config) (*Ingestor, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("ingest: nil catalog")
	}
	if len(cfg.Stores) == 0 {
		return nil, fmt.Errorf("ingest: no stores")
	}
	in := &Ingestor{cfg: cfg}
	reg := cfg.Metrics // nil-safe: nil registry hands out no-op instruments
	in.appends = reg.Counter("sciview_ingest_appends_total", "Committed append batches.")
	in.chunks = reg.Counter("sciview_ingest_chunks_total", "Chunks registered by append batches.")
	reg.GaugeFunc("sciview_ingest_version", "Current catalog version.", func() float64 {
		return float64(cfg.Catalog.Version())
	})
	return in, nil
}

// object returns the append-path object name for a table on a node. Append
// bytes live apart from the generator's objects so offset accounting never
// interleaves with administrative loads.
func object(table string, node int) string {
	return fmt.Sprintf("append/%s/node%d.dat", table, node)
}

// Append writes one batch: chunk bytes to their storage nodes, then one
// atomic catalog commit (the new dataset version), then replication of the
// new chunks and watcher notification. It returns the committed version.
//
// Ordering is the isolation argument: bytes are durable in the stores
// before the commit, so the instant a reader can resolve a new chunk it
// can also fetch it; and a reader pinned to an older version resolves a
// chunk set in which the batch does not exist.
func (in *Ingestor) Append(b *Batch) (int64, error) {
	if len(b.Chunks) == 0 {
		return 0, fmt.Errorf("ingest: empty batch %d", b.Step)
	}
	in.mu.Lock()
	defer in.mu.Unlock()

	descs := make([]*chunk.Desc, len(b.Chunks))
	for i, c := range b.Chunks {
		def, err := in.cfg.Catalog.Table(c.Table)
		if err != nil {
			return 0, err
		}
		if _, err := chunk.Lookup(c.Format); err != nil {
			return 0, err
		}
		if c.Node < 0 || c.Node >= len(in.cfg.Stores) {
			return 0, fmt.Errorf("ingest: batch %d chunk %d: no storage node %d", b.Step, i, c.Node)
		}
		node, err := in.placement(c.Node)
		if err != nil {
			return 0, fmt.Errorf("ingest: batch %d chunk %d: %w", b.Step, i, err)
		}
		obj := object(c.Table, node)
		off, err := in.cfg.Stores[node].Size(obj)
		if err != nil {
			off = 0 // object not created yet
		}
		if err := in.cfg.Stores[node].Append(obj, c.Data); err != nil {
			return 0, fmt.Errorf("ingest: batch %d chunk %d: %w", b.Step, i, err)
		}
		descs[i] = &chunk.Desc{
			Table:  def.ID,
			Object: obj,
			Offset: off,
			Size:   int64(len(c.Data)),
			Node:   node,
			Format: c.Format,
			Attrs:  def.Schema.Attrs,
			Rows:   c.Rows,
			Bounds: c.Bounds,
		}
	}

	version, err := in.cfg.Catalog.AppendVersion(descs)
	if err != nil {
		return 0, err
	}
	in.appends.Inc()
	in.chunks.Add(int64(len(descs)))

	// Replication is post-commit: replicas are failover copies, and the
	// primary placement is already fetchable. Down nodes get no copies —
	// anti-entropy lays them later.
	if err := oilres.ReplicateDescsAvoid(in.cfg.Catalog, in.cfg.Stores, descs, in.cfg.Replicas, in.cfg.Avoid); err != nil {
		return version, err
	}
	if in.cfg.Watcher != nil {
		in.cfg.Watcher.Commit(version, descs)
	}
	return version, nil
}

// placement resolves a batch chunk's requested primary node against the
// Avoid veto, scanning forward to the next permitted node.
func (in *Ingestor) placement(want int) (int, error) {
	if in.cfg.Avoid == nil || !in.cfg.Avoid(want) {
		return want, nil
	}
	n := len(in.cfg.Stores)
	for offset := 1; offset < n; offset++ {
		node := (want + offset) % n
		if !in.cfg.Avoid(node) {
			return node, nil
		}
	}
	return 0, fmt.Errorf("ingest: every storage node is down or rejoining")
}

// Version returns the catalog's current dataset version.
func (in *Ingestor) Version() int64 { return in.cfg.Catalog.Version() }
