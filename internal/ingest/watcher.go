package ingest

import (
	"math"
	"sync"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/rtree"
	"sciview/internal/tuple"
)

// Dependent is one consumer of freshness notifications: a cached result, a
// materialized view, or anything else whose validity depends on a region
// of one or more tables. It is notified only when a committed batch
// contains a chunk whose bounding box intersects one of its regions —
// appends elsewhere in the grid leave it untouched.
type Dependent struct {
	// Name labels the dependent (diagnostics).
	Name string
	// Regions maps table names to the coordinate-space box the dependent
	// covers on that table (see RegionFor). Tables not listed never
	// trigger notification.
	Regions map[string]bbox.Box
	// Notify is called after a commit with the new version and the batch
	// chunks that intersected the dependent (a subset of the batch). It
	// runs on the committing goroutine, outside the watcher's lock, so it
	// may query the catalog and may Register/Unregister dependents
	// (including itself — how cache entries self-invalidate).
	Notify func(version int64, descs []*chunk.Desc)
}

// Watcher routes commit notifications to the dependents each batch
// actually touches. Dependent regions are indexed in a per-table R-tree —
// the same structure the catalog resolves ranges with — so a commit costs
// one R-tree query per new chunk, not a scan of every dependent (and never
// a full cache flush).
type Watcher struct {
	cat *metadata.Catalog

	mu    sync.Mutex
	deps  map[int]*Dependent
	next  int
	trees map[int32]*rtree.Tree // table id → R-tree over dependents' regions

	invalidations *metrics.Counter
}

// NewWatcher builds a watcher over a catalog. reg may be nil.
func NewWatcher(cat *metadata.Catalog, reg *metrics.Registry) *Watcher {
	return &Watcher{
		cat:   cat,
		deps:  make(map[int]*Dependent),
		trees: make(map[int32]*rtree.Tree),
		invalidations: reg.Counter("sciview_ingest_invalidations_total",
			"Dependent notifications triggered by append commits (targeted, not flushes)."),
	}
}

// RegionFor projects a range filter onto a table schema's coordinate
// attributes: the box a dependent restricted by that filter covers.
// Unconstrained coordinates span the same clamped pseudo-infinite interval
// the catalog's R-tree uses, so an unfiltered dependent intersects every
// chunk of its table.
func RegionFor(schema tuple.Schema, r metadata.Range) bbox.Box {
	const clamp = 1e12 // mirrors the catalog's coordBox clamp
	ci := schema.CoordIndexes()
	box := bbox.Universe(len(ci))
	for d, idx := range ci {
		name := schema.Attrs[idx].Name
		for i, a := range r.Attrs {
			if a == name {
				box.Lo[d] = math.Max(box.Lo[d], r.Lo[i])
				box.Hi[d] = math.Min(box.Hi[d], r.Hi[i])
			}
		}
		box.Lo[d] = math.Max(box.Lo[d], -clamp)
		box.Hi[d] = math.Min(box.Hi[d], clamp)
	}
	return box
}

// Register adds a dependent and returns its handle for Unregister.
func (w *Watcher) Register(d *Dependent) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := w.next
	w.next++
	w.deps[id] = d
	w.rebuildLocked()
	return id
}

// Unregister removes a dependent. Unknown handles are ignored.
func (w *Watcher) Unregister(id int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.deps[id]; !ok {
		return
	}
	delete(w.deps, id)
	w.rebuildLocked()
}

// rebuildLocked reconstructs the per-table region indexes with STR bulk
// loading. Dependent populations are small and change rarely (view
// definition time), so rebuild-on-change keeps the commit path read-only.
func (w *Watcher) rebuildLocked() {
	boxes := make(map[int32][]bbox.Box)
	ids := make(map[int32][]int64)
	for id, d := range w.deps {
		for table, box := range d.Regions {
			def, err := w.cat.Table(table)
			if err != nil {
				continue // table dropped or not yet created: never notified
			}
			boxes[def.ID] = append(boxes[def.ID], box)
			ids[def.ID] = append(ids[def.ID], int64(id))
		}
	}
	w.trees = make(map[int32]*rtree.Tree, len(boxes))
	for tid, bs := range boxes {
		def, err := w.cat.TableByID(tid)
		if err != nil {
			continue
		}
		w.trees[tid] = rtree.BulkLoad(len(def.Schema.CoordIndexes()), 0, bs, ids[tid])
	}
}

// Commit routes one committed batch: each new chunk's coordinate box is
// queried against its table's dependent index, and every dependent hit is
// notified once with the chunks that touched it. The ingest path calls
// this after the catalog commit.
func (w *Watcher) Commit(version int64, descs []*chunk.Desc) {
	type hit struct {
		dep   *Dependent
		descs []*chunk.Desc
	}
	w.mu.Lock()
	hits := make(map[int]*hit)
	order := make([]int, 0, 4) // deterministic notify order (registration)
	for _, d := range descs {
		tree, ok := w.trees[d.Table]
		if !ok {
			continue
		}
		def, err := w.cat.TableByID(d.Table)
		if err != nil {
			continue
		}
		for _, id := range tree.Search(coordBoxFor(def.Schema, d.Bounds), nil) {
			h, ok := hits[int(id)]
			if !ok {
				h = &hit{dep: w.deps[int(id)]}
				hits[int(id)] = h
				order = append(order, int(id))
			}
			h.descs = append(h.descs, d)
		}
	}
	w.mu.Unlock()

	for i := 1; i < len(order); i++ { // insertion sort: tiny n
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, id := range order {
		h := hits[id]
		w.invalidations.Inc()
		if h.dep.Notify != nil {
			h.dep.Notify(version, h.descs)
		}
	}
}

// coordBoxFor projects a full-schema chunk box onto the coordinate
// dimensions with the catalog's clamp.
func coordBoxFor(schema tuple.Schema, full bbox.Box) bbox.Box {
	const clamp = 1e12
	ci := schema.CoordIndexes()
	lo := make([]float64, len(ci))
	hi := make([]float64, len(ci))
	for i, idx := range ci {
		lo[i] = math.Max(full.Lo[idx], -clamp)
		hi[i] = math.Min(full.Hi[idx], clamp)
	}
	return bbox.New(lo, hi)
}
