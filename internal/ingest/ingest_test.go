package ingest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/cluster"
	"sciview/internal/dds"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/plan"
	"sciview/internal/planner"
	"sciview/internal/query"
	"sciview/internal/tuple"
)

// stepCfg is the shared living-dataset shape: Z is the time axis, one step
// slab is lcm(2, 4) = 4 cells deep, and the full grid holds 4 slabs beyond
// any base.
func stepCfg() oilres.Config {
	return oilres.Config{
		Grid:     partition.D(8, 8, 24),
		LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4),
		StorageNodes: 2, Seed: 7,
	}
}

// liveCluster generates a base dataset withholding `steps` time-step slabs
// and assembles the query stack plus ingest path over it.
func liveCluster(t testing.TB, steps int) (*cluster.Cluster, *Ingestor, []*Batch, *Watcher, *metrics.Registry) {
	t.Helper()
	ds, stepChunks, err := oilres.GenerateSteps(stepCfg(), steps)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 8 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	w := NewWatcher(ds.Catalog, reg)
	in, err := New(Config{
		Catalog: ds.Catalog, Stores: ds.Stores, Replicas: 2,
		Watcher: w, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]*Batch, len(stepChunks))
	for i, sc := range stepChunks {
		batches[i] = FromStepChunks(i, sc)
	}
	return cl, in, batches, w, reg
}

func testView(where ...query.Pred) *dds.JoinView {
	return &dds.JoinView{
		Name: "V", Left: "T1", Right: "T2",
		JoinAttrs: []string{"x", "y", "z"}, Where: where,
	}
}

// encodeRows canonicalizes and byte-encodes a result, the comparison the
// "byte-identical" acceptance criterion is stated in.
func encodeRows(t testing.TB, st *tuple.SubTable) []byte {
	t.Helper()
	ex, err := chunk.Lookup("rowmajor")
	if err != nil {
		t.Fatal(err)
	}
	data, err := ex.Encode(Canonicalize(st))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// joinAt runs the view's full join pinned at an explicit catalog version.
func joinAt(t testing.TB, cl *cluster.Cluster, v *dds.JoinView, asOf int64) *tuple.SubTable {
	t.Helper()
	m := &MaterializedView{cfg: ViewConfig{Cluster: cl, Planner: planner.New(), View: v}}
	rows, err := m.joinTerm(metadata.VersionWindow{}, metadata.VersionWindow{}, asOf)
	if err != nil {
		t.Fatal(err)
	}
	if rows == nil {
		t.Fatalf("join at version %d selected no chunks", asOf)
	}
	return rows
}

// TestAppendVersioning: each batch commits as one new monotonic version,
// chunks carry their commit version, and version windows slice the chunk
// history exactly.
func TestAppendVersioning(t *testing.T) {
	cl, in, batches, _, reg := liveCluster(t, 3)
	cat := cl.Catalog
	if v := cat.Version(); v != 1 {
		t.Fatalf("seed version = %d, want 1", v)
	}
	base, err := cat.ChunksInRange("T1", metadata.Range{})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		v, err := in.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(i + 2); v != want {
			t.Fatalf("batch %d committed version %d, want %d", i, v, want)
		}
	}
	// Window (1, 2]: exactly batch 0's T1 chunks.
	only2, err := cat.ChunksInRange("T1", metadata.Range{Versions: metadata.VersionWindow{Since: 1, Until: 2}})
	if err != nil {
		t.Fatal(err)
	}
	perStep := 0
	for _, c := range batches[0].Chunks {
		if c.Table == "T1" {
			perStep++
		}
	}
	if len(only2) != perStep {
		t.Fatalf("window (1,2] sees %d T1 chunks, want %d", len(only2), perStep)
	}
	for _, d := range only2 {
		if d.Version != 2 {
			t.Fatalf("chunk %d stamped version %d, want 2", d.Chunk, d.Version)
		}
	}
	// Window (0, 1]: exactly the base.
	atBase, err := cat.ChunksInRange("T1", metadata.Range{Versions: metadata.VersionWindow{Until: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(atBase) != len(base) {
		t.Fatalf("pinned-at-1 sees %d chunks, want base %d", len(atBase), len(base))
	}
	all, err := cat.ChunksInRange("T1", metadata.Range{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(base)+3*perStep {
		t.Fatalf("unpinned sees %d chunks, want %d", len(all), len(base)+3*perStep)
	}
	if got := reg.Counter("sciview_ingest_appends_total", "").Value(); got != 3 {
		t.Fatalf("appends counter = %d, want 3", got)
	}
}

// TestAppendEqualsFullGeneration: the base dataset plus every appended
// time-step batch answers queries identically to a one-shot generation of
// the full grid — appending is not a second-class way to build a dataset.
func TestAppendEqualsFullGeneration(t *testing.T) {
	cl, in, batches, _, _ := liveCluster(t, 3)
	for _, b := range batches {
		if _, err := in.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	full, err := oilres.Generate(stepCfg())
	if err != nil {
		t.Fatal(err)
	}
	fullCl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 8 << 20,
	}, full.Catalog, full.Stores)
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"T1", "T2"} {
		a, err := cl.Catalog.ChunksInRange(table, metadata.Range{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := full.Catalog.ChunksInRange(table, metadata.Range{})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d chunks appended vs %d generated", table, len(a), len(b))
		}
		for i := range a {
			if a[i].Chunk != b[i].Chunk || a[i].Rows != b[i].Rows ||
				a[i].Node != b[i].Node || !a[i].Bounds.Equal(b[i].Bounds) {
				t.Fatalf("%s chunk %d: appended %+v vs generated %+v", table, i, a[i], b[i])
			}
		}
	}
	views := []*dds.JoinView{
		testView(),
		testView(query.Pred{Attr: "x", Lo: 1, Hi: 5}, query.Pred{Attr: "z", Lo: 3, Hi: 20}),
	}
	for _, v := range views {
		grown := encodeRows(t, joinAt(t, cl, v, cl.Catalog.Version()))
		oneShot := encodeRows(t, joinAt(t, fullCl, v, fullCl.Catalog.Version()))
		if !bytes.Equal(grown, oneShot) {
			t.Fatalf("view %s on grown dataset differs from one-shot generation", v.Name)
		}
	}
}

// TestSnapshotIsolation: a reader pinned to the version it admitted under
// is byte-identical before and after any number of appends; an unpinned
// reader sees the appended rows.
func TestSnapshotIsolation(t *testing.T) {
	cl, in, batches, _, _ := liveCluster(t, 2)
	v := testView(query.Pred{Attr: "x", Lo: 0, Hi: 6})
	pin := cl.Catalog.Version()
	before := encodeRows(t, joinAt(t, cl, v, pin))

	// Scan path too: pin a base-table scan.
	sn, err := plan.NewScan(cl, "T1", nil, []string{"x", "y", "z", "oilp"}, pin)
	if err != nil {
		t.Fatal(err)
	}
	scanBefore, _, err := plan.Run(context.Background(), &plan.Plan{Root: sn, OutID: tuple.ID{Table: -1, Chunk: -1}})
	if err != nil {
		t.Fatal(err)
	}

	for _, b := range batches {
		if _, err := in.Append(b); err != nil {
			t.Fatal(err)
		}
	}

	after := encodeRows(t, joinAt(t, cl, v, pin))
	if !bytes.Equal(before, after) {
		t.Fatal("pinned join result changed across appends")
	}
	sn2, err := plan.NewScan(cl, "T1", nil, []string{"x", "y", "z", "oilp"}, pin)
	if err != nil {
		t.Fatal(err)
	}
	scanAfter, _, err := plan.Run(context.Background(), &plan.Plan{Root: sn2, OutID: tuple.ID{Table: -1, Chunk: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeRows(t, scanBefore), encodeRows(t, scanAfter)) {
		t.Fatal("pinned scan result changed across appends")
	}

	fresh := joinAt(t, cl, v, cl.Catalog.Version())
	old := joinAt(t, cl, v, pin)
	if fresh.NumRows() <= old.NumRows() {
		t.Fatalf("unpinned reader sees %d rows, pinned %d: appends invisible", fresh.NumRows(), old.NumRows())
	}
}

// TestWatcherTargeting: a commit notifies exactly the dependents whose
// regions intersect the new chunks. The appended slabs live at high z, so a
// dependent watching the base slab must never fire.
func TestWatcherTargeting(t *testing.T) {
	cl, in, batches, w, reg := liveCluster(t, 2)
	def, err := cl.Catalog.Table("T1")
	if err != nil {
		t.Fatal(err)
	}
	baseZ := float64(stepCfg().Grid.Z - 2*4) // grid minus 2 slabs of stepZ=4
	var coldHits, hotHits int
	w.Register(&Dependent{
		Name:    "cold",
		Regions: map[string]bbox.Box{"T1": RegionFor(def.Schema, metadata.Range{Attrs: []string{"z"}, Lo: []float64{0}, Hi: []float64{baseZ - 1}})},
		Notify:  func(int64, []*chunk.Desc) { coldHits++ },
	})
	w.Register(&Dependent{
		Name:    "hot",
		Regions: map[string]bbox.Box{"T1": RegionFor(def.Schema, metadata.Range{Attrs: []string{"z"}, Lo: []float64{baseZ}, Hi: []float64{1e9}})},
		Notify:  func(int64, []*chunk.Desc) { hotHits++ },
	})
	for _, b := range batches {
		if _, err := in.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if coldHits != 0 {
		t.Fatalf("cold dependent notified %d times; appends were outside its region", coldHits)
	}
	if hotHits != len(batches) {
		t.Fatalf("hot dependent notified %d times, want %d", hotHits, len(batches))
	}
	if got := reg.Counter("sciview_ingest_invalidations_total", "").Value(); got != int64(len(batches)) {
		t.Fatalf("invalidations counter = %d, want %d", got, len(batches))
	}
}

// TestResultCacheInvalidation: an append removes exactly the entries whose
// regions intersect the new chunks; disjoint entries keep serving hits.
func TestResultCacheInvalidation(t *testing.T) {
	cl, in, batches, w, _ := liveCluster(t, 1)
	rc, err := NewResultCache(w, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	def, err := cl.Catalog.Table("T1")
	if err != nil {
		t.Fatal(err)
	}
	rows := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: -1}, def.Schema, 1)
	rows.AppendRow(make([]float32, def.Schema.NumAttrs())...)
	baseZ := float64(stepCfg().Grid.Z - 1*4)
	rc.Put("cold", rows, map[string]bbox.Box{
		"T1": RegionFor(def.Schema, metadata.Range{Attrs: []string{"z"}, Lo: []float64{0}, Hi: []float64{baseZ - 1}}),
	})
	rc.Put("hot", rows, map[string]bbox.Box{
		"T1": RegionFor(def.Schema, metadata.Range{Attrs: []string{"z"}, Lo: []float64{baseZ}, Hi: []float64{1e9}}),
	})
	if rc.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", rc.Len())
	}
	if _, err := in.Append(batches[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := rc.Get("hot"); ok {
		t.Fatal("entry intersecting the append survived the commit")
	}
	if _, ok := rc.Get("cold"); !ok {
		t.Fatal("entry disjoint from the append was flushed")
	}
	if rc.Len() != 1 {
		t.Fatalf("cache holds %d entries after commit, want 1", rc.Len())
	}
}

// TestDeltaRefreshMatchesFull is the tentpole differential: across
// randomized append sequences and several view shapes, delta-join
// maintenance must stay byte-identical to recomputing the view from
// scratch at the same version.
func TestDeltaRefreshMatchesFull(t *testing.T) {
	views := []*dds.JoinView{
		testView(),
		testView(query.Pred{Attr: "x", Lo: 1, Hi: 5}),
		testView(query.Pred{Attr: "z", Lo: 6, Hi: 18}, query.Pred{Attr: "y", Lo: 0, Hi: 7}),
	}
	rng := rand.New(rand.NewSource(41))
	for vi, v := range views {
		t.Run(fmt.Sprintf("view%d", vi), func(t *testing.T) {
			cl, in, batches, w, reg := liveCluster(t, 4)
			pl := planner.New()
			m, err := NewMaterializedView(ViewConfig{
				Cluster: cl, Planner: pl, View: v, Watcher: w, Metrics: reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			// Randomize the append rhythm: sometimes several batches land
			// between refreshes, so a single Refresh folds a multi-version
			// delta window.
			for len(batches) > 0 {
				n := 1 + rng.Intn(len(batches))
				for _, b := range batches[:n] {
					if _, err := in.Append(b); err != nil {
						t.Fatal(err)
					}
				}
				batches = batches[n:]
				if !m.Stale() {
					t.Fatal("view not marked stale after an intersecting commit")
				}
				ver, err := m.Refresh()
				if err != nil {
					t.Fatal(err)
				}
				if ver != cl.Catalog.Version() {
					t.Fatalf("refresh reached version %d, catalog at %d", ver, cl.Catalog.Version())
				}
				got, gotVer := m.Rows()
				oracle := &MaterializedView{cfg: ViewConfig{Cluster: cl, Planner: pl, View: v}}
				if _, err := oracle.RefreshFull(); err != nil {
					t.Fatal(err)
				}
				want, wantVer := oracle.Rows()
				if gotVer != wantVer {
					t.Fatalf("delta at version %d, oracle at %d", gotVer, wantVer)
				}
				if !bytes.Equal(encodeRows(t, got), encodeRows(t, want)) {
					t.Fatalf("delta-maintained view diverged from full recompute at version %d (%d vs %d rows)",
						gotVer, got.NumRows(), want.NumRows())
				}
			}
			if got := reg.Counter("sciview_ingest_refreshes_total", "", "mode", "delta").Value(); got == 0 {
				t.Fatal("no delta refreshes counted")
			}
		})
	}
}

// TestIngestWhileQuerying exercises the full concurrency story under
// -race: an ingest goroutine commits batches while pinned readers assert
// their snapshot never changes and fresh readers make progress.
func TestIngestWhileQuerying(t *testing.T) {
	cl, in, batches, _, _ := liveCluster(t, 4)
	v := testView()
	pin := cl.Catalog.Version()
	want := encodeRows(t, joinAt(t, cl, v, pin))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, b := range batches {
			if _, err := in.Append(b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 6; i++ {
		got := encodeRows(t, joinAt(t, cl, v, pin))
		if !bytes.Equal(want, got) {
			t.Fatalf("pinned read %d changed under concurrent ingest", i)
		}
	}
	wg.Wait()
	fresh := joinAt(t, cl, v, cl.Catalog.Version())
	old := joinAt(t, cl, v, pin)
	if fresh.NumRows() <= old.NumRows() {
		t.Fatal("post-ingest unpinned read does not see the appended slabs")
	}
}

// BenchmarkViewMaintenance compares folding one appended time step into a
// materialized view by delta join against recomputing it from scratch —
// the PR's headline efficiency claim.
func BenchmarkViewMaintenance(b *testing.B) {
	for _, mode := range []string{"delta", "full"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl, in, batches, w, _ := liveCluster(b, 1)
				m, err := NewMaterializedView(ViewConfig{
					Cluster: cl, Planner: planner.New(), View: testView(), Watcher: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := in.Append(batches[0]); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if mode == "delta" {
					_, err = m.Refresh()
				} else {
					_, err = m.RefreshFull()
				}
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				m.Close()
			}
		})
	}
}
