package costmodel

import (
	"time"

	"sciview/internal/hashjoin"
	"sciview/internal/tuple"
)

// Calibrate measures the host's real α_build and α_lookup by timing
// in-memory hash-join build and probe over n synthetic tuples (several
// rounds, keeping the fastest round to suppress scheduling noise). These
// are the *native* per-operation costs; when a cluster models an
// era-appropriate CPU via Config.CPUSecPerOp, the planner adds that charge
// on top of these constants.
func Calibrate(n int) (alphaBuild, alphaLookup float64) {
	if n < 1024 {
		n = 1024
	}
	schema := tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "v", Kind: tuple.Measure},
	)
	left := tuple.NewSubTable(tuple.ID{}, schema, n)
	right := tuple.NewSubTable(tuple.ID{Table: 1}, schema, n)
	for i := 0; i < n; i++ {
		x, y := float32(i&1023), float32(i>>10)
		left.AppendRow(x, y, float32(i))
		right.AppendRow(x, y, float32(i)+0.5)
	}
	keys := []string{"x", "y"}
	outSchema := left.Schema.JoinResult(right.Schema, keys, "r_")

	bestBuild := time.Duration(1<<62 - 1)
	bestProbe := time.Duration(1<<62 - 1)
	const rounds = 3
	for round := 0; round < rounds; round++ {
		start := time.Now()
		ht, err := hashjoin.Build(left, keys, 1, nil)
		if err != nil {
			return 0, 0
		}
		build := time.Since(start)
		out := tuple.NewSubTable(tuple.ID{}, outSchema, n)
		start = time.Now()
		if _, err := ht.Probe(right, keys, 1, out, nil); err != nil {
			return 0, 0
		}
		probe := time.Since(start)
		if build < bestBuild {
			bestBuild = build
		}
		if probe < bestProbe {
			bestProbe = probe
		}
	}
	return bestBuild.Seconds() / float64(n), bestProbe.Seconds() / float64(n)
}
