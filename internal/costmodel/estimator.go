package costmodel

import (
	"fmt"
	"math"
	"sync"

	"sciview/internal/metrics"
)

// Estimator layers the cost model's constants:
//
//   - the static configuration layer is whatever Params the planner
//     derives from the catalog and the configured simio rates (Table 1),
//     exactly as before;
//   - the live calibration layer folds per-run measurements — effective
//     fetch bandwidth, per-operation CPU cost (α_build/α_lookup), and GH
//     scratch spill throughput — into exponentially-decayed running
//     estimates, and substitutes them into Params once a signal has
//     accrued MinSamples observations.
//
// Until a signal graduates, decisions fall back to the static constants,
// so a cold planner behaves exactly like the pre-calibration one. Every
// fold is cheap (a handful of float ops under one mutex), safe for the
// service's concurrent submitters, and scrapeable: AttachMetrics exposes
// the current constants as gauges and every decision as a labeled
// counter.
type Estimator struct {
	// Decay is the EWMA weight of each new observation in (0, 1];
	// DefaultDecay when zero. Higher tracks rate changes faster at the
	// cost of more jitter.
	Decay float64
	// MinSamples is how many observations a signal needs before it
	// displaces its static counterpart; DefaultMinSamples when zero.
	MinSamples int

	mu         sync.Mutex
	alphaBuild signal
	alphaLook  signal
	fetchBw    signal
	spillWrBw  signal
	spillRdBw  signal

	reg *metrics.Registry
}

// Defaults for the calibration layer: an observation moves an estimate a
// quarter of the way (a few queries converge, one outlier does not
// whipsaw the planner), and three samples are required before a live
// constant displaces a configured one.
const (
	DefaultDecay      = 0.25
	DefaultMinSamples = 3
)

// signal is one exponentially-decayed running estimate.
type signal struct {
	value float64
	n     int64
}

func (s *signal) fold(obs, decay float64) {
	if !(obs > 0) || math.IsInf(obs, 0) || math.IsNaN(obs) {
		return
	}
	s.n++
	if s.n == 1 {
		s.value = obs
		return
	}
	s.value = (1-decay)*s.value + decay*obs
}

// NewEstimator returns an estimator with the default decay and sample
// threshold.
func NewEstimator() *Estimator {
	return &Estimator{Decay: DefaultDecay, MinSamples: DefaultMinSamples}
}

func (e *Estimator) decay() float64 {
	if e.Decay <= 0 || e.Decay > 1 {
		return DefaultDecay
	}
	return e.Decay
}

func (e *Estimator) minSamples() int64 {
	if e.MinSamples <= 0 {
		return DefaultMinSamples
	}
	return int64(e.MinSamples)
}

// Observation is one run's measured resource costs (the plain mirror of
// engine.Observed — the planner converts so costmodel stays free of
// engine types). Seconds are summed per-stream busy time, so each
// Bytes/Seconds ratio is a per-stream effective rate.
type Observation struct {
	Engine            string
	FetchBytes        int64
	FetchSeconds      float64
	BuildTuples       int64
	BuildSeconds      float64
	ProbeTuples       int64
	ProbeSeconds      float64
	SpillWriteBytes   int64
	SpillWriteSeconds float64
	SpillReadBytes    int64
	SpillReadSeconds  float64
}

// Observe folds one run's measurements into the calibration layer.
// Stages the run skipped (zero bytes or tuples) leave their signals
// untouched, so e.g. an IJ run never dilutes the spill estimates.
func (e *Estimator) Observe(o Observation) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.decay()
	if o.BuildTuples > 0 && o.BuildSeconds > 0 {
		e.alphaBuild.fold(o.BuildSeconds/float64(o.BuildTuples), d)
	}
	if o.ProbeTuples > 0 && o.ProbeSeconds > 0 {
		e.alphaLook.fold(o.ProbeSeconds/float64(o.ProbeTuples), d)
	}
	if o.FetchBytes > 0 && o.FetchSeconds > 0 {
		e.fetchBw.fold(float64(o.FetchBytes)/o.FetchSeconds, d)
	}
	if o.SpillWriteBytes > 0 && o.SpillWriteSeconds > 0 {
		e.spillWrBw.fold(float64(o.SpillWriteBytes)/o.SpillWriteSeconds, d)
	}
	if o.SpillReadBytes > 0 && o.SpillReadSeconds > 0 {
		e.spillRdBw.fold(float64(o.SpillReadBytes)/o.SpillReadSeconds, d)
	}
}

// Constants is a snapshot of the calibration layer: the current running
// estimates, their sample counts, and whether each signal has graduated
// past MinSamples (Live) and therefore displaces its static counterpart
// in Apply.
type Constants struct {
	// AlphaBuild and AlphaLookup are seconds per hash operation.
	AlphaBuild  float64
	AlphaLookup float64
	// FetchBw is the per-stream effective storage→compute bandwidth in
	// bytes/second; SpillWriteBw/SpillReadBw are per-joiner scratch rates.
	FetchBw      float64
	SpillWriteBw float64
	SpillReadBw  float64

	AlphaSamples int64 // min(build, lookup) sample counts
	FetchSamples int64
	SpillSamples int64 // min(write, read) sample counts

	AlphaLive bool
	FetchLive bool
	SpillLive bool
}

// AnyLive reports whether at least one calibrated constant is in use.
func (c Constants) AnyLive() bool { return c.AlphaLive || c.FetchLive || c.SpillLive }

// String renders the snapshot for EXPLAIN and CLI provenance lines.
func (c Constants) String() string {
	mark := func(live bool) string {
		if live {
			return "live"
		}
		return "static"
	}
	return fmt.Sprintf("αb=%.3gs αl=%.3gs (%s, n=%d) fetch=%.3gB/s (%s, n=%d) spill=%.3g/%.3gB/s (%s, n=%d)",
		c.AlphaBuild, c.AlphaLookup, mark(c.AlphaLive), c.AlphaSamples,
		c.FetchBw, mark(c.FetchLive), c.FetchSamples,
		c.SpillWriteBw, c.SpillReadBw, mark(c.SpillLive), c.SpillSamples)
}

// Snapshot returns the calibration layer's current state.
func (e *Estimator) Snapshot() Constants {
	if e == nil {
		return Constants{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	min := e.minSamples()
	c := Constants{
		AlphaBuild:   e.alphaBuild.value,
		AlphaLookup:  e.alphaLook.value,
		FetchBw:      e.fetchBw.value,
		SpillWriteBw: e.spillWrBw.value,
		SpillReadBw:  e.spillRdBw.value,
		AlphaSamples: minI64(e.alphaBuild.n, e.alphaLook.n),
		FetchSamples: e.fetchBw.n,
		SpillSamples: minI64(e.spillWrBw.n, e.spillRdBw.n),
	}
	c.AlphaLive = c.AlphaSamples >= min
	c.FetchLive = c.FetchSamples >= min
	c.SpillLive = c.SpillSamples >= min
	return c
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Apply substitutes the graduated live constants into a statically
// derived Params and returns the snapshot it used, so callers can record
// provenance. Signals still warming up leave the static values in place:
//
//   - live α constants replace AlphaBuild/AlphaLookup outright (the
//     measurements span the modeled-CPU charge, so the static
//     CPUSecPerOp augmentation is already included in them);
//   - the live fetch rate sets XferBw to per-stream × min(n_s, n_j),
//     the same aggregation the static min(Net_bw, readIO_bw·n_s) term
//     models;
//   - live spill rates set the SpillWriteBw/SpillReadBw overrides, which
//     the GH terms prefer without perturbing the transfer term.
func (e *Estimator) Apply(p Params) (Params, Constants) {
	c := e.Snapshot()
	if c.AlphaLive {
		p.AlphaBuild = c.AlphaBuild
		p.AlphaLookup = c.AlphaLookup
	}
	if c.FetchLive {
		streams := p.Ns
		if p.Nj < streams {
			streams = p.Nj
		}
		if streams < 1 {
			streams = 1
		}
		p.XferBw = c.FetchBw * float64(streams)
	}
	if c.SpillLive {
		p.SpillWriteBw = c.SpillWriteBw
		p.SpillReadBw = c.SpillReadBw
	}
	return p, c
}

// AttachMetrics exposes the calibration layer on a live registry: a
// gauge family sciview_planner_constant{constant=...} holding the
// current estimates plus per-signal sample counts, and arms the
// sciview_planner_decisions_total counter family RecordDecision
// increments. A nil registry keeps everything a no-op.
func (e *Estimator) AttachMetrics(reg *metrics.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.mu.Lock()
	e.reg = reg
	e.mu.Unlock()
	gauges := []struct {
		name string
		fn   func(Constants) float64
	}{
		{"alpha_build_seconds", func(c Constants) float64 { return c.AlphaBuild }},
		{"alpha_lookup_seconds", func(c Constants) float64 { return c.AlphaLookup }},
		{"fetch_bw_bytes", func(c Constants) float64 { return c.FetchBw }},
		{"spill_write_bw_bytes", func(c Constants) float64 { return c.SpillWriteBw }},
		{"spill_read_bw_bytes", func(c Constants) float64 { return c.SpillReadBw }},
		{"alpha_samples", func(c Constants) float64 { return float64(c.AlphaSamples) }},
		{"fetch_samples", func(c Constants) float64 { return float64(c.FetchSamples) }},
		{"spill_samples", func(c Constants) float64 { return float64(c.SpillSamples) }},
	}
	for _, g := range gauges {
		fn := g.fn
		reg.GaugeFunc("sciview_planner_constant",
			"Current cost-model constants of the online calibration layer.",
			func() float64 { return fn(e.Snapshot()) },
			"constant", g.name)
	}
}

// RecordDecision counts one planner decision in
// sciview_planner_decisions_total{chosen,forced,calibrated}. No-op until
// AttachMetrics arms a registry.
func (e *Estimator) RecordDecision(chosen string, forced, calibrated bool) {
	if e == nil {
		return
	}
	// Never call into the registry under e.mu: a concurrent scrape holds
	// the registry lock while sampling our gauge funcs, which take e.mu.
	e.mu.Lock()
	reg := e.reg
	e.mu.Unlock()
	// A nil registry returns a no-op counter, so this is safe unattached.
	reg.Counter("sciview_planner_decisions_total",
		"Planner engine decisions by choice, override and constant provenance.",
		"chosen", chosen, "forced", boolLabel(forced), "calibrated", boolLabel(calibrated)).Inc()
}

func boolLabel(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
