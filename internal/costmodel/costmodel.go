// Package costmodel implements the paper's Section 5 analytic cost models
// for the Indexed Join (IJ) and Grace Hash (GH) algorithms, the
// crossover predicate derived in Section 6.2, and a calibration routine
// that measures the CPU constants α_build and α_lookup on the host.
//
// The Query Planning Service uses these models to choose a QES for a given
// dataset/system configuration.
package costmodel

import (
	"fmt"
	"math"
	"time"
)

// Params collects the dataset and system parameters of Table 1.
type Params struct {
	// T is the number of tuples in each of R and S.
	T int64
	// CR and CS are tuples per R/S sub-table (c_R, c_S).
	CR int64
	CS int64
	// Ne is the number of edges in the sub-table connectivity graph (n_e).
	Ne int64
	// RSR and RSS are record sizes in bytes (RS_R, RS_S).
	RSR int
	RSS int
	// Ns and Nj are the numbers of storage and joiner nodes (n_s, n_j).
	Ns int
	Nj int
	// NetBw is the aggregate storage→compute bandwidth Net_bw(n_s, n_j) in
	// bytes/second (0 = unlimited).
	NetBw float64
	// ReadBw and WriteBw are per-disk bandwidths in bytes/second
	// (readIO_bw, writeIO_bw; 0 = unlimited).
	ReadBw  float64
	WriteBw float64
	// AlphaBuild and AlphaLookup are CPU seconds per tuple for hash-table
	// insertion and lookup (α_build, α_lookup).
	AlphaBuild  float64
	AlphaLookup float64
	// WorkFactor scales the CPU constants (the Figure 8 knob; the paper's
	// F parameter satisfies α = γ/F, so WorkFactor = 1/F relative to the
	// calibrated machine). 0 is treated as 1.
	WorkFactor int

	// The remaining fields are live-calibration overrides filled in by
	// Estimator.Apply; zero means "use the configured rates above".

	// XferBw, when > 0, replaces the transfer denominator
	// min(Net_bw, readIO_bw·n_s) with a measured end-to-end aggregate
	// transfer bandwidth (storage disk read + transport, compression
	// included).
	XferBw float64
	// SpillWriteBw and SpillReadBw, when > 0, replace writeIO_bw /
	// readIO_bw in the GH spill terms with measured per-joiner scratch
	// throughputs, without perturbing the transfer term's storage-disk
	// rate.
	SpillWriteBw float64
	SpillReadBw  float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.T <= 0 || p.CR <= 0 || p.CS <= 0 {
		return fmt.Errorf("costmodel: non-positive tuple counts (T=%d c_R=%d c_S=%d)", p.T, p.CR, p.CS)
	}
	if p.Ne < 0 {
		return fmt.Errorf("costmodel: negative edge count %d", p.Ne)
	}
	if p.RSR <= 0 || p.RSS <= 0 {
		return fmt.Errorf("costmodel: non-positive record sizes (%d, %d)", p.RSR, p.RSS)
	}
	if p.Ns < 1 || p.Nj < 1 {
		return fmt.Errorf("costmodel: need n_s>=1 and n_j>=1 (got %d, %d)", p.Ns, p.Nj)
	}
	if p.AlphaBuild < 0 || p.AlphaLookup < 0 {
		return fmt.Errorf("costmodel: negative alphas")
	}
	return nil
}

func (p Params) wf() float64 {
	if p.WorkFactor < 1 {
		return 1
	}
	return float64(p.WorkFactor)
}

// totalBytes is T·(RS_R + RS_S), the volume both algorithms move.
func (p Params) totalBytes() float64 {
	return float64(p.T) * float64(p.RSR+p.RSS)
}

// rate converts a possibly-unlimited bandwidth to a divisor; unlimited
// resources contribute zero time.
func div(bytes, rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	return bytes / rate
}

// MS returns m_S = T / c_S, the number of S sub-tables.
func (p Params) MS() float64 { return float64(p.T) / float64(p.CS) }

// Breakdown itemizes a prediction. All fields are in seconds; use
// Duration for display.
type Breakdown struct {
	Transfer float64
	Write    float64
	Read     float64
	Build    float64
	Lookup   float64
	Total    float64
}

// Duration converts a seconds value to a time.Duration for display.
func Duration(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

// Transfer returns the shared transfer term of both models:
//
//	T·(RS_R+RS_S) / min(Net_bw(n_s,n_j), readIO_bw·n_s)
func (p Params) Transfer() float64 {
	if p.XferBw > 0 {
		return p.totalBytes() / p.XferBw
	}
	net := p.NetBw
	agg := p.ReadBw * float64(p.Ns)
	var denom float64
	switch {
	case net <= 0 && p.ReadBw <= 0:
		return 0
	case net <= 0:
		denom = agg
	case p.ReadBw <= 0:
		denom = net
	default:
		denom = math.Min(net, agg)
	}
	return p.totalBytes() / denom
}

// IJ predicts the Indexed Join execution time:
//
//	Total_IJ    = Transfer + BuildHT + Lookup
//	BuildHT_IJ  = α_build · T / n_j
//	Lookup_IJ   = α_lookup · n_e · c_S / n_j
func (p Params) IJ() Breakdown {
	build := p.wf() * p.AlphaBuild * float64(p.T) / float64(p.Nj)
	lookup := p.wf() * p.AlphaLookup * float64(p.Ne) * float64(p.CS) / float64(p.Nj)
	transfer := p.Transfer()
	return Breakdown{
		Transfer: transfer,
		Build:    build,
		Lookup:   lookup,
		Total:    transfer + build + lookup,
	}
}

// GH predicts the Grace Hash execution time:
//
//	Total_GH = Transfer + Write + Read + Cpu
//	Write_GH = T·(RS_R+RS_S) / (writeIO_bw · n_j)
//	Read_GH  = T·(RS_R+RS_S) / (readIO_bw · n_j)
//	Cpu_GH   = (α_build + α_lookup) · T / n_j
func (p Params) GH() Breakdown {
	transfer := p.Transfer()
	write := div(p.totalBytes(), p.spillWriteBw()*float64(p.Nj))
	read := div(p.totalBytes(), p.spillReadBw()*float64(p.Nj))
	build := p.wf() * p.AlphaBuild * float64(p.T) / float64(p.Nj)
	lookup := p.wf() * p.AlphaLookup * float64(p.T) / float64(p.Nj)
	return Breakdown{
		Transfer: transfer,
		Write:    write,
		Read:     read,
		Build:    build,
		Lookup:   lookup,
		Total:    transfer + write + read + build + lookup,
	}
}

// GHSharedFS predicts Grace Hash on the single-shared-server configuration
// of Figure 9: the NFS server's disk serves the transfer reads *and* every
// joiner's bucket writes and reads, so spill I/O aggregates over one device
// instead of scaling with n_j.
func (p Params) GHSharedFS() Breakdown {
	transfer := p.sharedTransfer()
	write := div(p.totalBytes(), p.SpillWriteBw)
	if p.SpillWriteBw <= 0 {
		write = div(p.totalBytes(), p.WriteBw)
	}
	read := div(p.totalBytes(), p.SpillReadBw)
	if p.SpillReadBw <= 0 {
		read = div(p.totalBytes(), p.ReadBw)
	}
	build := p.wf() * p.AlphaBuild * float64(p.T) / float64(p.Nj)
	lookup := p.wf() * p.AlphaLookup * float64(p.T) / float64(p.Nj)
	return Breakdown{
		Transfer: transfer,
		Write:    write,
		Read:     read,
		Build:    build,
		Lookup:   lookup,
		Total:    transfer + write + read + build + lookup,
	}
}

// IJSharedFS predicts IJ on the shared-server configuration: only the
// transfer term changes (one server disk).
func (p Params) IJSharedFS() Breakdown {
	transfer := p.sharedTransfer()
	build := p.wf() * p.AlphaBuild * float64(p.T) / float64(p.Nj)
	lookup := p.wf() * p.AlphaLookup * float64(p.Ne) * float64(p.CS) / float64(p.Nj)
	return Breakdown{
		Transfer: transfer,
		Build:    build,
		Lookup:   lookup,
		Total:    transfer + build + lookup,
	}
}

// sharedTransfer is the single-shared-server transfer term, honoring a
// calibrated end-to-end bandwidth when one is set.
func (p Params) sharedTransfer() float64 {
	if p.XferBw > 0 {
		return p.totalBytes() / p.XferBw
	}
	return div(p.totalBytes(), minPos(p.NetBw, p.ReadBw))
}

// spillWriteBw and spillReadBw pick the calibrated scratch rates when
// available, the configured disk rates otherwise.
func (p Params) spillWriteBw() float64 {
	if p.SpillWriteBw > 0 {
		return p.SpillWriteBw
	}
	return p.WriteBw
}

func (p Params) spillReadBw() float64 {
	if p.SpillReadBw > 0 {
		return p.SpillReadBw
	}
	return p.ReadBw
}

// SpillCost prices one out-of-core round trip: writing bytes to a
// joiner's scratch disk and reading them back, at the (calibrated when
// available) spill rates. It is the seconds a budget-degraded operator
// adds per spilled byte volume — the term admission and EXPLAIN use to
// weigh degraded execution against queueing. Unlimited (zero) rates
// price as zero, matching the rest of the model.
func (p Params) SpillCost(bytes int64) float64 {
	return div(float64(bytes), p.spillWriteBw()) + div(float64(bytes), p.spillReadBw())
}

func minPos(a, b float64) float64 {
	switch {
	case a <= 0 && b <= 0:
		return 0
	case a <= 0:
		return b
	case b <= 0:
		return a
	default:
		return math.Min(a, b)
	}
}

// UseIJ reports whether the models predict IJ to be the faster algorithm.
func (p Params) UseIJ() bool {
	return p.IJ().Total < p.GH().Total
}

// CrossoverLHS and CrossoverRHS evaluate the closed-form inequality of
// Section 6.2 (with readIO_bw = writeIO_bw = IO_bw): IJ wins when
//
//	α_lookup·(n_e/m_S − 1) < 2·(RS_R+RS_S)/IO_bw
//
// i.e. when the extra lookups IJ performs cost less than the bucket
// write+read GH performs. CrossoverLHS > CrossoverRHS ⇒ prefer GH.
func (p Params) CrossoverLHS() float64 {
	return p.wf() * p.AlphaLookup * (float64(p.Ne)/p.MS() - 1)
}

// CrossoverRHS returns the right-hand side of the crossover inequality.
// With unlimited disks it is +Inf only notionally; we return 0 so the
// caller falls back to the full model comparison.
func (p Params) CrossoverRHS() float64 {
	if p.ReadBw <= 0 || p.WriteBw <= 0 {
		return 0
	}
	return float64(p.RSR+p.RSS)/p.WriteBw + float64(p.RSR+p.RSS)/p.ReadBw
}

// UseIJClosedForm applies the closed-form inequality (valid when the
// transfer terms cancel, i.e. identical for both algorithms).
func (p Params) UseIJClosedForm() bool {
	return p.CrossoverLHS() < p.CrossoverRHS()
}
