package costmodel

import (
	"strings"
	"sync"
	"testing"

	"sciview/internal/metrics"
)

// TestCalibrateBounds: the one-shot host calibration must return positive,
// finite, plausibly-sized per-op costs at any requested size (tiny n is
// clamped), and the two sizes must agree within a loose factor — the cost
// of one hash op does not change orders of magnitude with table size.
func TestCalibrateBounds(t *testing.T) {
	for _, n := range []int{0, 1 << 14} {
		b, l := Calibrate(n)
		if !(b > 0) || !(l > 0) {
			t.Fatalf("Calibrate(%d) = %g, %g: want positive", n, b, l)
		}
		if b > 1e-4 || l > 1e-4 {
			t.Fatalf("Calibrate(%d) = %g, %g: over 100µs per op is not plausible", n, b, l)
		}
	}
	b1, _ := Calibrate(1 << 12)
	b2, _ := Calibrate(1 << 15)
	if ratio := b1 / b2; ratio > 100 || ratio < 0.01 {
		t.Errorf("per-op build cost swung %gx between sizes", ratio)
	}
}

func alphaObs(build, lookup float64) Observation {
	return Observation{
		Engine:      "ij",
		BuildTuples: 1000, BuildSeconds: build * 1000,
		ProbeTuples: 1000, ProbeSeconds: lookup * 1000,
	}
}

// TestEstimatorColdStart: with no observations the estimator must be
// transparent — Apply returns the static Params untouched.
func TestEstimatorColdStart(t *testing.T) {
	e := NewEstimator()
	p := base()
	got, c := e.Apply(p)
	if c.AnyLive() {
		t.Fatalf("cold estimator reports live constants: %+v", c)
	}
	if got != p {
		t.Fatalf("cold Apply changed params: %+v != %+v", got, p)
	}
}

// TestEstimatorFallbackBelowMinSamples: one or two samples seed the
// estimates but must NOT displace the static constants yet.
func TestEstimatorFallbackBelowMinSamples(t *testing.T) {
	e := NewEstimator()
	e.Observe(alphaObs(5e-6, 3e-6))
	c := e.Snapshot()
	if c.AlphaSamples != 1 {
		t.Fatalf("AlphaSamples = %d, want 1", c.AlphaSamples)
	}
	if c.AlphaLive {
		t.Fatal("one sample graduated before MinSamples=3")
	}
	if c.AlphaBuild != 5e-6 {
		t.Fatalf("first sample should seed the value exactly, got %g", c.AlphaBuild)
	}
	p := base()
	got, _ := e.Apply(p)
	if got.AlphaBuild != p.AlphaBuild || got.AlphaLookup != p.AlphaLookup {
		t.Fatal("warming-up signal displaced static alphas")
	}
}

// TestEstimatorGraduation: at MinSamples the live constants take over, and
// Apply rewrites alphas, XferBw (per-stream rate × min(Ns, Nj)) and the
// spill overrides.
func TestEstimatorGraduation(t *testing.T) {
	e := NewEstimator()
	for i := 0; i < DefaultMinSamples; i++ {
		e.Observe(Observation{
			Engine:      "gh",
			BuildTuples: 1000, BuildSeconds: 2e-6 * 1000,
			ProbeTuples: 1000, ProbeSeconds: 1e-6 * 1000,
			FetchBytes: 1 << 20, FetchSeconds: 0.5,
			SpillWriteBytes: 1 << 20, SpillWriteSeconds: 0.25,
			SpillReadBytes: 1 << 20, SpillReadSeconds: 0.125,
		})
	}
	c := e.Snapshot()
	if !c.AlphaLive || !c.FetchLive || !c.SpillLive {
		t.Fatalf("all signals should be live at %d samples: %+v", DefaultMinSamples, c)
	}
	p := base() // Ns=5, Nj=5
	got, _ := e.Apply(p)
	if got.AlphaBuild != 2e-6 || got.AlphaLookup != 1e-6 {
		t.Fatalf("alphas not replaced: %g/%g", got.AlphaBuild, got.AlphaLookup)
	}
	perStream := float64(1<<20) / 0.5
	if want := perStream * 5; got.XferBw != want {
		t.Fatalf("XferBw = %g, want per-stream %g × min(Ns,Nj)=5", got.XferBw, perStream)
	}
	if got.SpillWriteBw != float64(1<<20)/0.25 || got.SpillReadBw != float64(1<<20)/0.125 {
		t.Fatalf("spill overrides not set: %g/%g", got.SpillWriteBw, got.SpillReadBw)
	}
}

// TestEstimatorDecay: the EWMA must move estimates toward new evidence at
// the configured rate and converge (saturate) on a steady signal.
func TestEstimatorDecay(t *testing.T) {
	e := NewEstimator()
	e.Observe(alphaObs(1e-6, 1e-6))
	e.Observe(alphaObs(2e-6, 2e-6))
	c := e.Snapshot()
	want := (1-DefaultDecay)*1e-6 + DefaultDecay*2e-6
	if !close(c.AlphaBuild, want) {
		t.Fatalf("second fold = %g, want EWMA %g", c.AlphaBuild, want)
	}
	// Saturation: a long run of identical samples converges to the sample.
	for i := 0; i < 100; i++ {
		e.Observe(alphaObs(8e-6, 8e-6))
	}
	c = e.Snapshot()
	if !close(c.AlphaBuild, 8e-6) || !close(c.AlphaLookup, 8e-6) {
		t.Fatalf("did not converge on steady signal: %g/%g", c.AlphaBuild, c.AlphaLookup)
	}
}

// TestEstimatorRejectsDegenerateSamples: zero-work stages and non-finite
// rates must leave the signals untouched — an IJ run (no spill) never
// dilutes the spill estimates, and a zero-duration timer tick is dropped.
func TestEstimatorRejectsDegenerateSamples(t *testing.T) {
	e := NewEstimator()
	e.Observe(Observation{Engine: "ij", FetchBytes: 100}) // zero seconds
	e.Observe(Observation{Engine: "ij", FetchSeconds: 1}) // zero bytes
	e.Observe(Observation{Engine: "ij", BuildTuples: 10, BuildSeconds: -1})
	c := e.Snapshot()
	if c.FetchSamples != 0 || c.AlphaSamples != 0 || c.SpillSamples != 0 {
		t.Fatalf("degenerate samples were counted: %+v", c)
	}
}

// TestEstimatorMetrics: AttachMetrics exposes the constants gauge family
// and arms the decision counter; a scrape racing Observe/RecordDecision
// must not deadlock (the gauges call back into the estimator).
func TestEstimatorMetrics(t *testing.T) {
	e := NewEstimator()
	reg := metrics.NewRegistry()
	e.AttachMetrics(reg)
	e.RecordDecision("ij", false, true)
	e.RecordDecision("gh", true, false)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			e.Observe(alphaObs(1e-6, 1e-6))
			e.RecordDecision("ij", false, false)
		}
	}()
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.Reset()
		reg.WritePrometheus(&sb)
	}
	wg.Wait()
	sb.Reset()
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`sciview_planner_constant{constant="alpha_build_seconds"}`,
		`sciview_planner_constant{constant="fetch_bw_bytes"}`,
		`sciview_planner_constant{constant="spill_read_bw_bytes"}`,
		`sciview_planner_decisions_total{calibrated="true",chosen="ij",forced="false"}`,
		`sciview_planner_decisions_total{calibrated="false",chosen="gh",forced="true"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %s:\n%s", want, out)
		}
	}
}

// TestEstimatorNilSafety: a nil estimator (planner pinned to the static
// layer) must absorb every call.
func TestEstimatorNilSafety(t *testing.T) {
	var e *Estimator
	e.Observe(alphaObs(1e-6, 1e-6))
	e.RecordDecision("ij", false, false)
	e.AttachMetrics(metrics.NewRegistry())
	if c := e.Snapshot(); c.AnyLive() {
		t.Fatal("nil estimator reported live constants")
	}
}
