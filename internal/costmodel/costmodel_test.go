package costmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// base returns parameters resembling the paper's setup, scaled down.
func base() Params {
	return Params{
		T:  1 << 20,
		CR: 4096, CS: 1024,
		Ne:  1 << 10, // one left partner per right sub-table
		RSR: 16, RSS: 16,
		Ns: 5, Nj: 5,
		NetBw:  50e6, // ~ Fast Ethernet × 5 links
		ReadBw: 30e6, WriteBw: 25e6,
		AlphaBuild:  100e-9,
		AlphaLookup: 60e-9,
	}
}

func TestValidate(t *testing.T) {
	p := base()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.T = 0
	if bad.Validate() == nil {
		t.Error("T=0 accepted")
	}
	bad = p
	bad.Nj = 0
	if bad.Validate() == nil {
		t.Error("Nj=0 accepted")
	}
	bad = p
	bad.RSR = 0
	if bad.Validate() == nil {
		t.Error("RSR=0 accepted")
	}
	bad = p
	bad.AlphaBuild = -1
	if bad.Validate() == nil {
		t.Error("negative alpha accepted")
	}
	bad = p
	bad.Ne = -1
	if bad.Validate() == nil {
		t.Error("negative Ne accepted")
	}
}

func TestTransferTerm(t *testing.T) {
	p := base()
	// min(50e6, 30e6*5=150e6) = 50e6; bytes = 2^20 * 32.
	want := float64(p.T) * 32 / 50e6
	if got := p.Transfer(); !close(got, want) {
		t.Errorf("Transfer = %g, want %g", got, want)
	}
	// Unlimited network: bound by aggregate disk read.
	p.NetBw = 0
	want = float64(p.T) * 32 / (30e6 * 5)
	if got := p.Transfer(); !close(got, want) {
		t.Errorf("Transfer = %g, want %g", got, want)
	}
	// Both unlimited: free.
	p.ReadBw = 0
	if got := p.Transfer(); got != 0 {
		t.Errorf("Transfer = %g, want 0", got)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

func TestGHInsensitiveToNe(t *testing.T) {
	p := base()
	g1 := p.GH().Total
	p.Ne *= 100
	if g2 := p.GH().Total; g2 != g1 {
		t.Errorf("GH depends on n_e: %v vs %v", g1, g2)
	}
}

func TestIJGrowsWithNeCs(t *testing.T) {
	p := base()
	t1 := p.IJ().Total
	p.Ne *= 8
	t2 := p.IJ().Total
	if t2 <= t1 {
		t.Errorf("IJ did not grow with n_e: %v vs %v", t1, t2)
	}
}

func TestCrossoverExists(t *testing.T) {
	// Low n_e·c_S: IJ wins (GH pays spill I/O). High n_e·c_S: GH wins.
	p := base()
	p.Ne = int64(p.MS()) // degree 1
	if !p.UseIJ() {
		t.Errorf("IJ should win at degree 1: IJ=%v GH=%v", p.IJ().Total, p.GH().Total)
	}
	p.Ne = int64(p.MS()) * 2000
	if p.UseIJ() {
		t.Errorf("GH should win at degree 2000: IJ=%v GH=%v", p.IJ().Total, p.GH().Total)
	}
}

func TestClosedFormMatchesFullModel(t *testing.T) {
	// With readIO_bw=writeIO_bw and identical transfer terms, the closed
	// form and the full model agree (away from the boundary).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := base()
		p.ReadBw = 20e6
		p.WriteBw = 20e6
		p.Ne = int64(p.MS()) * int64(1+r.Intn(4000))
		lhs, rhs := p.CrossoverLHS(), p.CrossoverRHS()
		if close(lhs, rhs) {
			return true // boundary: either answer acceptable
		}
		return p.UseIJClosedForm() == p.UseIJ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkFactorScalesCPUOnly(t *testing.T) {
	p := base()
	ij1, gh1 := p.IJ(), p.GH()
	p.WorkFactor = 4
	ij4, gh4 := p.IJ(), p.GH()
	if ij4.Build != 4*ij1.Build || ij4.Lookup != 4*ij1.Lookup {
		t.Error("IJ CPU terms not scaled")
	}
	if ij4.Transfer != ij1.Transfer || gh4.Transfer != gh1.Transfer {
		t.Error("transfer must not scale with work factor")
	}
	if gh4.Write != gh1.Write || gh4.Read != gh1.Read {
		t.Error("GH I/O must not scale with work factor")
	}
}

func TestHigherComputePowerFavorsIJ(t *testing.T) {
	// Figure 8's trend: as the CPU gets slower (work factor up), GH's
	// advantage grows; as it gets faster, IJ wins.
	p := base()
	p.ReadBw, p.WriteBw = 10e6, 10e6
	p.Ne = int64(p.MS()) * 20
	gap := func(wf int) float64 {
		p.WorkFactor = wf
		return p.GH().Total - p.IJ().Total
	}
	// gap decreasing in wf (IJ has more CPU work than GH here).
	if !(gap(1) > gap(2) && gap(2) > gap(8)) {
		t.Errorf("gap not decreasing: %v %v %v", gap(1), gap(2), gap(8))
	}
}

func TestSharedFSPenalizesGH(t *testing.T) {
	p := base()
	p.Ne = int64(p.MS()) * 2 // modest degree
	localGap := p.GH().Total - p.IJ().Total
	sharedGap := p.GHSharedFS().Total - p.IJSharedFS().Total
	if sharedGap <= localGap {
		t.Errorf("shared FS should widen GH's deficit: local %v shared %v", localGap, sharedGap)
	}
	// GH on shared FS gets no better with more compute nodes once I/O
	// dominates: compare nj=2 vs nj=8 relative change.
	p.Nj = 2
	g2 := p.GHSharedFS().Total
	p.Nj = 8
	g8 := p.GHSharedFS().Total
	// CPU shrinks but I/O terms are constant; the drop must be small
	// relative to the I/O share.
	ioShare := p.GHSharedFS()
	if g2-g8 > ioShare.Write {
		t.Errorf("shared-FS GH improved too much with n_j: %v -> %v", g2, g8)
	}
}

func TestScalesLinearlyInT(t *testing.T) {
	p := base()
	ij1, gh1 := p.IJ().Total, p.GH().Total
	p.T *= 4
	p.Ne *= 4 // same partitioning, 4× grid
	ij4, gh4 := p.IJ().Total, p.GH().Total
	if !close(ij4, 4*ij1) || !close(gh4, 4*gh1) {
		t.Errorf("not linear: IJ %v->%v GH %v->%v", ij1, ij4, gh1, gh4)
	}
}

func TestCalibrate(t *testing.T) {
	ab, al := Calibrate(1 << 14)
	if ab <= 0 || al <= 0 {
		t.Fatalf("calibration returned %g, %g", ab, al)
	}
	// Sanity: per-tuple hash ops on modern hardware are 1ns–100µs.
	if ab > 1e-4 || al > 1e-4 {
		t.Errorf("implausibly slow: build %g s/tuple, lookup %g", ab, al)
	}
}

func TestBreakdownTotalsConsistent(t *testing.T) {
	p := base()
	ij := p.IJ()
	if !close(ij.Total, ij.Transfer+ij.Build+ij.Lookup) {
		t.Error("IJ breakdown does not sum")
	}
	gh := p.GH()
	if !close(gh.Total, gh.Transfer+gh.Write+gh.Read+gh.Build+gh.Lookup) {
		t.Error("GH breakdown does not sum")
	}
}
