// Package simio provides the simulated storage and network substrate of the
// emulated cluster: token-bucket bandwidth throttles, disks with separate
// read/write bandwidths, NICs, and object stores (in-memory or file-backed).
//
// The paper's cost models reduce every I/O resource to a byte rate
// (readIO_bw, writeIO_bw, Net_bw). simio throttles *real* byte movement to
// configured rates, so the emulated cluster exhibits the same
// transfer-bound / CPU-bound / spill-bound regimes as the authors' testbed,
// at laptop scale. Requests through one throttle serialize, which is also
// the right model for a shared resource such as the single NFS server of
// the paper's Figure 9.
package simio

import (
	"runtime"
	"sync"
	"time"
)

// Throttle limits throughput to a fixed byte rate. Concurrent requests are
// serviced in FIFO order, each delayed until the modeled resource would
// have finished it — i.e. the throttle behaves like a single device with a
// queue. The zero rate means "unlimited": no delay is ever imposed.
type Throttle struct {
	mu          sync.Mutex
	bytesPerSec float64
	next        time.Time     // when the device becomes free
	busy        time.Duration // total modeled busy time
	taken       int64         // total bytes requested

	// Contention model (for shared servers such as the paper's Figure 9
	// NFS box): when several distinct clients use the device within
	// contWindow, each request's service time is multiplied by
	// 1 + contPenalty·(clients−1), capturing the seek/RPC thrash an
	// overloaded shared server exhibits. Zero penalty (the default)
	// preserves ideal work-conserving behaviour.
	contPenalty float64
	contWindow  time.Duration
	clients     map[int]time.Time
}

// NewThrottle returns a throttle enforcing the given rate in bytes/second.
// A rate <= 0 disables throttling.
func NewThrottle(bytesPerSec float64) *Throttle {
	return &Throttle{bytesPerSec: bytesPerSec}
}

// Rate returns the configured byte rate (0 = unlimited).
func (t *Throttle) Rate() float64 {
	if t == nil {
		return 0
	}
	return t.bytesPerSec
}

// SetContention enables the shared-server contention model: requests pay a
// service-time multiplier of 1 + penalty·(distinct clients in window − 1).
func (t *Throttle) SetContention(penalty float64, window time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.contPenalty = penalty
	t.contWindow = window
	t.clients = make(map[int]time.Time)
}

// Reserve books n bytes of service on the device and returns the deadline
// at which the request completes, without sleeping. Combine Reserve with
// Wait to model transfers that occupy two devices at once (a network link's
// two endpoints).
func (t *Throttle) Reserve(n int64) time.Time {
	return t.ReserveFrom(0, n)
}

// ReserveFrom is Reserve attributed to a client id, feeding the contention
// model (a no-op unless SetContention was called).
func (t *Throttle) ReserveFrom(client int, n int64) time.Time {
	if t == nil || t.bytesPerSec <= 0 {
		return time.Time{}
	}
	d := time.Duration(float64(n) / t.bytesPerSec * float64(time.Second))
	t.mu.Lock()
	now := time.Now()
	if t.contPenalty > 0 {
		for c, seen := range t.clients {
			if now.Sub(seen) > t.contWindow {
				delete(t.clients, c)
			}
		}
		t.clients[client] = now
		mult := 1 + t.contPenalty*float64(len(t.clients)-1)
		d = time.Duration(float64(d) * mult)
	}
	start := t.next
	if start.Before(now) {
		start = now
	}
	t.next = start.Add(d)
	t.busy += d
	t.taken += n
	deadline := t.next
	t.mu.Unlock()
	return deadline
}

// waitQuantum batches short waits: a caller issuing many small requests
// blocks only once its modeled backlog exceeds the quantum. The throttle's
// internal clock (next) is unaffected, so no service time is lost — the
// block is merely deferred.
const waitQuantum = 200 * time.Microsecond

// sleepSlack is how much of a wait is delegated to time.Sleep. The OS
// timer has ~1ms granularity with substantial overshoot, which would
// accumulate into multiples of the modeled time across the thousands of
// short I/O waits an experiment performs; the final stretch is therefore
// finished with a yielding spin, making deadlines accurate to ~µs.
const sleepSlack = 2 * time.Millisecond

// Wait blocks until the given deadline (no-op for the zero time), ignoring
// backlogs shorter than waitQuantum.
func Wait(deadline time.Time) {
	if deadline.IsZero() {
		return
	}
	d := time.Until(deadline)
	if d < waitQuantum {
		return
	}
	if d > sleepSlack {
		time.Sleep(d - sleepSlack)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Take reserves n bytes and blocks until the modeled device has finished
// servicing them.
func (t *Throttle) Take(n int64) {
	Wait(t.Reserve(n))
}

// BusyTime returns the accumulated modeled service time.
func (t *Throttle) BusyTime() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.busy
}

// Taken returns the total bytes requested through the throttle.
func (t *Throttle) Taken() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.taken
}

// Reset zeroes the accounting and releases any queued backlog.
func (t *Throttle) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = time.Time{}
	t.busy = 0
	t.taken = 0
	if t.clients != nil {
		t.clients = make(map[int]time.Time)
	}
}
