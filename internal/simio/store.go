package simio

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the byte-object storage beneath a simulated disk. Objects are
// named blobs supporting ranged reads (chunks are file segments identified
// by offset and size) and appends (Grace Hash spill buckets grow by
// appending partitions).
type Store interface {
	// Put creates or replaces an object.
	Put(name string, data []byte) error
	// Append extends an object, creating it if absent.
	Append(name string, data []byte) error
	// ReadRange reads n bytes at offset off. n < 0 reads to the end.
	ReadRange(name string, off, n int64) ([]byte, error)
	// Size returns the object's length in bytes.
	Size(name string) (int64, error)
	// Delete removes an object; deleting a missing object is not an error.
	Delete(name string) error
	// List returns all object names, sorted.
	List() ([]string, error)
}

// MemStore is an in-memory Store, the default substrate for tests and
// benchmarks (chunk bytes are still real bytes; only the medium is RAM).
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string][]byte)}
}

// Put implements Store.
func (m *MemStore) Put(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = append([]byte(nil), data...)
	return nil
}

// Append implements Store.
func (m *MemStore) Append(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = append(m.objects[name], data...)
	return nil
}

// ReadRange implements Store.
func (m *MemStore) ReadRange(name string, off, n int64) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	obj, ok := m.objects[name]
	if !ok {
		return nil, fmt.Errorf("simio: object %q not found", name)
	}
	if off < 0 || off > int64(len(obj)) {
		return nil, fmt.Errorf("simio: offset %d out of range for %q (%d bytes)", off, name, len(obj))
	}
	end := int64(len(obj))
	if n >= 0 {
		end = off + n
		if end > int64(len(obj)) {
			return nil, fmt.Errorf("simio: range [%d,%d) exceeds %q (%d bytes)", off, end, name, len(obj))
		}
	}
	out := make([]byte, end-off)
	copy(out, obj[off:end])
	return out, nil
}

// Size implements Store.
func (m *MemStore) Size(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	obj, ok := m.objects[name]
	if !ok {
		return 0, fmt.Errorf("simio: object %q not found", name)
	}
	return int64(len(obj)), nil
}

// Delete implements Store.
func (m *MemStore) Delete(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, name)
	return nil
}

// List implements Store.
func (m *MemStore) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.objects))
	for n := range m.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// FileStore is a Store backed by real files under a directory, used by the
// command-line tools so generated datasets persist across runs.
type FileStore struct {
	dir string
}

// NewFileStore returns a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simio: creating store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// path maps an object name to a file path, rejecting names that escape the
// store directory.
func (f *FileStore) path(name string) (string, error) {
	if name == "" || strings.Contains(name, "..") || filepath.IsAbs(name) {
		return "", fmt.Errorf("simio: invalid object name %q", name)
	}
	return filepath.Join(f.dir, filepath.FromSlash(name)), nil
}

// Put implements Store.
func (f *FileStore) Put(name string, data []byte) error {
	p, err := f.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, data, 0o644)
}

// Append implements Store.
func (f *FileStore) Append(name string, data []byte) error {
	p, err := f.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	file, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := file.Write(data)
	cerr := file.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadRange implements Store.
func (f *FileStore) ReadRange(name string, off, n int64) ([]byte, error) {
	p, err := f.path(name)
	if err != nil {
		return nil, err
	}
	file, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	if n < 0 {
		fi, err := file.Stat()
		if err != nil {
			return nil, err
		}
		n = fi.Size() - off
	}
	buf := make([]byte, n)
	if _, err := file.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("simio: reading %q [%d,%d): %w", name, off, off+n, err)
	}
	return buf, nil
}

// Size implements Store.
func (f *FileStore) Size(name string) (int64, error) {
	p, err := f.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Delete implements Store.
func (f *FileStore) Delete(name string) error {
	p, err := f.path(name)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements Store.
func (f *FileStore) List() ([]string, error) {
	var names []string
	err := filepath.WalkDir(f.dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			rel, err := filepath.Rel(f.dir, p)
			if err != nil {
				return err
			}
			names = append(names, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}
