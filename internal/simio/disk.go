package simio

import (
	"errors"
	"sync/atomic"
	"time"
)

// PartialWriteError marks an injected short write: the device accepted a
// prefix of the data and then failed. Disk.Append honors it by really
// persisting half the payload before returning the error, so recovery
// code is exercised against genuinely truncated files rather than
// cleanly absent ones.
type PartialWriteError struct{ Rule string }

func (e *PartialWriteError) Error() string {
	return "simio: short write (fault " + e.Rule + ")"
}

// Counters accumulates byte traffic for cost-model validation. All fields
// are updated atomically and may be read while a run is in progress.
type Counters struct {
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
	BytesSent    atomic.Int64
	BytesRecv    atomic.Int64
}

// Snapshot is a point-in-time copy of a Counters.
type Snapshot struct {
	BytesRead    int64
	BytesWritten int64
	BytesSent    int64
	BytesRecv    int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		BytesRead:    c.BytesRead.Load(),
		BytesWritten: c.BytesWritten.Load(),
		BytesSent:    c.BytesSent.Load(),
		BytesRecv:    c.BytesRecv.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.BytesRead.Store(0)
	c.BytesWritten.Store(0)
	c.BytesSent.Store(0)
	c.BytesRecv.Store(0)
}

// Disk models one storage device: an object store plus read/write bandwidth
// throttles and traffic counters. Several Disk values may share the same
// throttles and store — that is exactly the paper's shared-NFS-server
// scenario (Figure 9), where one server's disk serializes everybody's I/O.
type Disk struct {
	store Store
	read  *Throttle
	write *Throttle
	// Owner identifies the node using this disk handle, feeding the
	// shared-server contention model (distinct owners contending on one
	// throttle pay the thrash multiplier).
	Owner    int
	Counters Counters
	// Fault, when set, is consulted before every operation with "read" or
	// "write"; a non-nil return fails the operation without touching the
	// store (chaos injection — a crashed or flaky device).
	Fault func(op string) error
}

// NewDisk returns a disk over the given store with the given bandwidths in
// bytes/second (0 = unlimited).
func NewDisk(store Store, readBw, writeBw float64) *Disk {
	return &Disk{store: store, read: NewThrottle(readBw), write: NewThrottle(writeBw)}
}

// NewSharedDisk returns a disk over the given store using the caller's
// throttles, so several disks can contend on one physical device.
func NewSharedDisk(store Store, read, write *Throttle) *Disk {
	return &Disk{store: store, read: read, write: write}
}

// Store exposes the underlying store for administrative (untimed) access,
// e.g. dataset generation, which the paper excludes from measured costs.
func (d *Disk) Store() Store { return d.store }

// ReadThrottle returns the read-bandwidth throttle (shared-disk detection).
func (d *Disk) ReadThrottle() *Throttle { return d.read }

// WriteThrottle returns the write-bandwidth throttle.
func (d *Disk) WriteThrottle() *Throttle { return d.write }

// ReadRange reads object bytes through the read throttle.
func (d *Disk) ReadRange(name string, off, n int64) ([]byte, error) {
	if d.Fault != nil {
		if err := d.Fault("read"); err != nil {
			return nil, err
		}
	}
	data, err := d.store.ReadRange(name, off, n)
	if err != nil {
		return nil, err
	}
	Wait(d.read.ReserveFrom(d.Owner, int64(len(data))))
	d.Counters.BytesRead.Add(int64(len(data)))
	return data, nil
}

// Put writes an object through the write throttle.
func (d *Disk) Put(name string, data []byte) error {
	if d.Fault != nil {
		if err := d.Fault("write"); err != nil {
			return err
		}
	}
	Wait(d.write.ReserveFrom(d.Owner, int64(len(data))))
	if err := d.store.Put(name, data); err != nil {
		return err
	}
	d.Counters.BytesWritten.Add(int64(len(data)))
	return nil
}

// Append extends an object through the write throttle. An injected
// PartialWriteError persists the first half of the payload before the
// error surfaces — a short write that really truncates.
func (d *Disk) Append(name string, data []byte) error {
	if d.Fault != nil {
		if err := d.Fault("write"); err != nil {
			var pw *PartialWriteError
			if errors.As(err, &pw) && len(data) > 0 {
				half := data[:len(data)/2]
				Wait(d.write.ReserveFrom(d.Owner, int64(len(half))))
				if aerr := d.store.Append(name, half); aerr == nil {
					d.Counters.BytesWritten.Add(int64(len(half)))
				}
			}
			return err
		}
	}
	Wait(d.write.ReserveFrom(d.Owner, int64(len(data))))
	if err := d.store.Append(name, data); err != nil {
		return err
	}
	d.Counters.BytesWritten.Add(int64(len(data)))
	return nil
}

// Size returns an object's size (metadata access: untimed).
func (d *Disk) Size(name string) (int64, error) { return d.store.Size(name) }

// Delete removes an object (untimed, like unlink).
func (d *Disk) Delete(name string) error { return d.store.Delete(name) }

// NIC models one node's network interface as a byte-rate throttle with
// traffic counters. A transfer occupies both endpoints simultaneously, so
// Transfer reserves time on both NICs and waits for the later deadline.
type NIC struct {
	throttle *Throttle
	Counters *Counters
}

// NewNIC returns a NIC with the given bandwidth in bytes/second
// (0 = unlimited), attributing traffic to the given counters (may be nil).
func NewNIC(bw float64, counters *Counters) *NIC {
	if counters == nil {
		counters = &Counters{}
	}
	return &NIC{throttle: NewThrottle(bw), Counters: counters}
}

// Throttle exposes the underlying throttle (for utilization accounting).
func (n *NIC) Throttle() *Throttle { return n.throttle }

// Transfer moves size bytes from src to dst, blocking for the modeled
// duration: the transfer completes when both endpoints have serviced it.
func Transfer(src, dst *NIC, size int64) {
	var later time.Time
	if src != nil {
		if d := src.throttle.Reserve(size); d.After(later) {
			later = d
		}
		src.Counters.BytesSent.Add(size)
	}
	if dst != nil {
		if d := dst.throttle.Reserve(size); d.After(later) {
			later = d
		}
		dst.Counters.BytesRecv.Add(size)
	}
	Wait(later)
}
