package simio

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestThrottleUnlimited(t *testing.T) {
	tr := NewThrottle(0)
	start := time.Now()
	tr.Take(1 << 30)
	if time.Since(start) > 50*time.Millisecond {
		t.Error("unlimited throttle should not block")
	}
	var nilT *Throttle
	nilT.Take(100) // must not panic
	if nilT.Rate() != 0 || nilT.Taken() != 0 || nilT.BusyTime() != 0 {
		t.Error("nil throttle accessors should be zero")
	}
}

func TestThrottleRate(t *testing.T) {
	// 1 MB/s: taking 200 KB should cost about 200 ms.
	tr := NewThrottle(1 << 20)
	start := time.Now()
	tr.Take(200 << 10)
	elapsed := time.Since(start)
	want := 195 * time.Millisecond
	if elapsed < want {
		t.Errorf("Take returned after %v, want >= %v", elapsed, want)
	}
	if elapsed > 2*want {
		t.Errorf("Take took %v, way over expected %v", elapsed, want)
	}
	if tr.Taken() != 200<<10 {
		t.Errorf("Taken = %d", tr.Taken())
	}
}

func TestThrottleSerializesConcurrentRequests(t *testing.T) {
	// 4 goroutines × 50KB through a 1MB/s device ≈ 200ms total, because a
	// single device serializes.
	tr := NewThrottle(1 << 20)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Take(50 << 10)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 190*time.Millisecond {
		t.Errorf("concurrent Takes finished in %v; device should serialize to ~200ms", elapsed)
	}
	if got := tr.BusyTime(); got < 190*time.Millisecond {
		t.Errorf("BusyTime = %v", got)
	}
}

func TestThrottleReset(t *testing.T) {
	tr := NewThrottle(1024)
	tr.Reserve(1 << 20) // queue a big backlog without sleeping
	tr.Reset()
	start := time.Now()
	tr.Take(1) // should be nearly instant after reset
	if time.Since(start) > 100*time.Millisecond {
		t.Error("Reset did not clear backlog")
	}
	if tr.Taken() != 1 {
		t.Errorf("Taken after reset = %d", tr.Taken())
	}
}

func testStore(t *testing.T, s Store) {
	t.Helper()
	if err := s.Put("a/b", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRange("a/b", 6, 5)
	if err != nil || string(got) != "world" {
		t.Fatalf("ReadRange = %q, %v", got, err)
	}
	got, err = s.ReadRange("a/b", 6, -1)
	if err != nil || string(got) != "world" {
		t.Fatalf("ReadRange to end = %q, %v", got, err)
	}
	if n, err := s.Size("a/b"); err != nil || n != 11 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := s.Append("a/b", []byte("!")); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Size("a/b"); n != 12 {
		t.Fatalf("Size after append = %d", n)
	}
	if err := s.Append("new", []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil || len(names) != 2 || names[0] != "a/b" || names[1] != "new" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if _, err := s.ReadRange("missing", 0, 1); err == nil {
		t.Error("expected error for missing object")
	}
	if err := s.Delete("new"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("new"); err != nil {
		t.Errorf("double delete should be nil, got %v", err)
	}
	if _, err := s.Size("new"); err == nil {
		t.Error("expected error for deleted object")
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, fs)
}

func TestFileStoreRejectsEscapingNames(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "../x", "a/../../x", "/abs"} {
		if err := fs.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) should fail", bad)
		}
	}
}

func TestMemStoreReadRangeBounds(t *testing.T) {
	s := NewMemStore()
	s.Put("o", []byte("abcdef"))
	if _, err := s.ReadRange("o", -1, 2); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := s.ReadRange("o", 4, 10); err == nil {
		t.Error("overlong range should fail")
	}
	if got, err := s.ReadRange("o", 6, 0); err != nil || len(got) != 0 {
		t.Errorf("empty range at end = %q, %v", got, err)
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	src := []byte("abc")
	s.Put("o", src)
	src[0] = 'Z'
	got, _ := s.ReadRange("o", 0, -1)
	if string(got) != "abc" {
		t.Error("Put must copy input")
	}
	got[0] = 'Q'
	got2, _ := s.ReadRange("o", 0, -1)
	if string(got2) != "abc" {
		t.Error("ReadRange must return a copy")
	}
}

func TestDiskCountsAndThrottles(t *testing.T) {
	d := NewDisk(NewMemStore(), 1<<20, 1<<20)
	payload := bytes.Repeat([]byte{7}, 100<<10)
	start := time.Now()
	if err := d.Put("obj", payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadRange("obj", 0, -1)
	if err != nil || len(got) != len(payload) {
		t.Fatalf("ReadRange: %v", err)
	}
	elapsed := time.Since(start)
	// 100KB write + 100KB read at 1MB/s ≈ 195ms.
	if elapsed < 180*time.Millisecond {
		t.Errorf("disk ops finished in %v, too fast", elapsed)
	}
	s := d.Counters.Snapshot()
	if s.BytesWritten != int64(len(payload)) || s.BytesRead != int64(len(payload)) {
		t.Errorf("counters = %+v", s)
	}
}

func TestSharedDiskContention(t *testing.T) {
	// Two disks over one throttle pair (the NFS scenario): concurrent reads
	// take twice as long as one.
	store := NewMemStore()
	store.Put("o", bytes.Repeat([]byte{1}, 100<<10))
	read := NewThrottle(1 << 20)
	write := NewThrottle(1 << 20)
	d1 := NewSharedDisk(store, read, write)
	d2 := NewSharedDisk(store, read, write)
	start := time.Now()
	var wg sync.WaitGroup
	for _, d := range []*Disk{d1, d2} {
		wg.Add(1)
		go func(d *Disk) {
			defer wg.Done()
			if _, err := d.ReadRange("o", 0, -1); err != nil {
				t.Error(err)
			}
		}(d)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 185*time.Millisecond {
		t.Errorf("shared reads finished in %v; want ~200ms serialization", elapsed)
	}
}

func TestNICTransfer(t *testing.T) {
	src := NewNIC(1<<20, nil)
	dst := NewNIC(1<<20, nil)
	start := time.Now()
	Transfer(src, dst, 100<<10)
	elapsed := time.Since(start)
	// Both NICs at 1MB/s serve 100KB concurrently: ~100ms, not 200ms.
	if elapsed < 90*time.Millisecond {
		t.Errorf("transfer took %v, want >= ~100ms", elapsed)
	}
	if elapsed > 180*time.Millisecond {
		t.Errorf("transfer took %v; endpoints should overlap, not serialize", elapsed)
	}
	if src.Counters.BytesSent.Load() != 100<<10 || dst.Counters.BytesRecv.Load() != 100<<10 {
		t.Error("transfer counters wrong")
	}
}

func TestTransferNilEndpoints(t *testing.T) {
	Transfer(nil, nil, 1<<20) // must not panic or block
	n := NewNIC(0, nil)
	Transfer(n, nil, 123)
	if n.Counters.BytesSent.Load() != 123 {
		t.Error("sent counter not updated")
	}
}

func TestCountersReset(t *testing.T) {
	var c Counters
	c.BytesRead.Add(5)
	c.BytesSent.Add(7)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestPropThrottleTotalServiceTime(t *testing.T) {
	// Whatever the request pattern, the modeled completion time of the
	// last request is at least totalBytes/rate after the first request's
	// start — the device never serves faster than its rate.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rate := float64(1+r.Intn(100)) * 1e6
		tr := NewThrottle(rate)
		var total int64
		start := time.Now()
		var last time.Time
		for i := 0; i < 50; i++ {
			n := int64(1 + r.Intn(1<<16))
			total += n
			if d := tr.Reserve(n); d.After(last) {
				last = d
			}
		}
		minDur := time.Duration(float64(total) / rate * float64(time.Second))
		if got := last.Sub(start); got < minDur-time.Millisecond {
			t.Logf("last deadline %v after start; need >= %v for %d bytes at %.0f B/s",
				got, minDur, total, rate)
			return false
		}
		return tr.Taken() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
