package gh

import (
	"encoding/binary"
	"fmt"
	"math"

	"sciview/internal/tuple"
)

// Spill buckets are raw row-major float32 records: the schema is known to
// both phases, so no framing is needed, and the on-disk byte count equals
// rows × record size — the quantity the cost model charges for.

func encodeRows(st *tuple.SubTable) []byte {
	na := st.Schema.NumAttrs()
	out := make([]byte, 0, st.Bytes())
	var buf [4]byte
	for r := 0; r < st.NumRows(); r++ {
		for c := 0; c < na; c++ {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(st.Value(r, c)))
			out = append(out, buf[:]...)
		}
	}
	return out
}

func decodeRows(schema tuple.Schema, data []byte, bucket int32) (*tuple.SubTable, error) {
	rec := schema.RecordSize()
	if rec == 0 || len(data)%rec != 0 {
		return nil, fmt.Errorf("gh: bucket %d holds %d bytes, not a multiple of record size %d",
			bucket, len(data), rec)
	}
	rows := len(data) / rec
	na := schema.NumAttrs()
	cols := make([][]float32, na)
	for c := range cols {
		cols[c] = make([]float32, rows)
	}
	off := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < na; c++ {
			cols[c][r] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	return tuple.FromColumns(tuple.ID{Table: -1, Chunk: bucket}, schema, cols)
}
