package gh

import (
	"sciview/internal/scratch"
	"sciview/internal/tuple"
)

// Spill buckets are raw row-major float32 records — the shared scratch
// codec. The schema is known to both phases, so no framing is needed,
// and the on-disk byte count equals rows × record size — the quantity
// the cost model charges for.

func encodeRows(st *tuple.SubTable) []byte { return scratch.EncodeRows(st) }

func decodeRows(schema tuple.Schema, data []byte, bucket int32) (*tuple.SubTable, error) {
	return scratch.DecodeRows(schema, data, tuple.ID{Table: -1, Chunk: bucket})
}
