package gh

import (
	"encoding/binary"
	"fmt"
	"math"

	"sciview/internal/tuple"
)

// Spill buckets are raw row-major float32 records: the schema is known to
// both phases, so no framing is needed, and the on-disk byte count equals
// rows × record size — the quantity the cost model charges for.
//
// encodeRows writes into a pooled buffer (tuple.GetBuf): both simio stores
// copy on Append, so spill callers release the buffer with tuple.PutBuf
// right after the write and steady-state spilling allocates nothing.

func encodeRows(st *tuple.SubTable) []byte {
	na := st.Schema.NumAttrs()
	size := st.NumRows() * na * 4
	out := tuple.GetBuf(size)[:size]
	off := 0
	for r := 0; r < st.NumRows(); r++ {
		for c := 0; c < na; c++ {
			binary.LittleEndian.PutUint32(out[off:], math.Float32bits(st.Value(r, c)))
			off += 4
		}
	}
	return out
}

func decodeRows(schema tuple.Schema, data []byte, bucket int32) (*tuple.SubTable, error) {
	rec := schema.RecordSize()
	if rec == 0 || len(data)%rec != 0 {
		return nil, fmt.Errorf("gh: bucket %d holds %d bytes, not a multiple of record size %d",
			bucket, len(data), rec)
	}
	rows := len(data) / rec
	na := schema.NumAttrs()
	// One backing array for all columns keeps decode at two allocations.
	backing := make([]float32, na*rows)
	cols := make([][]float32, na)
	for c := range cols {
		cols[c] = backing[c*rows : (c+1)*rows : (c+1)*rows]
	}
	off := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < na; c++ {
			cols[c][r] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	return tuple.FromColumns(tuple.ID{Table: -1, Chunk: bucket}, schema, cols)
}
