package gh

import (
	"math"
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/scratch"
	"sciview/internal/simio"
	"sciview/internal/tuple"
)

func makeCluster(t *testing.T, grid, p, q partition.Dims, ns, nj int) *cluster.Cluster {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: p, RightPart: q, StorageNodes: ns, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: ns, ComputeNodes: nj, CacheBytes: 32 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func req() engine.Request {
	return engine.Request{
		LeftTable: "T1", RightTable: "T2", JoinAttrs: []string{"x", "y", "z"},
	}
}

func TestName(t *testing.T) {
	if New().Name() != "gh" {
		t.Error("name wrong")
	}
}

func TestHashFunctionsIndependent(t *testing.T) {
	// Records landing on ONE joiner via h1 must still spread across
	// buckets via h2 — a correlated pair would put each joiner's records
	// into a single bucket, breaking the fits-in-memory goal.
	const nj, nb = 4, 8
	perBucket := make(map[int]map[int]int) // joiner -> bucket -> count
	n := 0
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			key := uint64(math.Float32bits(float32(x)))<<32 | uint64(math.Float32bits(float32(y)))
			j := int(h1(key) % nj)
			k := int(h2(key) % nb)
			if perBucket[j] == nil {
				perBucket[j] = make(map[int]int)
			}
			perBucket[j][k]++
			n++
		}
	}
	for j, buckets := range perBucket {
		if len(buckets) < nb {
			t.Errorf("joiner %d uses only %d of %d buckets", j, len(buckets), nb)
		}
		expect := float64(n) / nj / nb
		for k, c := range buckets {
			if float64(c) < expect*0.5 || float64(c) > expect*1.5 {
				t.Errorf("joiner %d bucket %d: %d records, expected ≈%.0f", j, k, c, expect)
			}
		}
	}
}

func TestPartitionerRoundTrip(t *testing.T) {
	schema := tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "v", Kind: tuple.Measure},
	)
	disk := simio.NewDisk(simio.NewMemStore(), 0, 0)
	p := newPartitioner(scratch.NewManager(disk, "t", "test", nil, nil), "L", schema, 4, 8) // tiny flush threshold
	batch := tuple.NewSubTable(tuple.ID{}, schema, 0)
	for i := 0; i < 100; i++ {
		batch.AppendRow(float32(i), float32(i*3), float32(i)/10)
	}
	keyIdxs, _ := schema.Indexes([]string{"x", "y"})
	if err := p.add(batch, keyIdxs); err != nil {
		t.Fatal(err)
	}
	if err := p.flushAll(); err != nil {
		t.Fatal(err)
	}
	// All rows must come back, each exactly once, in the right bucket.
	seen := make(map[float32]bool)
	var total int64
	for k := 0; k < 4; k++ {
		st, err := p.readBucket(k)
		if err != nil {
			t.Fatal(err)
		}
		if int64(st.NumRows()) != p.rows[k] {
			t.Errorf("bucket %d: read %d rows, accounted %d", k, st.NumRows(), p.rows[k])
		}
		total += int64(st.NumRows())
		for r := 0; r < st.NumRows(); r++ {
			x := st.Value(r, 0)
			if seen[x] {
				t.Fatalf("row x=%v appeared twice", x)
			}
			seen[x] = true
			key := st.Key(r, keyIdxs)
			if int(h2(key)%4) != k {
				t.Errorf("row x=%v in wrong bucket %d", x, k)
			}
		}
		if err := p.deleteBucket(k); err != nil {
			t.Fatal(err)
		}
	}
	if total != 100 {
		t.Errorf("round trip lost rows: %d", total)
	}
}

func TestEmptyBucketRead(t *testing.T) {
	schema := tuple.NewSchema(tuple.Attr{Name: "x", Kind: tuple.Coord})
	disk := simio.NewDisk(simio.NewMemStore(), 0, 0)
	p := newPartitioner(scratch.NewManager(disk, "t", "test", nil, nil), "L", schema, 2, 8)
	st, err := p.readBucket(1)
	if err != nil || st.NumRows() != 0 {
		t.Errorf("empty bucket: %v rows=%d", err, st.NumRows())
	}
}

func TestDecodeRowsErrors(t *testing.T) {
	schema := tuple.NewSchema(tuple.Attr{Name: "x", Kind: tuple.Coord}, tuple.Attr{Name: "y", Kind: tuple.Coord})
	if _, err := decodeRows(schema, make([]byte, 7), 0); err == nil {
		t.Error("misaligned bucket bytes accepted")
	}
	st, err := decodeRows(schema, make([]byte, 16), 3)
	if err != nil || st.NumRows() != 2 || st.ID.Chunk != 3 {
		t.Errorf("decode: %v rows=%d id=%v", err, st.NumRows(), st.ID)
	}
}

func TestSkewedKeysSingleBucket(t *testing.T) {
	// All records share one (x,y): h1 sends everything to one joiner and
	// h2 to one bucket; the join must still be correct (many-to-many).
	schemaL := tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "a", Kind: tuple.Measure},
	)
	schemaR := tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "b", Kind: tuple.Measure},
	)
	// Build a custom catalog via the oilres-independent path: hand-roll
	// chunks through a builder-like flow using the cluster test helper is
	// overkill — instead reuse oilres with a 1-cell grid to force skew.
	_ = schemaL
	_ = schemaR
	cl := makeCluster(t, partition.D(1, 1, 4), partition.D(1, 1, 2), partition.D(1, 1, 4), 1, 2)
	res, err := New().Run(cl, engine.Request{
		LeftTable: "T1", RightTable: "T2", JoinAttrs: []string{"x", "y"}, // joins every z with every z: 16
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 16 {
		t.Errorf("skewed join tuples = %d, want 16", res.Tuples)
	}
}

func TestDefaultBucketsScaleWithData(t *testing.T) {
	small := makeCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 1, 1)
	e := New()
	leftDef, _ := small.Catalog.Table("T1")
	rightDef, _ := small.Catalog.Table("T2")
	b := e.defaultBuckets(small, leftDef, rightDef, req())
	if b < 4 {
		t.Errorf("buckets = %d, want >= 4", b)
	}
	// 10x the data per joiner → more buckets once above the 1MiB target.
	big := makeCluster(t, partition.D(128, 128, 32), partition.D(16, 16, 8), partition.D(16, 16, 8), 1, 1)
	leftDef, _ = big.Catalog.Table("T1")
	rightDef, _ = big.Catalog.Table("T2")
	b2 := e.defaultBuckets(big, leftDef, rightDef, req())
	if b2 <= b {
		t.Errorf("buckets did not grow with data: %d vs %d", b2, b)
	}
}

func TestScratchCleanedAfterRun(t *testing.T) {
	cl := makeCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	if _, err := New().Run(cl, req()); err != nil {
		t.Fatal(err)
	}
	for j, cn := range cl.Compute {
		names, err := cn.Scratch.Store().List()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 0 {
			t.Errorf("joiner %d scratch not cleaned: %v", j, names)
		}
	}
}

func TestPhasesReported(t *testing.T) {
	cl := makeCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 1, 1)
	res, err := New().Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases["partition"] <= 0 || res.Phases["bucketjoin"] <= 0 {
		t.Errorf("phases = %v", res.Phases)
	}
	if res.Elapsed < res.Phases["partition"] {
		t.Error("total less than partition phase")
	}
}

func TestOverflowRecursionCorrectness(t *testing.T) {
	// A tiny memory cap forces every bucket pair to repartition
	// recursively; the join result must be unchanged.
	cl := makeCluster(t, partition.D(16, 16, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	base, err := New().Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{MemoryBytes: 512} // buckets are KBs: guaranteed overflow
	res, err := e.Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != base.Tuples {
		t.Errorf("overflow join tuples = %d, want %d", res.Tuples, base.Tuples)
	}
	// The recursion pays real spill I/O: strictly more scratch traffic.
	if res.Traffic.ScratchBytesWritten <= base.Traffic.ScratchBytesWritten {
		t.Errorf("overflow spilled %d bytes, base %d — recursion should cost extra I/O",
			res.Traffic.ScratchBytesWritten, base.Traffic.ScratchBytesWritten)
	}
}

func TestOverflowDuplicateKeysFallback(t *testing.T) {
	// All records share (x,y): no hash can split them, so recursion must
	// hit the depth cap and fall back to an in-memory join (not loop).
	cl := makeCluster(t, partition.D(1, 1, 8), partition.D(1, 1, 4), partition.D(1, 1, 4), 1, 1)
	e := &Engine{MemoryBytes: 16} // smaller than one record batch
	res, err := e.Run(cl, engine.Request{
		LeftTable: "T1", RightTable: "T2", JoinAttrs: []string{"x", "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 left × 8 right rows all matching on (x,y) = 64 results.
	if res.Tuples != 64 {
		t.Errorf("fallback join tuples = %d, want 64", res.Tuples)
	}
}

func TestOverflowDisabledByDefault(t *testing.T) {
	cl := makeCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 1, 1)
	res, err := New().Run(cl, req()) // MemoryBytes = 0
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one spill+read of the full volume: no recursion traffic.
	want := int64(8 * 8 * 4 * 32)
	if res.Traffic.ScratchBytesWritten != want {
		t.Errorf("spill = %d, want %d", res.Traffic.ScratchBytesWritten, want)
	}
}
