package gh

import (
	"bytes"
	"testing"

	"sciview/internal/partition"
	"sciview/internal/tuple"
)

// TestParallelByteIdentical pins the parallel-kernel contract for Grace
// Hash: with a single storage node the scan order is deterministic, so the
// collected joiner outputs must be byte-for-byte identical whatever the
// hash-join worker count. (With several storage nodes the *scanners*
// interleave nondeterministically — that is inherent to GH and unrelated
// to kernel parallelism, so the fixture uses one.)
func TestParallelByteIdentical(t *testing.T) {
	grid := partition.D(16, 16, 8)
	q := partition.D(4, 4, 4)

	run := func(parallelism int) []byte {
		cl := makeCluster(t, grid, q, q, 1, 3)
		r := req()
		r.Collect = true
		r.Parallelism = parallelism
		res, err := New().Run(cl, r)
		if err != nil {
			t.Fatal(err)
		}
		var buf []byte
		for _, st := range res.Collected {
			buf = tuple.Encode(buf, st)
		}
		if len(buf) == 0 {
			t.Fatal("empty collected output")
		}
		return buf
	}

	serial := run(1)
	for _, workers := range []int{2, 4, 0} {
		if !bytes.Equal(run(workers), serial) {
			t.Errorf("parallelism=%d: collected output differs from serial run", workers)
		}
	}
}
