package gh

import (
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/oilres"
	"sciview/internal/partition"
)

// BenchmarkGHWire runs the Grace Hash workload on a throttled cluster
// under each fetch codec. GH's wire volume is its partitioning streams:
// with the colenc codec the routed batches are charged their compressed
// size (dictionary-coded partition keys compress well), so the fetchMB
// metric exposes the ship-byte reduction and the wall-clock payoff on
// the 8 MB/s NICs (network wait well above the modeled CPU time).
func BenchmarkGHWire(b *testing.B) {
	grid := partition.D(32, 32, 32)
	pq := partition.D(8, 8, 8)
	ds, err := oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: pq, RightPart: pq, StorageNodes: 4, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, wire := range []string{"rowmajor", "colenc"} {
		b.Run("wire="+wire, func(b *testing.B) {
			var fetchedMB float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl, err := cluster.New(cluster.Config{
					StorageNodes: 4, ComputeNodes: 4, CacheBytes: 64 << 20,
					NetBw: 8 << 20, CPUSecPerOp: 1e-6, Wire: wire,
				}, ds.Catalog, ds.Stores)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := New().Run(cl, req())
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if res.Tuples != grid.Cells() {
					b.Fatalf("tuples = %d, want %d", res.Tuples, grid.Cells())
				}
				fetchedMB = float64(cl.Traffic().NetBytesToCompute) / (1 << 20)
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(fetchedMB, "fetchMB")
		})
	}
}
