// Package gh implements the Grace Hash join QES, modified as in the paper
// so that every joiner node performs its bucket joins independently (no
// network traffic during the bucket-joining phase).
//
// Phase 1 (partition): a QES instance on each storage node contacts the
// local BDS instance for the matching sub-tables of the left table; a hash
// function h1 over the join key routes each record to a compute-node QES
// instance, which applies a second, independent hash h2 to place the record
// in a spill bucket on its local scratch disk. The same procedure is then
// repeated for the right table. Phase 2 (bucket join): each compute node
// reads its bucket pairs back and joins them in memory.
//
// GH is insensitive to how the dataset is partitioned (the connectivity
// graph never enters), but pays the extra write+read I/O of bucket spills —
// exactly the trade the cost models capture.
package gh

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sciview/internal/chunk"
	"sciview/internal/cluster"
	"sciview/internal/colenc"
	"sciview/internal/engine"
	"sciview/internal/fault"
	"sciview/internal/hashjoin"
	"sciview/internal/metadata"
	"sciview/internal/scratch"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// Engine is the Grace Hash QES.
type Engine struct {
	// Buckets is the number of spill buckets per joiner per table
	// (h2's range). 0 selects a default that keeps expected bucket size
	// around DefaultBucketBytes.
	Buckets int
	// BatchRows is the number of records accumulated per storage→joiner
	// shipment (0 = default).
	BatchRows int
	// FlushRows is the bucket buffer size before spilling to scratch disk
	// (0 = default).
	FlushRows int
	// MemoryBytes caps the in-memory size of one bucket side during the
	// join phase ("the number of buckets is chosen so that each bucket
	// fits in memory"). When key skew overflows a bucket past the cap, it
	// is recursively repartitioned with a salted hash — spilled and
	// re-read through the scratch disk — before joining. 0 disables the
	// check (buckets assumed to fit).
	MemoryBytes int64
}

// Defaults for the tunables.
const (
	DefaultBucketBytes = 1 << 20
	defaultBatchRows   = 4096
	defaultFlushRows   = 4096
)

// New returns a Grace Hash engine with default tuning.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "gh" }

var _ engine.Engine = (*Engine)(nil)

// h1 routes a join key to a joiner node; h2 places it in a bucket. The two
// use unrelated finalizer constants so bucket occupancy is uniform within a
// joiner (a correlated h2 would put each joiner's records in few buckets).
func h1(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return key
}

func h2(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xBF58476D1CE4E5B9
	key ^= key >> 27
	key *= 0x94D049BB133111EB
	key ^= key >> 31
	return key
}

// h3 is the salted hash for recursive repartitioning of overflowing
// buckets; the salt decorrelates it from h2 at every recursion depth.
func h3(key, salt uint64) uint64 {
	return h2(key ^ (salt+1)*0x9E3779B97F4A7C15)
}

// runSeq distinguishes the scratch-disk namespaces of concurrent shared
// runs: two queries spilling on the same joiner must not append to the
// same bucket objects.
var runSeq atomic.Int64

// Run implements engine.Engine.
func (e *Engine) Run(cl *cluster.Cluster, req engine.Request) (*engine.Result, error) {
	return e.RunContext(context.Background(), cl, req)
}

// RunContext implements engine.Engine.
func (e *Engine) RunContext(ctx context.Context, cl *cluster.Cluster, req engine.Request) (*engine.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	wf := req.WorkFactor
	if wf < 1 {
		wf = 1
	}
	batchRows := e.BatchRows
	if batchRows <= 0 {
		batchRows = defaultBatchRows
	}
	flushRows := e.FlushRows
	if flushRows <= 0 {
		flushRows = defaultFlushRows
	}
	leftDef, err := cl.Catalog.Table(req.LeftTable)
	if err != nil {
		return nil, err
	}
	rightDef, err := cl.Catalog.Table(req.RightTable)
	if err != nil {
		return nil, err
	}
	leftFilter := filterFor(leftDef, req.Filter)
	leftFilter.Versions = req.LeftWindow()
	rightFilter := filterFor(rightDef, req.Filter)
	rightFilter.Versions = req.RightWindow()
	project := req.EffectiveProject()
	leftSchema := engine.ProjectedSchema(leftDef.Schema, project)
	rightSchema := engine.ProjectedSchema(rightDef.Schema, project)

	if req.Shared {
		cl.AcquireShared()
		defer cl.ReleaseShared()
	} else {
		cl.AcquireRun()
		defer cl.ReleaseRun()
		cl.Reset()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()

	buckets := e.Buckets
	if buckets <= 0 {
		buckets = e.defaultBuckets(cl, leftDef, rightDef, req)
	}

	run := runSeq.Add(1)
	obs := &engine.ObsCollector{}
	nj := len(cl.Compute)
	// The effective per-pair memory cap: the engine tunable, tightened by
	// the request's admission budget when one is set (two bucket sides per
	// joiner may be resident at once, hence the 2·nj divisor).
	memCap := e.MemoryBytes
	if req.MemoryBudget > 0 {
		share := req.MemoryBudget / int64(2*nj)
		if share < 1 {
			share = 1
		}
		if memCap == 0 || share < memCap {
			memCap = share
		}
	}
	// Every scratch manager the run mounts (including rebuild remounts) is
	// reaped on exit, so a cancelled or failed run leaves no orphans.
	var mgrMu sync.Mutex
	var mgrs []*scratch.Manager
	track := func(m *scratch.Manager) {
		mgrMu.Lock()
		mgrs = append(mgrs, m)
		mgrMu.Unlock()
	}
	defer func() {
		mgrMu.Lock()
		defer mgrMu.Unlock()
		for _, m := range mgrs {
			m.ReleaseAll()
		}
	}()
	// One partition group per h1 class: all records with h1(key)%nj == g
	// belong to group g, held by one (reassignable) executor node. The
	// group — not the node — is the recovery unit: losing a node loses
	// exactly its groups' partitions, which are rebuilt from replicas.
	groups := make([]*group, nj)
	for g := 0; g < nj; g++ {
		groups[g] = &group{g: g, exec: g}
		groups[g].mount(cl, run, leftSchema, rightSchema, buckets, flushRows, req.Trace, obs, track)
	}
	sp := &scanParams{
		leftTable: req.LeftTable, rightTable: req.RightTable,
		leftFilter: leftFilter, rightFilter: rightFilter,
		project: project, joinAttrs: req.JoinAttrs,
		batchRows: batchRows, nj: nj, rec: req.Trace, obs: obs, track: track,
	}

	// Phase 1: partition the left table, then the right table. A compute
	// node dying here only marks its groups lost (their records stop
	// shipping); phase 2 rebuilds them wholesale on survivors.
	partStart := time.Now()
	if err := e.scanTable(ctx, cl, sideLeft, groups, -1, sp); err != nil {
		return nil, err
	}
	if err := e.scanTable(ctx, cl, sideRight, groups, -1, sp); err != nil {
		return nil, err
	}
	// Flush residual bucket buffers — on every executor's scratch disk in
	// parallel, as each executor owns its disk.
	flushErrs := make([]error, nj)
	var flushWG sync.WaitGroup
	for g := 0; g < nj; g++ {
		flushWG.Add(1)
		go func(grp *group, idx int) {
			defer flushWG.Done()
			flushErrs[idx] = grp.flush()
		}(groups[g], g)
	}
	flushWG.Wait()
	for _, err := range flushErrs {
		if err != nil {
			return nil, err
		}
	}
	partElapsed := time.Since(partStart)

	// Publish the phase-2 schedule size: one unit per non-empty bucket
	// pair. flushWG.Wait() ordered the partition writes before this read.
	// Joined counts executed pairs, so fault-driven group rebuilds can push
	// it past Total; an undisturbed full run ends with Joined == Total.
	prog := req.Progress
	if prog == nil {
		prog = &engine.Progress{}
		req.Progress = prog
	}
	for _, grp := range groups {
		for k := 0; k < buckets; k++ {
			if grp.lp.rows[k] > 0 && grp.rp.rows[k] > 0 {
				prog.Total.Add(1)
			}
		}
	}

	// Phase 2: every group's bucket pairs join independently on its
	// executor. A group lost in phase 1 — or whose executor dies mid-join —
	// is rebuilt from replicas on a survivor and re-joined from scratch;
	// per-attempt output and stats are discarded on failure, so recovered
	// runs double-count nothing.
	joinStart := time.Now()
	outSchema := leftSchema.JoinResult(rightSchema, req.JoinAttrs, "r_")
	var stats hashjoin.Stats
	results := make([]*tuple.SubTable, nj)
	errs := make([]error, nj)
	var wg sync.WaitGroup
	for g := 0; g < nj; g++ {
		wg.Add(1)
		go func(grp *group) {
			defer wg.Done()
			results[grp.g], errs[grp.g] = e.runGroup(ctx, cl, grp, run,
				leftSchema, rightSchema, buckets, flushRows, req, wf, memCap, outSchema, sp, &stats)
		}(groups[g])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	joinElapsed := time.Since(joinStart)

	res := &engine.Result{
		Engine:  e.Name(),
		Elapsed: time.Since(start),
		Join: engine.JoinCounts{
			TuplesBuilt:  stats.TuplesBuilt.Load(),
			TuplesProbed: stats.TuplesProbed.Load(),
			Matches:      stats.Matches.Load(),
		},
		Traffic: cl.Traffic(),
		Health:  cl.HealthStats(),
		Phases: map[string]time.Duration{
			"partition":  partElapsed,
			"bucketjoin": joinElapsed,
		},
	}
	res.Tuples = res.Join.Matches
	res.UnitsJoined = prog.Joined.Load()
	res.UnitsTotal = prog.Total.Load()
	res.Observed = obs.Snapshot()
	if req.Collect && req.Sink == nil {
		res.Collected = results
	}
	return res, nil
}

// defaultBuckets sizes h2's range so one bucket of the larger side is
// about DefaultBucketBytes.
func (e *Engine) defaultBuckets(cl *cluster.Cluster, leftDef, rightDef *metadata.TableDef, req engine.Request) int {
	var maxBytes int64
	for _, def := range []*metadata.TableDef{leftDef, rightDef} {
		var rows int64
		for _, d := range cl.Catalog.Chunks(def.ID) {
			rows += int64(d.Rows)
		}
		bytes := rows * int64(def.Schema.RecordSize())
		if bytes > maxBytes {
			maxBytes = bytes
		}
	}
	perJoiner := maxBytes / int64(len(cl.Compute))
	b := int(perJoiner/DefaultBucketBytes) + 1
	if b < 4 {
		b = 4
	}
	return b
}

// group is one h1 partition class and the engine's recovery unit: every
// record with h1(key)%nj == g funnels into group g's partitioner pair on
// its executor node. When the executor dies, only this group's partitions
// are lost; a survivor takes the group over and rebuilds them from
// replicas under a fresh attempt-numbered scratch prefix.
type group struct {
	g       int
	exec    int // current executor compute node
	attempt int // increments per rebuild; namespaces scratch objects
	mgr     *scratch.Manager
	lp, rp  *partitioner
	// lost marks the group's partitions as gone (executor died while they
	// were being written or read). Scanners stop shipping to a lost group;
	// phase 2 rebuilds it before joining.
	lost atomic.Bool
}

// mount installs a fresh scratch manager and partitioner pair for the
// group's current (exec, attempt) on the executor's scratch disk.
func (grp *group) mount(cl *cluster.Cluster, run int64, leftSchema, rightSchema tuple.Schema,
	buckets, flushRows int, rec *trace.Recorder, obs *engine.ObsCollector, track func(*scratch.Manager)) {
	node := fmt.Sprintf("joiner-%d", grp.exec)
	grp.mgr = scratch.NewManager(cl.Compute[grp.exec].Scratch,
		fmt.Sprintf("gh/r%d/g%da%d", run, grp.g, grp.attempt), node, rec, obs)
	if track != nil {
		track(grp.mgr)
	}
	grp.lp = newPartitioner(grp.mgr, "L", leftSchema, buckets, flushRows)
	grp.rp = newPartitioner(grp.mgr, "R", rightSchema, buckets, flushRows)
	grp.lp.node, grp.rp.node = node, node
	grp.lp.obs, grp.rp.obs = obs, obs
}

// flush spills the group's residual buffers, downgrading an executor
// death to a lost mark (phase 2 rebuilds) rather than a run failure.
func (grp *group) flush() error {
	if grp.lost.Load() {
		return nil
	}
	err := grp.lp.flushAll()
	if err == nil {
		err = grp.rp.flushAll()
	}
	if err != nil {
		if node, down := fault.IsNodeDown(err); down && node == fault.ComputeNode(grp.exec) {
			grp.lost.Store(true)
			return nil
		}
		return err
	}
	return nil
}

// side selects a group's partitioner.
type side int

const (
	sideLeft side = iota
	sideRight
)

func (grp *group) part(sd side) *partitioner {
	if sd == sideLeft {
		return grp.lp
	}
	return grp.rp
}

// scanParams bundles the table-scan inputs shared by the initial
// partitioning pass and per-group rebuilds.
type scanParams struct {
	leftTable, rightTable   string
	leftFilter, rightFilter metadata.Range
	project, joinAttrs      []string
	batchRows               int
	nj                      int // h1's range — fixed for the run, even when rebuilding one group
	rec                     *trace.Recorder
	obs                     *engine.ObsCollector
	track                   func(*scratch.Manager) // registers remounted managers for end-of-run cleanup
}

func (sp *scanParams) table(sd side) (string, metadata.Range) {
	if sd == sideLeft {
		return sp.leftTable, sp.leftFilter
	}
	return sp.rightTable, sp.rightFilter
}

// scanTable runs the storage-side QES instances for one table in parallel:
// scan the matching sub-tables (each chunk served by its primary node or,
// when that node is unreachable, a replica), split records by h1 into
// per-group batches, ship each batch and hand it to the group's
// partitioner. With only >= 0, records of every other group are skipped —
// the rebuild path re-materializing one lost group.
func (e *Engine) scanTable(ctx context.Context, cl *cluster.Cluster, sd side, groups []*group, only int, sp *scanParams) error {
	table, filter := sp.table(sd)
	all, err := cl.Catalog.ChunksInRange(table, filter)
	if err != nil {
		return err
	}
	nj := sp.nj
	errs := make([]error, len(cl.Storage))
	var wg sync.WaitGroup
	for s := range cl.Storage {
		mine := make([]*chunk.Desc, 0, len(all)/len(cl.Storage)+1)
		for _, d := range all {
			if d.Node == s {
				mine = append(mine, d)
			}
		}
		if len(mine) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, descs []*chunk.Desc) {
			defer wg.Done()
			// Per-group outgoing batches, reused across shipments: add()
			// copies every row out synchronously, so a shipped batch can
			// be Reset and refilled instead of reallocated.
			var schema tuple.Schema
			batches := make([]*tuple.SubTable, nj)
			var keyIdxs []int
			var row []float32
			src := s // node that served the latest chunk (ship attribution)
			for _, d := range descs {
				if err := ctx.Err(); err != nil {
					errs[s] = err
					return
				}
				fetchStart := time.Now()
				st, served, err := cl.ScanChunk(ctx, d, &filter, sp.project)
				if err != nil {
					errs[s] = err
					return
				}
				src = served
				// The storage-side disk read is the first leg of GH's
				// transfer; shipBatch adds the network leg's seconds (with
				// no extra bytes), so the calibrated per-stream rate prices
				// the full scan→ship pipeline.
				sp.obs.Fetch(int64(st.Bytes()), time.Since(fetchStart))
				sp.rec.Span(fmt.Sprintf("storage-%d", served), trace.KindFetch, d.ID().String(), fetchStart,
					int64(st.Bytes()), int64(st.NumRows()))
				if keyIdxs == nil {
					schema = st.Schema
					keyIdxs, err = schema.Indexes(sp.joinAttrs)
					if err != nil {
						errs[s] = err
						return
					}
					row = tuple.GetRow(schema.NumAttrs())
					defer tuple.PutRow(row)
				}
				for r := 0; r < st.NumRows(); r++ {
					g := int(h1(st.Key(r, keyIdxs)) % uint64(nj))
					if only >= 0 && g != only {
						continue
					}
					if batches[g] == nil {
						batches[g] = tuple.NewSubTable(tuple.ID{Table: st.ID.Table, Chunk: -1}, schema, sp.batchRows)
					}
					batches[g].AppendRow(st.Row(r, row)...)
					if batches[g].NumRows() >= sp.batchRows {
						if err := e.shipBatch(cl, src, groups[g], sd, batches[g], keyIdxs, sp.rec); err != nil {
							errs[s] = err
							return
						}
						batches[g].Reset()
					}
				}
			}
			for g, b := range batches {
				if b != nil && b.NumRows() > 0 {
					if err := e.shipBatch(cl, src, groups[g], sd, b, keyIdxs, sp.rec); err != nil {
						errs[s] = err
						return
					}
				}
			}
		}(s, mine)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shipBatch models the network transfer of a record batch from storage
// node src to the group's executor and delivers it to the group's
// partitioner. A batch for a lost group is dropped — its records will be
// re-materialized wholesale when the group rebuilds, so partial delivery
// now would double-count. An executor death during delivery marks the
// group lost instead of failing the scan.
func (e *Engine) shipBatch(cl *cluster.Cluster, src int, grp *group, sd side,
	batch *tuple.SubTable, keyIdxs []int, rec *trace.Recorder) error {
	if grp.lost.Load() {
		return nil
	}
	part := grp.part(sd)
	start := time.Now()
	// Under the colenc wire codec the batch travels in compressed columnar
	// form; the modeled NIC is charged the frame size the sizing pass
	// computes, not the row-major payload. Rows delivered to the
	// partitioner are identical either way.
	size := int64(batch.Bytes())
	if cl.Config.WireEncoded() {
		size = int64(colenc.WireSize(batch))
	}
	cl.Ship(src, grp.exec, size)
	part.obs.Fetch(0, time.Since(start))
	rec.Span(fmt.Sprintf("storage-%d", src), trace.KindShip, part.node, start,
		size, int64(batch.NumRows()))
	if err := part.add(batch, keyIdxs); err != nil {
		if node, down := fault.IsNodeDown(err); down && node == fault.ComputeNode(grp.exec) {
			grp.lost.Store(true)
			return nil
		}
		return err
	}
	return nil
}

// runGroup drives one group through phase 2, rebuilding it as needed. The
// loop invariant: joinBuckets only runs against a group whose partitions
// are complete on a live executor; every attempt starts with fresh output
// and stats, merged into the run totals only on success.
func (e *Engine) runGroup(ctx context.Context, cl *cluster.Cluster, grp *group, run int64,
	leftSchema, rightSchema tuple.Schema, buckets, flushRows int, req engine.Request, wf int,
	memCap int64, outSchema tuple.Schema, sp *scanParams, stats *hashjoin.Stats) (*tuple.SubTable, error) {

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if grp.lost.Load() || cl.ComputeDown(grp.exec) {
			if err := e.rebuildGroup(ctx, cl, grp, run, leftSchema, rightSchema, buckets, flushRows, req, sp); err != nil {
				return nil, err
			}
		}
		var local hashjoin.Stats
		out, err := e.joinBuckets(ctx, cl.Compute[grp.exec], grp, req, wf, memCap, buckets, outSchema, &local)
		if err == nil {
			mergeStats(stats, &local)
			if req.Sink != nil {
				req.Sink.Done(grp.g)
			}
			return out, nil
		}
		if node, down := fault.IsNodeDown(err); down && node == fault.ComputeNode(grp.exec) {
			// The executor died mid-join: its partitions and partial output
			// are gone. Rebuild on a survivor and join from scratch.
			if req.Sink != nil {
				req.Sink.Discard(grp.g)
			}
			grp.lost.Store(true)
			cl.Health.Recoveries.Add(1)
			continue
		}
		return nil, err
	}
}

// rebuildGroup re-homes a lost group on the next surviving compute node
// and re-materializes exactly its partitions by re-scanning both tables
// from replicas, under a fresh attempt-numbered scratch namespace (stale
// partial objects from the dead attempt are never read).
func (e *Engine) rebuildGroup(ctx context.Context, cl *cluster.Cluster, grp *group, run int64,
	leftSchema, rightSchema tuple.Schema, buckets, flushRows int, req engine.Request, sp *scanParams) error {

	next, ok := nextAlive(cl, grp.exec)
	if !ok {
		return fmt.Errorf("gh: group %d: no compute nodes left", grp.g)
	}
	start := time.Now()
	prev := grp.exec
	grp.exec = next
	grp.attempt++
	grp.lost.Store(false)
	grp.mount(cl, run, leftSchema, rightSchema, buckets, flushRows, sp.rec, sp.obs, sp.track)
	cl.Health.Rebuilds.Add(1)
	// h1 classes are positional: scanTable indexes groups[g], so the slice
	// spans all nj classes even though only grp.g receives rows.
	groups := make([]*group, sp.nj)
	groups[grp.g] = grp
	if err := e.scanTable(ctx, cl, sideLeft, groups, grp.g, sp); err != nil {
		return err
	}
	if err := e.scanTable(ctx, cl, sideRight, groups, grp.g, sp); err != nil {
		return err
	}
	if err := grp.flush(); err != nil {
		return err
	}
	sp.rec.Span(fmt.Sprintf("joiner-%d", grp.exec), trace.KindRecover,
		fmt.Sprintf("group %d rebuilt after compute-%d died", grp.g, prev), start, 0, 0)
	return nil
}

// nextAlive returns the first surviving compute node after `from` in ring
// order.
func nextAlive(cl *cluster.Cluster, from int) (int, bool) {
	n := len(cl.Compute)
	for d := 1; d <= n; d++ {
		j := (from + d) % n
		if !cl.ComputeDown(j) {
			return j, true
		}
	}
	return 0, false
}

// mergeStats folds one group attempt's counters into the run totals.
func mergeStats(dst, src *hashjoin.Stats) {
	dst.TuplesBuilt.Add(src.TuplesBuilt.Load())
	dst.TuplesProbed.Add(src.TuplesProbed.Load())
	dst.Matches.Add(src.Matches.Load())
}

// partitioner is the compute-node side of phase 1 for one table: it
// applies h2 and spills bucket buffers through the group's scratch
// manager, which owns billing, tracing, and end-of-run cleanup.
type partitioner struct {
	mu        sync.Mutex
	mgr       *scratch.Manager
	side      string // "L" or "R" — the bucket-name namespace
	node      string
	obs       *engine.ObsCollector
	schema    tuple.Schema
	buckets   []*tuple.SubTable
	rows      []int64 // total rows spilled per bucket (for sizing checks)
	flushRows int
}

func newPartitioner(mgr *scratch.Manager, side string, schema tuple.Schema, buckets, flushRows int) *partitioner {
	p := &partitioner{
		mgr:       mgr,
		side:      side,
		schema:    schema,
		buckets:   make([]*tuple.SubTable, buckets),
		rows:      make([]int64, buckets),
		flushRows: flushRows,
	}
	for k := range p.buckets {
		p.buckets[k] = tuple.NewSubTable(tuple.ID{Table: -1, Chunk: int32(k)}, schema, flushRows)
	}
	return p
}

func (p *partitioner) object(k int) string { return fmt.Sprintf("%s/b%d", p.side, k) }

// add partitions a batch into buckets, spilling full buffers.
func (p *partitioner) add(batch *tuple.SubTable, keyIdxs []int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	nb := uint64(len(p.buckets))
	row := tuple.GetRow(p.schema.NumAttrs())
	defer tuple.PutRow(row)
	for r := 0; r < batch.NumRows(); r++ {
		k := int(h2(batch.Key(r, keyIdxs)) % nb)
		p.buckets[k].AppendRow(batch.Row(r, row)...)
		if p.buckets[k].NumRows() >= p.flushRows {
			if err := p.spill(k); err != nil {
				return err
			}
		}
	}
	return nil
}

// spill writes bucket k's buffer to scratch disk (raw row-major records)
// and resets the buffer. Caller holds the lock.
func (p *partitioner) spill(k int) error {
	b := p.buckets[k]
	if b.NumRows() == 0 {
		return nil
	}
	data := encodeRows(b)
	err := p.mgr.File(p.object(k)).AppendRows(data, int64(b.NumRows()))
	tuple.PutBuf(data) // the store copied; recycle the encode buffer
	if err != nil {
		return err
	}
	p.rows[k] += int64(b.NumRows())
	b.Reset()
	return nil
}

// flushAll spills every non-empty buffer.
func (p *partitioner) flushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range p.buckets {
		if err := p.spill(k); err != nil {
			return err
		}
	}
	return nil
}

// readBucket loads bucket k back from scratch disk. The read is
// size-verified by the manager: a bucket the store holds short (a
// crashed or short write slipped through) fails loudly here.
func (p *partitioner) readBucket(k int) (*tuple.SubTable, error) {
	if p.rows[k] == 0 {
		return tuple.NewSubTable(tuple.ID{Table: -1, Chunk: int32(k)}, p.schema, 0), nil
	}
	data, err := p.mgr.File(p.object(k)).ReadAll()
	if err != nil {
		return nil, err
	}
	return decodeRows(p.schema, data, int32(k))
}

// deleteBucket removes bucket k's object (post-join cleanup).
func (p *partitioner) deleteBucket(k int) error {
	p.mgr.Release(p.mgr.File(p.object(k)))
	return nil
}

// joinBuckets is phase 2 for one group: join its bucket pairs
// independently on the group's current executor.
func (e *Engine) joinBuckets(ctx context.Context, cn *cluster.ComputeNode, grp *group, req engine.Request,
	wf int, memCap int64, buckets int, outSchema tuple.Schema, stats *hashjoin.Stats) (*tuple.SubTable, error) {

	lp, rp := grp.lp, grp.rp
	out := tuple.NewSubTable(tuple.ID{Table: -2, Chunk: int32(grp.g)}, outSchema, 0)
	for k := 0; k < buckets; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if lp.rows[k] == 0 || rp.rows[k] == 0 {
			// An empty side produces nothing; skip reading the other.
			continue
		}
		left, err := lp.readBucket(k)
		if err != nil {
			return nil, err
		}
		right, err := rp.readBucket(k)
		if err != nil {
			return nil, err
		}
		if err := e.joinPair(cn, grp, fmt.Sprintf("b%d", k), left, right, req, wf, memCap, out, stats); err != nil {
			return nil, err
		}
		if req.Progress != nil {
			req.Progress.Joined.Add(1)
		}
		if req.Sink != nil {
			// Stream this bucket pair's output. Emit hands ownership of the
			// batch to the sink, so start a fresh table for the next pair.
			if out.NumRows() > 0 {
				if err := req.Sink.Emit(grp.g, out); err != nil {
					return nil, err
				}
				out = tuple.NewSubTable(tuple.ID{Table: -2, Chunk: int32(grp.g)}, outSchema, 0)
			}
		} else if !req.Collect {
			out.Reset()
		}
		if err := lp.deleteBucket(k); err != nil {
			return nil, err
		}
		if err := rp.deleteBucket(k); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// overflow recursion bounds.
const (
	overflowFanout   = 8
	overflowMaxDepth = 3
)

// joinPair joins one bucket pair. A build side that fits the cap joins
// in memory on the historical fast path; one that overflows goes
// through the shared out-of-core join (hashjoin.JoinPairSpill), which
// recursively repartitions the build side with the salted hash h3,
// round-tripping each partition through the joiner's scratch disk
// exactly as a memory-constrained node would, so the modeled I/O cost
// of skew is paid. Past overflowMaxDepth (pathological duplicate keys
// that no hash can split) the residual partition builds oversized as a
// fallback. The spilled join's output is byte-identical to the
// in-memory path at any cap.
func (e *Engine) joinPair(cn *cluster.ComputeNode, grp *group, label string,
	left, right *tuple.SubTable, req engine.Request, wf int, memCap int64,
	out *tuple.SubTable, stats *hashjoin.Stats) error {

	lp := grp.lp
	if memCap > 0 && int64(left.Bytes()) > memCap {
		hooks := hashjoin.SpillHooks{
			RoundTrip: func(lbl string, st *tuple.SubTable) (*tuple.SubTable, error) {
				return grp.roundTrip(lbl, st)
			},
			Built: func(lbl string, st *tuple.SubTable, start time.Time) {
				cn.SpendCPU(int64(st.NumRows()) * int64(wf))
				lp.obs.Build(int64(st.NumRows())*int64(wf), time.Since(start))
				req.Trace.Span(lp.node, trace.KindBuild, lbl, start,
					int64(st.Bytes()), int64(st.NumRows()))
			},
			Probed: func(lbl string, st *tuple.SubTable, start time.Time) {
				cn.SpendCPU(int64(st.NumRows()) * int64(wf))
				lp.obs.Probe(int64(st.NumRows())*int64(wf), time.Since(start))
				req.Trace.Span(lp.node, trace.KindProbe, lbl, start,
					int64(st.Bytes()), int64(st.NumRows()))
			},
		}
		_, _, err := hashjoin.JoinPairSpill(left, right, req.JoinAttrs, label,
			wf, req.Parallelism, memCap, overflowFanout, overflowMaxDepth,
			h3, hooks, out, stats)
		return err
	}

	buildStart := time.Now()
	ht, err := hashjoin.BuildParallel(left, req.JoinAttrs, wf, req.Parallelism, stats)
	if err != nil {
		return err
	}
	cn.SpendCPU(int64(left.NumRows()) * int64(wf))
	lp.obs.Build(int64(left.NumRows())*int64(wf), time.Since(buildStart))
	req.Trace.Span(lp.node, trace.KindBuild, label, buildStart,
		int64(left.Bytes()), int64(left.NumRows()))
	probeStart := time.Now()
	if _, err := ht.ProbeParallel(right, req.JoinAttrs, wf, req.Parallelism, out, stats); err != nil {
		return err
	}
	cn.SpendCPU(int64(right.NumRows()) * int64(wf))
	lp.obs.Probe(int64(right.NumRows())*int64(wf), time.Since(probeStart))
	req.Trace.Span(lp.node, trace.KindProbe, label, probeStart,
		int64(right.Bytes()), int64(right.NumRows()))
	return nil
}

// roundTrip spills a repartitioned build partition to the group's
// scratch disk and reads it back (size-verified), paying the modeled
// I/O an out-of-core repartition costs.
func (grp *group) roundTrip(label string, st *tuple.SubTable) (*tuple.SubTable, error) {
	f := grp.mgr.Create("ov-" + label)
	data := encodeRows(st)
	err := f.AppendRows(data, int64(st.NumRows()))
	tuple.PutBuf(data)
	if err != nil {
		return nil, err
	}
	back, err := f.ReadAll()
	if err != nil {
		return nil, err
	}
	out, err := decodeRows(st.Schema, back, st.ID.Chunk)
	grp.mgr.Release(f)
	return out, err
}

// filterFor keeps only constraints naming attributes of def's schema.
func filterFor(def *metadata.TableDef, f metadata.Range) metadata.Range {
	var out metadata.Range
	for i, a := range f.Attrs {
		if def.Schema.Index(a) < 0 {
			continue
		}
		out.Attrs = append(out.Attrs, a)
		out.Lo = append(out.Lo, f.Lo[i])
		out.Hi = append(out.Hi, f.Hi[i])
	}
	return out
}
