// Package gh implements the Grace Hash join QES, modified as in the paper
// so that every joiner node performs its bucket joins independently (no
// network traffic during the bucket-joining phase).
//
// Phase 1 (partition): a QES instance on each storage node contacts the
// local BDS instance for the matching sub-tables of the left table; a hash
// function h1 over the join key routes each record to a compute-node QES
// instance, which applies a second, independent hash h2 to place the record
// in a spill bucket on its local scratch disk. The same procedure is then
// repeated for the right table. Phase 2 (bucket join): each compute node
// reads its bucket pairs back and joins them in memory.
//
// GH is insensitive to how the dataset is partitioned (the connectivity
// graph never enters), but pays the extra write+read I/O of bucket spills —
// exactly the trade the cost models capture.
package gh

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/hashjoin"
	"sciview/internal/metadata"
	"sciview/internal/simio"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// Engine is the Grace Hash QES.
type Engine struct {
	// Buckets is the number of spill buckets per joiner per table
	// (h2's range). 0 selects a default that keeps expected bucket size
	// around DefaultBucketBytes.
	Buckets int
	// BatchRows is the number of records accumulated per storage→joiner
	// shipment (0 = default).
	BatchRows int
	// FlushRows is the bucket buffer size before spilling to scratch disk
	// (0 = default).
	FlushRows int
	// MemoryBytes caps the in-memory size of one bucket side during the
	// join phase ("the number of buckets is chosen so that each bucket
	// fits in memory"). When key skew overflows a bucket past the cap, it
	// is recursively repartitioned with a salted hash — spilled and
	// re-read through the scratch disk — before joining. 0 disables the
	// check (buckets assumed to fit).
	MemoryBytes int64
}

// Defaults for the tunables.
const (
	DefaultBucketBytes = 1 << 20
	defaultBatchRows   = 4096
	defaultFlushRows   = 4096
)

// New returns a Grace Hash engine with default tuning.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "gh" }

var _ engine.Engine = (*Engine)(nil)

// h1 routes a join key to a joiner node; h2 places it in a bucket. The two
// use unrelated finalizer constants so bucket occupancy is uniform within a
// joiner (a correlated h2 would put each joiner's records in few buckets).
func h1(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return key
}

func h2(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xBF58476D1CE4E5B9
	key ^= key >> 27
	key *= 0x94D049BB133111EB
	key ^= key >> 31
	return key
}

// h3 is the salted hash for recursive repartitioning of overflowing
// buckets; the salt decorrelates it from h2 at every recursion depth.
func h3(key, salt uint64) uint64 {
	return h2(key ^ (salt+1)*0x9E3779B97F4A7C15)
}

// runSeq distinguishes the scratch-disk namespaces of concurrent shared
// runs: two queries spilling on the same joiner must not append to the
// same bucket objects.
var runSeq atomic.Int64

// Run implements engine.Engine.
func (e *Engine) Run(cl *cluster.Cluster, req engine.Request) (*engine.Result, error) {
	return e.RunContext(context.Background(), cl, req)
}

// RunContext implements engine.Engine.
func (e *Engine) RunContext(ctx context.Context, cl *cluster.Cluster, req engine.Request) (*engine.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	wf := req.WorkFactor
	if wf < 1 {
		wf = 1
	}
	batchRows := e.BatchRows
	if batchRows <= 0 {
		batchRows = defaultBatchRows
	}
	flushRows := e.FlushRows
	if flushRows <= 0 {
		flushRows = defaultFlushRows
	}
	leftDef, err := cl.Catalog.Table(req.LeftTable)
	if err != nil {
		return nil, err
	}
	rightDef, err := cl.Catalog.Table(req.RightTable)
	if err != nil {
		return nil, err
	}
	leftFilter := filterFor(leftDef, req.Filter)
	rightFilter := filterFor(rightDef, req.Filter)
	project := req.EffectiveProject()
	leftSchema := engine.ProjectedSchema(leftDef.Schema, project)
	rightSchema := engine.ProjectedSchema(rightDef.Schema, project)

	if req.Shared {
		cl.AcquireShared()
		defer cl.ReleaseShared()
	} else {
		cl.AcquireRun()
		defer cl.ReleaseRun()
		cl.Reset()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()

	buckets := e.Buckets
	if buckets <= 0 {
		buckets = e.defaultBuckets(cl, leftDef, rightDef, req)
	}

	run := runSeq.Add(1)
	nj := len(cl.Compute)
	// Per-joiner partitioners for each side.
	leftParts := make([]*partitioner, nj)
	rightParts := make([]*partitioner, nj)
	for j := 0; j < nj; j++ {
		leftParts[j] = newPartitioner(cl.Compute[j].Scratch, fmt.Sprintf("gh/r%d/j%d/L", run, j),
			leftSchema, buckets, flushRows)
		rightParts[j] = newPartitioner(cl.Compute[j].Scratch, fmt.Sprintf("gh/r%d/j%d/R", run, j),
			rightSchema, buckets, flushRows)
		leftParts[j].node = fmt.Sprintf("joiner-%d", j)
		rightParts[j].node = leftParts[j].node
		leftParts[j].rec = req.Trace
		rightParts[j].rec = req.Trace
	}

	// Phase 1: partition the left table, then the right table.
	partStart := time.Now()
	if err := e.partitionTable(ctx, cl, req.LeftTable, leftFilter, project, req.JoinAttrs, batchRows, leftParts, req.Trace); err != nil {
		return nil, err
	}
	if err := e.partitionTable(ctx, cl, req.RightTable, rightFilter, project, req.JoinAttrs, batchRows, rightParts, req.Trace); err != nil {
		return nil, err
	}
	// Flush residual bucket buffers — on every joiner's scratch disk in
	// parallel, as each joiner owns its disk.
	flushErrs := make([]error, nj)
	var flushWG sync.WaitGroup
	for j := 0; j < nj; j++ {
		flushWG.Add(1)
		go func(j int) {
			defer flushWG.Done()
			if err := leftParts[j].flushAll(); err != nil {
				flushErrs[j] = err
				return
			}
			flushErrs[j] = rightParts[j].flushAll()
		}(j)
	}
	flushWG.Wait()
	for _, err := range flushErrs {
		if err != nil {
			return nil, err
		}
	}
	partElapsed := time.Since(partStart)

	// Phase 2: each joiner joins its bucket pairs independently.
	joinStart := time.Now()
	outSchema := leftSchema.JoinResult(rightSchema, req.JoinAttrs, "r_")
	var stats hashjoin.Stats
	results := make([]*tuple.SubTable, nj)
	errs := make([]error, nj)
	var wg sync.WaitGroup
	for j := 0; j < nj; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			results[j], errs[j] = e.joinBuckets(ctx, cl.Compute[j], leftParts[j], rightParts[j],
				req, wf, buckets, outSchema, &stats)
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	joinElapsed := time.Since(joinStart)

	res := &engine.Result{
		Engine:  e.Name(),
		Elapsed: time.Since(start),
		Join: engine.JoinCounts{
			TuplesBuilt:  stats.TuplesBuilt.Load(),
			TuplesProbed: stats.TuplesProbed.Load(),
			Matches:      stats.Matches.Load(),
		},
		Traffic: cl.Traffic(),
		Phases: map[string]time.Duration{
			"partition":  partElapsed,
			"bucketjoin": joinElapsed,
		},
	}
	res.Tuples = res.Join.Matches
	if req.Collect {
		res.Collected = results
	}
	return res, nil
}

// defaultBuckets sizes h2's range so one bucket of the larger side is
// about DefaultBucketBytes.
func (e *Engine) defaultBuckets(cl *cluster.Cluster, leftDef, rightDef *metadata.TableDef, req engine.Request) int {
	var maxBytes int64
	for _, def := range []*metadata.TableDef{leftDef, rightDef} {
		var rows int64
		for _, d := range cl.Catalog.Chunks(def.ID) {
			rows += int64(d.Rows)
		}
		bytes := rows * int64(def.Schema.RecordSize())
		if bytes > maxBytes {
			maxBytes = bytes
		}
	}
	perJoiner := maxBytes / int64(len(cl.Compute))
	b := int(perJoiner/DefaultBucketBytes) + 1
	if b < 4 {
		b = 4
	}
	return b
}

// partitionTable runs the storage-side QES instances for one table in
// parallel: scan local matching sub-tables, split records by h1 into
// per-joiner batches, ship each batch and hand it to the joiner's
// partitioner.
func (e *Engine) partitionTable(ctx context.Context, cl *cluster.Cluster, table string, filter metadata.Range,
	project, joinAttrs []string, batchRows int, parts []*partitioner, rec *trace.Recorder) error {

	nj := len(parts)
	errs := make([]error, len(cl.Storage))
	var wg sync.WaitGroup
	for s := range cl.Storage {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sn := cl.Storage[s]
			descs, err := sn.BDS.LocalChunks(table, filter)
			if err != nil {
				errs[s] = err
				return
			}
			// Per-joiner outgoing batches.
			var schema tuple.Schema
			batches := make([]*tuple.SubTable, nj)
			var keyIdxs []int
			row := make([]float32, 0, 32)
			node := fmt.Sprintf("storage-%d", s)
			for _, d := range descs {
				if err := ctx.Err(); err != nil {
					errs[s] = err
					return
				}
				fetchStart := time.Now()
				st, err := sn.BDS.SubTableProjected(d.ID(), &filter, project)
				if err != nil {
					errs[s] = err
					return
				}
				rec.Span(node, trace.KindFetch, d.ID().String(), fetchStart,
					int64(st.Bytes()), int64(st.NumRows()))
				if batches[0] == nil {
					schema = st.Schema
					for j := range batches {
						batches[j] = tuple.NewSubTable(tuple.ID{Table: st.ID.Table, Chunk: -1}, schema, batchRows)
					}
					keyIdxs, err = schema.Indexes(joinAttrs)
					if err != nil {
						errs[s] = err
						return
					}
					row = make([]float32, schema.NumAttrs())
				}
				for r := 0; r < st.NumRows(); r++ {
					j := int(h1(st.Key(r, keyIdxs)) % uint64(nj))
					batches[j].AppendRow(st.Row(r, row)...)
					if batches[j].NumRows() >= batchRows {
						if err := e.shipBatch(cl, s, j, batches[j], parts[j], keyIdxs, rec); err != nil {
							errs[s] = err
							return
						}
						batches[j] = tuple.NewSubTable(tuple.ID{Table: st.ID.Table, Chunk: -1}, schema, batchRows)
					}
				}
			}
			for j, b := range batches {
				if b != nil && b.NumRows() > 0 {
					if err := e.shipBatch(cl, s, j, b, parts[j], keyIdxs, rec); err != nil {
						errs[s] = err
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shipBatch models the network transfer of a record batch from storage
// node s to joiner j and delivers it to the joiner's partitioner.
func (e *Engine) shipBatch(cl *cluster.Cluster, s, j int, batch *tuple.SubTable,
	part *partitioner, keyIdxs []int, rec *trace.Recorder) error {
	start := time.Now()
	cl.Ship(s, j, int64(batch.Bytes()))
	rec.Span(fmt.Sprintf("storage-%d", s), trace.KindShip, part.node, start,
		int64(batch.Bytes()), int64(batch.NumRows()))
	return part.add(batch, keyIdxs)
}

// partitioner is the compute-node side of phase 1 for one table: it
// applies h2 and spills bucket buffers to the node's scratch disk.
type partitioner struct {
	mu        sync.Mutex
	disk      *simio.Disk
	prefix    string
	node      string
	rec       *trace.Recorder
	schema    tuple.Schema
	buckets   []*tuple.SubTable
	rows      []int64 // total rows spilled per bucket (for sizing checks)
	flushRows int
}

func newPartitioner(disk *simio.Disk, prefix string, schema tuple.Schema, buckets, flushRows int) *partitioner {
	p := &partitioner{
		disk:      disk,
		prefix:    prefix,
		schema:    schema,
		buckets:   make([]*tuple.SubTable, buckets),
		rows:      make([]int64, buckets),
		flushRows: flushRows,
	}
	for k := range p.buckets {
		p.buckets[k] = tuple.NewSubTable(tuple.ID{Table: -1, Chunk: int32(k)}, schema, flushRows)
	}
	return p
}

func (p *partitioner) object(k int) string { return fmt.Sprintf("%s/b%d", p.prefix, k) }

// add partitions a batch into buckets, spilling full buffers.
func (p *partitioner) add(batch *tuple.SubTable, keyIdxs []int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	nb := uint64(len(p.buckets))
	row := make([]float32, p.schema.NumAttrs())
	for r := 0; r < batch.NumRows(); r++ {
		k := int(h2(batch.Key(r, keyIdxs)) % nb)
		p.buckets[k].AppendRow(batch.Row(r, row)...)
		if p.buckets[k].NumRows() >= p.flushRows {
			if err := p.spill(k); err != nil {
				return err
			}
		}
	}
	return nil
}

// spill writes bucket k's buffer to scratch disk (raw row-major records)
// and resets the buffer. Caller holds the lock.
func (p *partitioner) spill(k int) error {
	b := p.buckets[k]
	if b.NumRows() == 0 {
		return nil
	}
	start := time.Now()
	data := encodeRows(b)
	if err := p.disk.Append(p.object(k), data); err != nil {
		return err
	}
	p.rec.Span(p.node, trace.KindSpill, p.object(k), start, int64(len(data)), int64(b.NumRows()))
	p.rows[k] += int64(b.NumRows())
	b.Reset()
	return nil
}

// flushAll spills every non-empty buffer.
func (p *partitioner) flushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range p.buckets {
		if err := p.spill(k); err != nil {
			return err
		}
	}
	return nil
}

// readBucket loads bucket k back from scratch disk.
func (p *partitioner) readBucket(k int) (*tuple.SubTable, error) {
	if p.rows[k] == 0 {
		return tuple.NewSubTable(tuple.ID{Table: -1, Chunk: int32(k)}, p.schema, 0), nil
	}
	start := time.Now()
	data, err := p.disk.ReadRange(p.object(k), 0, -1)
	if err != nil {
		return nil, err
	}
	st, err := decodeRows(p.schema, data, int32(k))
	if err != nil {
		return nil, err
	}
	p.rec.Span(p.node, trace.KindBucketRead, p.object(k), start, int64(len(data)), int64(st.NumRows()))
	return st, nil
}

// deleteBucket removes bucket k's object (post-join cleanup).
func (p *partitioner) deleteBucket(k int) error {
	return p.disk.Delete(p.object(k))
}

// joinBuckets is phase 2 for one joiner: join bucket pairs independently.
func (e *Engine) joinBuckets(ctx context.Context, cn *cluster.ComputeNode, lp, rp *partitioner, req engine.Request,
	wf, buckets int, outSchema tuple.Schema, stats *hashjoin.Stats) (*tuple.SubTable, error) {

	out := tuple.NewSubTable(tuple.ID{Table: -2, Chunk: -1}, outSchema, 0)
	for k := 0; k < buckets; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if lp.rows[k] == 0 || rp.rows[k] == 0 {
			// An empty side produces nothing; skip reading the other.
			continue
		}
		left, err := lp.readBucket(k)
		if err != nil {
			return nil, err
		}
		right, err := rp.readBucket(k)
		if err != nil {
			return nil, err
		}
		if err := e.joinPair(cn, lp, rp, fmt.Sprintf("b%d", k), left, right, req, wf, out, stats, 0, 0); err != nil {
			return nil, err
		}
		if !req.Collect {
			out.Reset()
		}
		if err := lp.deleteBucket(k); err != nil {
			return nil, err
		}
		if err := rp.deleteBucket(k); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// overflow recursion bounds.
const (
	overflowFanout   = 8
	overflowMaxDepth = 3
)

// joinPair joins one bucket pair in memory, recursively repartitioning
// with the salted hash h3 when a side exceeds the memory cap. Each
// recursion round-trips the repartitioned records through the joiner's
// scratch disk, exactly as a memory-constrained node would, so the modeled
// I/O cost of skew is paid. Past overflowMaxDepth (pathological duplicate
// keys that no hash can split) the pair is joined in memory as a fallback.
func (e *Engine) joinPair(cn *cluster.ComputeNode, lp, rp *partitioner, label string,
	left, right *tuple.SubTable, req engine.Request, wf int,
	out *tuple.SubTable, stats *hashjoin.Stats, salt uint64, depth int) error {

	overflows := e.MemoryBytes > 0 &&
		(int64(left.Bytes()) > e.MemoryBytes || int64(right.Bytes()) > e.MemoryBytes)
	if overflows && depth < overflowMaxDepth {
		keyIdxsL, err := left.Schema.Indexes(req.JoinAttrs)
		if err != nil {
			return err
		}
		keyIdxsR, err := right.Schema.Indexes(req.JoinAttrs)
		if err != nil {
			return err
		}
		subsL := splitBySaltedHash(left, keyIdxsL, salt)
		subsR := splitBySaltedHash(right, keyIdxsR, salt)
		for i := 0; i < overflowFanout; i++ {
			if subsL[i].NumRows() == 0 || subsR[i].NumRows() == 0 {
				continue
			}
			subLabel := fmt.Sprintf("%s.%d", label, i)
			l, err := roundTrip(lp, subLabel, subsL[i])
			if err != nil {
				return err
			}
			r, err := roundTrip(rp, subLabel, subsR[i])
			if err != nil {
				return err
			}
			if err := e.joinPair(cn, lp, rp, subLabel, l, r, req, wf, out, stats, salt+1, depth+1); err != nil {
				return err
			}
		}
		return nil
	}

	buildStart := time.Now()
	ht, err := hashjoin.Build(left, req.JoinAttrs, wf, stats)
	if err != nil {
		return err
	}
	cn.SpendCPU(int64(left.NumRows()) * int64(wf))
	req.Trace.Span(lp.node, trace.KindBuild, label, buildStart,
		int64(left.Bytes()), int64(left.NumRows()))
	probeStart := time.Now()
	if _, err := ht.Probe(right, req.JoinAttrs, wf, out, stats); err != nil {
		return err
	}
	cn.SpendCPU(int64(right.NumRows()) * int64(wf))
	req.Trace.Span(lp.node, trace.KindProbe, label, probeStart,
		int64(right.Bytes()), int64(right.NumRows()))
	return nil
}

// splitBySaltedHash partitions rows into overflowFanout sub-tables by h3.
func splitBySaltedHash(st *tuple.SubTable, keyIdxs []int, salt uint64) []*tuple.SubTable {
	subs := make([]*tuple.SubTable, overflowFanout)
	for i := range subs {
		subs[i] = tuple.NewSubTable(st.ID, st.Schema, st.NumRows()/overflowFanout+1)
	}
	row := make([]float32, st.Schema.NumAttrs())
	for r := 0; r < st.NumRows(); r++ {
		i := int(h3(st.Key(r, keyIdxs), salt) % overflowFanout)
		subs[i].AppendRow(st.Row(r, row)...)
	}
	return subs
}

// roundTrip spills a repartitioned sub-bucket to the joiner's scratch disk
// and reads it back, paying the modeled I/O an out-of-core repartition
// costs.
func roundTrip(p *partitioner, label string, st *tuple.SubTable) (*tuple.SubTable, error) {
	name := p.prefix + "/overflow/" + label
	data := encodeRows(st)
	start := time.Now()
	if err := p.disk.Append(name, data); err != nil {
		return nil, err
	}
	p.rec.Span(p.node, trace.KindSpill, name, start, int64(len(data)), int64(st.NumRows()))
	start = time.Now()
	back, err := p.disk.ReadRange(name, 0, -1)
	if err != nil {
		return nil, err
	}
	out, err := decodeRows(p.schema, back, st.ID.Chunk)
	if err != nil {
		return nil, err
	}
	p.rec.Span(p.node, trace.KindBucketRead, name, start, int64(len(back)), int64(out.NumRows()))
	if err := p.disk.Delete(name); err != nil {
		return nil, err
	}
	return out, nil
}

// filterFor keeps only constraints naming attributes of def's schema.
func filterFor(def *metadata.TableDef, f metadata.Range) metadata.Range {
	var out metadata.Range
	for i, a := range f.Attrs {
		if def.Schema.Index(a) < 0 {
			continue
		}
		out.Attrs = append(out.Attrs, a)
		out.Lo = append(out.Lo, f.Lo[i])
		out.Hi = append(out.Hi, f.Hi[i])
	}
	return out
}
