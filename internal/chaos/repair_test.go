package chaos

import (
	"fmt"
	"testing"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/ij"
	"sciview/internal/ingest"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/repair"
)

// TestCrashRestartConverge is the self-healing headline scenario: a
// seeded restart rule takes a storage node down mid-query, an append
// batch commits while it is dark (ingest routes around it), and the node
// then returns. The repair tier must detect the outage (under-replication
// gauge rises — with RF 3 over 3 nodes there is no spare, so the exposure
// is honest), catch the node up to the head catalog version when it
// rejoins, restore the replication factor with bytes durable before every
// placement commit, and converge — while a version-pinned golden query
// stays byte-identical throughout.
func TestCrashRestartConverge(t *testing.T) {
	// Base grid plus one withheld time-step slab to append mid-outage.
	ds, steps, err := oilres.GenerateSteps(oilres.Config{
		Grid:         partition.D(16, 16, 12),
		LeftPart:     partition.D(4, 4, 4),
		RightPart:    partition.D(4, 4, 4),
		StorageNodes: storageNodes,
		Seed:         7,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// RF 3 over 3 nodes: every chunk everywhere, so one node down leaves
	// no healthy destination and the sweep must report the exposure.
	if err := oilres.Replicate(ds.Catalog, ds.Stores, storageNodes); err != nil {
		t.Fatal(err)
	}

	// Golden corpus: the fault-free answer, pinned to the base version so
	// it is comparable before, during and after the outage and the append.
	e := ij.New()
	clean, _ := chaosCluster(t, ds, "")
	baseVersion := ds.Catalog.Version()
	pinned := chaosReq()
	pinned.AsOf = baseVersion
	base, err := e.Run(clean, pinned)
	if err != nil {
		t.Fatal(err)
	}
	golden := rowsExact(base.Collected)

	// The chaos run: storage-1 crashes at its 5th fetch and the injector
	// revives it after 600 further recorded operations — several queries'
	// worth of traffic later.
	cl, inj := chaosCluster(t, ds, "restart:storage-1:fetch:5:600")
	m, err := repair.New(repair.Config{Cluster: cl, Replicas: storageNodes, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()

	ing, err := ingest.New(ingest.Config{
		Catalog:  ds.Catalog,
		Stores:   ds.Stores,
		Replicas: storageNodes,
		Avoid:    func(node int) bool { return !cl.StorageAvailable(node) },
	})
	if err != nil {
		t.Fatal(err)
	}

	goldenQuery := func(label string) {
		t.Helper()
		res, err := e.Run(cl, pinned)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		sameRows(t, label, rowsExact(res.Collected), golden)
	}

	// Phase 1: query until the restart rule fires. The query that loses
	// the node mid-fetch completes through replica failover, still golden.
	for i := 0; i < 5 && inj.Stats().Crashes == 0; i++ {
		goldenQuery(fmt.Sprintf("query %d under restart schedule", i))
	}
	if c := inj.Stats().Crashes; c != 1 {
		t.Fatalf("crashes = %d, want 1", c)
	}

	// Phase 2: the repair tier detects the outage and the gauge rises.
	waitRepair(t, func() bool { return m.Stats().NodeStates[1] == "down" }, "down detection")
	waitRepair(t, func() bool { return m.Stats().UnderReplicated > 0 }, "under-replication exposure")

	// Phase 3: append while dark. Ingest must route the batch around the
	// dead node and commit it under-replicated; the node's version lag is
	// now visible.
	v, err := ing.Append(ingest.FromStepChunks(0, steps[0]))
	if err != nil {
		t.Fatal(err)
	}
	if v != baseVersion+1 {
		t.Fatalf("append committed version %d, want %d", v, baseVersion+1)
	}
	for _, d := range ds.Catalog.ChunksSince(baseVersion) {
		nodes, err := ds.Catalog.ChunkNodes(d.Table, d.Chunk)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nodes {
			if n == 1 {
				t.Fatalf("append placed chunk %v on the dead node (placements %v)", d.ID(), nodes)
			}
		}
	}
	waitRepair(t, func() bool { return m.Stats().VersionsBehind[1] > 0 }, "version lag on the dead node")

	// Phase 4: degraded reads stay golden.
	goldenQuery("pinned query while degraded")

	// Phase 5: keep traffic flowing until the schedule revives the node,
	// then the tier must converge — node up, caught up, RF restored.
	for i := 0; i < 50 && inj.Stats().Restarts == 0; i++ {
		goldenQuery(fmt.Sprintf("drain query %d", i))
	}
	if r := inj.Stats().Restarts; r != 1 {
		t.Fatalf("restarts = %d, want 1 (downtime never elapsed)", r)
	}
	waitRepair(t, m.Converged, "convergence after restart")

	s := m.Stats()
	if s.CatchUps == 0 {
		t.Fatalf("no catch-up replay ran: %+v", s)
	}
	if s.ChunksRepaired == 0 || s.BytesRepaired == 0 {
		t.Fatalf("repair moved no bytes: %+v", s)
	}
	if s.UnderReplicated != 0 || s.VersionsBehind[1] != 0 || s.NodeStates[1] != "up" {
		t.Fatalf("not healthy after convergence: %+v", s)
	}

	// The convergence proof: every chunk (appended ones included) at RF 3,
	// every placement durable, every copy byte-identical to its primary.
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}

	// Phase 6: pinned reads still golden, and a head-version query on the
	// healed cluster matches the fault-free cluster over the same catalog.
	goldenQuery("pinned query after convergence")
	head := chaosReq()
	wantHead, err := e.Run(clean, head)
	if err != nil {
		t.Fatal(err)
	}
	gotHead, err := e.Run(cl, head)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "head query after convergence", rowsExact(gotHead.Collected), rowsExact(wantHead.Collected))
	if st := cl.StorageState(1); st != cluster.NodeUp {
		t.Fatalf("node 1 state = %v at end, want up", st)
	}
}

func waitRepair(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
