package chaos

import (
	"testing"

	"sciview/internal/engine"
)

// spillReq is the matrix request with a memory budget small enough that
// every joiner's build side round-trips through scratch (the per-joiner
// cap is budget / (2 · n_j), far below the ~512 B sub-tables).
func spillReq() engine.Request {
	req := chaosReq()
	req.MemoryBudget = 1 << 10
	return req
}

// TestSpillUnderChaos runs both engines out-of-core under the fault
// matrix's recovery scenarios: budget-forced spilling must compose with
// storage failover and injected scratch faults. A run either fails
// cleanly or produces rows identical to the fault-free in-memory result
// — a truncated spill file must never decode into partial output — and
// the scratch disks must be empty when the run ends, however it ends.
func TestSpillUnderChaos(t *testing.T) {
	ds := replicatedDataset(t)

	// Fault-free, unbudgeted references.
	want := map[string][]string{}
	for name, e := range engines() {
		cl, _ := chaosCluster(t, ds, "")
		res, err := e.Run(cl, chaosReq())
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		want[name] = rowsSorted(res.Collected)
	}

	cases := []struct {
		name   string
		faults string
		// mustSucceed: the fault class has a full recovery path, so the
		// run must complete (and match the reference).
		mustSucceed bool
	}{
		{name: "no-faults", faults: "", mustSucceed: true},
		{name: "crash-storage", faults: "crash:storage-1:fetch:5", mustSucceed: true},
		{name: "shortwrite-scratch", faults: "shortwrite:compute-0:write:3,shortwrite:compute-2:write:4"},
		{name: "drop-scratch-read", faults: "drop:compute-1:read:3"},
	}
	for engName, e := range engines() {
		for _, tc := range cases {
			t.Run(engName+"/"+tc.name, func(t *testing.T) {
				cl, inj := chaosCluster(t, ds, tc.faults)
				res, err := e.Run(cl, spillReq())
				if tc.faults != "" {
					st := inj.Stats()
					if st.ShortWrites+st.Drops+st.Crashes == 0 {
						t.Errorf("no fault fired under %q; the scenario is vacuous", tc.faults)
					}
				}
				switch {
				case err != nil && tc.mustSucceed:
					t.Fatalf("run under %q: %v", tc.faults, err)
				case err == nil:
					sameRows(t, "result", rowsSorted(res.Collected), want[engName])
					if res.Observed.SpillWriteBytes == 0 || res.Observed.SpillReadBytes == 0 {
						t.Errorf("budgeted run recorded no spill traffic: %+v", res.Observed)
					}
				}
				// The reap audit holds on every exit path.
				for j, cn := range cl.Compute {
					names, lerr := cn.Scratch.Store().List()
					if lerr != nil {
						t.Fatal(lerr)
					}
					if len(names) > 0 {
						t.Errorf("compute-%d scratch not reaped after %s: %v", j, tc.name, names)
					}
				}
			})
		}
	}
}
