package chaos

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/fault"
	"sciview/internal/gh"
	"sciview/internal/ij"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/retry"
	"sciview/internal/tuple"
)

const (
	storageNodes = 3
	computeNodes = 3
)

// replicatedDataset generates the matrix's dataset with every chunk placed
// on two storage nodes, so a single storage-node crash never loses data.
func replicatedDataset(t *testing.T) *oilres.Dataset {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid:         partition.D(16, 16, 8),
		LeftPart:     partition.D(4, 4, 4),
		RightPart:    partition.D(4, 4, 4),
		StorageNodes: storageNodes,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := oilres.Replicate(ds.Catalog, ds.Stores, 2); err != nil {
		t.Fatal(err)
	}
	return ds
}

// chaosCluster builds a fresh cluster over ds with the given fault
// schedule and fast retry/breaker tunables (so a dead node costs
// milliseconds, not the production backoff).
func chaosCluster(t *testing.T, ds *oilres.Dataset, faults string) (*cluster.Cluster, *fault.Injector) {
	t.Helper()
	inj, err := fault.Parse(faults)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: storageNodes, ComputeNodes: computeNodes, CacheBytes: 32 << 20,
		Faults:           inj,
		Retry:            retry.Policy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond},
		BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	return cl, inj
}

func chaosReq() engine.Request {
	return engine.Request{
		LeftTable: "T1", RightTable: "T2", JoinAttrs: []string{"x", "y", "z"},
		Collect: true,
	}
}

// rowsExact flattens collected sub-tables to printable rows preserving
// order — the byte-identical comparison for IJ, whose per-slot outputs
// replay deterministically.
func rowsExact(collected []*tuple.SubTable) []string {
	var out []string
	for _, st := range collected {
		if st == nil {
			continue
		}
		buf := make([]float32, st.Schema.NumAttrs())
		for r := 0; r < st.NumRows(); r++ {
			out = append(out, fmt.Sprint(st.Row(r, buf)))
		}
	}
	return out
}

// rowsSorted is rowsExact canonically sorted — the comparison for GH,
// whose row order depends on scanner interleaving even without faults.
func rowsSorted(collected []*tuple.SubTable) []string {
	out := rowsExact(collected)
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %s, want %s", label, i, got[i], want[i])
		}
	}
}

func engines() map[string]engine.Engine {
	return map[string]engine.Engine{"ij": ij.New(), "gh": gh.New()}
}

// TestFaultMatrix runs both engines under each fault class — transient
// drops, injected delays, and a storage-node crash — asserting the join
// result is exactly the fault-free one and that the expected recovery
// machinery engaged.
func TestFaultMatrix(t *testing.T) {
	ds := replicatedDataset(t)

	want := map[string][]string{}
	for name, e := range engines() {
		cl, _ := chaosCluster(t, ds, "")
		res, err := e.Run(cl, chaosReq())
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		if !res.Health.Zero() {
			t.Fatalf("%s baseline recorded health activity: %+v", name, res.Health)
		}
		want[name] = rowsSorted(res.Collected)
	}

	cases := []struct {
		name   string
		faults string
		// check asserts the fault class actually engaged its recovery path.
		check func(t *testing.T, res *engine.Result, inj *fault.Injector)
	}{
		{
			name: "drop", faults: "drop:storage-1:fetch:3",
			check: func(t *testing.T, res *engine.Result, inj *fault.Injector) {
				if inj.Stats().Drops == 0 {
					t.Error("no drops fired")
				}
				if res.Health.Retries == 0 {
					t.Error("drops fired but nothing was retried")
				}
			},
		},
		{
			name: "delay", faults: "delay:*:fetch:4:2ms",
			check: func(t *testing.T, res *engine.Result, inj *fault.Injector) {
				if inj.Stats().Delays == 0 {
					t.Error("no delays fired")
				}
			},
		},
		{
			name: "crash-storage", faults: "crash:storage-1:fetch:5",
			check: func(t *testing.T, res *engine.Result, inj *fault.Injector) {
				if inj.Stats().Crashes != 1 {
					t.Errorf("crashes = %d, want 1", inj.Stats().Crashes)
				}
				if res.Health.Failovers == 0 {
					t.Error("storage node crashed but no fetch failed over")
				}
			},
		},
	}
	for engName, e := range engines() {
		for _, tc := range cases {
			t.Run(engName+"/"+tc.name, func(t *testing.T) {
				cl, inj := chaosCluster(t, ds, tc.faults)
				res, err := e.Run(cl, chaosReq())
				if err != nil {
					t.Fatalf("run under %q: %v", tc.faults, err)
				}
				sameRows(t, "result", rowsSorted(res.Collected), want[engName])
				tc.check(t, res, inj)
			})
		}
	}
}

// TestCrashStorageAndComputeMidJoin is the headline chaos scenario: one
// seeded schedule crashes a storage node mid-scan AND a compute node
// mid-join. Both engines must complete with results identical to the
// fault-free run — byte-identical for IJ (slot outputs replay in order),
// canonically sorted for GH (row order is nondeterministic by design).
func TestCrashStorageAndComputeMidJoin(t *testing.T) {
	ds := replicatedDataset(t)

	// IJ: compute-0 dies at its 3rd scheduled edge; the slot re-runs on a
	// survivor with identical output.
	t.Run("ij", func(t *testing.T) {
		e := ij.New()
		cl, _ := chaosCluster(t, ds, "")
		base, err := e.Run(cl, chaosReq())
		if err != nil {
			t.Fatal(err)
		}
		want := rowsExact(base.Collected)

		spec := "crash:storage-1:fetch:5,crash:compute-0:edge:3"
		var prev []string
		for run := 0; run < 2; run++ { // twice: the schedule is deterministic
			cl, inj := chaosCluster(t, ds, spec)
			res, err := e.Run(cl, chaosReq())
			if err != nil {
				t.Fatalf("faulted run %d: %v", run, err)
			}
			got := rowsExact(res.Collected)
			sameRows(t, fmt.Sprintf("faulted run %d vs baseline", run), got, want)
			if prev != nil {
				sameRows(t, "faulted run 1 vs faulted run 0", got, prev)
			}
			prev = got
			if c := inj.Stats().Crashes; c != 2 {
				t.Errorf("run %d: crashes = %d, want 2 (one storage, one compute)", run, c)
			}
			if res.Health.Recoveries == 0 {
				t.Errorf("run %d: compute node died but no slot was recovered", run)
			}
			if res.Health.Failovers == 0 {
				t.Errorf("run %d: storage node died but no fetch failed over", run)
			}
			if res.Health.BreakerTrips == 0 {
				t.Errorf("run %d: repeated failures on the dead node never tripped its breaker", run)
			}
			if res.Tuples != base.Tuples {
				t.Errorf("run %d: tuples = %d, want %d", run, res.Tuples, base.Tuples)
			}
		}
	})

	// GH: compute-0 dies at its 3rd scratch write (mid-flush); its
	// partition group is rebuilt from replicas on a survivor.
	t.Run("gh", func(t *testing.T) {
		e := gh.New()
		cl, _ := chaosCluster(t, ds, "")
		base, err := e.Run(cl, chaosReq())
		if err != nil {
			t.Fatal(err)
		}
		want := rowsSorted(base.Collected)

		cl, inj := chaosCluster(t, ds, "crash:storage-1:fetch:5,crash:compute-0:write:3")
		res, err := e.Run(cl, chaosReq())
		if err != nil {
			t.Fatalf("faulted run: %v", err)
		}
		sameRows(t, "faulted vs baseline", rowsSorted(res.Collected), want)
		if c := inj.Stats().Crashes; c != 2 {
			t.Errorf("crashes = %d, want 2 (one storage, one compute)", c)
		}
		if res.Health.Rebuilds == 0 {
			t.Error("compute node died but no partition group was rebuilt")
		}
		if res.Health.Failovers == 0 {
			t.Error("storage node died but no scan failed over")
		}
		if res.Tuples != base.Tuples {
			t.Errorf("tuples = %d, want %d", res.Tuples, base.Tuples)
		}
	})
}

// TestCrashWithoutReplicasFails pins the negative: the same storage crash
// without replication must surface an error, not silently return a partial
// join.
func TestCrashWithoutReplicasFails(t *testing.T) {
	ds, err := oilres.Generate(oilres.Config{
		Grid:         partition.D(16, 16, 8),
		LeftPart:     partition.D(4, 4, 4),
		RightPart:    partition.D(4, 4, 4),
		StorageNodes: storageNodes,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range engines() {
		cl, _ := chaosCluster(t, ds, "crash:storage-1:fetch:5")
		if _, err := e.Run(cl, chaosReq()); err == nil {
			t.Errorf("%s: storage crash without replicas should fail the query", name)
		}
	}
}
