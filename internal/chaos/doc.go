// Package chaos holds the fault-injection test matrix: end-to-end runs of
// both Query Execution Systems under deterministic schedules of dropped,
// delayed and crashed operations (internal/fault), asserting that replica
// failover, retry/backoff, circuit breakers and engine-level recovery
// deliver results identical to a fault-free run. The package has no
// non-test code; it exists so the matrix can exercise ij, gh, cluster and
// fault together without creating import cycles in any of them.
package chaos
