package chaos

import (
	"testing"

	"sciview/internal/ij"
)

// TestPrefetchUnderCrashSchedule reruns the headline crash scenario with
// the IJ prefetcher enabled: a storage node dies while lookahead fetches
// are in flight and a compute node dies mid-schedule with prefetches
// outstanding. The prefetcher must not change the result (its fetches go
// through the same singleflight and failover path as demand fetches, and a
// re-assigned slot cancels and reaps its in-flight prefetches before the
// survivor replays the schedule), so the output stays identical to the
// fault-free, prefetch-free baseline.
func TestPrefetchUnderCrashSchedule(t *testing.T) {
	ds := replicatedDataset(t)
	e := ij.New()

	cl, _ := chaosCluster(t, ds, "")
	base, err := e.Run(cl, chaosReq())
	if err != nil {
		t.Fatal(err)
	}
	want := rowsExact(base.Collected)

	spec := "crash:storage-1:fetch:5,crash:compute-0:edge:3"
	for run := 0; run < 2; run++ {
		cl, inj := chaosCluster(t, ds, spec)
		r := chaosReq()
		r.Prefetch = 2
		r.Parallelism = 4
		res, err := e.Run(cl, r)
		if err != nil {
			t.Fatalf("faulted prefetch run %d: %v", run, err)
		}
		sameRows(t, "faulted prefetch run vs fault-free baseline", rowsExact(res.Collected), want)
		// The prefetcher adds no edge ops, so the compute crash still fires
		// at the same point; the storage crash count stays at 5 fetch ops
		// only if prefetch fetches flow through the same counted fault path.
		if c := inj.Stats().Crashes; c != 2 {
			t.Errorf("run %d: crashes = %d, want 2 (one storage, one compute)", run, c)
		}
		if res.Health.Recoveries == 0 {
			t.Errorf("run %d: compute node died but no slot was recovered", run)
		}
		if res.Health.Failovers == 0 {
			t.Errorf("run %d: storage node died but no fetch failed over", run)
		}
	}
}
