package metadata

import (
	"fmt"
	"sync"
	"testing"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
)

// slabDesc builds one appended chunk covering z ∈ [z0, z0+9].
func slabDesc(tid int32, z0 float64) *chunk.Desc {
	return &chunk.Desc{
		Table:  tid,
		Object: "append",
		Format: "rowmajor",
		Attrs:  schema3d().Attrs,
		Rows:   8,
		Bounds: bbox.New(
			[]float64{0, 0, z0, 0},
			[]float64{9, 9, z0 + 9, 1},
		),
	}
}

// TestConcurrentAppendDuringQuery races version-stamped R-tree inserts
// (AppendVersion) against pinned and unpinned range queries — run under
// -race this is the index's insert-during-read safety proof, and the
// assertions pin the snapshot semantics: a reader pinned to version v
// sees exactly the chunks committed by version v (no lost results, no
// phantoms), and an unpinned reader sees a prefix-consistent count that
// only grows.
func TestConcurrentAppendDuringQuery(t *testing.T) {
	c, tid := addGridChunks(t, 2, 2, 2)
	base, err := c.ChunksInRange("T1", Range{})
	if err != nil {
		t.Fatal(err)
	}
	baseN := len(base)
	pin := c.Version()

	const appends = 64
	full := Range{
		Attrs: []string{"x", "y", "z"},
		Lo:    []float64{0, 0, 0},
		Hi:    []float64{1e6, 1e6, 1e6},
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 8)

	// Writer: one chunk per version, through the incremental insert path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < appends; i++ {
			d := slabDesc(tid, float64(100+i*10))
			if _, err := c.AppendVersion([]*chunk.Desc{d}); err != nil {
				errc <- err
				return
			}
		}
	}()

	// Pinned readers: the base snapshot, byte-for-byte, every time.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pr := full
				pr.Versions = VersionWindow{Until: pin}
				descs, err := c.ChunksInRange("T1", pr)
				if err != nil {
					errc <- err
					return
				}
				if len(descs) != baseN {
					errc <- fmt.Errorf("pinned reader saw %d chunks, want %d", len(descs), baseN)
					return
				}
				for i, d := range descs {
					if d.Chunk != base[i].Chunk || d.Version > pin {
						errc <- fmt.Errorf("pinned reader: chunk %d = (%d, v%d), want (%d, v<=%d)",
							i, d.Chunk, d.Version, base[i].Chunk, pin)
						return
					}
				}
			}
		}()
	}

	// Unpinned readers: monotonically growing, never beyond the writer,
	// and every visible chunk's version within the catalog's.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := baseN
			for {
				select {
				case <-stop:
					return
				default:
				}
				descs, err := c.ChunksInRange("T1", full)
				if err != nil {
					errc <- err
					return
				}
				if len(descs) < seen || len(descs) > baseN+appends {
					errc <- fmt.Errorf("unpinned reader saw %d chunks (previously %d, max %d)",
						len(descs), seen, baseN+appends)
					return
				}
				seen = len(descs)
				v := c.Version()
				for _, d := range descs {
					if d.Version > v {
						errc <- fmt.Errorf("phantom: chunk %d at version %d, catalog only at %d",
							d.Chunk, d.Version, v)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Quiesced: every intermediate version slices out exactly one chunk.
	for v := pin + 1; v <= c.Version(); v++ {
		descs, err := c.ChunksInRange("T1", Range{Versions: VersionWindow{Since: v - 1, Until: v}})
		if err != nil {
			t.Fatal(err)
		}
		if len(descs) != 1 {
			t.Fatalf("window (%d,%d] holds %d chunks, want 1", v-1, v, len(descs))
		}
	}
	final, err := c.ChunksInRange("T1", Range{})
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != baseN+appends {
		t.Fatalf("final chunk count %d, want %d", len(final), baseN+appends)
	}
}
