package metadata

import (
	"testing"

	"sciview/internal/transport"
)

func testRPC(t *testing.T, tr transport.Transport) {
	t.Helper()
	cat, _ := addGridChunks(t, 4, 4, 2)
	closer, err := cat.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	client, err := Dial(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	def, err := client.Table("T1")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "T1" || !def.Schema.Equal(schema3d()) {
		t.Errorf("remote table def = %+v", def)
	}
	if _, err := client.Table("nope"); err == nil {
		t.Error("unknown table accepted over RPC")
	}

	defs, err := client.Tables()
	if err != nil || len(defs) != 1 {
		t.Fatalf("Tables: %v len=%d", err, len(defs))
	}

	descs, err := client.ChunksInRange("T1", Range{
		Attrs: []string{"x"}, Lo: []float64{0}, Hi: []float64{15},
	})
	if err != nil {
		t.Fatal(err)
	}
	// x in [0,15] covers i=0,1 of 4: 2*4*2 = 16 chunks.
	if len(descs) != 16 {
		t.Errorf("ranged chunks = %d, want 16", len(descs))
	}
	for _, d := range descs {
		if d.Bounds.Lo[0] > 15 {
			t.Errorf("chunk %v outside range", d.ID())
		}
	}
	// Invalid range errors propagate.
	if _, err := client.ChunksInRange("T1", Range{
		Attrs: []string{"x"}, Lo: []float64{5}, Hi: []float64{1},
	}); err == nil {
		t.Error("inverted range accepted over RPC")
	}
}

func TestRPCInProc(t *testing.T) { testRPC(t, transport.NewInProc()) }

func TestRPCTCP(t *testing.T) { testRPC(t, transport.NewTCP()) }

func TestRPCUnknownMethod(t *testing.T) {
	tr := transport.NewInProc()
	cat := NewCatalog()
	closer, err := cat.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	conn, err := tr.Dial(ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Call("bogus", nil); err == nil {
		t.Error("unknown method accepted")
	}
}
