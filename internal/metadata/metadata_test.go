package metadata

import (
	"bytes"
	"math"
	"testing"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/tuple"
)

func schema3d() tuple.Schema {
	return tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "z", Kind: tuple.Coord},
		tuple.Attr{Name: "oilp", Kind: tuple.Measure},
	)
}

// addGridChunks registers an nx×ny×nz grid of unit-cube chunks with oilp
// bounds derived from position, returning the catalog and table id.
func addGridChunks(t *testing.T, nx, ny, nz int) (*Catalog, int32) {
	t.Helper()
	c := NewCatalog()
	def, err := c.CreateTable("T1", schema3d())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				d := &chunk.Desc{
					Object: "data",
					Format: "rowmajor",
					Attrs:  schema3d().Attrs,
					Rows:   8,
					Bounds: bbox.New(
						[]float64{float64(i * 10), float64(j * 10), float64(k * 10), float64(i) / 10},
						[]float64{float64(i*10) + 9, float64(j*10) + 9, float64(k*10) + 9, float64(i)/10 + 0.05},
					),
				}
				if _, err := c.AddChunk(def.ID, d); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return c, def.ID
}

func TestCreateTable(t *testing.T) {
	c := NewCatalog()
	def, err := c.CreateTable("T1", schema3d())
	if err != nil {
		t.Fatal(err)
	}
	if def.ID != 0 {
		t.Errorf("first table id = %d", def.ID)
	}
	if _, err := c.CreateTable("T1", schema3d()); err == nil {
		t.Error("duplicate table should fail")
	}
	noCoord := tuple.NewSchema(tuple.Attr{Name: "v", Kind: tuple.Measure})
	if _, err := c.CreateTable("T2", noCoord); err == nil {
		t.Error("table without coordinates should fail")
	}
	got, err := c.Table("T1")
	if err != nil || got.ID != def.ID {
		t.Errorf("Table lookup: %v %v", got, err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := c.TableByID(99); err == nil {
		t.Error("unknown table id should fail")
	}
	if len(c.Tables()) != 1 {
		t.Error("Tables() wrong")
	}
}

func TestAddChunkAssignsIDs(t *testing.T) {
	c, tid := addGridChunks(t, 2, 1, 1)
	ds := c.Chunks(tid)
	if len(ds) != 2 || ds[0].Chunk != 0 || ds[1].Chunk != 1 {
		t.Fatalf("chunk ids wrong: %v", ds)
	}
	d, err := c.Chunk(tid, 1)
	if err != nil || d.Chunk != 1 {
		t.Errorf("Chunk(1): %v %v", d, err)
	}
	if _, err := c.Chunk(tid, 5); err == nil {
		t.Error("out-of-range chunk should fail")
	}
	bad := &chunk.Desc{Bounds: bbox.Universe(2)}
	if _, err := c.AddChunk(tid, bad); err == nil {
		t.Error("wrong-dim bounds should fail")
	}
	if _, err := c.AddChunk(42, bad); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestChunksInRangeCoords(t *testing.T) {
	c, _ := addGridChunks(t, 4, 4, 4) // 64 chunks, cells 10 wide
	// Paper example: SELECT * FROM T1 WHERE x in [0,256], y in [0,512] —
	// here: x in [0,15] covers i=0,1; y in [5,9] covers j=0 only; z free.
	got, err := c.ChunksInRange("T1", Range{
		Attrs: []string{"x", "y"},
		Lo:    []float64{0, 5},
		Hi:    []float64{15, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*1*4 {
		t.Fatalf("got %d chunks, want 8", len(got))
	}
	for _, d := range got {
		if d.Bounds.Lo[0] > 15 || d.Bounds.Hi[1] < 5 {
			t.Errorf("chunk %v outside range", d.ID())
		}
	}
	// Chunk order must be deterministic (ascending id).
	for i := 1; i < len(got); i++ {
		if got[i].Chunk <= got[i-1].Chunk {
			t.Fatal("results not sorted by chunk id")
		}
	}
}

func TestChunksInRangeScalarFilter(t *testing.T) {
	c, _ := addGridChunks(t, 4, 1, 1) // oilp bounds: [i/10, i/10+0.05]
	got, err := c.ChunksInRange("T1", Range{
		Attrs: []string{"oilp"},
		Lo:    []float64{0.18},
		Hi:    []float64{0.21},
	})
	if err != nil {
		t.Fatal(err)
	}
	// i=2 has oilp [0.2,0.25] — overlaps [0.18,0.21]. i=1: [0.1,0.15] no.
	if len(got) != 1 || got[0].Bounds.Lo[3] != 0.2 {
		t.Fatalf("scalar filter returned %d chunks", len(got))
	}
}

func TestChunksInRangeErrors(t *testing.T) {
	c, _ := addGridChunks(t, 1, 1, 1)
	if _, err := c.ChunksInRange("nope", Range{}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := c.ChunksInRange("T1", Range{Attrs: []string{"w"}, Lo: []float64{0}, Hi: []float64{1}}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := c.ChunksInRange("T1", Range{Attrs: []string{"x"}, Lo: []float64{1}, Hi: []float64{0}}); err == nil {
		t.Error("inverted interval should fail")
	}
	if _, err := c.ChunksInRange("T1", Range{Attrs: []string{"x"}, Lo: []float64{1, 2}, Hi: []float64{3}}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestEmptyRangeReturnsAll(t *testing.T) {
	c, _ := addGridChunks(t, 3, 3, 1)
	got, err := c.ChunksInRange("T1", Range{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Errorf("empty range returned %d chunks, want 9", len(got))
	}
}

func TestInfiniteBoundsChunk(t *testing.T) {
	// A chunk missing scalar bounds (±Inf) must still be indexed and found.
	c := NewCatalog()
	def, _ := c.CreateTable("T1", schema3d())
	d := &chunk.Desc{
		Attrs: schema3d().Attrs,
		Bounds: bbox.New(
			[]float64{0, 0, 0, math.Inf(-1)},
			[]float64{9, 9, 9, math.Inf(1)},
		),
	}
	if _, err := c.AddChunk(def.ID, d); err != nil {
		t.Fatal(err)
	}
	got, err := c.ChunksInRange("T1", Range{Attrs: []string{"x"}, Lo: []float64{5}, Hi: []float64{6}})
	if err != nil || len(got) != 1 {
		t.Fatalf("infinite-bounds chunk not found: %v %d", err, len(got))
	}
	got, err = c.ChunksInRange("T1", Range{Attrs: []string{"oilp"}, Lo: []float64{0.5}, Hi: []float64{0.6}})
	if err != nil || len(got) != 1 {
		t.Fatalf("scalar query against infinite bounds: %v %d", err, len(got))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c, tid := addGridChunks(t, 3, 2, 2)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCatalog()
	if err := c2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if len(c2.Chunks(tid)) != 12 {
		t.Fatalf("loaded %d chunks", len(c2.Chunks(tid)))
	}
	def, err := c2.Table("T1")
	if err != nil || !def.Schema.Equal(schema3d()) {
		t.Fatalf("loaded table wrong: %v %v", def, err)
	}
	// R-tree must be rebuilt: range query works.
	got, err := c2.ChunksInRange("T1", Range{Attrs: []string{"x"}, Lo: []float64{0}, Hi: []float64{5}})
	if err != nil || len(got) != 4 {
		t.Fatalf("post-load range query: %v, %d chunks", err, len(got))
	}
	// New tables get fresh ids after load.
	def2, err := c2.CreateTable("T9", schema3d())
	if err != nil || def2.ID != 1 {
		t.Fatalf("nextTable not restored: %v %v", def2, err)
	}
	if err := c2.Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("loading garbage should fail")
	}
}

func BenchmarkChunksInRange(b *testing.B) {
	c := NewCatalog()
	def, _ := c.CreateTable("T1", schema3d())
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			for k := 0; k < 8; k++ {
				d := &chunk.Desc{
					Attrs: schema3d().Attrs,
					Bounds: bbox.New(
						[]float64{float64(i * 8), float64(j * 8), float64(k * 8), 0},
						[]float64{float64(i*8) + 7, float64(j*8) + 7, float64(k*8) + 7, 1},
					),
				}
				if _, err := c.AddChunk(def.ID, d); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	r := Range{Attrs: []string{"x", "y"}, Lo: []float64{32, 32}, Hi: []float64{96, 96}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := c.ChunksInRange("T1", r)
		if err != nil || len(got) == 0 {
			b.Fatalf("%v %d", err, len(got))
		}
	}
}
