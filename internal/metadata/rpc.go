package metadata

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"sciview/internal/chunk"
	"sciview/internal/transport"
)

// The MetaData Service's RPC surface lets remote components — standalone
// BDS nodes, external query front ends — resolve tables and range queries
// without a local catalog copy. Requests and responses are gob-encoded.

// ServiceName is the transport registration name of the MetaData Service.
const ServiceName = "metadata"

// Serve registers the catalog's RPC handler on tr.
func (c *Catalog) Serve(tr transport.Transport) (io.Closer, error) {
	return tr.Serve(ServiceName, c.handle)
}

type tableReq struct {
	Name string
}

type chunksInRangeReq struct {
	Table string
	Range Range
}

type tablesResp struct {
	Tables []TableDef
}

type chunksResp struct {
	Chunks []*chunk.Desc
}

func (c *Catalog) handle(method string, payload []byte) ([]byte, error) {
	dec := gob.NewDecoder(bytes.NewReader(payload))
	var out bytes.Buffer
	enc := gob.NewEncoder(&out)
	switch method {
	case "table":
		var req tableReq
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("metadata: decoding table request: %w", err)
		}
		def, err := c.Table(req.Name)
		if err != nil {
			return nil, err
		}
		if err := enc.Encode(*def); err != nil {
			return nil, err
		}
	case "tables":
		defs := c.Tables()
		resp := tablesResp{}
		for _, d := range defs {
			resp.Tables = append(resp.Tables, *d)
		}
		if err := enc.Encode(resp); err != nil {
			return nil, err
		}
	case "chunks-in-range":
		var req chunksInRangeReq
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("metadata: decoding range request: %w", err)
		}
		descs, err := c.ChunksInRange(req.Table, req.Range)
		if err != nil {
			return nil, err
		}
		if err := enc.Encode(chunksResp{Chunks: descs}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("metadata: unknown method %q", method)
	}
	return out.Bytes(), nil
}

// Client is a remote catalog handle mirroring the read API used by query
// components.
type Client struct {
	conn transport.Conn
}

// Dial connects to a served MetaData Service.
func Dial(tr transport.Transport) (*Client, error) {
	conn, err := tr.Dial(ServiceName)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// ClientFromConn wraps an established connection.
func ClientFromConn(conn transport.Conn) *Client { return &Client{conn: conn} }

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(method string, req, resp interface{}) error {
	var buf bytes.Buffer
	if req != nil {
		if err := gob.NewEncoder(&buf).Encode(req); err != nil {
			return fmt.Errorf("metadata: encoding %s request: %w", method, err)
		}
	}
	out, err := c.conn.Call(method, buf.Bytes())
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(out)).Decode(resp)
}

// Table fetches one table definition.
func (c *Client) Table(name string) (*TableDef, error) {
	var def TableDef
	if err := c.call("table", tableReq{Name: name}, &def); err != nil {
		return nil, err
	}
	return &def, nil
}

// Tables fetches every table definition.
func (c *Client) Tables() ([]TableDef, error) {
	var resp tablesResp
	if err := c.call("tables", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// ChunksInRange resolves a range query to chunk descriptors remotely.
func (c *Client) ChunksInRange(table string, r Range) ([]*chunk.Desc, error) {
	var resp chunksResp
	if err := c.call("chunks-in-range", chunksInRangeReq{Table: table, Range: r}, &resp); err != nil {
		return nil, err
	}
	return resp.Chunks, nil
}
