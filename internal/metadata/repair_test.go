package metadata

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sciview/internal/chunk"
)

func TestAddReplicaAlreadyPlaced(t *testing.T) {
	c, id := addGridChunks(t, 1, 1, 2)

	// First placement on a new node commits.
	if err := c.AddReplica(id, 0, chunk.Replica{Node: 2, Object: "rep/data"}); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	nodes, err := c.ChunkNodes(id, 0)
	if err != nil || len(nodes) != 2 || nodes[1] != 2 {
		t.Fatalf("ChunkNodes = %v, %v; want [primary 2]", nodes, err)
	}

	// Repeating it is the idempotent-converged case: ErrAlreadyPlaced.
	err = c.AddReplica(id, 0, chunk.Replica{Node: 2, Object: "rep/data2"})
	if !errors.Is(err, ErrAlreadyPlaced) {
		t.Fatalf("duplicate AddReplica: err = %v, want ErrAlreadyPlaced", err)
	}
	// Placing on the primary's own node is also already-placed.
	d, _ := c.Chunk(id, 0)
	err = c.AddReplica(id, 0, chunk.Replica{Node: d.Node, Object: "rep/data"})
	if !errors.Is(err, ErrAlreadyPlaced) {
		t.Fatalf("primary-node AddReplica: err = %v, want ErrAlreadyPlaced", err)
	}
	// A real failure (no such chunk) is NOT ErrAlreadyPlaced.
	err = c.AddReplica(id, 99, chunk.Replica{Node: 3})
	if err == nil || errors.Is(err, ErrAlreadyPlaced) {
		t.Fatalf("bad chunk id: err = %v, want a non-sentinel error", err)
	}
	// No duplicate snuck in.
	if nodes, _ := c.ChunkNodes(id, 0); len(nodes) != 2 {
		t.Fatalf("nodes after duplicate attempts = %v", nodes)
	}
}

func TestRemoveReplica(t *testing.T) {
	c, id := addGridChunks(t, 1, 1, 1)
	if err := c.AddReplica(id, 0, chunk.Replica{Node: 1, Object: "rep/a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(id, 0, chunk.Replica{Node: 2, Object: "rep/b"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveReplica(id, 0, 1); err != nil {
		t.Fatalf("RemoveReplica: %v", err)
	}
	nodes, _ := c.ChunkNodes(id, 0)
	if len(nodes) != 2 || nodes[1] != 2 {
		t.Fatalf("nodes after removal = %v, want [primary 2]", nodes)
	}
	// Removing again: no such replica.
	if err := c.RemoveReplica(id, 0, 1); err == nil {
		t.Fatal("second RemoveReplica succeeded")
	}
	// The primary placement is not removable.
	d, _ := c.Chunk(id, 0)
	if err := c.RemoveReplica(id, 0, d.Node); err == nil {
		t.Fatal("RemoveReplica accepted the primary placement")
	}
	// After removal the node can be re-placed (repair lays a fresh copy).
	if err := c.AddReplica(id, 0, chunk.Replica{Node: 1, Object: "repair/a"}); err != nil {
		t.Fatalf("re-AddReplica after removal: %v", err)
	}
	if obj, _, ok := c.LocateOn(id, 0, 1); !ok || obj != "repair/a" {
		t.Fatalf("LocateOn(1) = %q,%v after re-place", obj, ok)
	}
}

func TestLocateOn(t *testing.T) {
	c, id := addGridChunks(t, 1, 1, 1)
	d, _ := c.Chunk(id, 0)
	obj, off, ok := c.LocateOn(id, 0, d.Node)
	if !ok || obj != d.Object || off != d.Offset {
		t.Fatalf("LocateOn(primary) = %q,%d,%v", obj, off, ok)
	}
	if _, _, ok := c.LocateOn(id, 0, 7); ok {
		t.Fatal("LocateOn found a copy on a node that holds none")
	}
	if _, _, ok := c.LocateOn(id, 42, 0); ok {
		t.Fatal("LocateOn found a copy of a chunk that does not exist")
	}
}

func TestChunksSince(t *testing.T) {
	c, id := addGridChunks(t, 1, 1, 2) // 2 chunks at version 1
	mk := func() *chunk.Desc {
		base, _ := c.Chunk(id, 0)
		d := *base
		d.Replicas = nil
		return &d
	}
	v2, err := c.AppendVersion([]*chunk.Desc{mk()})
	if err != nil || v2 != 2 {
		t.Fatalf("AppendVersion: v=%d err=%v", v2, err)
	}
	v3, err := c.AppendVersion([]*chunk.Desc{mk(), mk()})
	if err != nil || v3 != 3 {
		t.Fatalf("AppendVersion: v=%d err=%v", v3, err)
	}

	if got := c.ChunksSince(0); len(got) != 5 {
		t.Fatalf("ChunksSince(0) = %d descs, want all 5", len(got))
	}
	got := c.ChunksSince(1)
	if len(got) != 3 {
		t.Fatalf("ChunksSince(1) = %d descs, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		prev, cur := got[i-1], got[i]
		if prev.Table > cur.Table || (prev.Table == cur.Table && prev.Chunk >= cur.Chunk) {
			t.Fatalf("ChunksSince out of (table,chunk) order at %d: %v then %v", i, prev.ID(), cur.ID())
		}
	}
	if got := c.ChunksSince(2); len(got) != 2 {
		t.Fatalf("ChunksSince(2) = %d descs, want 2", len(got))
	}
	if got := c.ChunksSince(3); len(got) != 0 {
		t.Fatalf("ChunksSince(head) = %d descs, want 0", len(got))
	}
}

func TestLoadRejectsFutureChunkVersion(t *testing.T) {
	c, id := addGridChunks(t, 1, 1, 2)
	// Corrupt the image: stamp one chunk beyond the committed version.
	d, _ := c.Chunk(id, 1)
	d.Version = c.Version() + 5
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewCatalog()
	if _, err := fresh.CreateTable("KEEP", schema3d()); err != nil {
		t.Fatal(err)
	}
	err := fresh.Load(&buf)
	if err == nil {
		t.Fatal("Load accepted a chunk version beyond the committed version")
	}
	if !strings.Contains(err.Error(), "corrupt catalog image") {
		t.Fatalf("Load error = %v, want corruption diagnosis", err)
	}
	// The rejected image must not have partially replaced the catalog.
	if _, err := fresh.Table("KEEP"); err != nil {
		t.Fatalf("rejected Load mutated the catalog: %v", err)
	}
	if v := fresh.Version(); v != 1 {
		t.Fatalf("rejected Load moved version to %d", v)
	}
}

func TestLoadNormalizesLegacyVersions(t *testing.T) {
	// Images saved before versioning carry Version 0 everywhere: Load
	// normalizes both catalog and chunk versions to 1 (and that is not the
	// corruption case).
	c, id := addGridChunks(t, 1, 1, 1)
	c.mu.Lock()
	c.version = 0
	c.chunks[id][0].Version = 0
	c.mu.Unlock()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewCatalog()
	if err := fresh.Load(&buf); err != nil {
		t.Fatalf("Load(legacy image): %v", err)
	}
	if v := fresh.Version(); v != 1 {
		t.Fatalf("legacy catalog version = %d, want 1", v)
	}
	d, err := fresh.Chunk(id, 0)
	if err != nil || d.Version != 1 {
		t.Fatalf("legacy chunk version = %d (%v), want 1", d.Version, err)
	}
}
