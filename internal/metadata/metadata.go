// Package metadata implements the MetaData Service: the catalog of virtual
// tables and their chunks. It resolves the range part of a query to the set
// of matching chunk descriptors using an R-tree over the tables' coordinate
// attributes, and can persist the catalog so other services (BDS, planner)
// recover it without rescanning datasets.
package metadata

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/rtree"
	"sciview/internal/tuple"
)

// TableDef describes one virtual table exposed by a BDS.
type TableDef struct {
	ID     int32
	Name   string
	Schema tuple.Schema
}

// Catalog is the MetaData Service state. All methods are safe for
// concurrent use.
type Catalog struct {
	mu        sync.RWMutex
	byName    map[string]*TableDef
	byID      map[int32]*TableDef
	chunks    map[int32][]*chunk.Desc
	trees     map[int32]*rtree.Tree // indexed over coordinate attrs only
	nextTable int32
	// version is the monotonic dataset version. It starts at 1 (the version
	// of everything loaded administratively) and advances by one per
	// committed append batch, so version 0 is free to mean "current" in
	// query pins.
	version int64
}

// NewCatalog returns an empty catalog at version 1.
func NewCatalog() *Catalog {
	return &Catalog{
		byName:  make(map[string]*TableDef),
		byID:    make(map[int32]*TableDef),
		chunks:  make(map[int32][]*chunk.Desc),
		trees:   make(map[int32]*rtree.Tree),
		version: 1,
	}
}

// Version returns the current dataset version: 1 for a freshly loaded
// dataset, +1 per committed append batch. A query that wants
// snapshot-isolated reads records this value at admission and resolves
// every chunk set with Versions.Until pinned to it.
func (c *Catalog) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// CreateTable registers a virtual table and returns its definition. The
// schema must contain at least one coordinate attribute, since range
// resolution and join scheduling are driven by coordinates.
func (c *Catalog) CreateTable(name string, schema tuple.Schema) (*TableDef, error) {
	if len(schema.CoordIndexes()) == 0 {
		return nil, fmt.Errorf("metadata: table %q has no coordinate attributes", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[name]; ok {
		return nil, fmt.Errorf("metadata: table %q already exists", name)
	}
	def := &TableDef{ID: c.nextTable, Name: name, Schema: schema}
	c.nextTable++
	c.byName[name] = def
	c.byID[def.ID] = def
	c.trees[def.ID] = rtree.New(len(schema.CoordIndexes()), 0)
	return def, nil
}

// Table returns the definition of the named table.
func (c *Catalog) Table(name string) (*TableDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	def, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("metadata: unknown table %q", name)
	}
	return def, nil
}

// TableByID returns the definition of the table with the given id.
func (c *Catalog) TableByID(id int32) (*TableDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	def, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("metadata: unknown table id %d", id)
	}
	return def, nil
}

// Tables returns all table definitions (unordered).
func (c *Catalog) Tables() []*TableDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TableDef, 0, len(c.byID))
	for _, def := range c.byID {
		out = append(out, def)
	}
	return out
}

// AddChunk registers a chunk of the given table, assigning its chunk id.
// The descriptor's Bounds must be in table-schema order and cover at least
// the coordinate attributes with finite bounds.
func (c *Catalog) AddChunk(tableID int32, d *chunk.Desc) (tuple.ID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	def, ok := c.byID[tableID]
	if !ok {
		return tuple.ID{}, fmt.Errorf("metadata: unknown table id %d", tableID)
	}
	if d.Bounds.Dims() != def.Schema.NumAttrs() {
		return tuple.ID{}, fmt.Errorf("metadata: chunk bounds have %d dims, schema has %d attrs",
			d.Bounds.Dims(), def.Schema.NumAttrs())
	}
	d.Table = tableID
	d.Chunk = int32(len(c.chunks[tableID]))
	d.Version = c.version
	c.chunks[tableID] = append(c.chunks[tableID], d)
	c.trees[tableID].Insert(coordBox(def.Schema, d.Bounds), int64(d.Chunk))
	return d.ID(), nil
}

// AppendVersion atomically registers a batch of new chunks as one new
// catalog version and returns that version. Each descriptor must carry the
// id of an existing table in Table and full-schema Bounds; chunk ids are
// assigned here and the descriptors are stamped with the new version. The
// batch commits as a unit under the catalog lock: a concurrent
// ChunksInRange either sees none of the batch or all of it, and a reader
// pinned to an older version never sees it at all. Chunk placement in the
// R-tree uses the incremental insert path (no index rebuild).
func (c *Catalog) AppendVersion(descs []*chunk.Desc) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range descs {
		def, ok := c.byID[d.Table]
		if !ok {
			return 0, fmt.Errorf("metadata: append to unknown table id %d", d.Table)
		}
		if d.Bounds.Dims() != def.Schema.NumAttrs() {
			return 0, fmt.Errorf("metadata: append chunk bounds have %d dims, table %q has %d attrs",
				d.Bounds.Dims(), def.Name, def.Schema.NumAttrs())
		}
	}
	c.version++
	for _, d := range descs {
		def := c.byID[d.Table]
		d.Chunk = int32(len(c.chunks[d.Table]))
		d.Version = c.version
		c.chunks[d.Table] = append(c.chunks[d.Table], d)
		c.trees[d.Table].Insert(coordBox(def.Schema, d.Bounds), int64(d.Chunk))
	}
	return c.version, nil
}

// ErrAlreadyPlaced reports an AddReplica for a node that already holds a
// copy of the chunk. Idempotent repair retries match it with errors.Is to
// distinguish "already converged" from a real failure.
var ErrAlreadyPlaced = errors.New("metadata: chunk already placed on node")

// AddReplica records an extra placement of chunk (tableID, chunkID). The
// replica's bytes are the caller's responsibility and MUST be durable in
// the node's store before the call — the instant the placement commits,
// fetch routing may read it. The catalog only tracks where copies live so
// fetches can fail over and repair can converge.
func (c *Catalog) AddReplica(tableID, chunkID int32, r chunk.Replica) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	list := c.chunks[tableID]
	if chunkID < 0 || int(chunkID) >= len(list) {
		return fmt.Errorf("metadata: no chunk (%d,%d)", tableID, chunkID)
	}
	d := list[chunkID]
	if _, _, ok := d.Locate(r.Node); ok {
		return fmt.Errorf("metadata: chunk (%d,%d) on node %d: %w", tableID, chunkID, r.Node, ErrAlreadyPlaced)
	}
	// Copy-on-write: concurrent readers hold slices returned before this
	// commit; never grow the shared backing array in place.
	reps := make([]chunk.Replica, len(d.Replicas), len(d.Replicas)+1)
	copy(reps, d.Replicas)
	d.Replicas = append(reps, r)
	return nil
}

// RemoveReplica drops the replica placement of chunk (tableID, chunkID) on
// the given node — the repair path's way of retiring a placement whose
// bytes were lost with a node's disk, so routing stops trying it and
// re-replication can lay a fresh copy. The primary placement cannot be
// removed (promote-by-rebuild instead: repair rewrites the primary object
// in place from surviving replicas).
func (c *Catalog) RemoveReplica(tableID, chunkID int32, node int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	list := c.chunks[tableID]
	if chunkID < 0 || int(chunkID) >= len(list) {
		return fmt.Errorf("metadata: no chunk (%d,%d)", tableID, chunkID)
	}
	d := list[chunkID]
	if node == d.Node {
		return fmt.Errorf("metadata: chunk (%d,%d): cannot remove primary placement on node %d", tableID, chunkID, node)
	}
	for i, r := range d.Replicas {
		if r.Node == node {
			reps := make([]chunk.Replica, 0, len(d.Replicas)-1)
			reps = append(reps, d.Replicas[:i]...)
			d.Replicas = append(reps, d.Replicas[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("metadata: chunk (%d,%d) has no replica on node %d", tableID, chunkID, node)
}

// ChunkNodes returns every storage node holding a copy of chunk
// (tableID, chunkID), primary first, replicas in registration order — the
// lock-consistent form of Desc.Nodes that fetch routing and repair use
// while AddReplica may be committing concurrently.
func (c *Catalog) ChunkNodes(tableID, chunkID int32) ([]int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	list := c.chunks[tableID]
	if chunkID < 0 || int(chunkID) >= len(list) {
		return nil, fmt.Errorf("metadata: no chunk (%d,%d)", tableID, chunkID)
	}
	return list[chunkID].Nodes(), nil
}

// LocateOn returns the object and offset of the chunk's copy on the given
// node (lock-consistent form of Desc.Locate). ok is false when that node
// holds no copy.
func (c *Catalog) LocateOn(tableID, chunkID int32, node int) (object string, offset int64, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	list := c.chunks[tableID]
	if chunkID < 0 || int(chunkID) >= len(list) {
		return "", 0, false
	}
	return list[chunkID].Locate(node)
}

// ChunksSince returns the descriptors of every chunk (all tables) whose
// commit version is strictly greater than since, in (table, chunk) order —
// the version-history diff a returning storage node replays to find the
// append batches it missed. since = 0 returns everything.
func (c *Catalog) ChunksSince(since int64) []*chunk.Desc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var ids []int32
	for id := range c.chunks {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var out []*chunk.Desc
	for _, id := range ids {
		for _, d := range c.chunks[id] {
			if d.Version > since {
				out = append(out, d)
			}
		}
	}
	return out
}

// coordBox projects a full-schema bounding box onto the coordinate
// dimensions, clamping infinities so R-tree volume arithmetic stays finite.
func coordBox(schema tuple.Schema, full bbox.Box) bbox.Box {
	const clamp = 1e12
	ci := schema.CoordIndexes()
	lo := make([]float64, len(ci))
	hi := make([]float64, len(ci))
	for i, idx := range ci {
		lo[i] = math.Max(full.Lo[idx], -clamp)
		hi[i] = math.Min(full.Hi[idx], clamp)
	}
	return bbox.New(lo, hi)
}

// Chunk returns the descriptor of chunk (tableID, chunkID).
func (c *Catalog) Chunk(tableID, chunkID int32) (*chunk.Desc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	list := c.chunks[tableID]
	if chunkID < 0 || int(chunkID) >= len(list) {
		return nil, fmt.Errorf("metadata: no chunk (%d,%d)", tableID, chunkID)
	}
	return list[chunkID], nil
}

// Chunks returns all chunk descriptors of a table, in chunk-id order.
// The returned slice must not be modified.
func (c *Catalog) Chunks(tableID int32) []*chunk.Desc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.chunks[tableID]
}

// VersionWindow restricts chunk resolution to a half-open interval of
// catalog versions: a chunk is visible iff Since < chunk.Version <= Until.
// The zero window (0, 0) is unconstrained — Until == 0 means "current"
// (no upper bound) and Since == 0 admits the initially loaded chunks
// (which carry version >= 1). Snapshot-isolated reads set Until to the
// version pinned at admission; delta-join maintenance sets Since to the
// previously refreshed version to resolve only the new chunks.
type VersionWindow struct {
	Since int64
	Until int64
}

// Unconstrained reports whether the window admits every version.
func (w VersionWindow) Unconstrained() bool { return w.Since == 0 && w.Until == 0 }

// Admits reports whether a chunk at version v is visible in the window.
func (w VersionWindow) Admits(v int64) bool {
	return v > w.Since && (w.Until == 0 || v <= w.Until)
}

// Range is a conjunction of per-attribute interval constraints, the
// "WHERE x in [0,256], y in [0,512]" part of the paper's queries, plus an
// optional catalog-version window for snapshot-isolated and delta reads.
type Range struct {
	Attrs []string
	Lo    []float64
	Hi    []float64
	// Versions restricts resolution to chunks whose commit version lies in
	// the window. It does not participate in fetch signatures: chunk bytes
	// are immutable and chunk ids are never reused, so a cached sub-table
	// is valid at every version that can see its chunk.
	Versions VersionWindow
}

// Empty reports whether the range imposes no row constraints. A version
// window alone does not make a range non-empty: versions select chunks,
// never rows.
func (r Range) Empty() bool { return len(r.Attrs) == 0 }

// Validate checks arity and interval ordering.
func (r Range) Validate() error {
	if len(r.Attrs) != len(r.Lo) || len(r.Lo) != len(r.Hi) {
		return fmt.Errorf("metadata: range arity mismatch (%d attrs, %d lo, %d hi)",
			len(r.Attrs), len(r.Lo), len(r.Hi))
	}
	for i := range r.Attrs {
		if r.Lo[i] > r.Hi[i] {
			return fmt.Errorf("metadata: empty interval for %q: [%g,%g]", r.Attrs[i], r.Lo[i], r.Hi[i])
		}
	}
	return nil
}

// ChunksInRange returns the descriptors of all chunks of the named table
// whose bounding boxes intersect the given range — the paper's
// range-to-sub-table-id resolution. Coordinate constraints are answered by
// the R-tree; constraints on other attributes are applied by checking each
// candidate's full bounding box.
func (c *Catalog) ChunksInRange(table string, r Range) ([]*chunk.Desc, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	def, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	ci := def.Schema.CoordIndexes()
	query := bbox.Universe(len(ci))
	// scalar constraints: (schema attr index, lo, hi)
	type scalarCon struct {
		idx    int
		lo, hi float64
	}
	var scalars []scalarCon
	for i, name := range r.Attrs {
		idx := def.Schema.Index(name)
		if idx < 0 {
			return nil, fmt.Errorf("metadata: table %q has no attribute %q", table, name)
		}
		coordDim := -1
		for d, cidx := range ci {
			if cidx == idx {
				coordDim = d
				break
			}
		}
		if coordDim >= 0 {
			query.Lo[coordDim] = math.Max(query.Lo[coordDim], r.Lo[i])
			query.Hi[coordDim] = math.Min(query.Hi[coordDim], r.Hi[i])
		} else {
			scalars = append(scalars, scalarCon{idx: idx, lo: r.Lo[i], hi: r.Hi[i]})
		}
	}
	// Clamp infinities for the R-tree query box (same clamp as coordBox).
	const clamp = 1e12
	for d := range query.Lo {
		query.Lo[d] = math.Max(query.Lo[d], -clamp)
		query.Hi[d] = math.Min(query.Hi[d], clamp)
	}

	ids := c.trees[def.ID].Search(query, nil)
	out := make([]*chunk.Desc, 0, len(ids))
candidates:
	for _, id := range ids {
		d := c.chunks[def.ID][id]
		if !r.Versions.Admits(d.Version) {
			continue
		}
		for _, s := range scalars {
			if d.Bounds.Lo[s.idx] > s.hi || d.Bounds.Hi[s.idx] < s.lo {
				continue candidates
			}
		}
		out = append(out, d)
	}
	// Deterministic order for scheduling.
	sortDescs(out)
	return out, nil
}

func sortDescs(ds []*chunk.Desc) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Chunk < ds[j-1].Chunk; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// snapshot is the gob-serializable catalog image.
type snapshot struct {
	Tables    []TableDef
	Chunks    map[int32][]*chunk.Desc
	NextTable int32
	Version   int64
}

// Save writes the catalog to w (gob encoding).
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := snapshot{Chunks: c.chunks, NextTable: c.nextTable, Version: c.version}
	for _, def := range c.byID {
		snap.Tables = append(snap.Tables, *def)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load replaces the catalog contents with a previously saved image,
// rebuilding the R-trees.
func (c *Catalog) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("metadata: decoding catalog: %w", err)
	}
	// Images saved before catalogs were versioned carry Version 0 and
	// descriptors stamped 0: normalize both to version 1 so visibility
	// arithmetic (Since < v <= Until) treats them as initially loaded.
	version := snap.Version
	if version < 1 {
		version = 1
	}
	// Corruption guard (before installing anything, so a rejected image
	// leaves the catalog untouched): a chunk claiming a commit version
	// beyond the snapshot's committed version describes an append the
	// snapshot never saw. Silently raising the catalog version to cover it
	// would launder a torn or tampered image into a "newer" dataset.
	for _, descs := range snap.Chunks {
		for _, d := range descs {
			if d.Version < 1 {
				d.Version = 1
			}
			if d.Version > version {
				return fmt.Errorf("metadata: corrupt catalog image: chunk (%d,%d) at version %d exceeds committed version %d",
					d.Table, d.Chunk, d.Version, version)
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byName = make(map[string]*TableDef, len(snap.Tables))
	c.byID = make(map[int32]*TableDef, len(snap.Tables))
	c.chunks = snap.Chunks
	if c.chunks == nil {
		c.chunks = make(map[int32][]*chunk.Desc)
	}
	c.trees = make(map[int32]*rtree.Tree, len(snap.Tables))
	c.nextTable = snap.NextTable
	c.version = version
	for i := range snap.Tables {
		def := snap.Tables[i]
		c.byName[def.Name] = &def
		c.byID[def.ID] = &def
		// Rebuild the spatial index with STR bulk loading: O(n log n) and
		// near-full node occupancy, versus repeated splits on re-insertion.
		descs := c.chunks[def.ID]
		boxes := make([]bbox.Box, len(descs))
		ids := make([]int64, len(descs))
		for k, d := range descs {
			boxes[k] = coordBox(def.Schema, d.Bounds)
			ids[k] = int64(d.Chunk)
		}
		c.trees[def.ID] = rtree.BulkLoad(len(def.Schema.CoordIndexes()), 0, boxes, ids)
	}
	return nil
}
