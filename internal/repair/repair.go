// Package repair closes the storage tier's availability loop. PR 2 made
// reads survive node death (replica failover, breakers); without repair a
// crashed node stays routed-around forever and every crash permanently
// lowers the replication factor. The Manager watches the chaos schedule's
// node lifecycle, runs catch-up replay when a node returns — diffing the
// node's store against the catalog's version history and copying the bytes
// of append batches it missed from surviving replicas — and periodically
// sweeps the catalog for under-replicated chunks, re-replicating them onto
// healthy nodes (anti-entropy).
//
// Two invariants govern every byte it moves:
//
//   - Durable before visible: a placement is committed to the catalog
//     (Catalog.AddReplica) only after its bytes are durable in the
//     destination node's store — the same ordering the ingest path uses —
//     so the instant routing can choose a placement, it can read it.
//   - Charged and capped: repair traffic flows through the throttled simio
//     disks and NICs of the nodes involved, plus a dedicated repair
//     bandwidth throttle, so convergence pays modeled I/O like any query
//     but cannot starve the query path.
package repair

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"sciview/internal/chunk"
	"sciview/internal/cluster"
	"sciview/internal/fault"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/simio"
)

// Config assembles a Manager.
type Config struct {
	// Cluster is the platform being repaired.
	Cluster *cluster.Cluster
	// Replicas is the configured replication factor (total placements per
	// chunk, primary included), clamped to the storage node count. 0 infers
	// it from the catalog's current maximum placement count.
	Replicas int
	// Interval is the anti-entropy sweep period. 0 means DefaultInterval.
	Interval time.Duration
	// Bandwidth caps repair traffic in bytes/second on top of the per-node
	// disk and NIC throttles (0 = uncapped).
	Bandwidth float64
	// Metrics, when set, registers the sciview_repair_* counters, the
	// under-replication gauge and the per-node state/lag gauges.
	Metrics *metrics.Registry
}

// DefaultInterval is the sweep period when Config.Interval is 0.
const DefaultInterval = 500 * time.Millisecond

// Stats is a point-in-time snapshot of repair activity, the shape
// surfaced through the service stats RPC and the bench report.
type Stats struct {
	// CatchUps counts completed catch-up replays (node rejoins).
	CatchUps int64
	// ChunksRepaired counts placements laid by catch-up and anti-entropy.
	ChunksRepaired int64
	// BytesRepaired is the payload bytes those placements moved.
	BytesRepaired int64
	// ObjectsRebuilt counts node-local objects reconstructed from peers
	// (store wipe or truncation discovered at rejoin).
	ObjectsRebuilt int64
	// AlreadyPlaced counts placement commits that found the catalog already
	// converged (idempotent overlap between catch-up and the sweep).
	AlreadyPlaced int64
	// Errors counts failed copy or rebuild attempts (retried next sweep).
	Errors int64
	// Sweeps counts completed anti-entropy passes.
	Sweeps int64
	// UnderReplicated is the last sweep's count of chunks below the
	// replication factor on available nodes.
	UnderReplicated int64
	// NodeStates is each storage node's lifecycle state ("up", "down",
	// "rejoining").
	NodeStates []string
	// VersionsBehind is each storage node's catalog-version lag: 0 for a
	// converged node, head−synced for one that is down or rejoining.
	VersionsBehind []int64
}

// Zero reports whether no repair activity was recorded.
func (s Stats) Zero() bool {
	for _, v := range s.VersionsBehind {
		if v != 0 {
			return false
		}
	}
	return s.CatchUps == 0 && s.ChunksRepaired == 0 && s.BytesRepaired == 0 &&
		s.ObjectsRebuilt == 0 && s.AlreadyPlaced == 0 && s.Errors == 0 &&
		s.UnderReplicated == 0
}

// Manager owns node lifecycle transitions and runs the repair loop. Start
// it once; Kick nudges it out of its sweep interval (the fault injector's
// restart notification is wired here so rejoin begins without polling lag).
type Manager struct {
	cfg      Config
	cl       *cluster.Cluster
	replicas int
	bw       *simio.Throttle

	mu     sync.Mutex
	synced []int64 // per-node: last catalog version fully absorbed
	stats  Stats

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	met managerMetrics
}

type managerMetrics struct {
	catchups      *metrics.Counter
	chunks        *metrics.Counter
	bytes         *metrics.Counter
	rebuilds      *metrics.Counter
	alreadyPlaced *metrics.Counter
	errors        *metrics.Counter
	sweeps        *metrics.Counter
	underRep      *metrics.Gauge
	nodeState     []*metrics.Gauge
	nodeLag       []*metrics.Gauge
}

// New builds a Manager over the cluster. Nodes start converged: synced at
// the catalog's current version.
func New(cfg Config) (*Manager, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("repair: nil cluster")
	}
	cl := cfg.Cluster
	replicas := cfg.Replicas
	if replicas == 0 {
		replicas = InferReplicas(cl.Catalog)
	}
	if replicas > len(cl.Storage) {
		replicas = len(cl.Storage)
	}
	if replicas < 1 {
		replicas = 1
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	m := &Manager{
		cfg:      cfg,
		cl:       cl,
		replicas: replicas,
		bw:       simio.NewThrottle(cfg.Bandwidth),
		synced:   make([]int64, len(cl.Storage)),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	head := cl.Catalog.Version()
	for i := range m.synced {
		m.synced[i] = head
	}
	reg := cfg.Metrics // nil-safe: nil registry hands out no-op instruments
	m.met = managerMetrics{
		catchups:      reg.Counter("sciview_repair_catchups_total", "Completed catch-up replays (node rejoins)."),
		chunks:        reg.Counter("sciview_repair_chunks_total", "Chunk placements laid by repair."),
		bytes:         reg.Counter("sciview_repair_bytes_total", "Payload bytes moved by repair."),
		rebuilds:      reg.Counter("sciview_repair_rebuilds_total", "Node-local objects rebuilt from surviving replicas."),
		alreadyPlaced: reg.Counter("sciview_repair_already_placed_total", "Placement commits that found the catalog already converged."),
		errors:        reg.Counter("sciview_repair_errors_total", "Failed repair copy or rebuild attempts."),
		sweeps:        reg.Counter("sciview_repair_sweeps_total", "Completed anti-entropy sweeps."),
		underRep:      reg.Gauge("sciview_underreplicated_chunks", "Chunks below the replication factor on available nodes, as of the last sweep."),
	}
	for i := range cl.Storage {
		node := strconv.Itoa(i)
		m.met.nodeState = append(m.met.nodeState,
			reg.Gauge("sciview_node_state", "Storage node lifecycle (0 up, 1 down, 2 rejoining).", "node", node))
		m.met.nodeLag = append(m.met.nodeLag,
			reg.Gauge("sciview_node_versions_behind", "Catalog versions a storage node has not absorbed.", "node", node))
	}
	// Restart notifications cut the polling lag between a node's revival
	// and the start of its catch-up.
	cl.Config.Faults.SetOnRestart(func(string) { m.Kick() })
	return m, nil
}

// InferReplicas returns the catalog's current maximum placement count —
// the replication factor the dataset was loaded with.
func InferReplicas(cat *metadata.Catalog) int {
	max := 1
	for _, d := range cat.ChunksSince(0) {
		if n := 1 + len(d.Replicas); n > max {
			max = n
		}
	}
	return max
}

// Replicas returns the replication factor the manager converges toward.
func (m *Manager) Replicas() int { return m.replicas }

// Start launches the repair loop.
func (m *Manager) Start() {
	go m.loop()
}

// Stop terminates the loop and waits for the in-flight pass to finish.
func (m *Manager) Stop() {
	select {
	case <-m.stop:
		return // already stopped
	default:
	}
	close(m.stop)
	<-m.done
}

// Kick nudges the loop to run a pass now instead of at the next interval.
// Never blocks; safe from the injector's I/O-path callback.
func (m *Manager) Kick() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

func (m *Manager) loop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		m.tick()
		select {
		case <-m.stop:
			return
		case <-t.C:
		case <-m.kick:
		}
	}
}

// tick is one repair pass: reconcile node lifecycles with the fault
// injector's view, run catch-up for every node that returned, then sweep
// for under-replication.
func (m *Manager) tick() {
	for i := range m.cl.Storage {
		down := m.cl.Config.Faults.Down(fault.StorageNode(i))
		state := m.cl.StorageState(i)
		switch {
		case down && state != cluster.NodeDown:
			// Failure detection: routing deprioritizes the node and ingest
			// stops placing on it. Its version lag starts accruing.
			m.cl.SetStorageState(i, cluster.NodeDown)
		case !down && state != cluster.NodeUp:
			// The node is back. Rejoining = readable-as-fallback but not
			// trusted for placement until caught up.
			m.cl.SetStorageState(i, cluster.NodeRejoining)
			if err := m.catchUp(i); err != nil {
				m.noteError()
				continue // still rejoining; retried next pass
			}
			m.cl.SetStorageState(i, cluster.NodeUp)
		}
	}
	m.sweep()
	m.publish()
}

// catchUp replays what storage node `node` missed: it verifies every
// node-local object referenced by placements naming the node (rebuilding
// from surviving replicas any the store lost), then absorbs copies of the
// chunks committed while it was dark, and finally marks the node synced at
// the catalog version observed when the replay began.
func (m *Manager) catchUp(node int) error {
	head := m.cl.Catalog.Version()

	// Phase 1: the store may have lost objects with the node (wipe,
	// truncation). Placements the catalog already trusts must be readable
	// the instant routing prefers this node again.
	broken, err := m.VerifyNode(node)
	if err != nil {
		return err
	}
	for _, obj := range broken {
		if err := m.rebuildObject(node, obj); err != nil {
			return fmt.Errorf("repair: rebuilding %q on node %d: %w", obj, node, err)
		}
	}

	// Phase 2: chunks committed while the node was down were placed
	// elsewhere (ingest avoids down nodes). Absorb a copy of every such
	// chunk still below the replication factor, preferring this node as
	// the destination so the missed appends land here.
	since := m.syncedVersion(node)
	for _, d := range m.cl.Catalog.ChunksSince(since) {
		nodes, err := m.cl.Catalog.ChunkNodes(d.Table, d.Chunk)
		if err != nil {
			return err
		}
		if len(nodes) >= m.replicas || holds(nodes, node) {
			continue
		}
		if err := m.copyChunk(d, node); err != nil {
			return err
		}
	}

	m.mu.Lock()
	m.synced[node] = head
	m.stats.CatchUps++
	m.mu.Unlock()
	m.met.catchups.Inc()
	return nil
}

// VerifyNode checks that every placement naming the node is durably
// readable in its store, returning the (sorted by first reference) object
// names whose bytes are missing or truncated.
func (m *Manager) VerifyNode(node int) ([]string, error) {
	store := m.cl.Storage[node].Disk.Store()
	return VerifyStore(m.cl.Catalog, node, store.Size), nil
}

// VerifyStore is the store-level integrity check behind VerifyNode: it
// reports the objects on storage node `node` whose catalog placements are
// not durably readable at their required sizes (missing or truncated).
// size reads an object's current length; an error means missing. It needs
// only a catalog and a store, so a standalone BDS process (sciview-node)
// can run the same check the Manager's rejoin path uses.
func VerifyStore(cat *metadata.Catalog, node int, size func(object string) (int64, error)) []string {
	need := make(map[string]int64) // object -> required minimum size
	var order []string
	for _, d := range cat.ChunksSince(0) {
		obj, off, ok := cat.LocateOn(d.Table, d.Chunk, node)
		if !ok {
			continue
		}
		if _, seen := need[obj]; !seen {
			order = append(order, obj)
		}
		if end := off + d.Size; end > need[obj] {
			need[obj] = end
		}
	}
	var broken []string
	for _, obj := range order {
		sz, err := size(obj)
		if err != nil || sz < need[obj] {
			broken = append(broken, obj)
		}
	}
	return broken
}

// rebuildObject reconstructs one node-local object from surviving
// replicas: every chunk the catalog places in that object on that node is
// read from a peer and written back at its recorded offset, then the whole
// object is stored atomically (Put) through the node's throttled disk.
func (m *Manager) rebuildObject(node int, object string) error {
	type piece struct {
		d   *chunk.Desc
		off int64
	}
	var pieces []piece
	var size int64
	for _, d := range m.cl.Catalog.ChunksSince(0) {
		obj, off, ok := m.cl.Catalog.LocateOn(d.Table, d.Chunk, node)
		if !ok || obj != object {
			continue
		}
		pieces = append(pieces, piece{d, off})
		if end := off + d.Size; end > size {
			size = end
		}
	}
	buf := make([]byte, size)
	for _, p := range pieces {
		data, _, err := m.readFromPeer(p.d, node)
		if err != nil {
			return err
		}
		copy(buf[p.off:p.off+p.d.Size], data)
	}
	// Durable before visible: the placements already exist in the catalog,
	// so the object must be complete before it lands. Put replaces it in
	// one operation through the node's write throttle.
	if err := m.cl.Storage[node].Disk.Put(object, buf); err != nil {
		return err
	}
	m.mu.Lock()
	m.stats.ObjectsRebuilt++
	m.stats.BytesRepaired += size
	m.mu.Unlock()
	m.met.rebuilds.Inc()
	m.met.bytes.Add(size)
	return nil
}

// readFromPeer reads a chunk's bytes from a surviving copy on a node other
// than `not`, preferring available nodes, charging the source disk, the
// repair bandwidth cap and both NICs.
func (m *Manager) readFromPeer(d *chunk.Desc, not int) ([]byte, int, error) {
	nodes, err := m.cl.Catalog.ChunkNodes(d.Table, d.Chunk)
	if err != nil {
		return nil, -1, err
	}
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for _, src := range nodes {
			if src == not {
				continue
			}
			// First pass: only available sources. Second: anything — a
			// stale lifecycle view must not fail a rebuild the bytes could
			// serve.
			if pass == 0 && !m.cl.StorageAvailable(src) {
				continue
			}
			obj, off, ok := m.cl.Catalog.LocateOn(d.Table, d.Chunk, src)
			if !ok {
				continue
			}
			data, err := m.cl.Storage[src].Disk.ReadRange(obj, off, d.Size)
			if err != nil {
				lastErr = err
				continue
			}
			simio.Wait(m.bw.Reserve(d.Size))
			simio.Transfer(m.cl.Storage[src].NIC, m.cl.Storage[not].NIC, d.Size)
			return data, src, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("repair: chunk %v has no copy outside node %d", d.ID(), not)
	}
	return nil, -1, lastErr
}

// copyChunk lays a new placement of chunk d on dst: bytes from a surviving
// replica, appended to dst's "repair/<object>" through its throttled disk,
// committed to the catalog only once durable. A concurrent commit of the
// same placement (ErrAlreadyPlaced) counts as convergence, not failure.
func (m *Manager) copyChunk(d *chunk.Desc, dst int) error {
	data, _, err := m.readFromPeer(d, dst)
	if err != nil {
		return err
	}
	disk := m.cl.Storage[dst].Disk
	obj := "repair/" + d.Object
	off, err := disk.Size(obj)
	if err != nil {
		off = 0 // object not created yet
	}
	if err := disk.Append(obj, data); err != nil {
		return err
	}
	err = m.cl.Catalog.AddReplica(d.Table, d.Chunk, chunk.Replica{Node: dst, Object: obj, Offset: off})
	if err != nil {
		if errors.Is(err, metadata.ErrAlreadyPlaced) {
			m.mu.Lock()
			m.stats.AlreadyPlaced++
			m.mu.Unlock()
			m.met.alreadyPlaced.Inc()
			return nil
		}
		return err
	}
	m.mu.Lock()
	m.stats.ChunksRepaired++
	m.stats.BytesRepaired += d.Size
	m.mu.Unlock()
	m.met.chunks.Inc()
	m.met.bytes.Add(d.Size)
	return nil
}

// sweep is one anti-entropy pass: count each chunk's placements on
// available nodes; chunks below the replication factor are re-replicated
// onto healthy nodes not yet holding them. Chunks that cannot currently be
// fixed (no healthy destination or no reachable source) stay counted so
// the gauge reflects real exposure.
func (m *Manager) sweep() {
	var under int64
	for _, d := range m.cl.Catalog.ChunksSince(0) {
		nodes, err := m.cl.Catalog.ChunkNodes(d.Table, d.Chunk)
		if err != nil {
			continue
		}
		avail := 0
		for _, n := range nodes {
			if m.cl.StorageAvailable(n) {
				avail++
			}
		}
		if avail >= m.replicas {
			continue
		}
		// Re-replicate onto healthy nodes that hold no copy, scanning
		// round-robin from the primary for deterministic placement.
		total := len(m.cl.Storage)
		for offset := 1; offset < total && avail < m.replicas; offset++ {
			dst := (d.Node + offset) % total
			if !m.cl.StorageAvailable(dst) || holds(nodes, dst) {
				continue
			}
			if err := m.copyChunk(d, dst); err != nil {
				m.noteError()
				break // source trouble: retried next sweep
			}
			nodes = append(nodes, dst)
			avail++
		}
		if avail < m.replicas {
			under++
		}
	}
	m.mu.Lock()
	m.stats.Sweeps++
	m.stats.UnderReplicated = under
	m.mu.Unlock()
	m.met.sweeps.Inc()
	m.met.underRep.Set(under)
}

// publish refreshes the per-node gauges.
func (m *Manager) publish() {
	head := m.cl.Catalog.Version()
	m.mu.Lock()
	synced := append([]int64(nil), m.synced...)
	m.mu.Unlock()
	for i := range m.cl.Storage {
		m.met.nodeState[i].Set(int64(m.cl.StorageState(i)))
		lag := int64(0)
		if m.cl.StorageState(i) != cluster.NodeUp && head > synced[i] {
			lag = head - synced[i]
		}
		m.met.nodeLag[i].Set(lag)
	}
}

func (m *Manager) syncedVersion(node int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.synced[node]
}

func (m *Manager) noteError() {
	m.mu.Lock()
	m.stats.Errors++
	m.mu.Unlock()
	m.met.errors.Inc()
}

// Stats snapshots repair activity, including per-node lifecycle states and
// version lag.
func (m *Manager) Stats() Stats {
	head := m.cl.Catalog.Version()
	m.mu.Lock()
	s := m.stats
	s.NodeStates = make([]string, len(m.synced))
	s.VersionsBehind = make([]int64, len(m.synced))
	for i, v := range m.synced {
		state := m.cl.StorageState(i)
		s.NodeStates[i] = state.String()
		if state != cluster.NodeUp && head > v {
			s.VersionsBehind[i] = head - v
		}
	}
	m.mu.Unlock()
	return s
}

// Converged reports whether the tier is healthy: every node up, nobody
// behind the catalog, and the last sweep found no under-replication.
func (m *Manager) Converged() bool {
	s := m.Stats()
	if s.UnderReplicated != 0 {
		return false
	}
	for i, st := range s.NodeStates {
		if st != "up" || s.VersionsBehind[i] != 0 {
			return false
		}
	}
	return true
}

// holds reports whether node appears in nodes.
func holds(nodes []int, node int) bool {
	for _, n := range nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Audit is the convergence proof for tests and the bench report: every
// chunk must hold exactly min(replicas, nodes) placements, every
// placement's bytes must be durable in its node's store, and every copy
// must be byte-identical to the primary. Reads go straight to the stores
// (an assertion, not modeled traffic).
func (m *Manager) Audit() error {
	want := m.replicas
	if n := len(m.cl.Storage); want > n {
		want = n
	}
	for _, d := range m.cl.Catalog.ChunksSince(0) {
		nodes, err := m.cl.Catalog.ChunkNodes(d.Table, d.Chunk)
		if err != nil {
			return err
		}
		if len(nodes) < want {
			return fmt.Errorf("repair: audit: chunk %v has %d placements, want %d", d.ID(), len(nodes), want)
		}
		var primary []byte
		for _, n := range nodes {
			obj, off, ok := m.cl.Catalog.LocateOn(d.Table, d.Chunk, n)
			if !ok {
				return fmt.Errorf("repair: audit: chunk %v placement on node %d not locatable", d.ID(), n)
			}
			store := m.cl.Storage[n].Disk.Store()
			if size, err := store.Size(obj); err != nil || size < off+d.Size {
				return fmt.Errorf("repair: audit: chunk %v on node %d: %q short (%d < %d): %v",
					d.ID(), n, obj, size, off+d.Size, err)
			}
			data, err := store.ReadRange(obj, off, d.Size)
			if err != nil {
				return fmt.Errorf("repair: audit: chunk %v on node %d: %w", d.ID(), n, err)
			}
			if primary == nil {
				primary = data // first listed node is the primary
				continue
			}
			if !bytes.Equal(primary, data) {
				return fmt.Errorf("repair: audit: chunk %v on node %d diverges from primary", d.ID(), n)
			}
		}
	}
	return nil
}
