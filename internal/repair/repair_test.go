package repair

import (
	"testing"
	"time"

	"sciview/internal/chunk"
	"sciview/internal/cluster"
	"sciview/internal/fault"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/retry"
)

// testRig generates a small replicated dataset over `nodes` storage nodes,
// assembles a cluster with fault injection, and builds (without starting)
// a repair manager converging toward `replicas` placements per chunk.
func testRig(t *testing.T, nodes, replicas int) (*cluster.Cluster, *fault.Injector, *Manager, *oilres.Dataset) {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid:         partition.D(8, 8, 4),
		LeftPart:     partition.D(2, 2, 2),
		RightPart:    partition.D(2, 2, 2),
		StorageNodes: nodes,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := oilres.Replicate(ds.Catalog, ds.Stores, replicas); err != nil {
		t.Fatal(err)
	}
	inj := fault.New()
	cl, err := cluster.New(cluster.Config{
		StorageNodes: nodes, ComputeNodes: 1, CacheBytes: 8 << 20,
		Faults:           inj,
		Retry:            retry.Policy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond},
		BreakerThreshold: 3, BreakerCooldown: 10 * time.Millisecond,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Cluster: cl, Replicas: replicas, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return cl, inj, m, ds
}

func TestInferReplicas(t *testing.T) {
	_, _, m, ds := testRig(t, 4, 2)
	if got := InferReplicas(ds.Catalog); got != 2 {
		t.Fatalf("InferReplicas = %d, want 2", got)
	}
	if m.Replicas() != 2 {
		t.Fatalf("Replicas() = %d, want 2", m.Replicas())
	}
}

func TestSweepRestoresReplicationFactor(t *testing.T) {
	cl, inj, m, _ := testRig(t, 4, 2)

	// Healthy tier: one pass finds nothing to do and the tier audits clean.
	m.tick()
	if s := m.Stats(); s.UnderReplicated != 0 || s.ChunksRepaired != 0 {
		t.Fatalf("healthy sweep: %+v", s)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	if !m.Converged() {
		t.Fatal("healthy tier not converged")
	}

	// Crash a node: every chunk with a copy there drops to one available
	// placement, and the sweep re-replicates onto the remaining nodes.
	inj.Kill(fault.StorageNode(0))
	m.tick()
	if st := cl.StorageState(0); st != cluster.NodeDown {
		t.Fatalf("node 0 state = %v after crash, want down", st)
	}
	s := m.Stats()
	if s.ChunksRepaired == 0 || s.BytesRepaired == 0 {
		t.Fatalf("sweep repaired nothing: %+v", s)
	}
	if s.UnderReplicated != 0 {
		t.Fatalf("under-replicated after sweep with 3 healthy nodes: %+v", s)
	}
	// Every chunk again has >= 2 placements with byte-identical copies.
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	// Down node -> not converged.
	if m.Converged() {
		t.Fatal("converged with a node down")
	}

	// Revive: the node rejoins (store intact, nothing missed) and the tier
	// converges.
	inj.Revive(fault.StorageNode(0))
	m.tick()
	if st := cl.StorageState(0); st != cluster.NodeUp {
		t.Fatalf("node 0 state = %v after rejoin, want up", st)
	}
	if !m.Converged() {
		t.Fatalf("not converged after rejoin: %+v", m.Stats())
	}
	if s := m.Stats(); s.CatchUps != 1 {
		t.Fatalf("CatchUps = %d, want 1", s.CatchUps)
	}
}

func TestSweepCountsUnfixableExposure(t *testing.T) {
	// 2 nodes, RF2: with one node down there is no healthy destination, so
	// the sweep must report the exposure rather than claim convergence.
	_, inj, m, ds := testRig(t, 2, 2)
	inj.Kill(fault.StorageNode(1))
	m.tick()
	s := m.Stats()
	total := len(ds.Catalog.ChunksSince(0))
	if s.UnderReplicated != int64(total) {
		t.Fatalf("UnderReplicated = %d, want all %d chunks", s.UnderReplicated, total)
	}
	if s.ChunksRepaired != 0 {
		t.Fatalf("repaired %d chunks with no healthy destination", s.ChunksRepaired)
	}
	inj.Revive(fault.StorageNode(1))
	m.tick()
	if s := m.Stats(); s.UnderReplicated != 0 {
		t.Fatalf("UnderReplicated = %d after revival", s.UnderReplicated)
	}
}

func TestCopyChunkIdempotent(t *testing.T) {
	cl, _, m, ds := testRig(t, 4, 2)
	d := ds.Catalog.Chunks(ds.Left.ID)[0]
	nodes, _ := cl.Catalog.ChunkNodes(d.Table, d.Chunk)
	dst := -1
	for n := 0; n < 4; n++ {
		already := false
		for _, held := range nodes {
			if held == n {
				already = true
			}
		}
		if !already {
			dst = n
			break
		}
	}
	if dst < 0 {
		t.Fatal("no free destination node")
	}
	if err := m.copyChunk(d, dst); err != nil {
		t.Fatalf("first copy: %v", err)
	}
	if err := m.copyChunk(d, dst); err != nil {
		t.Fatalf("second copy must be idempotent, got %v", err)
	}
	s := m.Stats()
	if s.ChunksRepaired != 1 || s.AlreadyPlaced != 1 {
		t.Fatalf("stats = %+v, want 1 repaired + 1 already-placed", s)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestCatchUpRebuildsWipedStore(t *testing.T) {
	cl, inj, m, ds := testRig(t, 3, 2)

	// Take node 1 down, then wipe its store: the crash lost the disk.
	inj.Kill(fault.StorageNode(1))
	m.tick()
	store := ds.Stores[1]
	objs, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) == 0 {
		t.Fatal("node 1 store unexpectedly empty before wipe")
	}
	for _, obj := range objs {
		if err := store.Delete(obj); err != nil {
			t.Fatal(err)
		}
	}
	broken, err := m.VerifyNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) == 0 {
		t.Fatal("VerifyNode found nothing broken after a full wipe")
	}

	// The node returns: catch-up must rebuild every object it is supposed
	// to hold from surviving replicas before trusting it.
	inj.Revive(fault.StorageNode(1))
	m.tick()
	if st := cl.StorageState(1); st != cluster.NodeUp {
		t.Fatalf("node 1 state = %v after rebuild, want up", st)
	}
	s := m.Stats()
	if s.ObjectsRebuilt == 0 {
		t.Fatalf("no objects rebuilt: %+v", s)
	}
	if broken, _ := m.VerifyNode(1); len(broken) != 0 {
		t.Fatalf("still broken after rebuild: %v", broken)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	if !m.Converged() {
		t.Fatal("not converged after rebuild")
	}
}

func TestCatchUpAbsorbsMissedAppends(t *testing.T) {
	cl, _, m, ds := testRig(t, 3, 2)

	// Simulate a batch committed while node 2 was dark: a new chunk placed
	// on node 0 only (ingest avoided the down node; replication skipped it
	// too, leaving it under-replicated).
	base := ds.Catalog.Chunks(ds.Left.ID)[0]
	data, err := ds.Stores[base.Node].ReadRange(base.Object, base.Offset, base.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Stores[0].Put("append/T1/node0.dat", data); err != nil {
		t.Fatal(err)
	}
	d := &chunk.Desc{
		Table: base.Table, Object: "append/T1/node0.dat", Offset: 0, Size: base.Size,
		Node: 0, Format: base.Format, Attrs: base.Attrs, Rows: base.Rows, Bounds: base.Bounds,
	}
	if _, err := ds.Catalog.AppendVersion([]*chunk.Desc{d}); err != nil {
		t.Fatal(err)
	}

	// Node 2 rejoins knowing only the pre-append version.
	cl.SetStorageState(2, cluster.NodeRejoining)
	if err := m.catchUp(2); err != nil {
		t.Fatal(err)
	}
	cl.SetStorageState(2, cluster.NodeUp)

	nodes, err := cl.Catalog.ChunkNodes(d.Table, d.Chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[1] != 2 {
		t.Fatalf("appended chunk placements = %v, want [0 2]", nodes)
	}
	if lag := m.Stats().VersionsBehind[2]; lag != 0 {
		t.Fatalf("node 2 still %d versions behind after catch-up", lag)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerLoopAndKick(t *testing.T) {
	_, inj, m, _ := testRig(t, 3, 2)
	m.Start()
	defer m.Stop()

	inj.Kill(fault.StorageNode(0))
	waitFor(t, func() bool { return m.Stats().NodeStates[0] == "down" }, "down detection")
	inj.Revive(fault.StorageNode(0))
	m.Kick()
	waitFor(t, func() bool { return m.Converged() }, "convergence after revival")
	m.Stop()
	m.Stop() // idempotent
}

func TestReadFromPeerNoSource(t *testing.T) {
	_, _, m, ds := testRig(t, 3, 1) // RF1: single placements
	d := ds.Catalog.Chunks(ds.Left.ID)[0]
	if _, _, err := m.readFromPeer(d, d.Node); err == nil {
		t.Fatal("readFromPeer found a peer for an unreplicated chunk")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
