package trace

import (
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{})
	r.Span("n", KindFetch, "d", time.Now(), 1, 1)
	r.Reset()
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if got := r.Events(); got != nil {
		t.Errorf("nil recorder returned events: %v", got)
	}
}

func TestRecordAndSummarize(t *testing.T) {
	r := New()
	base := time.Now()
	r.Add(Event{Node: "joiner-0", Kind: KindFetch, Start: base, Dur: 10 * time.Millisecond, Bytes: 100, Items: 5})
	r.Add(Event{Node: "joiner-0", Kind: KindBuild, Start: base.Add(10 * time.Millisecond), Dur: 5 * time.Millisecond, Items: 5})
	r.Add(Event{Node: "joiner-1", Kind: KindFetch, Start: base.Add(2 * time.Millisecond), Dur: 20 * time.Millisecond, Bytes: 300, Items: 9})
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	// Start-ordered.
	if events[0].Node != "joiner-0" || events[1].Node != "joiner-1" {
		t.Errorf("order wrong: %v", events)
	}
	s := Summarize(events)
	if s.Events != 3 {
		t.Errorf("summary events = %d", s.Events)
	}
	// Span: first start to last end = 22ms? joiner-1 ends at 22ms,
	// joiner-0 build ends at 15ms → 22ms.
	if s.Span != 22*time.Millisecond {
		t.Errorf("span = %v", s.Span)
	}
	var fetch *KindSummary
	for i := range s.Kinds {
		if s.Kinds[i].Kind == KindFetch {
			fetch = &s.Kinds[i]
		}
	}
	if fetch == nil || fetch.Count != 2 || fetch.Bytes != 400 || fetch.Items != 14 ||
		fetch.Busy != 30*time.Millisecond {
		t.Errorf("fetch summary = %+v", fetch)
	}
	if len(s.Nodes) != 2 || s.Nodes[0].Node != "joiner-0" || s.Nodes[0].Count != 2 {
		t.Errorf("node summaries = %+v", s.Nodes)
	}
	var sb strings.Builder
	s.Print(&sb)
	for _, want := range []string{"3 events", "fetch", "joiner-1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("print missing %q:\n%s", want, sb.String())
		}
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Add(Event{Kind: KindProbe})
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset failed")
	}
	Summarize(nil).Print(&strings.Builder{}) // empty summary prints fine
}
