// Package trace records per-run execution events — sub-table fetches,
// hash builds and probes, bucket spills and reads — with wall-clock spans
// and byte counts, and summarizes them per event kind and per node. It is
// the observability layer behind the query tools' -trace flag: where the
// byte counters say *how much* moved, the trace says *when* and *where*,
// exposing serialization, stragglers and phase overlap.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the query engines.
const (
	KindFetch      Kind = "fetch"      // BDS → compute sub-table transfer
	KindBuild      Kind = "build"      // hash-table build
	KindProbe      Kind = "probe"      // hash-table probe
	KindShip       Kind = "ship"       // GH record batch storage → joiner
	KindSpill      Kind = "spill"      // GH bucket write to scratch disk
	KindBucketRead Kind = "bucketread" // GH bucket read back
	KindRecover    Kind = "recover"    // work re-run after a node failure
	KindPrefetch   Kind = "prefetch"   // IJ lookahead fetch overlapping build/probe
)

// Event kinds emitted by the concurrent query service.
const (
	KindQueue Kind = "queue" // admission wait: submit → dispatch
	KindQuery Kind = "query" // one admitted query's execution
)

// Event kinds emitted by the streaming plan executor.
const (
	// KindOperator is one plan operator's lifetime: detail is the
	// operator description, bytes/items the batch bytes and rows that
	// crossed its Next boundary.
	KindOperator Kind = "operator"
)

// Event is one recorded span.
type Event struct {
	Node   string // owning node, e.g. "joiner-2" or "storage-0"
	Kind   Kind
	Detail string // free-form: sub-table id, bucket number, ...
	Start  time.Time
	Dur    time.Duration
	Bytes  int64
	Items  int64 // tuples touched, when meaningful
}

// Recorder collects events. A nil *Recorder is a valid no-op sink, so
// engines can record unconditionally.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether events are being kept.
func (r *Recorder) Enabled() bool { return r != nil }

// Add records one event.
func (r *Recorder) Add(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Span records an event covering [start, now).
func (r *Recorder) Span(node string, kind Kind, detail string, start time.Time, bytes, items int64) {
	if r == nil {
		return
	}
	r.Add(Event{
		Node: node, Kind: kind, Detail: detail,
		Start: start, Dur: time.Since(start),
		Bytes: bytes, Items: items,
	})
}

// Events returns a copy of the recorded events in start order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Reset discards recorded events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// KindSummary aggregates one event kind.
type KindSummary struct {
	Kind  Kind
	Count int
	Bytes int64
	Items int64
	Busy  time.Duration
}

// NodeSummary aggregates one node's activity.
type NodeSummary struct {
	Node  string
	Count int
	Busy  time.Duration
	Bytes int64
}

// Summary is the rollup of a run's events.
type Summary struct {
	Events int
	Span   time.Duration // first start → last end
	Kinds  []KindSummary // sorted by kind
	Nodes  []NodeSummary // sorted by node
}

// Summarize rolls up events.
func Summarize(events []Event) Summary {
	s := Summary{Events: len(events)}
	if len(events) == 0 {
		return s
	}
	kinds := make(map[Kind]*KindSummary)
	nodes := make(map[string]*NodeSummary)
	first := events[0].Start
	var last time.Time
	for _, e := range events {
		if e.Start.Before(first) {
			first = e.Start
		}
		if end := e.Start.Add(e.Dur); end.After(last) {
			last = end
		}
		k := kinds[e.Kind]
		if k == nil {
			k = &KindSummary{Kind: e.Kind}
			kinds[e.Kind] = k
		}
		k.Count++
		k.Bytes += e.Bytes
		k.Items += e.Items
		k.Busy += e.Dur
		n := nodes[e.Node]
		if n == nil {
			n = &NodeSummary{Node: e.Node}
			nodes[e.Node] = n
		}
		n.Count++
		n.Busy += e.Dur
		n.Bytes += e.Bytes
	}
	s.Span = last.Sub(first)
	for _, k := range kinds {
		s.Kinds = append(s.Kinds, *k)
	}
	sort.Slice(s.Kinds, func(i, j int) bool { return s.Kinds[i].Kind < s.Kinds[j].Kind })
	for _, n := range nodes {
		s.Nodes = append(s.Nodes, *n)
	}
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].Node < s.Nodes[j].Node })
	return s
}

// Print renders the summary as aligned text.
func (s Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events over %v\n", s.Events, s.Span.Round(time.Microsecond))
	if s.Events == 0 {
		return
	}
	fmt.Fprintf(w, "%-12s %8s %14s %12s %14s\n", "kind", "count", "bytes", "items", "busy")
	for _, k := range s.Kinds {
		fmt.Fprintf(w, "%-12s %8d %14d %12d %14v\n",
			k.Kind, k.Count, k.Bytes, k.Items, k.Busy.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "%-12s %8s %14s %14s\n", "node", "count", "bytes", "busy")
	for _, n := range s.Nodes {
		fmt.Fprintf(w, "%-12s %8d %14d %14v\n",
			n.Node, n.Count, n.Bytes, n.Busy.Round(time.Microsecond))
	}
}
