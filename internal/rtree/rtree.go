// Package rtree implements Guttman's R-tree with quadratic split, the index
// structure the paper's MetaData Service uses to resolve range predicates to
// chunk ids ("This may be done efficiently using index structures such as
// R-Trees [6]").
//
// The tree stores opaque int64 item ids keyed by bounding box. It is not
// safe for concurrent mutation; the MetaData Service serializes writes and
// the tree is read-mostly after dataset registration.
package rtree

import (
	"fmt"

	"sciview/internal/bbox"
)

// DefaultMaxEntries is Guttman's M parameter; m = M/2 is the minimum fill.
const DefaultMaxEntries = 8

// Tree is an R-tree over items identified by int64 ids.
type Tree struct {
	dims int
	max  int // M: max entries per node
	min  int // m: min entries per node after split
	root *node
	size int

	// path is the root-to-parent stack recorded by chooseLeaf, reused
	// across inserts to avoid allocation.
	path []*node

	// relaxedMin marks bulk-loaded trees, whose tail nodes may legally
	// hold fewer than m entries (STR packs runs, it does not split).
	relaxedMin bool
}

type entry struct {
	box   bbox.Box
	child *node // nil at leaves
	id    int64 // valid at leaves
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty R-tree for boxes of the given dimensionality and
// node capacity maxEntries (>= 4; DefaultMaxEntries if 0).
func New(dims, maxEntries int) *Tree {
	if maxEntries == 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		panic(fmt.Sprintf("rtree: maxEntries %d < 4", maxEntries))
	}
	return &Tree{
		dims: dims,
		max:  maxEntries,
		min:  maxEntries / 2,
		root: &node{leaf: true},
	}
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Dims returns the dimensionality of indexed boxes.
func (t *Tree) Dims() int { return t.dims }

// Insert adds an item with the given bounding box.
func (t *Tree) Insert(box bbox.Box, id int64) {
	if box.Dims() != t.dims {
		panic(fmt.Sprintf("rtree: inserting %d-dim box into %d-dim tree", box.Dims(), t.dims))
	}
	e := entry{box: box.Clone(), id: id}
	leaf := t.chooseLeaf(t.root, e)
	leaf.entries = append(leaf.entries, e)
	t.size++
	t.splitUpward(leaf)
}

// chooseLeaf descends from n to the leaf needing least enlargement to hold
// e (ties broken by smaller volume), recording the path for split
// propagation via parent pointers computed on the fly.
func (t *Tree) chooseLeaf(n *node, e entry) *node {
	t.path = t.path[:0]
	for !n.leaf {
		t.path = append(t.path, n)
		best := 0
		bestEnl := n.entries[0].box.Enlargement(e.box)
		bestVol := n.entries[0].box.Volume()
		for i := 1; i < len(n.entries); i++ {
			enl := n.entries[i].box.Enlargement(e.box)
			vol := n.entries[i].box.Volume()
			if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
				best, bestEnl, bestVol = i, enl, vol
			}
		}
		n.entries[best].box = n.entries[best].box.Union(e.box)
		n = n.entries[best].child
	}
	return n
}

// splitUpward splits n if overfull and propagates splits toward the root.
func (t *Tree) splitUpward(n *node) {
	for {
		if len(n.entries) <= t.max {
			// Parent boxes were already enlarged during descent.
			return
		}
		left, right := t.quadraticSplit(n)
		if n == t.root {
			t.root = &node{
				leaf: false,
				entries: []entry{
					{box: nodeBox(left, t.dims), child: left},
					{box: nodeBox(right, t.dims), child: right},
				},
			}
			return
		}
		parent := t.path[len(t.path)-1]
		t.path = t.path[:len(t.path)-1]
		// Replace n's entry in parent with left, append right.
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries[i] = entry{box: nodeBox(left, t.dims), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, entry{box: nodeBox(right, t.dims), child: right})
		n = parent
	}
}

// quadraticSplit partitions n's entries into two nodes using Guttman's
// quadratic PickSeeds/PickNext heuristics.
func (t *Tree) quadraticSplit(n *node) (*node, *node) {
	ents := n.entries
	// PickSeeds: the pair wasting the most volume if grouped together.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			u := ents[i].box.Union(ents[j].box)
			waste := u.Volume() - ents[i].box.Volume() - ents[j].box.Volume()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	left := &node{leaf: n.leaf, entries: []entry{ents[s1]}}
	right := &node{leaf: n.leaf, entries: []entry{ents[s2]}}
	lbox := ents[s1].box.Clone()
	rbox := ents[s2].box.Clone()
	rest := make([]entry, 0, len(ents)-2)
	for i, e := range ents {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take all remaining entries to reach min fill,
		// assign them wholesale.
		if len(left.entries)+len(rest) == t.min {
			for _, e := range rest {
				left.entries = append(left.entries, e)
				lbox = lbox.Union(e.box)
			}
			break
		}
		if len(right.entries)+len(rest) == t.min {
			for _, e := range rest {
				right.entries = append(right.entries, e)
				rbox = rbox.Union(e.box)
			}
			break
		}
		// PickNext: entry with maximum preference for one group.
		bestIdx, bestDiff := 0, -1.0
		var bestToLeft bool
		for i, e := range rest {
			dl := lbox.Enlargement(e.box)
			dr := rbox.Enlargement(e.box)
			diff := dl - dr
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
				bestToLeft = dl < dr || (dl == dr && lbox.Volume() < rbox.Volume()) ||
					(dl == dr && lbox.Volume() == rbox.Volume() && len(left.entries) <= len(right.entries))
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if bestToLeft {
			left.entries = append(left.entries, e)
			lbox = lbox.Union(e.box)
		} else {
			right.entries = append(right.entries, e)
			rbox = rbox.Union(e.box)
		}
	}
	return left, right
}

func nodeBox(n *node, dims int) bbox.Box {
	b := bbox.Empty(dims)
	for _, e := range n.entries {
		b = b.Union(e.box)
	}
	return b
}

// Search appends to dst the ids of all items whose boxes overlap query, and
// returns the extended slice. Order is unspecified.
func (t *Tree) Search(query bbox.Box, dst []int64) []int64 {
	return searchNode(t.root, query, dst)
}

func searchNode(n *node, q bbox.Box, dst []int64) []int64 {
	for _, e := range n.entries {
		if !e.box.Overlaps(q) {
			continue
		}
		if n.leaf {
			dst = append(dst, e.id)
		} else {
			dst = searchNode(e.child, q, dst)
		}
	}
	return dst
}

// Visit calls fn for every item whose box overlaps query; returning false
// stops the traversal early.
func (t *Tree) Visit(query bbox.Box, fn func(box bbox.Box, id int64) bool) {
	visitNode(t.root, query, fn)
}

func visitNode(n *node, q bbox.Box, fn func(bbox.Box, int64) bool) bool {
	for _, e := range n.entries {
		if !e.box.Overlaps(q) {
			continue
		}
		if n.leaf {
			if !fn(e.box, e.id) {
				return false
			}
		} else if !visitNode(e.child, q, fn) {
			return false
		}
	}
	return true
}

// Delete removes one item with the given id whose stored box equals box.
// It reports whether an item was removed. Underfull nodes are handled by
// reinserting orphaned entries (Guttman's CondenseTree).
func (t *Tree) Delete(box bbox.Box, id int64) bool {
	leaf, idx := findEntry(t.root, box, id)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense()
	return true
}

func findEntry(n *node, box bbox.Box, id int64) (*node, int) {
	for i, e := range n.entries {
		if n.leaf {
			if e.id == id && e.box.Equal(box) {
				return n, i
			}
		} else if e.box.Overlaps(box) {
			if ln, li := findEntry(e.child, box, id); ln != nil {
				return ln, li
			}
		}
	}
	return nil, -1
}

// condense rebuilds the tree if any node is underfull and tightens boxes.
// A full CondenseTree with targeted reinsertion is more efficient; the
// rebuild keeps the implementation small while preserving all invariants,
// and deletes are rare in this system (datasets are append-mostly).
func (t *Tree) condense() {
	var items []entry
	collectLeaves(t.root, &items)
	t.root = &node{leaf: true}
	t.size = 0
	for _, e := range items {
		t.Insert(e.box, e.id)
	}
}

func collectLeaves(n *node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, e := range n.entries {
		collectLeaves(e.child, out)
	}
}

// CheckInvariants validates structural invariants (used by tests):
// every internal entry's box equals the union of its child's boxes; node
// occupancy within [min, max] except the root; uniform leaf depth.
func (t *Tree) CheckInvariants() error {
	depth := -1
	var walk func(n *node, d int, isRoot bool) error
	walk = func(n *node, d int, isRoot bool) error {
		if !isRoot && !t.relaxedMin && (len(n.entries) < t.min || len(n.entries) > t.max) {
			return fmt.Errorf("rtree: node occupancy %d outside [%d,%d]", len(n.entries), t.min, t.max)
		}
		if len(n.entries) > t.max {
			return fmt.Errorf("rtree: node overfull: %d > %d", len(n.entries), t.max)
		}
		if n.leaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("rtree: ragged leaf depth: %d vs %d", d, depth)
			}
			return nil
		}
		for _, e := range n.entries {
			cb := nodeBox(e.child, t.dims)
			if !e.box.Contains(cb) {
				return fmt.Errorf("rtree: entry box %v does not cover child box %v", e.box, cb)
			}
			if err := walk(e.child, d+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, true)
}
