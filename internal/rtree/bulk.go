package rtree

import (
	"sort"

	"sciview/internal/bbox"
)

// BulkLoad builds a tree from all items at once using Sort-Tile-Recursive
// (STR) packing: items are sorted into tiles along each dimension in turn,
// producing fully packed leaves with good spatial locality. Catalog loads
// use it — rebuilding the MetaData Service's index for a large dataset is
// O(n log n) with near-100% node occupancy, versus one-by-one insertion's
// repeated splits.
func BulkLoad(dims, maxEntries int, boxes []bbox.Box, ids []int64) *Tree {
	if len(boxes) != len(ids) {
		panic("rtree: BulkLoad with mismatched boxes and ids")
	}
	t := New(dims, maxEntries)
	if len(boxes) == 0 {
		return t
	}
	entries := make([]entry, len(boxes))
	for i := range boxes {
		if boxes[i].Dims() != dims {
			panic("rtree: BulkLoad box dimensionality mismatch")
		}
		entries[i] = entry{box: boxes[i].Clone(), id: ids[i]}
	}
	level := strPack(entries, t.max, dims, 0, true)
	// Build upper levels until one node remains.
	for len(level) > 1 {
		parents := make([]entry, len(level))
		for i, n := range level {
			parents[i] = entry{box: nodeBox(n, dims), child: n}
		}
		level = strPack(parents, t.max, dims, 0, false)
	}
	t.root = level[0]
	t.size = len(boxes)
	t.relaxedMin = true
	return t
}

// strPack groups entries into nodes of at most max entries by recursively
// tiling along successive dimensions (sorted by box center).
func strPack(entries []entry, max, dims, dim int, leaf bool) []*node {
	if len(entries) <= max {
		n := &node{leaf: leaf, entries: entries}
		return []*node{n}
	}
	if dim >= dims-1 {
		// Last dimension: slice runs of max entries in sorted order.
		sortByCenter(entries, dim)
		var nodes []*node
		for i := 0; i < len(entries); i += max {
			j := i + max
			if j > len(entries) {
				j = len(entries)
			}
			nodes = append(nodes, &node{leaf: leaf, entries: entries[i:j:j]})
		}
		return nodes
	}
	sortByCenter(entries, dim)
	// Number of leaves this subtree will need, tiled into ~sqrt slabs per
	// remaining dimension (the STR recipe: S = ceil((n/max)^(1/k)) slabs).
	nLeaves := (len(entries) + max - 1) / max
	slabs := intCeilRoot(nLeaves, dims-dim)
	perSlab := (len(entries) + slabs - 1) / slabs
	var nodes []*node
	for i := 0; i < len(entries); i += perSlab {
		j := i + perSlab
		if j > len(entries) {
			j = len(entries)
		}
		nodes = append(nodes, strPack(entries[i:j:j], max, dims, dim+1, leaf)...)
	}
	return nodes
}

func sortByCenter(entries []entry, dim int) {
	sort.Slice(entries, func(a, b int) bool {
		ca := entries[a].box.Lo[dim] + entries[a].box.Hi[dim]
		cb := entries[b].box.Lo[dim] + entries[b].box.Hi[dim]
		return ca < cb
	})
}

// intCeilRoot returns ceil(n^(1/k)) for small n, by search.
func intCeilRoot(n, k int) int {
	if n <= 1 || k <= 1 {
		return n
	}
	r := 1
	for pow(r, k) < n {
		r++
	}
	return r
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
		if out < 0 { // overflow guard, unreachable at catalog scales
			return 1 << 62
		}
	}
	return out
}
