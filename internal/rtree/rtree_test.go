package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sciview/internal/bbox"
)

func box2(x0, y0, x1, y1 float64) bbox.Box {
	return bbox.New([]float64{x0, y0}, []float64{x1, y1})
}

func TestEmptyTree(t *testing.T) {
	tr := New(2, 0)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Search(box2(0, 0, 100, 100), nil); len(got) != 0 {
		t.Errorf("search of empty tree returned %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3)
}

func TestInsertAndSearchGrid(t *testing.T) {
	tr := New(2, 4)
	// 10x10 grid of unit boxes, id = 10*i+j.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			tr.Insert(box2(float64(i), float64(j), float64(i)+1, float64(j)+1), int64(10*i+j))
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Query strictly inside cell (3,4).
	got := tr.Search(box2(3.2, 4.2, 3.8, 4.8), nil)
	if len(got) != 1 || got[0] != 34 {
		t.Errorf("point query = %v, want [34]", got)
	}
	// Query covering a 2x2 block of cells (plus boundary-touching neighbors).
	got = tr.Search(box2(0.5, 0.5, 1.5, 1.5), nil)
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	want := []int64{0, 1, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("block query = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block query = %v, want %v", got, want)
		}
	}
	// Query covering everything.
	if got := tr.Search(box2(-1, -1, 20, 20), nil); len(got) != 100 {
		t.Errorf("full query returned %d items", len(got))
	}
	// Disjoint query.
	if got := tr.Search(box2(50, 50, 60, 60), nil); len(got) != 0 {
		t.Errorf("disjoint query returned %v", got)
	}
}

func TestVisitEarlyStop(t *testing.T) {
	tr := New(2, 4)
	for i := 0; i < 20; i++ {
		tr.Insert(box2(float64(i), 0, float64(i)+1, 1), int64(i))
	}
	count := 0
	tr.Visit(box2(-1, -1, 100, 100), func(_ bbox.Box, _ int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visit count = %d, want 5", count)
	}
}

func TestDelete(t *testing.T) {
	tr := New(2, 4)
	for i := 0; i < 30; i++ {
		tr.Insert(box2(float64(i), 0, float64(i)+1, 1), int64(i))
	}
	if !tr.Delete(box2(5, 0, 6, 1), 5) {
		t.Fatal("delete failed")
	}
	if tr.Len() != 29 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	if got := tr.Search(box2(5.4, 0.4, 5.6, 0.6), nil); len(got) != 0 {
		t.Errorf("deleted item still found: %v", got)
	}
	if tr.Delete(box2(5, 0, 6, 1), 5) {
		t.Error("second delete should fail")
	}
	if tr.Delete(box2(6, 0, 7, 1), 999) {
		t.Error("delete of unknown id should fail")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertWrongDimsPanics(t *testing.T) {
	tr := New(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(bbox.New([]float64{0}, []float64{1}), 1)
}

// bruteForce is the reference implementation for property tests.
type bruteForce struct {
	boxes []bbox.Box
	ids   []int64
}

func (b *bruteForce) search(q bbox.Box) []int64 {
	var out []int64
	for i, bx := range b.boxes {
		if bx.Overlaps(q) {
			out = append(out, b.ids[i])
		}
	}
	return out
}

func sortedCopy(s []int64) []int64 {
	c := append([]int64(nil), s...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func eqIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randBox(r *rand.Rand, scale float64) bbox.Box {
	lo := []float64{r.Float64() * scale, r.Float64() * scale, r.Float64() * scale}
	hi := []float64{lo[0] + r.Float64()*scale/4, lo[1] + r.Float64()*scale/4, lo[2] + r.Float64()*scale/4}
	return bbox.New(lo, hi)
}

func TestPropSearchMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(3, 4+r.Intn(6))
		bf := &bruteForce{}
		n := 20 + r.Intn(200)
		for i := 0; i < n; i++ {
			b := randBox(r, 100)
			tr.Insert(b, int64(i))
			bf.boxes = append(bf.boxes, b)
			bf.ids = append(bf.ids, int64(i))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		for q := 0; q < 10; q++ {
			query := randBox(r, 120)
			got := sortedCopy(tr.Search(query, nil))
			want := sortedCopy(bf.search(query))
			if !eqIDs(got, want) {
				t.Logf("query %v: got %v want %v", query, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropInsertDeleteConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(3, 6)
		bf := &bruteForce{}
		n := 50 + r.Intn(100)
		for i := 0; i < n; i++ {
			b := randBox(r, 50)
			tr.Insert(b, int64(i))
			bf.boxes = append(bf.boxes, b)
			bf.ids = append(bf.ids, int64(i))
		}
		// Delete a random half.
		for i := n - 1; i >= 0; i-- {
			if r.Intn(2) == 0 {
				if !tr.Delete(bf.boxes[i], bf.ids[i]) {
					t.Logf("delete of id %d failed", bf.ids[i])
					return false
				}
				bf.boxes = append(bf.boxes[:i], bf.boxes[i+1:]...)
				bf.ids = append(bf.ids[:i], bf.ids[i+1:]...)
			}
		}
		if tr.Len() != len(bf.ids) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		query := bbox.Universe(3)
		return eqIDs(sortedCopy(tr.Search(query, nil)), sortedCopy(bf.search(query)))
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	boxes := make([]bbox.Box, b.N)
	for i := range boxes {
		boxes[i] = randBox(r, 1000)
	}
	b.ResetTimer()
	tr := New(3, 0)
	for i := 0; i < b.N; i++ {
		tr.Insert(boxes[i], int64(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(3, 0)
	for i := 0; i < 10000; i++ {
		tr.Insert(randBox(r, 1000), int64(i))
	}
	queries := make([]bbox.Box, 64)
	for i := range queries {
		queries[i] = randBox(r, 1000)
	}
	var dst []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tr.Search(queries[i%len(queries)], dst[:0])
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var boxes []bbox.Box
	var ids []int64
	incr := New(3, 8)
	for i := 0; i < 500; i++ {
		b := randBox(r, 200)
		boxes = append(boxes, b)
		ids = append(ids, int64(i))
		incr.Insert(b, int64(i))
	}
	bulk := BulkLoad(3, 8, boxes, ids)
	if bulk.Len() != 500 {
		t.Fatalf("bulk Len = %d", bulk.Len())
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 25; q++ {
		query := randBox(r, 220)
		got := sortedCopy(bulk.Search(query, nil))
		want := sortedCopy(incr.Search(query, nil))
		if !eqIDs(got, want) {
			t.Fatalf("query %v: bulk %v, incremental %v", query, got, want)
		}
	}
}

// TestPropBulkLoadMatchesIncremental generalizes the single-seed test
// above into a property: for random datasets, capacities and query loads,
// the STR-packed tree and the incrementally grown tree answer every range
// query with the same id multiset, and both pass the structural checker.
func TestPropBulkLoadMatchesIncremental(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := 4 + r.Intn(12)
		n := r.Intn(300) // include tiny trees: 0, 1, < cap, == cap+1 ...
		boxes := make([]bbox.Box, n)
		ids := make([]int64, n)
		incr := New(3, cap)
		for i := 0; i < n; i++ {
			boxes[i] = randBox(r, 150)
			ids[i] = int64(i)
			incr.Insert(boxes[i], ids[i])
		}
		bulk := BulkLoad(3, cap, boxes, ids)
		if bulk.Len() != n {
			t.Logf("seed %d: bulk Len = %d, want %d", seed, bulk.Len(), n)
			return false
		}
		if err := bulk.CheckInvariants(); err != nil {
			t.Logf("seed %d bulk: %v", seed, err)
			return false
		}
		if err := incr.CheckInvariants(); err != nil {
			t.Logf("seed %d incremental: %v", seed, err)
			return false
		}
		for q := 0; q < 15; q++ {
			query := randBox(r, 170)
			got := sortedCopy(bulk.Search(query, nil))
			want := sortedCopy(incr.Search(query, nil))
			if !eqIDs(got, want) {
				t.Logf("seed %d query %v: bulk %v, incremental %v", seed, query, got, want)
				return false
			}
		}
		// Both must remain mutable and consistent after construction.
		extra := randBox(r, 150)
		bulk.Insert(extra, int64(n))
		incr.Insert(extra, int64(n))
		u := bbox.Universe(3)
		return eqIDs(sortedCopy(bulk.Search(u, nil)), sortedCopy(incr.Search(u, nil)))
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDegenerateBoxes covers zero-extent geometry: point boxes (lo == hi),
// boxes flat along some axes, and exact duplicates. Overlap at a shared
// boundary must count, and duplicates must be individually deletable.
func TestDegenerateBoxes(t *testing.T) {
	point := func(x, y, z float64) bbox.Box {
		return bbox.New([]float64{x, y, z}, []float64{x, y, z})
	}
	tr := New(3, 4)
	bf := &bruteForce{}
	add := func(b bbox.Box, id int64) {
		tr.Insert(b, id)
		bf.boxes = append(bf.boxes, b)
		bf.ids = append(bf.ids, id)
	}
	// A 4x4 lattice of point boxes, some stacked on the same coordinate.
	id := int64(0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			add(point(float64(i), float64(j), 0), id)
			id++
		}
	}
	add(point(1, 1, 0), id) // duplicate of an existing point, distinct id
	dupID := id
	id++
	// Flat boxes: a segment along x and a rectangle with zero z extent.
	add(bbox.New([]float64{0, 2, 0}, []float64{3, 2, 0}), id)
	segID := id
	id++
	add(bbox.New([]float64{0, 0, 0}, []float64{3, 3, 0}), id)
	id++

	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Point query exactly on a lattice site: touches the point box there,
	// its duplicate, the flat rectangle, and (for y=2 sites) the segment.
	queries := []bbox.Box{
		point(1, 1, 0),
		point(2, 2, 0),
		point(0, 0, 0),
		bbox.New([]float64{1, 1, 0}, []float64{1, 2, 0}),
		bbox.New([]float64{0.5, 1.5, 0}, []float64{2.5, 2.5, 0}),
		point(9, 9, 9), // disjoint
	}
	for _, q := range queries {
		got := sortedCopy(tr.Search(q, nil))
		want := sortedCopy(bf.search(q))
		if !eqIDs(got, want) {
			t.Errorf("query %v: got %v want %v", q, got, want)
		}
	}
	// The duplicate point is deletable by id without disturbing the original.
	if !tr.Delete(point(1, 1, 0), dupID) {
		t.Fatal("delete of duplicate point failed")
	}
	if got := tr.Search(point(1, 1, 0), nil); len(got) == 0 {
		t.Error("original point vanished with its duplicate")
	}
	if !tr.Delete(bbox.New([]float64{0, 2, 0}, []float64{3, 2, 0}), segID) {
		t.Error("delete of flat segment failed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}

	// Bulk load of all-identical point boxes must keep every id findable.
	n := 50
	boxes := make([]bbox.Box, n)
	ids := make([]int64, n)
	for i := range boxes {
		boxes[i] = point(7, 7, 7)
		ids[i] = int64(i)
	}
	bulk := BulkLoad(3, 4, boxes, ids)
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := bulk.Search(point(7, 7, 7), nil); len(got) != n {
		t.Errorf("identical-point bulk load: found %d of %d", len(got), n)
	}
}

func TestBulkLoadSmall(t *testing.T) {
	empty := BulkLoad(2, 4, nil, nil)
	if empty.Len() != 0 || len(empty.Search(bbox.Universe(2), nil)) != 0 {
		t.Error("empty bulk load wrong")
	}
	one := BulkLoad(2, 4, []bbox.Box{box2(0, 0, 1, 1)}, []int64{7})
	if got := one.Search(box2(0, 0, 2, 2), nil); len(got) != 1 || got[0] != 7 {
		t.Errorf("single-item bulk: %v", got)
	}
	// Mutable after bulk load.
	one.Insert(box2(5, 5, 6, 6), 8)
	if got := one.Search(bbox.Universe(2), nil); len(got) != 2 {
		t.Errorf("post-bulk insert: %v", got)
	}
	if !one.Delete(box2(0, 0, 1, 1), 7) {
		t.Error("post-bulk delete failed")
	}
}

func TestBulkLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched inputs")
		}
	}()
	BulkLoad(2, 4, []bbox.Box{box2(0, 0, 1, 1)}, nil)
}

func BenchmarkBulkLoad(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 10000
	boxes := make([]bbox.Box, n)
	ids := make([]int64, n)
	for i := range boxes {
		boxes[i] = randBox(r, 1000)
		ids[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(3, 8, boxes, ids)
	}
}
