package breaker

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTest(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := New(threshold, cooldown)
	b.SetClock(clk.now)
	return b, clk
}

func TestTripAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTest(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after 3 failures, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("Allow() = true while Open before cooldown")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", b.Trips())
	}
}

func TestSuccessResetsStreak(t *testing.T) {
	b, _ := newTest(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestHalfOpenProbeClaimedOnce(t *testing.T) {
	b, clk := newTest(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("allowed while open")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown expired, probe not admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller stole the probe")
	}
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("probe success did not close the breaker")
	}
}

func TestProbeFailureReopens(t *testing.T) {
	b, clk := newTest(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("allowed immediately after failed probe (cooldown must restart)")
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips() = %d, want 2", b.Trips())
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe not admitted after fresh cooldown")
	}
}

func TestReadyHasNoSideEffects(t *testing.T) {
	b, clk := newTest(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Ready() {
		t.Fatal("Ready() = false after cooldown")
	}
	if b.State() != Open {
		t.Fatalf("Ready mutated state to %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("probe not available after Ready()")
	}
}

func TestConcurrentProbeRace(t *testing.T) {
	b, clk := newTest(1, time.Millisecond)
	b.Failure()
	clk.advance(time.Millisecond)
	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("admitted = %d probes, want exactly 1", admitted)
	}
}
