// Package breaker implements a per-node circuit breaker. After K
// consecutive failures the breaker opens and the fetch path and planner
// stop dialing the node; after a cooldown one caller may claim a
// half-open probe, and its outcome either closes the breaker or re-opens
// it for another cooldown. This keeps a dead node from soaking every
// query's retry budget while still noticing recovery.
package breaker

import (
	"sync"
	"time"

	"sciview/internal/metrics"
)

// State of a breaker.
type State int

const (
	// Closed: the node is believed healthy; all traffic allowed.
	Closed State = iota
	// Open: the node tripped; traffic is refused until cooldown passes.
	Open
	// HalfOpen: cooldown expired and one probe is in flight; other
	// callers are still refused until the probe reports.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a single node's circuit breaker. The zero value is not
// usable; call New.
type Breaker struct {
	mu        sync.Mutex
	state     State
	fails     int // consecutive failures while Closed
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	trips     int64
	now       func() time.Time // clock hook for tests

	// metTrips counts opens into the live registry; metState mirrors the
	// current State as an integer gauge (0 closed, 1 open, 2 half-open).
	// Both are nil-safe no-ops when unset.
	metTrips *metrics.Counter
	metState *metrics.Gauge
}

// New returns a Closed breaker tripping after threshold consecutive
// failures and probing after cooldown. threshold < 1 means 3; cooldown
// <= 0 means 100ms.
func New(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 100 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's time source (tests only).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// SetMetrics wires live observability instruments: trips counts every
// open, state mirrors the State enum (0 closed, 1 open, 2 half-open).
// Call before the breaker is in use.
func (b *Breaker) SetMetrics(trips *metrics.Counter, state *metrics.Gauge) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.metTrips = trips
	b.metState = state
	state.Set(int64(b.state))
}

// Allow reports whether a caller may use the node now. When the breaker
// is Open and the cooldown has elapsed, the first caller to Allow claims
// the single half-open probe (gets true); concurrent callers keep getting
// false until Success or Failure resolves the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			b.metState.Set(int64(HalfOpen))
			return true // this caller is the probe
		}
		return false
	case HalfOpen:
		return false // probe already claimed
	}
	return false
}

// Ready is Allow without side effects: it reports whether a call would be
// admitted, but never claims the probe. The planner uses it to skip dead
// nodes without consuming the fetch path's probe slot.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		return b.now().Sub(b.openedAt) >= b.cooldown
	default:
		return false
	}
}

// Success records a successful exchange: it closes the breaker (resolving
// a half-open probe) and clears the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.metState.Set(int64(Closed))
}

// Failure records a failed exchange. While Closed it counts toward the
// trip threshold; a half-open probe failure re-opens immediately with a
// fresh cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	case Open:
		// Late failure from a call admitted before the trip; nothing to do.
	}
}

// trip requires b.mu held.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.fails = 0
	b.trips++
	b.metTrips.Inc()
	b.metState.Set(int64(Open))
}

// State returns the current state (Open is reported even if the cooldown
// has expired; the transition to HalfOpen happens in Allow).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
