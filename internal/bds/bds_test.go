package bds

import (
	"strings"
	"testing"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/metadata"
	"sciview/internal/simio"
	"sciview/internal/transport"
	"sciview/internal/tuple"
)

func schemaXY() tuple.Schema {
	return tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "oilp", Kind: tuple.Measure},
	)
}

// setup writes two chunks of table T1 on node 0 (rowmajor) and one on node
// 1 (csv), returning the catalog and per-node disks.
func setup(t *testing.T) (*metadata.Catalog, []*simio.Disk) {
	t.Helper()
	cat := metadata.NewCatalog()
	def, err := cat.CreateTable("T1", schemaXY())
	if err != nil {
		t.Fatal(err)
	}
	disks := []*simio.Disk{
		simio.NewDisk(simio.NewMemStore(), 0, 0),
		simio.NewDisk(simio.NewMemStore(), 0, 0),
	}
	add := func(node int, format string, xbase float32) {
		st := tuple.NewSubTable(tuple.ID{}, schemaXY(), 16)
		for i := 0; i < 16; i++ {
			st.AppendRow(xbase+float32(i%4), float32(i/4), float32(i))
		}
		ex, err := chunk.Lookup(format)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ex.Encode(st)
		if err != nil {
			t.Fatal(err)
		}
		obj := "t1.dat"
		sz, _ := disks[node].Store().Size(obj)
		if err := disks[node].Store().Append(obj, data); err != nil {
			t.Fatal(err)
		}
		b := st.Bounds()
		desc := &chunk.Desc{
			Object: obj, Offset: sz, Size: int64(len(data)),
			Node: node, Format: format, Attrs: schemaXY().Attrs, Rows: 16,
			Bounds: bbox.New(b.Lo, b.Hi),
		}
		if _, err := cat.AddChunk(def.ID, desc); err != nil {
			t.Fatal(err)
		}
	}
	add(0, "rowmajor", 0)
	add(0, "rowmajor", 100)
	add(1, "csv", 200)
	return cat, disks
}

func TestSubTable(t *testing.T) {
	cat, disks := setup(t)
	svc := New(0, cat, disks[0])
	st, err := svc.SubTable(tuple.ID{Table: 0, Chunk: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 16 || st.ID != (tuple.ID{Table: 0, Chunk: 0}) {
		t.Errorf("rows=%d id=%v", st.NumRows(), st.ID)
	}
	if svc.Stats.SubTablesServed.Load() != 1 || svc.Stats.RecordsServed.Load() != 16 {
		t.Error("stats not updated")
	}
}

func TestSubTableWrongNode(t *testing.T) {
	cat, disks := setup(t)
	svc := New(0, cat, disks[0])
	if _, err := svc.SubTable(tuple.ID{Table: 0, Chunk: 2}, nil); err == nil ||
		!strings.Contains(err.Error(), "node") {
		t.Errorf("expected wrong-node error, got %v", err)
	}
	if _, err := svc.SubTable(tuple.ID{Table: 0, Chunk: 99}, nil); err == nil {
		t.Error("unknown chunk should fail")
	}
	if _, err := svc.SubTable(tuple.ID{Table: 9, Chunk: 0}, nil); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestSubTableFilterPushdown(t *testing.T) {
	cat, disks := setup(t)
	svc := New(0, cat, disks[0])
	st, err := svc.SubTable(tuple.ID{Table: 0, Chunk: 0}, &metadata.Range{
		Attrs: []string{"x", "oilp"},
		Lo:    []float64{0, 0},
		Hi:    []float64{1, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// x in {0,1} keeps 8 of 16 rows.
	if st.NumRows() != 8 {
		t.Errorf("filtered rows = %d, want 8", st.NumRows())
	}
	// Constraint on an attribute the chunk lacks is ignored.
	st, err = svc.SubTable(tuple.ID{Table: 0, Chunk: 0}, &metadata.Range{
		Attrs: []string{"wp"},
		Lo:    []float64{0.5},
		Hi:    []float64{0.6},
	})
	if err != nil || st.NumRows() != 16 {
		t.Errorf("absent-attr filter: rows=%d err=%v", st.NumRows(), err)
	}
	// Invalid filter is rejected.
	if _, err := svc.SubTable(tuple.ID{Table: 0, Chunk: 0}, &metadata.Range{
		Attrs: []string{"x"}, Lo: []float64{2}, Hi: []float64{1},
	}); err == nil {
		t.Error("inverted filter should fail")
	}
}

func TestCSVChunkViaSecondNode(t *testing.T) {
	cat, disks := setup(t)
	svc := New(1, cat, disks[1])
	st, err := svc.SubTable(tuple.ID{Table: 0, Chunk: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 16 || st.Value(0, 0) != 200 {
		t.Errorf("csv chunk decode wrong: rows=%d x0=%v", st.NumRows(), st.Value(0, 0))
	}
}

func TestLocalChunks(t *testing.T) {
	cat, disks := setup(t)
	svc0 := New(0, cat, disks[0])
	svc1 := New(1, cat, disks[1])
	mine, err := svc0.LocalChunks("T1", metadata.Range{})
	if err != nil || len(mine) != 2 {
		t.Fatalf("node 0 chunks = %d, %v", len(mine), err)
	}
	mine, err = svc1.LocalChunks("T1", metadata.Range{})
	if err != nil || len(mine) != 1 {
		t.Fatalf("node 1 chunks = %d, %v", len(mine), err)
	}
	// Range restricted to node 0's first chunk.
	mine, err = svc0.LocalChunks("T1", metadata.Range{
		Attrs: []string{"x"}, Lo: []float64{0}, Hi: []float64{10},
	})
	if err != nil || len(mine) != 1 {
		t.Fatalf("ranged chunks = %d, %v", len(mine), err)
	}
	if _, err := svc0.LocalChunks("nope", metadata.Range{}); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestDiskReadAccounting(t *testing.T) {
	cat, disks := setup(t)
	svc := New(0, cat, disks[0])
	if _, err := svc.SubTable(tuple.ID{Table: 0, Chunk: 0}, nil); err != nil {
		t.Fatal(err)
	}
	want := int64(16 * schemaXY().RecordSize())
	if got := disks[0].Counters.BytesRead.Load(); got != want {
		t.Errorf("bytes read = %d, want %d", got, want)
	}
}

func testRPC(t *testing.T, tr transport.Transport) {
	t.Helper()
	cat, disks := setup(t)
	svc := New(0, cat, disks[0])
	closer, err := svc.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	client, err := DialNode(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	st, err := client.SubTable(tuple.ID{Table: 0, Chunk: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 16 || st.Value(0, 0) != 100 {
		t.Errorf("remote sub-table wrong: rows=%d x0=%v", st.NumRows(), st.Value(0, 0))
	}
	// Filter over RPC.
	st, err = client.SubTable(tuple.ID{Table: 0, Chunk: 1}, &metadata.Range{
		Attrs: []string{"y"}, Lo: []float64{0}, Hi: []float64{0},
	})
	if err != nil || st.NumRows() != 4 {
		t.Errorf("remote filtered: rows=%d err=%v", st.NumRows(), err)
	}
	// Remote error propagation.
	if _, err := client.SubTable(tuple.ID{Table: 0, Chunk: 2}, nil); err == nil {
		t.Error("wrong-node fetch over RPC should fail")
	}
}

func TestRPCInProc(t *testing.T) { testRPC(t, transport.NewInProc()) }

func TestRPCTCP(t *testing.T) { testRPC(t, transport.NewTCP()) }
