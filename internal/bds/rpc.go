package bds

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"

	"sciview/internal/colenc"
	"sciview/internal/metadata"
	"sciview/internal/transport"
	"sciview/internal/tuple"
)

// The RPC surface lets a BDS instance serve sub-tables across process
// boundaries (cmd/sciview-node). Requests are gob-encoded; sub-table
// responses use the tuple wire codec.

// ServiceName returns the transport registration name of a node's BDS.
func ServiceName(node int) string { return fmt.Sprintf("bds-%d", node) }

// subTableReq is the wire request for the "subtable" method.
//
// Wire is the fetch-codec negotiation: 0 (or absent — gob omits zero
// fields and ignores unknown ones, so old and new peers interoperate in
// both directions) requests the row-major SVT1 response; WireEncoded
// advertises that the client can decode the compressed columnar SVT2
// format. A server that understands the field answers with the best
// format the client accepts; the client dispatches on the response magic,
// so an old server's SVT1 reply to a new client still decodes fine.
type subTableReq struct {
	Table   int32
	Chunk   int32
	Filter  *metadata.Range
	Project []string
	Wire    byte
}

// WireEncoded is the subTableReq.Wire value requesting the SVT2
// compressed columnar response format.
const WireEncoded byte = 1

// Serve registers the service's RPC handler on tr under ServiceName.
func (s *Service) Serve(tr transport.Transport) (io.Closer, error) {
	return tr.Serve(ServiceName(s.node), s.handle)
}

// Handler exposes the RPC handler for transports that register services
// with explicit addresses (the standalone node binary).
func (s *Service) Handler() transport.Handler { return s.handle }

func (s *Service) handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "subtable":
		var req subTableReq
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&req); err != nil {
			return nil, fmt.Errorf("bds: decoding request: %w", err)
		}
		id := tuple.ID{Table: req.Table, Chunk: req.Chunk}
		if req.Wire >= WireEncoded {
			t, err := s.SubTableEncoded(id, req.Filter, req.Project)
			if err != nil {
				return nil, err
			}
			// Encode into a pooled buffer; ownership passes to the
			// transport, which recycles it once the response frame is
			// written.
			return colenc.Encode(tuple.GetBuf(colenc.EncodedSize(t)), t), nil
		}
		st, err := s.SubTableProjected(id, req.Filter, req.Project)
		if err != nil {
			return nil, err
		}
		return tuple.Encode(tuple.GetBuf(tuple.EncodedSize(st)), st), nil
	default:
		return nil, fmt.Errorf("bds: unknown method %q", method)
	}
}

// Client is a remote BDS handle with the same SubTable signature as the
// local Service.
type Client struct {
	conn transport.Conn
}

// ClientFromConn wraps an already-established connection (e.g. one dialed
// by address across processes).
func ClientFromConn(conn transport.Conn) *Client { return &Client{conn: conn} }

// DialNode connects to the BDS of the given storage node.
func DialNode(tr transport.Transport, node int) (*Client, error) {
	conn, err := tr.Dial(ServiceName(node))
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// SubTable fetches a sub-table from the remote BDS.
func (c *Client) SubTable(id tuple.ID, filter *metadata.Range) (*tuple.SubTable, error) {
	return c.SubTableProjected(context.Background(), id, filter, nil)
}

// SubTableProjected fetches with projection pushdown, observing ctx: a
// cancelled or deadline-expired context aborts the wire exchange and
// returns ctx.Err() instead of blocking on a slow or stuck node.
func (c *Client) SubTableProjected(ctx context.Context, id tuple.ID, filter *metadata.Range, project []string) (*tuple.SubTable, error) {
	var buf bytes.Buffer
	req := subTableReq{Table: id.Table, Chunk: id.Chunk, Filter: filter, Project: project}
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, fmt.Errorf("bds: encoding request: %w", err)
	}
	resp, err := c.conn.CallContext(ctx, "subtable", buf.Bytes())
	if err != nil {
		return nil, err
	}
	st, _, err := tuple.Decode(resp)
	// Decode copies everything out of resp (column data into a fresh
	// backing array, attribute names into fresh strings), so the response
	// buffer can go straight back to the pool.
	tuple.PutBuf(resp)
	return st, err
}

// SubTableEncoded fetches with the compressed columnar wire format
// negotiated: the request advertises SVT2 support, and the response is
// dispatched on its magic. A new server answers SVT2 (enc non-nil); an
// old server that ignores the Wire field answers row-major SVT1 (st
// non-nil) — exactly one of the two results is set.
func (c *Client) SubTableEncoded(ctx context.Context, id tuple.ID, filter *metadata.Range, project []string) (enc *colenc.Table, st *tuple.SubTable, err error) {
	var buf bytes.Buffer
	req := subTableReq{Table: id.Table, Chunk: id.Chunk, Filter: filter, Project: project, Wire: WireEncoded}
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, nil, fmt.Errorf("bds: encoding request: %w", err)
	}
	resp, err := c.conn.CallContext(ctx, "subtable", buf.Bytes())
	if err != nil {
		return nil, nil, err
	}
	// Both decoders copy everything out of resp, so it goes straight back
	// to the pool.
	if colenc.IsEncoded(resp) {
		enc, _, err = colenc.Decode(resp)
	} else {
		st, _, err = tuple.Decode(resp)
	}
	tuple.PutBuf(resp)
	return enc, st, err
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
