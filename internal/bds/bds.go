// Package bds implements the Basic Data Source Service: the storage-node
// service that provides a virtual-table view over application-specific data
// chunks. Upon receipt of a chunk id, a BDS instance reads the chunk from
// its local disk, runs the registered extractor for the chunk's format, and
// returns the resulting basic sub-table, optionally with a range filter
// pushed down to prune records early.
package bds

import (
	"fmt"
	"sync/atomic"

	"sciview/internal/chunk"
	"sciview/internal/colenc"
	"sciview/internal/metadata"
	"sciview/internal/simio"
	"sciview/internal/tuple"
)

// Stats counts BDS activity.
type Stats struct {
	SubTablesServed atomic.Int64
	RecordsServed   atomic.Int64
}

// Service is one BDS instance, bound to a storage node's disk. It serves
// only chunks whose descriptors place them on its node.
type Service struct {
	node    int
	catalog *metadata.Catalog
	disk    *simio.Disk
	Stats   Stats
}

// New returns the BDS instance of storage node `node`.
func New(node int, catalog *metadata.Catalog, disk *simio.Disk) *Service {
	return &Service{node: node, catalog: catalog, disk: disk}
}

// Node returns the storage node this instance runs on.
func (s *Service) Node() int { return s.node }

// Disk exposes the node's disk (for harness accounting).
func (s *Service) Disk() *simio.Disk { return s.disk }

// SubTable produces the basic sub-table (id.Table, id.Chunk): it reads the
// chunk's file segment through the node's disk (paying the modeled read
// bandwidth), extracts it, and applies the optional range filter. Only
// constraints on attributes present in the chunk's schema are applied; an
// absent attribute has bounds [-Inf, +Inf] per the paper and filters
// nothing.
func (s *Service) SubTable(id tuple.ID, filter *metadata.Range) (*tuple.SubTable, error) {
	return s.SubTableProjected(id, filter, nil)
}

// SubTableProjected is SubTable with projection pushdown: when project is
// non-nil, only the named attributes (those present in the chunk's schema,
// kept in schema order) are returned, shrinking the record size shipped to
// compute nodes. The filter is applied before projection, so predicates on
// unprojected attributes still take effect.
func (s *Service) SubTableProjected(id tuple.ID, filter *metadata.Range, project []string) (*tuple.SubTable, error) {
	desc, err := s.catalog.Chunk(id.Table, id.Chunk)
	if err != nil {
		return nil, fmt.Errorf("bds: node %d: %w", s.node, err)
	}
	// Serve from whichever copy this node holds: the primary placement, a
	// replica written during dataset loading, or one the repair tier laid
	// down. Read through the catalog lock — repair commits placements
	// concurrently with serving.
	object, offset, ok := s.catalog.LocateOn(id.Table, id.Chunk, s.node)
	if !ok {
		return nil, fmt.Errorf("bds: chunk %v has no copy on node %d (primary is node %d)", id, s.node, desc.Node)
	}
	data, err := s.disk.ReadRange(object, offset, desc.Size)
	if err != nil {
		return nil, fmt.Errorf("bds: node %d reading chunk %v: %w", s.node, id, err)
	}
	st, err := chunk.Extract(desc, data)
	if err != nil {
		return nil, fmt.Errorf("bds: node %d: %w", s.node, err)
	}
	st, err = applyFilter(st, filter)
	if err != nil {
		return nil, fmt.Errorf("bds: node %d chunk %v: %w", s.node, id, err)
	}
	if project != nil {
		keep := projectionFor(st.Schema, project)
		st, err = st.Project(keep)
		if err != nil {
			return nil, fmt.Errorf("bds: node %d chunk %v: %w", s.node, id, err)
		}
	}
	s.Stats.SubTablesServed.Add(1)
	s.Stats.RecordsServed.Add(int64(st.NumRows()))
	return st, nil
}

// SubTableEncoded is SubTableProjected producing the compressed columnar
// wire representation instead of a decoded sub-table: per-column encoded
// vectors with the filter applied and projected-out columns never encoded
// at all. Chunks already stored run-length encoded take a pass-through
// path — their run sections are sliced straight out of the chunk bytes,
// filtered run-wise in the compressed domain, and shipped without a single
// row being materialized. Other formats extract as usual, filter, project,
// and then encode only the surviving rows of the surviving columns.
//
// Row semantics match SubTableProjected exactly: same filter rules
// (absent attributes filter nothing, bounds inclusive), same schema-order
// projection, so decoding the result reproduces the row-major fetch bit
// for bit.
func (s *Service) SubTableEncoded(id tuple.ID, filter *metadata.Range, project []string) (*colenc.Table, error) {
	desc, err := s.catalog.Chunk(id.Table, id.Chunk)
	if err != nil {
		return nil, fmt.Errorf("bds: node %d: %w", s.node, err)
	}
	object, offset, ok := s.catalog.LocateOn(id.Table, id.Chunk, s.node)
	if !ok {
		return nil, fmt.Errorf("bds: chunk %v has no copy on node %d (primary is node %d)", id, s.node, desc.Node)
	}
	data, err := s.disk.ReadRange(object, offset, desc.Size)
	if err != nil {
		return nil, fmt.Errorf("bds: node %d reading chunk %v: %w", s.node, id, err)
	}
	var names []string
	var lo, hi []float64
	if filter != nil && !filter.Empty() {
		if err := filter.Validate(); err != nil {
			return nil, fmt.Errorf("bds: node %d chunk %v: %w", s.node, id, err)
		}
		names, lo, hi = filter.Attrs, filter.Lo, filter.Hi
	}
	var t *colenc.Table
	if desc.Format == "rle" {
		t, err = colenc.ParseRLEChunk(desc, data)
		if err != nil {
			return nil, fmt.Errorf("bds: node %d: %w", s.node, err)
		}
		t, err = t.FilterProject(names, lo, hi, project)
		if err != nil {
			return nil, fmt.Errorf("bds: node %d chunk %v: %w", s.node, id, err)
		}
		// On-disk rle stores every column as runs, even high-entropy ones
		// where per-row runs cost 2× raw; re-encode those before shipping.
		t, err = t.Compact()
		if err != nil {
			return nil, fmt.Errorf("bds: node %d chunk %v: %w", s.node, id, err)
		}
	} else {
		st, err := chunk.Extract(desc, data)
		if err != nil {
			return nil, fmt.Errorf("bds: node %d: %w", s.node, err)
		}
		st, err = applyFilter(st, filter)
		if err != nil {
			return nil, fmt.Errorf("bds: node %d chunk %v: %w", s.node, id, err)
		}
		if project != nil {
			keep := projectionFor(st.Schema, project)
			st, err = st.Project(keep)
			if err != nil {
				return nil, fmt.Errorf("bds: node %d chunk %v: %w", s.node, id, err)
			}
		}
		t = colenc.FromSubTable(st)
	}
	s.Stats.SubTablesServed.Add(1)
	s.Stats.RecordsServed.Add(int64(t.NumRows()))
	return t, nil
}

// projectionFor returns the projection list restricted to attributes the
// schema actually has, in schema order (so every chunk of a table projects
// identically).
func projectionFor(schema tuple.Schema, project []string) []string {
	want := make(map[string]bool, len(project))
	for _, p := range project {
		want[p] = true
	}
	var keep []string
	for _, a := range schema.Attrs {
		if want[a.Name] {
			keep = append(keep, a.Name)
		}
	}
	return keep
}

// applyFilter applies the constraints of f that name attributes present in
// st's schema.
func applyFilter(st *tuple.SubTable, f *metadata.Range) (*tuple.SubTable, error) {
	if f == nil || f.Empty() {
		return st, nil
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var names []string
	var lo, hi []float64
	for i, a := range f.Attrs {
		if st.Schema.Index(a) < 0 {
			continue // absent attribute: bounds are infinite, keep all rows
		}
		names = append(names, a)
		lo = append(lo, f.Lo[i])
		hi = append(hi, f.Hi[i])
	}
	if len(names) == 0 {
		return st, nil
	}
	return st.FilterRange(names, lo, hi)
}

// LocalChunks returns the descriptors of this node's chunks of the named
// table that intersect the given range, in chunk-id order. It is the scan
// driver for the Grace Hash storage-side QES.
func (s *Service) LocalChunks(table string, r metadata.Range) ([]*chunk.Desc, error) {
	all, err := s.catalog.ChunksInRange(table, r)
	if err != nil {
		return nil, err
	}
	var mine []*chunk.Desc
	for _, d := range all {
		if d.Node == s.node {
			mine = append(mine, d)
		}
	}
	return mine, nil
}
