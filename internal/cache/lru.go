// Package cache implements the framework's Caching Service: a byte-bounded
// LRU cache of recently accessed objects, used by compute-node QES
// instances to avoid re-fetching sub-tables from storage nodes.
//
// The paper assumes LRU replacement ("we choose the cache replacement
// policy to be LRU, since this is a reasonable policy in many cases and
// commonly used"); under the IJ scheduler's memory assumption no sub-table
// is evicted while still needed, and the hit/miss statistics let tests and
// the harness verify that.
package cache

import (
	"sync"

	"sciview/internal/metrics"
)

// Metrics carries the live observability counters a cache feeds in
// addition to its own Stats snapshot. All fields may be nil (no-op): an
// uninstrumented cache pays one predicted branch per event.
type Metrics struct {
	Hits      *metrics.Counter
	Misses    *metrics.Counter
	Evictions *metrics.Counter
}

// LRU is a byte-capacity-bounded least-recently-used cache mapping keys of
// type K to values of type V. All methods are safe for concurrent use.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[K]*node[K, V]
	head     *node[K, V] // most recently used
	tail     *node[K, V] // least recently used

	hits      int64
	misses    int64
	evictions int64
	met       Metrics

	onEvict func(K, V)
}

type node[K comparable, V any] struct {
	key        K
	val        V
	size       int64
	prev, next *node[K, V]
}

// NewLRU returns a cache that holds at most capacity bytes of values
// (as reported by the size argument to Put). A zero or negative capacity
// yields a cache that stores nothing — every Get misses.
func NewLRU[K comparable, V any](capacity int64) *LRU[K, V] {
	return &LRU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*node[K, V]),
	}
}

// OnEvict registers fn to be called (outside critical operations but under
// the cache lock) whenever an entry is evicted or displaced. Used by tests
// and by spill-accounting.
func (c *LRU[K, V]) OnEvict(fn func(K, V)) { c.onEvict = fn }

// SetMetrics wires live observability counters alongside the Stats
// snapshot. Call before the cache is in use.
func (c *LRU[K, V]) SetMetrics(m Metrics) { c.met = m }

// Get returns the cached value for key and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		c.misses++
		c.met.Misses.Inc()
		var zero V
		return zero, false
	}
	c.hits++
	c.met.Hits.Inc()
	c.moveToFront(n)
	return n.val, true
}

// Peek returns the cached value for key without updating recency or the
// hit/miss counters. It is the single-lookup replacement for the racy
// Contains-then-Get pattern: one critical section, one answer.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Contains reports whether key is cached without updating recency or stats.
func (c *LRU[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put inserts or replaces the value for key, recording its size in bytes,
// and evicts least-recently-used entries until the capacity constraint
// holds. Values larger than the whole capacity are not cached at all.
func (c *LRU[K, V]) Put(key K, val V, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.used -= old.size
		c.unlink(old)
		delete(c.entries, key)
		if c.onEvict != nil {
			c.onEvict(old.key, old.val)
		}
	}
	if size > c.capacity {
		return
	}
	for c.used+size > c.capacity && c.tail != nil {
		c.evictLocked(c.tail)
	}
	n := &node[K, V]{key: key, val: val, size: size}
	c.entries[key] = n
	c.used += size
	c.pushFront(n)
}

// Remove deletes key from the cache, reporting whether it was present.
// Removal does not count as an eviction.
func (c *LRU[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		return false
	}
	c.used -= n.size
	c.unlink(n)
	delete(c.entries, key)
	return true
}

// Clear empties the cache without invoking eviction callbacks.
func (c *LRU[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[K]*node[K, V])
	c.head, c.tail = nil, nil
	c.used = 0
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the total size of cached values.
func (c *LRU[K, V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured byte capacity.
func (c *LRU[K, V]) Capacity() int64 { return c.capacity }

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *LRU[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// ResetStats zeroes the counters (between experiment runs).
func (c *LRU[K, V]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = 0, 0, 0
}

func (c *LRU[K, V]) evictLocked(n *node[K, V]) {
	c.used -= n.size
	c.unlink(n)
	delete(c.entries, n.key)
	c.evictions++
	c.met.Evictions.Inc()
	if c.onEvict != nil {
		c.onEvict(n.key, n.val)
	}
}

func (c *LRU[K, V]) pushFront(n *node[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU[K, V]) moveToFront(n *node[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
