package cache

import (
	"fmt"
	"sync"
)

// Cache is the Caching Service contract: a byte-bounded store with
// replacement statistics. LRU is the paper's choice ("a reasonable policy
// in many cases and commonly used"); FIFO and CLOCK exist to study the
// paper's future-work question of caching strategies.
type Cache[K comparable, V any] interface {
	Get(key K) (V, bool)
	Peek(key K) (V, bool)
	Contains(key K) bool
	Put(key K, val V, size int64)
	Remove(key K) bool
	Clear()
	Len() int
	Bytes() int64
	Capacity() int64
	Stats() Stats
	ResetStats()
	// SetMetrics wires live observability counters (all fields optional);
	// call before the cache is in use.
	SetMetrics(Metrics)
}

var _ Cache[int, int] = (*LRU[int, int])(nil)
var _ Cache[int, int] = (*FIFO[int, int])(nil)
var _ Cache[int, int] = (*Clock[int, int])(nil)

// NewPolicy constructs a cache by policy name: "lru" (default when empty),
// "fifo" or "clock".
func NewPolicy[K comparable, V any](policy string, capacity int64) (Cache[K, V], error) {
	switch policy {
	case "", "lru":
		return NewLRU[K, V](capacity), nil
	case "fifo":
		return NewFIFO[K, V](capacity), nil
	case "clock":
		return NewClock[K, V](capacity), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q (want lru, fifo or clock)", policy)
	}
}

// FIFO evicts in insertion order, ignoring recency. Cheaper bookkeeping
// than LRU but blind to reuse: a sub-table still being probed is evicted
// as readily as a dead one.
type FIFO[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[K]*node[K, V]
	head     *node[K, V] // newest
	tail     *node[K, V] // oldest

	hits      int64
	misses    int64
	evictions int64
	met       Metrics
}

// NewFIFO returns a FIFO cache bounded by capacity bytes.
func NewFIFO[K comparable, V any](capacity int64) *FIFO[K, V] {
	return &FIFO[K, V]{capacity: capacity, entries: make(map[K]*node[K, V])}
}

// SetMetrics implements Cache.
func (c *FIFO[K, V]) SetMetrics(m Metrics) { c.met = m }

// Get implements Cache (no recency update — that is the point of FIFO).
func (c *FIFO[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		c.misses++
		c.met.Misses.Inc()
		var zero V
		return zero, false
	}
	c.hits++
	c.met.Hits.Inc()
	return n.val, true
}

// Peek implements Cache: a stat-free lookup (FIFO has no recency to skip).
func (c *FIFO[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Contains implements Cache.
func (c *FIFO[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put implements Cache.
func (c *FIFO[K, V]) Put(key K, val V, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.used -= old.size
		c.unlink(old)
		delete(c.entries, key)
	}
	if size > c.capacity {
		return
	}
	for c.used+size > c.capacity && c.tail != nil {
		t := c.tail
		c.used -= t.size
		c.unlink(t)
		delete(c.entries, t.key)
		c.evictions++
		c.met.Evictions.Inc()
	}
	n := &node[K, V]{key: key, val: val, size: size}
	c.entries[key] = n
	c.used += size
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *FIFO[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// Remove implements Cache.
func (c *FIFO[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		return false
	}
	c.used -= n.size
	c.unlink(n)
	delete(c.entries, key)
	return true
}

// Clear implements Cache.
func (c *FIFO[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[K]*node[K, V])
	c.head, c.tail = nil, nil
	c.used = 0
}

// Len implements Cache.
func (c *FIFO[K, V]) Len() int { c.mu.Lock(); defer c.mu.Unlock(); return len(c.entries) }

// Bytes implements Cache.
func (c *FIFO[K, V]) Bytes() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.used }

// Capacity implements Cache.
func (c *FIFO[K, V]) Capacity() int64 { return c.capacity }

// Stats implements Cache.
func (c *FIFO[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// ResetStats implements Cache.
func (c *FIFO[K, V]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Clock is the second-chance approximation of LRU: entries sit on a ring
// with a reference bit; the hand sweeps, clearing bits, and evicts the
// first unreferenced entry it finds.
type Clock[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[K]*clockNode[K, V]
	hand     *clockNode[K, V] // ring position

	hits      int64
	misses    int64
	evictions int64
	met       Metrics
}

type clockNode[K comparable, V any] struct {
	key        K
	val        V
	size       int64
	referenced bool
	prev, next *clockNode[K, V] // circular
}

// NewClock returns a CLOCK cache bounded by capacity bytes.
func NewClock[K comparable, V any](capacity int64) *Clock[K, V] {
	return &Clock[K, V]{capacity: capacity, entries: make(map[K]*clockNode[K, V])}
}

// SetMetrics implements Cache.
func (c *Clock[K, V]) SetMetrics(m Metrics) { c.met = m }

// Get implements Cache, setting the reference bit.
func (c *Clock[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		c.misses++
		c.met.Misses.Inc()
		var zero V
		return zero, false
	}
	n.referenced = true
	c.hits++
	c.met.Hits.Inc()
	return n.val, true
}

// Peek implements Cache: a stat-free lookup that leaves the reference bit
// untouched.
func (c *Clock[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Contains implements Cache.
func (c *Clock[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put implements Cache.
func (c *Clock[K, V]) Put(key K, val V, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.used -= old.size
		c.ringRemove(old)
		delete(c.entries, key)
	}
	if size > c.capacity {
		return
	}
	for c.used+size > c.capacity && c.hand != nil {
		c.evictOne()
	}
	n := &clockNode[K, V]{key: key, val: val, size: size, referenced: true}
	c.entries[key] = n
	c.used += size
	if c.hand == nil {
		n.prev, n.next = n, n
		c.hand = n
	} else {
		// Insert just behind the hand (the position last swept).
		prev := c.hand.prev
		prev.next = n
		n.prev = prev
		n.next = c.hand
		c.hand.prev = n
	}
}

// evictOne sweeps the ring from the hand, clearing reference bits, and
// evicts the first unreferenced entry. Caller holds the lock.
func (c *Clock[K, V]) evictOne() {
	for {
		n := c.hand
		if n.referenced {
			n.referenced = false
			c.hand = n.next
			continue
		}
		c.hand = n.next
		c.used -= n.size
		c.ringRemove(n)
		delete(c.entries, n.key)
		c.evictions++
		c.met.Evictions.Inc()
		return
	}
}

func (c *Clock[K, V]) ringRemove(n *clockNode[K, V]) {
	if n.next == n {
		c.hand = nil
		n.prev, n.next = nil, nil
		return
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	if c.hand == n {
		c.hand = n.next
	}
	n.prev, n.next = nil, nil
}

// Remove implements Cache.
func (c *Clock[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		return false
	}
	c.used -= n.size
	c.ringRemove(n)
	delete(c.entries, key)
	return true
}

// Clear implements Cache.
func (c *Clock[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[K]*clockNode[K, V])
	c.hand = nil
	c.used = 0
}

// Len implements Cache.
func (c *Clock[K, V]) Len() int { c.mu.Lock(); defer c.mu.Unlock(); return len(c.entries) }

// Bytes implements Cache.
func (c *Clock[K, V]) Bytes() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.used }

// Capacity implements Cache.
func (c *Clock[K, V]) Capacity() int64 { return c.capacity }

// Stats implements Cache.
func (c *Clock[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// ResetStats implements Cache.
func (c *Clock[K, V]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = 0, 0, 0
}
