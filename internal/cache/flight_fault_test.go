package cache

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sciview/internal/transport"
)

// TestFlightLeaderHandoffOnRetryableFailure pins the failover contract the
// cluster relies on: when a leader's fetch dies with a transient fault, a
// queued waiter is not poisoned with the error — it retries, becomes the
// next leader, and succeeds, costing exactly one extra transfer.
func TestFlightLeaderHandoffOnRetryableFailure(t *testing.T) {
	f := NewFlight[string, int]()
	f.Retryable = transport.IsRetryable

	var loads atomic.Int64
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := f.Do(context.Background(), "st", func() (int, error) {
			loads.Add(1)
			close(leaderIn)
			<-release
			return 0, fmt.Errorf("injected fetch fault: %w", transport.ErrUnavailable)
		})
		leaderErr <- err
	}()
	<-leaderIn // the leader is mid-fetch

	type outcome struct {
		val    int
		shared bool
		err    error
	}
	waiter := make(chan outcome, 1)
	go func() {
		v, shared, err := f.Do(context.Background(), "st", func() (int, error) {
			loads.Add(1)
			return 42, nil
		})
		waiter <- outcome{v, shared, err}
	}()
	// Give the waiter time to queue behind the in-flight call, then fail
	// the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-leaderErr; !errors.Is(err, transport.ErrUnavailable) {
		t.Errorf("leader error = %v, want the injected fault", err)
	}
	got := <-waiter
	if got.err != nil || got.val != 42 {
		t.Fatalf("waiter got (%d, %v), want (42, nil)", got.val, got.err)
	}
	if got.shared {
		t.Error("waiter reported a dedup hit; it should have led its own retry")
	}
	if n := loads.Load(); n != 2 {
		t.Errorf("loads = %d, want exactly 2 (the failed leader plus one retry)", n)
	}
}

// TestFlightTerminalFailureIsShared is the counterpart: a terminal error
// (the handler executed and refused) propagates to every waiter without
// extra transfers.
func TestFlightTerminalFailureIsShared(t *testing.T) {
	f := NewFlight[string, int]()
	f.Retryable = transport.IsRetryable

	var loads atomic.Int64
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	terminal := &transport.RemoteError{Service: "bds-0", Method: "subtable", Msg: "no such chunk"}
	go func() {
		f.Do(context.Background(), "st", func() (int, error) {
			loads.Add(1)
			close(leaderIn)
			<-release
			return 0, terminal
		})
	}()
	<-leaderIn

	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := f.Do(context.Background(), "st", func() (int, error) {
			loads.Add(1)
			return 42, nil
		})
		waiterErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)

	var re *transport.RemoteError
	if err := <-waiterErr; !errors.As(err, &re) {
		t.Errorf("waiter error = %v, want the leader's terminal error", err)
	}
	if n := loads.Load(); n != 1 {
		t.Errorf("loads = %d, want 1 (terminal errors are shared, not retried)", n)
	}
}
