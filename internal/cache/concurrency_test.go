package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentStress hammers every policy with parallel Get/Put/Remove
// traffic that forces constant eviction. Run with -race; the test asserts
// only invariants that hold under any interleaving.
func TestConcurrentStress(t *testing.T) {
	for _, policy := range []string{"lru", "fifo", "clock"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			c, err := NewPolicy[int, string](policy, 64) // tiny: evictions guaranteed
			if err != nil {
				t.Fatal(err)
			}
			const (
				workers = 8
				ops     = 2000
				keys    = 32
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						k := (w*ops + i*7) % keys
						switch i % 4 {
						case 0, 1:
							if v, ok := c.Get(k); ok && v != fmt.Sprintf("v%d", k) {
								t.Errorf("key %d holds %q", k, v)
							}
						case 2:
							c.Put(k, fmt.Sprintf("v%d", k), int64(8+k%5))
						case 3:
							c.Remove(k)
						}
					}
				}(w)
			}
			wg.Wait()
			if got := c.Bytes(); got > c.Capacity() {
				t.Errorf("cache holds %d bytes, capacity %d", got, c.Capacity())
			}
			s := c.Stats()
			if s.Hits < 0 || s.Misses < 0 || s.Evictions < 0 {
				t.Errorf("negative counters: %+v", s)
			}
		})
	}
}

// TestFlightSingleLoad proves the singleflight property: 100 concurrent
// requesters of one key trigger exactly one load, and all observers agree
// on the value.
func TestFlightSingleLoad(t *testing.T) {
	f := NewFlight[string, int]()
	var loads atomic.Int64
	release := make(chan struct{})
	const requesters = 100
	var wg sync.WaitGroup
	vals := make([]int, requesters)
	shared := make([]bool, requesters)
	for i := 0; i < requesters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, sh, err := f.Do(context.Background(), "st-3-7", func() (int, error) {
				loads.Add(1)
				<-release // hold every other requester in the flight
				return 42, nil
			})
			if err != nil {
				t.Errorf("requester %d: %v", i, err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Let requesters pile up behind the leader, then release the load.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := loads.Load(); got != 1 {
		t.Fatalf("%d loads for %d concurrent requesters, want exactly 1", got, requesters)
	}
	nshared := 0
	for i := range vals {
		if vals[i] != 42 {
			t.Fatalf("requester %d got %d", i, vals[i])
		}
		if shared[i] {
			nshared++
		}
	}
	if nshared != requesters-1 {
		t.Errorf("%d shared results, want %d", nshared, requesters-1)
	}
	s := f.Stats()
	if s.Leads != 1 || s.Shared != int64(requesters-1) {
		t.Errorf("stats = %+v", s)
	}
}

// TestFlightDistinctKeys checks keys do not serialize against each other.
func TestFlightDistinctKeys(t *testing.T) {
	f := NewFlight[int, int]()
	var wg sync.WaitGroup
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, _, err := f.Do(context.Background(), k, func() (int, error) { return k * 2, nil })
			if err != nil || v != k*2 {
				t.Errorf("key %d: v=%d err=%v", k, v, err)
			}
		}(k)
	}
	wg.Wait()
	if s := f.Stats(); s.Leads != 16 {
		t.Errorf("leads = %d, want 16", s.Leads)
	}
}

// TestFlightLeaderCancelled: a cancelled leader must not doom live waiters —
// one of them retries the load and everyone live still gets a value.
func TestFlightLeaderCancelled(t *testing.T) {
	f := NewFlight[string, int]()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inLoad := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	leaderErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, _, err := f.Do(leaderCtx, "k", func() (int, error) {
			close(inLoad)
			<-leaderCtx.Done()
			return 0, leaderCtx.Err()
		})
		leaderErr <- err
	}()

	<-inLoad // waiter joins while the leader is mid-load
	wg.Add(1)
	waiterVal := make(chan int, 1)
	go func() {
		defer wg.Done()
		v, _, err := f.Do(context.Background(), "k", func() (int, error) { return 7, nil })
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		waiterVal <- v
	}()

	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	wg.Wait()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v, want Canceled", err)
	}
	if v := <-waiterVal; v != 7 {
		t.Errorf("waiter retried value = %d, want 7", v)
	}
}

// TestFlightWaiterContext: a waiter whose own ctx expires stops waiting.
func TestFlightWaiterContext(t *testing.T) {
	f := NewFlight[string, int]()
	inLoad := make(chan struct{})
	release := make(chan struct{})
	go f.Do(context.Background(), "k", func() (int, error) {
		close(inLoad)
		<-release
		return 1, nil
	})
	<-inLoad
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := f.Do(ctx, "k", func() (int, error) { return 2, nil })
	close(release)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}
