package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPolicy(t *testing.T) {
	for _, name := range []string{"", "lru", "fifo", "clock"} {
		c, err := NewPolicy[string, int](name, 100)
		if err != nil || c == nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	if _, err := NewPolicy[string, int]("arc", 100); err == nil {
		t.Error("unknown policy accepted")
	}
}

// policies returns fresh instances of every policy for shared conformance
// tests.
func policies(capacity int64) map[string]Cache[string, int] {
	return map[string]Cache[string, int]{
		"lru":   NewLRU[string, int](capacity),
		"fifo":  NewFIFO[string, int](capacity),
		"clock": NewClock[string, int](capacity),
	}
}

func TestPolicyConformance(t *testing.T) {
	for name, c := range policies(100) {
		t.Run(name, func(t *testing.T) {
			c.Put("a", 1, 10)
			c.Put("b", 2, 20)
			if v, ok := c.Get("a"); !ok || v != 1 {
				t.Errorf("Get(a) = %v,%v", v, ok)
			}
			if _, ok := c.Get("zzz"); ok {
				t.Error("phantom hit")
			}
			if !c.Contains("b") || c.Len() != 2 || c.Bytes() != 30 {
				t.Errorf("state: len=%d bytes=%d", c.Len(), c.Bytes())
			}
			if c.Capacity() != 100 {
				t.Errorf("capacity = %d", c.Capacity())
			}
			s := c.Stats()
			if s.Hits != 1 || s.Misses != 1 {
				t.Errorf("stats = %+v", s)
			}
			c.ResetStats()
			if c.Stats() != (Stats{}) {
				t.Error("reset failed")
			}
			// Replacement updates size.
			c.Put("a", 3, 50)
			if c.Bytes() != 70 || c.Len() != 2 {
				t.Errorf("after replace: bytes=%d len=%d", c.Bytes(), c.Len())
			}
			if !c.Remove("a") || c.Remove("a") {
				t.Error("Remove semantics")
			}
			// Oversize object is not cached and evicts nothing.
			c.Put("big", 9, 1000)
			if c.Contains("big") || !c.Contains("b") {
				t.Error("oversize handling wrong")
			}
			c.Clear()
			if c.Len() != 0 || c.Bytes() != 0 {
				t.Error("clear failed")
			}
		})
	}
}

func TestPolicyCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := int64(1 + r.Intn(300))
		for name, c := range policies(capacity) {
			for step := 0; step < 400; step++ {
				k := fmt.Sprint(r.Intn(40))
				switch r.Intn(3) {
				case 0:
					c.Put(k, step, int64(1+r.Intn(80)))
				case 1:
					c.Get(k)
				case 2:
					c.Remove(k)
				}
				if c.Bytes() > capacity {
					t.Logf("%s exceeded capacity: %d > %d", name, c.Bytes(), capacity)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c := NewFIFO[string, int](30)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Put("c", 3, 10)
	c.Get("a") // would save "a" under LRU
	c.Put("d", 4, 10)
	if c.Contains("a") {
		t.Error("FIFO must evict the oldest insertion regardless of access")
	}
	if !c.Contains("b") || !c.Contains("c") || !c.Contains("d") {
		t.Error("wrong survivors")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d", s.Evictions)
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock[string, int](30)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Put("c", 3, 10)
	// All bits set: the first eviction degenerates to FIFO — one full
	// sweep clears every bit, then the hand's start ("a") goes.
	c.Put("d", 4, 10)
	if c.Contains("a") {
		t.Error("with all bits set, the oldest entry should go")
	}
	// Bits of b and c are now clear, d is referenced. Touch b: its bit
	// protects it on the next sweep, so c is the victim.
	c.Get("b")
	c.Put("e", 5, 10)
	if !c.Contains("b") {
		t.Error("referenced entry should get its second chance")
	}
	if c.Contains("c") {
		t.Error("unreferenced entry should be the victim")
	}
	if !c.Contains("d") || !c.Contains("e") || c.Len() != 3 {
		t.Errorf("survivors wrong: len=%d", c.Len())
	}
}

func TestClockRingIntegrity(t *testing.T) {
	// Many inserts/removes at small capacity: ring bookkeeping must hold
	// (this would loop or panic on a broken ring).
	c := NewClock[int, int](50)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := r.Intn(25)
		switch r.Intn(3) {
		case 0:
			c.Put(k, k, int64(1+r.Intn(20)))
		case 1:
			c.Get(k)
		case 2:
			c.Remove(k)
		}
	}
	if c.Bytes() > 50 {
		t.Errorf("capacity violated: %d", c.Bytes())
	}
	c.Clear()
	c.Put(1, 1, 10) // reinsert into empty ring
	if !c.Contains(1) {
		t.Error("ring broken after clear")
	}
}

func TestLRUBeatsFIFOOnLoopingWorkload(t *testing.T) {
	// The IJ access pattern re-touches a component's right sub-tables
	// while lefts stream through once; LRU keeps the rights, FIFO ages
	// them out. Model that shape: hot keys re-read between cold inserts.
	run := func(c Cache[string, int]) int64 {
		c.Put("hot1", 0, 10)
		c.Put("hot2", 0, 10)
		for i := 0; i < 50; i++ {
			c.Get("hot1")
			c.Get("hot2")
			c.Put(fmt.Sprintf("cold%d", i), i, 10) // capacity 40: evicts
		}
		return c.Stats().Hits
	}
	lruHits := run(NewLRU[string, int](40))
	fifoHits := run(NewFIFO[string, int](40))
	if lruHits <= fifoHits {
		t.Errorf("LRU hits (%d) should beat FIFO hits (%d) on looping reuse", lruHits, fifoHits)
	}
}

func benchPolicy(b *testing.B, c Cache[int, int]) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	keys := make([]int, 1<<12)
	for i := range keys {
		keys[i] = r.Intn(512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(len(keys)-1)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, k, 16)
		}
	}
}

func BenchmarkLRU(b *testing.B)   { benchPolicy(b, NewLRU[int, int](4096)) }
func BenchmarkFIFO(b *testing.B)  { benchPolicy(b, NewFIFO[int, int](4096)) }
func BenchmarkClock(b *testing.B) { benchPolicy(b, NewClock[int, int](4096)) }
