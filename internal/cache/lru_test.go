package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	c := NewLRU[string, int](100)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %v,%v", v, ok)
	}
	if _, ok := c.Get("zzz"); ok {
		t.Error("unexpected hit")
	}
	if c.Len() != 2 || c.Bytes() != 20 {
		t.Errorf("Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU[string, int](30)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Put("c", 3, 10)
	// Touch a so b becomes LRU.
	c.Get("a")
	c.Put("d", 4, 10)
	if c.Contains("b") {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Errorf("%s should be cached", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
}

func TestOversizeValueNotCached(t *testing.T) {
	c := NewLRU[string, int](10)
	c.Put("big", 1, 100)
	if c.Contains("big") || c.Bytes() != 0 {
		t.Error("oversize value must not be cached")
	}
	// And it must not have evicted existing entries.
	c.Put("a", 1, 5)
	c.Put("big", 2, 100)
	if !c.Contains("a") {
		t.Error("oversize Put must not evict existing entries")
	}
}

func TestReplaceUpdatesSize(t *testing.T) {
	c := NewLRU[string, int](100)
	c.Put("a", 1, 10)
	c.Put("a", 2, 50)
	if c.Bytes() != 50 || c.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d", c.Bytes(), c.Len())
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
}

func TestRemoveAndClear(t *testing.T) {
	c := NewLRU[string, int](100)
	c.Put("a", 1, 10)
	if !c.Remove("a") || c.Remove("a") {
		t.Error("Remove semantics wrong")
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Error("Remove must not count as eviction")
	}
	c.Put("b", 2, 10)
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Error("Clear failed")
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Put("a", 1, 1)
	if c.Len() != 0 {
		t.Error("zero-capacity cache must store nothing")
	}
}

func TestOnEvict(t *testing.T) {
	c := NewLRU[string, int](20)
	var evicted []string
	c.OnEvict(func(k string, _ int) { evicted = append(evicted, k) })
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Put("c", 3, 10) // evicts a
	c.Put("b", 4, 10) // displaces old b
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Errorf("evicted = %v", evicted)
	}
}

func TestResetStats(t *testing.T) {
	c := NewLRU[string, int](10)
	c.Get("x")
	c.ResetStats()
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU[int, int](1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				k := r.Intn(256)
				if r.Intn(2) == 0 {
					c.Put(k, k, 16)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > c.Capacity() {
		t.Errorf("capacity violated: %d > %d", c.Bytes(), c.Capacity())
	}
}

// TestPropCapacityNeverExceeded drives a random operation sequence and
// checks the byte bound and bookkeeping invariants after every step.
func TestPropCapacityNeverExceeded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := int64(1 + r.Intn(200))
		c := NewLRU[int, string](capacity)
		live := make(map[int]int64)
		c.OnEvict(func(k int, _ string) { delete(live, k) })
		for step := 0; step < 300; step++ {
			k := r.Intn(30)
			switch r.Intn(3) {
			case 0:
				size := int64(1 + r.Intn(60))
				c.Put(k, fmt.Sprint(k), size)
				if size <= capacity {
					live[k] = size
				}
			case 1:
				c.Get(k)
			case 2:
				if c.Remove(k) {
					delete(live, k)
				}
			}
			if c.Bytes() > capacity {
				t.Logf("capacity exceeded: %d > %d", c.Bytes(), capacity)
				return false
			}
			var sum int64
			for _, s := range live {
				sum += s
			}
			if sum != c.Bytes() || len(live) != c.Len() {
				t.Logf("bookkeeping drift: model %d bytes/%d entries, cache %d/%d",
					sum, len(live), c.Bytes(), c.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropLRUOrderMatchesModel(t *testing.T) {
	// Uniform entry size 1 so the cache behaves like a classic count-bounded
	// LRU, compared against a simple slice model.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		c := NewLRU[int, int](int64(n))
		var order []int // order[0] = LRU ... last = MRU
		touch := func(k int) {
			for i, v := range order {
				if v == k {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, k)
			if len(order) > n {
				order = order[1:]
			}
		}
		for step := 0; step < 500; step++ {
			k := r.Intn(20)
			if r.Intn(2) == 0 {
				c.Put(k, k, 1)
				touch(k)
			} else {
				_, hit := c.Get(k)
				inModel := false
				for _, v := range order {
					if v == k {
						inModel = true
						break
					}
				}
				if hit != inModel {
					t.Logf("step %d: hit=%v model=%v for key %d", step, hit, inModel, k)
					return false
				}
				if hit {
					touch(k)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
