package cache

import (
	"context"
	"errors"
	"sync"

	"sciview/internal/metrics"
)

// Flight deduplicates concurrent loads of the same key: while one caller
// (the leader) executes the load function, every other caller of the same
// key blocks and receives the leader's result. It is the fetch-deduplication
// layer the concurrent query service stacks on top of the Caching Service,
// so N queries missing the cache on one sub-table trigger exactly one BDS
// fetch instead of N.
//
// Unlike the classic singleflight, a leader failure with a context error
// (the leader's query was cancelled or timed out) does not poison the
// waiters: each waiter whose own context is still live retries and may
// become the next leader. Only genuine load errors are shared.
type Flight[K comparable, V any] struct {
	// Retryable, when set, extends the leader-handoff rule beyond context
	// errors: a leader failure it classifies as transient (e.g. an
	// injected fetch fault) is not shared with waiters — each live waiter
	// retries the load itself and may become the next leader. Set it
	// before the Flight is in use; it is read concurrently afterwards.
	Retryable func(error) bool

	mu    sync.Mutex
	calls map[K]*flightCall[V]

	leads  int64 // loads actually executed
	shared int64 // callers served by another caller's load

	// metLeads/metShared mirror the counters into the live metrics
	// registry when set (nil-safe no-ops otherwise).
	metLeads  *metrics.Counter
	metShared *metrics.Counter
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewFlight returns an empty deduplicator.
func NewFlight[K comparable, V any]() *Flight[K, V] {
	return &Flight[K, V]{calls: make(map[K]*flightCall[V])}
}

// SetMetrics wires live dedup counters (leads = loads executed, shared =
// callers served by another caller's load). Call before the Flight is in
// use.
func (f *Flight[K, V]) SetMetrics(leads, shared *metrics.Counter) {
	f.metLeads, f.metShared = leads, shared
}

// Do returns the result of load for key, collapsing concurrent calls with
// the same key into a single load execution. The boolean reports whether
// the result came from another caller's load (a dedup hit). Waiters whose
// own ctx expires return ctx.Err() without waiting further; waiters that
// observe the leader fail with a context error retry the load themselves.
func (f *Flight[K, V]) Do(ctx context.Context, key K, load func() (V, error)) (V, bool, error) {
	var zero V
	for {
		if err := ctx.Err(); err != nil {
			return zero, false, err
		}
		f.mu.Lock()
		if c, ok := f.calls[key]; ok {
			f.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return zero, false, ctx.Err()
			}
			if c.err != nil && (isContextErr(c.err) || (f.Retryable != nil && f.Retryable(c.err))) {
				// The leader's query died for its own reasons (context) or
				// hit a transient fault; this caller is still live, so try
				// again (and possibly lead).
				continue
			}
			f.mu.Lock()
			f.shared++
			f.mu.Unlock()
			f.metShared.Inc()
			return c.val, true, c.err
		}
		c := &flightCall[V]{done: make(chan struct{})}
		f.calls[key] = c
		f.leads++
		f.mu.Unlock()
		f.metLeads.Inc()

		c.val, c.err = load()
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
		return c.val, false, c.err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// FlightStats is a snapshot of deduplication effectiveness.
type FlightStats struct {
	// Leads counts loads actually executed; Shared counts callers that
	// were served by someone else's load. The dedup hit rate is
	// Shared / (Leads + Shared).
	Leads  int64
	Shared int64
}

// Stats returns a snapshot of the counters.
func (f *Flight[K, V]) Stats() FlightStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightStats{Leads: f.leads, Shared: f.shared}
}

// ResetStats zeroes the counters (between experiment runs).
func (f *Flight[K, V]) ResetStats() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.leads, f.shared = 0, 0
}
