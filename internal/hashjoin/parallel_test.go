package hashjoin

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sciview/internal/tuple"
)

// makeSkewedPair builds a pair with duplicate keys (about dup rows per
// key) so chains are exercised, sized above ParallelThreshold.
func makeSkewedPair(n, dup int, seed int64) (*tuple.SubTable, *tuple.SubTable) {
	r := rand.New(rand.NewSource(seed))
	left := tuple.NewSubTable(tuple.ID{Table: 0, Chunk: 0}, leftSchema(), n)
	right := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 0}, rightSchema(), n)
	keys := n / dup
	for i := 0; i < n; i++ {
		k := i % keys
		left.AppendRow(float32(k%64), float32(k/64), float32(i))
	}
	for _, i := range r.Perm(n) {
		k := i % keys
		right.AppendRow(float32(k%64), float32(k/64), float32(i)+0.5)
	}
	return left, right
}

// TestParallelByteIdentical pins the tentpole invariant: the parallel
// kernels produce byte-for-byte the same output as the serial ones, for
// every worker count, including with duplicate keys (chains).
func TestParallelByteIdentical(t *testing.T) {
	for _, tc := range []struct{ n, dup int }{
		{ParallelThreshold, 1},      // unique keys, just above the threshold
		{ParallelThreshold * 2, 4},  // chains of ~4
		{ParallelThreshold * 2, 64}, // heavy skew
	} {
		t.Run(fmt.Sprintf("n=%d dup=%d", tc.n, tc.dup), func(t *testing.T) {
			left, right := makeSkewedPair(tc.n, tc.dup, int64(tc.n+tc.dup))
			keys := []string{"x", "y"}
			outSchema := left.Schema.JoinResult(right.Schema, keys, "r_")

			htSerial, err := BuildParallel(left, keys, 1, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref := tuple.NewSubTable(tuple.ID{}, outSchema, 0)
			refMatches, err := htSerial.ProbeParallel(right, keys, 1, 1, ref, nil)
			if err != nil {
				t.Fatal(err)
			}
			refBytes := tuple.Encode(nil, ref)

			for _, workers := range []int{2, 3, 4, 0} {
				ht, err := BuildParallel(left, keys, 1, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				out := tuple.NewSubTable(tuple.ID{}, outSchema, 0)
				matches, err := ht.ProbeParallel(right, keys, 1, workers, out, nil)
				if err != nil {
					t.Fatal(err)
				}
				if matches != refMatches {
					t.Fatalf("workers=%d: matches = %d, want %d", workers, matches, refMatches)
				}
				if !bytes.Equal(tuple.Encode(nil, out), refBytes) {
					t.Fatalf("workers=%d: output differs from serial probe", workers)
				}
			}
		})
	}
}

// TestParallelStatsExact pins the accounting contract: worker count never
// changes the charged operation counts.
func TestParallelStatsExact(t *testing.T) {
	left, right := makeSkewedPair(ParallelThreshold*2, 4, 9)
	keys := []string{"x", "y"}
	outSchema := left.Schema.JoinResult(right.Schema, keys, "r_")
	const wf = 3
	want := func(workers int) (built, probed, matches int64) {
		var stats Stats
		ht, err := BuildParallel(left, keys, wf, workers, &stats)
		if err != nil {
			t.Fatal(err)
		}
		out := tuple.NewSubTable(tuple.ID{}, outSchema, 0)
		if _, err := ht.ProbeParallel(right, keys, wf, workers, out, &stats); err != nil {
			t.Fatal(err)
		}
		return stats.TuplesBuilt.Load(), stats.TuplesProbed.Load(), stats.Matches.Load()
	}
	b1, p1, m1 := want(1)
	if b1 != int64(left.NumRows()*wf) || p1 != int64(right.NumRows()*wf) {
		t.Fatalf("serial stats: built %d probed %d", b1, p1)
	}
	b4, p4, m4 := want(4)
	if b1 != b4 || p1 != p4 || m1 != m4 {
		t.Fatalf("stats differ: serial (%d,%d,%d) vs 4 workers (%d,%d,%d)", b1, p1, m1, b4, p4, m4)
	}
}
