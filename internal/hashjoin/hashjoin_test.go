package hashjoin

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sciview/internal/tuple"
)

func leftSchema() tuple.Schema {
	return tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "oilp", Kind: tuple.Measure},
	)
}

func rightSchema() tuple.Schema {
	return tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "wp", Kind: tuple.Measure},
	)
}

// makePair builds matching left/right tables over an n-point key set with
// selectivity 1 (each left key has exactly one right partner), with the
// right side shuffled.
func makePair(n int, seed int64) (*tuple.SubTable, *tuple.SubTable) {
	r := rand.New(rand.NewSource(seed))
	left := tuple.NewSubTable(tuple.ID{Table: 0, Chunk: 0}, leftSchema(), n)
	right := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 0}, rightSchema(), n)
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		x, y := float32(i%64), float32(i/64)
		left.AppendRow(x, y, float32(i))
	}
	for _, i := range perm {
		x, y := float32(i%64), float32(i/64)
		right.AppendRow(x, y, float32(i)+0.5)
	}
	return left, right
}

func TestJoinSelectivityOne(t *testing.T) {
	left, right := makePair(500, 1)
	var stats Stats
	out, err := Join(left, right, []string{"x", "y"}, 1, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 500 {
		t.Fatalf("result rows = %d, want 500", out.NumRows())
	}
	// Result schema: x, y, oilp, wp.
	want := []string{"x", "y", "oilp", "wp"}
	if got := out.Schema.Names(); len(got) != 4 || got[0] != want[0] || got[3] != want[3] {
		t.Fatalf("result schema = %v", got)
	}
	// Every row: oilp = i, wp = i+0.5 for key i.
	for r := 0; r < out.NumRows(); r++ {
		i := out.Value(r, 2)
		if out.Value(r, 3) != i+0.5 {
			t.Fatalf("row %d: oilp=%v wp=%v mismatched", r, i, out.Value(r, 3))
		}
	}
	if stats.TuplesBuilt.Load() != 500 || stats.TuplesProbed.Load() != 500 || stats.Matches.Load() != 500 {
		t.Errorf("stats = built %d probed %d matches %d",
			stats.TuplesBuilt.Load(), stats.TuplesProbed.Load(), stats.Matches.Load())
	}
}

func TestJoinNoMatches(t *testing.T) {
	left, _ := makePair(100, 2)
	right := tuple.NewSubTable(tuple.ID{}, rightSchema(), 0)
	for i := 0; i < 100; i++ {
		right.AppendRow(float32(i+1000), 0, 1)
	}
	out, err := Join(left, right, []string{"x", "y"}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Errorf("expected empty result, got %d rows", out.NumRows())
	}
}

func TestJoinManyToMany(t *testing.T) {
	// 3 left rows and 2 right rows share one key: 6 result tuples.
	left := tuple.NewSubTable(tuple.ID{}, leftSchema(), 0)
	right := tuple.NewSubTable(tuple.ID{}, rightSchema(), 0)
	for i := 0; i < 3; i++ {
		left.AppendRow(7, 7, float32(i))
	}
	for i := 0; i < 2; i++ {
		right.AppendRow(7, 7, float32(i))
	}
	out, err := Join(left, right, []string{"x", "y"}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 6 {
		t.Errorf("rows = %d, want 6", out.NumRows())
	}
}

func TestWorkFactorCountsScale(t *testing.T) {
	left, right := makePair(200, 3)
	var s1, s2 Stats
	if _, err := Join(left, right, []string{"x", "y"}, 1, &s1); err != nil {
		t.Fatal(err)
	}
	if _, err := Join(left, right, []string{"x", "y"}, 4, &s2); err != nil {
		t.Fatal(err)
	}
	if s2.TuplesBuilt.Load() != 4*s1.TuplesBuilt.Load() {
		t.Errorf("built: %d vs %d", s2.TuplesBuilt.Load(), s1.TuplesBuilt.Load())
	}
	if s2.TuplesProbed.Load() != 4*s1.TuplesProbed.Load() {
		t.Errorf("probed: %d vs %d", s2.TuplesProbed.Load(), s1.TuplesProbed.Load())
	}
	// Result must be identical regardless of work factor.
	if s2.Matches.Load() != s1.Matches.Load() {
		t.Errorf("matches differ: %d vs %d", s2.Matches.Load(), s1.Matches.Load())
	}
}

func TestBuildErrors(t *testing.T) {
	left, right := makePair(10, 5)
	if _, err := Build(left, []string{"nope"}, 1, nil); err == nil {
		t.Error("unknown build key should fail")
	}
	ht, err := Build(left, []string{"x", "y"}, 0, nil) // workFactor 0 clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if ht.Left() != left {
		t.Error("Left() accessor wrong")
	}
	out := tuple.NewSubTable(tuple.ID{}, leftSchema(), 0) // wrong arity (3 vs 4)
	if _, err := ht.Probe(right, []string{"x", "y"}, 1, out, nil); err == nil {
		t.Error("wrong output schema should fail")
	}
	if _, err := ht.Probe(right, []string{"zz"}, 1, out, nil); err == nil {
		t.Error("unknown probe key should fail")
	}
}

func sortRows(st *tuple.SubTable) [][]float32 {
	rows := make([][]float32, st.NumRows())
	for r := range rows {
		rows[r] = st.Row(r, nil)
	}
	sort.Slice(rows, func(i, j int) bool {
		for c := range rows[i] {
			if rows[i][c] != rows[j][c] {
				return rows[i][c] < rows[j][c]
			}
		}
		return false
	})
	return rows
}

func TestPropMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Small key domain to force collisions and many-to-many matches.
		nl, nr := 1+r.Intn(60), 1+r.Intn(60)
		left := tuple.NewSubTable(tuple.ID{}, leftSchema(), nl)
		right := tuple.NewSubTable(tuple.ID{}, rightSchema(), nr)
		for i := 0; i < nl; i++ {
			left.AppendRow(float32(r.Intn(8)), float32(r.Intn(8)), r.Float32())
		}
		for i := 0; i < nr; i++ {
			right.AppendRow(float32(r.Intn(8)), float32(r.Intn(8)), r.Float32())
		}
		keys := []string{"x", "y"}
		got, err := Join(left, right, keys, 1, nil)
		if err != nil {
			return false
		}
		want, err := NestedLoop(left, right, keys)
		if err != nil {
			return false
		}
		if got.NumRows() != want.NumRows() {
			t.Logf("rows: hash %d, nested loop %d", got.NumRows(), want.NumRows())
			return false
		}
		gr, wr := sortRows(got), sortRows(want)
		for i := range gr {
			for c := range gr[i] {
				if gr[i][c] != wr[i][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSingleKeyJoin(t *testing.T) {
	left, right := makePair(64, 7) // all y values distinct for i<64
	out, err := Join(left, right, []string{"x"}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// n=64: x = i%64 all distinct, so 64 matches; schema keeps right y as r_y.
	if out.NumRows() != 64 {
		t.Errorf("rows = %d, want 64", out.NumRows())
	}
	if out.Schema.Index("r_y") < 0 {
		t.Errorf("expected r_y in schema %v", out.Schema.Names())
	}
}
