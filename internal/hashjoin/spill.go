package hashjoin

import (
	"fmt"
	"time"

	"sciview/internal/tuple"
)

// Out-of-core join: when a build side exceeds its memory charge, the
// left (build) relation is split into partitions by a salted hash of
// the packed join key, each partition is round-tripped through scratch
// (paying the spill I/O degraded mode models), and each resulting leaf
// builds a bounded hash table and probes the full streamed right side.
//
// The output is byte-identical to the in-memory join at any budget:
// probing records each match's right-row index, and the per-leaf
// outputs are merged by ascending right-row index. All left rows that
// can match a given right row share its packed key, hence hash to the
// same leaf at every salt — so the per-right-row match runs are whole
// within one leaf and arrive in the same ascending left-row chain order
// the in-memory probe emits.

// PartFunc maps a packed join key and a recursion salt to a partition
// hash. Callers supply their engine's salted hash so recursive splits
// stay consistent with any partitioning already applied upstream.
type PartFunc func(key uint64, salt uint64) uint64

// SpillHooks are the caller's I/O and accounting callbacks.
type SpillHooks struct {
	// RoundTrip spills one build partition to scratch and reads it back,
	// returning the (re-decoded) partition. This is where the scratch
	// manager bills spill bytes; an error aborts the join.
	RoundTrip func(label string, st *tuple.SubTable) (*tuple.SubTable, error)
	// Built and Probed, when non-nil, are called after each leaf build /
	// probe with the sub-table processed and the phase start time, so
	// the engine can charge modeled CPU and record spans.
	Built  func(label string, st *tuple.SubTable, start time.Time)
	Probed func(label string, st *tuple.SubTable, start time.Time)
}

// taggedMatches is one leaf's probe output: the joined rows plus each
// row's originating right-row index (ascending; runs of equal indices
// are the per-right-row chains, already in left-row order).
type taggedMatches struct {
	st   *tuple.SubTable
	ridx []int32
}

// JoinPairSpill joins left and right into out with the build side
// bounded by memBytes: left partitions larger than memBytes are split
// (fanout ways, salted by depth) and round-tripped through scratch
// until they fit or maxDepth is reached (a partition of duplicate keys
// cannot shrink — it falls back to an oversized build). Returns the
// number of leaf partitions built and the match count.
func JoinPairSpill(left, right *tuple.SubTable, keys []string, label string,
	workFactor, workers int, memBytes int64, fanout, maxDepth int,
	part PartFunc, hooks SpillHooks, out *tuple.SubTable, stats *Stats) (leaves, matches int, err error) {
	if workFactor < 1 {
		workFactor = 1
	}
	if fanout < 2 {
		fanout = 2
	}
	lKeyIdxs, err := left.Schema.Indexes(keys)
	if err != nil {
		return 0, 0, fmt.Errorf("hashjoin: spill join: %w", err)
	}
	rKeyIdxs, err := right.Schema.Indexes(keys)
	if err != nil {
		return 0, 0, fmt.Errorf("hashjoin: spill join: %w", err)
	}
	isKey := make([]bool, right.Schema.NumAttrs())
	for _, i := range rKeyIdxs {
		isKey[i] = true
	}
	var rValIdxs []int
	for i := range right.Schema.Attrs {
		if !isKey[i] {
			rValIdxs = append(rValIdxs, i)
		}
	}
	wantAttrs := left.Schema.NumAttrs() + len(rValIdxs)
	if out.Schema.NumAttrs() != wantAttrs {
		return 0, 0, fmt.Errorf("hashjoin: output schema has %d attrs, want %d", out.Schema.NumAttrs(), wantAttrs)
	}

	var tagged []taggedMatches
	var process func(pt *tuple.SubTable, salt uint64, depth int, plabel string) error
	process = func(pt *tuple.SubTable, salt uint64, depth int, plabel string) error {
		if pt.NumRows() == 0 {
			return nil
		}
		if memBytes > 0 && int64(pt.Bytes()) > memBytes && depth < maxDepth {
			subs := make([]*tuple.SubTable, fanout)
			row := tuple.GetRow(pt.Schema.NumAttrs())
			for r := 0; r < pt.NumRows(); r++ {
				i := int(part(pt.Key(r, lKeyIdxs), salt) % uint64(fanout))
				if subs[i] == nil {
					subs[i] = tuple.NewSubTable(pt.ID, pt.Schema, 0)
				}
				subs[i].AppendRow(pt.Row(r, row)...)
			}
			tuple.PutRow(row)
			for i, sub := range subs {
				if sub == nil {
					continue
				}
				sl := fmt.Sprintf("%s.%d", plabel, i)
				rt, err := hooks.RoundTrip(sl, sub)
				if err != nil {
					return err
				}
				if err := process(rt, salt+1, depth+1, sl); err != nil {
					return err
				}
			}
			return nil
		}
		// Leaf: bounded build, tagged probe of the full right side.
		start := time.Now()
		ht, err := BuildParallel(pt, keys, workFactor, workers, stats)
		if err != nil {
			return err
		}
		if hooks.Built != nil {
			hooks.Built(plabel, pt, start)
		}
		start = time.Now()
		tm := taggedMatches{st: tuple.NewSubTable(out.ID, out.Schema, 0)}
		m := ht.probeTagged(right, rKeyIdxs, rValIdxs, tm.st, &tm.ridx)
		if stats != nil {
			stats.TuplesProbed.Add(int64(right.NumRows() * workFactor))
			stats.Matches.Add(int64(m))
		}
		if hooks.Probed != nil {
			hooks.Probed(plabel, right, start)
		}
		matches += m
		leaves++
		tagged = append(tagged, tm)
		return nil
	}
	if err := process(left, 0, 0, label); err != nil {
		return leaves, matches, err
	}

	// Merge leaf outputs by ascending right-row index. Index sets are
	// disjoint across leaves (equal keys hash identically at every salt),
	// so this interleaving reproduces the in-memory probe order exactly.
	pos := make([]int, len(tagged))
	row := tuple.GetRow(out.Schema.NumAttrs())
	defer tuple.PutRow(row)
	for {
		best := -1
		var bestR int32
		for i := range tagged {
			if pos[i] >= len(tagged[i].ridx) {
				continue
			}
			if r := tagged[i].ridx[pos[i]]; best < 0 || r < bestR {
				best, bestR = i, r
			}
		}
		if best < 0 {
			break
		}
		// Copy this leaf's whole run of matches for right row bestR.
		t := &tagged[best]
		for pos[best] < len(t.ridx) && t.ridx[pos[best]] == bestR {
			out.AppendRow(t.st.Row(pos[best], row)...)
			pos[best]++
		}
	}
	return leaves, matches, nil
}

// probeTagged is probeRange over the whole right side, additionally
// recording each match's right-row index. Chains are walked in
// ascending left-row order, exactly as probeRange does.
func (ht *HashTable) probeTagged(right *tuple.SubTable, rKeyIdxs, rValIdxs []int, out *tuple.SubTable, ridx *[]int32) int {
	lAttrs := ht.left.Schema.NumAttrs()
	row := tuple.GetRow(lAttrs + len(rValIdxs))
	defer tuple.PutRow(row)
	matches := 0
	for r := 0; r < right.NumRows(); r++ {
		k := right.Key(r, rKeyIdxs)
		for lr := ht.lookup(k); lr >= 0; lr = ht.next[lr] {
			if !ht.left.KeysEqual(int(lr), ht.keyIdxs, right, r, rKeyIdxs) {
				continue
			}
			for c := 0; c < lAttrs; c++ {
				row[c] = ht.left.Value(int(lr), c)
			}
			for i, rc := range rValIdxs {
				row[lAttrs+i] = right.Value(r, rc)
			}
			out.AppendRow(row...)
			*ridx = append(*ridx, int32(r))
			matches++
		}
	}
	return matches
}
