// Package hashjoin implements the in-memory hash join sub-routine both
// distributed join algorithms employ: build a hash table over the left
// (inner) relation keyed on the join attributes, then probe it with each
// record of the right (outer) relation.
//
// As in the paper's cost model, the build stores only row references (not
// record copies), so build and probe cost per tuple is independent of
// record size (α_build, α_lookup). The workFactor argument multiplies the
// *charged* operation counts (Stats), the paper's technique of performing
// each build/lookup k times to emulate a 1/k-speed CPU; the QES charges
// those operations to its compute node's modeled CPU.
package hashjoin

import (
	"fmt"
	"sync/atomic"

	"sciview/internal/tuple"
)

// Stats counts the CPU-cost drivers of the cost models. Counters are
// atomic so concurrent QES instances can share one Stats.
type Stats struct {
	// TuplesBuilt counts hash-table insertions (×WorkFactor repeats).
	TuplesBuilt atomic.Int64
	// TuplesProbed counts lookup operations (×WorkFactor repeats).
	TuplesProbed atomic.Int64
	// Matches counts result tuples produced.
	Matches atomic.Int64
}

// HashTable is a hash table over a left sub-table, keyed on join
// attributes, mapping packed keys to row indices.
type HashTable struct {
	left    *tuple.SubTable
	keyIdxs []int
	buckets map[uint64][]int32
}

// Build constructs a hash table over left on the given key attributes,
// repeating each insertion workFactor times (>= 1) and accounting into
// stats (which may be nil).
func Build(left *tuple.SubTable, keys []string, workFactor int, stats *Stats) (*HashTable, error) {
	if workFactor < 1 {
		workFactor = 1
	}
	keyIdxs, err := left.Schema.Indexes(keys)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: build: %w", err)
	}
	ht := &HashTable{
		left:    left,
		keyIdxs: keyIdxs,
		buckets: make(map[uint64][]int32, left.NumRows()),
	}
	n := left.NumRows()
	for r := 0; r < n; r++ {
		k := left.Key(r, keyIdxs)
		ht.buckets[k] = append(ht.buckets[k], int32(r))
	}
	if stats != nil {
		stats.TuplesBuilt.Add(int64(n * workFactor))
	}
	return ht, nil
}

// Left returns the build-side sub-table.
func (ht *HashTable) Left() *tuple.SubTable { return ht.left }

// Probe scans right, looks each record up in the hash table (workFactor
// times), and appends matching joined records to out, whose schema must be
// left.Schema.JoinResult(right.Schema, keys, ...). It returns the number of
// result tuples appended.
func (ht *HashTable) Probe(right *tuple.SubTable, keys []string, workFactor int, out *tuple.SubTable, stats *Stats) (int, error) {
	if workFactor < 1 {
		workFactor = 1
	}
	rKeyIdxs, err := right.Schema.Indexes(keys)
	if err != nil {
		return 0, fmt.Errorf("hashjoin: probe: %w", err)
	}
	// Non-key right columns, in right schema order: these follow the left
	// attributes in the result schema.
	isKey := make([]bool, right.Schema.NumAttrs())
	for _, i := range rKeyIdxs {
		isKey[i] = true
	}
	var rValIdxs []int
	for i := range right.Schema.Attrs {
		if !isKey[i] {
			rValIdxs = append(rValIdxs, i)
		}
	}
	wantAttrs := ht.left.Schema.NumAttrs() + len(rValIdxs)
	if out.Schema.NumAttrs() != wantAttrs {
		return 0, fmt.Errorf("hashjoin: output schema has %d attrs, want %d", out.Schema.NumAttrs(), wantAttrs)
	}

	n := right.NumRows()
	matches := 0
	row := make([]float32, wantAttrs)
	for r := 0; r < n; r++ {
		k := right.Key(r, rKeyIdxs)
		for _, lr := range ht.buckets[k] {
			if !ht.left.KeysEqual(int(lr), ht.keyIdxs, right, r, rKeyIdxs) {
				continue
			}
			for c := 0; c < ht.left.Schema.NumAttrs(); c++ {
				row[c] = ht.left.Value(int(lr), c)
			}
			for i, rc := range rValIdxs {
				row[ht.left.Schema.NumAttrs()+i] = right.Value(r, rc)
			}
			out.AppendRow(row...)
			matches++
		}
	}
	if stats != nil {
		stats.TuplesProbed.Add(int64(n * workFactor))
		stats.Matches.Add(int64(matches))
	}
	return matches, nil
}

// Join builds over left and probes with right in one call, returning the
// joined sub-table. It is the per-edge operation of the IJ algorithm and
// the per-bucket-pair operation of Grace Hash.
func Join(left, right *tuple.SubTable, keys []string, workFactor int, stats *Stats) (*tuple.SubTable, error) {
	ht, err := Build(left, keys, workFactor, stats)
	if err != nil {
		return nil, err
	}
	outSchema := left.Schema.JoinResult(right.Schema, keys, "r_")
	out := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: -1}, outSchema, 0)
	if _, err := ht.Probe(right, keys, workFactor, out, stats); err != nil {
		return nil, err
	}
	return out, nil
}

// NestedLoop is the O(n·m) reference join used to validate the hash join
// in tests. It scans the right (outer) relation in the outer loop, so when
// left keys are unique the output order matches Probe's.
func NestedLoop(left, right *tuple.SubTable, keys []string) (*tuple.SubTable, error) {
	lIdx, err := left.Schema.Indexes(keys)
	if err != nil {
		return nil, err
	}
	rIdx, err := right.Schema.Indexes(keys)
	if err != nil {
		return nil, err
	}
	isKey := make([]bool, right.Schema.NumAttrs())
	for _, i := range rIdx {
		isKey[i] = true
	}
	var rValIdxs []int
	for i := range right.Schema.Attrs {
		if !isKey[i] {
			rValIdxs = append(rValIdxs, i)
		}
	}
	outSchema := left.Schema.JoinResult(right.Schema, keys, "r_")
	out := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: -1}, outSchema, 0)
	row := make([]float32, outSchema.NumAttrs())
	for rr := 0; rr < right.NumRows(); rr++ {
		for lr := 0; lr < left.NumRows(); lr++ {
			if !left.KeysEqual(lr, lIdx, right, rr, rIdx) {
				continue
			}
			for c := 0; c < left.Schema.NumAttrs(); c++ {
				row[c] = left.Value(lr, c)
			}
			for i, rc := range rValIdxs {
				row[left.Schema.NumAttrs()+i] = right.Value(rr, rc)
			}
			out.AppendRow(row...)
		}
	}
	return out, nil
}
