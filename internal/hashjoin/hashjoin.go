// Package hashjoin implements the in-memory hash join sub-routine both
// distributed join algorithms employ: build a hash table over the left
// (inner) relation keyed on the join attributes, then probe it with each
// record of the right (outer) relation.
//
// The table is a flat open-addressing structure — power-of-two capacity,
// linear probing, packed uint64 keys with per-row chain links — rather than
// a Go map, so build is a few array writes per row and probe a few array
// reads, with no per-bucket slice headers or map overhead. The table is
// split into hash partitions so Build can insert partitions concurrently
// and Probe can scan disjoint right-row ranges concurrently; chains are
// linked in ascending left-row order, which makes the output byte-identical
// regardless of worker count.
//
// As in the paper's cost model, the build stores only row references (not
// record copies), so build and probe cost per tuple is independent of
// record size (α_build, α_lookup). The workFactor argument multiplies the
// *charged* operation counts (Stats), the paper's technique of performing
// each build/lookup k times to emulate a 1/k-speed CPU; the QES charges
// those operations to its compute node's modeled CPU.
package hashjoin

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sciview/internal/tuple"
)

// ParallelThreshold is the row count below which Build/Probe stay serial
// even when more workers are allowed: goroutine fan-out costs more than it
// saves on small sub-tables.
const ParallelThreshold = 8192

// Workers resolves a requested parallelism degree against the host and the
// row count: requested <= 0 means "use all CPUs", and inputs below
// ParallelThreshold always run serially.
func Workers(rows, requested int) int {
	if rows < ParallelThreshold {
		return 1
	}
	max := runtime.GOMAXPROCS(0)
	if requested <= 0 || requested > max {
		requested = max
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// Stats counts the CPU-cost drivers of the cost models. Counters are
// atomic so concurrent QES instances can share one Stats.
type Stats struct {
	// TuplesBuilt counts hash-table insertions (×WorkFactor repeats).
	TuplesBuilt atomic.Int64
	// TuplesProbed counts lookup operations (×WorkFactor repeats).
	TuplesProbed atomic.Int64
	// Matches counts result tuples produced.
	Matches atomic.Int64
}

// mix is the splitmix64 finalizer: it spreads the packed key bits so both
// the partition index (low bits) and the slot index (high bits) are well
// distributed even for the dense float32 bit patterns real keys have.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// HashTable is a flat open-addressing hash table over a left sub-table,
// keyed on join attributes, mapping packed keys to chains of row indices.
//
// Layout: the slot array is divided into nparts contiguous partitions
// (partition = low bits of the mixed hash). Each partition is an
// independent power-of-two open-addressing region at most half full.
// A slot is empty iff heads[slot] < 0; an occupied slot holds the packed
// key and the first left row of the chain, with next[row] linking the
// remaining rows in ascending order.
type HashTable struct {
	left    *tuple.SubTable
	keyIdxs []int

	nparts int      // power of two
	offs   []int32  // nparts+1 slot-range boundaries
	mask   []uint32 // per-partition capacity-1
	keys   []uint64 // packed key per occupied slot
	heads  []int32  // slot → first left row, -1 when empty
	next   []int32  // left row → next left row with equal key, -1 at end
}

// numParts picks the partition count for an n-row build: 1 below the
// parallel threshold, then enough partitions to keep per-partition inserts
// balanced, capped so tiny partitions never dominate. Depends only on n,
// never on the worker count, so the table layout is deterministic.
func numParts(n int) int {
	if n < ParallelThreshold {
		return 1
	}
	p := 1
	for p < 64 && n/(2*p) >= ParallelThreshold/2 {
		p *= 2
	}
	return p
}

func nextPow2(x int) int {
	p := 1
	for p < x {
		p *= 2
	}
	return p
}

// Build constructs a hash table over left on the given key attributes,
// repeating each insertion workFactor times (>= 1) and accounting into
// stats (which may be nil). It is BuildParallel with one worker.
func Build(left *tuple.SubTable, keys []string, workFactor int, stats *Stats) (*HashTable, error) {
	return BuildParallel(left, keys, workFactor, 1, stats)
}

// BuildParallel constructs the hash table with up to `workers` goroutines
// (<= 0 = all CPUs; small inputs stay serial regardless). The resulting
// table is identical for every worker count: partitioning depends only on
// the rows, and each partition's chains are linked in ascending row order.
func BuildParallel(left *tuple.SubTable, keys []string, workFactor, workers int, stats *Stats) (*HashTable, error) {
	if workFactor < 1 {
		workFactor = 1
	}
	keyIdxs, err := left.Schema.Indexes(keys)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: build: %w", err)
	}
	n := left.NumRows()
	nparts := numParts(n)
	ht := &HashTable{
		left:    left,
		keyIdxs: keyIdxs,
		nparts:  nparts,
		next:    make([]int32, n),
	}
	workers = Workers(n, workers)
	if workers > nparts {
		workers = nparts
	}

	// Pass 1: pack and mix every row key (embarrassingly parallel).
	rowKeys := make([]uint64, n)
	hashes := make([]uint64, n)
	runRanges(n, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			k := left.Key(r, keyIdxs)
			rowKeys[r] = k
			hashes[r] = mix(k)
		}
	})

	// Count rows per partition and lay out the slot ranges: each partition
	// gets a power-of-two region at most half full.
	pmask := uint64(nparts - 1)
	counts := make([]int32, nparts)
	for r := 0; r < n; r++ {
		counts[hashes[r]&pmask]++
	}
	ht.offs = make([]int32, nparts+1)
	ht.mask = make([]uint32, nparts)
	total := int32(0)
	for p := 0; p < nparts; p++ {
		cap := nextPow2(2 * int(counts[p]))
		if cap < 1 {
			cap = 1
		}
		ht.offs[p] = total
		ht.mask[p] = uint32(cap - 1)
		total += int32(cap)
	}
	ht.offs[nparts] = total
	ht.keys = make([]uint64, total)
	ht.heads = make([]int32, total)

	// Counting-sort rows into per-partition lists, preserving ascending row
	// order within each partition.
	rorder := make([]int32, n)
	pstart := make([]int32, nparts+1)
	pos := make([]int32, nparts)
	for p := 0; p < nparts; p++ {
		pstart[p+1] = pstart[p] + counts[p]
		pos[p] = pstart[p]
	}
	for r := 0; r < n; r++ {
		p := hashes[r] & pmask
		rorder[pos[p]] = int32(r)
		pos[p]++
	}

	// Pass 2: insert, one goroutine per partition block. tails[] is only
	// needed while chains grow; it is transient build scratch.
	tails := make([]int32, total)
	runRanges(nparts, workers, func(plo, phi int) {
		for p := plo; p < phi; p++ {
			base := ht.offs[p]
			m := int32(ht.mask[p])
			for s := base; s <= base+m; s++ {
				ht.heads[s] = -1
			}
			for _, r := range rorder[pstart[p]:pstart[p+1]] {
				k := rowKeys[r]
				slot := base + int32(uint32(hashes[r]>>32))&m
				for {
					if ht.heads[slot] < 0 {
						ht.heads[slot] = r
						ht.keys[slot] = k
						tails[slot] = r
						ht.next[r] = -1
						break
					}
					if ht.keys[slot] == k {
						ht.next[tails[slot]] = r
						tails[slot] = r
						ht.next[r] = -1
						break
					}
					slot = base + (slot-base+1)&m
				}
			}
		}
	})

	if stats != nil {
		stats.TuplesBuilt.Add(int64(n * workFactor))
	}
	return ht, nil
}

// runRanges splits [0, n) into `workers` contiguous ranges and runs fn on
// each; serial when workers <= 1.
func runRanges(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n == 0 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// Left returns the build-side sub-table.
func (ht *HashTable) Left() *tuple.SubTable { return ht.left }

// lookup returns the first left row whose packed key equals k, or -1.
func (ht *HashTable) lookup(k uint64) int32 {
	h := mix(k)
	p := h & uint64(ht.nparts-1)
	base := ht.offs[p]
	m := int32(ht.mask[p])
	slot := base + int32(uint32(h>>32))&m
	for {
		head := ht.heads[slot]
		if head < 0 {
			return -1
		}
		if ht.keys[slot] == k {
			return head
		}
		slot = base + (slot-base+1)&m
	}
}

// Probe scans right, looks each record up in the hash table (workFactor
// times), and appends matching joined records to out, whose schema must be
// left.Schema.JoinResult(right.Schema, keys, ...). It returns the number of
// result tuples appended. It is ProbeParallel with one worker.
func (ht *HashTable) Probe(right *tuple.SubTable, keys []string, workFactor int, out *tuple.SubTable, stats *Stats) (int, error) {
	return ht.ProbeParallel(right, keys, workFactor, 1, out, stats)
}

// ProbeParallel probes with up to `workers` goroutines (<= 0 = all CPUs;
// small inputs stay serial). Each worker scans a contiguous right-row range
// into its own output sub-table; the pieces are concatenated in range
// order, so the result is byte-identical to the serial probe.
func (ht *HashTable) ProbeParallel(right *tuple.SubTable, keys []string, workFactor, workers int, out *tuple.SubTable, stats *Stats) (int, error) {
	if workFactor < 1 {
		workFactor = 1
	}
	rKeyIdxs, err := right.Schema.Indexes(keys)
	if err != nil {
		return 0, fmt.Errorf("hashjoin: probe: %w", err)
	}
	// Non-key right columns, in right schema order: these follow the left
	// attributes in the result schema.
	isKey := make([]bool, right.Schema.NumAttrs())
	for _, i := range rKeyIdxs {
		isKey[i] = true
	}
	var rValIdxs []int
	for i := range right.Schema.Attrs {
		if !isKey[i] {
			rValIdxs = append(rValIdxs, i)
		}
	}
	wantAttrs := ht.left.Schema.NumAttrs() + len(rValIdxs)
	if out.Schema.NumAttrs() != wantAttrs {
		return 0, fmt.Errorf("hashjoin: output schema has %d attrs, want %d", out.Schema.NumAttrs(), wantAttrs)
	}

	n := right.NumRows()
	workers = Workers(n, workers)
	if workers <= 1 {
		matches := ht.probeRange(right, rKeyIdxs, rValIdxs, 0, n, out)
		if stats != nil {
			stats.TuplesProbed.Add(int64(n * workFactor))
			stats.Matches.Add(int64(matches))
		}
		return matches, nil
	}

	parts := make([]*tuple.SubTable, workers)
	partMatches := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		parts[w] = tuple.NewSubTable(out.ID, out.Schema, 0)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partMatches[w] = ht.probeRange(right, rKeyIdxs, rValIdxs, lo, hi, parts[w])
		}(w, lo, hi)
	}
	wg.Wait()
	matches := 0
	for w := 0; w < workers; w++ {
		matches += partMatches[w]
		if err := out.AppendAll(parts[w]); err != nil {
			return 0, fmt.Errorf("hashjoin: probe concat: %w", err)
		}
	}
	if stats != nil {
		stats.TuplesProbed.Add(int64(n * workFactor))
		stats.Matches.Add(int64(matches))
	}
	return matches, nil
}

// probeRange probes right rows [lo, hi) into out, returning the match
// count. Chains are walked in ascending left-row order, so appends happen
// in exactly the serial probe's order.
func (ht *HashTable) probeRange(right *tuple.SubTable, rKeyIdxs, rValIdxs []int, lo, hi int, out *tuple.SubTable) int {
	lAttrs := ht.left.Schema.NumAttrs()
	row := tuple.GetRow(lAttrs + len(rValIdxs))
	defer tuple.PutRow(row)
	matches := 0
	for r := lo; r < hi; r++ {
		k := right.Key(r, rKeyIdxs)
		for lr := ht.lookup(k); lr >= 0; lr = ht.next[lr] {
			if !ht.left.KeysEqual(int(lr), ht.keyIdxs, right, r, rKeyIdxs) {
				continue
			}
			for c := 0; c < lAttrs; c++ {
				row[c] = ht.left.Value(int(lr), c)
			}
			for i, rc := range rValIdxs {
				row[lAttrs+i] = right.Value(r, rc)
			}
			out.AppendRow(row...)
			matches++
		}
	}
	return matches
}

// Join builds over left and probes with right in one call, returning the
// joined sub-table. It is the per-edge operation of the IJ algorithm and
// the per-bucket-pair operation of Grace Hash.
func Join(left, right *tuple.SubTable, keys []string, workFactor int, stats *Stats) (*tuple.SubTable, error) {
	ht, err := Build(left, keys, workFactor, stats)
	if err != nil {
		return nil, err
	}
	outSchema := left.Schema.JoinResult(right.Schema, keys, "r_")
	out := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: -1}, outSchema, 0)
	if _, err := ht.Probe(right, keys, workFactor, out, stats); err != nil {
		return nil, err
	}
	return out, nil
}

// NestedLoop is the O(n·m) reference join used to validate the hash join
// in tests. It scans the right (outer) relation in the outer loop, so when
// left keys are unique the output order matches Probe's.
func NestedLoop(left, right *tuple.SubTable, keys []string) (*tuple.SubTable, error) {
	lIdx, err := left.Schema.Indexes(keys)
	if err != nil {
		return nil, err
	}
	rIdx, err := right.Schema.Indexes(keys)
	if err != nil {
		return nil, err
	}
	isKey := make([]bool, right.Schema.NumAttrs())
	for _, i := range rIdx {
		isKey[i] = true
	}
	var rValIdxs []int
	for i := range right.Schema.Attrs {
		if !isKey[i] {
			rValIdxs = append(rValIdxs, i)
		}
	}
	outSchema := left.Schema.JoinResult(right.Schema, keys, "r_")
	out := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: -1}, outSchema, 0)
	row := make([]float32, outSchema.NumAttrs())
	for rr := 0; rr < right.NumRows(); rr++ {
		for lr := 0; lr < left.NumRows(); lr++ {
			if !left.KeysEqual(lr, lIdx, right, rr, rIdx) {
				continue
			}
			for c := 0; c < left.Schema.NumAttrs(); c++ {
				row[c] = left.Value(lr, c)
			}
			for i, rc := range rValIdxs {
				row[left.Schema.NumAttrs()+i] = right.Value(rr, rc)
			}
			out.AppendRow(row...)
		}
	}
	return out, nil
}
