package hashjoin

import (
	"math"
	"math/rand"
	"testing"

	"sciview/internal/tuple"
)

// sameRows compares two sub-tables row by row at the bit level.
func sameRows(a, b *tuple.SubTable) bool {
	if a.NumRows() != b.NumRows() || a.Schema.NumAttrs() != b.Schema.NumAttrs() {
		return false
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.Schema.NumAttrs(); c++ {
			if math.Float32bits(a.Value(r, c)) != math.Float32bits(b.Value(r, c)) {
				return false
			}
		}
	}
	return true
}

// spillPart is the test PartFunc: the same salted splitmix the GH
// engine uses for recursive overflow splits.
func spillPart(key, salt uint64) uint64 {
	return mix(key ^ (salt+1)*0x9E3779B97F4A7C15)
}

// makeDupPair builds a pair where keys repeat on both sides, so probe
// chains are longer than one and ordering bugs show up as reordered
// equal-key runs.
func makeDupPair(n, dup int, seed int64) (*tuple.SubTable, *tuple.SubTable) {
	r := rand.New(rand.NewSource(seed))
	left := tuple.NewSubTable(tuple.ID{Table: 0, Chunk: 0}, leftSchema(), n)
	right := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 0}, rightSchema(), n)
	for i := 0; i < n; i++ {
		k := i % (n / dup)
		left.AppendRow(float32(k%64), float32(k/64), float32(i))
	}
	for _, i := range r.Perm(n) {
		k := i % (n / dup)
		right.AppendRow(float32(k%64), float32(k/64), float32(i)+0.5)
	}
	return left, right
}

// TestJoinPairSpillByteIdentical sweeps the build-side cap from
// "everything fits" down to a few rows and asserts the spilling join's
// output is byte-identical to the in-memory join at every cap.
func TestJoinPairSpillByteIdentical(t *testing.T) {
	keys := []string{"x", "y"}
	for _, tc := range []struct {
		name   string
		n, dup int
	}{
		{"unique", 600, 1},
		{"dup4", 600, 4},
		{"dup50", 600, 50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			left, right := makeDupPair(tc.n, tc.dup, 7)
			base, err := Join(left, right, keys, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, cap := range []int64{0, 1 << 20, 4096, 1024, 128} {
				var rts int
				hooks := SpillHooks{
					RoundTrip: func(label string, st *tuple.SubTable) (*tuple.SubTable, error) {
						rts++
						return st, nil // identity round-trip: I/O billing is the caller's job
					},
				}
				out := tuple.NewSubTable(base.ID, base.Schema, 0)
				leaves, matches, err := JoinPairSpill(left, right, keys, "t", 1, 1,
					cap, 8, 3, spillPart, hooks, out, nil)
				if err != nil {
					t.Fatalf("cap %d: %v", cap, err)
				}
				if matches != base.NumRows() {
					t.Fatalf("cap %d: %d matches, want %d", cap, matches, base.NumRows())
				}
				if !sameRows(out, base) {
					t.Fatalf("cap %d: output differs from in-memory join (leaves=%d)", cap, leaves)
				}
				if cap > 0 && int64(left.Bytes()) > cap && rts == 0 {
					t.Fatalf("cap %d: expected round-trips, got none", cap)
				}
			}
		})
	}
}

// TestJoinPairSpillDuplicateKeyFloor: a partition of all-equal keys can
// never shrink below the cap; the recursion must terminate at maxDepth
// with an oversized build instead of looping.
func TestJoinPairSpillDuplicateKeyFloor(t *testing.T) {
	left := tuple.NewSubTable(tuple.ID{Table: 0, Chunk: 0}, leftSchema(), 64)
	right := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 0}, rightSchema(), 2)
	for i := 0; i < 64; i++ {
		left.AppendRow(1, 2, float32(i))
	}
	right.AppendRow(1, 2, 0.5)
	right.AppendRow(9, 9, 1.5)
	base, err := Join(left, right, []string{"x", "y"}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := tuple.NewSubTable(base.ID, base.Schema, 0)
	hooks := SpillHooks{RoundTrip: func(_ string, st *tuple.SubTable) (*tuple.SubTable, error) { return st, nil }}
	leaves, matches, err := JoinPairSpill(left, right, []string{"x", "y"}, "t", 1, 1,
		16, 8, 3, spillPart, hooks, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if matches != 64 || !sameRows(out, base) {
		t.Fatalf("matches=%d leaves=%d, output equal=%v", matches, leaves, sameRows(out, base))
	}
}
