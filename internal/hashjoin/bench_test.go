package hashjoin

import (
	"fmt"
	"testing"

	"sciview/internal/tuple"
)

// The map-based kernel the flat table replaced, kept verbatim as the
// benchmark baseline so the speedup stays measurable against the original.

type mapTable struct {
	left    *tuple.SubTable
	keyIdxs []int
	buckets map[uint64][]int32
}

func mapBuild(left *tuple.SubTable, keys []string) (*mapTable, error) {
	keyIdxs, err := left.Schema.Indexes(keys)
	if err != nil {
		return nil, err
	}
	mt := &mapTable{
		left:    left,
		keyIdxs: keyIdxs,
		buckets: make(map[uint64][]int32, left.NumRows()),
	}
	n := left.NumRows()
	for r := 0; r < n; r++ {
		k := left.Key(r, keyIdxs)
		mt.buckets[k] = append(mt.buckets[k], int32(r))
	}
	return mt, nil
}

func (mt *mapTable) probe(right *tuple.SubTable, keys []string, out *tuple.SubTable) (int, error) {
	rKeyIdxs, err := right.Schema.Indexes(keys)
	if err != nil {
		return 0, err
	}
	isKey := make([]bool, right.Schema.NumAttrs())
	for _, i := range rKeyIdxs {
		isKey[i] = true
	}
	var rValIdxs []int
	for i := range right.Schema.Attrs {
		if !isKey[i] {
			rValIdxs = append(rValIdxs, i)
		}
	}
	lAttrs := mt.left.Schema.NumAttrs()
	n := right.NumRows()
	matches := 0
	row := make([]float32, lAttrs+len(rValIdxs))
	for r := 0; r < n; r++ {
		k := right.Key(r, rKeyIdxs)
		for _, lr := range mt.buckets[k] {
			if !mt.left.KeysEqual(int(lr), mt.keyIdxs, right, r, rKeyIdxs) {
				continue
			}
			for c := 0; c < lAttrs; c++ {
				row[c] = mt.left.Value(int(lr), c)
			}
			for i, rc := range rValIdxs {
				row[lAttrs+i] = right.Value(r, rc)
			}
			out.AppendRow(row...)
			matches++
		}
	}
	return matches, nil
}

var benchKeys = []string{"x", "y"}

// benchPair builds an n-row join pair whose keys span n distinct points
// (selectivity 1), large enough that the table does not fit in L1/L2.
func benchPair(n int) (*tuple.SubTable, *tuple.SubTable) {
	return makePair(n, 42)
}

var benchSizes = []int{4096, 65536, 262144}

func BenchmarkBuild(b *testing.B) {
	for _, n := range benchSizes {
		left, _ := benchPair(n)
		b.Run(fmt.Sprintf("map/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n) * 4 * int64(left.Schema.NumAttrs()))
			for i := 0; i < b.N; i++ {
				if _, err := mapBuild(left, benchKeys); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("flat/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n) * 4 * int64(left.Schema.NumAttrs()))
			for i := 0; i < b.N; i++ {
				if _, err := BuildParallel(left, benchKeys, 1, 1, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("flatpar/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n) * 4 * int64(left.Schema.NumAttrs()))
			for i := 0; i < b.N; i++ {
				if _, err := BuildParallel(left, benchKeys, 1, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProbe(b *testing.B) {
	for _, n := range benchSizes {
		left, right := benchPair(n)
		mt, err := mapBuild(left, benchKeys)
		if err != nil {
			b.Fatal(err)
		}
		ht, err := Build(left, benchKeys, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		outSchema := left.Schema.JoinResult(right.Schema, benchKeys, "r_")
		b.Run(fmt.Sprintf("map/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n) * 4 * int64(right.Schema.NumAttrs()))
			for i := 0; i < b.N; i++ {
				out := tuple.NewSubTable(tuple.ID{}, outSchema, n)
				if _, err := mt.probe(right, benchKeys, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("flat/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n) * 4 * int64(right.Schema.NumAttrs()))
			for i := 0; i < b.N; i++ {
				out := tuple.NewSubTable(tuple.ID{}, outSchema, n)
				if _, err := ht.ProbeParallel(right, benchKeys, 1, 1, out, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("flatpar/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n) * 4 * int64(right.Schema.NumAttrs()))
			for i := 0; i < b.N; i++ {
				out := tuple.NewSubTable(tuple.ID{}, outSchema, n)
				if _, err := ht.ProbeParallel(right, benchKeys, 1, 0, out, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
