// Package bbox provides N-dimensional axis-aligned bounding boxes.
//
// Bounding boxes are the spatial metadata the paper attaches to every chunk
// and sub-table: lower and upper bounds on coordinate and scalar attributes.
// Attributes absent from a sub-table are modeled with the bounds
// [-Inf, +Inf], so overlap tests remain well defined across heterogeneous
// schemas.
package bbox

import (
	"fmt"
	"math"
	"strings"
)

// Box is an axis-aligned box in len(Lo) dimensions. A Box is valid when
// len(Lo) == len(Hi) and Lo[d] <= Hi[d] for every dimension d. The bounds
// are inclusive on both ends, matching the paper's chunk metadata
// (e.g. [(0,0,0.2,0.3), (64,64,0.8,0.5)]).
type Box struct {
	Lo []float64
	Hi []float64
}

// New returns a box with the given bounds. It panics if the slices have
// different lengths; it does not check Lo <= Hi (use Valid for that), since
// deliberately inverted boxes are used as "empty" accumulators.
func New(lo, hi []float64) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("bbox: mismatched bounds: %d vs %d dims", len(lo), len(hi)))
	}
	return Box{Lo: lo, Hi: hi}
}

// Empty returns an inverted box in dims dimensions, suitable as the identity
// element for Union: Empty(d).Union(b) == b.
func Empty(dims int) Box {
	b := Box{Lo: make([]float64, dims), Hi: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		b.Lo[d] = math.Inf(1)
		b.Hi[d] = math.Inf(-1)
	}
	return b
}

// Universe returns a box covering all of R^dims. It models the paper's
// convention that an attribute missing from a sub-table has bounds
// [-Inf, +Inf].
func Universe(dims int) Box {
	b := Box{Lo: make([]float64, dims), Hi: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		b.Lo[d] = math.Inf(-1)
		b.Hi[d] = math.Inf(1)
	}
	return b
}

// Dims returns the dimensionality of the box.
func (b Box) Dims() int { return len(b.Lo) }

// Valid reports whether the box is well formed: equal-length bounds with
// Lo[d] <= Hi[d] in every dimension.
func (b Box) Valid() bool {
	if len(b.Lo) != len(b.Hi) {
		return false
	}
	for d := range b.Lo {
		if !(b.Lo[d] <= b.Hi[d]) { // NaN-safe: NaN makes the box invalid
			return false
		}
	}
	return true
}

// IsEmpty reports whether the box is inverted in at least one dimension.
func (b Box) IsEmpty() bool {
	for d := range b.Lo {
		if b.Lo[d] > b.Hi[d] {
			return true
		}
	}
	return len(b.Lo) == 0
}

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	lo := make([]float64, len(b.Lo))
	hi := make([]float64, len(b.Hi))
	copy(lo, b.Lo)
	copy(hi, b.Hi)
	return Box{Lo: lo, Hi: hi}
}

// Overlaps reports whether b and o intersect (inclusive bounds). Boxes of
// different dimensionality never overlap.
func (b Box) Overlaps(o Box) bool {
	if len(b.Lo) != len(o.Lo) {
		return false
	}
	for d := range b.Lo {
		if b.Lo[d] > o.Hi[d] || o.Lo[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Contains reports whether b fully contains o.
func (b Box) Contains(o Box) bool {
	if len(b.Lo) != len(o.Lo) {
		return false
	}
	for d := range b.Lo {
		if o.Lo[d] < b.Lo[d] || o.Hi[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point p lies inside b (inclusive).
func (b Box) ContainsPoint(p []float64) bool {
	if len(p) != len(b.Lo) {
		return false
	}
	for d := range p {
		if p[d] < b.Lo[d] || p[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Union returns the smallest box containing both b and o.
// The paper uses this to bound the result of joining two sub-tables.
func (b Box) Union(o Box) Box {
	if len(b.Lo) != len(o.Lo) {
		panic(fmt.Sprintf("bbox: union of %d-dim and %d-dim boxes", len(b.Lo), len(o.Lo)))
	}
	u := b.Clone()
	for d := range u.Lo {
		u.Lo[d] = math.Min(u.Lo[d], o.Lo[d])
		u.Hi[d] = math.Max(u.Hi[d], o.Hi[d])
	}
	return u
}

// Intersect returns the intersection of b and o. The result may be empty
// (inverted); callers should check IsEmpty.
func (b Box) Intersect(o Box) Box {
	if len(b.Lo) != len(o.Lo) {
		panic(fmt.Sprintf("bbox: intersect of %d-dim and %d-dim boxes", len(b.Lo), len(o.Lo)))
	}
	r := b.Clone()
	for d := range r.Lo {
		r.Lo[d] = math.Max(r.Lo[d], o.Lo[d])
		r.Hi[d] = math.Min(r.Hi[d], o.Hi[d])
	}
	return r
}

// ExtendPoint grows b in place so it contains the point p.
func (b *Box) ExtendPoint(p []float64) {
	for d := range p {
		if p[d] < b.Lo[d] {
			b.Lo[d] = p[d]
		}
		if p[d] > b.Hi[d] {
			b.Hi[d] = p[d]
		}
	}
}

// Volume returns the hyper-volume of the box; 0 for empty boxes. Degenerate
// (zero-width) dimensions contribute factor 0, which is the conventional
// R-tree behaviour; use Margin for tie-breaking among degenerate boxes.
func (b Box) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	v := 1.0
	for d := range b.Lo {
		v *= b.Hi[d] - b.Lo[d]
	}
	return v
}

// Margin returns the sum of edge lengths (the L1 "perimeter" analogue).
func (b Box) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	m := 0.0
	for d := range b.Lo {
		m += b.Hi[d] - b.Lo[d]
	}
	return m
}

// Enlargement returns how much b's volume would grow to accommodate o.
// It is the R-tree insertion heuristic (Guttman's ChooseLeaf criterion).
func (b Box) Enlargement(o Box) float64 {
	return b.Union(o).Volume() - b.Volume()
}

// Equal reports exact equality of bounds.
func (b Box) Equal(o Box) bool {
	if len(b.Lo) != len(o.Lo) {
		return false
	}
	for d := range b.Lo {
		if b.Lo[d] != o.Lo[d] || b.Hi[d] != o.Hi[d] {
			return false
		}
	}
	return true
}

// Center returns the center point of the box.
func (b Box) Center() []float64 {
	c := make([]float64, len(b.Lo))
	for d := range c {
		c[d] = (b.Lo[d] + b.Hi[d]) / 2
	}
	return c
}

// String renders the box as [(lo...),(hi...)], the notation the paper uses.
func (b Box) String() string {
	var sb strings.Builder
	sb.WriteString("[(")
	for d, v := range b.Lo {
		if d > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%g", v)
	}
	sb.WriteString("), (")
	for d, v := range b.Hi {
		if d > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%g", v)
	}
	sb.WriteString(")]")
	return sb.String()
}
