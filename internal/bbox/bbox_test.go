package bbox

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func box2(x0, y0, x1, y1 float64) Box {
	return New([]float64{x0, y0}, []float64{x1, y1})
}

func TestNewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched dims")
		}
	}()
	New([]float64{0}, []float64{1, 2})
}

func TestValid(t *testing.T) {
	cases := []struct {
		b    Box
		want bool
	}{
		{box2(0, 0, 1, 1), true},
		{box2(1, 0, 0, 1), false},
		{box2(0, 0, 0, 0), true},
		{New([]float64{math.NaN()}, []float64{1}), false},
		{Empty(2), false},
		{Universe(3), true},
	}
	for i, c := range cases {
		if got := c.b.Valid(); got != c.want {
			t.Errorf("case %d: Valid(%v) = %v, want %v", i, c.b, got, c.want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	a := box2(0, 0, 10, 10)
	cases := []struct {
		b    Box
		want bool
	}{
		{box2(5, 5, 15, 15), true},
		{box2(10, 10, 20, 20), true}, // inclusive touch
		{box2(11, 0, 20, 10), false},
		{box2(0, 11, 10, 20), false},
		{box2(-5, -5, -1, -1), false},
		{box2(2, 2, 3, 3), true}, // contained
		{Universe(2), true},
	}
	for i, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: %v.Overlaps(%v) = %v, want %v", i, a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("case %d: overlap not symmetric", i)
		}
	}
}

func TestOverlapsDifferentDims(t *testing.T) {
	a := box2(0, 0, 1, 1)
	b := New([]float64{0}, []float64{1})
	if a.Overlaps(b) {
		t.Error("boxes of different dims must not overlap")
	}
}

func TestContains(t *testing.T) {
	a := box2(0, 0, 10, 10)
	if !a.Contains(box2(1, 1, 9, 9)) {
		t.Error("should contain inner box")
	}
	if !a.Contains(a) {
		t.Error("should contain itself")
	}
	if a.Contains(box2(1, 1, 11, 9)) {
		t.Error("should not contain overflowing box")
	}
	if !Universe(2).Contains(a) {
		t.Error("universe contains everything")
	}
}

func TestContainsPoint(t *testing.T) {
	a := box2(0, 0, 10, 10)
	if !a.ContainsPoint([]float64{0, 10}) {
		t.Error("corner point should be inside (inclusive)")
	}
	if a.ContainsPoint([]float64{0, 10.001}) {
		t.Error("outside point reported inside")
	}
	if a.ContainsPoint([]float64{5}) {
		t.Error("wrong-dim point reported inside")
	}
}

func TestUnionEmptyIdentity(t *testing.T) {
	a := box2(1, 2, 3, 4)
	if got := Empty(2).Union(a); !got.Equal(a) {
		t.Errorf("Empty.Union(a) = %v, want %v", got, a)
	}
	if got := a.Union(Empty(2)); !got.Equal(a) {
		t.Errorf("a.Union(Empty) = %v, want %v", got, a)
	}
}

func TestIntersect(t *testing.T) {
	a := box2(0, 0, 10, 10)
	b := box2(5, 5, 15, 15)
	got := a.Intersect(b)
	want := box2(5, 5, 10, 10)
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	c := box2(20, 20, 30, 30)
	if !a.Intersect(c).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestVolumeAndMargin(t *testing.T) {
	a := box2(0, 0, 2, 3)
	if v := a.Volume(); v != 6 {
		t.Errorf("Volume = %g, want 6", v)
	}
	if m := a.Margin(); m != 5 {
		t.Errorf("Margin = %g, want 5", m)
	}
	if v := Empty(2).Volume(); v != 0 {
		t.Errorf("empty volume = %g, want 0", v)
	}
}

func TestEnlargement(t *testing.T) {
	a := box2(0, 0, 2, 2)
	b := box2(2, 0, 4, 2)
	if e := a.Enlargement(b); e != 4 {
		t.Errorf("Enlargement = %g, want 4", e)
	}
	if e := a.Enlargement(box2(0.5, 0.5, 1, 1)); e != 0 {
		t.Errorf("Enlargement of contained box = %g, want 0", e)
	}
}

func TestExtendPoint(t *testing.T) {
	b := Empty(2)
	b.ExtendPoint([]float64{3, 4})
	b.ExtendPoint([]float64{-1, 2})
	want := box2(-1, 2, 3, 4)
	if !b.Equal(want) {
		t.Errorf("ExtendPoint result = %v, want %v", b, want)
	}
}

func TestCenter(t *testing.T) {
	c := box2(0, 2, 4, 6).Center()
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Center = %v, want [2 4]", c)
	}
}

func TestString(t *testing.T) {
	s := box2(0, 0, 1, 2).String()
	if s != "[(0, 0), (1, 2)]" {
		t.Errorf("String = %q", s)
	}
}

// randBox generates a valid random box for property tests.
func randBox(r *rand.Rand, dims int) Box {
	b := Box{Lo: make([]float64, dims), Hi: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		a, c := r.Float64()*100-50, r.Float64()*100-50
		b.Lo[d] = math.Min(a, c)
		b.Hi[d] = math.Max(a, c)
	}
	return b
}

func TestPropUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r, 3), randBox(r, 3)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropOverlapIffNonEmptyIntersection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r, 2), randBox(r, 2)
		return a.Overlaps(b) == !a.Intersect(b).IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropUnionVolumeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r, 3), randBox(r, 3)
		u := a.Union(b)
		return u.Volume() >= a.Volume() && u.Volume() >= b.Volume()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIntersectionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r, 4), randBox(r, 4)
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
