package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sciview/internal/transport"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 4, Base: time.Microsecond}, func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt = %d, want %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky: %w", transport.ErrUnavailable)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnTerminalError(t *testing.T) {
	terminal := &transport.RemoteError{Service: "bds-0", Method: "subtable", Msg: "no such chunk"}
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5, Base: time.Microsecond}, func(int) error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) && err != terminal {
		var re *transport.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v, want the RemoteError", err)
		}
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (terminal errors must not retry)", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 3, Base: time.Microsecond}, func(int) error {
		calls++
		return fmt.Errorf("down: %w", transport.ErrUnavailable)
	})
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable chain", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoRespectsDeadlineBudget(t *testing.T) {
	// Backoff far exceeds the context budget: Do must return the last
	// error early instead of sleeping through the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	err := Do(ctx, Policy{Attempts: 10, Base: time.Second, Max: time.Second}, func(int) error {
		calls++
		return fmt.Errorf("down: %w", transport.ErrUnavailable)
	})
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("err = %v, want the op's error, not a context error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Do slept %v past its budget", elapsed)
	}
}

func TestDoReturnsContextErrorBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Default(), func(int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("calls = %d, want 0", calls)
	}
}

func TestDelayDeterministicAndBounded(t *testing.T) {
	p := Policy{Attempts: 5, Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, Multiplier: 2, Jitter: 0.5, Seed: 42}
	for n := 1; n <= 6; n++ {
		d1, d2 := p.Delay(n), p.Delay(n)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", n, d1, d2)
		}
		// With jitter J, delay stays within [base*(1-J/2), max*(1+J/2)].
		lo := time.Duration(float64(p.Base) * 0.75)
		hi := time.Duration(float64(p.Max) * 1.25)
		if d1 < lo || d1 > hi {
			t.Fatalf("Delay(%d) = %v outside [%v, %v]", n, d1, lo, hi)
		}
	}
	q := p
	q.Seed = 43
	if p.Delay(1) == q.Delay(1) && p.Delay(2) == q.Delay(2) && p.Delay(3) == q.Delay(3) {
		t.Fatalf("different seeds produced identical delay streams")
	}
}

func TestCustomRetryable(t *testing.T) {
	sentinel := errors.New("try me")
	calls := 0
	err := Do(context.Background(), Policy{
		Attempts:  3,
		Base:      time.Microsecond,
		Retryable: func(err error) bool { return errors.Is(err, sentinel) },
	}, func(int) error {
		calls++
		if calls < 2 {
			return sentinel
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err = %v, calls = %d; want nil, 2", err, calls)
	}
}
