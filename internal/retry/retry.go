// Package retry implements deadline-aware exponential backoff with
// deterministic jitter. It retries only faults the caller classifies as
// transient (by default transport.IsRetryable), and it gives up early when
// the context's remaining budget cannot cover the next backoff sleep — so
// a caller holding a deadline can fail over to a replica instead of
// burning its whole budget on one dead node.
package retry

import (
	"context"
	"time"

	"sciview/internal/metrics"
	"sciview/internal/transport"
)

// Policy configures Do. The zero value is usable: it behaves like
// Default().
type Policy struct {
	// Attempts is the maximum number of tries (first call included).
	// Values < 1 mean 3.
	Attempts int
	// Base is the delay before the second attempt; it grows by Multiplier
	// per attempt, capped at Max. Zero means 1ms.
	Base time.Duration
	// Max caps the per-attempt delay. Zero means 50ms.
	Max time.Duration
	// Multiplier is the exponential growth factor. Values < 1 mean 2.
	Multiplier float64
	// Jitter in [0,1] randomizes each delay within ±Jitter/2 of itself,
	// deterministically from Seed and the attempt number. Zero means 0.5.
	Jitter float64
	// Seed feeds the deterministic jitter stream. Two calls with the same
	// Seed back off identically.
	Seed uint64
	// Retryable classifies errors; nil means transport.IsRetryable.
	Retryable func(error) bool
	// Retries, when set, counts every re-attempt (attempt > 0 actually
	// executed) into the live metrics registry. Nil is a no-op; the
	// counter never influences backoff or jitter, so instrumented and
	// uninstrumented schedules are identical.
	Retries *metrics.Counter
}

// Default returns the policy used by the cluster fetch path.
func Default() Policy {
	return Policy{Attempts: 3, Base: time.Millisecond, Max: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
}

func (p Policy) norm() Policy {
	if p.Attempts < 1 {
		p.Attempts = 3
	}
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 50 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the backoff before attempt n (n ≥ 1; attempt 0 is
// immediate). Deterministic in (policy, n).
func (p Policy) Delay(n int) time.Duration {
	p = p.norm()
	d := float64(p.Base)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	// Jitter maps d to [d*(1-J/2), d*(1+J/2)] using a splitmix64 stream
	// keyed by (Seed, n): deterministic, but decorrelated across attempts
	// and callers.
	u := splitmix(p.Seed ^ (uint64(n) * 0x9e3779b97f4a7c15))
	frac := float64(u>>11) / float64(1<<53) // [0,1)
	d *= 1 - p.Jitter/2 + p.Jitter*frac
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Do runs op up to p.Attempts times, backing off between tries. op
// receives the attempt number (0-based). Do returns nil on the first
// success, the last error once attempts are exhausted or it is not
// retryable, or early if ctx expires / its remaining budget cannot cover
// the next sleep (so the caller can fail over within its deadline).
func Do(ctx context.Context, p Policy, op func(attempt int) error) error {
	p = p.norm()
	retryable := p.Retryable
	if retryable == nil {
		retryable = transport.IsRetryable
	}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			d := p.Delay(attempt)
			if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < d {
				return err // sleeping would eat the budget; let caller fail over
			}
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return err
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return err
		}
		if attempt > 0 {
			p.Retries.Inc()
		}
		if err = op(attempt); err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
	}
	return err
}
