// Package query implements the small SQL dialect of the view framework:
//
//	CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y)
//	SELECT * FROM V1 WHERE x BETWEEN 0 AND 256 AND y <= 512
//	SELECT AVG(wp), MAX(oilp) FROM V1 GROUP BY z
//
// It covers the paper's query classes: range queries against BDS tables,
// full and range-restricted scans of join views, and aggregation queries
// ("Find all reservoirs with average wp > 0.5") via aggregates with
// GROUP BY and HAVING.
package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , * = < > <= >=
)

type token struct {
	kind tokenKind
	text string // upper-cased for idents/keywords? keep raw; compare case-insensitively
	num  float64
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits src into tokens. Identifiers keep their case (table and
// attribute names are case-sensitive); keywords are matched
// case-insensitively by the parser.
func lex(src string) ([]token, error) {
	l := lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) {
				d := l.src[l.pos]
				if d >= '0' && d <= '9' || d == '.' || d == 'e' || d == 'E' {
					l.pos++
					continue
				}
				// Sign is part of the number only right after an exponent.
				if (d == '-' || d == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
					l.pos++
					continue
				}
				break
			}
			text := l.src[start:l.pos]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q at %d", text, start)
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: text, num: v, pos: start})
		case c == '<' || c == '>':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[start:l.pos], pos: start})
		case strings.ContainsRune("(),*=[]", rune(c)):
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
