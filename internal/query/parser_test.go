package query

import (
	"math"
	"strings"
	"testing"
)

func parseSelect(t *testing.T, src string) *Select {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	s, ok := st.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, st)
	}
	return s
}

func TestParseCreateView(t *testing.T) {
	st, err := Parse("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y)")
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateView)
	if cv.Name != "V1" || cv.Left != "T1" || cv.Right != "T2" {
		t.Errorf("view = %+v", cv)
	}
	if len(cv.JoinAttrs) != 2 || cv.JoinAttrs[0] != "x" || cv.JoinAttrs[1] != "y" {
		t.Errorf("join attrs = %v", cv.JoinAttrs)
	}
	if cv.Where != nil {
		t.Error("unexpected where")
	}
}

func TestParseCreateViewWithWhere(t *testing.T) {
	st, err := Parse("create view V as select * from T1 join T2 on (x) where x between 0 and 256")
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateView)
	if len(cv.Where) != 1 || cv.Where[0].Attr != "x" || cv.Where[0].Lo != 0 || cv.Where[0].Hi != 256 {
		t.Errorf("where = %+v", cv.Where)
	}
}

func TestParseExplain(t *testing.T) {
	st, err := Parse("EXPLAIN SELECT wp FROM V1 WHERE x < 10 ORDER BY wp LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*Explain)
	if !ok {
		t.Fatalf("Parse = %T, want *Explain", st)
	}
	s := ex.Select
	if s.From != "V1" || len(s.Items) != 1 || s.Items[0].Attr != "wp" || s.Limit != 5 {
		t.Errorf("select = %+v", s)
	}
	// Case-insensitive keyword, like the rest of the grammar.
	if _, err := Parse("explain select * from T1"); err != nil {
		t.Errorf("lowercase explain: %v", err)
	}
	// EXPLAIN wraps SELECT only.
	if _, err := Parse("EXPLAIN CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x)"); err == nil {
		t.Error("EXPLAIN CREATE VIEW should fail")
	}
	// Trailing input after the wrapped select still rejected.
	if _, err := Parse("EXPLAIN SELECT * FROM T1 garbage"); err == nil {
		t.Error("trailing input should fail")
	}
}

func TestParseSelectStar(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM V1")
	if len(s.Items) != 1 || !s.Items[0].Star || s.From != "V1" {
		t.Errorf("select = %+v", s)
	}
}

func TestParseSelectColumns(t *testing.T) {
	s := parseSelect(t, "SELECT wp, soil FROM V1 WHERE x BETWEEN 0 AND 256 AND y BETWEEN 0 AND 512")
	if len(s.Items) != 2 || s.Items[0].Attr != "wp" || s.Items[1].Attr != "soil" {
		t.Errorf("items = %+v", s.Items)
	}
	if len(s.Where) != 2 {
		t.Fatalf("where = %+v", s.Where)
	}
	if s.Where[1].Attr != "y" || s.Where[1].Hi != 512 {
		t.Errorf("where[1] = %+v", s.Where[1])
	}
}

func TestParseComparisonOps(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM T WHERE x >= 1 AND x <= 5")
	if len(s.Where) != 1 {
		t.Fatalf("constraints on x should merge: %+v", s.Where)
	}
	if s.Where[0].Lo != 1 || s.Where[0].Hi != 5 {
		t.Errorf("merged = %+v", s.Where[0])
	}

	s = parseSelect(t, "SELECT * FROM T WHERE x = 7")
	if s.Where[0].Lo != 7 || s.Where[0].Hi != 7 {
		t.Errorf("equality = %+v", s.Where[0])
	}

	s = parseSelect(t, "SELECT * FROM T WHERE x < 7")
	if !(s.Where[0].Hi < 7) || math.IsInf(s.Where[0].Hi, -1) {
		t.Errorf("strict upper = %+v", s.Where[0])
	}

	// Flipped operand order.
	s = parseSelect(t, "SELECT * FROM T WHERE 3 <= x")
	if s.Where[0].Lo != 3 || !math.IsInf(s.Where[0].Hi, 1) {
		t.Errorf("flipped = %+v", s.Where[0])
	}
}

func TestParseContradiction(t *testing.T) {
	if _, err := Parse("SELECT * FROM T WHERE x > 5 AND x < 2"); err == nil {
		t.Error("contradictory constraints should fail")
	}
}

func TestParseAggregates(t *testing.T) {
	s := parseSelect(t, "SELECT AVG(wp), max(oilp), COUNT(*) FROM V1 GROUP BY z")
	if len(s.Items) != 3 {
		t.Fatalf("items = %+v", s.Items)
	}
	if s.Items[0].Agg != AggAvg || s.Items[0].Attr != "wp" {
		t.Errorf("item 0 = %+v", s.Items[0])
	}
	if s.Items[1].Agg != AggMax {
		t.Errorf("item 1 = %+v", s.Items[1])
	}
	if s.Items[2].Agg != AggCount || s.Items[2].Attr != "*" {
		t.Errorf("item 2 = %+v", s.Items[2])
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0] != "z" {
		t.Errorf("group by = %v", s.GroupBy)
	}
}

func TestParseHaving(t *testing.T) {
	s := parseSelect(t, "SELECT AVG(wp) FROM V1 GROUP BY reservoir HAVING AVG(wp) > 0.5")
	if s.Having == nil || s.Having.Agg != AggAvg || s.Having.Attr != "wp" ||
		s.Having.Op != ">" || s.Having.Val != 0.5 {
		t.Errorf("having = %+v", s.Having)
	}
}

func TestParseAggNamedColumn(t *testing.T) {
	// An identifier that merely looks like an aggregate but has no parens
	// is a plain column.
	s := parseSelect(t, "SELECT avg FROM T")
	if s.Items[0].Agg != AggNone || s.Items[0].Attr != "avg" {
		t.Errorf("item = %+v", s.Items[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM T extra junk",
		"SELECT * FROM T WHERE",
		"SELECT * FROM T WHERE x",
		"SELECT * FROM T WHERE x BETWEEN 1",
		"SELECT * FROM T WHERE x BETWEEN 1 AND",
		"CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON x",
		"CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON ()",
		"CREATE VIEW V AS SELECT wp FROM T1 JOIN T2 ON (x)",
		"SELECT SUM(*) FROM T",
		"SELECT AVG(wp FROM T",
		"SELECT * FROM T GROUP BY",
		"SELECT * FROM T HAVING wp > 3",
		"SELECT * FROM T WHERE x ! 5",
		"SELECT * FROM T WHERE x BETWEEN 0 AND 1e",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestErrorsCarryContext(t *testing.T) {
	_, err := Parse("SELECT * FROM T WHERE x ?")
	if err == nil || !strings.Contains(err.Error(), "query:") {
		t.Errorf("err = %v", err)
	}
}

func TestScientificNumbers(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM T WHERE x BETWEEN 1e-3 AND 2.5E2")
	if s.Where[0].Lo != 1e-3 || s.Where[0].Hi != 250 {
		t.Errorf("pred = %+v", s.Where[0])
	}
}

func TestToRange(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM T WHERE x BETWEEN 0 AND 9 AND wp <= 0.5")
	r := ToRange(s.Where)
	if len(r.Attrs) != 2 || r.Attrs[0] != "x" || r.Hi[1] != 0.5 {
		t.Errorf("range = %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestParseOrderByAndLimit(t *testing.T) {
	s := parseSelect(t, "SELECT * FROM T ORDER BY x, y DESC, z ASC LIMIT 10")
	if len(s.OrderBy) != 3 {
		t.Fatalf("order by = %+v", s.OrderBy)
	}
	if s.OrderBy[0] != (OrderKey{Attr: "x"}) ||
		s.OrderBy[1] != (OrderKey{Attr: "y", Desc: true}) ||
		s.OrderBy[2] != (OrderKey{Attr: "z"}) {
		t.Errorf("order by = %+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
	// Limit defaults to -1.
	s = parseSelect(t, "SELECT * FROM T")
	if s.Limit != -1 {
		t.Errorf("default limit = %d", s.Limit)
	}
	// After HAVING.
	s = parseSelect(t, "SELECT AVG(v) FROM T GROUP BY g HAVING AVG(v) > 1 ORDER BY g LIMIT 2")
	if len(s.OrderBy) != 1 || s.Limit != 2 {
		t.Errorf("order/limit after having: %+v %d", s.OrderBy, s.Limit)
	}
}

func TestParseOrderLimitErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM T ORDER x",
		"SELECT * FROM T ORDER BY",
		"SELECT * FROM T LIMIT",
		"SELECT * FROM T LIMIT -3",
		"SELECT * FROM T LIMIT 1.5",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDerivedView(t *testing.T) {
	st, err := Parse("CREATE VIEW V2 AS SELECT * FROM V1 WHERE x BETWEEN 0 AND 7")
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateView)
	if !cv.Derived() || cv.Left != "V1" || cv.Right != "" || len(cv.JoinAttrs) != 0 {
		t.Errorf("derived view = %+v", cv)
	}
	if len(cv.Where) != 1 {
		t.Errorf("where = %+v", cv.Where)
	}
	// Join views are not Derived.
	st, _ = Parse("CREATE VIEW V AS SELECT * FROM A JOIN B ON (x)")
	if st.(*CreateView).Derived() {
		t.Error("join view reported as derived")
	}
}

func BenchmarkParse(b *testing.B) {
	const q = "SELECT x, AVG(wp), COUNT(*) FROM V1 WHERE x BETWEEN 0 AND 256 AND y <= 512 AND wp >= 0.25 GROUP BY x HAVING AVG(wp) > 0.5 ORDER BY avg_wp DESC LIMIT 100"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseInIntervalNotation(t *testing.T) {
	// The paper's range syntax: SELECT * FROM T1 WHERE x IN [0, 256].
	s := parseSelect(t, "SELECT * FROM T1 WHERE x IN [0, 256] AND y IN [0, 512]")
	if len(s.Where) != 2 {
		t.Fatalf("where = %+v", s.Where)
	}
	if s.Where[0] != (Pred{Attr: "x", Lo: 0, Hi: 256}) {
		t.Errorf("pred 0 = %+v", s.Where[0])
	}
	if s.Where[1] != (Pred{Attr: "y", Lo: 0, Hi: 512}) {
		t.Errorf("pred 1 = %+v", s.Where[1])
	}
	for _, bad := range []string{
		"SELECT * FROM T WHERE x IN [0 256]",
		"SELECT * FROM T WHERE x IN [0,",
		"SELECT * FROM T WHERE x IN 0, 256]",
		"SELECT * FROM T WHERE x IN [5, 1]",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
