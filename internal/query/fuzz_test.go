package query

import (
	"strings"
	"testing"
)

// FuzzParse drives the SQL front end with arbitrary input: it must never
// panic, and accepted statements must satisfy basic structural invariants.
// Run with `go test -fuzz=FuzzParse ./internal/query` to explore; the seed
// corpus runs as a regression test on every `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"SELECT * FROM V1",
		"SELECT * FROM V1 WHERE x BETWEEN 0 AND 256 AND y <= 512",
		"CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y)",
		"CREATE VIEW V2 AS SELECT * FROM V1 WHERE wp > 0.5",
		"SELECT AVG(wp), COUNT(*) FROM V1 GROUP BY z HAVING AVG(wp) > 0.5",
		"SELECT a, b FROM t ORDER BY a DESC, b LIMIT 100",
		"select sum(x) from t where 1e-9 <= x and x < 2.5E2",
		"SELECT * FROM T WHERE x = 7 ORDER",
		"SELECT (((",
		"CREATE VIEW V AS SELECT * FROM",
		"\x00\xff SELECT",
		strings.Repeat("SELECT ", 50),
		// The golden-test corpus: every clause shape the differential
		// harness exercises should be a fuzz starting point too.
		"SELECT * FROM V1 WHERE x BETWEEN 0 AND 3 AND z = 0",
		"SELECT wp, oilp FROM V1 WHERE z = 1",
		"SELECT * FROM V1 ORDER BY x DESC, y, z LIMIT 5",
		"SELECT wp, oilp FROM V1 ORDER BY wp DESC, oilp LIMIT 7",
		"SELECT * FROM V1 LIMIT 0",
		"SELECT x, COUNT(*), MIN(wp), MAX(wp) FROM V1 GROUP BY x ORDER BY x",
		"SELECT z, SUM(oilp), COUNT(*) FROM V1 GROUP BY z HAVING COUNT(*) > 10 ORDER BY z DESC LIMIT 2",
		"SELECT MIN(wp), MAX(wp) FROM V1",
		"SELECT COUNT(*) FROM V1 WHERE y < 2",
		"SELECT x, COUNT(*) FROM T1 GROUP BY x HAVING COUNT(*) >= 16 ORDER BY x",
		"CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)",
		"CREATE VIEW V2 AS SELECT * FROM V1 WHERE x BETWEEN 0 AND 4",
		"EXPLAIN SELECT * FROM V1 WHERE x < 8 LIMIT 64",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		if e, ok := st.(*Explain); ok {
			if e.Select == nil {
				t.Errorf("accepted EXPLAIN without SELECT: %q", src)
				return
			}
			st = e.Select
		}
		switch s := st.(type) {
		case *Select:
			if s.From == "" {
				t.Errorf("accepted SELECT without FROM: %q", src)
			}
			if len(s.Items) == 0 {
				t.Errorf("accepted SELECT without items: %q", src)
			}
			for _, p := range s.Where {
				if p.Lo > p.Hi {
					t.Errorf("accepted empty interval %+v: %q", p, src)
				}
			}
			if s.Limit < -1 {
				t.Errorf("invalid limit %d: %q", s.Limit, src)
			}
		case *CreateView:
			if s.Name == "" || s.Left == "" {
				t.Errorf("accepted malformed view: %+v from %q", s, src)
			}
			if !s.Derived() && len(s.JoinAttrs) == 0 {
				t.Errorf("join view without attrs: %q", src)
			}
		default:
			t.Errorf("unknown statement type %T", st)
		}
	})
}
