package query

import (
	"fmt"
	"math"
	"strings"

	"sciview/internal/metadata"
)

// Statement is a parsed query: *CreateView or *Select.
type Statement interface{ stmt() }

// CreateView defines a join-based view, or — with no JOIN clause — a
// restriction view layered on an existing view (a DDS built on another
// DDS):
//
//	CREATE VIEW <name> AS SELECT * FROM <left> JOIN <right> ON (a, b, ...)
//	    [WHERE <predicates>]
//	CREATE VIEW <name> AS SELECT * FROM <view> [WHERE <predicates>]
type CreateView struct {
	Name      string
	Left      string
	Right     string   // empty for a restriction view over Left
	JoinAttrs []string // empty for a restriction view
	Where     []Pred
}

// Derived reports whether this is a restriction view over an existing
// view rather than a base join view.
func (cv *CreateView) Derived() bool { return cv.Right == "" }

func (*CreateView) stmt() {}

// Agg names an aggregation function.
type Agg string

// Supported aggregation functions.
const (
	AggNone  Agg = ""
	AggAvg   Agg = "AVG"
	AggSum   Agg = "SUM"
	AggMin   Agg = "MIN"
	AggMax   Agg = "MAX"
	AggCount Agg = "COUNT"
)

// SelectItem is one output column: `*`, an attribute, or AGG(attr).
// COUNT(*) is represented as Agg=COUNT with Attr="*".
type SelectItem struct {
	Star bool
	Attr string
	Agg  Agg
}

// Pred is an interval constraint on one attribute, the conjunction form
// all WHERE clauses reduce to.
type Pred struct {
	Attr string
	Lo   float64
	Hi   float64
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Attr string
	Desc bool
}

// Select is a scan or aggregation over a table or view:
//
//	SELECT <items> FROM <name> [WHERE <preds>] [GROUP BY a, b]
//	    [HAVING AGG(attr) <op> <num>] [ORDER BY a [DESC], ...] [LIMIT n]
type Select struct {
	Items   []SelectItem
	From    string
	Where   []Pred
	GroupBy []string
	Having  *Having
	OrderBy []OrderKey
	// Limit caps the result rows; -1 means no limit.
	Limit int
}

func (*Select) stmt() {}

// Explain wraps a SELECT: `EXPLAIN SELECT ...`. The planner renders the
// lowered plan tree instead of executing it.
type Explain struct {
	Select *Select
}

func (*Explain) stmt() {}

// Having is a single aggregate filter over groups.
type Having struct {
	Agg  Agg
	Attr string
	Op   string // one of = < <= > >=
	Val  float64
}

// Parse parses one statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var st Statement
	if p.peekKeyword("CREATE") {
		st, err = p.parseCreateView()
	} else if p.acceptKeyword("EXPLAIN") {
		var s *Select
		s, err = p.parseSelect()
		if err == nil {
			st = &Explain{Select: s}
		}
	} else {
		st, err = p.parseSelect()
	}
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("query: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, p.src)
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) number() (float64, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, got %q", t.text)
	}
	p.i++
	return t.num, nil
}

func (p *parser) parseCreateView() (*CreateView, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("*"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	left, err := p.ident()
	if err != nil {
		return nil, err
	}
	cv := &CreateView{Name: name, Left: left}
	if p.acceptKeyword("JOIN") {
		right, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var attrs []string
		for {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		cv.Right, cv.JoinAttrs = right, attrs
	}
	if p.acceptKeyword("WHERE") {
		cv.Where, err = p.parsePreds()
		if err != nil {
			return nil, err
		}
	}
	return cv, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &Select{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.From = from
	if p.acceptKeyword("WHERE") {
		s.Where, err = p.parsePreds()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, a)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseHaving()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Attr: attr}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	s.Limit = -1
	if p.acceptKeyword("LIMIT") {
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		if n < 0 || n != float64(int(n)) {
			return nil, p.errf("LIMIT must be a non-negative integer, got %g", n)
		}
		s.Limit = int(n)
	}
	return s, nil
}

var aggNames = map[string]Agg{
	"AVG": AggAvg, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "COUNT": AggCount,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	name, err := p.ident()
	if err != nil {
		return SelectItem{}, err
	}
	if agg, ok := aggNames[strings.ToUpper(name)]; ok && p.acceptSymbol("(") {
		var attr string
		if p.acceptSymbol("*") {
			if agg != AggCount {
				return SelectItem{}, p.errf("%s(*) is only valid for COUNT", agg)
			}
			attr = "*"
		} else {
			attr, err = p.ident()
			if err != nil {
				return SelectItem{}, err
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Attr: attr, Agg: agg}, nil
	}
	return SelectItem{Attr: name}, nil
}

func (p *parser) parseHaving() (*Having, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	agg, ok := aggNames[strings.ToUpper(name)]
	if !ok {
		return nil, p.errf("HAVING requires an aggregate, got %q", name)
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var attr string
	if p.acceptSymbol("*") {
		if agg != AggCount {
			return nil, p.errf("%s(*) is only valid for COUNT", agg)
		}
		attr = "*"
	} else {
		attr, err = p.ident()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	op := p.cur()
	if op.kind != tokSymbol || !isCmp(op.text) {
		return nil, p.errf("expected comparison operator")
	}
	p.i++
	v, err := p.number()
	if err != nil {
		return nil, err
	}
	return &Having{Agg: agg, Attr: attr, Op: op.text, Val: v}, nil
}

func isCmp(s string) bool {
	switch s {
	case "=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// parsePreds parses `cond AND cond AND ...` where cond is one of
//
//	attr BETWEEN lo AND hi
//	attr <op> number         (op ∈ =, <, <=, >, >=)
//	number <op> attr
func (p *parser) parsePreds() ([]Pred, error) {
	var preds []Pred
	for {
		pr, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
		if !p.acceptKeyword("AND") {
			break
		}
	}
	return mergePreds(preds)
}

func (p *parser) parsePred() (Pred, error) {
	if p.cur().kind == tokNumber {
		// number <op> attr — flip it.
		v, err := p.number()
		if err != nil {
			return Pred{}, err
		}
		op := p.cur()
		if op.kind != tokSymbol || !isCmp(op.text) {
			return Pred{}, p.errf("expected comparison operator")
		}
		p.i++
		attr, err := p.ident()
		if err != nil {
			return Pred{}, err
		}
		return predFromCmp(attr, flipOp(op.text), v)
	}
	attr, err := p.ident()
	if err != nil {
		return Pred{}, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.number()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return Pred{}, err
		}
		hi, err := p.number()
		if err != nil {
			return Pred{}, err
		}
		return Pred{Attr: attr, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("IN") {
		// The paper's interval notation: x IN [0, 256].
		if err := p.expectSymbol("["); err != nil {
			return Pred{}, err
		}
		lo, err := p.number()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectSymbol(","); err != nil {
			return Pred{}, err
		}
		hi, err := p.number()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return Pred{}, err
		}
		return Pred{Attr: attr, Lo: lo, Hi: hi}, nil
	}
	op := p.cur()
	if op.kind != tokSymbol || !isCmp(op.text) {
		return Pred{}, p.errf("expected BETWEEN, IN or comparison operator after %q", attr)
	}
	p.i++
	v, err := p.number()
	if err != nil {
		return Pred{}, err
	}
	return predFromCmp(attr, op.text, v)
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// predFromCmp converts a single comparison to an interval. Strict bounds
// are tightened by one float64 ulp, exact for our float32-valued data.
func predFromCmp(attr, op string, v float64) (Pred, error) {
	inf := math.Inf(1)
	switch op {
	case "=":
		return Pred{Attr: attr, Lo: v, Hi: v}, nil
	case "<":
		return Pred{Attr: attr, Lo: -inf, Hi: math.Nextafter(v, -inf)}, nil
	case "<=":
		return Pred{Attr: attr, Lo: -inf, Hi: v}, nil
	case ">":
		return Pred{Attr: attr, Lo: math.Nextafter(v, inf), Hi: inf}, nil
	case ">=":
		return Pred{Attr: attr, Lo: v, Hi: inf}, nil
	}
	return Pred{}, fmt.Errorf("query: unsupported operator %q", op)
}

// mergePreds intersects multiple constraints on the same attribute and
// rejects empty intervals.
func mergePreds(preds []Pred) ([]Pred, error) {
	byAttr := make(map[string]int)
	var out []Pred
	for _, pr := range preds {
		if i, ok := byAttr[pr.Attr]; ok {
			if pr.Lo > out[i].Lo {
				out[i].Lo = pr.Lo
			}
			if pr.Hi < out[i].Hi {
				out[i].Hi = pr.Hi
			}
		} else {
			byAttr[pr.Attr] = len(out)
			out = append(out, pr)
		}
	}
	for _, pr := range out {
		if pr.Lo > pr.Hi {
			return nil, fmt.Errorf("query: contradictory constraints on %q: [%g, %g]", pr.Attr, pr.Lo, pr.Hi)
		}
	}
	return out, nil
}

// ToRange converts predicates to a metadata.Range.
func ToRange(preds []Pred) metadata.Range {
	var r metadata.Range
	for _, p := range preds {
		r.Attrs = append(r.Attrs, p.Attr)
		r.Lo = append(r.Lo, p.Lo)
		r.Hi = append(r.Hi, p.Hi)
	}
	return r
}
