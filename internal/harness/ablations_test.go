package harness

import "testing"

func TestAblationCacheShape(t *testing.T) {
	a, err := AblationCache(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := a.Rows
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At (or above) the memory bound: no re-fetches, minimal net volume.
	if rows[0].Refetches != 0 {
		t.Errorf("refetches at bound = %d", rows[0].Refetches)
	}
	// Below the bound: re-fetches appear, net bytes and time grow.
	last := rows[len(rows)-1]
	if last.Refetches <= 0 {
		t.Errorf("no refetches below the bound")
	}
	if last.NetBytes <= rows[0].NetBytes {
		t.Errorf("net bytes did not grow: %d vs %d", last.NetBytes, rows[0].NetBytes)
	}
	if last.Seconds <= rows[0].Seconds {
		t.Errorf("time did not grow: %.3f vs %.3f", last.Seconds, rows[0].Seconds)
	}
}

func TestAblationScheduleShape(t *testing.T) {
	a, err := AblationSchedule(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range a.Rows {
		byLabel[r.Label] = r
	}
	comp, ok := byLabel["component"]
	if !ok {
		t.Fatalf("rows = %+v", a.Rows)
	}
	if comp.Refetches != 0 {
		t.Errorf("component schedule refetched %d times", comp.Refetches)
	}
	rnd := byLabel["random"]
	if rnd.Refetches <= 0 {
		t.Error("random schedule should refetch")
	}
	if rnd.Seconds <= comp.Seconds {
		t.Errorf("random (%.3fs) not slower than component (%.3fs)", rnd.Seconds, comp.Seconds)
	}
}

func TestAblationPlacementShape(t *testing.T) {
	a, err := AblationPlacement(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	bc, cont := a.Rows[0], a.Rows[1]
	// Identical transfer volume…
	if bc.NetBytes != cont.NetBytes {
		t.Errorf("net bytes differ: %d vs %d", bc.NetBytes, cont.NetBytes)
	}
	// …but contiguous placement serializes on fewer disks: slower.
	if cont.Seconds <= bc.Seconds*1.1 {
		t.Errorf("contiguous (%.3fs) not slower than block-cyclic (%.3fs)", cont.Seconds, bc.Seconds)
	}
}

func TestFig6PaperScaleLinear(t *testing.T) {
	p := Fig6PaperScale()
	if len(p.Rows) < 4 {
		t.Fatalf("rows = %d", len(p.Rows))
	}
	for i := 1; i < len(p.Rows); i++ {
		a, b := p.Rows[i-1], p.Rows[i]
		if b.Tuples != 2*a.Tuples {
			t.Fatalf("sweep not doubling: %d -> %d", a.Tuples, b.Tuples)
		}
		// Exact linearity of both models.
		if !approx(b.IJModel, 2*a.IJModel) || !approx(b.GHModel, 2*a.GHModel) {
			t.Errorf("not linear at T=%d: IJ %.3f->%.3f GH %.3f->%.3f",
				b.Tuples, a.IJModel, b.IJModel, a.GHModel, b.GHModel)
		}
		// The absolute gap doubles too.
		gapA, gapB := a.GHModel-a.IJModel, b.GHModel-b.IJModel
		if !approx(gapB, 2*gapA) {
			t.Errorf("gap not linear: %.3f -> %.3f", gapA, gapB)
		}
	}
	last := p.Rows[len(p.Rows)-1]
	if last.Tuples != 1<<31 {
		t.Errorf("endpoint = %d, want 2^31", last.Tuples)
	}
	if last.GHModel <= last.IJModel {
		t.Error("IJ should win the low-degree large-T regime")
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

func TestAblationCachePolicyShape(t *testing.T) {
	a, err := AblationCachePolicy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range a.Rows {
		byLabel[r.Label] = r
	}
	lru, ok := byLabel["lru"]
	if !ok {
		t.Fatalf("rows = %+v", a.Rows)
	}
	if lru.Refetches != 0 {
		t.Errorf("LRU refetched %d times at the memory bound", lru.Refetches)
	}
	fifo := byLabel["fifo"]
	if fifo.Refetches <= lru.Refetches {
		t.Errorf("FIFO (%d refetches) should do worse than LRU (%d)", fifo.Refetches, lru.Refetches)
	}
}
