package harness

import (
	"fmt"
	"io"

	"sciview/internal/costmodel"
)

// Fig6PaperScale extends Figure 6 to the paper's full range — up to 2
// billion tuples — by evaluating the Section 5 cost models at the 2006
// testbed's parameters (the emulated execution validates the models at
// laptop scale; both algorithms are exactly linear in T, so the models
// carry the sweep the rest of the way, as the paper's own figure shows).
//
// System parameters approximate the paper's cluster: 5 storage + 5 compute
// nodes, IDE disks ≈ 30 MB/s read / 25 MB/s write, switched Fast Ethernet
// ≈ 12 MB/s per node, and PIII-933-era hash costs ≈ 1 µs per operation.
type PaperScaleRow struct {
	Tuples  int64
	IJModel float64 // seconds
	GHModel float64 // seconds
}

// PaperScale is the model-only extrapolation table.
type PaperScale struct {
	Rows  []PaperScaleRow
	Notes []string
}

// Fig6PaperScale computes the extrapolation. Dataset parameters mirror
// the harness's Figure 6 dataset (degree-2 connectivity, 16-byte records).
func Fig6PaperScale() *PaperScale {
	base := costmodel.Params{
		CR: 2048, CS: 2048,
		RSR: 16, RSS: 16,
		Ns: 5, Nj: 5,
		NetBw:  5 * 12e6,
		ReadBw: 30e6, WriteBw: 25e6,
		AlphaBuild:  1e-6,
		AlphaLookup: 1e-6,
	}
	out := &PaperScale{}
	for t := int64(1) << 24; t <= 1<<31; t <<= 1 {
		p := base
		p.T = t
		p.Ne = 2 * (t / p.CS) // degree-2 connectivity graph
		out.Rows = append(out.Rows, PaperScaleRow{
			Tuples:  t,
			IJModel: p.IJ().Total,
			GHModel: p.GH().Total,
		})
	}
	out.Notes = append(out.Notes,
		"model-only extrapolation at 2006 testbed parameters; both algorithms exactly linear in T",
		"at T = 2^31 (the paper's 2-billion-tuple endpoint) the IJ-GH gap reaches minutes")
	return out
}

// Print renders the extrapolation table.
func (p *PaperScale) Print(w io.Writer) {
	fmt.Fprintln(w, "== fig6-scale: cost-model extrapolation to the paper's 2-billion-tuple endpoint ==")
	fmt.Fprintf(w, "%-14s %14s %14s %14s\n", "tuples", "IJ model(s)", "GH model(s)", "GH-IJ gap(s)")
	for _, r := range p.Rows {
		fmt.Fprintf(w, "%-14d %14.1f %14.1f %14.1f\n", r.Tuples, r.IJModel, r.GHModel, r.GHModel-r.IJModel)
	}
	for _, n := range p.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
