// Package harness regenerates the paper's evaluation: one experiment per
// figure (Figures 4–9), each sweeping the same parameter the paper sweeps
// and reporting measured IJ/GH execution times next to the cost-model
// predictions.
//
// Scale substitution: the paper ran on a 2001-era cluster (PIII 933 MHz,
// IDE disks, Fast Ethernet). The harness emulates that balance point at
// laptop scale with bandwidth throttles and a modeled per-hash-operation
// CPU cost (internal/simio, cluster.Config.CPUSecPerOp), so the CPU/IO
// cost ratio — which determines every crossover in the paper — is
// comparable. Absolute times are not meaningful; shapes, orderings and
// crossovers are.
package harness

import (
	"fmt"
	"io"
	"strings"

	"sciview/internal/cluster"
	"sciview/internal/costmodel"
	"sciview/internal/engine"
	"sciview/internal/gh"
	"sciview/internal/ij"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/planner"
)

// Config sets the emulated platform and sweep sizes.
type Config struct {
	// StorageNodes and ComputeNodes default to the paper's 5 + 5 split.
	StorageNodes int
	ComputeNodes int
	// DiskReadBw, DiskWriteBw and NICBw are bytes/second (defaults emulate
	// the IDE-disk / Fast-Ethernet balance at reduced scale).
	DiskReadBw  float64
	DiskWriteBw float64
	NICBw       float64
	// CPUSecPerOp models the era-appropriate CPU speed: seconds charged
	// per hash operation on the compute nodes. Figure 8 sweeps it.
	CPUSecPerOp float64
	// Grid is the base dataset grid (T = Grid.Cells()).
	Grid partition.Dims
	// Quick trims every sweep for use in unit tests.
	Quick bool
	// Seed drives dataset generation.
	Seed int64

	// alphas are calibrated once on first use.
	alphaBuild  float64
	alphaLookup float64
}

// Defaults returns the standard experiment configuration.
func Defaults() Config {
	return Config{
		StorageNodes: 5,
		ComputeNodes: 5,
		DiskReadBw:   2e6,
		DiskWriteBw:  2e6,
		NICBw:        4e6,
		CPUSecPerOp:  2.5e-6,
		Grid:         partition.D(64, 64, 16),
		Seed:         2006,
	}
}

// Quick returns a configuration small enough for unit tests: a tiny grid
// with bandwidths and work factor scaled so modeled I/O and CPU costs stay
// well above real scheduling noise (runs of a few hundred ms).
func Quick() Config {
	c := Defaults()
	c.Quick = true
	c.Grid = partition.D(16, 16, 8)
	c.DiskReadBw, c.DiskWriteBw, c.NICBw = 0.4e6, 0.4e6, 0.8e6
	c.CPUSecPerOp = 13e-6
	return c
}

func (c *Config) setDefaults() {
	d := Defaults()
	if c.StorageNodes == 0 {
		c.StorageNodes = d.StorageNodes
	}
	if c.ComputeNodes == 0 {
		c.ComputeNodes = d.ComputeNodes
	}
	if c.DiskReadBw == 0 {
		c.DiskReadBw = d.DiskReadBw
	}
	if c.DiskWriteBw == 0 {
		c.DiskWriteBw = d.DiskWriteBw
	}
	if c.NICBw == 0 {
		c.NICBw = d.NICBw
	}
	if c.CPUSecPerOp == 0 {
		c.CPUSecPerOp = d.CPUSecPerOp
	}
	if !c.Grid.Positive() {
		c.Grid = d.Grid
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
}

// calibrate measures the host's native per-operation hash costs once; the
// planner adds the modeled CPUSecPerOp on top.
func (c *Config) calibrate() {
	if c.alphaBuild <= 0 || c.alphaLookup <= 0 {
		c.alphaBuild, c.alphaLookup = costmodel.Calibrate(1 << 16)
	}
}

// Row is one sweep point of an experiment: measured seconds for both
// engines plus model predictions.
type Row struct {
	Label string
	X     float64
	// Measured wall-clock seconds.
	IJMeasured float64
	GHMeasured float64
	// Cost-model predictions in seconds.
	IJModel float64
	GHModel float64
}

// Experiment is a regenerated figure.
type Experiment struct {
	ID    string
	Title string
	XName string
	Rows  []Row
	Notes []string
}

// Winner returns "IJ" or "GH" for a row's measured times.
func (r Row) Winner() string {
	if r.IJMeasured <= r.GHMeasured {
		return "IJ"
	}
	return "GH"
}

// ModelWinner returns the model-predicted winner.
func (r Row) ModelWinner() string {
	if r.IJModel <= r.GHModel {
		return "IJ"
	}
	return "GH"
}

// Print renders the experiment as an aligned text table.
func (e *Experiment) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
	fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %6s %6s\n",
		e.XName, "IJ meas(s)", "GH meas(s)", "IJ model(s)", "GH model(s)", "meas", "model")
	for _, r := range e.Rows {
		fmt.Fprintf(w, "%-14s %12.3f %12.3f %12.3f %12.3f %6s %6s\n",
			r.Label, r.IJMeasured, r.GHMeasured, r.IJModel, r.GHModel, r.Winner(), r.ModelWinner())
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the experiment table.
func (e *Experiment) String() string {
	var sb strings.Builder
	e.Print(&sb)
	return sb.String()
}

// dataset generates the standard two-table dataset for a grid and
// partition pair, with the given number of scalar measures per table.
func (c *Config) dataset(grid, p, q partition.Dims, measures int) (*oilres.Dataset, error) {
	left := make([]string, measures)
	right := make([]string, measures)
	left[0], right[0] = "oilp", "wp"
	for i := 1; i < measures; i++ {
		left[i] = fmt.Sprintf("lm%d", i)
		right[i] = fmt.Sprintf("rm%d", i)
	}
	return oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: p, RightPart: q,
		LeftMeasures: left, RightMeasures: right,
		StorageNodes: c.StorageNodes,
		Seed:         c.Seed,
	})
}

// clusterFor assembles the emulated platform over a dataset. cpuScale
// multiplies the baseline per-op CPU cost (Figure 8 sweeps it; 1 elsewhere).
func (c *Config) clusterFor(ds *oilres.Dataset, nj int, shared bool, contention, cpuScale float64) (*cluster.Cluster, error) {
	return cluster.New(cluster.Config{
		StorageNodes:  c.StorageNodes,
		ComputeNodes:  nj,
		DiskReadBw:    c.DiskReadBw,
		DiskWriteBw:   c.DiskWriteBw,
		NetBw:         c.NICBw,
		SharedFS:      shared,
		NFSContention: contention,
		CacheBytes:    64 << 20,
		CPUSecPerOp:   c.CPUSecPerOp * cpuScale,
	}, ds.Catalog, ds.Stores)
}

// request is the standard full-view query.
func (c *Config) request() engine.Request {
	return engine.Request{
		LeftTable: "T1", RightTable: "T2",
		JoinAttrs: []string{"x", "y", "z"},
	}
}

// runBoth executes the request on both engines and computes predictions.
func (c *Config) runBoth(cl *cluster.Cluster, req engine.Request) (ijSec, ghSec float64, params costmodel.Params, err error) {
	c.calibrate()
	pl := planner.New()
	pl.AlphaBuild, pl.AlphaLookup = c.alphaBuild, c.alphaLookup
	params, err = pl.ParamsFor(cl, req)
	if err != nil {
		return 0, 0, params, err
	}
	resIJ, err := ij.New().Run(cl, req)
	if err != nil {
		return 0, 0, params, err
	}
	resGH, err := gh.New().Run(cl, req)
	if err != nil {
		return 0, 0, params, err
	}
	return resIJ.Elapsed.Seconds(), resGH.Elapsed.Seconds(), params, nil
}

// predictions evaluates the cost models for a parameter set.
func predictions(params costmodel.Params, shared bool) (ijSec, ghSec float64) {
	if shared {
		return params.IJSharedFS().Total, params.GHSharedFS().Total
	}
	return params.IJ().Total, params.GH().Total
}

// CSV writes the experiment as a CSV table (for plotting).
func (e *Experiment) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,ij_measured_s,gh_measured_s,ij_model_s,gh_model_s\n",
		strings.ReplaceAll(e.XName, " ", "_")); err != nil {
		return err
	}
	for _, r := range e.Rows {
		if _, err := fmt.Fprintf(w, "%s,%.6f,%.6f,%.6f,%.6f\n",
			r.Label, r.IJMeasured, r.GHMeasured, r.IJModel, r.GHModel); err != nil {
			return err
		}
	}
	return nil
}
