package harness

import (
	"fmt"
	"io"

	"sciview/internal/partition"
)

// basePart returns the baseline right-table partition: a quarter of the
// grid in x and y and half in z, giving the 4×4×2 = 32 sub-tables per
// table the sweeps are built around.
func (c *Config) basePart() partition.Dims {
	return partition.D(c.Grid.X/4, c.Grid.Y/4, c.Grid.Z/2)
}

// splitPart halves the partition d times (largest dimension first),
// producing a left partition nested inside the right one so that every
// right sub-table overlaps exactly 2^d left sub-tables.
func splitPart(p partition.Dims, d int) partition.Dims {
	for i := 0; i < d; i++ {
		switch {
		case p.X >= p.Y && p.X >= p.Z && p.X > 1:
			p.X /= 2
		case p.Y >= p.Z && p.Y > 1:
			p.Y /= 2
		default:
			p.Z /= 2
		}
	}
	return p
}

// Fig4 regenerates Figure 4: execution time versus the dataset parameter
// n_e·c_S at constant grid size and constant edge ratio.
//
// Sweep construction: the right partition q is fixed; the left partition
// p = q/2^d is nested inside it. Each right sub-table then overlaps
// g = 2^d left sub-tables, so n_e·c_S = g·T grows with d while the edge
// ratio n_e·c_R·c_S/T² = c_S/T stays constant — the paper's setup. IJ's
// lookup cost grows with n_e·c_S; GH is insensitive; they cross.
func Fig4(cfg Config) (*Experiment, error) {
	cfg.setDefaults()
	depths := []int{0, 1, 2, 3, 4, 5}
	if cfg.Quick {
		depths = []int{0, 3, 5}
	}
	q := cfg.basePart()
	exp := &Experiment{
		ID:    "fig4",
		Title: "IJ vs GH while varying n_e*c_S (constant grid, constant edge ratio)",
		XName: "n_e*c_S",
	}
	for _, d := range depths {
		p := splitPart(q, d)
		ds, err := cfg.dataset(cfg.Grid, p, q, 1)
		if err != nil {
			return nil, err
		}
		cl, err := cfg.clusterFor(ds, cfg.ComputeNodes, false, 0, 1)
		if err != nil {
			return nil, err
		}
		ijSec, ghSec, params, err := cfg.runBoth(cl, cfg.request())
		if err != nil {
			return nil, err
		}
		mi, mg := predictions(params, false)
		neCs := float64(params.Ne) * float64(params.CS)
		exp.Rows = append(exp.Rows, Row{
			Label:      fmt.Sprintf("%.0f", neCs),
			X:          neCs,
			IJMeasured: ijSec, GHMeasured: ghSec,
			IJModel: mi, GHModel: mg,
		})
	}
	exp.Notes = append(exp.Notes,
		"expected shape: IJ grows with n_e*c_S, GH flat, crossover predicted by the model")
	return exp, nil
}

// Fig5 regenerates Figure 5: execution time versus the number of compute
// nodes, on a dataset with low n_e·c_S (so IJ outperforms GH and the gap
// shrinks as 1/n_j).
func Fig5(cfg Config) (*Experiment, error) {
	cfg.setDefaults()
	njs := []int{1, 2, 3, 4, 5}
	if cfg.Quick {
		njs = []int{1, 2, 4}
	}
	q := cfg.basePart()
	ds, err := cfg.dataset(cfg.Grid, q, q, 1)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:    "fig5",
		Title: "IJ vs GH while varying the number of compute nodes (low n_e*c_S)",
		XName: "compute nodes",
	}
	for _, nj := range njs {
		cl, err := cfg.clusterFor(ds, nj, false, 0, 1)
		if err != nil {
			return nil, err
		}
		ijSec, ghSec, params, err := cfg.runBoth(cl, cfg.request())
		if err != nil {
			return nil, err
		}
		mi, mg := predictions(params, false)
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("%d", nj), X: float64(nj),
			IJMeasured: ijSec, GHMeasured: ghSec, IJModel: mi, GHModel: mg,
		})
	}
	exp.Notes = append(exp.Notes,
		"expected shape: both drop with n_j; IJ wins; the IJ-GH gap shrinks proportionally to 1/n_j")
	return exp, nil
}

// Fig6 regenerates Figure 6: execution time versus T (grid size). Both
// algorithms scale linearly, and so does the gap between them.
func Fig6(cfg Config) (*Experiment, error) {
	cfg.setDefaults()
	scales := []int{4, 2, 1} // grid.X divided by scale, then 2× grid.X
	if cfg.Quick {
		scales = []int{4, 1}
	}
	q := cfg.basePart()
	p := splitPart(q, 1) // g = 2: mild IJ/GH separation at every size
	var grids []partition.Dims
	for _, s := range scales {
		grids = append(grids, partition.D(cfg.Grid.X/s, cfg.Grid.Y, cfg.Grid.Z))
	}
	if !cfg.Quick {
		grids = append(grids, partition.D(cfg.Grid.X*2, cfg.Grid.Y, cfg.Grid.Z))
	}
	exp := &Experiment{
		ID:    "fig6",
		Title: "IJ vs GH while varying the number of tuples T",
		XName: "tuples",
	}
	for _, g := range grids {
		ds, err := cfg.dataset(g, p, q, 1)
		if err != nil {
			return nil, err
		}
		cl, err := cfg.clusterFor(ds, cfg.ComputeNodes, false, 0, 1)
		if err != nil {
			return nil, err
		}
		ijSec, ghSec, params, err := cfg.runBoth(cl, cfg.request())
		if err != nil {
			return nil, err
		}
		mi, mg := predictions(params, false)
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("%d", params.T), X: float64(params.T),
			IJMeasured: ijSec, GHMeasured: ghSec, IJModel: mi, GHModel: mg,
		})
	}
	exp.Notes = append(exp.Notes,
		"expected shape: both linear in T; the absolute gap grows linearly too")
	return exp, nil
}

// Fig7 regenerates Figure 7: execution time versus the number of
// attributes (4 bytes each). Record size affects only transfer and
// GH's bucket I/O, so GH's slope is steeper.
func Fig7(cfg Config) (*Experiment, error) {
	cfg.setDefaults()
	measureCounts := []int{1, 5, 9, 13, 17} // total attrs 4, 8, 12, 16, 20
	if cfg.Quick {
		measureCounts = []int{1, 9}
	}
	q := cfg.basePart()
	exp := &Experiment{
		ID:    "fig7",
		Title: "IJ vs GH while varying the number of attributes",
		XName: "attributes",
	}
	for _, m := range measureCounts {
		ds, err := cfg.dataset(cfg.Grid, q, q, m)
		if err != nil {
			return nil, err
		}
		cl, err := cfg.clusterFor(ds, cfg.ComputeNodes, false, 0, 1)
		if err != nil {
			return nil, err
		}
		ijSec, ghSec, params, err := cfg.runBoth(cl, cfg.request())
		if err != nil {
			return nil, err
		}
		mi, mg := predictions(params, false)
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("%d", 3+m), X: float64(3 + m),
			IJMeasured: ijSec, GHMeasured: ghSec, IJModel: mi, GHModel: mg,
		})
	}
	exp.Notes = append(exp.Notes,
		"expected shape: both grow with record size; GH's slope is steeper (bucket write+read)")
	return exp, nil
}

// Fig8 regenerates Figure 8: the effect of computing power. The compute
// nodes' per-operation CPU charge is scaled (the modeled analogue of the
// paper's repeat-the-instructions technique); higher relative compute
// power favors IJ, whose CPU term dominates its cost.
func Fig8(cfg Config) (*Experiment, error) {
	cfg.setDefaults()
	scales := []float64{4, 2, 1, 0.5} // CPU cost multipliers: 4 = quarter-speed CPU
	if cfg.Quick {
		scales = []float64{4, 1, 0.5}
	}
	q := cfg.basePart()
	p := splitPart(q, 3) // g = 8: near the CPU/IO crossover
	ds, err := cfg.dataset(cfg.Grid, p, q, 1)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:    "fig8",
		Title: "Effect of computing power (scaled per-op CPU cost)",
		XName: "rel. power",
	}
	for _, f := range scales {
		cl, err := cfg.clusterFor(ds, cfg.ComputeNodes, false, 0, f)
		if err != nil {
			return nil, err
		}
		ijSec, ghSec, params, err := cfg.runBoth(cl, cfg.request())
		if err != nil {
			return nil, err
		}
		mi, mg := predictions(params, false)
		power := 1.0 / f
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("%.3gx", power), X: power,
			IJMeasured: ijSec, GHMeasured: ghSec, IJModel: mi, GHModel: mg,
		})
	}
	exp.Notes = append(exp.Notes,
		"expected shape: as compute power rises, IJ gains on GH (and overtakes it)")
	return exp, nil
}

// Fig9 regenerates Figure 9: a single shared NFS server performs all I/O
// and compute nodes have no local disks. GH suffers far more than IJ (only
// GH writes buckets), and adding compute nodes makes GH worse as their
// concurrent spills thrash the shared server.
func Fig9(cfg Config) (*Experiment, error) {
	cfg.setDefaults()
	njs := []int{1, 2, 3, 4, 5}
	if cfg.Quick {
		njs = []int{1, 2, 4}
	}
	const contention = 0.7
	q := cfg.basePart()
	ds, err := cfg.dataset(cfg.Grid, q, q, 1)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:    "fig9",
		Title: "Shared filesystem (single NFS server serves all I/O)",
		XName: "compute nodes",
	}
	for _, nj := range njs {
		cl, err := cfg.clusterFor(ds, nj, true, contention, 1)
		if err != nil {
			return nil, err
		}
		ijSec, ghSec, params, err := cfg.runBoth(cl, cfg.request())
		if err != nil {
			return nil, err
		}
		mi, mg := predictions(params, true)
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("%d", nj), X: float64(nj),
			IJMeasured: ijSec, GHMeasured: ghSec, IJModel: mi, GHModel: mg,
		})
	}
	exp.Notes = append(exp.Notes,
		"expected shape: GH much worse than IJ; GH degrades as n_j grows (server thrash)",
		"models shown are the ideal shared-server predictions (no contention term)")
	return exp, nil
}

// All runs every figure in order.
func All(cfg Config) ([]*Experiment, error) {
	type fig func(Config) (*Experiment, error)
	var out []*Experiment
	for _, f := range []fig{Fig4, Fig5, Fig6, Fig7, Fig8, Fig9} {
		e, err := f(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}

// RunAndPrint runs every figure, printing each as it completes.
func RunAndPrint(cfg Config, w io.Writer) error {
	type fig func(Config) (*Experiment, error)
	for _, f := range []fig{Fig4, Fig5, Fig6, Fig7, Fig8, Fig9} {
		e, err := f(cfg)
		if err != nil {
			return err
		}
		e.Print(w)
	}
	return nil
}
