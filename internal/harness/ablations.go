package harness

import (
	"fmt"
	"io"

	"sciview/internal/cluster"
	"sciview/internal/ij"
	"sciview/internal/oilres"
)

// Ablations probe the design choices the paper argues for but does not
// sweep directly: the IJ memory assumption (Section 6.2's OPAS
// discussion), the two-stage scheduling strategy, and the block-cyclic
// chunk placement of the experimental setup.

// AblationRow is one point of an ablation sweep: IJ execution time plus
// the re-transfer behaviour that explains it.
type AblationRow struct {
	Label string
	// Seconds is the measured execution time.
	Seconds float64
	// NetBytes is the storage→compute volume (re-fetches inflate it).
	NetBytes int64
	// Fetches and Refetches count sub-table transfers: Refetches =
	// Fetches − distinct sub-tables.
	Fetches   int64
	Refetches int64
}

// Ablation is one ablation experiment.
type Ablation struct {
	ID    string
	Title string
	XName string
	Rows  []AblationRow
	Notes []string
}

// Print renders the ablation as an aligned text table.
func (a *Ablation) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", a.ID, a.Title)
	fmt.Fprintf(w, "%-16s %10s %14s %10s %10s\n", a.XName, "time(s)", "net bytes", "fetches", "refetches")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-16s %10.3f %14d %10d %10d\n", r.Label, r.Seconds, r.NetBytes, r.Fetches, r.Refetches)
	}
	for _, n := range a.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// ablationDataset builds a dataset with genuinely overlapping (not
// nested) partitions: the left table is split in x and y, the right table
// in z, so each component couples a = 4 left with b = 2 right sub-tables
// and every pair overlaps (E_C = 8). Locality-destroying schedules and
// sub-bound caches then cause real re-fetches. It returns the dataset, the
// total sub-table count, and the paper's per-joiner memory bound
// 2·c_R·RS_R + b·c_S·RS_S in bytes.
func (c *Config) ablationDataset() (*oilres.Dataset, int64, int64, error) {
	base := c.basePart()
	p := splitPart(splitPart(base, 1), 1) // halve x then y
	q := base
	q.Z /= 2 // halve z only: overlaps, never nests
	ds, err := c.dataset(c.Grid, p, q, 1)
	if err != nil {
		return nil, 0, 0, err
	}
	subTables := c.Grid.Cells()/p.Cells() + c.Grid.Cells()/q.Cells()
	need := ij.CacheBytesFor(p.Cells(), 16, 2, q.Cells(), 16)
	return ds, subTables, need, nil
}

// runIJ runs the IJ engine variant on a cluster with the given per-joiner
// cache size and extracts the re-transfer counters.
func (c *Config) runIJ(e *ij.Engine, ds *oilres.Dataset, subTables, cacheBytes int64) (AblationRow, error) {
	return c.runIJPolicy(e, ds, subTables, cacheBytes, "")
}

// runIJPolicy is runIJ with an explicit cache replacement policy.
func (c *Config) runIJPolicy(e *ij.Engine, ds *oilres.Dataset, subTables, cacheBytes int64, policy string) (AblationRow, error) {
	cl, err := cluster.New(cluster.Config{
		StorageNodes: c.StorageNodes,
		ComputeNodes: c.ComputeNodes,
		DiskReadBw:   c.DiskReadBw,
		DiskWriteBw:  c.DiskWriteBw,
		NetBw:        c.NICBw,
		CacheBytes:   cacheBytes,
		CachePolicy:  policy,
		CPUSecPerOp:  c.CPUSecPerOp,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		return AblationRow{}, err
	}
	res, err := e.Run(cl, c.request())
	if err != nil {
		return AblationRow{}, err
	}
	fetches := res.Cache.Misses
	return AblationRow{
		Seconds:   res.Elapsed.Seconds(),
		NetBytes:  res.Traffic.NetBytesToCompute,
		Fetches:   fetches,
		Refetches: fetches - subTables,
	}, nil
}

// AblationCache sweeps the per-joiner cache size on a fixed dataset,
// demonstrating Section 6.2's discussion: once the cache drops below the
// memory assumption (2·c_R + b·c_S per component working set), IJ
// re-fetches sub-tables and its transfer cost is no longer T·(RS_R+RS_S).
func AblationCache(cfg Config) (*Ablation, error) {
	cfg.setDefaults()
	ds, subTables, need, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	sweeps := []struct {
		label string
		bytes int64
	}{
		{"4x bound", 4 * need},
		{"1x bound", need},
		{"1/2 bound", need / 2},
		{"1/4 bound", need / 4},
		{"1/8 bound", need / 8},
	}
	if cfg.Quick {
		sweeps = []struct {
			label string
			bytes int64
		}{{"1x bound", need}, {"1/2 bound", need / 2}, {"1/4 bound", need / 4}}
	}
	a := &Ablation{
		ID:    "ablation-cache",
		Title: "IJ under shrinking compute-node cache (memory assumption violated)",
		XName: "cache size",
	}
	for _, s := range sweeps {
		row, err := cfg.runIJ(ij.New(), ds, subTables, s.bytes)
		if err != nil {
			return nil, err
		}
		row.Label = s.label
		a.Rows = append(a.Rows, row)
	}
	a.Notes = append(a.Notes,
		"expected shape: at >=1x the 2*c_R+b*c_S bound, zero refetches; below it, refetches and time climb")
	return a, nil
}

// AblationSchedule compares the paper's two-stage scheduling strategy with
// degraded variants under a cache sized exactly to the memory assumption:
// only component-local processing keeps the no-refetch guarantee.
func AblationSchedule(cfg Config) (*Ablation, error) {
	cfg.setDefaults()
	ds, subTables, need, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	a := &Ablation{
		ID:    "ablation-schedule",
		Title: "IJ scheduling strategies at the exact memory bound",
		XName: "schedule",
	}
	for _, sched := range []ij.Schedule{ij.ScheduleComponent, ij.ScheduleOPAS, ij.ScheduleGlobalLex, ij.ScheduleRandom} {
		e := &ij.Engine{Schedule: sched}
		row, err := cfg.runIJ(e, ds, subTables, need)
		if err != nil {
			return nil, err
		}
		row.Label = sched.String()
		a.Rows = append(a.Rows, row)
	}
	a.Notes = append(a.Notes,
		"expected shape: the component schedule fetches each sub-table once; random re-fetches heavily",
		"global-lex matches component here because round-robin dealing keeps each joiner's components disjoint in id space — the guarantee, however, only holds by construction for the component schedule")
	return a, nil
}

// AblationCachePolicy compares cache replacement policies at the exact
// memory bound. The IJ access pattern re-touches a component's right
// sub-tables while left sub-tables stream through once; LRU (the paper's
// choice) keeps the reused rights, FIFO ages them out, and CLOCK sits in
// between — the paper's future-work question about caching strategies,
// answered for this workload.
func AblationCachePolicy(cfg Config) (*Ablation, error) {
	cfg.setDefaults()
	ds, subTables, need, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	a := &Ablation{
		ID:    "ablation-cache-policy",
		Title: "Caching Service replacement policies at the exact memory bound",
		XName: "policy",
	}
	for _, policy := range []string{"lru", "clock", "fifo"} {
		row, err := cfg.runIJPolicy(ij.New(), ds, subTables, need, policy)
		if err != nil {
			return nil, err
		}
		row.Label = policy
		a.Rows = append(a.Rows, row)
	}
	a.Notes = append(a.Notes,
		"expected shape: LRU fetches each sub-table once at the bound; FIFO re-fetches reused rights")
	return a, nil
}

// AblationPlacement compares block-cyclic chunk placement (the paper's
// setup) against contiguous placement: contiguous placement concentrates
// each component's chunks on one storage node, serializing IJ's transfers
// on a single disk.
func AblationPlacement(cfg Config) (*Ablation, error) {
	cfg.setDefaults()
	a := &Ablation{
		ID:    "ablation-placement",
		Title: "Chunk placement policy vs IJ transfer parallelism",
		XName: "placement",
	}
	q := cfg.basePart()
	for _, placement := range []string{"blockcyclic", "contiguous"} {
		ds, err := oilres.Generate(oilres.Config{
			Grid: cfg.Grid, LeftPart: q, RightPart: q,
			StorageNodes: cfg.StorageNodes,
			Placement:    placement,
			Seed:         cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		subTables := 2 * (cfg.Grid.Cells() / q.Cells())
		row, err := cfg.runIJ(ij.New(), ds, subTables, 64<<20)
		if err != nil {
			return nil, err
		}
		row.Label = placement
		a.Rows = append(a.Rows, row)
	}
	a.Notes = append(a.Notes,
		"expected shape: same bytes moved, but contiguous placement is slower (per-component transfers hit one disk)")
	return a, nil
}

// RunAblations runs every ablation, printing each as it completes.
func RunAblations(cfg Config, w io.Writer) error {
	for _, f := range []func(Config) (*Ablation, error){AblationCache, AblationSchedule, AblationCachePolicy, AblationPlacement} {
		a, err := f(cfg)
		if err != nil {
			return err
		}
		a.Print(w)
	}
	return nil
}
