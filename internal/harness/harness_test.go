package harness

import (
	"strings"
	"testing"
)

// The quick configuration keeps each figure to a handful of sub-second
// runs; these tests validate the *shapes* the paper reports, which is what
// the reproduction is accountable for.

func TestFig4Shape(t *testing.T) {
	exp, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := exp.Rows
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// IJ measured time grows with n_e*c_S.
	if !(rows[len(rows)-1].IJMeasured > rows[0].IJMeasured) {
		t.Errorf("IJ not increasing: first %.3fs last %.3fs",
			rows[0].IJMeasured, rows[len(rows)-1].IJMeasured)
	}
	// GH roughly flat: within 40% across the sweep.
	gh0 := rows[0].GHMeasured
	for _, r := range rows {
		if r.GHMeasured > gh0*1.4 || r.GHMeasured < gh0*0.6 {
			t.Errorf("GH not flat: %.3fs vs %.3fs", r.GHMeasured, gh0)
		}
	}
	// Models follow the same ordering as measurements at the extremes.
	if rows[0].ModelWinner() != rows[0].Winner() {
		t.Errorf("low-degree winner: model %s, measured %s", rows[0].ModelWinner(), rows[0].Winner())
	}
	last := rows[len(rows)-1]
	if last.ModelWinner() != last.Winner() {
		t.Errorf("high-degree winner: model %s, measured %s", last.ModelWinner(), last.Winner())
	}
}

func TestFig5Shape(t *testing.T) {
	exp, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := exp.Rows
	// Both decrease with more compute nodes; IJ wins at low n_e*c_S.
	for i := 1; i < len(rows); i++ {
		if rows[i].GHMeasured >= rows[i-1].GHMeasured {
			t.Errorf("GH not decreasing: nj=%s %.3fs vs nj=%s %.3fs",
				rows[i].Label, rows[i].GHMeasured, rows[i-1].Label, rows[i-1].GHMeasured)
		}
	}
	for _, r := range rows {
		if r.Winner() != "IJ" {
			t.Errorf("nj=%s: GH won a low n_e*c_S dataset", r.Label)
		}
	}
	// The gap shrinks with nj (with tolerance for scheduler noise on the
	// quick config's ~100ms gaps).
	first, last := rows[0], rows[len(rows)-1]
	firstGap := first.GHMeasured - first.IJMeasured
	lastGap := last.GHMeasured - last.IJMeasured
	if lastGap > firstGap*0.9+0.02 {
		t.Errorf("gap did not shrink: %.3f -> %.3f", firstGap, lastGap)
	}
}

func TestFig6Shape(t *testing.T) {
	exp, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := exp.Rows
	if len(rows) < 2 {
		t.Fatal("need at least 2 sizes")
	}
	// Roughly linear: quadrupling T should scale both times by ~4 (±50%).
	ratioT := rows[len(rows)-1].X / rows[0].X
	for _, m := range []struct {
		name        string
		first, last float64
	}{
		{"IJ", rows[0].IJMeasured, rows[len(rows)-1].IJMeasured},
		{"GH", rows[0].GHMeasured, rows[len(rows)-1].GHMeasured},
	} {
		ratio := m.last / m.first
		if ratio < ratioT*0.5 || ratio > ratioT*1.5 {
			t.Errorf("%s not linear: time ratio %.2f for T ratio %.2f", m.name, ratio, ratioT)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	exp, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := exp.Rows
	first, last := rows[0], rows[len(rows)-1]
	// Both grow with record size.
	if !(last.IJMeasured > first.IJMeasured && last.GHMeasured > first.GHMeasured) {
		t.Errorf("times did not grow with attributes: IJ %.3f->%.3f GH %.3f->%.3f",
			first.IJMeasured, last.IJMeasured, first.GHMeasured, last.GHMeasured)
	}
	// GH grows faster (absolute slope).
	if !(last.GHMeasured-first.GHMeasured > last.IJMeasured-first.IJMeasured) {
		t.Errorf("GH slope not steeper: dGH=%.3f dIJ=%.3f",
			last.GHMeasured-first.GHMeasured, last.IJMeasured-first.IJMeasured)
	}
}

func TestFig8Shape(t *testing.T) {
	exp, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := exp.Rows // ascending relative power
	// IJ's deficit (or surplus) relative to GH improves as power rises.
	firstGap := rows[0].GHMeasured - rows[0].IJMeasured
	lastGap := rows[len(rows)-1].GHMeasured - rows[len(rows)-1].IJMeasured
	if !(lastGap > firstGap) {
		t.Errorf("IJ did not gain with compute power: gap %.3f -> %.3f", firstGap, lastGap)
	}
}

func TestFig9Shape(t *testing.T) {
	exp, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := exp.Rows
	// IJ beats GH at every point on a shared server.
	for _, r := range rows {
		if r.Winner() != "IJ" {
			t.Errorf("nj=%s: GH won on shared FS", r.Label)
		}
	}
	// GH degrades (or at best stagnates) as compute nodes are added.
	first, last := rows[0], rows[len(rows)-1]
	if last.GHMeasured < first.GHMeasured*0.95 {
		t.Errorf("GH improved with nj on shared FS: %.3fs -> %.3fs",
			first.GHMeasured, last.GHMeasured)
	}
	// IJ does not degrade comparably.
	if last.IJMeasured > first.IJMeasured*1.5 {
		t.Errorf("IJ degraded on shared FS: %.3fs -> %.3fs", first.IJMeasured, last.IJMeasured)
	}
}

func TestPrintFormat(t *testing.T) {
	exp := &Experiment{
		ID: "figX", Title: "demo", XName: "x",
		Rows:  []Row{{Label: "1", IJMeasured: 0.5, GHMeasured: 1.0, IJModel: 0.4, GHModel: 0.9}},
		Notes: []string{"hello"},
	}
	s := exp.String()
	for _, want := range []string{"figX", "demo", "IJ meas(s)", "0.500", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if exp.Rows[0].Winner() != "IJ" || exp.Rows[0].ModelWinner() != "IJ" {
		t.Error("winner helpers wrong")
	}
}

func TestExperimentCSV(t *testing.T) {
	exp := &Experiment{
		ID: "figX", XName: "compute nodes",
		Rows: []Row{
			{Label: "1", IJMeasured: 0.5, GHMeasured: 1.25, IJModel: 0.4, GHModel: 1.0},
			{Label: "2", IJMeasured: 0.25, GHMeasured: 0.625, IJModel: 0.2, GHModel: 0.5},
		},
	}
	var sb strings.Builder
	if err := exp.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv = %q", sb.String())
	}
	if lines[0] != "compute_nodes,ij_measured_s,gh_measured_s,ij_model_s,gh_model_s" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,0.500000,1.250000,0.400000,1.000000" {
		t.Errorf("row = %q", lines[1])
	}
}
