// Package dds implements Derived Data Sources: the layered views built on
// top of Basic Data Sources. The join-based DDS (JoinView) is the paper's
// focus; this package also provides the range-selecting table scan used for
// plain BDS queries and an aggregation DDS (AVG/SUM/MIN/MAX/COUNT with
// GROUP BY and HAVING), the paper's stated future-work extension, layered
// over either.
package dds

import (
	"context"
	"fmt"
	"sync"

	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/metadata"
	"sciview/internal/query"
	"sciview/internal/tuple"
)

// JoinView is a join-based Derived Data Source: V = Left ⊕attrs Right,
// optionally restricted by a base WHERE clause fixed at view-definition
// time.
type JoinView struct {
	Name      string
	Left      string
	Right     string
	JoinAttrs []string
	Where     []query.Pred
}

// FromCreate builds a view definition from a parsed CREATE VIEW statement,
// validating the referenced tables and join attributes against the catalog.
func FromCreate(cat *metadata.Catalog, cv *query.CreateView) (*JoinView, error) {
	left, err := cat.Table(cv.Left)
	if err != nil {
		return nil, err
	}
	right, err := cat.Table(cv.Right)
	if err != nil {
		return nil, err
	}
	for _, a := range cv.JoinAttrs {
		if left.Schema.Index(a) < 0 {
			return nil, fmt.Errorf("dds: view %s: table %s has no join attribute %q", cv.Name, cv.Left, a)
		}
		if right.Schema.Index(a) < 0 {
			return nil, fmt.Errorf("dds: view %s: table %s has no join attribute %q", cv.Name, cv.Right, a)
		}
	}
	return &JoinView{
		Name: cv.Name, Left: cv.Left, Right: cv.Right,
		JoinAttrs: cv.JoinAttrs, Where: cv.Where,
	}, nil
}

// Schema returns the view's output schema.
func (v *JoinView) Schema(cat *metadata.Catalog) (tuple.Schema, error) {
	left, err := cat.Table(v.Left)
	if err != nil {
		return tuple.Schema{}, err
	}
	right, err := cat.Table(v.Right)
	if err != nil {
		return tuple.Schema{}, err
	}
	return left.Schema.JoinResult(right.Schema, v.JoinAttrs, "r_"), nil
}

// Request assembles the engine request for a query against the view,
// merging the view's base predicates with the query's.
func (v *JoinView) Request(extra []query.Pred, collect bool) (engine.Request, error) {
	merged, err := mergePredSets(v.Where, extra)
	if err != nil {
		return engine.Request{}, err
	}
	return engine.Request{
		LeftTable:  v.Left,
		RightTable: v.Right,
		JoinAttrs:  v.JoinAttrs,
		Filter:     query.ToRange(merged),
		Collect:    collect,
	}, nil
}

// MergePreds conjoins two predicate lists, intersecting intervals on
// shared attributes (view layering uses it to stack restrictions).
func MergePreds(a, b []query.Pred) ([]query.Pred, error) {
	return mergePredSets(a, b)
}

// mergePredSets conjoins two predicate lists, intersecting intervals on
// shared attributes.
func mergePredSets(a, b []query.Pred) ([]query.Pred, error) {
	idx := make(map[string]int)
	var out []query.Pred
	for _, p := range append(append([]query.Pred(nil), a...), b...) {
		if i, ok := idx[p.Attr]; ok {
			if p.Lo > out[i].Lo {
				out[i].Lo = p.Lo
			}
			if p.Hi < out[i].Hi {
				out[i].Hi = p.Hi
			}
			if out[i].Lo > out[i].Hi {
				return nil, fmt.Errorf("dds: contradictory constraints on %q", p.Attr)
			}
		} else {
			idx[p.Attr] = len(out)
			out = append(out, p)
		}
	}
	return out, nil
}

// ScanTable is the simple selection/projection DDS over one BDS table: it
// resolves the chunks intersecting the predicates, fetches them in parallel
// (fanned out across compute nodes) with the projection pushed down to the
// BDS (only the named attributes travel; the record-level filter is applied
// before the projection), and concatenates. proj == nil keeps all
// attributes; otherwise the result columns follow proj's order.
func ScanTable(cl *cluster.Cluster, table string, preds []query.Pred, proj []string) (*tuple.SubTable, error) {
	def, err := cl.Catalog.Table(table)
	if err != nil {
		return nil, err
	}
	// Only constraints on this table's attributes apply.
	var mine []query.Pred
	for _, p := range preds {
		if def.Schema.Index(p.Attr) < 0 {
			return nil, fmt.Errorf("dds: table %s has no attribute %q", table, p.Attr)
		}
		mine = append(mine, p)
	}
	if proj != nil {
		if _, err := def.Schema.Indexes(proj); err != nil {
			return nil, err
		}
	}
	filter := query.ToRange(mine)
	descs, err := cl.Catalog.ChunksInRange(table, filter)
	if err != nil {
		return nil, err
	}
	nj := len(cl.Compute)
	parts := make([]*tuple.SubTable, len(descs))
	errs := make([]error, len(descs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, nj)
	for i, d := range descs {
		wg.Add(1)
		go func(i int, id tuple.ID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parts[i], errs[i] = cl.FetchProjected(context.Background(), i%nj, id, &filter, proj)
		}(i, d.ID())
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	outSchema := engine.ProjectedSchema(def.Schema, proj)
	out := tuple.NewSubTable(tuple.ID{Table: def.ID, Chunk: -1}, outSchema, 0)
	for _, p := range parts {
		if err := out.AppendAll(p); err != nil {
			return nil, err
		}
	}
	if proj != nil {
		return out.Project(proj)
	}
	return out, nil
}
