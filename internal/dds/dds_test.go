package dds

import (
	"math"
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/gh"
	"sciview/internal/ij"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/query"
	"sciview/internal/tuple"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 4), RightPart: partition.D(4, 4, 4),
		StorageNodes: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 16 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func mustParse(t *testing.T, src string) *query.CreateView {
	t.Helper()
	st, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*query.CreateView)
}

func TestFromCreateValidates(t *testing.T) {
	cl := testCluster(t)
	v, err := FromCreate(cl.Catalog, mustParse(t, "CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "V1" || len(v.JoinAttrs) != 3 {
		t.Errorf("view = %+v", v)
	}
	if _, err := FromCreate(cl.Catalog, mustParse(t, "CREATE VIEW V AS SELECT * FROM T9 JOIN T2 ON (x)")); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := FromCreate(cl.Catalog, mustParse(t, "CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (wp)")); err == nil {
		t.Error("join attr missing from left table accepted")
	}
}

func TestViewSchemaAndRequest(t *testing.T) {
	cl := testCluster(t)
	v, err := FromCreate(cl.Catalog, mustParse(t,
		"CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z) WHERE x BETWEEN 0 AND 3"))
	if err != nil {
		t.Fatal(err)
	}
	schema, err := v.Schema(cl.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x", "y", "z", "oilp", "wp"}
	names := schema.Names()
	if len(names) != len(want) {
		t.Fatalf("schema = %v", names)
	}
	// Base predicate merges with query predicate.
	req, err := v.Request([]query.Pred{{Attr: "x", Lo: 2, Hi: 10}, {Attr: "y", Lo: 0, Hi: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Filter.Attrs) != 2 {
		t.Fatalf("filter = %+v", req.Filter)
	}
	if req.Filter.Lo[0] != 2 || req.Filter.Hi[0] != 3 {
		t.Errorf("merged x interval = [%g,%g]", req.Filter.Lo[0], req.Filter.Hi[0])
	}
	// Contradiction detected.
	if _, err := v.Request([]query.Pred{{Attr: "x", Lo: 9, Hi: 10}}, false); err == nil {
		t.Error("contradictory merge accepted")
	}
}

func TestViewExecutesOnBothEngines(t *testing.T) {
	cl := testCluster(t)
	v, _ := FromCreate(cl.Catalog, mustParse(t, "CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"))
	req, err := v.Request([]query.Pred{{Attr: "z", Lo: 0, Hi: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []interface {
		Run(*cluster.Cluster, interface{}) (interface{}, error)
	}{} {
		_ = e // placeholder to keep imports honest
	}
	resIJ, err := ij.New().Run(cl, req)
	if err != nil {
		t.Fatal(err)
	}
	resGH, err := gh.New().Run(cl, req)
	if err != nil {
		t.Fatal(err)
	}
	if resIJ.Tuples != 64 || resGH.Tuples != 64 {
		t.Errorf("z=0 slice: ij=%d gh=%d want 64", resIJ.Tuples, resGH.Tuples)
	}
}

func TestScanTable(t *testing.T) {
	cl := testCluster(t)
	st, err := ScanTable(cl, "T1", []query.Pred{{Attr: "x", Lo: 0, Hi: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 4*8*4 {
		t.Errorf("rows = %d, want 128", st.NumRows())
	}
	// Projection.
	p, err := ScanTable(cl, "T1", nil, []string{"oilp", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.NumAttrs() != 2 || p.NumRows() != 8*8*4 {
		t.Errorf("projected: attrs=%d rows=%d", p.Schema.NumAttrs(), p.NumRows())
	}
	// Unknown attribute in predicate.
	if _, err := ScanTable(cl, "T1", []query.Pred{{Attr: "wp", Lo: 0, Hi: 1}}, nil); err == nil {
		t.Error("unknown predicate attribute accepted")
	}
	if _, err := ScanTable(cl, "nope", nil, nil); err == nil {
		t.Error("unknown table accepted")
	}
}

func aggInput() *tuple.SubTable {
	schema := tuple.NewSchema(
		tuple.Attr{Name: "g", Kind: tuple.Coord},
		tuple.Attr{Name: "v", Kind: tuple.Measure},
	)
	st := tuple.NewSubTable(tuple.ID{}, schema, 0)
	// Group 0: v = 1,2,3; group 1: v = 10, 20.
	st.AppendRow(0, 1)
	st.AppendRow(0, 2)
	st.AppendRow(0, 3)
	st.AppendRow(1, 10)
	st.AppendRow(1, 20)
	return st
}

func TestAggregateGrouped(t *testing.T) {
	out, err := Aggregate([]*tuple.SubTable{aggInput()},
		[]query.SelectItem{
			{Attr: "v", Agg: query.AggAvg},
			{Attr: "v", Agg: query.AggSum},
			{Attr: "v", Agg: query.AggMin},
			{Attr: "v", Agg: query.AggMax},
			{Attr: "*", Agg: query.AggCount},
		},
		[]string{"g"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	names := out.Schema.Names()
	wantNames := []string{"g", "avg_v", "sum_v", "min_v", "max_v", "count"}
	for i, n := range wantNames {
		if names[i] != n {
			t.Errorf("col %d = %q, want %q", i, names[i], n)
		}
	}
	// Group 0.
	if out.Value(0, 0) != 0 || out.Value(0, 1) != 2 || out.Value(0, 2) != 6 ||
		out.Value(0, 3) != 1 || out.Value(0, 4) != 3 || out.Value(0, 5) != 3 {
		t.Errorf("group 0 = %v", out.Row(0, nil))
	}
	// Group 1.
	if out.Value(1, 1) != 15 || out.Value(1, 5) != 2 {
		t.Errorf("group 1 = %v", out.Row(1, nil))
	}
}

func TestAggregateGlobal(t *testing.T) {
	out, err := Aggregate([]*tuple.SubTable{aggInput()},
		[]query.SelectItem{{Attr: "v", Agg: query.AggSum}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Value(0, 0) != 36 {
		t.Errorf("global sum = %v (rows %d)", out.Value(0, 0), out.NumRows())
	}
}

func TestAggregateHaving(t *testing.T) {
	// "Find all reservoirs with average wp > 0.5" — here: groups with
	// AVG(v) > 5 keeps only group 1.
	out, err := Aggregate([]*tuple.SubTable{aggInput()},
		[]query.SelectItem{{Attr: "v", Agg: query.AggAvg}},
		[]string{"g"},
		&query.Having{Agg: query.AggAvg, Attr: "v", Op: ">", Val: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Value(0, 0) != 1 {
		t.Fatalf("having kept %d groups", out.NumRows())
	}
	if out.Value(0, 1) != 15 {
		t.Errorf("avg = %v", out.Value(0, 1))
	}
}

func TestAggregateMultipleInputs(t *testing.T) {
	a, b := aggInput(), aggInput()
	out, err := Aggregate([]*tuple.SubTable{a, nil, b},
		[]query.SelectItem{{Attr: "*", Agg: query.AggCount}}, []string{"g"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Value(0, 1) != 6 || out.Value(1, 1) != 4 {
		t.Errorf("counts = %v %v", out.Value(0, 1), out.Value(1, 1))
	}
}

func TestAggregateErrors(t *testing.T) {
	in := []*tuple.SubTable{aggInput()}
	if _, err := Aggregate(in, nil, nil, nil); err == nil {
		t.Error("no items accepted")
	}
	if _, err := Aggregate(in, []query.SelectItem{{Attr: "v"}}, nil, nil); err == nil {
		t.Error("non-aggregate item accepted")
	}
	if _, err := Aggregate(in, []query.SelectItem{{Attr: "zz", Agg: query.AggSum}}, nil, nil); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Aggregate(in, []query.SelectItem{{Attr: "v", Agg: query.AggSum}}, []string{"zz"}, nil); err == nil {
		t.Error("unknown group-by accepted")
	}
	if _, err := Aggregate(nil, []query.SelectItem{{Attr: "v", Agg: query.AggSum}}, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Aggregate(in, []query.SelectItem{{Attr: "v", Agg: query.AggSum}}, nil,
		&query.Having{Agg: query.AggAvg, Attr: "zz", Op: ">", Val: 0}); err == nil {
		t.Error("unknown HAVING attribute accepted")
	}
}

func TestAggregateOverViewOutput(t *testing.T) {
	// Layer the aggregation DDS over the join DDS: average wp per z-plane.
	cl := testCluster(t)
	v, _ := FromCreate(cl.Catalog, mustParse(t, "CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"))
	req, err := v.Request(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ij.New().Run(cl, req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Aggregate(res.Collected,
		[]query.SelectItem{{Attr: "wp", Agg: query.AggAvg}, {Attr: "*", Agg: query.AggCount}},
		[]string{"z"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 4 {
		t.Fatalf("z groups = %d, want 4", out.NumRows())
	}
	for r := 0; r < out.NumRows(); r++ {
		if out.Value(r, 2) != 64 {
			t.Errorf("z=%v count = %v, want 64", out.Value(r, 0), out.Value(r, 2))
		}
		avg := float64(out.Value(r, 1))
		if math.IsNaN(avg) || avg <= 0 || avg >= 1 {
			t.Errorf("z=%v avg wp = %v out of (0,1)", out.Value(r, 0), avg)
		}
	}
}

func TestDistributedAggregationMatchesCentralized(t *testing.T) {
	// Split the same rows across several partitions in different ways:
	// the distributed evaluation must match the centralized one exactly.
	full := aggInput()
	half1 := tuple.NewSubTable(tuple.ID{}, full.Schema, 0)
	half2 := tuple.NewSubTable(tuple.ID{}, full.Schema, 0)
	for r := 0; r < full.NumRows(); r++ {
		row := full.Row(r, nil)
		if r%2 == 0 {
			half1.AppendRow(row...)
		} else {
			half2.AppendRow(row...)
		}
	}
	items := []query.SelectItem{
		{Attr: "v", Agg: query.AggAvg},
		{Attr: "v", Agg: query.AggSum},
		{Attr: "v", Agg: query.AggMin},
		{Attr: "v", Agg: query.AggMax},
		{Attr: "*", Agg: query.AggCount},
	}
	want, err := Aggregate([]*tuple.SubTable{full}, items, []string{"g"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AggregateDistributed([]*tuple.SubTable{half1, nil, half2}, items, []string{"g"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: %d vs %d", got.NumRows(), want.NumRows())
	}
	for r := 0; r < want.NumRows(); r++ {
		for c := 0; c < want.Schema.NumAttrs(); c++ {
			if got.Value(r, c) != want.Value(r, c) {
				t.Errorf("(%d,%d): %v vs %v", r, c, got.Value(r, c), want.Value(r, c))
			}
		}
	}
}

func TestDistributedAggregationHaving(t *testing.T) {
	in := aggInput()
	items := []query.SelectItem{{Attr: "v", Agg: query.AggAvg}}
	having := &query.Having{Agg: query.AggAvg, Attr: "v", Op: ">", Val: 5}
	got, err := AggregateDistributed([]*tuple.SubTable{in}, items, []string{"g"}, having)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 || got.Value(0, 0) != 1 {
		t.Fatalf("having kept %d groups", got.NumRows())
	}
}

func TestDistributedAggregationErrors(t *testing.T) {
	if _, err := AggregateDistributed(nil, []query.SelectItem{{Attr: "v", Agg: query.AggSum}}, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	in := aggInput()
	if _, err := AggregateDistributed([]*tuple.SubTable{in}, nil, nil, nil); err == nil {
		t.Error("no items accepted")
	}
	other := tuple.NewSubTable(tuple.ID{}, tuple.NewSchema(tuple.Attr{Name: "q", Kind: tuple.Coord}), 0)
	other.AppendRow(1)
	if _, err := AggregateDistributed([]*tuple.SubTable{in, other},
		[]query.SelectItem{{Attr: "v", Agg: query.AggSum}}, nil, nil); err == nil {
		t.Error("mixed schemas accepted")
	}
}

func TestPartialMergeCommutes(t *testing.T) {
	items := []query.SelectItem{
		{Attr: "v", Agg: query.AggMin},
		{Attr: "v", Agg: query.AggMax},
		{Attr: "*", Agg: query.AggCount},
	}
	in := aggInput()
	a1, _ := NewPartial(in.Schema, items, []string{"g"}, nil)
	a2, _ := NewPartial(in.Schema, items, []string{"g"}, nil)
	b1, _ := NewPartial(in.Schema, items, []string{"g"}, nil)
	b2, _ := NewPartial(in.Schema, items, []string{"g"}, nil)
	if err := a1.Fold(in); err != nil {
		t.Fatal(err)
	}
	extra := tuple.NewSubTable(tuple.ID{}, in.Schema, 0)
	extra.AppendRow(0, -5)
	extra.AppendRow(1, 99)
	if err := a2.Fold(extra); err != nil {
		t.Fatal(err)
	}
	b1.Fold(extra)
	b2.Fold(in)
	if err := a1.Merge(a2); err != nil {
		t.Fatal(err)
	}
	if err := b1.Merge(b2); err != nil {
		t.Fatal(err)
	}
	x, _ := a1.Finalize(nil)
	y, _ := b1.Finalize(nil)
	for r := 0; r < x.NumRows(); r++ {
		for c := 0; c < x.Schema.NumAttrs(); c++ {
			if x.Value(r, c) != y.Value(r, c) {
				t.Fatalf("merge not commutative at (%d,%d): %v vs %v", r, c, x.Value(r, c), y.Value(r, c))
			}
		}
	}
	// Sanity on the merged values: min -5 in group 0, max 99 in group 1.
	if x.Value(0, 1) != -5 || x.Value(1, 2) != 99 {
		t.Errorf("merged extremes wrong: %v %v", x.Value(0, 1), x.Value(1, 2))
	}
}

func benchAggInputs(parts, rowsPer int) []*tuple.SubTable {
	schema := tuple.NewSchema(
		tuple.Attr{Name: "g", Kind: tuple.Coord},
		tuple.Attr{Name: "v", Kind: tuple.Measure},
	)
	out := make([]*tuple.SubTable, parts)
	for p := range out {
		st := tuple.NewSubTable(tuple.ID{}, schema, rowsPer)
		for i := 0; i < rowsPer; i++ {
			st.AppendRow(float32(i%64), float32(i)/7)
		}
		out[p] = st
	}
	return out
}

func BenchmarkAggregateCentralized(b *testing.B) {
	inputs := benchAggInputs(4, 1<<15)
	items := []query.SelectItem{{Attr: "v", Agg: query.AggAvg}, {Attr: "*", Agg: query.AggCount}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(inputs, items, []string{"g"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateDistributed(b *testing.B) {
	inputs := benchAggInputs(4, 1<<15)
	items := []query.SelectItem{{Attr: "v", Agg: query.AggAvg}, {Attr: "*", Agg: query.AggCount}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AggregateDistributed(inputs, items, []string{"g"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
