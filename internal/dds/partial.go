package dds

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"sciview/internal/query"
	"sciview/internal/tuple"
)

// Distributed aggregation: each joiner folds its result sub-tables into a
// Partial (per-group count/sum/min/max state), partials are merged, and
// the merged state is finalized into the output table. This is the
// decomposable-aggregate evaluation a distributed DDS needs — AVG, SUM,
// MIN, MAX and COUNT all decompose — and it avoids centralizing raw join
// output when only aggregates are requested.

// Partial is per-group aggregation state for a fixed (items, groupBy)
// specification over one input partition.
type Partial struct {
	schema   tuple.Schema
	items    []query.SelectItem
	groupBy  []string
	groups   map[string]*pgroup
	havingOn bool
	hAttr    string
}

type pgroup struct {
	key  []float32
	accs []accumulator
	hav  accumulator
}

// NewPartial prepares empty state. having may be nil; when present its
// accumulator is folded alongside (the HAVING aggregate may differ from
// every select item).
func NewPartial(schema tuple.Schema, items []query.SelectItem, groupBy []string, having *query.Having) (*Partial, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("dds: no aggregation items")
	}
	for _, it := range items {
		if it.Star || it.Agg == query.AggNone {
			return nil, fmt.Errorf("dds: aggregation requires aggregate items, got %+v", it)
		}
		if it.Attr != "*" && schema.Index(it.Attr) < 0 {
			return nil, fmt.Errorf("dds: no attribute %q to aggregate", it.Attr)
		}
	}
	if _, err := schema.Indexes(groupBy); err != nil {
		return nil, err
	}
	p := &Partial{
		schema:  schema,
		items:   items,
		groupBy: groupBy,
		groups:  make(map[string]*pgroup),
	}
	if having != nil {
		if having.Attr != "*" && schema.Index(having.Attr) < 0 {
			return nil, fmt.Errorf("dds: HAVING references unknown attribute %q", having.Attr)
		}
		p.havingOn = true
		p.hAttr = having.Attr
	}
	return p, nil
}

// Groups returns the number of distinct groups accumulated so far —
// the quantity out-of-core aggregation compares against its memory
// charge to detect skewed partitions.
func (p *Partial) Groups() int { return len(p.groups) }

// Fold accumulates every row of st into the partial state.
func (p *Partial) Fold(st *tuple.SubTable) error {
	if st == nil || st.NumRows() == 0 {
		return nil
	}
	if !st.Schema.Equal(p.schema) {
		return fmt.Errorf("dds: mixed schemas in aggregation input")
	}
	groupIdxs, _ := p.schema.Indexes(p.groupBy)
	itemIdx := make([]int, len(p.items))
	for i, it := range p.items {
		if it.Attr == "*" {
			itemIdx[i] = -1
		} else {
			itemIdx[i] = p.schema.Index(it.Attr)
		}
	}
	havIdx := -1
	if p.havingOn && p.hAttr != "*" {
		havIdx = p.schema.Index(p.hAttr)
	}
	var keyBuf []byte
	for r := 0; r < st.NumRows(); r++ {
		keyBuf = keyBuf[:0]
		for _, gi := range groupIdxs {
			bits := math.Float32bits(st.Value(r, gi))
			keyBuf = append(keyBuf, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
		}
		g, ok := p.groups[string(keyBuf)]
		if !ok {
			g = &pgroup{key: make([]float32, len(groupIdxs)), accs: make([]accumulator, len(p.items))}
			for i, gi := range groupIdxs {
				g.key[i] = st.Value(r, gi)
			}
			p.groups[string(keyBuf)] = g
		}
		for i := range p.items {
			if itemIdx[i] < 0 {
				g.accs[i].add(0)
			} else {
				g.accs[i].add(float64(st.Value(r, itemIdx[i])))
			}
		}
		if p.havingOn {
			if havIdx < 0 {
				g.hav.add(0)
			} else {
				g.hav.add(float64(st.Value(r, havIdx)))
			}
		}
	}
	return nil
}

// Merge folds another partial (same specification) into p.
func (p *Partial) Merge(o *Partial) error {
	if o == nil {
		return nil
	}
	if len(o.items) != len(p.items) {
		return fmt.Errorf("dds: merging partials with different item counts")
	}
	for key, og := range o.groups {
		g, ok := p.groups[key]
		if !ok {
			p.groups[key] = og
			continue
		}
		for i := range g.accs {
			g.accs[i].merge(&og.accs[i])
		}
		g.hav.merge(&og.hav)
	}
	return nil
}

// Finalize produces the output table (group-by attrs then one column per
// item), filtered by having and ordered by ascending group key.
func (p *Partial) Finalize(having *query.Having) (*tuple.SubTable, error) {
	groupIdxs, _ := p.schema.Indexes(p.groupBy)
	attrs := make([]tuple.Attr, 0, len(p.groupBy)+len(p.items))
	for _, gi := range groupIdxs {
		attrs = append(attrs, p.schema.Attrs[gi])
	}
	for _, it := range p.items {
		attrs = append(attrs, tuple.Attr{Name: aggColName(it), Kind: tuple.Measure})
	}
	out := tuple.NewSubTable(tuple.ID{Table: -3, Chunk: -1}, tuple.Schema{Attrs: attrs}, len(p.groups))

	ordered := make([]*pgroup, 0, len(p.groups))
	for _, g := range p.groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i].key, ordered[j].key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	row := make([]float32, len(attrs))
	for _, g := range ordered {
		if having != nil && !evalHaving(having, &g.hav) {
			continue
		}
		copy(row, g.key)
		for i, it := range p.items {
			row[len(groupIdxs)+i] = float32(g.accs[i].result(it.Agg))
		}
		out.AppendRow(row...)
	}
	return out, nil
}

// AggregateDistributed evaluates the aggregation by folding each input
// partition into its own partial concurrently (one worker per partition —
// the per-joiner evaluation of a distributed aggregation DDS), merging,
// and finalizing. It is semantically identical to Aggregate.
func AggregateDistributed(inputs []*tuple.SubTable, items []query.SelectItem, groupBy []string, having *query.Having) (*tuple.SubTable, error) {
	var schema tuple.Schema
	for _, in := range inputs {
		if in != nil {
			schema = in.Schema
			break
		}
	}
	if schema.NumAttrs() == 0 {
		return nil, fmt.Errorf("dds: no input rows to aggregate")
	}
	partials := make([]*Partial, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		if in == nil {
			continue
		}
		p, err := NewPartial(schema, items, groupBy, having)
		if err != nil {
			return nil, err
		}
		partials[i] = p
		wg.Add(1)
		go func(i int, in *tuple.SubTable) {
			defer wg.Done()
			errs[i] = partials[i].Fold(in)
		}(i, in)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var merged *Partial
	for _, p := range partials {
		if p == nil {
			continue
		}
		if merged == nil {
			merged = p
			continue
		}
		if err := merged.Merge(p); err != nil {
			return nil, err
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("dds: no input rows to aggregate")
	}
	return merged.Finalize(having)
}

// merge folds another accumulator's state into a.
func (a *accumulator) merge(o *accumulator) {
	if o.count == 0 {
		return
	}
	if a.count == 0 {
		*a = *o
		return
	}
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
	a.count += o.count
	a.sum += o.sum
}
