package dds

import (
	"fmt"
	"math"
	"sort"

	"sciview/internal/query"
	"sciview/internal/tuple"
)

// Aggregate evaluates aggregation items over the rows of the input
// sub-tables (all sharing schema), grouped by the GROUP BY attributes, with
// an optional HAVING filter on the groups. The result is a sub-table whose
// schema is the group-by attributes followed by one column per item, named
// like "avg_wp" or "count". Groups are emitted in ascending group-key order
// so results are deterministic.
//
// This is the aggregation DDS the paper lists as future work ("we plan to
// investigate other aspects of view creation, including aggregation
// operations"), layered over the join DDS or a table scan.
func Aggregate(inputs []*tuple.SubTable, items []query.SelectItem, groupBy []string, having *query.Having) (*tuple.SubTable, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("dds: no aggregation items")
	}
	var schema tuple.Schema
	for _, in := range inputs {
		if in != nil {
			schema = in.Schema
			break
		}
	}
	if schema.NumAttrs() == 0 {
		return nil, fmt.Errorf("dds: no input rows to aggregate")
	}
	for _, it := range items {
		if it.Star || it.Agg == query.AggNone {
			return nil, fmt.Errorf("dds: aggregation requires aggregate items, got %+v", it)
		}
		if it.Attr != "*" && schema.Index(it.Attr) < 0 {
			return nil, fmt.Errorf("dds: no attribute %q to aggregate", it.Attr)
		}
	}
	groupIdxs, err := schema.Indexes(groupBy)
	if err != nil {
		return nil, err
	}
	if having != nil {
		if having.Attr != "*" && schema.Index(having.Attr) < 0 {
			return nil, fmt.Errorf("dds: HAVING references unknown attribute %q", having.Attr)
		}
	}

	type group struct {
		key  []float32
		accs []accumulator
		hav  accumulator
	}
	groups := make(map[string]*group)
	var keyBuf []byte
	for _, in := range inputs {
		if in == nil {
			continue
		}
		if !in.Schema.Equal(schema) {
			return nil, fmt.Errorf("dds: mixed schemas in aggregation input")
		}
		itemIdx := make([]int, len(items))
		for i, it := range items {
			if it.Attr == "*" {
				itemIdx[i] = -1
			} else {
				itemIdx[i] = schema.Index(it.Attr)
			}
		}
		havIdx := -1
		if having != nil && having.Attr != "*" {
			havIdx = schema.Index(having.Attr)
		}
		for r := 0; r < in.NumRows(); r++ {
			keyBuf = keyBuf[:0]
			for _, gi := range groupIdxs {
				bits := math.Float32bits(in.Value(r, gi))
				keyBuf = append(keyBuf, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
			}
			g, ok := groups[string(keyBuf)]
			if !ok {
				g = &group{key: make([]float32, len(groupIdxs)), accs: make([]accumulator, len(items))}
				for i, gi := range groupIdxs {
					g.key[i] = in.Value(r, gi)
				}
				groups[string(keyBuf)] = g
			}
			for i := range items {
				if itemIdx[i] < 0 {
					g.accs[i].add(0) // COUNT(*): value irrelevant
				} else {
					g.accs[i].add(float64(in.Value(r, itemIdx[i])))
				}
			}
			if having != nil {
				if havIdx < 0 {
					g.hav.add(0)
				} else {
					g.hav.add(float64(in.Value(r, havIdx)))
				}
			}
		}
	}

	// Output schema: group-by attrs (original kinds) then aggregate columns.
	attrs := make([]tuple.Attr, 0, len(groupBy)+len(items))
	for _, gi := range groupIdxs {
		attrs = append(attrs, schema.Attrs[gi])
	}
	for _, it := range items {
		attrs = append(attrs, tuple.Attr{Name: aggColName(it), Kind: tuple.Measure})
	}
	out := tuple.NewSubTable(tuple.ID{Table: -3, Chunk: -1}, tuple.Schema{Attrs: attrs}, len(groups))

	// Deterministic group order.
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i].key, ordered[j].key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})

	row := make([]float32, len(attrs))
	for _, g := range ordered {
		if having != nil && !evalHaving(having, &g.hav) {
			continue
		}
		copy(row, g.key)
		for i, it := range items {
			row[len(groupIdxs)+i] = float32(g.accs[i].result(it.Agg))
		}
		out.AppendRow(row...)
	}
	return out, nil
}

// AggSchema returns the output schema Aggregate and Partial.Finalize
// produce for a specification, without evaluating anything: the group-by
// attributes (original kinds) followed by one Measure column per item.
// Plan construction uses it to type an aggregation node statically.
func AggSchema(schema tuple.Schema, items []query.SelectItem, groupBy []string) (tuple.Schema, error) {
	groupIdxs, err := schema.Indexes(groupBy)
	if err != nil {
		return tuple.Schema{}, err
	}
	for _, it := range items {
		if it.Star || it.Agg == query.AggNone {
			return tuple.Schema{}, fmt.Errorf("dds: aggregation requires aggregate items, got %+v", it)
		}
		if it.Attr != "*" && schema.Index(it.Attr) < 0 {
			return tuple.Schema{}, fmt.Errorf("dds: no attribute %q to aggregate", it.Attr)
		}
	}
	attrs := make([]tuple.Attr, 0, len(groupBy)+len(items))
	for _, gi := range groupIdxs {
		attrs = append(attrs, schema.Attrs[gi])
	}
	for _, it := range items {
		attrs = append(attrs, tuple.Attr{Name: aggColName(it), Kind: tuple.Measure})
	}
	return tuple.Schema{Attrs: attrs}, nil
}

// aggColName derives the output column name of an aggregate item.
func aggColName(it query.SelectItem) string {
	name := map[query.Agg]string{
		query.AggAvg: "avg", query.AggSum: "sum", query.AggMin: "min",
		query.AggMax: "max", query.AggCount: "count",
	}[it.Agg]
	if it.Attr == "*" {
		return name
	}
	return name + "_" + it.Attr
}

// accumulator folds one column of one group.
type accumulator struct {
	count int64
	sum   float64
	min   float64
	max   float64
}

func (a *accumulator) add(v float64) {
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.count++
	a.sum += v
}

func (a *accumulator) result(agg query.Agg) float64 {
	switch agg {
	case query.AggAvg:
		if a.count == 0 {
			return math.NaN()
		}
		return a.sum / float64(a.count)
	case query.AggSum:
		return a.sum
	case query.AggMin:
		return a.min
	case query.AggMax:
		return a.max
	case query.AggCount:
		return float64(a.count)
	}
	return math.NaN()
}

func evalHaving(h *query.Having, acc *accumulator) bool {
	v := acc.result(h.Agg)
	switch h.Op {
	case "=":
		return v == h.Val
	case "<":
		return v < h.Val
	case "<=":
		return v <= h.Val
	case ">":
		return v > h.Val
	case ">=":
		return v >= h.Val
	}
	return false
}
