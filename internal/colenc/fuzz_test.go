package colenc

import (
	"math"
	"testing"

	"sciview/internal/tuple"
)

// FuzzWireCodec drives the SVT2 codec with arbitrary bytes. Properties:
// hostile input never panics; any frame that decodes must re-encode and
// decode again to an identical sub-table (encode∘decode is the identity on
// the codec's image).
func FuzzWireCodec(f *testing.F) {
	seed := func(st *tuple.SubTable) {
		f.Add(Encode(nil, FromSubTable(st)))
	}
	attrs := tuple.Schema{Attrs: []tuple.Attr{
		{Name: "x", Kind: tuple.Coord},
		{Name: "y", Kind: tuple.Coord},
		{Name: "oilp", Kind: tuple.Measure},
	}}
	st := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 7}, attrs, 64)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			st.AppendRow(float32(x), float32(y), float32(x*y)/63.0)
		}
	}
	seed(st)
	// A table exercising every encoding: runs, a small dictionary, a delta
	// ramp, raw noise, and awkward bit patterns.
	mixed := tuple.NewSubTable(tuple.ID{Table: 2, Chunk: 3}, tuple.Schema{Attrs: []tuple.Attr{
		{Name: "r", Kind: tuple.Coord},
		{Name: "d", Kind: tuple.Coord},
		{Name: "s", Kind: tuple.Coord},
		{Name: "m", Kind: tuple.Measure},
	}}, 32)
	for i := 0; i < 32; i++ {
		m := float32(i) * 0.37
		if i%5 == 0 {
			m = math.Float32frombits(0x7FC00000 | uint32(i)) // NaN payloads
		}
		mixed.AppendRow(float32(i/8), float32(i), []float32{1.5, -2.5}[i%2], m)
	}
	seed(mixed)
	empty := tuple.NewSubTable(tuple.ID{Table: 3, Chunk: 0}, attrs, 0)
	seed(empty)
	f.Add([]byte{})
	f.Add([]byte{0x32, 0x54, 0x56, 0x53}) // bare magic

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, n, err := Decode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		st, err := tab.SubTable()
		if err != nil {
			return // internally inconsistent but safely rejected
		}
		// Round trip: re-encode the decoded rows, decode again, compare
		// bit patterns.
		frame := Encode(nil, FromSubTable(st))
		tab2, _, err := Decode(frame)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		st2, err := tab2.SubTable()
		if err != nil {
			t.Fatalf("re-encoded frame undecodable: %v", err)
		}
		if st2.NumRows() != st.NumRows() || !st2.Schema.Equal(st.Schema) || st2.ID != st.ID {
			t.Fatalf("round trip changed shape: %v/%d rows vs %v/%d rows",
				st2.ID, st2.NumRows(), st.ID, st.NumRows())
		}
		for c := 0; c < st.Schema.NumAttrs(); c++ {
			a, b := st.Col(c), st2.Col(c)
			for r := range a {
				if math.Float32bits(a[r]) != math.Float32bits(b[r]) {
					t.Fatalf("round trip changed col %d row %d: %x vs %x",
						c, r, math.Float32bits(a[r]), math.Float32bits(b[r]))
				}
			}
		}
	})
}
