package colenc

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sciview/internal/chunk"
	"sciview/internal/tuple"
)

func schema3(measures ...string) tuple.Schema {
	attrs := []tuple.Attr{
		{Name: "x", Kind: tuple.Coord},
		{Name: "y", Kind: tuple.Coord},
		{Name: "z", Kind: tuple.Coord},
	}
	for _, m := range measures {
		attrs = append(attrs, tuple.Attr{Name: m, Kind: tuple.Measure})
	}
	return tuple.Schema{Attrs: attrs}
}

// gridTable builds the oilres-like shape: sequential integral coordinates
// (x the inner loop) and pseudo-random measures.
func gridTable(t *testing.T, nx, ny, nz int, measures ...string) *tuple.SubTable {
	t.Helper()
	st := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 2}, schema3(measures...), nx*ny*nz)
	rng := rand.New(rand.NewSource(42))
	row := make([]float32, 3+len(measures))
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				row[0], row[1], row[2] = float32(x), float32(y), float32(z)
				for m := range measures {
					row[3+m] = rng.Float32()
				}
				st.AppendRow(row...)
			}
		}
	}
	return st
}

func mustEqual(t *testing.T, got, want *tuple.SubTable) {
	t.Helper()
	if got.ID != want.ID {
		t.Fatalf("id %v, want %v", got.ID, want.ID)
	}
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("schema %v, want %v", got.Schema, want.Schema)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%d rows, want %d", got.NumRows(), want.NumRows())
	}
	for c := 0; c < want.Schema.NumAttrs(); c++ {
		g, w := got.Col(c), want.Col(c)
		for r := range w {
			if math.Float32bits(g[r]) != math.Float32bits(w[r]) {
				t.Fatalf("col %d row %d: %v (bits %#x), want %v (bits %#x)",
					c, r, g[r], math.Float32bits(g[r]), w[r], math.Float32bits(w[r]))
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	st := gridTable(t, 8, 8, 8, "oilp")
	enc := FromSubTable(st)
	back, err := enc.SubTable()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, back, st)
	if enc.StoredBytes() >= st.Bytes() {
		t.Errorf("grid table did not compress: stored %d, decoded %d", enc.StoredBytes(), st.Bytes())
	}
}

func TestWireRoundTrip(t *testing.T) {
	st := gridTable(t, 8, 4, 2, "oilp", "wp")
	enc := FromSubTable(st)
	frame := Encode(nil, enc)
	if len(frame) != EncodedSize(enc) {
		t.Fatalf("frame is %d bytes, EncodedSize says %d", len(frame), EncodedSize(enc))
	}
	if !IsEncoded(frame) {
		t.Fatal("IsEncoded = false on an SVT2 frame")
	}
	dec, n, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
	}
	back, err := dec.SubTable()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, back, st)
	// Decode must copy out of the source buffer.
	for i := range frame {
		frame[i] = 0xFF
	}
	back2, err := dec.SubTable()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, back2, st)
}

func TestEncodingChoices(t *testing.T) {
	st := gridTable(t, 8, 8, 8, "oilp")
	enc := FromSubTable(st)
	// z has 8 long runs → RLE; x cycles 0..7 (runs of 1, 8 distinct) →
	// dict or delta beats raw; oilp is 512 random floats → raw.
	if got := enc.Cols[2].Enc; got != EncRLE {
		t.Errorf("z column encoded as %d, want RLE", got)
	}
	if got := enc.Cols[0].Enc; got == EncRaw || got == EncRLE {
		t.Errorf("x column encoded as %d, want dict or delta", got)
	}
	if got := enc.Cols[3].Enc; got != EncRaw {
		t.Errorf("oilp column encoded as %d, want raw", got)
	}
}

func TestExactnessEdgeCases(t *testing.T) {
	nan1 := math.Float32frombits(0x7FC00001)
	nan2 := math.Float32frombits(0x7FC00002)
	negZero := math.Float32frombits(0x80000000)
	cols := [][]float32{
		{0, negZero, 0, negZero, 1, -1, nan1, nan2, nan1, 16777216, -16777216, 0.5},
	}
	st, err := tuple.FromColumns(tuple.ID{Table: 3, Chunk: 4},
		tuple.Schema{Attrs: []tuple.Attr{{Name: "v", Kind: tuple.Measure}}}, cols)
	if err != nil {
		t.Fatal(err)
	}
	enc := FromSubTable(st)
	frame := Encode(nil, enc)
	dec, _, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dec.SubTable()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, back, st)
}

func TestEachEncodingRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]float32{
		"raw":   nil,
		"rle":   nil,
		"dict":  nil,
		"delta": nil,
		"empty": {},
	}
	raw := make([]float32, 300)
	for i := range raw {
		raw[i] = rng.Float32()*2e6 - 1e6
	}
	cases["raw"] = raw
	rle := make([]float32, 300)
	for i := range rle {
		rle[i] = float32(i / 50)
	}
	cases["rle"] = rle
	dict := make([]float32, 300)
	vals := []float32{1.5, -2.25, 3.125, 100}
	for i := range dict {
		dict[i] = vals[rng.Intn(len(vals))]
	}
	cases["dict"] = dict
	delta := make([]float32, 300)
	for i := range delta {
		delta[i] = float32(i%77 - 20)
	}
	cases["delta"] = delta
	for name, col := range cases {
		t.Run(name, func(t *testing.T) {
			enc := encodeColumn(col)
			dst := make([]float32, len(col))
			if err := decodeColumn(enc, len(col), dst); err != nil {
				t.Fatal(err)
			}
			for i := range col {
				if math.Float32bits(dst[i]) != math.Float32bits(col[i]) {
					t.Fatalf("row %d: %v, want %v", i, dst[i], col[i])
				}
			}
		})
	}
}

func TestFilterRangeMatchesRowMajor(t *testing.T) {
	st := gridTable(t, 8, 8, 8, "oilp")
	enc := FromSubTable(st)
	names := []string{"x", "y", "oilp"}
	lo := []float64{2, 1, 0}
	hi := []float64{6, 5, 0.7}
	want, err := st.FilterRange(names, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.FilterRange(names, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.SubTable()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, back, want)

	// All-pass returns the receiver unchanged.
	same, err := enc.FilterRange([]string{"x"}, []float64{math.Inf(-1)}, []float64{math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if same != enc {
		t.Error("all-pass filter did not return the receiver")
	}

	// All-reject yields an empty table.
	none, err := enc.FilterRange([]string{"x"}, []float64{100}, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	if none.Rows != 0 {
		t.Errorf("all-reject kept %d rows", none.Rows)
	}
}

func TestProject(t *testing.T) {
	st := gridTable(t, 4, 4, 4, "oilp", "wp")
	enc := FromSubTable(st)
	proj, err := enc.Project([]string{"x", "wp"})
	if err != nil {
		t.Fatal(err)
	}
	wantSt, err := st.Project([]string{"x", "wp"})
	if err != nil {
		t.Fatal(err)
	}
	back, err := proj.SubTable()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, back, wantSt)
}

func TestFilterProjectMirrorsBDS(t *testing.T) {
	st := gridTable(t, 6, 6, 6, "oilp")
	enc := FromSubTable(st)
	// "wp" is absent from this schema: its constraint must filter nothing;
	// the projection keeps schema order regardless of request order.
	names := []string{"z", "wp"}
	lo := []float64{1, 5}
	hi := []float64{4, 6}
	project := []string{"oilp", "x"}

	want, err := st.FilterRange([]string{"z"}, []float64{1}, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	want, err = want.Project([]string{"x", "oilp"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.FilterProject(names, lo, hi, project)
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.SubTable()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, back, want)
}

func TestParseRLEChunkPassThrough(t *testing.T) {
	st := gridTable(t, 8, 8, 8, "oilp")
	data, err := (chunk.RLE{}).Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	desc := &chunk.Desc{Table: st.ID.Table, Chunk: st.ID.Chunk, Format: "rle",
		Attrs: st.Schema.Attrs, Rows: st.NumRows()}
	enc, err := ParseRLEChunk(desc, data)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Rows != st.NumRows() {
		t.Fatalf("pass-through sees %d rows, want %d", enc.Rows, st.NumRows())
	}
	for c, col := range enc.Cols {
		if col.Enc != EncRLE {
			t.Fatalf("column %d encoding %d, want RLE", c, col.Enc)
		}
	}
	back, err := enc.SubTable()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, back, st)
	// The column payloads must be verbatim slices of the chunk layout.
	var rebuilt []byte
	for _, col := range enc.Cols {
		rebuilt = append(rebuilt, col.Data...)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Error("pass-through payloads are not byte-identical to the chunk layout")
	}

	// Truncated and trailing-garbage chunks are rejected.
	if _, err := ParseRLEChunk(desc, data[:len(data)-3]); err == nil {
		t.Error("truncated chunk accepted")
	}
	if _, err := ParseRLEChunk(desc, append(append([]byte{}, data...), 1, 2, 3)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestWireSizeMatchesEncode(t *testing.T) {
	st := gridTable(t, 8, 8, 4, "oilp", "wp")
	if got, want := WireSize(st), EncodedSize(FromSubTable(st)); got != want {
		t.Fatalf("WireSize = %d, EncodedSize = %d", got, want)
	}
}

func TestDecodeHostile(t *testing.T) {
	st := gridTable(t, 4, 4, 4, "oilp")
	frame := Encode(nil, FromSubTable(st))
	// Truncations at every length never panic.
	for n := 0; n < len(frame); n++ {
		if _, _, err := Decode(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Single-byte corruptions never panic (they may still decode).
	for i := 0; i < len(frame); i++ {
		mut := append([]byte{}, frame...)
		mut[i] ^= 0x40
		if tab, _, err := Decode(mut); err == nil {
			tab.SubTable() // must not panic either
		}
	}
}

func TestSelectRLEMergesRuns(t *testing.T) {
	// Selecting around a gap that separates two runs of the same value
	// must merge them back into one run.
	col := []float32{5, 5, 7, 5, 5}
	enc := encodeColumn(col)
	if enc.Enc != EncRLE {
		t.Skipf("chooser picked encoding %d", enc.Enc)
	}
	tab := &Table{ID: tuple.ID{}, Schema: tuple.Schema{Attrs: []tuple.Attr{{Name: "v"}}},
		Rows: 5, Cols: []Col{enc}}
	sel, err := tab.Select([]bool{true, true, false, true, true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 4)
	if err := decodeColumn(sel.Cols[0], 4, dst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst, []float32{5, 5, 5, 5}) {
		t.Fatalf("selected column = %v", dst)
	}
	if got := len(sel.Cols[0].Data); got != 4+8 {
		t.Errorf("selected RLE payload is %d bytes (runs not merged?)", got)
	}
}
