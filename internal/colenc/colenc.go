// Package colenc implements the compressed columnar transfer representation
// for sub-tables: each column is carried as an independently encoded byte
// vector — raw float32s, run-length runs (byte-compatible with the on-disk
// "rle" chunk format, so RLE chunks pass through without materialization),
// a small dictionary with one-byte indices, or zigzag-varint deltas for
// integral grid coordinates — chosen per column as whichever is smallest.
//
// The representation is exact: decode(encode(col)) reproduces the original
// float32 bit patterns. The encoders therefore compare *bit patterns*, not
// float values (so -0 and +0 never merge into one run or dictionary entry),
// and the delta encoding is restricted to columns whose values are all
// integral with magnitude ≤ 2^24 — the range where float32↔int64 conversion
// is lossless — and never applied to -0 or NaN.
//
// Selection can be evaluated against the encoded vectors without
// materializing rows (FilterRange): RLE runs are tested once per run,
// dictionary entries once per entry, delta vectors in a single accumulator
// walk. The surviving rows are re-encoded; for RLE columns the runs are
// split in place rather than decoded.
package colenc

import (
	"encoding/binary"
	"fmt"
	"math"

	"sciview/internal/tuple"
)

// Column encodings. The values are part of the SVT2 wire format.
const (
	// EncRaw is rows × float32, little endian.
	EncRaw byte = 0
	// EncRLE is u32 numRuns followed by numRuns × (u32 length, f32 value) —
	// byte-identical to one column of the on-disk "rle" chunk layout, so
	// RLE chunks transfer without a decode/re-encode round trip.
	EncRLE byte = 1
	// EncDict is u16 n, n × f32 dictionary values (first-appearance order),
	// then rows × u8 index. Chosen only when a column has ≤ 256 distinct
	// bit patterns.
	EncDict byte = 2
	// EncDelta is a zigzag-varint stream: the first value, then successive
	// differences, all as int64. Chosen only for columns of integral values
	// with |v| ≤ 2^24 (exact in float32), excluding -0 and NaN.
	EncDelta byte = 3
)

// maxDictEntries bounds the dictionary encoding (indices are one byte).
const maxDictEntries = 256

// deltaMaxMagnitude is the largest |value| the delta encoding accepts:
// integers up to 2^24 round-trip float32↔int64 exactly.
const deltaMaxMagnitude = 1 << 24

// Col is one encoded column.
type Col struct {
	Enc  byte
	Data []byte
}

// Table is a sub-table in encoded columnar form: the unit the wire codec
// ships and the compute-node caches retain.
type Table struct {
	ID     tuple.ID
	Schema tuple.Schema
	Rows   int
	Cols   []Col
}

// NumRows returns the number of encoded records.
func (t *Table) NumRows() int { return t.Rows }

// DecodedBytes returns the row-major payload size the table decodes to
// (rows × record size), the quantity the uncompressed path would ship.
func (t *Table) DecodedBytes() int { return t.Rows * t.Schema.RecordSize() }

// StoredBytes returns the resident footprint of the encoded form — the
// exact SVT2 wire size. Caches charge this, not DecodedBytes, so resident
// accounting reflects what is actually held.
func (t *Table) StoredBytes() int { return EncodedSize(t) }

// ---------------------------------------------------------------------
// Encoding

// analysis is the per-column sizing pass: everything needed to pick the
// smallest encoding without building any payload.
type analysis struct {
	runs       int
	dict       []uint32 // distinct bit patterns in first-appearance order; nil when > maxDictEntries
	deltaBytes int
	deltaOK    bool
}

// dictProbeSize is the open-addressed probe table for distinct counting:
// power of two, ≥ 2× maxDictEntries so the load factor stays ≤ 0.5.
const dictProbeSize = 1024

func analyze(col []float32) analysis {
	a := analysis{deltaOK: true}
	var slots [dictProbeSize]uint16 // index+1 into dict, 0 = empty
	dict := make([]uint32, 0, maxDictEntries)
	dictOK := true
	var prevBits uint32
	var prevInt int64
	for i, v := range col {
		bits := math.Float32bits(v)
		if i == 0 || bits != prevBits {
			a.runs++
			prevBits = bits
		}
		if dictOK {
			h := (bits * 2654435761) >> 22 & (dictProbeSize - 1)
			for {
				s := slots[h]
				if s == 0 {
					if len(dict) == maxDictEntries {
						dictOK = false
						break
					}
					dict = append(dict, bits)
					slots[h] = uint16(len(dict))
					break
				}
				if dict[s-1] == bits {
					break
				}
				h = (h + 1) & (dictProbeSize - 1)
			}
		}
		if a.deltaOK {
			iv := int64(v)
			if float32(iv) != v || iv > deltaMaxMagnitude || iv < -deltaMaxMagnitude || bits == 0x80000000 {
				a.deltaOK = false
			} else {
				d := iv
				if i > 0 {
					d = iv - prevInt
				}
				a.deltaBytes += varintLen(d)
				prevInt = iv
			}
		}
	}
	if dictOK {
		a.dict = dict
	}
	return a
}

func varintLen(d int64) int {
	u := uint64(d<<1) ^ uint64(d>>63)
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// sizes returns the candidate payload sizes for a column of `rows` values;
// -1 marks an inapplicable encoding.
func (a analysis) sizes(rows int) (raw, rle, dict, delta int) {
	raw = 4 * rows
	rle = 4 + 8*a.runs
	dict = -1
	if a.dict != nil {
		dict = 2 + 4*len(a.dict) + rows
	}
	delta = -1
	if a.deltaOK {
		delta = a.deltaBytes
	}
	return
}

// choose picks the smallest applicable encoding, deterministically (ties
// resolve in raw < rle < dict < delta order).
func (a analysis) choose(rows int) byte {
	raw, rle, dict, delta := a.sizes(rows)
	best, enc := raw, EncRaw
	if rle < best {
		best, enc = rle, EncRLE
	}
	if dict >= 0 && dict < best {
		best, enc = dict, EncDict
	}
	if delta >= 0 && delta < best {
		enc = EncDelta
	}
	return enc
}

// encodeColumn encodes col with the smallest encoding and returns it.
func encodeColumn(col []float32) Col {
	a := analyze(col)
	switch a.choose(len(col)) {
	case EncRLE:
		return Col{Enc: EncRLE, Data: encodeRLE(col, a.runs)}
	case EncDict:
		return Col{Enc: EncDict, Data: encodeDict(col, a.dict)}
	case EncDelta:
		return Col{Enc: EncDelta, Data: encodeDelta(col, a.deltaBytes)}
	default:
		return Col{Enc: EncRaw, Data: encodeRaw(col)}
	}
}

func encodeRaw(col []float32) []byte {
	out := make([]byte, 4*len(col))
	for i, v := range col {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

func encodeRLE(col []float32, runs int) []byte {
	out := make([]byte, 4, 4+8*runs)
	binary.LittleEndian.PutUint32(out, uint32(runs))
	var buf [8]byte
	for i := 0; i < len(col); {
		bits := math.Float32bits(col[i])
		j := i + 1
		for j < len(col) && math.Float32bits(col[j]) == bits {
			j++
		}
		binary.LittleEndian.PutUint32(buf[0:], uint32(j-i))
		binary.LittleEndian.PutUint32(buf[4:], bits)
		out = append(out, buf[:]...)
		i = j
	}
	return out
}

func encodeDict(col []float32, dict []uint32) []byte {
	out := make([]byte, 2+4*len(dict), 2+4*len(dict)+len(col))
	binary.LittleEndian.PutUint16(out, uint16(len(dict)))
	idx := make(map[uint32]byte, len(dict))
	for i, bits := range dict {
		binary.LittleEndian.PutUint32(out[2+4*i:], bits)
		idx[bits] = byte(i)
	}
	for _, v := range col {
		out = append(out, idx[math.Float32bits(v)])
	}
	return out
}

func encodeDelta(col []float32, size int) []byte {
	out := make([]byte, 0, size)
	var buf [binary.MaxVarintLen64]byte
	var prev int64
	for i, v := range col {
		iv := int64(v)
		d := iv
		if i > 0 {
			d = iv - prev
		}
		prev = iv
		n := binary.PutUvarint(buf[:], uint64(d<<1)^uint64(d>>63))
		out = append(out, buf[:n]...)
	}
	return out
}

// FromSubTable encodes every column of st, choosing the smallest encoding
// per column.
func FromSubTable(st *tuple.SubTable) *Table {
	t := &Table{ID: st.ID, Schema: st.Schema, Rows: st.NumRows(),
		Cols: make([]Col, st.Schema.NumAttrs())}
	for c := range t.Cols {
		t.Cols[c] = encodeColumn(st.Col(c))
	}
	return t
}

// WireSize returns the SVT2 wire size st would encode to, via the sizing
// pass alone — no payload is built. The Grace Hash partitioner uses it to
// model its batch shipments under the compressed wire format.
func WireSize(st *tuple.SubTable) int {
	n := headerSize(st.Schema)
	rows := st.NumRows()
	for c := 0; c < st.Schema.NumAttrs(); c++ {
		a := analyze(st.Col(c))
		raw, rle, dict, delta := a.sizes(rows)
		best := raw
		if rle < best {
			best = rle
		}
		if dict >= 0 && dict < best {
			best = dict
		}
		if delta >= 0 && delta < best {
			best = delta
		}
		n += 5 + best
	}
	return n
}

// ---------------------------------------------------------------------
// Decoding

// maxDecodeRows bounds the row count a decoder accepts: RLE runs can claim
// arbitrarily many rows in a handful of payload bytes, and the bound keeps
// hostile input from turning 12 wire bytes into a multi-gigabyte
// allocation.
const maxDecodeRows = 1 << 27

// decodeColumn decodes one encoded column into dst (which must have length
// rows).
func decodeColumn(c Col, rows int, dst []float32) error {
	switch c.Enc {
	case EncRaw:
		if len(c.Data) != 4*rows {
			return fmt.Errorf("colenc: raw column has %d bytes for %d rows", len(c.Data), rows)
		}
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(c.Data[4*i:]))
		}
	case EncRLE:
		n, err := decodeRLE(c.Data, rows, dst)
		if err != nil {
			return err
		}
		if n != rows {
			return fmt.Errorf("colenc: rle column decodes %d rows, want %d", n, rows)
		}
	case EncDict:
		if len(c.Data) < 2 {
			return fmt.Errorf("colenc: dict column truncated")
		}
		n := int(binary.LittleEndian.Uint16(c.Data))
		if len(c.Data) != 2+4*n+rows {
			return fmt.Errorf("colenc: dict column has %d bytes for %d entries, %d rows", len(c.Data), n, rows)
		}
		dict := c.Data[2 : 2+4*n]
		idxs := c.Data[2+4*n:]
		for i := range dst {
			idx := int(idxs[i])
			if idx >= n {
				return fmt.Errorf("colenc: dict index %d out of range (%d entries)", idx, n)
			}
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(dict[4*idx:]))
		}
	case EncDelta:
		data := c.Data
		var acc int64
		for i := 0; i < rows; i++ {
			u, n := binary.Uvarint(data)
			if n <= 0 {
				return fmt.Errorf("colenc: delta column truncated at row %d", i)
			}
			data = data[n:]
			acc += int64(u>>1) ^ -int64(u&1)
			dst[i] = float32(acc)
		}
		if len(data) != 0 {
			return fmt.Errorf("colenc: delta column has %d trailing bytes", len(data))
		}
	default:
		return fmt.Errorf("colenc: unknown column encoding %d", c.Enc)
	}
	return nil
}

// decodeRLE expands an RLE payload into dst, returning the rows produced.
// It never writes past dst and validates the payload is fully consumed.
func decodeRLE(data []byte, rows int, dst []float32) (int, error) {
	if len(data) < 4 {
		return 0, fmt.Errorf("colenc: rle column truncated")
	}
	runs := int(binary.LittleEndian.Uint32(data))
	off := 4
	n := 0
	for r := 0; r < runs; r++ {
		if len(data) < off+8 {
			return 0, fmt.Errorf("colenc: rle column truncated at run %d", r)
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		value := math.Float32frombits(binary.LittleEndian.Uint32(data[off+4:]))
		off += 8
		if length <= 0 || n+length > rows {
			return 0, fmt.Errorf("colenc: rle run %d length %d overflows %d rows", r, length, rows)
		}
		for k := 0; k < length; k++ {
			dst[n+k] = value
		}
		n += length
	}
	if off != len(data) {
		return 0, fmt.Errorf("colenc: rle column has %d trailing bytes", len(data)-off)
	}
	return n, nil
}

// SubTable decodes the table back into row-major form. The decode is
// exact: every float32 bit pattern is reproduced.
func (t *Table) SubTable() (*tuple.SubTable, error) {
	na := t.Schema.NumAttrs()
	if len(t.Cols) != na {
		return nil, fmt.Errorf("colenc: %d columns for %d attributes", len(t.Cols), na)
	}
	if t.Rows < 0 || (na > 0 && t.Rows > maxDecodeRows/na) {
		return nil, fmt.Errorf("colenc: %d rows × %d attributes exceeds decode limit", t.Rows, na)
	}
	backing := make([]float32, na*t.Rows)
	cols := make([][]float32, na)
	for c := 0; c < na; c++ {
		col := backing[c*t.Rows : (c+1)*t.Rows : (c+1)*t.Rows]
		if err := decodeColumn(t.Cols[c], t.Rows, col); err != nil {
			return nil, fmt.Errorf("colenc: column %d (%s): %w", c, t.Schema.Attrs[c].Name, err)
		}
		cols[c] = col
	}
	return tuple.FromColumns(t.ID, t.Schema, cols)
}

// Compact re-encodes any column whose current payload is no smaller than
// its raw encoding. Pass-through RLE payloads are kept verbatim while
// run-length coding is actually winning, but a high-entropy column stored
// as per-row runs (an on-disk rle chunk stores every column that way)
// would ship at 2× raw — those columns are decoded once and re-encoded
// with the best-of-four choice. The receiver is returned unchanged when
// no column improves.
func (t *Table) Compact() (*Table, error) {
	if t.Rows <= 0 {
		return t, nil
	}
	var out *Table
	var scratch []float32
	for i, c := range t.Cols {
		if c.Enc == EncRaw || len(c.Data) < 4*t.Rows {
			continue
		}
		if scratch == nil {
			scratch = make([]float32, t.Rows)
		}
		if err := decodeColumn(c, t.Rows, scratch); err != nil {
			return nil, fmt.Errorf("colenc: compact column %d (%s): %w", i, t.Schema.Attrs[i].Name, err)
		}
		nc := encodeColumn(scratch)
		if len(nc.Data) >= len(c.Data) {
			continue
		}
		if out == nil {
			out = &Table{ID: t.ID, Schema: t.Schema, Rows: t.Rows, Cols: append([]Col(nil), t.Cols...)}
		}
		out.Cols[i] = nc
	}
	if out == nil {
		return t, nil
	}
	return out, nil
}

// Project returns a table holding only the named attributes, in schema
// order. Column payloads are shared, not copied — projected-out columns
// are simply never encoded or shipped.
func (t *Table) Project(names []string) (*Table, error) {
	sub, idxs, err := t.Schema.Project(names)
	if err != nil {
		return nil, err
	}
	out := &Table{ID: t.ID, Schema: sub, Rows: t.Rows, Cols: make([]Col, len(idxs))}
	for i, idx := range idxs {
		out.Cols[i] = t.Cols[idx]
	}
	return out, nil
}
