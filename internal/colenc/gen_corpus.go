//go:build ignore

// Generates the on-disk seed corpus for FuzzWireCodec under
// testdata/fuzz/FuzzWireCodec/: real SVT2 frames whose columns land on
// each of the four encodings (full, truncated, and bit-flipped), so
// fuzzing starts inside the codec's deep decode paths. Run from this
// directory:
//
//	go run gen_corpus.go
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"sciview/internal/colenc"
	"sciview/internal/tuple"
)

func main() {
	schema := tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "z", Kind: tuple.Coord},
		tuple.Attr{Name: "oilp", Kind: tuple.Measure},
	)
	r := rand.New(rand.NewSource(41))

	// Grid coordinates: z lands on RLE, y on RLE/dict, x on delta/dict,
	// the measure on raw.
	grid := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 0}, schema, 64)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				grid.AppendRow(float32(x), float32(y), float32(z), r.Float32())
			}
		}
	}
	// Awkward bit patterns: NaN payloads, negative zero, delta extremes.
	edges := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 1}, schema, 16)
	for i := 0; i < 16; i++ {
		m := float32(i)
		if i%3 == 0 {
			m = math.Float32frombits(0x7FC00000 | uint32(i))
		}
		neg := float32(1 << 24)
		if i%2 == 0 {
			neg = math.Float32frombits(0x80000000) // -0
		}
		edges.AppendRow(float32(1<<24-i), neg, float32(i/5), m)
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzWireCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	for name, st := range map[string]*tuple.SubTable{"grid": grid, "edges": edges} {
		frame := colenc.Encode(nil, colenc.FromSubTable(st))
		write("seed_"+name, frame)
		write("seed_"+name+"_truncated", frame[:len(frame)*2/3])
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)/2] ^= 0x10
		write("seed_"+name+"_bitflip", flipped)
	}
	fmt.Printf("wrote corpus to %s\n", dir)
}
