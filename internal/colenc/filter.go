package colenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FilterRange returns a table with only the rows whose named attributes
// fall within [lo[i], hi[i]] for every i, matching
// tuple.SubTable.FilterRange row for row. The selection mask is computed
// against the encoded vectors — RLE runs are tested once per run,
// dictionary entries once per entry, delta vectors in one accumulator walk
// — so no row is materialized to decide its fate. When every row
// qualifies the receiver is returned unchanged (the no-op fast path for
// unselective fetches).
func (t *Table) FilterRange(names []string, lo, hi []float64) (*Table, error) {
	if len(names) != len(lo) || len(lo) != len(hi) {
		return nil, fmt.Errorf("colenc: FilterRange arity mismatch (%d names, %d lo, %d hi)", len(names), len(lo), len(hi))
	}
	idxs, err := t.Schema.Indexes(names)
	if err != nil {
		return nil, err
	}
	keep := make([]bool, t.Rows)
	for i := range keep {
		keep[i] = true
	}
	kept := t.Rows
	for k, idx := range idxs {
		if kept == 0 {
			break
		}
		n, err := maskColumn(t.Cols[idx], t.Rows, lo[k], hi[k], keep)
		if err != nil {
			return nil, fmt.Errorf("colenc: column %d (%s): %w", idx, t.Schema.Attrs[idx].Name, err)
		}
		kept = n
	}
	if kept == t.Rows {
		return t, nil
	}
	return t.Select(keep, kept)
}

// maskColumn clears keep[i] for every row i whose value in c falls outside
// [lo, hi], evaluating against the encoded vector. It returns the number
// of rows still kept.
func maskColumn(c Col, rows int, lo, hi float64, keep []bool) (int, error) {
	in := func(v float32) bool {
		f := float64(v)
		return f >= lo && f <= hi
	}
	switch c.Enc {
	case EncRaw:
		if len(c.Data) != 4*rows {
			return 0, fmt.Errorf("colenc: raw column has %d bytes for %d rows", len(c.Data), rows)
		}
		for i := 0; i < rows; i++ {
			if keep[i] && !in(math.Float32frombits(binary.LittleEndian.Uint32(c.Data[4*i:]))) {
				keep[i] = false
			}
		}
	case EncRLE:
		// Run-wise: one range test per run, then a single span clear.
		if len(c.Data) < 4 {
			return 0, fmt.Errorf("colenc: rle column truncated")
		}
		runs := int(binary.LittleEndian.Uint32(c.Data))
		off, at := 4, 0
		for r := 0; r < runs; r++ {
			if len(c.Data) < off+8 {
				return 0, fmt.Errorf("colenc: rle column truncated at run %d", r)
			}
			length := int(binary.LittleEndian.Uint32(c.Data[off:]))
			value := math.Float32frombits(binary.LittleEndian.Uint32(c.Data[off+4:]))
			off += 8
			if length <= 0 || at+length > rows {
				return 0, fmt.Errorf("colenc: rle run %d length %d overflows %d rows", r, length, rows)
			}
			if !in(value) {
				for i := at; i < at+length; i++ {
					keep[i] = false
				}
			}
			at += length
		}
		if at != rows {
			return 0, fmt.Errorf("colenc: rle column decodes %d rows, want %d", at, rows)
		}
	case EncDict:
		// One range test per dictionary entry, then a byte scan over the
		// index vector.
		if len(c.Data) < 2 {
			return 0, fmt.Errorf("colenc: dict column truncated")
		}
		n := int(binary.LittleEndian.Uint16(c.Data))
		if len(c.Data) != 2+4*n+rows {
			return 0, fmt.Errorf("colenc: dict column has %d bytes for %d entries, %d rows", len(c.Data), n, rows)
		}
		var pass [maxDictEntries]bool
		for e := 0; e < n; e++ {
			pass[e] = in(math.Float32frombits(binary.LittleEndian.Uint32(c.Data[2+4*e:])))
		}
		idxs := c.Data[2+4*n:]
		for i := 0; i < rows; i++ {
			idx := int(idxs[i])
			if idx >= n {
				return 0, fmt.Errorf("colenc: dict index %d out of range (%d entries)", idx, n)
			}
			if keep[i] && !pass[idx] {
				keep[i] = false
			}
		}
	case EncDelta:
		data := c.Data
		var acc int64
		for i := 0; i < rows; i++ {
			u, n := binary.Uvarint(data)
			if n <= 0 {
				return 0, fmt.Errorf("colenc: delta column truncated at row %d", i)
			}
			data = data[n:]
			acc += int64(u>>1) ^ -int64(u&1)
			if keep[i] && !in(float32(acc)) {
				keep[i] = false
			}
		}
		if len(data) != 0 {
			return 0, fmt.Errorf("colenc: delta column has %d trailing bytes", len(data))
		}
	default:
		return 0, fmt.Errorf("colenc: unknown column encoding %d", c.Enc)
	}
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	return kept, nil
}

// Select returns a table holding the rows for which keep[i] is true; kept
// must equal the number of such rows. RLE columns split their runs in
// place (no decode); other encodings decode the single column, gather the
// surviving rows, and re-encode with the per-column chooser.
func (t *Table) Select(keep []bool, kept int) (*Table, error) {
	if len(keep) != t.Rows {
		return nil, fmt.Errorf("colenc: selection mask has %d entries for %d rows", len(keep), t.Rows)
	}
	out := &Table{ID: t.ID, Schema: t.Schema, Rows: kept, Cols: make([]Col, len(t.Cols))}
	for ci, c := range t.Cols {
		if c.Enc == EncRLE {
			sel, err := selectRLE(c.Data, t.Rows, keep)
			if err != nil {
				return nil, fmt.Errorf("colenc: column %d (%s): %w", ci, t.Schema.Attrs[ci].Name, err)
			}
			out.Cols[ci] = Col{Enc: EncRLE, Data: sel}
			continue
		}
		col := make([]float32, t.Rows)
		if err := decodeColumn(c, t.Rows, col); err != nil {
			return nil, fmt.Errorf("colenc: column %d (%s): %w", ci, t.Schema.Attrs[ci].Name, err)
		}
		gathered := make([]float32, 0, kept)
		for i, k := range keep {
			if k {
				gathered = append(gathered, col[i])
			}
		}
		out.Cols[ci] = encodeColumn(gathered)
	}
	return out, nil
}

// selectRLE produces the RLE payload of the selected rows by splitting
// runs against the mask, merging adjacent surviving fragments that carry
// the same bit pattern.
func selectRLE(data []byte, rows int, keep []bool) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("colenc: rle column truncated")
	}
	runs := int(binary.LittleEndian.Uint32(data))
	type run struct {
		length int
		bits   uint32
	}
	var out []run
	off, at := 4, 0
	for r := 0; r < runs; r++ {
		if len(data) < off+8 {
			return nil, fmt.Errorf("colenc: rle column truncated at run %d", r)
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		bits := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if length <= 0 || at+length > rows {
			return nil, fmt.Errorf("colenc: rle run %d length %d overflows %d rows", r, length, rows)
		}
		surviving := 0
		for i := at; i < at+length; i++ {
			if keep[i] {
				surviving++
			}
		}
		if surviving > 0 {
			if len(out) > 0 && out[len(out)-1].bits == bits {
				out[len(out)-1].length += surviving
			} else {
				out = append(out, run{surviving, bits})
			}
		}
		at += length
	}
	if at != rows {
		return nil, fmt.Errorf("colenc: rle column decodes %d rows, want %d", at, rows)
	}
	enc := make([]byte, 4+8*len(out))
	binary.LittleEndian.PutUint32(enc, uint32(len(out)))
	for i, r := range out {
		binary.LittleEndian.PutUint32(enc[4+8*i:], uint32(r.length))
		binary.LittleEndian.PutUint32(enc[8+8*i:], r.bits)
	}
	return enc, nil
}

// FilterProject applies the BDS fetch shaping to an encoded table in the
// compressed domain: the range filter first (constraints naming attributes
// absent from the schema filter nothing, mirroring the row-major path),
// then the projection (restricted to attributes present, in schema order).
func (t *Table) FilterProject(names []string, lo, hi []float64, project []string) (*Table, error) {
	var fNames []string
	var fLo, fHi []float64
	for i, a := range names {
		if t.Schema.Index(a) < 0 {
			continue // absent attribute: bounds are infinite, keep all rows
		}
		fNames = append(fNames, a)
		fLo = append(fLo, lo[i])
		fHi = append(fHi, hi[i])
	}
	out := t
	if len(fNames) > 0 {
		var err error
		if out, err = out.FilterRange(fNames, fLo, fHi); err != nil {
			return nil, err
		}
	}
	if project != nil {
		keep := make([]string, 0, len(project))
		want := make(map[string]bool, len(project))
		for _, p := range project {
			want[p] = true
		}
		for _, a := range out.Schema.Attrs {
			if want[a.Name] {
				keep = append(keep, a.Name)
			}
		}
		var err error
		if out, err = out.Project(keep); err != nil {
			return nil, err
		}
	}
	return out, nil
}
