package colenc

import (
	"encoding/binary"
	"fmt"

	"sciview/internal/chunk"
)

// ParseRLEChunk reinterprets an on-disk "rle" chunk as an encoded Table
// without materializing a single row: each column's run section is sliced
// straight out of the chunk bytes as an EncRLE payload (the layouts are
// byte-identical). The storage-node fetch path uses this so RLE chunks
// travel disk → wire with run-wise filtering in between but no
// decode/re-encode round trip.
//
// The walk validates exactly what chunk.RLE.Extract validates — run
// lengths positive, every column decoding to the same row count, no
// trailing bytes — so a chunk this function accepts is one the extractor
// would accept. Payloads are copied, so the caller may recycle data.
func ParseRLEChunk(d *chunk.Desc, data []byte) (*Table, error) {
	schema := d.Schema()
	na := schema.NumAttrs()
	if na == 0 {
		return nil, fmt.Errorf("colenc: rle chunk %v has no attributes", d.ID())
	}
	type span struct{ start, end int }
	spans := make([]span, na)
	off := 0
	rows := -1
	for c := 0; c < na; c++ {
		start := off
		if len(data) < off+4 {
			return nil, fmt.Errorf("colenc: rle chunk %v: truncated at column %d header", d.ID(), c)
		}
		runs := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		n := 0
		for r := 0; r < runs; r++ {
			if len(data) < off+8 {
				return nil, fmt.Errorf("colenc: rle chunk %v: truncated run %d of column %d", d.ID(), r, c)
			}
			length := int(binary.LittleEndian.Uint32(data[off:]))
			off += 8
			if length <= 0 || (rows >= 0 && n+length > rows) || n+length > maxDecodeRows {
				return nil, fmt.Errorf("colenc: rle chunk %v: invalid run length %d in column %d", d.ID(), length, c)
			}
			n += length
		}
		if rows < 0 {
			rows = n
		} else if n != rows {
			return nil, fmt.Errorf("colenc: rle chunk %v: column %d has %d rows, column 0 has %d",
				d.ID(), c, n, rows)
		}
		spans[c] = span{start, off}
	}
	if off != len(data) {
		return nil, fmt.Errorf("colenc: rle chunk %v: %d trailing bytes", d.ID(), len(data)-off)
	}
	backing := make([]byte, len(data))
	copy(backing, data)
	t := &Table{ID: d.ID(), Schema: schema, Rows: rows, Cols: make([]Col, na)}
	for c, s := range spans {
		t.Cols[c] = Col{Enc: EncRLE, Data: backing[s.start:s.end:s.end]}
	}
	return t, nil
}
