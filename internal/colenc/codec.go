package colenc

import (
	"encoding/binary"
	"fmt"

	"sciview/internal/tuple"
)

// SVT2 wire format (little endian) — the compressed columnar successor to
// the row-major SVT1 format in internal/tuple:
//
//	magic     uint32  "SVT2"
//	table     int32
//	chunk     int32
//	numAttrs  uint16
//	per attr: nameLen uint16, name bytes, kind uint8
//	rows      uint32
//	per col:  enc uint8, payloadLen uint32, payload bytes
//
// The header is identical to SVT1 through the attribute list, so both
// formats stay self-describing and a receiver dispatches on the magic
// alone — the negotiation mechanism that lets old and new peers
// interoperate (see bds: a server answers SVT2 only to a request that
// advertised it).

// Magic identifies an SVT2 frame ("SVT2").
const Magic = 0x53565432

// headerSize returns the size of the SVT2 header for a schema.
func headerSize(s tuple.Schema) int {
	n := 4 + 4 + 4 + 2
	for _, a := range s.Attrs {
		n += 2 + len(a.Name) + 1
	}
	return n + 4
}

// EncodedSize returns the exact SVT2 wire size of t.
func EncodedSize(t *Table) int {
	n := headerSize(t.Schema)
	for _, c := range t.Cols {
		n += 5 + len(c.Data)
	}
	return n
}

// Encode serializes t, appending to dst (which may be nil) and returning
// the extended slice. Like tuple.Encode, the size is known up front, so
// dst grows at most once.
func Encode(dst []byte, t *Table) []byte {
	size := EncodedSize(t)
	start := len(dst)
	if cap(dst)-start < size {
		grown := make([]byte, start, start+size)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+size]
	b := dst[start:]

	binary.LittleEndian.PutUint32(b[0:], Magic)
	binary.LittleEndian.PutUint32(b[4:], uint32(t.ID.Table))
	binary.LittleEndian.PutUint32(b[8:], uint32(t.ID.Chunk))
	binary.LittleEndian.PutUint16(b[12:], uint16(len(t.Schema.Attrs)))
	off := 14
	for _, a := range t.Schema.Attrs {
		binary.LittleEndian.PutUint16(b[off:], uint16(len(a.Name)))
		off += 2
		off += copy(b[off:], a.Name)
		b[off] = byte(a.Kind)
		off++
	}
	binary.LittleEndian.PutUint32(b[off:], uint32(t.Rows))
	off += 4
	for _, c := range t.Cols {
		b[off] = c.Enc
		binary.LittleEndian.PutUint32(b[off+1:], uint32(len(c.Data)))
		off += 5
		off += copy(b[off:], c.Data)
	}
	return dst
}

// Decode parses an SVT2 frame, returning the table and the bytes
// consumed. Column payloads are copied out of src (into one backing
// array), so the source buffer may be recycled immediately. Hostile input
// yields an error, never a panic or an oversized allocation: every read is
// bounds-checked and the row count is capped.
func Decode(src []byte) (*Table, int, error) {
	const hdr = 4 + 4 + 4 + 2
	if len(src) < hdr {
		return nil, 0, fmt.Errorf("colenc: short buffer (%d bytes) decoding header", len(src))
	}
	if m := binary.LittleEndian.Uint32(src[0:]); m != Magic {
		return nil, 0, fmt.Errorf("colenc: bad magic %#x", m)
	}
	id := tuple.ID{
		Table: int32(binary.LittleEndian.Uint32(src[4:])),
		Chunk: int32(binary.LittleEndian.Uint32(src[8:])),
	}
	numAttrs := int(binary.LittleEndian.Uint16(src[12:]))
	off := hdr
	attrs := make([]tuple.Attr, numAttrs)
	for i := 0; i < numAttrs; i++ {
		if len(src) < off+2 {
			return nil, 0, fmt.Errorf("colenc: short buffer decoding attribute %d name length", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if len(src) < off+nameLen+1 {
			return nil, 0, fmt.Errorf("colenc: short buffer decoding attribute %d", i)
		}
		attrs[i] = tuple.Attr{Name: string(src[off : off+nameLen]), Kind: tuple.Kind(src[off+nameLen])}
		off += nameLen + 1
	}
	if len(src) < off+4 {
		return nil, 0, fmt.Errorf("colenc: short buffer decoding row count")
	}
	rows := int(binary.LittleEndian.Uint32(src[off:]))
	off += 4
	if rows > maxDecodeRows {
		return nil, 0, fmt.Errorf("colenc: row count %d exceeds decode limit", rows)
	}
	// First pass: bounds-check the column sections and total their payload
	// bytes, so one backing array can hold every copied payload.
	scan, total := off, 0
	for c := 0; c < numAttrs; c++ {
		if len(src) < scan+5 {
			return nil, 0, fmt.Errorf("colenc: short buffer decoding column %d header", c)
		}
		plen := int(binary.LittleEndian.Uint32(src[scan+1:]))
		if len(src) < scan+5+plen {
			return nil, 0, fmt.Errorf("colenc: short buffer: column %d claims %d payload bytes, have %d",
				c, plen, len(src)-scan-5)
		}
		scan += 5 + plen
		total += plen
	}
	backing := make([]byte, total)
	cols := make([]Col, numAttrs)
	at := 0
	for c := 0; c < numAttrs; c++ {
		enc := src[off]
		plen := int(binary.LittleEndian.Uint32(src[off+1:]))
		off += 5
		payload := backing[at : at+plen : at+plen]
		copy(payload, src[off:off+plen])
		off += plen
		at += plen
		cols[c] = Col{Enc: enc, Data: payload}
	}
	t := &Table{ID: id, Schema: tuple.Schema{Attrs: attrs}, Rows: rows, Cols: cols}
	return t, off, nil
}

// IsEncoded reports whether a wire frame carries the SVT2 format (as
// opposed to row-major SVT1) — the receiver-side half of the codec
// negotiation.
func IsEncoded(frame []byte) bool {
	return len(frame) >= 4 && binary.LittleEndian.Uint32(frame) == Magic
}
