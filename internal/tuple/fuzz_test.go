package tuple

import "testing"

// FuzzDecode drives the sub-table wire decoder with arbitrary bytes: it
// must never panic or over-read, and anything it accepts must re-encode to
// an equivalent table.
func FuzzDecode(f *testing.F) {
	st := NewSubTable(ID{Table: 1, Chunk: 2}, NewSchema(
		Attr{Name: "x", Kind: Coord},
		Attr{Name: "y", Kind: Coord},
		Attr{Name: "v", Kind: Measure},
	), 4)
	st.AppendRow(1, 2, 3)
	st.AppendRow(4, 5, 6)
	valid := Encode(nil, st)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x54, 0x56, 0x53}) // magic only
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, n, err := Decode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := Encode(nil, dec)
		dec2, _, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted table failed: %v", err)
		}
		if dec2.NumRows() != dec.NumRows() || !dec2.Schema.Equal(dec.Schema) {
			t.Fatal("round trip changed shape")
		}
	})
}
