package tuple

import (
	"fmt"
	"math"

	"sciview/internal/bbox"
)

// ID identifies a basic sub-table as the pair (table id, chunk id), the
// paper's (i, j) identifier scheme. Derived sub-tables (join results) keep
// Table = -1.
type ID struct {
	Table int32
	Chunk int32
}

// Less orders IDs lexicographically. The IJ scheduler sorts edge endpoints
// with this order (the paper's stage-2 lexicographic schedule).
func (id ID) Less(o ID) bool {
	if id.Table != o.Table {
		return id.Table < o.Table
	}
	return id.Chunk < o.Chunk
}

func (id ID) String() string { return fmt.Sprintf("(%d,%d)", id.Table, id.Chunk) }

// SubTable is a columnar partition of a virtual table: a subset of records
// with all attributes of its schema, plus the bounding-box metadata the
// framework attaches to each chunk. SubTables are the unit of transfer
// between BDS instances and join nodes.
type SubTable struct {
	ID     ID
	Schema Schema
	cols   [][]float32
	rows   int
}

// NewSubTable returns an empty sub-table with the given schema, with space
// preallocated for capacity rows.
func NewSubTable(id ID, schema Schema, capacity int) *SubTable {
	cols := make([][]float32, schema.NumAttrs())
	for i := range cols {
		cols[i] = make([]float32, 0, capacity)
	}
	return &SubTable{ID: id, Schema: schema, cols: cols}
}

// FromColumns builds a sub-table directly from column slices. All columns
// must have equal length; the slices are adopted, not copied.
func FromColumns(id ID, schema Schema, cols [][]float32) (*SubTable, error) {
	if len(cols) != schema.NumAttrs() {
		return nil, fmt.Errorf("tuple: %d columns for %d attributes", len(cols), schema.NumAttrs())
	}
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	for i, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("tuple: column %d has %d rows, want %d", i, len(c), rows)
		}
	}
	return &SubTable{ID: id, Schema: schema, cols: cols, rows: rows}, nil
}

// NumRows returns the number of records.
func (st *SubTable) NumRows() int { return st.rows }

// Bytes returns the in-memory payload size in bytes (rows × record size).
// Transfer and spill accounting is based on this quantity.
func (st *SubTable) Bytes() int { return st.rows * st.Schema.RecordSize() }

// Reset truncates the sub-table to zero rows, retaining column capacity.
// Engines running in counting mode reuse one output sub-table this way.
func (st *SubTable) Reset() {
	for i := range st.cols {
		st.cols[i] = st.cols[i][:0]
	}
	st.rows = 0
}

// AppendRow appends one record. The number of values must match the schema.
func (st *SubTable) AppendRow(vals ...float32) {
	if len(vals) != len(st.cols) {
		panic(fmt.Sprintf("tuple: AppendRow with %d values for %d attributes", len(vals), len(st.cols)))
	}
	for i, v := range vals {
		st.cols[i] = append(st.cols[i], v)
	}
	st.rows++
}

// Value returns the value at (row, col).
func (st *SubTable) Value(row, col int) float32 { return st.cols[col][row] }

// Col returns the backing slice of a column. Callers must not modify it.
func (st *SubTable) Col(col int) []float32 { return st.cols[col] }

// Row copies record `row` into dst (allocated if nil) and returns it.
func (st *SubTable) Row(row int, dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, len(st.cols))
	}
	for i := range st.cols {
		dst[i] = st.cols[i][row]
	}
	return dst
}

// Bounds computes the bounding box of the sub-table over all attributes, in
// schema order. An empty sub-table yields an empty box.
func (st *SubTable) Bounds() bbox.Box {
	b := bbox.Empty(len(st.cols))
	for d, col := range st.cols {
		for _, v := range col {
			fv := float64(v)
			if fv < b.Lo[d] {
				b.Lo[d] = fv
			}
			if fv > b.Hi[d] {
				b.Hi[d] = fv
			}
		}
	}
	return b
}

// Project returns a new sub-table containing only the named attributes.
// Column data is shared, not copied.
func (st *SubTable) Project(names []string) (*SubTable, error) {
	sub, idxs, err := st.Schema.Project(names)
	if err != nil {
		return nil, err
	}
	cols := make([][]float32, len(idxs))
	for i, idx := range idxs {
		cols[i] = st.cols[idx]
	}
	return &SubTable{ID: st.ID, Schema: sub, cols: cols, rows: st.rows}, nil
}

// FilterRange returns a new sub-table with only the rows whose named
// attributes fall within [lo[i], hi[i]] for every i. This implements the
// paper's range-selection pushdown at the sub-table level.
func (st *SubTable) FilterRange(names []string, lo, hi []float64) (*SubTable, error) {
	if len(names) != len(lo) || len(lo) != len(hi) {
		return nil, fmt.Errorf("tuple: FilterRange arity mismatch (%d names, %d lo, %d hi)", len(names), len(lo), len(hi))
	}
	idxs, err := st.Schema.Indexes(names)
	if err != nil {
		return nil, err
	}
	out := NewSubTable(st.ID, st.Schema, 0)
	row := make([]float32, len(st.cols))
rows:
	for r := 0; r < st.rows; r++ {
		for k, idx := range idxs {
			v := float64(st.cols[idx][r])
			if v < lo[k] || v > hi[k] {
				continue rows
			}
		}
		out.AppendRow(st.Row(r, row)...)
	}
	return out, nil
}

// Head returns a sub-table holding the first n rows (all rows when n
// exceeds the row count). Column data is shared, not copied — the caller
// must treat both tables as immutable, like Project.
func (st *SubTable) Head(n int) *SubTable {
	if n > st.rows {
		n = st.rows
	}
	if n < 0 {
		n = 0
	}
	cols := make([][]float32, len(st.cols))
	for i := range cols {
		cols[i] = st.cols[i][:n]
	}
	return &SubTable{ID: st.ID, Schema: st.Schema, cols: cols, rows: n}
}

// AppendAll appends every row of o, which must share st's schema.
func (st *SubTable) AppendAll(o *SubTable) error {
	if !st.Schema.Equal(o.Schema) {
		return fmt.Errorf("tuple: AppendAll schema mismatch: %v vs %v", st.Schema, o.Schema)
	}
	for i := range st.cols {
		st.cols[i] = append(st.cols[i], o.cols[i]...)
	}
	st.rows += o.rows
	return nil
}

// Key packs the values of the key attributes of record `row` into a uint64.
//
// For one or two key attributes the packing is exact (the float32 bit
// patterns occupy disjoint 32-bit halves), so distinct keys never collide —
// matching the paper's joins on (x, y). For more attributes the values are
// mixed with an FNV-1a-style fold; the hash-join verifies real attribute
// equality on probe, so collisions cost time, never correctness.
func (st *SubTable) Key(row int, keyIdxs []int) uint64 {
	switch len(keyIdxs) {
	case 1:
		return uint64(math.Float32bits(st.cols[keyIdxs[0]][row]))
	case 2:
		return uint64(math.Float32bits(st.cols[keyIdxs[0]][row]))<<32 |
			uint64(math.Float32bits(st.cols[keyIdxs[1]][row]))
	default:
		const (
			offset64 = 14695981039346656037
			prime64  = 1099511628211
		)
		h := uint64(offset64)
		for _, idx := range keyIdxs {
			bits := math.Float32bits(st.cols[idx][row])
			for shift := 0; shift < 32; shift += 8 {
				h ^= uint64(bits>>shift) & 0xff
				h *= prime64
			}
		}
		return h
	}
}

// KeysEqual reports whether the key attributes of st[row] equal those of
// o[orow], comparing actual values (the collision check behind Key).
func (st *SubTable) KeysEqual(row int, keyIdxs []int, o *SubTable, orow int, oKeyIdxs []int) bool {
	for i := range keyIdxs {
		if st.cols[keyIdxs[i]][row] != o.cols[oKeyIdxs[i]][orow] {
			return false
		}
	}
	return true
}
