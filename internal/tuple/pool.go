package tuple

import "sync"

// Buffer pools for the join hot paths. Steady-state query traffic encodes
// a sub-table per fetch and materializes a row scratch per probe; without
// reuse that is one short-lived allocation per operation, all garbage by
// the time the response is written. The pools here recycle those buffers.
//
// Ownership rule: a buffer passed to PutBuf/PutRow must not be referenced
// anywhere afterwards. Callers therefore only release buffers whose
// contents have been copied onward (simio stores copy on Append, transport
// frames are written synchronously) or fully consumed (decoded).

// maxPooledBuf caps what PutBuf retains, so a one-off giant encode does not
// pin tens of megabytes in the pool forever.
const maxPooledBuf = 16 << 20

// maxPooledRow caps PutRow retention (rows are schema-width, tiny).
const maxPooledRow = 1 << 12

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a zero-length byte slice with capacity ≥ n, suitable as
// the dst argument of Encode. Release it with PutBuf once the contents are
// no longer referenced.
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) >= n {
		return (*bp)[:0]
	}
	// Undersized: leave it for a smaller request and allocate exactly n.
	bufPool.Put(bp)
	return make([]byte, 0, n)
}

// PutBuf recycles a buffer obtained from GetBuf (or any other slice the
// caller owns outright). Oversized buffers are dropped to the GC.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

var rowPool = sync.Pool{
	New: func() any {
		r := make([]float32, 0, 64)
		return &r
	},
}

// GetRow returns a length-n float32 scratch slice (contents undefined) for
// row materialization. Release with PutRow.
func GetRow(n int) []float32 {
	rp := rowPool.Get().(*[]float32)
	if cap(*rp) >= n {
		return (*rp)[:n]
	}
	rowPool.Put(rp)
	return make([]float32, n)
}

// PutRow recycles a row scratch slice obtained from GetRow.
func PutRow(r []float32) {
	if cap(r) == 0 || cap(r) > maxPooledRow {
		return
	}
	r = r[:0]
	rowPool.Put(&r)
}
