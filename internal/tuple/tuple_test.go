package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return NewSchema(
		Attr{Name: "x", Kind: Coord},
		Attr{Name: "y", Kind: Coord},
		Attr{Name: "z", Kind: Coord},
		Attr{Name: "oilp", Kind: Measure},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.NumAttrs() != 4 {
		t.Fatalf("NumAttrs = %d, want 4", s.NumAttrs())
	}
	if s.RecordSize() != 16 {
		t.Errorf("RecordSize = %d, want 16", s.RecordSize())
	}
	if s.Index("z") != 2 {
		t.Errorf("Index(z) = %d, want 2", s.Index("z"))
	}
	if s.Index("missing") != -1 {
		t.Errorf("Index(missing) = %d, want -1", s.Index("missing"))
	}
	ci := s.CoordIndexes()
	if len(ci) != 3 || ci[0] != 0 || ci[2] != 2 {
		t.Errorf("CoordIndexes = %v", ci)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attribute")
		}
	}()
	NewSchema(Attr{Name: "x"}, Attr{Name: "x"})
}

func TestSchemaIndexes(t *testing.T) {
	s := testSchema()
	idxs, err := s.Indexes([]string{"y", "oilp"})
	if err != nil {
		t.Fatal(err)
	}
	if idxs[0] != 1 || idxs[1] != 3 {
		t.Errorf("Indexes = %v, want [1 3]", idxs)
	}
	if _, err := s.Indexes([]string{"nope"}); err == nil {
		t.Error("expected error for missing attribute")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	p, idxs, err := s.Project([]string{"oilp", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumAttrs() != 2 || p.Attrs[0].Name != "oilp" || p.Attrs[1].Name != "x" {
		t.Errorf("projected schema = %v", p)
	}
	if idxs[0] != 3 || idxs[1] != 0 {
		t.Errorf("projection indexes = %v", idxs)
	}
}

func TestSchemaJoinResult(t *testing.T) {
	left := testSchema()
	right := NewSchema(
		Attr{Name: "x", Kind: Coord},
		Attr{Name: "y", Kind: Coord},
		Attr{Name: "z", Kind: Coord},
		Attr{Name: "wp", Kind: Measure},
	)
	j := left.JoinResult(right, []string{"x", "y"}, "r_")
	// left 4 attrs + right's z (collides -> prefixed) and wp.
	want := []string{"x", "y", "z", "oilp", "r_z", "wp"}
	if len(j.Attrs) != len(want) {
		t.Fatalf("join schema = %v, want %v", j.Names(), want)
	}
	for i, n := range want {
		if j.Attrs[i].Name != n {
			t.Errorf("attr %d = %q, want %q", i, j.Attrs[i].Name, n)
		}
	}
}

func TestSubTableAppendAndAccess(t *testing.T) {
	st := NewSubTable(ID{Table: 1, Chunk: 2}, testSchema(), 4)
	st.AppendRow(0, 0, 0, 0.5)
	st.AppendRow(1, 0, 0, 0.7)
	if st.NumRows() != 2 {
		t.Fatalf("NumRows = %d", st.NumRows())
	}
	if st.Value(1, 0) != 1 || st.Value(1, 3) != 0.7 {
		t.Errorf("Value mismatch: %v %v", st.Value(1, 0), st.Value(1, 3))
	}
	if st.Bytes() != 2*16 {
		t.Errorf("Bytes = %d, want 32", st.Bytes())
	}
	row := st.Row(0, nil)
	if row[3] != 0.5 {
		t.Errorf("Row = %v", row)
	}
}

func TestSubTableBounds(t *testing.T) {
	st := NewSubTable(ID{}, testSchema(), 0)
	st.AppendRow(0, 5, 2, 0.1)
	st.AppendRow(3, 1, 2, 0.9)
	b := st.Bounds()
	if b.Lo[0] != 0 || b.Hi[0] != 3 || b.Lo[1] != 1 || b.Hi[1] != 5 || b.Lo[2] != 2 || b.Hi[2] != 2 {
		t.Errorf("Bounds = %v", b)
	}
	if !NewSubTable(ID{}, testSchema(), 0).Bounds().IsEmpty() {
		t.Error("empty sub-table should have empty bounds")
	}
}

func TestSubTableProjectSharesData(t *testing.T) {
	st := NewSubTable(ID{}, testSchema(), 0)
	st.AppendRow(1, 2, 3, 4)
	p, err := st.Project([]string{"oilp", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows() != 1 || p.Value(0, 0) != 4 || p.Value(0, 1) != 2 {
		t.Errorf("projection wrong: %v %v", p.Value(0, 0), p.Value(0, 1))
	}
}

func TestSubTableFilterRange(t *testing.T) {
	st := NewSubTable(ID{}, testSchema(), 0)
	for i := 0; i < 10; i++ {
		st.AppendRow(float32(i), float32(i*2), 0, float32(i)/10)
	}
	f, err := st.FilterRange([]string{"x", "y"}, []float64{2, 0}, []float64{7, 10})
	if err != nil {
		t.Fatal(err)
	}
	// x in [2,7] and y=2x in [0,10] -> x in {2,3,4,5}
	if f.NumRows() != 4 {
		t.Fatalf("filtered rows = %d, want 4", f.NumRows())
	}
	if f.Value(0, 0) != 2 || f.Value(3, 0) != 5 {
		t.Errorf("filtered values wrong")
	}
	if _, err := st.FilterRange([]string{"x"}, []float64{0, 1}, []float64{2}); err == nil {
		t.Error("expected arity error")
	}
}

func TestSubTableHead(t *testing.T) {
	st := NewSubTable(ID{Table: 1, Chunk: 3}, testSchema(), 0)
	for i := 0; i < 5; i++ {
		st.AppendRow(float32(i), 0, 0, 0)
	}
	h := st.Head(2)
	if h.NumRows() != 2 || h.Value(0, 0) != 0 || h.Value(1, 0) != 1 {
		t.Fatalf("Head(2) = %d rows", h.NumRows())
	}
	if h.ID != st.ID {
		t.Errorf("ID = %v, want %v", h.ID, st.ID)
	}
	if &h.Col(0)[0] != &st.Col(0)[0] {
		t.Error("Head copied column data, want shared prefix")
	}
	if st.Head(99).NumRows() != 5 {
		t.Errorf("Head past the end = %d rows, want all 5", st.Head(99).NumRows())
	}
	if st.Head(-1).NumRows() != 0 {
		t.Errorf("Head(-1) = %d rows, want 0", st.Head(-1).NumRows())
	}
}

func TestSubTableAppendAll(t *testing.T) {
	a := NewSubTable(ID{}, testSchema(), 0)
	a.AppendRow(1, 1, 1, 1)
	b := NewSubTable(ID{}, testSchema(), 0)
	b.AppendRow(2, 2, 2, 2)
	if err := a.AppendAll(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 2 || a.Value(1, 0) != 2 {
		t.Error("AppendAll failed")
	}
	c := NewSubTable(ID{}, NewSchema(Attr{Name: "q"}), 0)
	if err := a.AppendAll(c); err == nil {
		t.Error("expected schema mismatch error")
	}
}

func TestFromColumnsValidation(t *testing.T) {
	s := NewSchema(Attr{Name: "a"}, Attr{Name: "b"})
	if _, err := FromColumns(ID{}, s, [][]float32{{1}}); err == nil {
		t.Error("expected error for wrong column count")
	}
	if _, err := FromColumns(ID{}, s, [][]float32{{1, 2}, {3}}); err == nil {
		t.Error("expected error for ragged columns")
	}
	st, err := FromColumns(ID{}, s, [][]float32{{1, 2}, {3, 4}})
	if err != nil || st.NumRows() != 2 {
		t.Errorf("FromColumns failed: %v", err)
	}
}

func TestKeyExactForTwoAttrs(t *testing.T) {
	st := NewSubTable(ID{}, testSchema(), 0)
	st.AppendRow(1, 2, 0, 0)
	st.AppendRow(2, 1, 0, 0)
	st.AppendRow(1, 2, 9, 9)
	k := []int{0, 1}
	if st.Key(0, k) == st.Key(1, k) {
		t.Error("distinct (x,y) must have distinct packed keys")
	}
	if st.Key(0, k) != st.Key(2, k) {
		t.Error("equal (x,y) must have equal keys")
	}
}

func TestKeysEqual(t *testing.T) {
	st := NewSubTable(ID{}, testSchema(), 0)
	st.AppendRow(1, 2, 3, 4)
	o := NewSubTable(ID{}, testSchema(), 0)
	o.AppendRow(1, 2, 9, 9)
	o.AppendRow(1, 3, 9, 9)
	k := []int{0, 1}
	if !st.KeysEqual(0, k, o, 0, k) {
		t.Error("keys should be equal")
	}
	if st.KeysEqual(0, k, o, 1, k) {
		t.Error("keys should differ")
	}
}

func TestIDLess(t *testing.T) {
	if !(ID{1, 5}).Less(ID{2, 0}) {
		t.Error("table ordering wrong")
	}
	if !(ID{1, 5}).Less(ID{1, 6}) {
		t.Error("chunk ordering wrong")
	}
	if (ID{1, 5}).Less(ID{1, 5}) {
		t.Error("Less must be strict")
	}
}

func randSubTable(r *rand.Rand) *SubTable {
	nAttrs := 1 + r.Intn(6)
	attrs := make([]Attr, nAttrs)
	for i := range attrs {
		attrs[i] = Attr{Name: string(rune('a' + i)), Kind: Kind(r.Intn(2))}
	}
	st := NewSubTable(ID{Table: int32(r.Intn(10)), Chunk: int32(r.Intn(100))}, Schema{Attrs: attrs}, 0)
	rows := r.Intn(50)
	vals := make([]float32, nAttrs)
	for i := 0; i < rows; i++ {
		for j := range vals {
			vals[j] = float32(r.Intn(1000))
		}
		st.AppendRow(vals...)
	}
	return st
}

func TestPropCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randSubTable(r)
		enc := Encode(nil, st)
		if len(enc) != EncodedSize(st) {
			t.Logf("EncodedSize mismatch: %d vs %d", len(enc), EncodedSize(st))
			return false
		}
		dec, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			t.Logf("decode err=%v n=%d len=%d", err, n, len(enc))
			return false
		}
		if dec.ID != st.ID || !dec.Schema.Equal(st.Schema) || dec.NumRows() != st.NumRows() {
			return false
		}
		for c := 0; c < st.Schema.NumAttrs(); c++ {
			for rr := 0; rr < st.NumRows(); rr++ {
				if dec.Value(rr, c) != st.Value(rr, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("expected error on empty buffer")
	}
	if _, _, err := Decode(make([]byte, 14)); err == nil {
		t.Error("expected error on bad magic")
	}
	st := NewSubTable(ID{1, 1}, testSchema(), 0)
	st.AppendRow(1, 2, 3, 4)
	enc := Encode(nil, st)
	for _, cut := range []int{15, len(enc) / 2, len(enc) - 1} {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("expected error on truncation at %d", cut)
		}
	}
}

func TestDecodeConcatenatedStream(t *testing.T) {
	a := NewSubTable(ID{1, 1}, testSchema(), 0)
	a.AppendRow(1, 2, 3, 4)
	b := NewSubTable(ID{2, 7}, testSchema(), 0)
	b.AppendRow(5, 6, 7, 8)
	buf := Encode(Encode(nil, a), b)
	da, n, err := Decode(buf)
	if err != nil || da.ID != a.ID {
		t.Fatalf("first decode: %v", err)
	}
	db, _, err := Decode(buf[n:])
	if err != nil || db.ID != b.ID || db.Value(0, 3) != 8 {
		t.Fatalf("second decode: %v", err)
	}
}
