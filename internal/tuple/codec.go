package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format for sub-tables (little endian):
//
//	magic     uint32  "SVT1"
//	table     int32
//	chunk     int32
//	numAttrs  uint16
//	per attr: nameLen uint16, name bytes, kind uint8
//	rows      uint32
//	columns:  numAttrs × rows × float32 (column-major)
//
// The format is self-describing so that BDS responses can be decoded
// without out-of-band schema agreement, and column-major so that decode is
// a straight copy per column.

const codecMagic = 0x53565431 // "SVT1"

// EncodedSize returns the exact encoded size of st in bytes.
func EncodedSize(st *SubTable) int {
	n := 4 + 4 + 4 + 2
	for _, a := range st.Schema.Attrs {
		n += 2 + len(a.Name) + 1
	}
	n += 4
	n += st.Schema.NumAttrs() * st.NumRows() * 4
	return n
}

// Encode serializes st into the wire format, appending to dst (which may be
// nil) and returning the extended slice.
//
// The encoded size is known exactly up front (EncodedSize), so Encode grows
// dst once and then writes by offset: a single allocation when dst is nil
// (or GetBuf-sized), zero when dst already has the capacity — no append
// doubling on the hot transfer path.
func Encode(dst []byte, st *SubTable) []byte {
	size := EncodedSize(st)
	start := len(dst)
	if cap(dst)-start < size {
		grown := make([]byte, start, start+size)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+size]
	b := dst[start:]

	binary.LittleEndian.PutUint32(b[0:], codecMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(st.ID.Table))
	binary.LittleEndian.PutUint32(b[8:], uint32(st.ID.Chunk))
	binary.LittleEndian.PutUint16(b[12:], uint16(len(st.Schema.Attrs)))
	off := 14
	for _, a := range st.Schema.Attrs {
		binary.LittleEndian.PutUint16(b[off:], uint16(len(a.Name)))
		off += 2
		off += copy(b[off:], a.Name)
		b[off] = byte(a.Kind)
		off++
	}
	binary.LittleEndian.PutUint32(b[off:], uint32(st.NumRows()))
	off += 4
	for c := 0; c < st.Schema.NumAttrs(); c++ {
		for _, v := range st.Col(c) {
			binary.LittleEndian.PutUint32(b[off:], math.Float32bits(v))
			off += 4
		}
	}
	return dst
}

// Decode parses a sub-table from the wire format, returning the table and
// the number of bytes consumed.
func Decode(src []byte) (*SubTable, int, error) {
	const hdr = 4 + 4 + 4 + 2
	if len(src) < hdr {
		return nil, 0, fmt.Errorf("tuple: short buffer (%d bytes) decoding sub-table header", len(src))
	}
	if m := binary.LittleEndian.Uint32(src[0:]); m != codecMagic {
		return nil, 0, fmt.Errorf("tuple: bad magic %#x decoding sub-table", m)
	}
	id := ID{
		Table: int32(binary.LittleEndian.Uint32(src[4:])),
		Chunk: int32(binary.LittleEndian.Uint32(src[8:])),
	}
	numAttrs := int(binary.LittleEndian.Uint16(src[12:]))
	off := hdr
	attrs := make([]Attr, numAttrs)
	for i := 0; i < numAttrs; i++ {
		if len(src) < off+2 {
			return nil, 0, fmt.Errorf("tuple: short buffer decoding attribute %d name length", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if len(src) < off+nameLen+1 {
			return nil, 0, fmt.Errorf("tuple: short buffer decoding attribute %d", i)
		}
		attrs[i] = Attr{Name: string(src[off : off+nameLen]), Kind: Kind(src[off+nameLen])}
		off += nameLen + 1
	}
	if len(src) < off+4 {
		return nil, 0, fmt.Errorf("tuple: short buffer decoding row count")
	}
	rows := int(binary.LittleEndian.Uint32(src[off:]))
	off += 4
	need := numAttrs * rows * 4
	if len(src) < off+need {
		return nil, 0, fmt.Errorf("tuple: short buffer: need %d column bytes, have %d", need, len(src)-off)
	}
	// One backing array for all columns: numAttrs+1 allocations become 2.
	backing := make([]float32, numAttrs*rows)
	cols := make([][]float32, numAttrs)
	for c := 0; c < numAttrs; c++ {
		col := backing[c*rows : (c+1)*rows : (c+1)*rows]
		for r := 0; r < rows; r++ {
			col[r] = math.Float32frombits(binary.LittleEndian.Uint32(src[off:]))
			off += 4
		}
		cols[c] = col
	}
	st, err := FromColumns(id, Schema{Attrs: attrs}, cols)
	if err != nil {
		return nil, 0, err
	}
	return st, off, nil
}
