package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format for sub-tables (little endian):
//
//	magic     uint32  "SVT1"
//	table     int32
//	chunk     int32
//	numAttrs  uint16
//	per attr: nameLen uint16, name bytes, kind uint8
//	rows      uint32
//	columns:  numAttrs × rows × float32 (column-major)
//
// The format is self-describing so that BDS responses can be decoded
// without out-of-band schema agreement, and column-major so that decode is
// a straight copy per column.

const codecMagic = 0x53565431 // "SVT1"

// EncodedSize returns the exact encoded size of st in bytes.
func EncodedSize(st *SubTable) int {
	n := 4 + 4 + 4 + 2
	for _, a := range st.Schema.Attrs {
		n += 2 + len(a.Name) + 1
	}
	n += 4
	n += st.Schema.NumAttrs() * st.NumRows() * 4
	return n
}

// Encode serializes st into the wire format, appending to dst (which may be
// nil) and returning the extended slice.
func Encode(dst []byte, st *SubTable) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], codecMagic)
	dst = append(dst, buf[:]...)
	binary.LittleEndian.PutUint32(buf[:], uint32(st.ID.Table))
	dst = append(dst, buf[:]...)
	binary.LittleEndian.PutUint32(buf[:], uint32(st.ID.Chunk))
	dst = append(dst, buf[:]...)
	dst = append(dst, byte(len(st.Schema.Attrs)), byte(len(st.Schema.Attrs)>>8))
	for _, a := range st.Schema.Attrs {
		dst = append(dst, byte(len(a.Name)), byte(len(a.Name)>>8))
		dst = append(dst, a.Name...)
		dst = append(dst, byte(a.Kind))
	}
	binary.LittleEndian.PutUint32(buf[:], uint32(st.NumRows()))
	dst = append(dst, buf[:]...)
	for c := 0; c < st.Schema.NumAttrs(); c++ {
		col := st.Col(c)
		for _, v := range col {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			dst = append(dst, buf[:]...)
		}
	}
	return dst
}

// Decode parses a sub-table from the wire format, returning the table and
// the number of bytes consumed.
func Decode(src []byte) (*SubTable, int, error) {
	const hdr = 4 + 4 + 4 + 2
	if len(src) < hdr {
		return nil, 0, fmt.Errorf("tuple: short buffer (%d bytes) decoding sub-table header", len(src))
	}
	if m := binary.LittleEndian.Uint32(src[0:]); m != codecMagic {
		return nil, 0, fmt.Errorf("tuple: bad magic %#x decoding sub-table", m)
	}
	id := ID{
		Table: int32(binary.LittleEndian.Uint32(src[4:])),
		Chunk: int32(binary.LittleEndian.Uint32(src[8:])),
	}
	numAttrs := int(binary.LittleEndian.Uint16(src[12:]))
	off := hdr
	attrs := make([]Attr, numAttrs)
	for i := 0; i < numAttrs; i++ {
		if len(src) < off+2 {
			return nil, 0, fmt.Errorf("tuple: short buffer decoding attribute %d name length", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if len(src) < off+nameLen+1 {
			return nil, 0, fmt.Errorf("tuple: short buffer decoding attribute %d", i)
		}
		attrs[i] = Attr{Name: string(src[off : off+nameLen]), Kind: Kind(src[off+nameLen])}
		off += nameLen + 1
	}
	if len(src) < off+4 {
		return nil, 0, fmt.Errorf("tuple: short buffer decoding row count")
	}
	rows := int(binary.LittleEndian.Uint32(src[off:]))
	off += 4
	need := numAttrs * rows * 4
	if len(src) < off+need {
		return nil, 0, fmt.Errorf("tuple: short buffer: need %d column bytes, have %d", need, len(src)-off)
	}
	cols := make([][]float32, numAttrs)
	for c := 0; c < numAttrs; c++ {
		col := make([]float32, rows)
		for r := 0; r < rows; r++ {
			col[r] = math.Float32frombits(binary.LittleEndian.Uint32(src[off:]))
			off += 4
		}
		cols[c] = col
	}
	st, err := FromColumns(id, Schema{Attrs: attrs}, cols)
	if err != nil {
		return nil, 0, err
	}
	return st, off, nil
}
