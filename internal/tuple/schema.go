// Package tuple defines the record model of the view framework: schemas,
// columnar sub-tables, join keys, and a binary wire codec.
//
// A sub-table is the paper's unit of data flow: the object-relational
// "page" an extractor produces from a flat-file chunk, shipped from storage
// nodes to compute nodes and joined in memory. All attributes are 4-byte
// values (the paper's datasets use 4-byte attributes throughout); we store
// them as float32 columns. Grid coordinates are small integers, represented
// exactly in float32, so equality joins on coordinates are exact.
package tuple

import (
	"fmt"
	"strings"
)

// Kind classifies an attribute. Coordinate attributes define the spatial
// embedding of the dataset (x, y, z in the oil-reservoir tables) and are the
// usual join and partitioning keys; measure attributes carry simulated
// physical quantities (oil pressure, water pressure, saturation, ...).
type Kind uint8

const (
	// Coord marks a coordinate attribute (partitioning/join dimension).
	Coord Kind = iota
	// Measure marks a scalar measurement attribute.
	Measure
)

func (k Kind) String() string {
	switch k {
	case Coord:
		return "coord"
	case Measure:
		return "measure"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// AttrSize is the storage size in bytes of every attribute value.
// The paper's evaluation uses 4-byte attributes exclusively.
const AttrSize = 4

// Attr describes one attribute of a virtual table.
type Attr struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes. Schemas are immutable by
// convention: operations that change the attribute set return new schemas.
type Schema struct {
	Attrs []Attr
}

// NewSchema builds a schema from the given attributes. It panics on
// duplicate attribute names, which indicate a programming error in table
// definitions.
func NewSchema(attrs ...Attr) Schema {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a.Name] {
			panic(fmt.Sprintf("tuple: duplicate attribute %q in schema", a.Name))
		}
		seen[a.Name] = true
	}
	return Schema{Attrs: attrs}
}

// NumAttrs returns the number of attributes.
func (s Schema) NumAttrs() int { return len(s.Attrs) }

// RecordSize returns the size of one record in bytes. The cost models'
// RS_R and RS_S parameters are exactly this quantity.
func (s Schema) RecordSize() int { return len(s.Attrs) * AttrSize }

// Index returns the position of the named attribute, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Indexes resolves several attribute names at once. It returns an error
// naming the first attribute that is missing.
func (s Schema) Indexes(names []string) ([]int, error) {
	idxs := make([]int, len(names))
	for i, n := range names {
		idx := s.Index(n)
		if idx < 0 {
			return nil, fmt.Errorf("tuple: schema %v has no attribute %q", s, n)
		}
		idxs[i] = idx
	}
	return idxs, nil
}

// CoordIndexes returns the positions of all coordinate attributes, in order.
func (s Schema) CoordIndexes() []int {
	var idxs []int
	for i, a := range s.Attrs {
		if a.Kind == Coord {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// Names returns the attribute names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	return names
}

// Project returns the sub-schema containing only the named attributes, plus
// their positions in s.
func (s Schema) Project(names []string) (Schema, []int, error) {
	idxs, err := s.Indexes(names)
	if err != nil {
		return Schema{}, nil, err
	}
	attrs := make([]Attr, len(idxs))
	for i, idx := range idxs {
		attrs[i] = s.Attrs[idx]
	}
	return Schema{Attrs: attrs}, idxs, nil
}

// Equal reports whether two schemas have identical attributes in identical
// order.
func (s Schema) Equal(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if s.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	return true
}

// JoinResult returns the schema of joining s (left) with o (right) on the
// named key attributes: all left attributes followed by the right table's
// non-key attributes. Right-side non-key attributes whose names collide with
// a left attribute are prefixed with rightPrefix.
func (s Schema) JoinResult(o Schema, keys []string, rightPrefix string) Schema {
	isKey := make(map[string]bool, len(keys))
	for _, k := range keys {
		isKey[k] = true
	}
	attrs := make([]Attr, 0, len(s.Attrs)+len(o.Attrs)-len(keys))
	attrs = append(attrs, s.Attrs...)
	taken := make(map[string]bool, len(attrs))
	for _, a := range s.Attrs {
		taken[a.Name] = true
	}
	for _, a := range o.Attrs {
		if isKey[a.Name] {
			continue
		}
		name := a.Name
		if taken[name] {
			name = rightPrefix + name
		}
		taken[name] = true
		attrs = append(attrs, Attr{Name: name, Kind: a.Kind})
	}
	return Schema{Attrs: attrs}
}

// String renders the schema as (name:kind, ...).
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if a.Kind == Coord {
			b.WriteString("*") // mark coordinates
		}
	}
	b.WriteByte(')')
	return b.String()
}
