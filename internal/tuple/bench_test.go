package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// seedEncode is the original append-growth encoder, kept as the benchmark
// baseline: growing from nil reallocates O(log size) times and writes every
// float through a 4-byte staging buffer.
func seedEncode(dst []byte, st *SubTable) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], codecMagic)
	dst = append(dst, buf[:]...)
	binary.LittleEndian.PutUint32(buf[:], uint32(st.ID.Table))
	dst = append(dst, buf[:]...)
	binary.LittleEndian.PutUint32(buf[:], uint32(st.ID.Chunk))
	dst = append(dst, buf[:]...)
	dst = append(dst, byte(len(st.Schema.Attrs)), byte(len(st.Schema.Attrs)>>8))
	for _, a := range st.Schema.Attrs {
		dst = append(dst, byte(len(a.Name)), byte(len(a.Name)>>8))
		dst = append(dst, a.Name...)
		dst = append(dst, byte(a.Kind))
	}
	binary.LittleEndian.PutUint32(buf[:], uint32(st.NumRows()))
	dst = append(dst, buf[:]...)
	for c := 0; c < st.Schema.NumAttrs(); c++ {
		for _, v := range st.Col(c) {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			dst = append(dst, buf[:]...)
		}
	}
	return dst
}

// benchTable builds an n-row, 4-attribute sub-table, the shape a typical
// chunk fetch moves over the wire.
func benchTable(n int) *SubTable {
	st := NewSubTable(ID{Table: 1, Chunk: 7}, testSchema(), n)
	for i := 0; i < n; i++ {
		st.AppendRow(float32(i%64), float32(i/64), float32(i%8), float32(i)/3)
	}
	return st
}

var codecSizes = []int{1024, 65536}

func BenchmarkEncode(b *testing.B) {
	for _, n := range codecSizes {
		st := benchTable(n)
		size := EncodedSize(st)
		b.Run(fmt.Sprintf("seed/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				seedEncode(nil, st)
			}
		})
		b.Run(fmt.Sprintf("pooled/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				buf := Encode(GetBuf(size), st)
				PutBuf(buf)
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, n := range codecSizes {
		st := benchTable(n)
		wire := Encode(nil, st)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(wire)))
			for i := 0; i < b.N; i++ {
				if _, _, err := Decode(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
