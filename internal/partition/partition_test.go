package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	ok := Spec{Grid: Dims{64, 64, 32}, Part: Dims{16, 8, 32}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Grid: Dims{64, 64, 32}, Part: Dims{10, 8, 32}},
		{Grid: Dims{0, 64, 32}, Part: Dims{16, 8, 32}},
		{Grid: Dims{64, 64, 32}, Part: Dims{16, 0, 32}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestBlocksAndCounts(t *testing.T) {
	s := Spec{Grid: Dims{64, 32, 16}, Part: Dims{16, 8, 16}}
	b := s.Blocks()
	if b != (Dims{4, 4, 1}) {
		t.Errorf("Blocks = %v", b)
	}
	if s.NumChunks() != 16 {
		t.Errorf("NumChunks = %d", s.NumChunks())
	}
	if s.TuplesPerChunk() != 16*8*16 {
		t.Errorf("TuplesPerChunk = %d", s.TuplesPerChunk())
	}
}

func TestChunkIndexRoundTrip(t *testing.T) {
	s := Spec{Grid: Dims{32, 24, 16}, Part: Dims{8, 8, 4}}
	b := s.Blocks()
	seen := make(map[int]bool)
	for z := 0; z < b.Z; z++ {
		for y := 0; y < b.Y; y++ {
			for x := 0; x < b.X; x++ {
				id := s.ChunkIndex(x, y, z)
				if seen[id] {
					t.Fatalf("duplicate chunk id %d", id)
				}
				seen[id] = true
				gx, gy, gz := s.ChunkCoords(id)
				if gx != x || gy != y || gz != z {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", x, y, z, id, gx, gy, gz)
				}
			}
		}
	}
	if len(seen) != int(s.NumChunks()) {
		t.Errorf("ids cover %d chunks, want %d", len(seen), s.NumChunks())
	}
}

func TestCellRange(t *testing.T) {
	s := Spec{Grid: Dims{32, 32, 32}, Part: Dims{8, 16, 32}}
	lo, hi := s.CellRange(1, 1, 0)
	if lo != (Dims{8, 16, 0}) || hi != (Dims{16, 32, 32}) {
		t.Errorf("CellRange = %v..%v", lo, hi)
	}
}

func TestBlockCyclicNode(t *testing.T) {
	counts := make([]int, 5)
	for id := 0; id < 100; id++ {
		counts[BlockCyclicNode(id, 5)]++
	}
	for n, c := range counts {
		if c != 20 {
			t.Errorf("node %d got %d chunks, want 20", n, c)
		}
	}
	if BlockCyclicNode(7, 0) != 0 {
		t.Error("zero nodes should map to 0")
	}
}

func TestPaperFormulaExample(t *testing.T) {
	// Figure 3's example graph has components with a=2 left and b=4 right
	// sub-tables: realize it with p=(4,4,1) (left blocks) and q=(8,1,1)
	// (right slabs) on an 8x8x1 grid. Each component is an 8x4 band holding
	// 2 left blocks and 4 right slabs, every pair overlapping: E_C=8.
	g := Dims{8, 8, 1}
	p := Dims{4, 4, 1}
	q := Dims{8, 1, 1}
	c := ComponentSize(p, q)
	if c != (Dims{8, 4, 1}) {
		t.Errorf("C = %v", c)
	}
	if n := NumComponents(g, p, q); n != 2 {
		t.Errorf("N_C = %d, want 2", n)
	}
	if e := EdgesPerComponent(p, q); e != 8 {
		t.Errorf("E_C = %d, want 8", e)
	}
	if a := LeftPerComponent(p, q); a != 2 {
		t.Errorf("a = %d, want 2", a)
	}
	if b := RightPerComponent(p, q); b != 4 {
		t.Errorf("b = %d, want 4", b)
	}
	if ne := NumEdges(g, p, q); ne != 16 {
		t.Errorf("n_e = %d, want 16", ne)
	}
}

func TestEqualPartitionsDegenerate(t *testing.T) {
	// p == q: each component is one pair, n_e = number of chunks.
	g := Dims{16, 16, 16}
	p := Dims{4, 4, 4}
	if NumEdges(g, p, p) != 64 {
		t.Errorf("n_e = %d, want 64", NumEdges(g, p, p))
	}
	if EdgesPerComponent(p, p) != 1 {
		t.Error("E_C should be 1 for identical partitions")
	}
	if NumComponents(g, p, p) != 64 {
		t.Error("N_C wrong for identical partitions")
	}
}

func TestEdgeRatio(t *testing.T) {
	// For nested partitions (q divides p per-dim), every q-block overlaps
	// exactly one p-block, so n_e = #q-chunks and the edge ratio is
	// n_e·c_R·c_S/T² = (T/c_S)·c_R·c_S/T² = c_R/T.
	g := Dims{32, 32, 32}
	p := Dims{8, 8, 8}
	q := Dims{4, 4, 8}
	want := float64(p.Cells()) / float64(g.Cells())
	if got := EdgeRatio(g, p, q); got != want {
		t.Errorf("EdgeRatio = %g, want %g", got, want)
	}
}

// powerOfTwoDims draws partition sizes as powers of two dividing the grid,
// mirroring the paper's "varying the partition sizes in powers of 2".
func powerOfTwoDims(r *rand.Rand, g Dims) Dims {
	pick := func(limit int) int {
		v := 1
		for v*2 <= limit && r.Intn(2) == 0 {
			v *= 2
		}
		return v
	}
	return Dims{X: pick(g.X), Y: pick(g.Y), Z: pick(g.Z)}
}

// bruteForceEdges counts overlapping block pairs directly.
func bruteForceEdges(g, p, q Dims) int64 {
	sp := Spec{Grid: g, Part: p}
	sq := Spec{Grid: g, Part: q}
	bp, bq := sp.Blocks(), sq.Blocks()
	var edges int64
	for z1 := 0; z1 < bp.Z; z1++ {
		for y1 := 0; y1 < bp.Y; y1++ {
			for x1 := 0; x1 < bp.X; x1++ {
				lo1, hi1 := sp.CellRange(x1, y1, z1)
				for z2 := 0; z2 < bq.Z; z2++ {
					for y2 := 0; y2 < bq.Y; y2++ {
						for x2 := 0; x2 < bq.X; x2++ {
							lo2, hi2 := sq.CellRange(x2, y2, z2)
							if lo1.X < hi2.X && lo2.X < hi1.X &&
								lo1.Y < hi2.Y && lo2.Y < hi1.Y &&
								lo1.Z < hi2.Z && lo2.Z < hi1.Z {
								edges++
							}
						}
					}
				}
			}
		}
	}
	return edges
}

func TestPropEdgeFormulaMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Dims{X: 8 << r.Intn(2), Y: 8 << r.Intn(2), Z: 4 << r.Intn(2)}
		p := powerOfTwoDims(r, g)
		q := powerOfTwoDims(r, g)
		want := bruteForceEdges(g, p, q)
		got := NumEdges(g, p, q)
		if got != want {
			t.Logf("g=%v p=%v q=%v: formula %d, brute force %d", g, p, q, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropComponentAccounting(t *testing.T) {
	// a·N_C = number of left chunks, b·N_C = number of right chunks,
	// and for power-of-two partitions E_C = a·b per component is an upper
	// bound attained when partitions are nested in no dimension both ways.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Dims{16, 16, 8}
		p := powerOfTwoDims(r, g)
		q := powerOfTwoDims(r, g)
		nc := NumComponents(g, p, q)
		a := LeftPerComponent(p, q)
		b := RightPerComponent(p, q)
		sp := Spec{Grid: g, Part: p}
		sq := Spec{Grid: g, Part: q}
		return a*nc == sp.NumChunks() && b*nc == sq.NumChunks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
