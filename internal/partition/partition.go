// Package partition implements regular grid partitioning of a 3-D dataset
// and the paper's Section 6 formulas for component size, component count
// and edge count of the resulting sub-table connectivity graph.
//
// A dataset covers the grid [(0,0,0), (g_x,g_y,g_z)) of unit cells. A table
// partitioned with sizes (p_x,p_y,p_z) is split into axis-aligned blocks of
// that many cells; each block becomes one chunk / sub-table. Chunks are
// distributed across storage nodes in a block-cyclic manner, as in the
// paper's experimental setup.
package partition

import "fmt"

// Dims is a 3-component extent (grid size or partition size), in cells.
type Dims struct {
	X, Y, Z int
}

// D is a convenience constructor for Dims.
func D(x, y, z int) Dims { return Dims{X: x, Y: y, Z: z} }

// Cells returns the number of grid cells covered, X·Y·Z.
func (d Dims) Cells() int64 { return int64(d.X) * int64(d.Y) * int64(d.Z) }

// Positive reports whether every component is >= 1.
func (d Dims) Positive() bool { return d.X >= 1 && d.Y >= 1 && d.Z >= 1 }

func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z) }

// Spec is a partitioning of a grid by a block size. The block size must
// divide the grid evenly in each dimension (the paper's datasets are
// regularly partitioned; see Validate).
type Spec struct {
	Grid Dims // g
	Part Dims // p (or q)
}

// Validate checks that the partitioning is regular.
func (s Spec) Validate() error {
	if !s.Grid.Positive() || !s.Part.Positive() {
		return fmt.Errorf("partition: non-positive dims (grid %v, part %v)", s.Grid, s.Part)
	}
	if s.Grid.X%s.Part.X != 0 || s.Grid.Y%s.Part.Y != 0 || s.Grid.Z%s.Part.Z != 0 {
		return fmt.Errorf("partition: part %v does not evenly divide grid %v", s.Part, s.Grid)
	}
	return nil
}

// Blocks returns the number of blocks per dimension.
func (s Spec) Blocks() Dims {
	return Dims{X: s.Grid.X / s.Part.X, Y: s.Grid.Y / s.Part.Y, Z: s.Grid.Z / s.Part.Z}
}

// NumChunks returns the total number of chunks (sub-tables), T/c in the
// paper's notation (m_R or m_S).
func (s Spec) NumChunks() int64 { return s.Blocks().Cells() }

// TuplesPerChunk returns c_R (or c_S): p_x·p_y·p_z.
func (s Spec) TuplesPerChunk() int64 { return s.Part.Cells() }

// ChunkIndex converts block coordinates to a linear chunk id, x-major:
// id = (bz·BY + by)·BX + bx. The inverse is ChunkCoords.
func (s Spec) ChunkIndex(bx, by, bz int) int {
	b := s.Blocks()
	return (bz*b.Y+by)*b.X + bx
}

// ChunkCoords converts a linear chunk id back to block coordinates.
func (s Spec) ChunkCoords(id int) (bx, by, bz int) {
	b := s.Blocks()
	bx = id % b.X
	by = (id / b.X) % b.Y
	bz = id / (b.X * b.Y)
	return
}

// CellRange returns the half-open cell range [lo, lo+Part) of block
// (bx,by,bz) in each dimension.
func (s Spec) CellRange(bx, by, bz int) (lo Dims, hi Dims) {
	lo = Dims{X: bx * s.Part.X, Y: by * s.Part.Y, Z: bz * s.Part.Z}
	hi = Dims{X: lo.X + s.Part.X, Y: lo.Y + s.Part.Y, Z: lo.Z + s.Part.Z}
	return
}

// BlockCyclicNode assigns chunk id to one of n storage nodes round-robin,
// the block-cyclic distribution of the paper's experiments.
func BlockCyclicNode(chunkID, n int) int {
	if n <= 0 {
		return 0
	}
	return chunkID % n
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ComponentSize returns C = (max(p_x,q_x), max(p_y,q_y), max(p_z,q_z)),
// the paper's formula for the spatial extent of one connected component of
// the sub-table connectivity graph between two partitionings of the same
// grid.
func ComponentSize(p, q Dims) Dims {
	return Dims{X: maxI(p.X, q.X), Y: maxI(p.Y, q.Y), Z: maxI(p.Z, q.Z)}
}

// NumComponents returns N_C = (g_x·g_y·g_z)/(C_x·C_y·C_z).
func NumComponents(g, p, q Dims) int64 {
	c := ComponentSize(p, q)
	return g.Cells() / c.Cells()
}

// EdgesPerComponent returns E_C = ∏_d ceil(max(p_d,q_d)/min(p_d,q_d)).
func EdgesPerComponent(p, q Dims) int64 {
	ex := ceilDiv(maxI(p.X, q.X), minI(p.X, q.X))
	ey := ceilDiv(maxI(p.Y, q.Y), minI(p.Y, q.Y))
	ez := ceilDiv(maxI(p.Z, q.Z), minI(p.Z, q.Z))
	return int64(ex) * int64(ey) * int64(ez)
}

// NumEdges returns n_e = N_C · E_C, the number of edges in the sub-table
// connectivity graph.
func NumEdges(g, p, q Dims) int64 {
	return NumComponents(g, p, q) * EdgesPerComponent(p, q)
}

// EdgeRatio returns the paper's edge ratio n_e·c_R·c_S / T², used to keep
// Fig. 4's sweep at a constant edge ratio.
func EdgeRatio(g, p, q Dims) float64 {
	t := float64(g.Cells())
	return float64(NumEdges(g, p, q)) * float64(p.Cells()) * float64(q.Cells()) / (t * t)
}

// LeftPerComponent returns a: how many left (p-partitioned) sub-tables fall
// in one component.
func LeftPerComponent(p, q Dims) int64 {
	c := ComponentSize(p, q)
	return c.Cells() / p.Cells()
}

// RightPerComponent returns b: how many right (q-partitioned) sub-tables
// fall in one component.
func RightPerComponent(p, q Dims) int64 {
	c := ComponentSize(p, q)
	return c.Cells() / q.Cells()
}
