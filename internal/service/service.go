// Package service implements the concurrent query service: a
// multi-client execution layer above the two Query Execution Systems.
// Callers submit join-view requests from any number of goroutines; the
// service plans each one (choosing IJ or GH by the cost models), holds it
// in a priority/FIFO admission queue until capacity is available, and runs
// it in shared mode — no cluster reset, caches kept warm across queries,
// and concurrent sub-table fetches for the same data collapsed into one
// BDS transfer by the per-node singleflight groups.
//
// Admission is governed by two limits: a maximum number of in-flight
// queries, and a memory budget charged per query with a cost-model-derived
// working-set estimate (build side plus one streaming sub-table per
// joiner). A query whose estimate exceeds the whole budget is clamped to
// it, so oversized queries still run — alone. Cancellation is first-class:
// a context cancelled while queued removes the entry immediately; one
// cancelled while running propagates through the engine's fetch path and
// frees the slot for the next waiter.
package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sciview/internal/cache"
	"sciview/internal/cluster"
	"sciview/internal/costmodel"
	"sciview/internal/engine"
	"sciview/internal/metrics"
	"sciview/internal/planner"
	"sciview/internal/repair"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// Errors returned by Submit.
var (
	// ErrClosed reports a submission to (or drained out of) a closed
	// service.
	ErrClosed = errors.New("service: closed")
	// ErrQueueFull reports that the admission queue is at MaxQueue.
	ErrQueueFull = errors.New("service: queue full")
	// ErrOverBudget reports a Strict-mode rejection: the query's
	// working-set estimate exceeds the memory budget and degraded
	// (spilling) execution is disabled.
	ErrOverBudget = errors.New("service: query estimate exceeds memory budget")
)

// Config tunes the admission controller.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (0 = default 4).
	MaxInFlight int
	// MemoryBudget bounds the summed working-set estimates of in-flight
	// queries, in bytes (0 = unlimited). A single query estimated above
	// the budget is admitted in degraded mode: its plan is stamped with
	// the budget so blocking operators (sort, aggregation, join builds)
	// spill to scratch disks instead of holding their full working set,
	// and the admission charge drops to the degraded (spilling) resident
	// estimate. Results are byte-identical to in-memory execution.
	MemoryBudget int64
	// Strict disables degraded admission: a query whose estimate exceeds
	// MemoryBudget is rejected with ErrOverBudget instead of being run
	// out-of-core.
	Strict bool
	// MaxQueue bounds waiting submissions; excess ones fail fast with
	// ErrQueueFull (0 = unlimited).
	MaxQueue int
	// Force is an explicit override of the planner's per-query cost-model
	// engine choice: "ij" or "gh" pins every submission to that engine.
	// The default "" lets the Estimator decide per query — IJ vs GH from
	// the Section 5 models under the current (online-calibrated)
	// constants. Leave it empty unless an experiment needs a fixed engine.
	Force string
	// AlphaBuild and AlphaLookup preset the static layer's cost-model CPU
	// constants; zero triggers a one-time calibration in New. The online
	// calibration layer refines them from observed runs either way.
	AlphaBuild  float64
	AlphaLookup float64
	// NoCalibrate pins the planner to the static configuration layer:
	// observed run costs are not folded back and decisions always use the
	// configured simio rates. Default false (adaptive planning on).
	NoCalibrate bool
	// Prefetch and Parallelism are server-side defaults for the matching
	// engine.Request knobs, applied to submitted queries that leave them
	// zero (a query may still set its own values).
	Prefetch    int
	Parallelism int
	// Metrics, when set, registers the service's live observability
	// surface: admission outcome counters, queue-depth / in-flight /
	// memory-budget gauges, and queue-wait plus end-to-end query latency
	// histograms. Nil keeps the hot paths on no-op instruments.
	Metrics *metrics.Registry
}

// Query is one submission.
type Query struct {
	Req engine.Request
	// Priority orders waiting queries: higher runs sooner; ties are FIFO.
	Priority int
}

// SQL is one SQL-statement submission for SubmitSQL.
type SQL struct {
	Query string
	// Priority orders waiting queries: higher runs sooner; ties are FIFO.
	Priority int
}

// Response reports one executed query.
type Response struct {
	Result   *engine.Result
	Decision *planner.Decision
	// Rows holds the result rows (SubmitSQL only).
	Rows *tuple.SubTable
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
	// Weight is the working-set estimate charged against the budget.
	Weight int64
	// Degraded reports that the query ran out-of-core: its estimate
	// exceeded the memory budget, so its operators were budgeted to
	// spill and the charge above is the degraded resident estimate.
	Degraded bool
}

// Stats is the service-level accounting snapshot.
type Stats struct {
	Submitted int64 // accepted into the queue
	Admitted  int64 // dispatched to an engine
	Rejected  int64 // refused: queue full, service closed, or over budget (Strict)
	Cancelled int64 // context ended while queued or running
	Completed int64
	Degraded  int64 // admitted in degraded (spilling) mode
	Failed    int64 // engine error other than cancellation
	// Recovered counts completed queries whose execution window saw
	// fault-recovery activity (retries, failovers, node recoveries). Under
	// concurrency a neighbor's recovery can be attributed here, so treat it
	// as "completed despite faults", not an exact per-query count.
	Recovered int64

	QueuePeak    int // max queue length observed
	InFlightPeak int // max concurrent queries observed

	// QueueWait accumulates admission waits of admitted queries.
	QueueWait time.Duration

	// Dedup aggregates the compute nodes' singleflight counters: Leads
	// is actual BDS fetches led, Shared is fetches satisfied by joining
	// another query's in-flight fetch.
	Dedup cache.FlightStats

	// Health is the cluster's cumulative fault-tolerance accounting
	// (retries, failovers, breaker trips, recoveries, rebuilds).
	Health cluster.HealthStats

	// Repair is the storage tier's self-healing accounting (catch-up
	// replays, re-replicated chunks, under-replication exposure, per-node
	// lifecycle and version lag). Zero when no repair manager is attached.
	Repair repair.Stats
}

// Service is a running concurrent query service over one cluster.
type Service struct {
	cl  *cluster.Cluster
	pl  *planner.Planner
	cfg Config
	rep *repair.Manager // optional; set via AttachRepair

	mu       sync.Mutex
	drained  *sync.Cond // signaled when inflight drops to zero
	queue    waiterHeap
	seq      int64
	inflight int
	memUsed  int64
	closed   bool
	stats    Stats
	met      svcMetrics
}

// svcMetrics holds the service's live-registry handles (nil no-ops when
// Config.Metrics is unset).
type svcMetrics struct {
	submitted  *metrics.Counter
	admitted   *metrics.Counter
	rejected   *metrics.Counter
	cancelled  *metrics.Counter
	completed  *metrics.Counter
	failed     *metrics.Counter
	degraded   *metrics.Counter
	queueWait  *metrics.Histogram
	runLatency *metrics.Histogram
}

// New assembles a service over a cluster. The cost-model CPU constants
// are calibrated once here (unless preset in cfg), so concurrent Submits
// never race on planner state.
func New(cl *cluster.Cluster, cfg Config) *Service {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.AlphaBuild <= 0 || cfg.AlphaLookup <= 0 {
		cfg.AlphaBuild, cfg.AlphaLookup = costmodel.Calibrate(1 << 16)
	}
	pl := planner.New()
	pl.AlphaBuild = cfg.AlphaBuild
	pl.AlphaLookup = cfg.AlphaLookup
	pl.Force = cfg.Force
	if cfg.NoCalibrate {
		pl.Est = nil
	} else {
		pl.Est.AttachMetrics(cfg.Metrics)
	}
	s := &Service{cl: cl, pl: pl, cfg: cfg}
	s.drained = sync.NewCond(&s.mu)
	// Nil-safe: with cfg.Metrics == nil every handle is a no-op.
	reg := cfg.Metrics
	s.met = svcMetrics{
		submitted:  reg.Counter("sciview_queries_total", "Query submissions by outcome.", "outcome", "submitted"),
		admitted:   reg.Counter("sciview_queries_total", "Query submissions by outcome.", "outcome", "admitted"),
		rejected:   reg.Counter("sciview_queries_total", "Query submissions by outcome.", "outcome", "rejected"),
		cancelled:  reg.Counter("sciview_queries_total", "Query submissions by outcome.", "outcome", "cancelled"),
		completed:  reg.Counter("sciview_queries_total", "Query submissions by outcome.", "outcome", "completed"),
		failed:     reg.Counter("sciview_queries_total", "Query submissions by outcome.", "outcome", "failed"),
		degraded:   reg.Counter("sciview_queries_total", "Query submissions by outcome.", "outcome", "degraded"),
		queueWait:  reg.Histogram("sciview_queue_wait_seconds", "Admission queue wait of admitted queries.", nil),
		runLatency: reg.Histogram("sciview_query_seconds", "End-to-end execution latency of admitted queries.", nil),
	}
	reg.GaugeFunc("sciview_queue_depth", "Queries waiting for admission.", func() float64 {
		return float64(s.QueueLen())
	})
	reg.GaugeFunc("sciview_inflight", "Queries currently executing.", func() float64 {
		return float64(s.InFlight())
	})
	reg.GaugeFunc("sciview_mem_used_bytes", "Working-set estimate bytes charged by in-flight queries.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.memUsed)
	})
	return s
}

// Submit plans, queues and executes one query, blocking until it
// completes, fails, or ctx ends. It is safe for any number of concurrent
// callers. The request is always run in shared mode; Result.Traffic and
// Result.Cache therefore report cumulative cluster counters.
func (s *Service) Submit(ctx context.Context, q Query) (*Response, error) {
	// Pin the query to the catalog version current at submission (unless
	// the caller pinned one itself): planning and execution then resolve
	// identical chunk sets even if an append batch commits in between, and
	// the result reflects a consistent dataset snapshot.
	if q.Req.AsOf == 0 {
		q.Req.AsOf = s.cl.Catalog.Version()
	}
	eng, dec, err := s.pl.Decide(s.cl, q.Req)
	if err != nil {
		return nil, err
	}
	weight := rawWeight(dec.Params)
	degraded := s.cfg.MemoryBudget > 0 && weight > s.cfg.MemoryBudget
	if degraded {
		if s.cfg.Strict {
			s.markRejected()
			return nil, fmt.Errorf("service: estimate %d bytes over budget %d: %w",
				weight, s.cfg.MemoryBudget, ErrOverBudget)
		}
		// Degraded admission: the engine bounds its build sides to the
		// budget (spilling oversized partitions through scratch), so the
		// charge is the budget itself, not the unbounded working set.
		weight = s.cfg.MemoryBudget
		s.markDegraded()
	}
	w, queueWait, err := s.admit(ctx, q.Priority, weight)
	if err != nil {
		return nil, err
	}
	req := q.Req
	req.Shared = true
	if degraded && (req.MemoryBudget == 0 || req.MemoryBudget > s.cfg.MemoryBudget) {
		req.MemoryBudget = s.cfg.MemoryBudget
	}
	if req.Prefetch == 0 {
		req.Prefetch = s.cfg.Prefetch
	}
	if req.Parallelism == 0 {
		req.Parallelism = s.cfg.Parallelism
	}
	req.Trace.Span("service", trace.KindQueue, eng.Name(), time.Now().Add(-queueWait), w.weight, 0)
	runStart := time.Now()
	before := s.cl.HealthStats()
	res, err := eng.RunContext(ctx, s.cl, req)
	recovered := err == nil && healthActivity(s.cl.HealthStats())-healthActivity(before) > 0
	s.met.runLatency.ObserveSince(runStart)
	s.finish(w, queueWait, err)
	if err != nil {
		return nil, err
	}
	// Close the loop: fold the run's measured costs into the calibration
	// layer so the next decision tracks the hardware, not the config.
	// (SubmitSQL feeds the same estimator through ExecLowered.)
	s.pl.Observe(res)
	if recovered {
		s.mu.Lock()
		s.stats.Recovered++
		s.mu.Unlock()
	}
	req.Trace.Span("service", trace.KindQuery, eng.Name(), runStart, 0, res.Tuples)
	return &Response{
		Result:    res,
		Decision:  dec,
		QueueWait: queueWait,
		Weight:    w.weight,
		Degraded:  degraded,
	}, nil
}

// Executor returns a SQL executor over the service's cluster that shares
// the service's pre-calibrated planner (CPU constants fixed in New, Force
// applied), so concurrent SubmitSQL calls never race on planner state.
// Define views through it, then pass it to SubmitSQL.
func (s *Service) Executor() *planner.Executor {
	ex := planner.NewExecutor(s.cl)
	ex.Planner = s.pl
	ex.Metrics = s.cfg.Metrics
	return ex
}

// SubmitSQL parses, plans, queues and executes one SQL SELECT through the
// streaming plan layer. The statement is lowered before admission so the
// memory budget is charged with the plan's own resident-set bound — which
// covers scans, blocking sorts and aggregation, not just the join working
// set the cost model prices. Join-backed plans run in shared mode with the
// service's prefetch/parallelism defaults, exactly like Submit.
//
// ex must come from Executor (or otherwise share a planner whose CPU
// constants are already set): a planner that self-calibrates on first use
// is not safe under concurrent submissions.
func (s *Service) SubmitSQL(ctx context.Context, ex *planner.Executor, q SQL) (*Response, error) {
	l, err := ex.Lower(q.Query)
	if err != nil {
		return nil, err
	}
	weight := l.Plan.MemoryEstimate()
	if weight < 1 {
		weight = 1
	}
	degraded := false
	if s.cfg.MemoryBudget > 0 && weight > s.cfg.MemoryBudget {
		if s.cfg.Strict {
			s.markRejected()
			return nil, fmt.Errorf("service: estimate %d bytes over budget %d: %w",
				weight, s.cfg.MemoryBudget, ErrOverBudget)
		}
		// Degraded admission: stamp the plan with the budget so its
		// blocking operators run out-of-core, and charge the degraded
		// (spilling) resident estimate instead of rejecting or running
		// the query alone at full width. Results are byte-identical.
		l.Plan.SetBudget(s.cfg.MemoryBudget)
		weight = l.Plan.DegradedEstimate()
		if weight < 1 {
			weight = 1
		}
		if weight > s.cfg.MemoryBudget {
			weight = s.cfg.MemoryBudget
		}
		degraded = true
		s.markDegraded()
	}
	w, queueWait, err := s.admit(ctx, q.Priority, weight)
	if err != nil {
		return nil, err
	}
	name := "scan"
	if l.Join != nil {
		l.Join.Req.Shared = true
		if l.Join.Req.Prefetch == 0 {
			l.Join.Req.Prefetch = s.cfg.Prefetch
		}
		if l.Join.Req.Parallelism == 0 {
			l.Join.Req.Parallelism = s.cfg.Parallelism
		}
		name = l.Decision.Chosen
	}
	ex.Trace.Span("service", trace.KindQueue, name, time.Now().Add(-queueWait), w.weight, 0)
	runStart := time.Now()
	before := s.cl.HealthStats()
	out, err := ex.ExecLowered(ctx, l)
	recovered := err == nil && healthActivity(s.cl.HealthStats())-healthActivity(before) > 0
	s.met.runLatency.ObserveSince(runStart)
	s.finish(w, queueWait, err)
	if err != nil {
		return nil, err
	}
	if recovered {
		s.mu.Lock()
		s.stats.Recovered++
		s.mu.Unlock()
	}
	var tuples int64
	if out.Rows != nil {
		tuples = int64(out.Rows.NumRows())
	}
	ex.Trace.Span("service", trace.KindQuery, name, runStart, 0, tuples)
	return &Response{
		Result:    out.Result,
		Decision:  out.Decision,
		Rows:      out.Rows,
		QueueWait: queueWait,
		Weight:    w.weight,
		Degraded:  degraded,
	}, nil
}

// admit enqueues a submission and blocks until it is admitted, rejected,
// or ctx ends. On success the returned waiter holds an execution slot the
// caller must release via finish.
func (s *Service) admit(ctx context.Context, pri int, weight int64) (*waiter, time.Duration, error) {
	w := &waiter{pri: pri, weight: weight, ready: make(chan struct{})}
	enqueued := time.Now()

	s.mu.Lock()
	if s.closed {
		s.stats.Rejected++
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, 0, ErrClosed
	}
	if s.cfg.MaxQueue > 0 && s.queue.Len() >= s.cfg.MaxQueue {
		s.stats.Rejected++
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, 0, ErrQueueFull
	}
	s.seq++
	w.seq = s.seq
	heap.Push(&s.queue, w)
	s.stats.Submitted++
	s.met.submitted.Inc()
	if n := s.queue.Len(); n > s.stats.QueuePeak {
		s.stats.QueuePeak = n
	}
	s.dispatchLocked()
	s.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil { // drained out of the queue by Close
			return nil, 0, w.err
		}
	case <-ctx.Done():
		s.mu.Lock()
		if !w.admitted && w.err == nil {
			heap.Remove(&s.queue, w.index)
			s.stats.Cancelled++
			s.mu.Unlock()
			s.met.cancelled.Inc()
			return nil, 0, ctx.Err()
		}
		s.mu.Unlock()
		// Admission (or a Close rejection) raced the cancellation; the
		// ready channel is closed (or about to be).
		<-w.ready
		if w.err != nil {
			return nil, 0, w.err
		}
		s.finish(w, time.Since(enqueued), ctx.Err())
		return nil, 0, ctx.Err()
	}
	return w, time.Since(enqueued), nil
}

// rawWeight estimates a query's resident working set from the cost-model
// parameters: the build (left) side, which IJ caches and GH buffers
// across the cluster, plus one streaming right sub-table per joiner.
func rawWeight(p costmodel.Params) int64 {
	w := p.T*int64(p.RSR) + int64(p.Nj)*p.CS*int64(p.RSS)
	if w < 1 {
		w = 1
	}
	return w
}

// markDegraded counts one degraded-mode admission.
func (s *Service) markDegraded() {
	s.mu.Lock()
	s.stats.Degraded++
	s.mu.Unlock()
	s.met.degraded.Inc()
}

// markRejected counts one strict-mode over-budget refusal.
func (s *Service) markRejected() {
	s.mu.Lock()
	s.stats.Rejected++
	s.mu.Unlock()
	s.met.rejected.Inc()
}

// dispatchLocked admits queued queries while capacity allows. Caller
// holds s.mu.
func (s *Service) dispatchLocked() {
	for s.queue.Len() > 0 {
		if s.inflight >= s.cfg.MaxInFlight {
			return
		}
		w := s.queue[0]
		if s.cfg.MemoryBudget > 0 && s.inflight > 0 && s.memUsed+w.weight > s.cfg.MemoryBudget {
			return
		}
		heap.Pop(&s.queue)
		w.admitted = true
		s.inflight++
		s.memUsed += w.weight
		s.stats.Admitted++
		s.met.admitted.Inc()
		if s.inflight > s.stats.InFlightPeak {
			s.stats.InFlightPeak = s.inflight
		}
		close(w.ready)
	}
}

// finish releases an admitted query's slot and dispatches successors.
func (s *Service) finish(w *waiter, queueWait time.Duration, err error) {
	s.mu.Lock()
	s.inflight--
	s.memUsed -= w.weight
	s.stats.QueueWait += queueWait
	var outcome *metrics.Counter
	switch {
	case err == nil:
		s.stats.Completed++
		outcome = s.met.completed
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.stats.Cancelled++
		outcome = s.met.cancelled
	default:
		s.stats.Failed++
		outcome = s.met.failed
	}
	s.dispatchLocked()
	if s.inflight == 0 {
		s.drained.Broadcast()
	}
	s.mu.Unlock()
	outcome.Inc()
	s.met.queueWait.Observe(queueWait.Seconds())
}

// healthActivity sums the counters that indicate a run hit (and survived)
// injected or real faults.
func healthActivity(h cluster.HealthStats) int64 {
	return h.Retries + h.Failovers + h.Recoveries + h.Rebuilds
}

// AttachRepair surfaces a repair manager's accounting through the
// service's stats (and stats RPC). The manager's lifecycle stays with the
// caller — attach does not Start or Stop it.
func (s *Service) AttachRepair(m *repair.Manager) {
	s.mu.Lock()
	s.rep = m
	s.mu.Unlock()
}

// Stats snapshots the service counters, including the cluster's fetch
// deduplication and fault-recovery totals.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	rep := s.rep
	s.mu.Unlock()
	st.Dedup = s.cl.FlightStats()
	st.Health = s.cl.HealthStats()
	if rep != nil {
		st.Repair = rep.Stats()
	}
	return st
}

// InFlight reports the number of currently executing queries.
func (s *Service) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// QueueLen reports the number of queries waiting for admission.
func (s *Service) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// Close drains the service: new submissions are refused, queries still
// waiting for admission fail with ErrClosed, and Close blocks until every
// in-flight query has finished. It is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		for s.queue.Len() > 0 {
			w := heap.Pop(&s.queue).(*waiter)
			w.err = ErrClosed
			s.stats.Rejected++
			close(w.ready)
		}
	}
	for s.inflight > 0 {
		s.drained.Wait()
	}
	return nil
}

// String renders a one-line stats summary.
func (st Stats) String() string {
	total := st.Dedup.Leads + st.Dedup.Shared
	dedup := 0.0
	if total > 0 {
		dedup = float64(st.Dedup.Shared) / float64(total)
	}
	s := fmt.Sprintf(
		"submitted %d admitted %d completed %d failed %d cancelled %d rejected %d | queue peak %d inflight peak %d wait %v | fetch dedup %.0f%% (%d shared / %d led)",
		st.Submitted, st.Admitted, st.Completed, st.Failed, st.Cancelled, st.Rejected,
		st.QueuePeak, st.InFlightPeak, st.QueueWait.Round(time.Millisecond),
		dedup*100, st.Dedup.Shared, st.Dedup.Leads)
	if st.Degraded > 0 {
		s += fmt.Sprintf(" | degraded %d (over budget, spilled)", st.Degraded)
	}
	if healthActivity(st.Health)+st.Health.BreakerTrips > 0 {
		s += fmt.Sprintf(" | health: %d retries %d failovers %d trips %d recoveries %d rebuilds, %d queries recovered",
			st.Health.Retries, st.Health.Failovers, st.Health.BreakerTrips,
			st.Health.Recoveries, st.Health.Rebuilds, st.Recovered)
	}
	if !st.Repair.Zero() {
		s += fmt.Sprintf(" | repair: %d catchups %d chunks %d bytes %d rebuilds %d underreplicated, nodes %v behind %v",
			st.Repair.CatchUps, st.Repair.ChunksRepaired, st.Repair.BytesRepaired,
			st.Repair.ObjectsRebuilt, st.Repair.UnderReplicated,
			st.Repair.NodeStates, st.Repair.VersionsBehind)
	}
	return s
}

// waiter is one queued submission.
type waiter struct {
	pri      int
	seq      int64
	weight   int64
	ready    chan struct{}
	err      error // set before close(ready) when rejected by Close
	admitted bool
	index    int // heap position, for mid-queue removal on cancellation
}

// waiterHeap orders by priority (higher first), then FIFO by sequence.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}
