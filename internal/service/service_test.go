package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/ij"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/transport"
	"sciview/internal/tuple"
)

// testAlphas preset the cost-model CPU constants so tests skip the
// one-time calibration measurement.
const testAlpha = 1e-9

func makeCluster(t *testing.T, ns, nj int, cacheBytes int64, readBw float64) *cluster.Cluster {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid:         partition.D(8, 8, 4),
		LeftPart:     partition.D(2, 2, 4),
		RightPart:    partition.D(2, 2, 4),
		StorageNodes: ns,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: ns, ComputeNodes: nj,
		CacheBytes: cacheBytes, DiskReadBw: readBw,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func testReq() engine.Request {
	return engine.Request{
		LeftTable: "T1", RightTable: "T2", JoinAttrs: []string{"x", "y", "z"},
	}
}

func newService(cl *cluster.Cluster, cfg Config) *Service {
	cfg.AlphaBuild, cfg.AlphaLookup = testAlpha, testAlpha
	return New(cl, cfg)
}

// bdsFetches sums the storage nodes' served-sub-table counters (monotonic
// across resets; callers measure deltas).
func bdsFetches(cl *cluster.Cluster) int64 {
	var n int64
	for _, sn := range cl.Storage {
		n += sn.BDS.Stats.SubTablesServed.Load()
	}
	return n
}

// waitInFlight polls until the service reports n executing queries.
func waitInFlight(t *testing.T, s *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() != n {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached %d (at %d)", n, s.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentQueriesMatchSerialAndDedup is the subsystem's acceptance
// test: 8 identical queries run concurrently must (a) each produce the
// serial engine's result and (b) cause exactly as many BDS sub-table
// transfers as ONE query — the flight groups and shared caches collapse
// the other 7 queries' fetches.
func TestConcurrentQueriesMatchSerialAndDedup(t *testing.T) {
	cl := makeCluster(t, 2, 2, 32<<20, 0)

	serial, err := ij.New().Run(cl, testReq())
	if err != nil {
		t.Fatal(err)
	}
	fetchesSingle := bdsFetches(cl)
	if fetchesSingle == 0 {
		t.Fatal("serial run served no sub-tables")
	}

	cl.Reset() // cold caches again for the concurrent phase
	base := bdsFetches(cl)
	svc := newService(cl, Config{MaxInFlight: 8, Force: "ij"})
	defer svc.Close()

	const n = 8
	resps := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = svc.Submit(context.Background(), Query{Req: testReq()})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if resps[i].Result.Tuples != serial.Tuples {
			t.Errorf("query %d: %d tuples, serial produced %d", i, resps[i].Result.Tuples, serial.Tuples)
		}
	}
	if delta := bdsFetches(cl) - base; delta != fetchesSingle {
		t.Errorf("8 concurrent queries caused %d BDS fetches, want %d (single-query count)",
			delta, fetchesSingle)
	}
	st := svc.Stats()
	if st.Completed != n || st.Admitted != n {
		t.Errorf("stats: %+v", st)
	}
}

// TestCancelledWhileQueued: with one execution slot busy, a queued
// query's cancellation must return context.Canceled promptly and leave
// the queue serviceable.
func TestCancelledWhileQueued(t *testing.T) {
	// ~31ms per sub-table fetch (256 B at 8 KiB/s) keeps the first query
	// busy long enough to hold the slot.
	cl := makeCluster(t, 2, 1, 32<<20, 8192)
	svc := newService(cl, Config{MaxInFlight: 1, Force: "ij"})
	defer svc.Close()

	firstErr := make(chan error, 1)
	go func() {
		_, err := svc.Submit(context.Background(), Query{Req: testReq()})
		firstErr <- err
	}()
	waitInFlight(t, svc, 1)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := svc.Submit(ctx, Query{Req: testReq()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-cancelled query: err = %v, want context.Canceled", err)
	}
	if wait := time.Since(start); wait > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", wait)
	}

	if err := <-firstErr; err != nil {
		t.Fatalf("first query: %v", err)
	}
	// The queue must still dispatch: a third query (cache-warm now) runs.
	if _, err := svc.Submit(context.Background(), Query{Req: testReq()}); err != nil {
		t.Fatalf("queue wedged after cancellation: %v", err)
	}
	if st := svc.Stats(); st.Cancelled != 1 {
		t.Errorf("cancelled count = %d, want 1 (%+v)", st.Cancelled, st)
	}
}

// TestCancelledWhileRunning: cancelling an admitted query's context must
// abort it mid-join with context.Canceled and free its slot.
func TestCancelledWhileRunning(t *testing.T) {
	cl := makeCluster(t, 2, 1, 32<<20, 8192)
	svc := newService(cl, Config{MaxInFlight: 1, Force: "ij"})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	_, err := svc.Submit(ctx, Query{Req: testReq()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("running-then-cancelled query: err = %v, want context.Canceled", err)
	}
	// Slot released: the next query completes.
	if _, err := svc.Submit(context.Background(), Query{Req: testReq()}); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
}

// TestPriorityOrdersQueue: among waiting queries, higher priority runs
// first; FIFO breaks ties.
func TestPriorityOrdersQueue(t *testing.T) {
	cl := makeCluster(t, 2, 1, 32<<20, 8192)
	svc := newService(cl, Config{MaxInFlight: 1, Force: "ij"})
	defer svc.Close()

	blockErr := make(chan error, 1)
	go func() {
		_, err := svc.Submit(context.Background(), Query{Req: testReq()})
		blockErr <- err
	}()
	waitInFlight(t, svc, 1)

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	submit := func(name string, pri int) {
		defer wg.Done()
		if _, err := svc.Submit(context.Background(), Query{Req: testReq(), Priority: pri}); err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	wg.Add(2)
	go submit("low", 0)
	// Ensure "low" is queued before "high" so FIFO alone would pick it.
	deadline := time.Now().Add(5 * time.Second)
	for svc.QueueLen() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("low-priority query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	go submit("high", 5)
	for svc.QueueLen() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("high-priority query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if err := <-blockErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(order) != 2 || order[0] != "high" {
		t.Errorf("completion order = %v, want [high low]", order)
	}
}

// TestQueueFull: MaxQueue bounds waiting submissions with a fast failure.
func TestQueueFull(t *testing.T) {
	cl := makeCluster(t, 2, 1, 32<<20, 8192)
	svc := newService(cl, Config{MaxInFlight: 1, MaxQueue: 1, Force: "ij"})
	defer svc.Close()

	bg := make(chan error, 2)
	go func() {
		_, err := svc.Submit(context.Background(), Query{Req: testReq()})
		bg <- err
	}()
	waitInFlight(t, svc, 1)
	go func() {
		_, err := svc.Submit(context.Background(), Query{Req: testReq()})
		bg <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.QueueLen() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := svc.Submit(context.Background(), Query{Req: testReq()}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third query: err = %v, want ErrQueueFull", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-bg; err != nil {
			t.Fatal(err)
		}
	}
}

// TestMemoryBudgetSerializes: a budget below two queries' combined
// estimates must keep them from overlapping even with free slots.
func TestMemoryBudgetSerializes(t *testing.T) {
	cl := makeCluster(t, 2, 2, 32<<20, 0)
	// Probe the estimate the service will charge.
	probe := newService(cl, Config{MaxInFlight: 8, Force: "ij"})
	resp, err := probe.Submit(context.Background(), Query{Req: testReq()})
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	weight := resp.Weight

	svc := newService(cl, Config{
		MaxInFlight: 8, Force: "ij", MemoryBudget: weight + weight/2,
	})
	defer svc.Close()
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = svc.Submit(context.Background(), Query{Req: testReq()})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if st := svc.Stats(); st.InFlightPeak != 1 {
		t.Errorf("in-flight peak = %d, want 1 under the tight budget (%+v)", st.InFlightPeak, st)
	}
}

// TestCloseDrains: Close refuses new work, fails queued queries with
// ErrClosed, and returns only after in-flight queries finish.
func TestCloseDrains(t *testing.T) {
	cl := makeCluster(t, 2, 1, 32<<20, 8192)
	svc := newService(cl, Config{MaxInFlight: 1, Force: "ij"})

	running := make(chan error, 1)
	go func() {
		_, err := svc.Submit(context.Background(), Query{Req: testReq()})
		running <- err
	}()
	waitInFlight(t, svc, 1)
	queued := make(chan error, 1)
	go func() {
		_, err := svc.Submit(context.Background(), Query{Req: testReq()})
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.QueueLen() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// Close returned, so the in-flight query must already have finished.
	select {
	case err := <-running:
		if err != nil {
			t.Fatalf("in-flight query during drain: %v", err)
		}
	default:
		t.Fatal("Close returned before the in-flight query finished")
	}
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued query during drain: err = %v, want ErrClosed", err)
	}
	if _, err := svc.Submit(context.Background(), Query{Req: testReq()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v, want ErrClosed", err)
	}
}

// TestServeRPC exercises the gob wire path over real TCP: query and
// stats round-trips through a served service.
func TestServeRPC(t *testing.T) {
	cl := makeCluster(t, 2, 2, 32<<20, 0)
	serial, err := ij.New().Run(cl, testReq())
	if err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	svc := newService(cl, Config{MaxInFlight: 4, Force: "ij"})
	defer svc.Close()

	tr := transport.NewTCP()
	closer, err := svc.ServeOn(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	conn, err := tr.Dial(DefaultServiceName)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn)
	defer client.Close()

	resp, err := client.Query(context.Background(), Query{Req: testReq(), Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Tuples != serial.Tuples {
		t.Errorf("remote query: %d tuples, want %d", resp.Result.Tuples, serial.Tuples)
	}
	if resp.Result.Engine != "ij" {
		t.Errorf("remote engine = %q", resp.Result.Engine)
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 {
		t.Errorf("remote stats completed = %d, want 1 (%+v)", st.Completed, st)
	}
}

// TestSubmitSQLMatchesExecutor pushes SQL statements through the service's
// admission path: every concurrent submission must return rows
// byte-identical to the materialized reference executor, and admission
// must charge a positive plan-derived weight.
func TestSubmitSQLMatchesExecutor(t *testing.T) {
	cl := makeCluster(t, 2, 2, 32<<20, 0)
	svc := newService(cl, Config{MaxInFlight: 4, MemoryBudget: 1 << 30, Force: "ij"})
	defer svc.Close()
	ex := svc.Executor()
	if _, err := ex.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	ref := svc.Executor()
	ref.Materialize = true
	if _, err := ref.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT wp, oilp FROM V WHERE x BETWEEN 0 AND 5 ORDER BY wp DESC LIMIT 10",
		"SELECT AVG(wp) FROM V GROUP BY z ORDER BY z",
		"SELECT COUNT(*) FROM T1",
	}
	for _, q := range queries {
		want, err := ref.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		const n = 3
		resps := make([]*Response, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resps[i], errs[i] = svc.SubmitSQL(context.Background(), ex, SQL{Query: q})
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("%s [%d]: %v", q, i, errs[i])
			}
			if resps[i].Weight < 1 {
				t.Errorf("%s [%d]: weight = %d", q, i, resps[i].Weight)
			}
			assertSameTable(t, q, want.Rows, resps[i].Rows)
		}
	}

	if _, err := svc.SubmitSQL(context.Background(), ex,
		SQL{Query: "CREATE VIEW W AS SELECT * FROM T1 JOIN T2 ON (x)"}); err == nil {
		t.Error("SubmitSQL accepted a non-SELECT statement")
	}
}

func assertSameTable(t *testing.T, q string, want, got *tuple.SubTable) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil rows", q)
	}
	wn, gn := want.Schema.Names(), got.Schema.Names()
	if len(wn) != len(gn) {
		t.Fatalf("%s: schema %v, want %v", q, gn, wn)
	}
	for i := range wn {
		if wn[i] != gn[i] {
			t.Fatalf("%s: schema %v, want %v", q, gn, wn)
		}
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("%s: %d rows, want %d", q, got.NumRows(), want.NumRows())
	}
	for r := 0; r < want.NumRows(); r++ {
		for c := 0; c < want.Schema.NumAttrs(); c++ {
			if want.Value(r, c) != got.Value(r, c) {
				t.Fatalf("%s: row %d col %d = %v, want %v", q, r, c, got.Value(r, c), want.Value(r, c))
			}
		}
	}
}
