// This file is the RPC exposure of the query service over the transport
// layer: the "query" and "stats" methods speak gob-encoded frames, so a
// standalone process (cmd/sciview-serve) can serve many TCP clients while
// the admission controller and fetch deduplicator do their work behind
// one cluster.

package service

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"sciview/internal/cache"
	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/metadata"
	"sciview/internal/transport"
)

// DefaultServiceName is the transport registry name of the query service.
const DefaultServiceName = "queryservice"

// wireQuery is the gob frame of one remote submission. The client's
// context deadline travels as TimeoutMs, since the server cannot observe
// a remote caller's context directly.
type wireQuery struct {
	Left, Right string
	JoinAttrs   []string
	Filter      metadata.Range
	Project     []string
	WorkFactor  int
	Priority    int
	TimeoutMs   int64
}

// wireResult is the gob frame of one remote response.
type wireResult struct {
	Engine      string
	Tuples      int64
	ElapsedNs   int64
	QueueWaitNs int64
	Weight      int64
	Degraded    bool
	Traffic     cluster.Traffic
	Cache       cache.Stats
	Health      cluster.HealthStats
}

// wireStats is the gob frame of a Stats snapshot.
type wireStats struct {
	Stats Stats
}

// ServeOn registers the service's RPC handler with a transport under
// name ("" selects DefaultServiceName). Closing the returned closer
// unregisters the handler (and, on TCP, drains in-flight exchanges); it
// does not close the service itself.
func (s *Service) ServeOn(tr transport.Transport, name string) (io.Closer, error) {
	if name == "" {
		name = DefaultServiceName
	}
	return tr.Serve(name, s.handle)
}

// Handler exposes the RPC dispatch for callers that bind the listener
// themselves (e.g. ServeAddr with an explicit address).
func (s *Service) Handler() transport.Handler { return s.handle }

func (s *Service) handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "query":
		var wq wireQuery
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wq); err != nil {
			return nil, fmt.Errorf("service: decoding query: %w", err)
		}
		ctx := context.Background()
		if wq.TimeoutMs > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(wq.TimeoutMs)*time.Millisecond)
			defer cancel()
		}
		resp, err := s.Submit(ctx, Query{
			Req: engine.Request{
				LeftTable:  wq.Left,
				RightTable: wq.Right,
				JoinAttrs:  wq.JoinAttrs,
				Filter:     wq.Filter,
				Project:    wq.Project,
				WorkFactor: wq.WorkFactor,
			},
			Priority: wq.Priority,
		})
		if err != nil {
			return nil, err
		}
		return encodeGob(wireResult{
			Engine:      resp.Result.Engine,
			Tuples:      resp.Result.Tuples,
			ElapsedNs:   int64(resp.Result.Elapsed),
			QueueWaitNs: int64(resp.QueueWait),
			Weight:      resp.Weight,
			Degraded:    resp.Degraded,
			Traffic:     resp.Result.Traffic,
			Cache:       resp.Result.Cache,
			Health:      resp.Result.Health,
		})
	case "stats":
		return encodeGob(wireStats{Stats: s.Stats()})
	default:
		return nil, fmt.Errorf("service: unknown method %q", method)
	}
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Client is a remote handle on a served query service.
type Client struct {
	conn transport.Conn
}

// NewClient wraps a transport connection to a query service.
func NewClient(conn transport.Conn) *Client { return &Client{conn: conn} }

// Query submits one request and waits for its result. A ctx deadline is
// both observed locally (the call returns ctx.Err()) and shipped to the
// server, which cancels the query's execution when it expires.
func (c *Client) Query(ctx context.Context, q Query) (*Response, error) {
	wq := wireQuery{
		Left:       q.Req.LeftTable,
		Right:      q.Req.RightTable,
		JoinAttrs:  q.Req.JoinAttrs,
		Filter:     q.Req.Filter,
		Project:    q.Req.Project,
		WorkFactor: q.Req.WorkFactor,
		Priority:   q.Priority,
	}
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		wq.TimeoutMs = ms
	}
	payload, err := encodeGob(wq)
	if err != nil {
		return nil, err
	}
	body, err := c.conn.CallContext(ctx, "query", payload)
	if err != nil {
		return nil, err
	}
	var wr wireResult
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&wr); err != nil {
		return nil, fmt.Errorf("service: decoding result: %w", err)
	}
	return &Response{
		Result: &engine.Result{
			Engine:  wr.Engine,
			Tuples:  wr.Tuples,
			Elapsed: time.Duration(wr.ElapsedNs),
			Traffic: wr.Traffic,
			Cache:   wr.Cache,
			Health:  wr.Health,
		},
		QueueWait: time.Duration(wr.QueueWaitNs),
		Weight:    wr.Weight,
		Degraded:  wr.Degraded,
	}, nil
}

// Stats fetches the server's service-level counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	body, err := c.conn.CallContext(ctx, "stats", nil)
	if err != nil {
		return Stats{}, err
	}
	var ws wireStats
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&ws); err != nil {
		return Stats{}, fmt.Errorf("service: decoding stats: %w", err)
	}
	return ws.Stats, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }
