package service

import (
	"context"
	"strings"
	"testing"

	"sciview/internal/metrics"
	"sciview/internal/planner"
)

// adaptiveService builds a service over its own (identical, same-seed)
// cluster with the V view defined, plus a materialized reference executor
// reading through the same executor's views.
func adaptiveService(t *testing.T, cfg Config) (*Service, *planner.Executor) {
	t.Helper()
	cl := makeCluster(t, 2, 2, 32<<20, 0)
	svc := newService(cl, cfg)
	t.Cleanup(func() { svc.Close() })
	ex := svc.Executor()
	if _, err := ex.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	return svc, ex
}

// TestSubmitSQLCostModelDefault exercises the service's default decision
// path (Force unset): every query's engine comes from the Estimator, and
// the differential requirement holds — the calibrated service, the
// static-pinned service, and both forced services must all return
// byte-identical rows for order-pinned queries.
func TestSubmitSQLCostModelDefault(t *testing.T) {
	reg := metrics.NewRegistry()
	auto, autoEx := adaptiveService(t, Config{MaxInFlight: 2, Metrics: reg})
	static, staticEx := adaptiveService(t, Config{MaxInFlight: 2, NoCalibrate: true})
	ij, ijEx := adaptiveService(t, Config{MaxInFlight: 2, Force: "ij"})
	gh, ghEx := adaptiveService(t, Config{MaxInFlight: 2, Force: "gh"})

	// Total ORDER BY keys (the join row is identified by its cell) and
	// order-insensitive aggregates pin the bytes no matter which engine any
	// planner picks.
	corpus := []string{
		"SELECT * FROM V ORDER BY x, y, z",
		"SELECT x, y, z, wp, oilp FROM V WHERE x BETWEEN 0 AND 5 ORDER BY x, y, z",
		"SELECT z, COUNT(*), MIN(wp), MAX(oilp) FROM V GROUP BY z ORDER BY z",
		"SELECT COUNT(*) FROM V WHERE y < 4",
	}

	// Warm the adaptive service past MinSamples so the scored submissions
	// below actually run on calibrated constants.
	for i := 0; i < 3; i++ {
		if _, err := auto.SubmitSQL(context.Background(), autoEx, SQL{Query: corpus[0]}); err != nil {
			t.Fatal(err)
		}
	}

	sawCalibrated := false
	for _, q := range corpus {
		refIJ, err := ij.SubmitSQL(context.Background(), ijEx, SQL{Query: q})
		if err != nil {
			t.Fatalf("%s [forced ij]: %v", q, err)
		}
		refGH, err := gh.SubmitSQL(context.Background(), ghEx, SQL{Query: q})
		if err != nil {
			t.Fatalf("%s [forced gh]: %v", q, err)
		}
		// Sanity: the corpus really is engine-order-insensitive.
		assertSameTable(t, q+" [ij vs gh]", refIJ.Rows, refGH.Rows)

		for name, run := range map[string]struct {
			svc *Service
			ex  *planner.Executor
		}{"calibrated": {auto, autoEx}, "static": {static, staticEx}} {
			resp, err := run.svc.SubmitSQL(context.Background(), run.ex, SQL{Query: q})
			if err != nil {
				t.Fatalf("%s [%s]: %v", q, name, err)
			}
			if resp.Decision == nil {
				t.Fatalf("%s [%s]: no decision", q, name)
			}
			if resp.Decision.Forced {
				t.Errorf("%s [%s]: decision reports forced with Force unset", q, name)
			}
			if resp.Decision.Chosen != "ij" && resp.Decision.Chosen != "gh" {
				t.Errorf("%s [%s]: chose %q", q, name, resp.Decision.Chosen)
			}
			if name == "static" && resp.Decision.Calibrated {
				t.Errorf("%s: NoCalibrate service produced a calibrated decision", q)
			}
			if name == "calibrated" && resp.Decision.Calibrated {
				sawCalibrated = true
			}
			assertSameTable(t, q+" ["+name+"]", refIJ.Rows, resp.Rows)
		}
	}
	if !sawCalibrated {
		t.Error("warmed adaptive service never used calibrated constants")
	}

	// The decision counter and constants gauges ride the service's registry.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	scrape := sb.String()
	for _, want := range []string{
		`sciview_planner_decisions_total{calibrated="true",chosen=`,
		`sciview_planner_constant{constant="alpha_build_seconds"}`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}
