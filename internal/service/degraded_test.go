package service

import (
	"context"
	"errors"
	"testing"
)

// TestDegradedAdmissionSQL is the admission-control regression test for
// out-of-core execution: a SQL query whose resident estimate exceeds the
// service budget used to be clamped to run alone at full memory width.
// Now it must be admitted in degraded mode — plan stamped with the
// budget, charged the (smaller) degraded estimate, blocking operators
// spilling to scratch — with rows identical to the unbudgeted reference.
func TestDegradedAdmissionSQL(t *testing.T) {
	cl := makeCluster(t, 2, 2, 32<<20, 0)
	const budget = 1 << 10
	svc := newService(cl, Config{MaxInFlight: 4, MemoryBudget: budget, Force: "ij"})
	defer svc.Close()
	ex := svc.Executor()
	if _, err := ex.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	ref := svc.Executor()
	ref.Materialize = true
	if _, err := ref.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT x, y, COUNT(*), MIN(wp) FROM V GROUP BY x, y ORDER BY x DESC, y"
	want, err := ref.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.SubmitSQL(context.Background(), ex, SQL{Query: q})
	if err != nil {
		t.Fatalf("over-budget query rejected instead of degraded: %v", err)
	}
	if !resp.Degraded {
		t.Error("response not marked degraded; the estimate should exceed the 1 KiB budget")
	}
	if resp.Weight > budget {
		t.Errorf("degraded weight %d exceeds the budget %d", resp.Weight, budget)
	}
	assertSameTable(t, q, want.Rows, resp.Rows)

	// The old clamp ran the query fully in memory; degraded admission must
	// actually push work to scratch.
	if resp.Result == nil {
		t.Fatal("degraded run carried no engine result")
	}
	var spillBytes, spillParts int64
	for _, st := range resp.Result.Operators {
		spillBytes += st.SpillBytes
		spillParts += st.SpillParts
	}
	if spillBytes == 0 || spillParts == 0 {
		t.Errorf("degraded run recorded no spill (bytes=%d parts=%d): %+v",
			spillBytes, spillParts, resp.Result.Operators)
	}
	if st := svc.Stats(); st.Degraded != 1 {
		t.Errorf("stats degraded = %d, want 1 (%+v)", st.Degraded, st)
	}
}

// TestDegradedAdmissionRaw: the raw (cost-model-weighted) submission path
// degrades the same way — the request is stamped with the budget and the
// engine bounds its build sides with scratch round-trips.
func TestDegradedAdmissionRaw(t *testing.T) {
	cl := makeCluster(t, 2, 2, 32<<20, 0)
	const budget = 512
	svc := newService(cl, Config{MaxInFlight: 4, MemoryBudget: budget, Force: "ij"})
	defer svc.Close()

	resp, err := svc.Submit(context.Background(), Query{Req: testReq()})
	if err != nil {
		t.Fatalf("over-budget raw query rejected instead of degraded: %v", err)
	}
	if !resp.Degraded {
		t.Error("raw response not marked degraded")
	}
	if resp.Weight > budget {
		t.Errorf("degraded weight %d exceeds the budget %d", resp.Weight, budget)
	}
	if resp.Result.Observed.SpillWriteBytes == 0 || resp.Result.Observed.SpillReadBytes == 0 {
		t.Errorf("degraded engine run recorded no spill traffic: %+v", resp.Result.Observed)
	}
	if st := svc.Stats(); st.Degraded != 1 {
		t.Errorf("stats degraded = %d, want 1 (%+v)", st.Degraded, st)
	}
}

// TestStrictRejectsOverBudget: Strict restores the historical behavior —
// an over-budget estimate is rejected with ErrOverBudget on both
// submission paths, never silently degraded.
func TestStrictRejectsOverBudget(t *testing.T) {
	cl := makeCluster(t, 2, 2, 32<<20, 0)
	svc := newService(cl, Config{MaxInFlight: 4, MemoryBudget: 512, Strict: true, Force: "ij"})
	defer svc.Close()
	ex := svc.Executor()
	if _, err := ex.Exec("CREATE VIEW V AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}

	if _, err := svc.Submit(context.Background(), Query{Req: testReq()}); !errors.Is(err, ErrOverBudget) {
		t.Errorf("strict raw submit: err = %v, want ErrOverBudget", err)
	}
	if _, err := svc.SubmitSQL(context.Background(), ex,
		SQL{Query: "SELECT * FROM V ORDER BY x, y, z"}); !errors.Is(err, ErrOverBudget) {
		t.Errorf("strict SQL submit: err = %v, want ErrOverBudget", err)
	}
	st := svc.Stats()
	if st.Degraded != 0 {
		t.Errorf("strict mode counted %d degraded admissions", st.Degraded)
	}
	if st.Rejected != 2 {
		t.Errorf("strict mode counted %d rejections, want 2", st.Rejected)
	}
}
