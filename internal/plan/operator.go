package plan

import (
	"context"
	"fmt"
	"time"

	"sciview/internal/engine"
	"sciview/internal/tuple"
)

// Operator is the batch iterator one plan node executes as.
//
// Lifecycle: Open once, Next until (nil, io.EOF), Close exactly once
// (also after an error, and also when the consumer stops early — Close is
// how early termination propagates down the tree).
//
// Batch ownership: the sub-table returned by Next remains valid only
// until the next Next or Close call on the same operator; a consumer that
// retains rows must copy them out (AppendAll copies). Operators therefore
// recycle buffers freely — row staging goes through tuple.GetRow/PutRow —
// and never share a batch with two consumers.
type Operator interface {
	Open(ctx context.Context) error
	Next() (*tuple.SubTable, error)
	Close() error
	// Schema is the static schema every emitted batch carries.
	Schema() tuple.Schema
	// Stat exposes the operator's accounting; valid any time, final
	// after Close.
	Stat() *engine.OpStat
}

// opstat is the embedded accounting every operator shares.
type opstat struct {
	s engine.OpStat
}

func (o *opstat) Stat() *engine.OpStat { return &o.s }

// observe counts one emitted batch.
func (o *opstat) observe(st *tuple.SubTable) {
	o.s.Rows += int64(st.NumRows())
	o.s.Batches++
	o.s.Bytes += int64(st.Bytes())
}

// timed adds the elapsed time since start to the operator's busy clock;
// for operators with children this includes time spent waiting on the
// child, so the root's Busy approximates the drive time of the whole
// pipeline below it.
func (o *opstat) timed(start time.Time) {
	o.s.Busy += time.Since(start)
}

// Build constructs the operator tree for a plan. The returned slice lists
// every operator in root-first DFS order (for stats collection and
// tracing). Join input scans are descriptive and get no operator — the
// engine performs those fetches itself.
func Build(p *Plan) (Operator, []Operator, error) {
	var ops []Operator
	root, err := buildNode(p.Root, &ops)
	if err != nil {
		return nil, nil, err
	}
	return root, ops, nil
}

func buildNode(n Node, ops *[]Operator) (Operator, error) {
	switch t := n.(type) {
	case *ScanNode:
		if t.joinSide {
			return nil, fmt.Errorf("plan: join input scan %s cannot execute standalone", t.Table)
		}
		op := &scanOp{node: t}
		op.s.Op = t.describe()
		*ops = append(*ops, op)
		return op, nil
	case *JoinNode:
		op := &joinOp{node: t}
		op.s.Op = t.describe()
		*ops = append(*ops, op)
		return op, nil
	case *FilterNode:
		op := &filterOp{node: t}
		op.s.Op = t.describe()
		*ops = append(*ops, op)
		child, err := buildNode(t.Child, ops)
		if err != nil {
			return nil, err
		}
		op.child = child
		return op, nil
	case *ProjectNode:
		op := &projectOp{node: t}
		op.s.Op = t.describe()
		*ops = append(*ops, op)
		child, err := buildNode(t.Child, ops)
		if err != nil {
			return nil, err
		}
		op.child = child
		return op, nil
	case *AggregateNode:
		op := &aggregateOp{node: t}
		op.s.Op = t.describe()
		*ops = append(*ops, op)
		child, err := buildNode(t.Child, ops)
		if err != nil {
			return nil, err
		}
		op.child = child
		return op, nil
	case *SortNode:
		op := &sortOp{node: t}
		op.s.Op = t.describe()
		*ops = append(*ops, op)
		child, err := buildNode(t.Child, ops)
		if err != nil {
			return nil, err
		}
		op.child = child
		return op, nil
	case *LimitNode:
		op := &limitOp{node: t, remaining: t.N}
		op.s.Op = t.describe()
		*ops = append(*ops, op)
		child, err := buildNode(t.Child, ops)
		if err != nil {
			return nil, err
		}
		op.child = child
		return op, nil
	default:
		return nil, fmt.Errorf("plan: unknown node type %T", n)
	}
}
