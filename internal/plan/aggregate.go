package plan

import (
	"context"
	"io"
	"time"

	"sciview/internal/dds"
	"sciview/internal/tuple"
)

// aggregateOp is the blocking aggregation operator. To keep float
// accumulation byte-identical to the materialized distributed aggregation
// — which folded each joiner's output into its own dds.Partial and merged
// the partials in joiner order — it starts a new partial whenever the
// incoming batch ID changes (the reorder sink delivers each part's
// batches contiguously and in part order) and merges the partials in that
// same order at the end. For single-partition sources (table scans,
// Partitioned=false) every batch folds into one partial, matching the
// materialized single-input fold.
type aggregateOp struct {
	opstat
	node    *AggregateNode
	child   Operator
	emitted bool
}

func (o *aggregateOp) Schema() tuple.Schema { return o.node.schema }

func (o *aggregateOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *aggregateOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	if o.emitted {
		return nil, io.EOF
	}
	o.emitted = true

	n := o.node
	inSchema := o.child.Schema()
	var (
		parts []*dds.Partial
		cur   *dds.Partial
		curID tuple.ID
	)
	for {
		st, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if cur == nil || (n.Partitioned && st.ID != curID) {
			cur, err = dds.NewPartial(inSchema, n.Items, n.GroupBy, n.Having)
			if err != nil {
				return nil, err
			}
			parts = append(parts, cur)
			curID = st.ID
		}
		if err := cur.Fold(st); err != nil {
			return nil, err
		}
	}
	// Merge in part order into an empty base: group state lands exactly as
	// the materialized path's first-partial-accumulates merge produced it.
	base, err := dds.NewPartial(inSchema, n.Items, n.GroupBy, n.Having)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if err := base.Merge(p); err != nil {
			return nil, err
		}
	}
	out, err := base.Finalize(n.Having)
	if err != nil {
		return nil, err
	}
	o.s.PeakBytes = int64(out.Bytes())
	o.observe(out)
	return out, nil
}

func (o *aggregateOp) Close() error { return o.child.Close() }
