package plan

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"sciview/internal/dds"
	"sciview/internal/scratch"
	"sciview/internal/tuple"
)

// Spillable aggregation constants: partitions per split, recursion
// depth cap (a partition of one giant group cannot shrink), flush
// threshold for the pass-1 partition buffers, and the per-group state
// charge (accumulators + map overhead on top of the output record).
const (
	aggFanout     = 8
	aggMaxDepth   = 3
	aggFlushBytes = 16 << 10
	aggGroupOver  = 64
)

// aggregateOp is the blocking aggregation operator. To keep float
// accumulation byte-identical to the materialized distributed aggregation
// — which folded each joiner's output into its own dds.Partial and merged
// the partials in joiner order — it starts a new partial whenever the
// incoming batch ID changes (the reorder sink delivers each part's
// batches contiguously and in part order) and merges the partials in that
// same order at the end. For single-partition sources (table scans,
// Partitioned=false) every batch folds into one partial, matching the
// materialized single-input fold.
//
// When the estimated group state exceeds the stamped spill budget, the
// operator runs out-of-core instead: pass 1 hashes each row's group key
// and partitions the raw rows to scratch, tagging every block with its
// input-part ordinal; pass 2 replays one partition at a time, folding
// per-ordinal partials and merging them in ascending ordinal into the
// global base. Because a group's rows land wholly in one partition (the
// hash is a function of the group key), each group's accumulator sees
// exactly the same fold-then-merge sequence as the in-memory path, so
// the finalized output is byte-identical at any budget. A partition
// whose group state still exceeds the budget is re-partitioned with the
// next salt (skew recursion) before any of it reaches the base.
type aggregateOp struct {
	opstat
	node    *AggregateNode
	child   Operator
	emitted bool
	mgr     *scratch.Manager
}

func (o *aggregateOp) Schema() tuple.Schema { return o.node.schema }

func (o *aggregateOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *aggregateOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	if o.emitted {
		return nil, io.EOF
	}
	o.emitted = true

	n := o.node
	if n.SpillBudget > 0 && n.SpillDisk != nil && len(n.GroupBy) > 0 &&
		residentBytes(n) > n.SpillBudget {
		return o.nextExternal()
	}

	inSchema := o.child.Schema()
	var (
		parts []*dds.Partial
		cur   *dds.Partial
		curID tuple.ID
	)
	for {
		st, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if cur == nil || (n.Partitioned && st.ID != curID) {
			cur, err = dds.NewPartial(inSchema, n.Items, n.GroupBy, n.Having)
			if err != nil {
				return nil, err
			}
			parts = append(parts, cur)
			curID = st.ID
		}
		if err := cur.Fold(st); err != nil {
			return nil, err
		}
	}
	// Merge in part order into an empty base: group state lands exactly as
	// the materialized path's first-partial-accumulates merge produced it.
	base, err := dds.NewPartial(inSchema, n.Items, n.GroupBy, n.Having)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if err := base.Merge(p); err != nil {
			return nil, err
		}
	}
	out, err := base.Finalize(n.Having)
	if err != nil {
		return nil, err
	}
	o.s.PeakBytes = int64(out.Bytes())
	o.observe(out)
	return out, nil
}

func (o *aggregateOp) Close() error {
	if o.mgr != nil {
		o.s.SpillBytes = o.mgr.BytesWritten()
		o.s.SpillReadBytes = o.mgr.BytesRead()
		o.s.SpillParts = o.mgr.Files()
		o.mgr.ReleaseAll()
	}
	return o.child.Close()
}

// aggPart is one scratch partition awaiting replay.
type aggPart struct {
	f     *scratch.File
	salt  uint64
	depth int
}

// nextExternal is the out-of-core aggregation path.
func (o *aggregateOp) nextExternal() (*tuple.SubTable, error) {
	n := o.node
	inSchema := o.child.Schema()
	groupIdxs, err := inSchema.Indexes(n.GroupBy)
	if err != nil {
		return nil, err
	}
	o.mgr = scratch.NewManager(n.SpillDisk,
		fmt.Sprintf("plan/agg/r%d", spillSeq.Add(1)),
		n.SpillOwner, n.SpillTrace, nil)
	groupBytes := int64(n.schema.RecordSize() + aggGroupOver)

	// Pass 1: partition raw rows by group-key hash, preserving the input
	// part ordinal on every block.
	w := newAggWriter(o.mgr, inSchema, groupIdxs, 0, "p")
	ordinal := uint32(0)
	started := false
	var curID tuple.ID
	for {
		st, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if st.NumRows() == 0 {
			continue
		}
		if !started {
			curID = st.ID
			started = true
		} else if n.Partitioned && st.ID != curID {
			ordinal++
			curID = st.ID
		}
		if err := w.add(st, ordinal); err != nil {
			return nil, err
		}
	}
	parts, err := w.finish()
	if err != nil {
		return nil, err
	}

	// Pass 2: replay partition by partition, splitting skewed ones.
	base, err := dds.NewPartial(inSchema, n.Items, n.GroupBy, n.Having)
	if err != nil {
		return nil, err
	}
	var peakPart int64
	for len(parts) > 0 {
		pt := parts[0]
		parts = parts[1:]
		partials, ordinals, overflow, err := o.foldPartition(pt, inSchema, groupBytes)
		if err != nil {
			return nil, err
		}
		if overflow {
			// Skewed: too many groups for the budget. Nothing from this
			// partition has touched the base yet, so abandon the partials
			// and re-partition the raw rows with the next salt.
			sub := newAggWriter(o.mgr, inSchema, groupIdxs, pt.salt+1,
				fmt.Sprintf("s%d", pt.salt+1))
			if err := o.repartition(pt, inSchema, sub); err != nil {
				return nil, err
			}
			subParts, err := sub.finish()
			if err != nil {
				return nil, err
			}
			for i := range subParts {
				subParts[i].depth = pt.depth + 1
			}
			parts = append(parts, subParts...)
			o.mgr.Release(pt.f)
			continue
		}
		var state int64
		for _, ord := range ordinals {
			state += int64(partials[ord].Groups()) * groupBytes
		}
		if state > peakPart {
			peakPart = state
		}
		// Ascending ordinal: the same merge order the in-memory path uses.
		sort.Slice(ordinals, func(i, j int) bool { return ordinals[i] < ordinals[j] })
		for _, ord := range ordinals {
			if err := base.Merge(partials[ord]); err != nil {
				return nil, err
			}
		}
		o.mgr.Release(pt.f)
	}
	out, err := base.Finalize(n.Having)
	if err != nil {
		return nil, err
	}
	o.s.PeakBytes = peakPart + int64(base.Groups())*groupBytes + int64(out.Bytes())
	o.observe(out)
	return out, nil
}

// foldPartition streams one partition's blocks into per-ordinal
// partials. It stops early (overflow=true) as soon as the accumulated
// group state exceeds the budget and the partition may still recurse.
func (o *aggregateOp) foldPartition(pt aggPart, inSchema tuple.Schema, groupBytes int64) (map[uint32]*dds.Partial, []uint32, bool, error) {
	n := o.node
	rd, err := pt.f.Open()
	if err != nil {
		return nil, nil, false, err
	}
	partials := make(map[uint32]*dds.Partial)
	var ordinals []uint32
	var state int64
	for {
		ord, st, err := readAggBlock(rd, inSchema)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, false, err
		}
		p, ok := partials[ord]
		if !ok {
			p, err = dds.NewPartial(inSchema, n.Items, n.GroupBy, n.Having)
			if err != nil {
				return nil, nil, false, err
			}
			partials[ord] = p
			ordinals = append(ordinals, ord)
		}
		before := p.Groups()
		if err := p.Fold(st); err != nil {
			return nil, nil, false, err
		}
		state += int64(p.Groups()-before) * groupBytes
		if state > n.SpillBudget && pt.depth < aggMaxDepth {
			return nil, nil, true, nil
		}
	}
	return partials, ordinals, false, nil
}

// repartition re-streams a skewed partition into the sub-writer with
// the next salt, preserving block ordinals (and hence fold order).
func (o *aggregateOp) repartition(pt aggPart, inSchema tuple.Schema, sub *aggWriter) error {
	rd, err := pt.f.Open()
	if err != nil {
		return err
	}
	for {
		ord, st, err := readAggBlock(rd, inSchema)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := sub.add(st, ord); err != nil {
			return err
		}
	}
}

// aggWriter partitions rows by salted group-key hash into per-partition
// scratch files, framing them as [ordinal u32][nrows u32][raw rows]
// blocks. Blocks are flushed on ordinal change or when the buffer
// passes aggFlushBytes, so block ordinals are nondecreasing in file
// order and rows keep arrival order within each ordinal.
type aggWriter struct {
	mgr       *scratch.Manager
	schema    tuple.Schema
	groupIdxs []int
	salt      uint64

	files []*scratch.File
	bufs  []*tuple.SubTable
	ords  []uint32
	label string
}

func newAggWriter(mgr *scratch.Manager, schema tuple.Schema, groupIdxs []int, salt uint64, label string) *aggWriter {
	return &aggWriter{
		mgr: mgr, schema: schema, groupIdxs: groupIdxs, salt: salt,
		files: make([]*scratch.File, aggFanout),
		bufs:  make([]*tuple.SubTable, aggFanout),
		ords:  make([]uint32, aggFanout),
		label: label,
	}
}

// add routes st's rows to their partitions under the given ordinal.
func (w *aggWriter) add(st *tuple.SubTable, ordinal uint32) error {
	row := tuple.GetRow(w.schema.NumAttrs())
	defer tuple.PutRow(row)
	for r := 0; r < st.NumRows(); r++ {
		i := int(groupHash(st, r, w.groupIdxs, w.salt) % aggFanout)
		if w.bufs[i] == nil {
			w.bufs[i] = tuple.NewSubTable(tuple.ID{Table: -1, Chunk: int32(i)}, w.schema, 0)
			w.ords[i] = ordinal
		} else if w.ords[i] != ordinal || w.bufs[i].Bytes() >= aggFlushBytes {
			if err := w.flush(i); err != nil {
				return err
			}
			w.ords[i] = ordinal
		}
		w.bufs[i].AppendRow(st.Row(r, row)...)
	}
	return nil
}

// flush writes partition i's buffered rows as one block.
func (w *aggWriter) flush(i int) error {
	st := w.bufs[i]
	if st == nil || st.NumRows() == 0 {
		return nil
	}
	if w.files[i] == nil {
		w.files[i] = w.mgr.Create(fmt.Sprintf("agg-%s%d", w.label, i))
	}
	na := w.schema.NumAttrs()
	size := 8 + st.NumRows()*na*4
	buf := tuple.GetBuf(size)[:size]
	binary.LittleEndian.PutUint32(buf[0:], w.ords[i])
	binary.LittleEndian.PutUint32(buf[4:], uint32(st.NumRows()))
	off := 8
	for r := 0; r < st.NumRows(); r++ {
		for c := 0; c < na; c++ {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(st.Value(r, c)))
			off += 4
		}
	}
	err := w.files[i].AppendRows(buf, int64(st.NumRows()))
	tuple.PutBuf(buf)
	if err != nil {
		return err
	}
	w.bufs[i] = tuple.NewSubTable(st.ID, w.schema, 0)
	return nil
}

// finish flushes every buffer and returns the non-empty partitions.
func (w *aggWriter) finish() ([]aggPart, error) {
	var parts []aggPart
	for i := range w.bufs {
		if err := w.flush(i); err != nil {
			return nil, err
		}
		if w.files[i] != nil && w.files[i].Size() > 0 {
			parts = append(parts, aggPart{f: w.files[i], salt: w.salt})
		}
	}
	return parts, nil
}

// readAggBlock parses one [ordinal][nrows][rows] block from the reader.
func readAggBlock(rd *scratch.Reader, schema tuple.Schema) (uint32, *tuple.SubTable, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("plan: aggregate block header: %w", err)
	}
	ord := binary.LittleEndian.Uint32(hdr[0:])
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	size := rows * schema.NumAttrs() * 4
	buf := tuple.GetBuf(size)[:size]
	defer tuple.PutBuf(buf)
	if _, err := io.ReadFull(rd, buf); err != nil {
		return 0, nil, fmt.Errorf("plan: aggregate block body: %w", err)
	}
	st, err := scratch.DecodeRows(schema, buf, tuple.ID{Table: -1, Chunk: -1})
	if err != nil {
		return 0, nil, err
	}
	return ord, st, nil
}

// groupHash hashes a row's group-key bits with a salt (splitmix-style
// avalanche): rows of one group always share a partition, and the next
// salt re-spreads a skewed partition's groups.
func groupHash(st *tuple.SubTable, r int, idxs []int, salt uint64) uint64 {
	h := (salt + 1) * 0x9E3779B97F4A7C15
	for _, gi := range idxs {
		h ^= uint64(math.Float32bits(st.Value(r, gi)))
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
