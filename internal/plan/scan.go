package plan

import (
	"context"
	"io"
	"time"

	"sciview/internal/tuple"
)

// scanOp streams one base table chunk by chunk: the chunks in range are
// fetched through a bounded lookahead window (one in-flight fetch per
// compute node, matching the materialized scan's fan-out) and delivered
// in catalog order, so concatenating the batches reproduces the
// materialized scan byte for byte. The record-range filter and the
// projection are pushed into the BDS fetch; projected batches are
// reordered to the projection's column order.
type scanOp struct {
	opstat
	node    *ScanNode
	ctx     context.Context
	cancel  context.CancelFunc
	pending []chan fetchResult
	next    int
	issued  int
}

type fetchResult struct {
	st  *tuple.SubTable
	err error
}

func (o *scanOp) Schema() tuple.Schema { return o.node.schema }

func (o *scanOp) Open(ctx context.Context) error {
	o.ctx, o.cancel = context.WithCancel(ctx)
	o.pending = make([]chan fetchResult, len(o.node.descs))
	return nil
}

func (o *scanOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	nj := len(o.node.Cluster.Compute)
	for {
		// Keep the lookahead window full: fetches for the next nj chunks
		// run concurrently while the head chunk is consumed.
		for o.issued < len(o.node.descs) && o.issued < o.next+nj {
			i := o.issued
			ch := make(chan fetchResult, 1)
			o.pending[i] = ch
			go func() {
				st, err := o.node.Cluster.FetchProjected(o.ctx, i%nj, o.node.descs[i], &o.node.filter, o.node.Proj)
				ch <- fetchResult{st, err}
			}()
			o.issued++
		}
		if o.next >= len(o.node.descs) {
			return nil, io.EOF
		}
		r := <-o.pending[o.next]
		o.pending[o.next] = nil
		o.next++
		if r.err != nil {
			return nil, r.err
		}
		st := r.st
		if o.node.Proj != nil {
			var err error
			if st, err = st.Project(o.node.Proj); err != nil {
				return nil, err
			}
		}
		if st.NumRows() == 0 {
			continue
		}
		o.observe(st)
		return st, nil
	}
}

func (o *scanOp) Close() error {
	if o.cancel == nil {
		return nil
	}
	o.cancel()
	// Reap in-flight fetches so no goroutine outlives the operator.
	for i := o.next; i < o.issued; i++ {
		<-o.pending[i]
	}
	o.cancel = nil
	return nil
}
