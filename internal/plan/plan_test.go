package plan

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"sciview/internal/tuple"
)

var testSchema = tuple.NewSchema(tuple.Attr{Name: "v", Kind: tuple.Measure})

func testBatch(part int32, vals ...float32) *tuple.SubTable {
	st := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: part}, testSchema, len(vals))
	for _, v := range vals {
		st.AppendRow(v)
	}
	return st
}

// drainReorder pulls until EOF and flattens the released values.
func drainReorder(t *testing.T, r *reorder) []float32 {
	t.Helper()
	var out []float32
	for {
		st, err := r.next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < st.NumRows(); i++ {
			out = append(out, st.Value(i, 0))
		}
	}
}

func wantValues(t *testing.T, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("values = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("values = %v, want %v", got, want)
		}
	}
}

// TestReorderStreamingOrder: batches emitted out of part order are
// released strictly in part order, in emission order within a part.
func TestReorderStreamingOrder(t *testing.T) {
	r := newReorder(3, false)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.Emit(1, testBatch(1, 3)))
	must(r.Emit(0, testBatch(0, 1)))
	must(r.Emit(2, testBatch(2, 5)))
	must(r.Emit(0, testBatch(0, 2)))
	must(r.Emit(1, testBatch(1, 4)))
	for p := 0; p < 3; p++ {
		r.Done(p)
	}
	r.finish(nil)
	wantValues(t, drainReorder(t, r), []float32{1, 2, 3, 4, 5})
}

// TestReorderStreamsHeadBeforeDone: in streaming mode the head part's
// batches are consumable immediately, before the part completes.
func TestReorderStreamsHeadBeforeDone(t *testing.T) {
	r := newReorder(2, false)
	if err := r.Emit(0, testBatch(0, 7)); err != nil {
		t.Fatal(err)
	}
	st, err := r.next()
	if err != nil {
		t.Fatal(err)
	}
	if st.Value(0, 0) != 7 {
		t.Fatalf("value = %v, want 7", st.Value(0, 0))
	}
}

// TestReorderBoundedBuffer: a producer for a not-yet-drained part blocks
// once its buffer is full, and close() aborts it with errSinkClosed.
func TestReorderBoundedBuffer(t *testing.T) {
	r := newReorder(2, false)
	for i := 0; i < maxBufferedBatches; i++ {
		if err := r.Emit(1, testBatch(1, float32(i))); err != nil {
			t.Fatal(err)
		}
	}
	emitted := make(chan error, 1)
	go func() { emitted <- r.Emit(1, testBatch(1, 99)) }()
	select {
	case err := <-emitted:
		t.Fatalf("overfull Emit returned early (%v), want blocked", err)
	case <-time.After(20 * time.Millisecond):
	}
	r.close()
	if err := <-emitted; !errors.Is(err, errSinkClosed) {
		t.Fatalf("Emit after close = %v, want errSinkClosed", err)
	}
}

// TestReorderCommittedReplay: in commit-on-Done mode a failed attempt's
// Discard makes its batches invisible; only the final attempt's output is
// released, still in part order.
func TestReorderCommittedReplay(t *testing.T) {
	r := newReorder(2, true)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.Emit(0, testBatch(0, 8)))
	must(r.Emit(0, testBatch(0, 9)))
	r.Discard(0) // the attempt failed; its output must vanish
	must(r.Emit(1, testBatch(1, 2)))
	r.Done(1)
	must(r.Emit(0, testBatch(0, 1)))
	r.Done(0)
	r.finish(nil)
	wantValues(t, drainReorder(t, r), []float32{1, 2})
	if r.peak() <= 0 {
		t.Error("peak bytes not tracked")
	}
}

// TestReorderRunError: a run failure preempts pending batches — the
// consumer sees the error, like the materialized path did.
func TestReorderRunError(t *testing.T) {
	r := newReorder(1, false)
	if err := r.Emit(0, testBatch(0, 1)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	r.finish(boom)
	if _, err := r.next(); !errors.Is(err, boom) {
		t.Fatalf("next = %v, want boom", err)
	}
}

// stubOp feeds canned batches to an operator under test.
type stubOp struct {
	opstat
	batches []*tuple.SubTable
	i       int
	closed  bool
}

func (s *stubOp) Open(ctx context.Context) error { return nil }
func (s *stubOp) Close() error                   { s.closed = true; return nil }
func (s *stubOp) Schema() tuple.Schema           { return testSchema }
func (s *stubOp) Next() (*tuple.SubTable, error) {
	if s.i >= len(s.batches) {
		return nil, io.EOF
	}
	st := s.batches[s.i]
	s.i++
	return st, nil
}

// TestLimitOpStopsPulling: once satisfied mid-batch, the limit truncates,
// returns EOF and never pulls the remaining batches.
func TestLimitOpStopsPulling(t *testing.T) {
	child := &stubOp{batches: []*tuple.SubTable{
		testBatch(0, 1, 2, 3), testBatch(0, 4, 5, 6), testBatch(0, 7, 8, 9),
	}}
	lim := &limitOp{node: &LimitNode{N: 4}, remaining: 4, child: child}
	if err := lim.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	var got []float32
	for {
		st, err := lim.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < st.NumRows(); i++ {
			got = append(got, st.Value(i, 0))
		}
	}
	wantValues(t, got, []float32{1, 2, 3, 4})
	if child.i != 2 {
		t.Errorf("child pulled %d batches, want 2 (third must stay unpulled)", child.i)
	}
	if err := lim.Close(); err != nil {
		t.Fatal(err)
	}
	if !child.closed {
		t.Error("Close did not propagate")
	}
	if st := lim.Stat(); st.Rows != 4 || st.Batches != 2 {
		t.Errorf("stat = %+v", st)
	}
}

// TestLimitZero: LIMIT 0 yields EOF without touching the child.
func TestLimitZero(t *testing.T) {
	child := &stubOp{batches: []*tuple.SubTable{testBatch(0, 1)}}
	lim := &limitOp{node: &LimitNode{N: 0}, remaining: 0, child: child}
	if _, err := lim.Next(); err != io.EOF {
		t.Fatalf("Next = %v, want EOF", err)
	}
	if child.i != 0 {
		t.Errorf("child pulled %d batches, want 0", child.i)
	}
}
