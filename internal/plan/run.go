package plan

import (
	"context"
	"io"
	"strings"
	"time"

	"sciview/internal/engine"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// Run executes the plan to completion: it builds the operator tree, opens
// it, drains the root and assembles the final result table (copying, so
// the operators' recycled batches never escape). Close always runs —
// after EOF, an error, or an early exit (a Limit that stopped pulling) —
// and is what propagates cancellation into a still-running join.
//
// The returned engine.Result is the join's (real for completed runs,
// synthesized with the executed schedule fraction for early exits),
// extended with per-operator stats; it is nil for plans without a join.
func Run(ctx context.Context, p *Plan) (*tuple.SubTable, *engine.Result, error) {
	root, ops, err := Build(p)
	if err != nil {
		return nil, nil, err
	}
	if err := root.Open(ctx); err != nil {
		root.Close()
		return nil, nil, err
	}
	out := tuple.NewSubTable(p.OutID, root.Schema(), 0)
	var runErr error
	for {
		st, err := root.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			runErr = err
			break
		}
		if err := out.AppendAll(st); err != nil {
			runErr = err
			break
		}
	}
	closeErr := root.Close()
	if runErr == nil {
		runErr = closeErr
	}
	if runErr != nil {
		return nil, nil, runErr
	}

	stats := make([]engine.OpStat, len(ops))
	for i, op := range ops {
		stats[i] = *op.Stat()
		// One span per operator; span duration = the operator's busy time.
		p.Trace.Span("plan", trace.KindOperator, stats[i].Op,
			time.Now().Add(-stats[i].Busy), stats[i].Bytes, stats[i].Rows)
		// Accumulate per-operator-kind totals into the live registry: once
		// per run per operator, never on the batch path. Registry lookups
		// are idempotent, so re-registering each run returns the same
		// instruments. Nil p.Metrics yields nil no-op counters.
		kind := stats[i].Op
		if k := strings.IndexByte(kind, '('); k >= 0 {
			kind = kind[:k]
		}
		p.Metrics.Counter("sciview_operator_rows_total", "Rows emitted per operator kind.", "op", kind).Add(stats[i].Rows)
		p.Metrics.Counter("sciview_operator_bytes_total", "Bytes emitted per operator kind.", "op", kind).Add(stats[i].Bytes)
		p.Metrics.Counter("sciview_operator_busy_microseconds_total", "Busy time per operator kind, in microseconds.", "op", kind).Add(stats[i].Busy.Microseconds())
		if stats[i].SpillBytes > 0 || stats[i].SpillReadBytes > 0 {
			p.Metrics.Counter("sciview_spill_bytes_total", "Scratch bytes written by out-of-core operators, per kind.", "op", kind).Add(stats[i].SpillBytes)
			p.Metrics.Counter("sciview_spill_read_bytes_total", "Scratch bytes read back by out-of-core operators, per kind.", "op", kind).Add(stats[i].SpillReadBytes)
		}
		if stats[i].SpillParts > 0 {
			p.Metrics.Counter("sciview_spill_partitions_total", "Scratch files (runs, partitions) created by out-of-core operators, per kind.", "op", kind).Add(stats[i].SpillParts)
		}
	}
	var res *engine.Result
	for _, op := range ops {
		if j, ok := op.(*joinOp); ok {
			res = j.result()
			break
		}
	}
	if res != nil {
		res.Operators = stats
	}
	return out, res, nil
}
