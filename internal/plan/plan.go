// Package plan is the streaming execution layer between the SQL planner
// and the join engines: a typed plan DAG (Scan, Filter, Project, Join,
// Aggregate, Sort, Limit) plus a batch-iterator Operator interface that
// evaluates it without materializing whole intermediate results.
//
// A plan is the recipe the planner lowers a SELECT into. Sources stream
// batches — a table scan fetches chunks through a bounded lookahead
// window, a join receives engine output per IJ edge or GH bucket pair
// through an order-restoring sink — and the operators above them consume
// batches incrementally. Blocking operators (Sort, Aggregate) absorb
// their input and emit once; Limit stops pulling when satisfied and its
// Close cancels the engine run mid-join, so a `SELECT ... LIMIT n`
// executes only the fraction of the edge/bucket schedule it needed.
//
// Results are byte-identical to the fully-materialized execution path:
// batches are released in slot/group order (the order the materialized
// concat used), aggregation keeps one partial per part and merges in part
// order (float sums group identically), and Sort replicates the
// materialized order-and-limit on the identically-ordered accumulated
// rows.
package plan

import (
	"fmt"
	"strings"

	"sciview/internal/chunk"
	"sciview/internal/cluster"
	"sciview/internal/costmodel"
	"sciview/internal/dds"
	"sciview/internal/engine"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/query"
	"sciview/internal/simio"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// Node is one vertex of the plan DAG. Nodes are typed data: they carry
// the logical description (for EXPLAIN) and the physical recipe (cluster,
// engine, request) their operator executes.
type Node interface {
	// Schema is the node's statically-known output schema.
	Schema() tuple.Schema
	// Children returns the input nodes (display order).
	Children() []Node
	describe() string
}

// Plan is a lowered statement ready to execute or explain.
type Plan struct {
	Root Node
	// OutID is the ID of the assembled result table, matching what the
	// materialized path produced ({-1,-1} for row output, {-3,-1} for
	// aggregates).
	OutID tuple.ID
	// Trace, when non-nil, receives one KindOperator span per operator.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives per-operator-kind rows/bytes/busy
	// totals after each run (accumulated once at completion, never on the
	// per-batch path).
	Metrics *metrics.Registry
	// Budget is the query's total spill budget in bytes, distributed over
	// the spill-capable operators by SetBudget. 0 means unbounded: every
	// operator runs fully in memory, exactly as before out-of-core
	// execution existed.
	Budget int64
}

// maxBufferedBatches bounds the reorder sink's per-part buffer: a join
// part that runs ahead of the part currently being drained blocks after
// this many undelivered batches, throttling producers instead of
// materializing the join.
const maxBufferedBatches = 8

// Join returns the plan's join node, or nil for join-free plans. Callers
// use it to adjust the engine request (shared mode, prefetch,
// parallelism) before running.
func (p *Plan) Join() *JoinNode {
	var find func(n Node) *JoinNode
	find = func(n Node) *JoinNode {
		if j, ok := n.(*JoinNode); ok {
			return j
		}
		for _, c := range n.Children() {
			if j := find(c); j != nil {
				return j
			}
		}
		return nil
	}
	return find(p.Root)
}

// ---------------------------------------------------------------------
// Scan

// ScanNode reads one base table: the selection/projection DDS over a BDS
// table, streamed chunk by chunk. As a child of a JoinNode it is
// descriptive only — it shows the per-side filter and the pushed-down
// projection the engine applies during its own fetches.
type ScanNode struct {
	Cluster *cluster.Cluster
	Table   string
	Preds   []query.Pred
	// Proj lists the output attributes in order; nil keeps the table
	// schema.
	Proj []string

	joinSide bool
	filter   metadata.Range
	schema   tuple.Schema
	descs    []tuple.ID
	estRows  int64
	// estDecBytes / estWireBytes are the decoded row-major size of the
	// resolved chunk set (after projection) and the size estimated to cross
	// the storage→compute NIC under the cluster's wire codec. Equal when the
	// wire is row-major; under colenc the rle chunks' on-disk size stands in
	// for their pass-through encoded size.
	estDecBytes  int64
	estWireBytes int64
}

// NewScan builds an executable table scan, validating the predicates and
// projection against the catalog and resolving the chunks in range. asOf
// pins resolution to a catalog version (0 = current): the chunk set is
// fixed at plan-build time, so appends committed after lowering never leak
// into the scan.
func NewScan(cl *cluster.Cluster, table string, preds []query.Pred, proj []string, asOf int64) (*ScanNode, error) {
	def, err := cl.Catalog.Table(table)
	if err != nil {
		return nil, err
	}
	var mine []query.Pred
	for _, p := range preds {
		if def.Schema.Index(p.Attr) < 0 {
			return nil, fmt.Errorf("plan: table %s has no attribute %q", table, p.Attr)
		}
		mine = append(mine, p)
	}
	schema := def.Schema
	if proj != nil {
		s, _, err := def.Schema.Project(proj)
		if err != nil {
			return nil, err
		}
		schema = s
	}
	filter := query.ToRange(mine)
	filter.Versions.Until = asOf
	descs, err := cl.Catalog.ChunksInRange(table, filter)
	if err != nil {
		return nil, err
	}
	n := &ScanNode{
		Cluster: cl, Table: table, Preds: mine, Proj: proj,
		filter: filter, schema: schema,
	}
	n.resolveEstimates(descs, len(def.Schema.Names()))
	return n, nil
}

// joinInputScan describes one side of a join for EXPLAIN: the engine does
// the actual fetching with this filter and projection pushed down. The
// chunk set is resolved best-effort so the scan can annotate its estimated
// fetch volume; a resolution failure leaves the estimates at zero without
// failing the plan (the engine re-resolves at run time anyway).
func joinInputScan(cl *cluster.Cluster, table string, schema tuple.Schema, filter metadata.Range, proj []string) *ScanNode {
	n := &ScanNode{
		Cluster: cl, Table: table, Proj: proj,
		joinSide: true, filter: filter, schema: schema,
	}
	if descs, err := cl.Catalog.ChunksInRange(table, filter); err == nil {
		fullAttrs := len(schema.Names())
		if def, err := cl.Catalog.Table(table); err == nil {
			fullAttrs = len(def.Schema.Names())
		}
		n.resolveEstimates(descs, fullAttrs)
	}
	return n
}

// resolveEstimates accumulates the resolved chunk IDs and the fetch-volume
// estimates for the scan. fullAttrs is the base table's attribute count,
// used to pro-rate on-disk rle sizes down to the projected columns.
func (n *ScanNode) resolveEstimates(descs []*chunk.Desc, fullAttrs int) {
	rec := int64(n.schema.RecordSize())
	attrs := int64(len(n.schema.Names()))
	encoded := n.Cluster.Config.WireEncoded()
	for _, d := range descs {
		n.descs = append(n.descs, d.ID())
		n.estRows += int64(d.Rows)
		dec := int64(d.Rows) * rec
		n.estDecBytes += dec
		wire := dec
		if encoded && d.Format == "rle" && fullAttrs > 0 {
			// Pass-through: the wire carries the chunk's on-disk runs,
			// narrowed to the projected columns. The codec never ships more
			// than raw, so the estimate is capped at the decoded size.
			if w := d.Size * attrs / int64(fullAttrs); w < dec {
				wire = w
			}
		}
		n.estWireBytes += wire
	}
}

func (n *ScanNode) Schema() tuple.Schema { return n.schema }
func (n *ScanNode) Children() []Node     { return nil }

func (n *ScanNode) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan(%s)", n.Table)
	if len(n.filter.Attrs) > 0 {
		b.WriteString(" filter[")
		for i, a := range n.filter.Attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s ∈ [%g, %g]", a, n.filter.Lo[i], n.filter.Hi[i])
		}
		b.WriteString("]")
	}
	if n.Proj != nil {
		fmt.Fprintf(&b, " project[%s]", strings.Join(n.Proj, ", "))
	}
	return b.String()
}

// annotations is the scan's extra EXPLAIN line: the wire codec the fetch
// path will use and the estimated bytes it moves storage→compute.
func (n *ScanNode) annotations() []string {
	if len(n.descs) == 0 {
		return nil
	}
	line := fmt.Sprintf("fetch: wire=%s est=%s", n.Cluster.Config.WireName(), fmtBytes(n.estWireBytes))
	if n.estWireBytes != n.estDecBytes {
		line += fmt.Sprintf(" (decoded %s)", fmtBytes(n.estDecBytes))
	}
	return []string{line}
}

// fmtBytes renders a byte count with a binary unit suffix for EXPLAIN.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// ---------------------------------------------------------------------
// Join

// JoinCost is the cost-model decision attached to a join node, rendered
// by EXPLAIN.
type JoinCost struct {
	Chosen    string
	Forced    bool
	Params    costmodel.Params
	PredictIJ costmodel.Breakdown
	PredictGH costmodel.Breakdown
	// Calibrated reports whether live-calibrated constants displaced the
	// configured ones in Params; Constants is the estimator snapshot the
	// decision consulted.
	Calibrated bool
	Constants  costmodel.Constants
}

// JoinNode runs the view's equi-join through the chosen engine, streaming
// output batches in deterministic slot/group order. The request carries
// the merged filter and the pushed-down projection; its children are the
// descriptive per-side scans.
type JoinNode struct {
	Eng     engine.Engine
	Cluster *cluster.Cluster
	// View is the queried view's name (display).
	View string
	Req  engine.Request
	// Cost is the planner's decision record (nil when unavailable).
	Cost *JoinCost
	// Parts is the number of emission parts (IJ slots / GH groups): one
	// per compute node.
	Parts int

	left, right *ScanNode
	schema      tuple.Schema
}

// NewJoin builds a join node from an engine request the planner has
// already chosen an engine for.
func NewJoin(eng engine.Engine, cl *cluster.Cluster, view string, req engine.Request, cost *JoinCost) (*JoinNode, error) {
	leftDef, err := cl.Catalog.Table(req.LeftTable)
	if err != nil {
		return nil, err
	}
	rightDef, err := cl.Catalog.Table(req.RightTable)
	if err != nil {
		return nil, err
	}
	project := req.EffectiveProject()
	ls := engine.ProjectedSchema(leftDef.Schema, project)
	rs := engine.ProjectedSchema(rightDef.Schema, project)
	return &JoinNode{
		Eng: eng, Cluster: cl, View: view, Req: req, Cost: cost,
		Parts:  len(cl.Compute),
		left:   joinInputScan(cl, req.LeftTable, ls, windowed(sideFilter(leftDef.Schema, req.Filter), req.LeftWindow()), project),
		right:  joinInputScan(cl, req.RightTable, rs, windowed(sideFilter(rightDef.Schema, req.Filter), req.RightWindow()), project),
		schema: ls.JoinResult(rs, req.JoinAttrs, "r_"),
	}, nil
}

// windowed attaches a version window to a per-side filter (the engines do
// the same from the request; here it keeps EXPLAIN's descriptive scans in
// sync with what the engine will actually resolve).
func windowed(f metadata.Range, w metadata.VersionWindow) metadata.Range {
	f.Versions = w
	return f
}

// sideFilter keeps the constraints naming attributes of one side's schema
// (mirrors the engines' per-side filter restriction).
func sideFilter(schema tuple.Schema, f metadata.Range) metadata.Range {
	var out metadata.Range
	for i, a := range f.Attrs {
		if schema.Index(a) < 0 {
			continue
		}
		out.Attrs = append(out.Attrs, a)
		out.Lo = append(out.Lo, f.Lo[i])
		out.Hi = append(out.Hi, f.Hi[i])
	}
	return out
}

func (n *JoinNode) Schema() tuple.Schema { return n.schema }
func (n *JoinNode) Children() []Node     { return []Node{n.left, n.right} }

func (n *JoinNode) describe() string {
	name := "?"
	if n.Eng != nil {
		name = n.Eng.Name()
	}
	s := fmt.Sprintf("Join[%s](%s ⋈ %s ON %s)", name,
		n.Req.LeftTable, n.Req.RightTable, strings.Join(n.Req.JoinAttrs, ", "))
	if n.View != "" {
		s += " view=" + n.View
	}
	return s
}

// annotations are the extra EXPLAIN lines under the join: the cost-model
// decision with its constant provenance (calibrated vs static), both
// predicted breakdowns, the constants the prediction used once the
// calibration layer is live, and the spill line for budget-stamped
// plans.
func (n *JoinNode) annotations() []string {
	c := n.Cost
	if c == nil {
		if n.Req.MemoryBudget > 0 {
			return []string{spillLine(n.Req.MemoryBudget, residentBytes(n))}
		}
		return nil
	}
	calib := "static"
	if c.Calibrated {
		calib = "live"
	}
	decision := fmt.Sprintf("cost: ij=%v gh=%v chose=%s calib=%s",
		costmodel.Duration(c.PredictIJ.Total), costmodel.Duration(c.PredictGH.Total),
		c.Chosen, calib)
	if c.Forced {
		decision += " (forced)"
	}
	lines := []string{
		decision,
		fmt.Sprintf("ij: transfer %v build %v lookup %v",
			costmodel.Duration(c.PredictIJ.Transfer), costmodel.Duration(c.PredictIJ.Build),
			costmodel.Duration(c.PredictIJ.Lookup)),
		fmt.Sprintf("gh: transfer %v write %v read %v build %v lookup %v",
			costmodel.Duration(c.PredictGH.Transfer), costmodel.Duration(c.PredictGH.Write),
			costmodel.Duration(c.PredictGH.Read), costmodel.Duration(c.PredictGH.Build),
			costmodel.Duration(c.PredictGH.Lookup)),
	}
	if c.Calibrated {
		lines = append(lines, "constants: "+c.Constants.String())
	}
	if n.Req.MemoryBudget > 0 {
		lines = append(lines, spillLine(n.Req.MemoryBudget, residentBytes(n)))
	}
	return lines
}

// ---------------------------------------------------------------------
// Row operators

// FilterNode applies residual range predicates batch-by-batch — the ones
// that could not be pushed below a source.
type FilterNode struct {
	Child Node
	Preds []query.Pred
}

// NewFilter validates the predicates against the child's schema.
func NewFilter(child Node, preds []query.Pred) (*FilterNode, error) {
	for _, p := range preds {
		if child.Schema().Index(p.Attr) < 0 {
			return nil, fmt.Errorf("plan: filter references %q, not an output column of %v",
				p.Attr, child.Schema().Names())
		}
	}
	return &FilterNode{Child: child, Preds: preds}, nil
}

func (n *FilterNode) Schema() tuple.Schema { return n.Child.Schema() }
func (n *FilterNode) Children() []Node     { return []Node{n.Child} }

func (n *FilterNode) describe() string {
	var parts []string
	for _, p := range n.Preds {
		parts = append(parts, fmt.Sprintf("%s ∈ [%g, %g]", p.Attr, p.Lo, p.Hi))
	}
	return fmt.Sprintf("Filter(%s)", strings.Join(parts, ", "))
}

// ProjectNode narrows each batch to the named columns, in name order.
type ProjectNode struct {
	Child  Node
	Names  []string
	schema tuple.Schema
}

// NewProject validates the names against the child's schema.
func NewProject(child Node, names []string) (*ProjectNode, error) {
	s, _, err := child.Schema().Project(names)
	if err != nil {
		return nil, err
	}
	return &ProjectNode{Child: child, Names: names, schema: s}, nil
}

func (n *ProjectNode) Schema() tuple.Schema { return n.schema }
func (n *ProjectNode) Children() []Node     { return []Node{n.Child} }
func (n *ProjectNode) describe() string {
	return fmt.Sprintf("Project(%s)", strings.Join(n.Names, ", "))
}

// AggregateNode folds the child's batches into per-group aggregate state
// and emits the finalized groups as one batch.
type AggregateNode struct {
	Child   Node
	Items   []query.SelectItem
	GroupBy []string
	Having  *query.Having
	// Partitioned keeps one dds.Partial per input part (batches sharing
	// an ID), merged in arrival order — the float-summation grouping of
	// the materialized per-joiner aggregation. False folds every batch
	// into a single partial (a table scan's rows are one partition).
	Partitioned bool
	// SpillBudget/SpillDisk/SpillOwner/SpillTrace are stamped by
	// Plan.SetBudget: when the estimated group state exceeds the budget,
	// the operator partitions raw rows to the scratch disk and replays
	// them partition by partition (byte-identical to the in-memory fold).
	SpillBudget int64
	SpillDisk   *simio.Disk
	SpillOwner  string
	SpillTrace  *trace.Recorder
	schema      tuple.Schema
}

// NewAggregate validates the specification against the child schema.
func NewAggregate(child Node, items []query.SelectItem, groupBy []string, having *query.Having, partitioned bool) (*AggregateNode, error) {
	schema, err := dds.AggSchema(child.Schema(), items, groupBy)
	if err != nil {
		return nil, err
	}
	if having != nil && having.Attr != "*" && child.Schema().Index(having.Attr) < 0 {
		return nil, fmt.Errorf("dds: HAVING references unknown attribute %q", having.Attr)
	}
	return &AggregateNode{
		Child: child, Items: items, GroupBy: groupBy, Having: having,
		Partitioned: partitioned, schema: schema,
	}, nil
}

func (n *AggregateNode) Schema() tuple.Schema { return n.schema }
func (n *AggregateNode) Children() []Node     { return []Node{n.Child} }

func (n *AggregateNode) describe() string {
	var items []string
	for _, it := range n.Items {
		items = append(items, fmt.Sprintf("%s(%s)", it.Agg, it.Attr))
	}
	s := fmt.Sprintf("Aggregate(%s)", strings.Join(items, ", "))
	if len(n.GroupBy) > 0 {
		s += " group by " + strings.Join(n.GroupBy, ", ")
	}
	if n.Having != nil {
		s += fmt.Sprintf(" having %s(%s) %s %g", n.Having.Agg, n.Having.Attr, n.Having.Op, n.Having.Val)
	}
	return s
}

// annotations is the aggregate's EXPLAIN spill line (budget-stamped
// plans only).
func (n *AggregateNode) annotations() []string {
	if n.SpillBudget <= 0 {
		return nil
	}
	return []string{spillLine(n.SpillBudget, residentBytes(n))}
}

// spillLine renders the EXPLAIN spill annotation: the operator's budget
// share, its estimated working set, and the execution mode the estimate
// selects.
func spillLine(budget, est int64) string {
	mode := "in-mem"
	if est > budget {
		mode = "external"
	}
	return fmt.Sprintf("spill: budget=%s est=%s mode=%s", fmtBytes(budget), fmtBytes(est), mode)
}

// SortNode absorbs the child's batches and emits them fully ordered, as
// one batch. The stable sort over the arrival-ordered rows reproduces the
// materialized path's ordering exactly.
type SortNode struct {
	Child Node
	Keys  []query.OrderKey
	// SpillBudget/SpillDisk/SpillOwner/SpillTrace are stamped by
	// Plan.SetBudget: when the accumulated input exceeds the budget, the
	// operator generates sorted runs on the scratch disk and merges them
	// with a loser tree (byte-identical to the in-memory stable sort).
	SpillBudget int64
	SpillDisk   *simio.Disk
	SpillOwner  string
	SpillTrace  *trace.Recorder
}

// NewSort validates the keys against the child's schema.
func NewSort(child Node, keys []query.OrderKey) (*SortNode, error) {
	for _, k := range keys {
		if child.Schema().Index(k.Attr) < 0 {
			return nil, fmt.Errorf("planner: ORDER BY references %q, not an output column of %v",
				k.Attr, child.Schema().Names())
		}
	}
	return &SortNode{Child: child, Keys: keys}, nil
}

func (n *SortNode) Schema() tuple.Schema { return n.Child.Schema() }
func (n *SortNode) Children() []Node     { return []Node{n.Child} }

func (n *SortNode) describe() string {
	var keys []string
	for _, k := range n.Keys {
		if k.Desc {
			keys = append(keys, k.Attr+" desc")
		} else {
			keys = append(keys, k.Attr)
		}
	}
	return fmt.Sprintf("Sort(%s)", strings.Join(keys, ", "))
}

// annotations is the sort's EXPLAIN spill line (budget-stamped plans
// only). Sort spills dynamically — the estimate decides the displayed
// mode, the actual accumulated bytes decide at run time.
func (n *SortNode) annotations() []string {
	if n.SpillBudget <= 0 {
		return nil
	}
	return []string{spillLine(n.SpillBudget, estRows(n.Child)*int64(n.Schema().RecordSize()))}
}

// LimitNode truncates the stream after N rows. Reaching the limit stops
// pulling from the child; the subsequent Close propagates cancellation
// into a running join, abandoning the un-joined remainder of the
// edge/bucket schedule.
type LimitNode struct {
	Child Node
	N     int
}

// NewLimit builds a limit node (n >= 0).
func NewLimit(child Node, n int) *LimitNode { return &LimitNode{Child: child, N: n} }

func (n *LimitNode) Schema() tuple.Schema { return n.Child.Schema() }
func (n *LimitNode) Children() []Node     { return []Node{n.Child} }
func (n *LimitNode) describe() string     { return fmt.Sprintf("Limit(%d)", n.N) }

// ---------------------------------------------------------------------
// Explain

// annotated is implemented by nodes with extra EXPLAIN detail lines.
type annotated interface{ annotations() []string }

// Explain renders the plan tree, one node per line, with pushed-down
// predicates/projections on the sources and the cost-model breakdown
// under the join.
func (p *Plan) Explain() string {
	var b strings.Builder
	var walk func(n Node, prefix string, childPrefix string)
	walk = func(n Node, prefix, childPrefix string) {
		b.WriteString(prefix)
		b.WriteString(n.describe())
		b.WriteByte('\n')
		kids := n.Children()
		if a, ok := n.(annotated); ok {
			barPrefix := childPrefix + "│    "
			if len(kids) == 0 {
				barPrefix = childPrefix + "     "
			}
			for _, line := range a.annotations() {
				b.WriteString(barPrefix)
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
		for i, k := range kids {
			if i == len(kids)-1 {
				walk(k, childPrefix+"└─ ", childPrefix+"   ")
			} else {
				walk(k, childPrefix+"├─ ", childPrefix+"│  ")
			}
		}
	}
	walk(p.Root, "", "")
	return b.String()
}

// ---------------------------------------------------------------------
// Memory estimate

// MemoryEstimate bounds the resident bytes of a streaming execution of
// the plan: per-operator batch/window/build bounds instead of the
// whole-result sizes a materialized run would hold. Blocking operators
// (Sort, and the join's build side) contribute their full working set;
// streaming operators contribute bounded windows. Admission control uses
// this as the query's memory weight.
func (p *Plan) MemoryEstimate() int64 {
	var total int64
	var walk func(n Node)
	walk = func(n Node) {
		total += residentBytes(n)
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.Root)
	return total
}

// residentBytes estimates one node's peak resident footprint.
func residentBytes(n Node) int64 {
	rec := int64(n.Schema().RecordSize())
	switch t := n.(type) {
	case *ScanNode:
		if t.joinSide {
			// The engine's fetches are priced on the JoinNode.
			return 0
		}
		// Lookahead window: one in-flight chunk per compute node.
		if len(t.descs) == 0 {
			return 0
		}
		avg := t.estRows / int64(len(t.descs))
		return int64(len(t.Cluster.Compute)) * avg * rec
	case *JoinNode:
		if t.Cost == nil {
			return 0
		}
		pm := t.Cost.Params
		// Build side resident + one streamed right sub-table per joiner +
		// the reorder sink's bounded per-part buffers.
		build := pm.T * int64(pm.RSR)
		stream := int64(pm.Nj) * pm.CS * int64(pm.RSS)
		buffer := int64(t.Parts) * maxBufferedBatches * pm.CS * rec
		return build + stream + buffer
	case *SortNode:
		// Absorbs its whole input.
		return estRows(t.Child) * rec
	case *AggregateNode:
		// Per-group accumulators; bounded by the (deduplicated) group
		// count, estimated conservatively from the input. A global
		// aggregate holds exactly one group.
		if len(t.GroupBy) == 0 {
			return rec
		}
		rows := estRows(t.Child)
		if rows > 1<<16 {
			rows = 1 << 16
		}
		return rows * rec
	default:
		// Pass-through operators hold at most one batch.
		return maxBufferedBatches * 4096
	}
}

// ---------------------------------------------------------------------
// Spill budget

// degradedFloor is the minimum resident charge a spilling operator is
// billed in DegradedEstimate: even fully external execution keeps merge
// buffers and partition staging resident.
const degradedFloor = 64 << 10

// spillable reports whether a node's operator can run out-of-core. A
// global aggregate (no GROUP BY) holds a single accumulator row and
// never needs to spill.
func spillable(n Node) bool {
	switch t := n.(type) {
	case *SortNode, *JoinNode:
		return true
	case *AggregateNode:
		return len(t.GroupBy) > 0
	}
	return false
}

// SetBudget distributes a total spill budget (bytes) evenly over the
// plan's spill-capable operators: sorts and aggregates get a scratch
// disk assignment (round-robin over the compute nodes) and a budget
// share; the join's share rides on its engine request, where the engine
// divides it among its per-node QES instances. Budget <= 0 clears
// nothing and keeps the plan fully in-memory.
func (p *Plan) SetBudget(budget int64) {
	p.Budget = budget
	if budget <= 0 {
		return
	}
	var spills []Node
	var cl *cluster.Cluster
	var walk func(n Node)
	walk = func(n Node) {
		if spillable(n) {
			spills = append(spills, n)
		}
		switch t := n.(type) {
		case *JoinNode:
			if cl == nil {
				cl = t.Cluster
			}
		case *ScanNode:
			if cl == nil {
				cl = t.Cluster
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.Root)
	if len(spills) == 0 {
		return
	}
	share := budget / int64(len(spills))
	if share < 1 {
		share = 1
	}
	for i, n := range spills {
		var disk *simio.Disk
		var owner string
		if cl != nil && len(cl.Compute) > 0 {
			j := i % len(cl.Compute)
			disk = cl.Compute[j].Scratch
			owner = fmt.Sprintf("compute-%d", j)
		}
		switch t := n.(type) {
		case *SortNode:
			t.SpillBudget, t.SpillDisk, t.SpillOwner, t.SpillTrace = share, disk, owner, p.Trace
		case *AggregateNode:
			t.SpillBudget, t.SpillDisk, t.SpillOwner, t.SpillTrace = share, disk, owner, p.Trace
		case *JoinNode:
			t.Req.MemoryBudget = share
		}
	}
}

// DegradedEstimate is MemoryEstimate under the stamped budget: each
// spill-capable operator's resident charge is capped at its budget
// share (plus the degraded floor for merge/staging buffers), because in
// degraded mode the overflow lives on the scratch disk rather than in
// memory. Admission control weighs degraded queries with this value.
func (p *Plan) DegradedEstimate() int64 {
	if p.Budget <= 0 {
		return p.MemoryEstimate()
	}
	var nSpill int64
	var count func(n Node)
	count = func(n Node) {
		if spillable(n) {
			nSpill++
		}
		for _, c := range n.Children() {
			count(c)
		}
	}
	count(p.Root)
	share := p.Budget
	if nSpill > 0 {
		share = p.Budget / nSpill
	}
	var total int64
	var walk func(n Node)
	walk = func(n Node) {
		r := residentBytes(n)
		if spillable(n) {
			if cap := share + degradedFloor; r > cap {
				r = cap
			}
		}
		total += r
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.Root)
	return total
}

// estRows estimates a node's output cardinality.
func estRows(n Node) int64 {
	switch t := n.(type) {
	case *ScanNode:
		return t.estRows
	case *JoinNode:
		if t.Cost != nil {
			return t.Cost.Params.T
		}
		return 0
	case *LimitNode:
		rows := estRows(t.Child)
		if int64(t.N) < rows {
			return int64(t.N)
		}
		return rows
	case *AggregateNode:
		rows := estRows(t.Child)
		if rows > 1<<16 {
			return 1 << 16
		}
		return rows
	default:
		kids := n.Children()
		if len(kids) == 1 {
			return estRows(kids[0])
		}
		return 0
	}
}
