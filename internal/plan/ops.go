package plan

import (
	"context"
	"io"
	"time"

	"sciview/internal/tuple"
)

// filterOp applies residual range predicates batch by batch.
type filterOp struct {
	opstat
	node  *FilterNode
	child Operator
	names []string
	lo    []float64
	hi    []float64
}

func (o *filterOp) Schema() tuple.Schema { return o.node.Schema() }

func (o *filterOp) Open(ctx context.Context) error {
	for _, p := range o.node.Preds {
		o.names = append(o.names, p.Attr)
		o.lo = append(o.lo, p.Lo)
		o.hi = append(o.hi, p.Hi)
	}
	return o.child.Open(ctx)
}

func (o *filterOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	for {
		st, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		kept, err := st.FilterRange(o.names, o.lo, o.hi)
		if err != nil {
			return nil, err
		}
		if kept.NumRows() == 0 {
			continue
		}
		o.observe(kept)
		return kept, nil
	}
}

func (o *filterOp) Close() error { return o.child.Close() }

// projectOp narrows each batch to the named columns (shares the column
// storage — no copy).
type projectOp struct {
	opstat
	node  *ProjectNode
	child Operator
}

func (o *projectOp) Schema() tuple.Schema { return o.node.schema }

func (o *projectOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *projectOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	st, err := o.child.Next()
	if err != nil {
		return nil, err
	}
	out, err := st.Project(o.node.Names)
	if err != nil {
		return nil, err
	}
	o.observe(out)
	return out, nil
}

func (o *projectOp) Close() error { return o.child.Close() }

// limitOp truncates the stream after N rows and stops pulling from the
// child — the driver's subsequent Close cancels whatever the subtree
// still had in flight.
type limitOp struct {
	opstat
	node      *LimitNode
	child     Operator
	remaining int
}

func (o *limitOp) Schema() tuple.Schema { return o.node.Schema() }

func (o *limitOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *limitOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	if o.remaining <= 0 {
		return nil, io.EOF
	}
	st, err := o.child.Next()
	if err != nil {
		return nil, err
	}
	if st.NumRows() > o.remaining {
		st = st.Head(o.remaining)
	}
	o.remaining -= st.NumRows()
	o.observe(st)
	return st, nil
}

func (o *limitOp) Close() error { return o.child.Close() }
