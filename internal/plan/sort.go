package plan

import (
	"context"
	"io"
	"sort"
	"time"

	"sciview/internal/tuple"
)

// sortOp is the blocking ORDER BY operator: it absorbs the child's
// batches in arrival order — which the sources keep identical to the
// materialized path's row order — and emits one fully-ordered batch,
// produced by the same stable sort over row indexes the materialized
// order-and-limit step used. Equal-key rows therefore keep the exact
// relative order of the materialized result.
type sortOp struct {
	opstat
	node    *SortNode
	child   Operator
	emitted bool
}

func (o *sortOp) Schema() tuple.Schema { return o.node.Schema() }

func (o *sortOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *sortOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	if o.emitted {
		return nil, io.EOF
	}
	o.emitted = true

	acc := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: -1}, o.child.Schema(), 0)
	for {
		st, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if acc.NumRows() == 0 {
			acc.ID = st.ID
		}
		if err := acc.AppendAll(st); err != nil {
			return nil, err
		}
	}

	keys := o.node.Keys
	idxs := make([]int, len(keys))
	for i, k := range keys {
		idxs[i] = acc.Schema.Index(k.Attr) // validated at NewSort
	}
	order := make([]int, acc.NumRows())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		for i, idx := range idxs {
			va, vb := acc.Value(ra, idx), acc.Value(rb, idx)
			if va == vb {
				continue
			}
			if keys[i].Desc {
				return va > vb
			}
			return va < vb
		}
		return false
	})
	out := tuple.NewSubTable(acc.ID, acc.Schema, acc.NumRows())
	row := tuple.GetRow(acc.Schema.NumAttrs())
	defer tuple.PutRow(row)
	for _, r := range order {
		out.AppendRow(acc.Row(r, row)...)
	}
	o.s.PeakBytes = int64(acc.Bytes()) + int64(out.Bytes())
	o.observe(out)
	return out, nil
}

func (o *sortOp) Close() error { return o.child.Close() }
