package plan

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"sciview/internal/query"
	"sciview/internal/scratch"
	"sciview/internal/tuple"
)

// spillSeq namespaces plan-operator scratch prefixes, so concurrent
// queries sharing a compute node's scratch disk never collide.
var spillSeq atomic.Int64

// sortEmitRows is the external merge's output batch size.
const sortEmitRows = 4096

// sortOp is the blocking ORDER BY operator. In memory it absorbs the
// child's batches in arrival order — which the sources keep identical
// to the materialized path's row order — and emits one fully-ordered
// batch via the same stable sort the materialized order-and-limit step
// used.
//
// With a spill budget stamped (SortNode.SpillBudget > 0), absorption is
// bounded: whenever the buffer exceeds the budget it is stable-sorted
// and written to the scratch disk as one sorted run, each record
// carrying its global arrival index. The final merge compares
// (keys..., arrival index) — a strict total order whose restriction to
// the keys reproduces the stable sort exactly, regardless of where the
// run boundaries fell. The output is therefore byte-identical to the
// in-memory path at every budget; only the batch boundaries differ
// (bounded emission instead of one monolithic batch).
type sortOp struct {
	opstat
	node    *SortNode
	child   Operator
	emitted bool

	// External-mode state.
	mgr     *scratch.Manager
	merge   *runMerge
	outID   tuple.ID
	started bool
	peakAcc int64
}

func (o *sortOp) Schema() tuple.Schema { return o.node.Schema() }

func (o *sortOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *sortOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	if !o.started {
		o.started = true
		if err := o.absorb(); err != nil {
			return nil, err
		}
	}
	if o.merge != nil {
		st, err := o.merge.nextBatch(sortEmitRows)
		if err != nil || st == nil {
			if err == nil {
				err = io.EOF
			}
			return nil, err
		}
		if b := o.peakAcc + int64(st.Bytes()); b > o.s.PeakBytes {
			o.s.PeakBytes = b
		}
		o.observe(st)
		return st, nil
	}
	return nil, io.EOF
}

// absorb drains the child. Within budget everything stays in one
// buffer, sorted and staged for single-batch emission; over budget the
// buffer spills as sorted runs and a merge is prepared.
func (o *sortOp) absorb() error {
	node := o.node
	schema := o.child.Schema()
	idxs := make([]int, len(node.Keys))
	for i, k := range node.Keys {
		idxs[i] = schema.Index(k.Attr) // validated at NewSort
	}
	spilling := node.SpillBudget > 0 && node.SpillDisk != nil

	acc := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: -1}, schema, 0)
	var runs []sortRun
	var arrivals int64 // global arrival index of acc's first row
	first := true
	for {
		st, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if first && st.NumRows() > 0 {
			o.outID = st.ID
			acc.ID = st.ID
			first = false
		}
		if err := acc.AppendAll(st); err != nil {
			return err
		}
		if b := int64(acc.Bytes()); b > o.peakAcc {
			o.peakAcc = b
		}
		if spilling && int64(acc.Bytes()) > node.SpillBudget && acc.NumRows() > 0 {
			if o.mgr == nil {
				o.mgr = scratch.NewManager(node.SpillDisk,
					fmt.Sprintf("plan/sort/r%d", spillSeq.Add(1)),
					node.SpillOwner, node.SpillTrace, nil)
			}
			run, err := spillSortedRun(o.mgr, acc, node.Keys, idxs, arrivals, len(runs))
			if err != nil {
				return err
			}
			runs = append(runs, run)
			arrivals += int64(acc.NumRows())
			acc = tuple.NewSubTable(o.outID, schema, 0)
		}
	}

	order := sortOrder(acc, node.Keys, idxs)
	if len(runs) == 0 {
		// Everything fit: the historical single-batch path, byte for byte.
		out := tuple.NewSubTable(acc.ID, acc.Schema, acc.NumRows())
		row := tuple.GetRow(acc.Schema.NumAttrs())
		defer tuple.PutRow(row)
		for _, r := range order {
			out.AppendRow(acc.Row(r, row)...)
		}
		o.s.PeakBytes = int64(acc.Bytes()) + int64(out.Bytes())
		o.merge = &runMerge{single: out}
		return nil
	}
	// External merge: the spilled runs plus the in-memory tail.
	m := &runMerge{schema: schema, keys: node.Keys, idxs: idxs, id: o.outID}
	for _, run := range runs {
		rd, err := run.f.Open()
		if err != nil {
			return err
		}
		m.curs = append(m.curs, &runCursor{
			rd: rd, base: run.base,
			buf: make([]byte, schema.NumAttrs()*4+4),
			row: make([]float32, schema.NumAttrs()),
		})
	}
	if acc.NumRows() > 0 {
		m.curs = append(m.curs, &runCursor{
			acc: acc, ord: order, base: arrivals,
			row: make([]float32, schema.NumAttrs()),
		})
	}
	o.merge = m
	return m.start()
}

func (o *sortOp) Close() error {
	if o.mgr != nil {
		o.s.SpillBytes = o.mgr.BytesWritten()
		o.s.SpillReadBytes = o.mgr.BytesRead()
		o.s.SpillParts = o.mgr.Files()
		o.mgr.ReleaseAll()
	}
	return o.child.Close()
}

// sortOrder returns the stable sort permutation of acc's rows by keys —
// the exact comparator the materialized path used.
func sortOrder(acc *tuple.SubTable, keys []query.OrderKey, idxs []int) []int {
	order := make([]int, acc.NumRows())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		for i, idx := range idxs {
			va, vb := acc.Value(ra, idx), acc.Value(rb, idx)
			if va == vb {
				continue
			}
			if keys[i].Desc {
				return va > vb
			}
			return va < vb
		}
		return false
	})
	return order
}

// sortRun is one spilled sorted run. Records are the row's float32
// columns followed by a uint32 within-run arrival offset; base + offset
// is the row's global arrival index, the stable sort's tiebreaker.
type sortRun struct {
	f    *scratch.File
	base int64
}

// spillSortedRun stable-sorts the buffer and writes it as one run.
func spillSortedRun(mgr *scratch.Manager, acc *tuple.SubTable, keys []query.OrderKey, idxs []int, base int64, n int) (sortRun, error) {
	order := sortOrder(acc, keys, idxs)
	na := acc.Schema.NumAttrs()
	recSize := na*4 + 4
	size := acc.NumRows() * recSize
	buf := tuple.GetBuf(size)[:size]
	off := 0
	for _, r := range order {
		for c := 0; c < na; c++ {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(acc.Value(r, c)))
			off += 4
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(r))
		off += 4
	}
	f := mgr.Create(fmt.Sprintf("run%d", n))
	err := f.AppendRows(buf, int64(acc.NumRows()))
	tuple.PutBuf(buf)
	if err != nil {
		return sortRun{}, err
	}
	return sortRun{f: f, base: base}, nil
}

// runCursor walks one sorted run: a scratch file (rd != nil) or the
// in-memory tail buffer (acc != nil). row/arr hold the current record.
type runCursor struct {
	// Disk run.
	rd  *scratch.Reader
	buf []byte
	// In-memory tail.
	acc *tuple.SubTable
	ord []int
	pos int

	base int64
	row  []float32
	arr  int64
	ok   bool
}

// advance loads the cursor's next record; ok=false at run end.
func (c *runCursor) advance() error {
	if c.acc != nil {
		if c.pos >= len(c.ord) {
			c.ok = false
			return nil
		}
		r := c.ord[c.pos]
		c.pos++
		for i := range c.row {
			c.row[i] = c.acc.Value(r, i)
		}
		c.arr = c.base + int64(r)
		c.ok = true
		return nil
	}
	if _, err := io.ReadFull(c.rd, c.buf); err != nil {
		if err == io.EOF {
			c.ok = false
			return nil
		}
		return fmt.Errorf("plan: sort run read: %w", err)
	}
	off := 0
	for i := range c.row {
		c.row[i] = math.Float32frombits(binary.LittleEndian.Uint32(c.buf[off:]))
		off += 4
	}
	c.arr = c.base + int64(binary.LittleEndian.Uint32(c.buf[off:]))
	c.ok = true
	return nil
}

// runMerge merges sorted runs with a loser tree, comparing
// (keys..., global arrival index) — a strict total order equal to the
// stable sort's. single short-circuits the in-memory case.
type runMerge struct {
	single *tuple.SubTable

	schema tuple.Schema
	keys   []query.OrderKey
	idxs   []int
	id     tuple.ID
	curs   []*runCursor
	lt     *loserTree
	done   bool
}

// before is the merge comparator over two loaded cursors.
func (m *runMerge) before(a, b *runCursor) bool {
	for i, idx := range m.idxs {
		va, vb := a.row[idx], b.row[idx]
		if va == vb {
			continue
		}
		if m.keys[i].Desc {
			return va > vb
		}
		return va < vb
	}
	return a.arr < b.arr
}

// start primes every cursor and builds the loser tree.
func (m *runMerge) start() error {
	for _, c := range m.curs {
		if err := c.advance(); err != nil {
			return err
		}
	}
	m.lt = newLoserTree(len(m.curs), func(a, b int) bool {
		ca, cb := m.curs[a], m.curs[b]
		if !ca.ok {
			return false
		}
		if !cb.ok {
			return true
		}
		return m.before(ca, cb)
	})
	return nil
}

// nextBatch emits up to n merged rows; nil at end of stream.
func (m *runMerge) nextBatch(n int) (*tuple.SubTable, error) {
	if m.single != nil {
		st := m.single
		m.single = nil
		m.done = true
		return st, nil
	}
	if m.done || m.lt == nil {
		return nil, nil
	}
	out := tuple.NewSubTable(m.id, m.schema, n)
	for out.NumRows() < n {
		w := m.lt.winner
		if w < 0 || !m.curs[w].ok {
			m.done = true
			break
		}
		out.AppendRow(m.curs[w].row...)
		if err := m.curs[w].advance(); err != nil {
			return nil, err
		}
		m.lt.fix()
	}
	if out.NumRows() == 0 {
		return nil, nil
	}
	return out, nil
}

// loserTree is a k-way tournament tree over cursor indices: winner is
// the index of the smallest loaded cursor, internal nodes remember the
// loser of each match so replacing the winner replays one root path
// instead of k-1 comparisons. beats(a, b) reports cursor a ordering
// strictly before cursor b (exhausted cursors lose to everything).
type loserTree struct {
	m      int // leaf count, power of two
	k      int
	lose   []int
	winner int
	beats  func(a, b int) bool
}

func newLoserTree(k int, beats func(a, b int) bool) *loserTree {
	m := 1
	for m < k {
		m *= 2
	}
	lt := &loserTree{m: m, k: k, lose: make([]int, m), beats: beats}
	win := make([]int, 2*m)
	for i := 0; i < m; i++ {
		if i < k {
			win[m+i] = i
		} else {
			win[m+i] = -1
		}
	}
	for node := m - 1; node >= 1; node-- {
		a, b := win[2*node], win[2*node+1]
		w, l := lt.pick(a, b)
		win[node], lt.lose[node] = w, l
	}
	lt.winner = win[1]
	return lt
}

// pick returns (winner, loser) of a match; -1 always loses.
func (lt *loserTree) pick(a, b int) (int, int) {
	if a < 0 {
		return b, a
	}
	if b < 0 {
		return a, b
	}
	if lt.beats(b, a) {
		return b, a
	}
	return a, b
}

// fix replays the winner's root path after its cursor advanced (the
// cursor may now be exhausted; beats handles that as an automatic
// loss).
func (lt *loserTree) fix() {
	w := lt.winner
	if w < 0 {
		return
	}
	cur := w
	for node := (lt.m + w) / 2; node >= 1; node /= 2 {
		winner, loser := lt.pick(cur, lt.lose[node])
		cur, lt.lose[node] = winner, loser
	}
	lt.winner = cur
}
