package plan

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"sciview/internal/engine"
	"sciview/internal/tuple"
)

// joinOp runs the chosen engine with a streaming sink: the engine's
// per-slot (IJ) or per-group (GH) goroutines emit batches as edges or
// bucket pairs complete, and the reorder sink releases them downstream in
// part order — the exact order the materialized path concatenated
// Collected in — so the streamed row sequence is byte-identical to the
// materialized one at any worker, prefetch or parallelism setting.
//
// Close before EOF is the early-exit path: it cancels the engine context
// (stopping slots through the existing cancel/prefetch-reap machinery),
// unblocks producers parked in the sink, waits for the run goroutine and
// synthesizes a Result carrying the schedule fraction actually joined.
type joinOp struct {
	opstat
	node     *JoinNode
	sink     *reorder
	cancel   context.CancelFunc
	resCh    chan engineOutcome
	progress *engine.Progress
	opened   time.Time
	res      *engine.Result
}

type engineOutcome struct {
	res *engine.Result
	err error
}

func (o *joinOp) Schema() tuple.Schema { return o.node.schema }

func (o *joinOp) Open(ctx context.Context) error {
	jctx, cancel := context.WithCancel(ctx)
	o.cancel = cancel
	// Under fault injection the engines may discard and replay a part's
	// output; commit-on-Done buffering keeps replays invisible downstream
	// at the price of an unbounded per-part buffer. Without fault
	// injection parts are never discarded, so the head part streams
	// through and the others throttle on a bounded buffer.
	o.sink = newReorder(o.node.Parts, o.node.Cluster.Config.Faults != nil)
	o.progress = &engine.Progress{}
	req := o.node.Req
	req.Collect = false
	req.Sink = o.sink
	req.Progress = o.progress
	o.resCh = make(chan engineOutcome, 1)
	o.opened = time.Now()
	go func() {
		res, err := o.node.Eng.RunContext(jctx, o.node.Cluster, req)
		o.sink.finish(err)
		o.resCh <- engineOutcome{res, err}
	}()
	return nil
}

func (o *joinOp) Next() (*tuple.SubTable, error) {
	start := time.Now()
	defer o.timed(start)
	st, err := o.sink.next()
	if err != nil {
		return nil, err
	}
	o.observe(st)
	return st, nil
}

func (o *joinOp) Close() error {
	if o.cancel == nil {
		return nil
	}
	earlyExit := !o.sink.isFinished()
	o.cancel()
	o.sink.close()
	oc := <-o.resCh
	o.cancel = nil
	o.s.PeakBytes = o.sink.peak()
	switch {
	case oc.err == nil:
		o.res = oc.res
		if o.res != nil {
			// The engines bill every scratch write/read (GH's bucket
			// partitioning and any budget-forced build-side round-trips)
			// through their observation collectors.
			o.s.SpillBytes = o.res.Observed.SpillWriteBytes
			o.s.SpillReadBytes = o.res.Observed.SpillReadBytes
		}
	case earlyExit:
		// The consumer stopped first (LIMIT satisfied); the cancellation
		// error is ours. Report what the truncated run did execute.
		cl := o.node.Cluster
		o.res = &engine.Result{
			Engine:      o.node.Eng.Name(),
			Tuples:      o.s.Rows,
			Elapsed:     time.Since(o.opened),
			Traffic:     cl.Traffic(),
			Health:      cl.HealthStats(),
			UnitsJoined: o.progress.Joined.Load(),
			UnitsTotal:  o.progress.Total.Load(),
			Phases:      map[string]time.Duration{},
		}
	}
	// A genuine engine error already surfaced through Next; Close stays
	// clean so the driver reports the original error once.
	return nil
}

// result is the engine result after Close: the real one for completed
// runs, a synthesized one for early exits, nil when the run failed.
func (o *joinOp) result() *engine.Result { return o.res }

// errSinkClosed aborts producers once the consumer has gone away.
var errSinkClosed = errors.New("plan: result consumer closed")

// reorder is the engine.Sink that restores deterministic output order:
// batches arrive concurrently from per-part producer goroutines and are
// released to the single consumer in part order — every batch of part 0
// (in emission order), then part 1, and so on.
//
// Two modes:
//
//   - streaming (committed=false): a part's batches are consumable as
//     soon as they arrive; producers of not-yet-drained parts block after
//     maxBufferedBatches, bounding resident memory. Used when no fault
//     injection is configured, so parts are never discarded.
//
//   - commit-on-Done (committed=true): a part's batches are held back
//     until the part's final attempt succeeds (Done), and a failed
//     attempt's Discard drops them, keeping fault-tolerant replays
//     byte-invisible. Emit never blocks in this mode.
type reorder struct {
	mu        sync.Mutex
	cond      *sync.Cond
	pending   [][]*tuple.SubTable
	done      []bool
	head      int
	committed bool
	closed    bool
	finished  bool
	runErr    error
	curBytes  int64
	peakBytes int64
}

func newReorder(parts int, committed bool) *reorder {
	r := &reorder{
		pending:   make([][]*tuple.SubTable, parts),
		done:      make([]bool, parts),
		committed: committed,
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Emit implements engine.Sink.
func (r *reorder) Emit(part int, st *tuple.SubTable) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.committed {
		for !r.closed && len(r.pending[part]) >= maxBufferedBatches {
			r.cond.Wait()
		}
	}
	if r.closed {
		return errSinkClosed
	}
	r.pending[part] = append(r.pending[part], st)
	r.curBytes += int64(st.Bytes())
	if r.curBytes > r.peakBytes {
		r.peakBytes = r.curBytes
	}
	r.cond.Broadcast()
	return nil
}

// Done implements engine.Sink: part's final attempt completed.
func (r *reorder) Done(part int) {
	r.mu.Lock()
	r.done[part] = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Discard implements engine.Sink: a failed attempt's batches are dropped
// before the part replays.
func (r *reorder) Discard(part int) {
	r.mu.Lock()
	for _, st := range r.pending[part] {
		r.curBytes -= int64(st.Bytes())
	}
	r.pending[part] = nil
	r.done[part] = false
	r.cond.Broadcast()
	r.mu.Unlock()
}

// finish marks the engine run complete (err non-nil on failure); the
// consumer drains remaining released batches and then sees EOF or err.
func (r *reorder) finish(err error) {
	r.mu.Lock()
	r.finished = true
	r.runErr = err
	r.cond.Broadcast()
	r.mu.Unlock()
}

// close detaches the consumer: parked producers abort with errSinkClosed.
func (r *reorder) close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *reorder) isFinished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished
}

func (r *reorder) peak() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peakBytes
}

// next blocks until the next in-order batch is available, the stream ends
// (io.EOF) or the run fails.
func (r *reorder) next() (*tuple.SubTable, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.runErr != nil {
			return nil, r.runErr
		}
		if r.head >= len(r.pending) {
			if r.finished {
				return nil, io.EOF
			}
			r.cond.Wait()
			continue
		}
		if len(r.pending[r.head]) > 0 && (!r.committed || r.done[r.head]) {
			st := r.pending[r.head][0]
			r.pending[r.head] = r.pending[r.head][1:]
			r.curBytes -= int64(st.Bytes())
			r.cond.Broadcast()
			return st, nil
		}
		if r.done[r.head] && len(r.pending[r.head]) == 0 {
			r.head++
			continue
		}
		r.cond.Wait()
	}
}
