package planner

import (
	"strings"
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/oilres"
	"sciview/internal/partition"
)

// BenchmarkLimitEarlyExit measures what the streaming plan layer buys for
// `SELECT ... LIMIT n`: the materialized path always executes the whole
// edge schedule and then truncates, the streaming path cancels the join
// once the limit is satisfied. Reported metrics:
//
//	edgefrac — fraction of the IJ edge schedule actually joined
//	peakMB   — resident join output (reorder-sink peak for streaming,
//	           full collected result for materialized)
func BenchmarkLimitEarlyExit(b *testing.B) {
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(16, 16, 8), LeftPart: partition.D(4, 4, 4), RightPart: partition.D(4, 4, 4),
		StorageNodes: 2, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 4, CacheBytes: 32 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		b.Fatal(err)
	}
	ex := NewExecutor(cl)
	ex.Planner.AlphaBuild = 80e-9
	ex.Planner.AlphaLookup = 40e-9
	ex.Planner.Force = "ij"
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		b.Fatal(err)
	}
	const q = "SELECT * FROM V1 LIMIT 64"

	for _, mode := range []string{"materialized", "streaming"} {
		b.Run(mode, func(b *testing.B) {
			ex.Materialize = mode == "materialized"
			var joined, total, peak int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ex.Exec(q)
				if err != nil {
					b.Fatal(err)
				}
				if out.Rows.NumRows() != 64 {
					b.Fatalf("rows = %d, want 64", out.Rows.NumRows())
				}
				res := out.Result
				joined += res.UnitsJoined
				total += res.UnitsTotal
				if ex.Materialize {
					for _, st := range res.Collected {
						if st != nil {
							peak += int64(st.Bytes())
						}
					}
				} else {
					for _, op := range res.Operators {
						if strings.HasPrefix(op.Op, "Join[") {
							peak += op.PeakBytes
						}
					}
				}
			}
			b.StopTimer()
			if total > 0 {
				b.ReportMetric(float64(joined)/float64(total), "edgefrac")
			}
			if b.N > 0 {
				b.ReportMetric(float64(peak)/float64(b.N)/(1<<20), "peakMB")
			}
		})
	}
}
