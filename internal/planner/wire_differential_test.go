package planner

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/fault"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/retry"
)

// Wire-compression differential: every leg in this file runs the same
// query twice — once over the row-major fetch codec, once over the
// compressed columnar one — and requires the results to agree. The codec
// must be bit-invisible: encode → filter/project in the compressed domain
// → decode reproduces the row-major fetch byte for byte, under every
// format, engine, scheduling knob, and fault schedule.

// wireExecutor builds an executor over ds with the given fetch codec.
func wireExecutor(t *testing.T, ds *oilres.Dataset, storage, nj int, force, wire string) *Executor {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		StorageNodes: storage, ComputeNodes: nj, CacheBytes: 16 << 20, Wire: wire,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cl)
	ex.Planner.AlphaBuild = 80e-9
	ex.Planner.AlphaLookup = 40e-9
	ex.Planner.Force = force
	for _, ddl := range []string{
		"CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)",
		"CREATE VIEW V2 AS SELECT * FROM V1 WHERE x BETWEEN 0 AND 4",
	} {
		if _, err := ex.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	return ex
}

// TestGoldenCorpusWireInvariant runs the whole golden SQL corpus with the
// wire codec on and off, over both chunk formats. Under IJ the comparison
// is byte-exact for every query; under GH the per-query comparison mode
// applies (the engine's arrival order is nondeterministic independent of
// the codec).
func TestGoldenCorpusWireInvariant(t *testing.T) {
	for _, format := range []string{"rowmajor", "rle"} {
		for _, force := range []string{"ij", "gh"} {
			t.Run(format+"/"+force, func(t *testing.T) {
				ds, err := oilres.Generate(oilres.Config{
					Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4),
					StorageNodes: 2, Seed: 11, Format: format,
				})
				if err != nil {
					t.Fatal(err)
				}
				plain := wireExecutor(t, ds, 2, 2, force, "")
				enc := wireExecutor(t, ds, 2, 2, force, "colenc")
				for _, q := range goldenCorpus {
					a, errA := plain.Exec(q.sql)
					b, errB := enc.Exec(q.sql)
					if (errA != nil) != (errB != nil) {
						t.Fatalf("%s: rowmajor err=%v, colenc err=%v", q.sql, errA, errB)
					}
					if errA != nil {
						continue
					}
					mode := q.gh
					if force == "ij" || a.Decision == nil || a.Decision.Chosen != "gh" {
						mode = ghExact
					}
					if mode == ghSkip {
						if a.Rows.NumRows() != b.Rows.NumRows() {
							t.Fatalf("%s: %d rows vs %d", q.sql, a.Rows.NumRows(), b.Rows.NumRows())
						}
						continue
					}
					diffCompare(t, q.sql, "rowmajor vs colenc", a, b, mode == ghExact)
				}
			})
		}
	}
}

// TestDifferentialWireRandom is the property-harness leg: random datasets
// (format randomized too), random queries, random prefetch/parallelism on
// the compressed side — the decoded bytes must match the row-major run
// exactly.
func TestDifferentialWireRandom(t *testing.T) {
	const queriesPerSeed = 5
	for seed := int64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed * 5531))
			cfg := diffConfigs[r.Intn(len(diffConfigs))]
			cfg.StorageNodes = 2 + r.Intn(2)
			cfg.Seed = 1 + r.Int63n(1<<30)
			if r.Intn(2) == 0 {
				cfg.Format = "rle"
			}
			ds, err := oilres.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			dims := [3]int{cfg.Grid.X, cfg.Grid.Y, cfg.Grid.Z}
			nj := 1 + r.Intn(3)
			plain := wireExecutor(t, ds, cfg.StorageNodes, nj, "ij", "")
			enc := wireExecutor(t, ds, cfg.StorageNodes, nj, "ij", "colenc")
			for q := 0; q < queriesPerSeed; q++ {
				sql, _ := genDiffQuery(r, dims)
				base := runDiffLeg(t, plain, sql, false, 0, 0)
				pf, par := r.Intn(3), r.Intn(3)
				got := runDiffLeg(t, enc, sql, false, pf, par)
				diffCompare(t, fmt.Sprintf("%s [prefetch=%d parallel=%d]", sql, pf, par),
					"rowmajor vs colenc", base, got, true)
			}
		})
	}
}

// TestDifferentialWireUnderFaults gives both codecs the identical
// op-counted chaos schedule over a replicated dataset: retries, failovers
// and engine recoveries must stay byte-invisible with the compressed form
// traveling the failover path.
func TestDifferentialWireUnderFaults(t *testing.T) {
	cfg := oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4),
		StorageNodes: 3, Seed: 23, Format: "rle",
	}
	ds, err := oilres.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := oilres.Replicate(ds.Catalog, ds.Stores, 2); err != nil {
		t.Fatal(err)
	}
	newEx := func(t *testing.T, wire string) *Executor {
		inj, err := fault.Parse("crash:storage-1:fetch:5,crash:compute-0:edge:3")
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			StorageNodes: 3, ComputeNodes: 2, CacheBytes: 16 << 20, Wire: wire,
			Faults:           inj,
			Retry:            retry.Policy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond},
			BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond,
		}, ds.Catalog, ds.Stores)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(cl)
		ex.Planner.AlphaBuild = 80e-9
		ex.Planner.AlphaLookup = 40e-9
		ex.Planner.Force = "ij"
		if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
			t.Fatal(err)
		}
		return ex
	}
	r := rand.New(rand.NewSource(777))
	dims := [3]int{8, 8, 4}
	for q := 0; q < 4; q++ {
		sql, _ := genDiffQuery(r, dims)
		a := runDiffLeg(t, newEx(t, ""), sql, false, 0, 0)
		b := runDiffLeg(t, newEx(t, "colenc"), sql, false, 0, 0)
		diffCompare(t, sql, "faulted rowmajor vs colenc", a, b, true)
	}
}
