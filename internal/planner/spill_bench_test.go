package planner

import (
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/oilres"
	"sciview/internal/partition"
)

// BenchmarkSpillSweep prices graceful degradation: the same
// sort + grouped-aggregate + join query at shrinking memory budgets,
// from unbudgeted (everything resident) through partially degraded (the
// aggregate spills) down to fully out-of-core (sort runs, aggregation
// partitions and join build round-trips all on scratch). Results are
// byte-identical at every point — the sweep measures what the budget
// costs in wall-clock and how many bytes hit the scratch disks
// (spillMB).
func BenchmarkSpillSweep(b *testing.B) {
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(32, 32, 8), LeftPart: partition.D(4, 4, 4), RightPart: partition.D(4, 4, 4),
		StorageNodes: 2, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 4, CacheBytes: 32 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		b.Fatal(err)
	}
	ex := NewExecutor(cl)
	ex.Planner.AlphaBuild = 80e-9
	ex.Planner.AlphaLookup = 40e-9
	ex.Planner.Force = "ij"
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		b.Fatal(err)
	}
	const q = "SELECT x, y, COUNT(*), MIN(wp), MAX(oilp) FROM V1 GROUP BY x, y ORDER BY x DESC, y"

	budgets := []struct {
		name   string
		budget int64
	}{
		{"inmem", 0},
		{"1MiB", 1 << 20},
		{"64KiB", 64 << 10},
		{"4KiB", 4 << 10},
	}
	var wantRows int
	for _, tc := range budgets {
		b.Run("budget="+tc.name, func(b *testing.B) {
			ex.MemBudget = tc.budget
			var spill int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ex.Exec(q)
				if err != nil {
					b.Fatal(err)
				}
				if wantRows == 0 {
					wantRows = out.Rows.NumRows()
				}
				if out.Rows.NumRows() != wantRows {
					b.Fatalf("rows = %d, want %d", out.Rows.NumRows(), wantRows)
				}
				if out.Result != nil {
					for _, st := range out.Result.Operators {
						spill += st.SpillBytes
					}
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(spill)/float64(b.N)/(1<<20), "spillMB")
			}
		})
	}
}
