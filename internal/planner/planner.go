// Package planner implements the Query Planning Service: it derives the
// cost-model parameters of a join-view query from the catalog and cluster
// configuration, predicts both QES run times, chooses the faster engine,
// and executes SQL statements end to end (view creation, scans, joins, and
// aggregation).
package planner

import (
	"context"
	"fmt"

	"sciview/internal/cluster"
	"sciview/internal/congraph"
	"sciview/internal/costmodel"
	"sciview/internal/engine"
	"sciview/internal/gh"
	"sciview/internal/ij"
	"sciview/internal/metadata"
	"sciview/internal/tuple"
)

// Planner is the Query Planning Service.
type Planner struct {
	// AlphaBuild and AlphaLookup are the host-calibrated CPU constants in
	// seconds/tuple — the static layer's starting point. Zero values
	// trigger a one-time calibration.
	AlphaBuild  float64
	AlphaLookup float64
	// Force overrides the cost-model decision: "", "ij" or "gh".
	Force string
	// Est is the layered cost estimator: Decide derives static Params as
	// always, then lets Est substitute live-calibrated constants once
	// enough runs have been observed (Observe feeds it). New installs
	// one; set nil to pin decisions to the static configuration layer.
	Est *costmodel.Estimator

	ijEngine engine.Engine
	ghEngine engine.Engine
}

// New returns a planner with lazily calibrated CPU constants and a fresh
// online calibration layer.
func New() *Planner {
	return &Planner{Est: costmodel.NewEstimator(), ijEngine: ij.New(), ghEngine: gh.New()}
}

// Decision records why an engine was chosen. Params holds the constants
// the predictions actually used (post-calibration when the estimator has
// graduated signals); Constants and Calibrated record the provenance.
type Decision struct {
	Params    costmodel.Params
	PredictIJ costmodel.Breakdown
	PredictGH costmodel.Breakdown
	Chosen    string
	Forced    bool
	// Calibrated reports whether any live-calibrated constant displaced
	// its static counterpart in Params.
	Calibrated bool
	// Constants is the estimator snapshot the decision consulted (zero
	// when the planner has no estimator).
	Constants costmodel.Constants
}

// calibrate fills the CPU constants if unset.
func (p *Planner) calibrate() {
	if p.AlphaBuild <= 0 || p.AlphaLookup <= 0 {
		p.AlphaBuild, p.AlphaLookup = costmodel.Calibrate(1 << 16)
	}
}

// ParamsFor derives the Table 1 parameters of a request against a cluster:
// tuple counts and record sizes from the catalog, the connectivity edge
// count from the page-level join index, node counts and bandwidths from the
// cluster configuration.
func (p *Planner) ParamsFor(cl *cluster.Cluster, req engine.Request) (costmodel.Params, error) {
	if err := req.Validate(); err != nil {
		return costmodel.Params{}, err
	}
	p.calibrate()
	leftDef, err := cl.Catalog.Table(req.LeftTable)
	if err != nil {
		return costmodel.Params{}, err
	}
	rightDef, err := cl.Catalog.Table(req.RightTable)
	if err != nil {
		return costmodel.Params{}, err
	}
	leftFilter := filterFor(leftDef.Schema, req.Filter)
	leftFilter.Versions = req.LeftWindow()
	rightFilter := filterFor(rightDef.Schema, req.Filter)
	rightFilter.Versions = req.RightWindow()
	leftDescs, err := cl.Catalog.ChunksInRange(req.LeftTable, leftFilter)
	if err != nil {
		return costmodel.Params{}, err
	}
	rightDescs, err := cl.Catalog.ChunksInRange(req.RightTable, rightFilter)
	if err != nil {
		return costmodel.Params{}, err
	}
	if len(leftDescs) == 0 || len(rightDescs) == 0 {
		return costmodel.Params{}, fmt.Errorf("planner: no chunks in range (left %d, right %d)",
			len(leftDescs), len(rightDescs))
	}
	graph, err := congraph.Build(leftDescs, rightDescs, req.JoinAttrs)
	if err != nil {
		return costmodel.Params{}, err
	}
	var leftRows, rightRows int64
	for _, d := range leftDescs {
		leftRows += int64(d.Rows)
	}
	for _, d := range rightDescs {
		rightRows += int64(d.Rows)
	}
	cfg := cl.Config
	alphaBuild := p.AlphaBuild + cfg.CPUSecPerOp
	alphaLookup := p.AlphaLookup + cfg.CPUSecPerOp
	// Projection pushdown shrinks the records that actually travel; the
	// models must price the projected sizes or they would mis-rank the
	// engines for narrow queries.
	project := req.EffectiveProject()
	return costmodel.Params{
		T:           leftRows,
		CR:          leftRows / int64(len(leftDescs)),
		CS:          rightRows / int64(len(rightDescs)),
		Ne:          int64(graph.NumEdges()),
		RSR:         engine.ProjectedSchema(leftDef.Schema, project).RecordSize(),
		RSS:         engine.ProjectedSchema(rightDef.Schema, project).RecordSize(),
		Ns:          cfg.StorageNodes,
		Nj:          cfg.ComputeNodes,
		NetBw:       cfg.NetAggregateBw(),
		ReadBw:      cfg.DiskReadBw,
		WriteBw:     cfg.DiskWriteBw,
		AlphaBuild:  alphaBuild,
		AlphaLookup: alphaLookup,
		WorkFactor:  req.WorkFactor,
	}, nil
}

// Decide derives the static Params, applies the estimator's graduated
// live constants, predicts both engines from the resulting model, and
// picks the faster one (honoring Force). The returned Decision carries
// full provenance — the applied Params, both predictions, and whether
// calibrated constants displaced configured ones — and every decision is
// counted in the estimator's decision metric.
func (p *Planner) Decide(cl *cluster.Cluster, req engine.Request) (engine.Engine, *Decision, error) {
	params, err := p.ParamsFor(cl, req)
	if err != nil {
		return nil, nil, err
	}
	d := &Decision{}
	if p.Est != nil {
		params, d.Constants = p.Est.Apply(params)
		d.Calibrated = d.Constants.AnyLive()
	}
	d.Params = params
	if cl.Config.SharedFS {
		d.PredictIJ = params.IJSharedFS()
		d.PredictGH = params.GHSharedFS()
	} else {
		d.PredictIJ = params.IJ()
		d.PredictGH = params.GH()
	}
	var eng engine.Engine
	switch p.Force {
	case "ij":
		d.Chosen, d.Forced = "ij", true
		eng = p.ijEngine
	case "gh":
		d.Chosen, d.Forced = "gh", true
		eng = p.ghEngine
	case "":
		// Ties (e.g. unlimited I/O makes the spill penalty vanish) go to
		// IJ, which never does extra work the model cannot see.
		if d.PredictIJ.Total <= d.PredictGH.Total {
			d.Chosen, eng = "ij", p.ijEngine
		} else {
			d.Chosen, eng = "gh", p.ghEngine
		}
	default:
		return nil, nil, fmt.Errorf("planner: unknown forced engine %q", p.Force)
	}
	p.Est.RecordDecision(d.Chosen, d.Forced, d.Calibrated)
	return eng, d, nil
}

// Choose is Decide under its historical name, kept for the existing call
// sites.
func (p *Planner) Choose(cl *cluster.Cluster, req engine.Request) (engine.Engine, *Decision, error) {
	return p.Decide(cl, req)
}

// Observe closes the loop: it feeds a finished run's measured costs into
// the estimator's calibration layer. Safe on nil results, nil planners,
// and planners without an estimator.
func (p *Planner) Observe(res *engine.Result) {
	if p == nil || p.Est == nil || res == nil {
		return
	}
	o := res.Observed
	p.Est.Observe(costmodel.Observation{
		Engine:            res.Engine,
		FetchBytes:        o.FetchBytes,
		FetchSeconds:      o.FetchSeconds,
		BuildTuples:       o.BuildTuples,
		BuildSeconds:      o.BuildSeconds,
		ProbeTuples:       o.ProbeTuples,
		ProbeSeconds:      o.ProbeSeconds,
		SpillWriteBytes:   o.SpillWriteBytes,
		SpillWriteSeconds: o.SpillWriteSeconds,
		SpillReadBytes:    o.SpillReadBytes,
		SpillReadSeconds:  o.SpillReadSeconds,
	})
}

// Run chooses an engine and executes the request.
func (p *Planner) Run(cl *cluster.Cluster, req engine.Request) (*engine.Result, *Decision, error) {
	return p.RunContext(context.Background(), cl, req)
}

// RunContext is Run observing ctx through the chosen engine.
func (p *Planner) RunContext(ctx context.Context, cl *cluster.Cluster, req engine.Request) (*engine.Result, *Decision, error) {
	eng, d, err := p.Decide(cl, req)
	if err != nil {
		return nil, nil, err
	}
	res, err := eng.RunContext(ctx, cl, req)
	if err != nil {
		return nil, nil, err
	}
	p.Observe(res)
	return res, d, nil
}

// filterFor keeps the constraints applicable to one schema (mirrors the
// per-engine behaviour so predictions see the same chunk sets).
func filterFor(schema tuple.Schema, f metadata.Range) metadata.Range {
	var out metadata.Range
	for i, a := range f.Attrs {
		if schema.Index(a) < 0 {
			continue
		}
		out.Attrs = append(out.Attrs, a)
		out.Lo = append(out.Lo, f.Lo[i])
		out.Hi = append(out.Hi, f.Hi[i])
	}
	return out
}
