package planner

import (
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/query"
)

func testExecutor(t *testing.T) *Executor {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 4), RightPart: partition.D(4, 4, 4),
		StorageNodes: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 16 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cl)
	ex.Planner.AlphaBuild = 80e-9
	ex.Planner.AlphaLookup = 40e-9
	return ex
}

func TestExecCreateAndSelectView(t *testing.T) {
	ex := testExecutor(t)
	out, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)")
	if err != nil {
		t.Fatal(err)
	}
	if out.ViewCreated != "V1" {
		t.Errorf("out = %+v", out)
	}
	if _, ok := ex.View("V1"); !ok {
		t.Fatal("view not registered")
	}
	// Duplicate view rejected.
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x)"); err == nil {
		t.Error("duplicate view accepted")
	}

	out, err = ex.Exec("SELECT * FROM V1")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.NumRows() != 8*8*4 {
		t.Errorf("rows = %d", out.Rows.NumRows())
	}
	if out.Result == nil || out.Decision == nil {
		t.Error("missing execution metadata")
	}
	if got := out.Rows.Schema.Names(); len(got) != 5 {
		t.Errorf("schema = %v", got)
	}
}

func TestExecSelectViewWithRange(t *testing.T) {
	ex := testExecutor(t)
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	out, err := ex.Exec("SELECT * FROM V1 WHERE x BETWEEN 0 AND 3 AND z = 0")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.NumRows() != 4*8 {
		t.Errorf("rows = %d, want 32", out.Rows.NumRows())
	}
}

func TestExecProjection(t *testing.T) {
	ex := testExecutor(t)
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	out, err := ex.Exec("SELECT wp, oilp FROM V1 WHERE z = 1")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.Schema.NumAttrs() != 2 || out.Rows.Schema.Attrs[0].Name != "wp" {
		t.Errorf("schema = %v", out.Rows.Schema.Names())
	}
	if out.Rows.NumRows() != 64 {
		t.Errorf("rows = %d", out.Rows.NumRows())
	}
}

func TestExecTableScan(t *testing.T) {
	ex := testExecutor(t)
	out, err := ex.Exec("SELECT * FROM T1 WHERE x = 0 AND y = 0")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.NumRows() != 4 {
		t.Errorf("rows = %d, want 4", out.Rows.NumRows())
	}
	if out.Result != nil {
		t.Error("table scan should not report a join result")
	}
}

func TestExecAggregates(t *testing.T) {
	ex := testExecutor(t)
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	out, err := ex.Exec("SELECT AVG(wp), COUNT(*) FROM V1 GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.NumRows() != 4 {
		t.Fatalf("groups = %d", out.Rows.NumRows())
	}
	for r := 0; r < 4; r++ {
		if out.Rows.Value(r, 2) != 64 {
			t.Errorf("group %d count = %v", r, out.Rows.Value(r, 2))
		}
	}
	// Aggregate over a plain table.
	out, err = ex.Exec("SELECT MAX(oilp) FROM T1")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.NumRows() != 1 {
		t.Errorf("rows = %d", out.Rows.NumRows())
	}
	if v := out.Rows.Value(0, 0); v <= 0 || v >= 1 {
		t.Errorf("max oilp = %v", v)
	}
}

func TestExecHaving(t *testing.T) {
	ex := testExecutor(t)
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	all, err := ex.Exec("SELECT AVG(wp) FROM V1 GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	kept, err := ex.Exec("SELECT AVG(wp) FROM V1 GROUP BY z HAVING AVG(wp) >= 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if kept.Rows.NumRows() >= all.Rows.NumRows() {
		t.Errorf("HAVING kept %d of %d groups", kept.Rows.NumRows(), all.Rows.NumRows())
	}
	for r := 0; r < kept.Rows.NumRows(); r++ {
		if kept.Rows.Value(r, 1) < 0.5 {
			t.Errorf("group %d avg = %v below threshold", r, kept.Rows.Value(r, 1))
		}
	}
}

func TestExecValidationErrors(t *testing.T) {
	ex := testExecutor(t)
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"SELECT zzz syntax error FROM",
		"SELECT * FROM NoSuchTable",
		"SELECT *, wp FROM V1",
		"SELECT wp, AVG(oilp) FROM V1 GROUP BY z",     // wp not in GROUP BY
		"SELECT wp FROM V1 GROUP BY wp HAVING wp = 1", // having needs agg... parser catches
		"SELECT wp FROM V1 GROUP BY wp",               // group by without aggregates
	}
	for _, q := range bad {
		if _, err := ex.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

func TestExecGroupedPlainColumn(t *testing.T) {
	ex := testExecutor(t)
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	// z appears in GROUP BY, so selecting it alongside aggregates is legal.
	out, err := ex.Exec("SELECT z, AVG(wp) FROM V1 GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.Schema.Attrs[0].Name != "z" {
		t.Errorf("schema = %v", out.Rows.Schema.Names())
	}
}

func TestExecOrderByAndLimit(t *testing.T) {
	ex := testExecutor(t)
	out, err := ex.Exec("SELECT * FROM T1 WHERE y = 0 AND z = 0 ORDER BY x DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.NumRows() != 3 {
		t.Fatalf("rows = %d", out.Rows.NumRows())
	}
	// x ∈ 0..7 descending: 7, 6, 5.
	for i, want := range []float32{7, 6, 5} {
		if out.Rows.Value(i, 0) != want {
			t.Errorf("row %d x = %v, want %v", i, out.Rows.Value(i, 0), want)
		}
	}
	// ORDER BY over aggregation output columns.
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	out, err = ex.Exec("SELECT z, AVG(wp) FROM V1 GROUP BY z ORDER BY avg_wp DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows.NumRows() != 2 {
		t.Fatalf("rows = %d", out.Rows.NumRows())
	}
	if out.Rows.Value(0, 1) < out.Rows.Value(1, 1) {
		t.Error("not descending by avg_wp")
	}
	// Unknown order column fails.
	if _, err := ex.Exec("SELECT * FROM T1 ORDER BY nope"); err == nil {
		t.Error("unknown ORDER BY column accepted")
	}
	// LIMIT 0 gives empty result.
	out, err = ex.Exec("SELECT * FROM T1 LIMIT 0")
	if err != nil || out.Rows.NumRows() != 0 {
		t.Errorf("LIMIT 0: rows=%d err=%v", out.Rows.NumRows(), err)
	}
}

func TestExecDerivedView(t *testing.T) {
	ex := testExecutor(t)
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z) WHERE z BETWEEN 0 AND 1"); err != nil {
		t.Fatal(err)
	}
	// Restriction view layered on V1: predicates stack.
	if _, err := ex.Exec("CREATE VIEW V2 AS SELECT * FROM V1 WHERE x BETWEEN 0 AND 3"); err != nil {
		t.Fatal(err)
	}
	out, err := ex.Exec("SELECT COUNT(*) FROM V2")
	if err != nil {
		t.Fatal(err)
	}
	// x ∈ 0..3, z ∈ 0..1, y free (8): 4·8·2 = 64.
	if out.Rows.Value(0, 0) != 64 {
		t.Errorf("layered count = %v, want 64", out.Rows.Value(0, 0))
	}
	// Query-time predicates stack again.
	out, err = ex.Exec("SELECT COUNT(*) FROM V2 WHERE y = 0")
	if err != nil || out.Rows.Value(0, 0) != 8 {
		t.Errorf("double-layered count = %v, want 8 (err %v)", out.Rows.Value(0, 0), err)
	}
	// Deriving from a missing view fails.
	if _, err := ex.Exec("CREATE VIEW V9 AS SELECT * FROM NoView"); err == nil {
		t.Error("derivation from unknown view accepted")
	}
	// Contradictory layered predicates fail at definition time.
	if _, err := ex.Exec("CREATE VIEW V3 AS SELECT * FROM V2 WHERE x BETWEEN 9 AND 10"); err == nil {
		t.Error("contradictory layered restriction accepted")
	}
}

func TestNeededAttrs(t *testing.T) {
	parse := func(src string) *query.Select {
		st, err := query.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return st.(*query.Select)
	}
	classify := func(s *query.Select) (bool, []string, []query.SelectItem) {
		star, plain, aggs, err := classifyItems(s)
		if err != nil {
			t.Fatal(err)
		}
		return star, plain, aggs
	}
	// SELECT * keeps everything.
	s := parse("SELECT * FROM V")
	star, plain, aggs := classify(s)
	if got := neededAttrs(star, plain, aggs, s); got != nil {
		t.Errorf("star needed = %v, want nil", got)
	}
	// Aggregation: agg attrs + group by + having, deduplicated; COUNT(*)
	// contributes nothing.
	s = parse("SELECT z, AVG(wp), COUNT(*) FROM V GROUP BY z HAVING MAX(wp) > 0.5")
	star, plain, aggs = classify(s)
	got := neededAttrs(star, plain, aggs, s)
	want := map[string]bool{"z": true, "wp": true}
	if len(got) != len(want) {
		t.Fatalf("needed = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected needed attr %q", n)
		}
	}
	// Non-aggregate ORDER BY columns are needed.
	s = parse("SELECT wp FROM V ORDER BY wp DESC")
	star, plain, aggs = classify(s)
	got = neededAttrs(star, plain, aggs, s)
	if len(got) != 1 || got[0] != "wp" {
		t.Errorf("needed = %v", got)
	}
}
