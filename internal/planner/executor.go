package planner

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sciview/internal/cluster"
	"sciview/internal/dds"
	"sciview/internal/engine"
	"sciview/internal/metrics"
	"sciview/internal/query"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// Executor runs SQL statements against a cluster, maintaining the set of
// defined views. It is the front door the examples and command-line tools
// use.
//
// SELECTs execute through the streaming plan layer (internal/plan) by
// default: the statement is lowered to an operator DAG and evaluated
// batch by batch, with results byte-identical to the fully-materialized
// path. Materialize switches back to the materialized reference
// implementation (kept as the golden oracle the streaming path is tested
// against).
type Executor struct {
	Cluster *cluster.Cluster
	Planner *Planner
	// Trace, when non-nil, records execution events of every join the
	// executor runs.
	Trace *trace.Recorder
	// Materialize forces the pre-plan execution path: collect the whole
	// join, then filter/project/aggregate/sort/limit in place.
	Materialize bool
	// Metrics, when non-nil, is threaded into every lowered plan so runs
	// accumulate per-operator totals into the live registry.
	Metrics *metrics.Registry
	// MemBudget, when positive, stamps every lowered plan with a memory
	// budget: blocking operators (sort, aggregation, join builds) spill
	// to compute-node scratch disks instead of exceeding their share.
	// Results are byte-identical to unbudgeted execution.
	MemBudget int64

	// mu guards views: concurrent Exec calls through the service layer
	// may interleave CREATE VIEW with SELECTs.
	mu    sync.RWMutex
	views map[string]*dds.JoinView
}

// NewExecutor returns an executor over the given cluster.
func NewExecutor(cl *cluster.Cluster) *Executor {
	return &Executor{Cluster: cl, Planner: New(), views: make(map[string]*dds.JoinView)}
}

// Output is the result of executing one statement.
type Output struct {
	// ViewCreated is set for CREATE VIEW statements.
	ViewCreated string
	// Rows holds the result rows for SELECT statements.
	Rows *tuple.SubTable
	// Result and Decision are set when a join executed.
	Result   *engine.Result
	Decision *Decision
	// Explain is the rendered plan tree for EXPLAIN statements.
	Explain string
}

// View returns a defined view by name.
func (ex *Executor) View(name string) (*dds.JoinView, bool) {
	ex.mu.RLock()
	defer ex.mu.RUnlock()
	v, ok := ex.views[name]
	return v, ok
}

// DefineView registers a view definition directly (bypassing SQL).
func (ex *Executor) DefineView(v *dds.JoinView) error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if _, ok := ex.views[v.Name]; ok {
		return fmt.Errorf("planner: view %q already exists", v.Name)
	}
	ex.views[v.Name] = v
	return nil
}

// Exec parses and executes one statement.
func (ex *Executor) Exec(sql string) (*Output, error) {
	return ex.ExecContext(context.Background(), sql)
}

// ExecContext is Exec observing ctx: a cancelled context aborts a
// streaming SELECT mid-join.
func (ex *Executor) ExecContext(ctx context.Context, sql string) (*Output, error) {
	st, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *query.CreateView:
		var v *dds.JoinView
		if s.Derived() {
			// A restriction view layered on an existing view: same join,
			// predicates conjoined — a DDS built on another DDS.
			base, ok := ex.View(s.Left)
			if !ok {
				return nil, fmt.Errorf("planner: view %q derives from unknown view %q", s.Name, s.Left)
			}
			merged, err := dds.MergePreds(base.Where, s.Where)
			if err != nil {
				return nil, err
			}
			v = &dds.JoinView{
				Name: s.Name, Left: base.Left, Right: base.Right,
				JoinAttrs: base.JoinAttrs, Where: merged,
			}
		} else {
			var err error
			v, err = dds.FromCreate(ex.Cluster.Catalog, s)
			if err != nil {
				return nil, err
			}
		}
		if err := ex.DefineView(v); err != nil {
			return nil, err
		}
		return &Output{ViewCreated: v.Name}, nil
	case *query.Select:
		if ex.Materialize {
			return ex.execSelect(s)
		}
		l, err := ex.lowerSelect(s)
		if err != nil {
			return nil, err
		}
		return ex.ExecLowered(ctx, l)
	case *query.Explain:
		l, err := ex.lowerSelect(s.Select)
		if err != nil {
			return nil, err
		}
		return &Output{Explain: l.Plan.Explain(), Decision: l.Decision}, nil
	default:
		return nil, fmt.Errorf("planner: unsupported statement %T", st)
	}
}

// classifyItems splits the select list and validates SQL grouping rules.
func classifyItems(s *query.Select) (star bool, plain []string, aggs []query.SelectItem, err error) {
	inGroupBy := func(attr string) bool {
		for _, g := range s.GroupBy {
			if g == attr {
				return true
			}
		}
		return false
	}
	for _, it := range s.Items {
		switch {
		case it.Star:
			star = true
		case it.Agg != query.AggNone:
			aggs = append(aggs, it)
		default:
			plain = append(plain, it.Attr)
		}
	}
	if star && (len(plain) > 0 || len(aggs) > 0) {
		return false, nil, nil, fmt.Errorf("planner: * cannot be combined with other select items")
	}
	if len(aggs) > 0 {
		for _, a := range plain {
			if !inGroupBy(a) {
				return false, nil, nil, fmt.Errorf("planner: non-aggregated column %q must appear in GROUP BY", a)
			}
		}
		if star {
			return false, nil, nil, fmt.Errorf("planner: * cannot be aggregated; use COUNT(*)")
		}
	} else if len(s.GroupBy) > 0 {
		return false, nil, nil, fmt.Errorf("planner: GROUP BY requires aggregate select items")
	} else if s.Having != nil {
		return false, nil, nil, fmt.Errorf("planner: HAVING requires aggregation")
	}
	return star, plain, aggs, nil
}

func (ex *Executor) execSelect(s *query.Select) (*Output, error) {
	star, plain, aggs, err := classifyItems(s)
	if err != nil {
		return nil, err
	}
	out := &Output{}
	needed := neededAttrs(star, plain, aggs, s)

	// Obtain the base rows: from a view (join) or a table (scan).
	var rows []*tuple.SubTable
	if v, ok := ex.View(s.From); ok {
		req, err := v.Request(s.Where, true)
		if err != nil {
			return nil, err
		}
		req.Project = ex.pushdownFor(v, needed)
		req.Trace = ex.Trace
		res, dec, err := ex.Planner.Run(ex.Cluster, req)
		if err != nil {
			return nil, err
		}
		out.Result, out.Decision = res, dec
		rows = res.Collected
	} else {
		st, err := dds.ScanTable(ex.Cluster, s.From, s.Where, needed)
		if err != nil {
			return nil, err
		}
		rows = []*tuple.SubTable{st}
	}

	// Post-process per the select list. Aggregation folds each joiner's
	// output into a partial concurrently and merges (the distributed
	// aggregation DDS), so raw join output is never concatenated.
	if len(aggs) > 0 {
		agg, err := dds.AggregateDistributed(rows, aggs, s.GroupBy, s.Having)
		if err != nil {
			return nil, err
		}
		// Plain columns already validated ⊆ GROUP BY; Aggregate emits the
		// group-by attrs first, so project the requested layout.
		out.Rows, err = orderAndLimit(agg, s.OrderBy, s.Limit)
		return out, err
	}

	flat, err := concat(rows)
	if err != nil {
		return nil, err
	}
	if !star {
		flat, err = flat.Project(plain)
		if err != nil {
			return nil, err
		}
	}
	out.Rows, err = orderAndLimit(flat, s.OrderBy, s.Limit)
	return out, err
}

// neededAttrs lists the attributes a query's outputs depend on, or nil for
// SELECT * (fetch everything). Range predicates are excluded: the BDS
// applies them before the projection.
func neededAttrs(star bool, plain []string, aggs []query.SelectItem, s *query.Select) []string {
	if star {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		if name == "" || name == "*" || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	for _, p := range plain {
		add(p)
	}
	for _, a := range aggs {
		add(a.Attr)
	}
	for _, g := range s.GroupBy {
		add(g)
	}
	if s.Having != nil {
		add(s.Having.Attr)
	}
	if len(aggs) == 0 {
		// Non-aggregate ORDER BY references output columns directly.
		for _, k := range s.OrderBy {
			add(k.Attr)
		}
	}
	return out
}

// pushdownFor decides whether a needed-attribute set can be pushed down to
// the view's base tables: every name must be a plain attribute of one of
// them (names such as the join result's "r_"-prefixed columns disable the
// pushdown — correctness first).
func (ex *Executor) pushdownFor(v *dds.JoinView, needed []string) []string {
	if needed == nil {
		return nil
	}
	leftDef, err := ex.Cluster.Catalog.Table(v.Left)
	if err != nil {
		return nil
	}
	rightDef, err := ex.Cluster.Catalog.Table(v.Right)
	if err != nil {
		return nil
	}
	for _, n := range needed {
		if leftDef.Schema.Index(n) < 0 && rightDef.Schema.Index(n) < 0 {
			return nil
		}
	}
	return needed
}

// orderAndLimit applies ORDER BY keys (which must name output columns) and
// a LIMIT to the result.
func orderAndLimit(st *tuple.SubTable, keys []query.OrderKey, limit int) (*tuple.SubTable, error) {
	if len(keys) == 0 && (limit < 0 || limit >= st.NumRows()) {
		return st, nil
	}
	idxs := make([]int, len(keys))
	for i, k := range keys {
		idx := st.Schema.Index(k.Attr)
		if idx < 0 {
			return nil, fmt.Errorf("planner: ORDER BY references %q, not an output column of %v",
				k.Attr, st.Schema.Names())
		}
		idxs[i] = idx
	}
	order := make([]int, st.NumRows())
	for i := range order {
		order[i] = i
	}
	if len(keys) > 0 {
		sort.SliceStable(order, func(a, b int) bool {
			ra, rb := order[a], order[b]
			for i, idx := range idxs {
				va, vb := st.Value(ra, idx), st.Value(rb, idx)
				if va == vb {
					continue
				}
				if keys[i].Desc {
					return va > vb
				}
				return va < vb
			}
			return false
		})
	}
	n := len(order)
	if limit >= 0 && limit < n {
		n = limit
	}
	out := tuple.NewSubTable(st.ID, st.Schema, n)
	row := make([]float32, st.Schema.NumAttrs())
	for i := 0; i < n; i++ {
		out.AppendRow(st.Row(order[i], row)...)
	}
	return out, nil
}

// concat merges per-joiner outputs into one sub-table.
func concat(parts []*tuple.SubTable) (*tuple.SubTable, error) {
	var first *tuple.SubTable
	for _, p := range parts {
		if p != nil {
			first = p
			break
		}
	}
	if first == nil {
		return nil, fmt.Errorf("planner: no result rows")
	}
	out := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: -1}, first.Schema, 0)
	for _, p := range parts {
		if p == nil {
			continue
		}
		if err := out.AppendAll(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
