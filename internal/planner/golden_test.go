package planner

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/fault"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/retry"
	"sciview/internal/tuple"
)

// GH comparison modes: the GH engine's row arrival order depends on
// scanner interleaving even without faults (the materialized path was just
// as nondeterministic), so per-query we declare what CAN be compared when
// the join ran under GH. IJ output is byte-deterministic, so under IJ
// every query is compared exactly.
const (
	ghExact  = "exact"  // a total ORDER BY or order-insensitive aggregate pins the bytes
	ghSorted = "sorted" // row multiset is exact; compare canonically sorted
	ghSkip   = "skip"   // SUM/AVG float accumulation order varies run-to-run
)

type goldenQuery struct {
	sql string
	gh  string
}

// goldenCorpus is the full SQL surface the streaming path must reproduce:
// every ORDER BY + LIMIT + HAVING combination, projections, pushdowns,
// derived views, table scans, and the validation errors.
var goldenCorpus = []goldenQuery{
	{"SELECT * FROM V1", ghSorted},
	{"SELECT * FROM V1 WHERE x BETWEEN 0 AND 3 AND z = 0", ghSorted},
	{"SELECT * FROM V1 WHERE wp >= 0", ghSorted},
	{"SELECT wp, oilp FROM V1 WHERE z = 1", ghSorted},
	{"SELECT * FROM V1 ORDER BY x, y, z", ghExact},
	{"SELECT * FROM V1 ORDER BY x DESC, y, z LIMIT 5", ghExact},
	{"SELECT wp, oilp FROM V1 ORDER BY wp DESC, oilp LIMIT 7", ghSkip},
	{"SELECT * FROM V1 LIMIT 3", ghSkip},
	{"SELECT * FROM V1 LIMIT 0", ghExact},
	{"SELECT * FROM V1 LIMIT 100000", ghSorted},
	{"SELECT x, COUNT(*), MIN(wp), MAX(wp) FROM V1 GROUP BY x ORDER BY x", ghExact},
	{"SELECT x, AVG(wp) FROM V1 GROUP BY x ORDER BY x", ghSkip},
	{"SELECT z, SUM(oilp), COUNT(*) FROM V1 GROUP BY z HAVING COUNT(*) > 10 ORDER BY z DESC LIMIT 2", ghSkip},
	{"SELECT MIN(wp), MAX(wp) FROM V1", ghExact},
	{"SELECT COUNT(*) FROM V1 WHERE y < 2", ghExact},
	{"SELECT * FROM V2", ghSorted},
	{"SELECT oilp FROM V2 ORDER BY oilp LIMIT 4", ghSkip},
	// Table scans never touch a join engine: exact under any force.
	{"SELECT * FROM T1 WHERE x = 0 AND y = 0", ghExact},
	{"SELECT oilp FROM T1 ORDER BY oilp DESC LIMIT 6", ghExact},
	{"SELECT x, AVG(oilp) FROM T1 GROUP BY x ORDER BY x LIMIT 3", ghExact},
	{"SELECT x, COUNT(*) FROM T1 GROUP BY x HAVING COUNT(*) >= 16 ORDER BY x", ghExact},
	{"SELECT COUNT(*) FROM T2", ghExact},
	// Validation failures must surface on both paths.
	{"SELECT nosuch FROM V1", ghExact},
	{"SELECT * FROM V1 ORDER BY nosuch", ghExact},
	{"SELECT wp FROM V1 ORDER BY x", ghExact},
	{"SELECT wp FROM V1 GROUP BY wp", ghExact},
}

func goldenExecutor(t *testing.T, nj int, force string) *Executor {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4),
		StorageNodes: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: nj, CacheBytes: 16 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cl)
	ex.Planner.AlphaBuild = 80e-9
	ex.Planner.AlphaLookup = 40e-9
	ex.Planner.Force = force
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Exec("CREATE VIEW V2 AS SELECT * FROM V1 WHERE x BETWEEN 0 AND 4"); err != nil {
		t.Fatal(err)
	}
	return ex
}

func goldenRows(st *tuple.SubTable) []string {
	if st == nil {
		return nil
	}
	buf := make([]float32, st.Schema.NumAttrs())
	var out []string
	for r := 0; r < st.NumRows(); r++ {
		out = append(out, fmt.Sprint(st.Row(r, buf)))
	}
	return out
}

// compareGolden asserts the streaming output equals the materialized one
// under the query's comparison mode for the engine that actually ran.
func compareGolden(t *testing.T, q goldenQuery, want, got *Output) {
	t.Helper()
	// Under the adaptive planner the two runs may legitimately choose
	// different engines (the first run's observed costs recalibrate the
	// model before the second), so the mode must relax whenever EITHER
	// side ran GH: IJ order is deterministic but differs from GH's.
	mode := ghExact
	if (want.Decision != nil && want.Decision.Chosen == "gh") ||
		(got.Decision != nil && got.Decision.Chosen == "gh") {
		mode = q.gh
	}
	if mode == ghSkip {
		// Row multiset size is still pinned.
		if want.Rows.NumRows() != got.Rows.NumRows() {
			t.Fatalf("%s: %d rows, want %d", q.sql, got.Rows.NumRows(), want.Rows.NumRows())
		}
		return
	}
	wn, gn := want.Rows.Schema.Names(), got.Rows.Schema.Names()
	if fmt.Sprint(wn) != fmt.Sprint(gn) {
		t.Fatalf("%s: schema %v, want %v", q.sql, gn, wn)
	}
	if want.Rows.ID != got.Rows.ID {
		t.Fatalf("%s: result ID %v, want %v", q.sql, got.Rows.ID, want.Rows.ID)
	}
	wr, gr := goldenRows(want.Rows), goldenRows(got.Rows)
	if mode == ghSorted {
		sort.Strings(wr)
		sort.Strings(gr)
	}
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d rows, want %d", q.sql, len(gr), len(wr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Fatalf("%s: row %d = %s, want %s", q.sql, i, gr[i], wr[i])
		}
	}
}

// runGoldenQuery executes one corpus query both ways; mutate (optional)
// adjusts the streaming plan's engine request before execution.
func runGoldenQuery(t *testing.T, ex *Executor, q goldenQuery, mutate func(*Lowered)) {
	t.Helper()
	ex.Materialize = true
	want, wantErr := ex.Exec(q.sql)
	ex.Materialize = false
	var got *Output
	var gotErr error
	if mutate == nil {
		got, gotErr = ex.Exec(q.sql)
	} else {
		var l *Lowered
		if l, gotErr = ex.Lower(q.sql); gotErr == nil {
			mutate(l)
			got, gotErr = ex.ExecLowered(context.Background(), l)
		}
	}
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("%s: streaming err = %v, materialized err = %v", q.sql, gotErr, wantErr)
	}
	if wantErr != nil {
		return
	}
	compareGolden(t, q, want, got)
}

// TestGoldenStreamingMatchesMaterialized is the tentpole's acceptance
// test: the full corpus through the streaming plan path must reproduce the
// materialized reference output at several compute-node counts, under both
// forced engines and under the cost-model choice.
func TestGoldenStreamingMatchesMaterialized(t *testing.T) {
	cases := []struct {
		name  string
		nj    int
		force string
	}{
		{"ij-nj1", 1, "ij"},
		{"ij-nj3", 3, "ij"},
		{"gh-nj2", 2, "gh"},
		{"auto-nj2", 2, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex := goldenExecutor(t, tc.nj, tc.force)
			for _, q := range goldenCorpus {
				runGoldenQuery(t, ex, q, nil)
			}
		})
	}
}

// TestGoldenPrefetchAndParallelism: prefetch and intra-slot parallelism
// change scheduling, never bytes — streaming output with the knobs set
// must equal the default materialized output.
func TestGoldenPrefetchAndParallelism(t *testing.T) {
	ex := goldenExecutor(t, 3, "ij")
	knobs := []struct {
		name        string
		prefetch    int
		parallelism int
	}{
		{"prefetch2", 2, 0},
		{"parallel2", 0, 2},
		{"prefetch2-parallel2", 2, 2},
	}
	corpus := []goldenQuery{
		{"SELECT * FROM V1", ghExact},
		{"SELECT * FROM V1 ORDER BY x, y, z LIMIT 9", ghExact},
		{"SELECT x, AVG(wp) FROM V1 GROUP BY x ORDER BY x", ghExact},
	}
	for _, k := range knobs {
		t.Run(k.name, func(t *testing.T) {
			for _, q := range corpus {
				runGoldenQuery(t, ex, q, func(l *Lowered) {
					if l.Join != nil {
						l.Join.Req.Prefetch = k.prefetch
						l.Join.Req.Parallelism = k.parallelism
					}
				})
			}
		})
	}
}

// TestGoldenUnderChaos re-runs a corpus slice with fault injection: the
// streaming sink's commit-on-Done buffering must keep replayed parts
// byte-invisible, so faulted streaming output equals faulted materialized
// output. Each run gets a fresh cluster (fresh op-counted injector) over
// the same replicated dataset, like the chaos suite does.
func TestGoldenUnderChaos(t *testing.T) {
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4),
		StorageNodes: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := oilres.Replicate(ds.Catalog, ds.Stores, 2); err != nil {
		t.Fatal(err)
	}
	newEx := func(t *testing.T, force, faults string) *Executor {
		inj, err := fault.Parse(faults)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			StorageNodes: 3, ComputeNodes: 3, CacheBytes: 32 << 20,
			Faults:           inj,
			Retry:            retry.Policy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond},
			BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond,
		}, ds.Catalog, ds.Stores)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(cl)
		ex.Planner.AlphaBuild = 80e-9
		ex.Planner.AlphaLookup = 40e-9
		ex.Planner.Force = force
		if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
			t.Fatal(err)
		}
		return ex
	}
	cases := []struct {
		name   string
		force  string
		faults string
		corpus []goldenQuery
	}{
		{
			name: "ij", force: "ij",
			faults: "crash:storage-1:fetch:5,crash:compute-0:edge:3",
			corpus: []goldenQuery{
				{"SELECT * FROM V1", ghExact},
				{"SELECT * FROM V1 ORDER BY x, y, z LIMIT 20", ghExact},
				{"SELECT * FROM V1 LIMIT 10", ghExact},
				{"SELECT x, AVG(wp) FROM V1 GROUP BY x ORDER BY x", ghExact},
			},
		},
		{
			name: "gh", force: "gh",
			faults: "crash:storage-1:fetch:5,crash:compute-0:write:3",
			corpus: []goldenQuery{
				{"SELECT * FROM V1", ghSorted},
				{"SELECT x, COUNT(*), MIN(wp), MAX(wp) FROM V1 GROUP BY x ORDER BY x", ghExact},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, q := range tc.corpus {
				// Fresh clusters per run: the injector schedule is op-counted,
				// so materialized and streaming runs see identical faults.
				mat := newEx(t, tc.force, tc.faults)
				mat.Materialize = true
				want, wantErr := mat.Exec(q.sql)
				str := newEx(t, tc.force, tc.faults)
				got, gotErr := str.Exec(q.sql)
				if wantErr != nil || gotErr != nil {
					t.Fatalf("%s: materialized err = %v, streaming err = %v", q.sql, wantErr, gotErr)
				}
				compareGolden(t, q, want, got)
			}
		})
	}
}

// TestConcurrentViewDefineAndSelect exercises the executor's views map
// from many goroutines (run under -race): CREATE VIEW racing SELECTs used
// to be an unsynchronized map access.
func TestConcurrentViewDefineAndSelect(t *testing.T) {
	ex := testExecutor(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("CV%d", i)
			if _, err := ex.Exec(fmt.Sprintf(
				"CREATE VIEW %s AS SELECT * FROM T1 JOIN T2 ON (x, y, z)", name)); err != nil {
				t.Error(err)
				return
			}
			if _, err := ex.Exec("SELECT COUNT(*) FROM " + name); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

// TestExplainStatement: EXPLAIN renders the plan tree with the pushdown
// and the cost-model breakdown without executing anything.
func TestExplainStatement(t *testing.T) {
	ex := goldenExecutor(t, 2, "")
	out, err := ex.Exec("EXPLAIN SELECT wp FROM V1 WHERE x < 3 ORDER BY wp LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != nil {
		t.Error("EXPLAIN executed the query")
	}
	for _, wantSub := range []string{
		"Limit(5)", "Sort(wp)", "Project(wp)", "Join[", "cost: ij=", "chose=", "calib=", "Scan(T1)", "Scan(T2)", "project[",
	} {
		if !strings.Contains(out.Explain, wantSub) {
			t.Errorf("explain output missing %q:\n%s", wantSub, out.Explain)
		}
	}
	if out.Decision == nil {
		t.Error("EXPLAIN of a join query should carry the decision")
	}

	out, err = ex.Exec("EXPLAIN SELECT COUNT(*) FROM T1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Explain, "Scan(T1)") || !strings.Contains(out.Explain, "Aggregate(COUNT(*))") {
		t.Errorf("scan explain:\n%s", out.Explain)
	}
}
