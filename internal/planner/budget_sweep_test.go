package planner

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The budget-sweep differential harness: out-of-core execution must be an
// implementation detail. Every query's output at every budget — from
// everything-fits down to a few batches of scratch — must equal the
// unbudgeted output byte for byte (modulo the engine's declared comparison
// mode), and the spill machinery it exercised must be visible in the
// operator stats, never in the rows.

// sweepBudgets spans the degradation range over the golden dataset (~256
// join rows): 1 GiB fits everything (budget stamped, mode in-mem), 16 KiB
// forces the wide sorts external, 1 KiB forces sort, grouped aggregation
// and the join build side all out-of-core at once.
var sweepBudgets = []int64{1 << 30, 16 << 10, 1 << 10}

// sweepCorpus is the golden corpus plus seeded-random queries: filtered
// scans under a total order, grouped order-insensitive aggregates, and
// measure sorts with unique tie-breaks — shapes that stay byte-comparable
// under either engine.
func sweepCorpus() []goldenQuery {
	qs := append([]goldenQuery(nil), goldenCorpus...)
	rng := rand.New(rand.NewSource(0x5eed))
	dims := []string{"x", "y", "z"}
	for i := 0; i < 6; i++ {
		switch rng.Intn(3) {
		case 0:
			d := dims[rng.Intn(len(dims))]
			lo := rng.Intn(4)
			sql := fmt.Sprintf(
				"SELECT * FROM V1 WHERE %s BETWEEN %d AND %d ORDER BY x, y, z LIMIT %d",
				d, lo, lo+rng.Intn(4), 1+rng.Intn(40))
			qs = append(qs, goldenQuery{sql, ghExact})
		case 1:
			g := dims[rng.Intn(len(dims))]
			sql := fmt.Sprintf(
				"SELECT %s, COUNT(*), MIN(wp), MAX(oilp) FROM V1 GROUP BY %s ORDER BY %s",
				g, g, g)
			qs = append(qs, goldenQuery{sql, ghExact})
		default:
			// (x, y, z) is a join key, so the tie-break is total: exact
			// under any engine.
			sql := fmt.Sprintf(
				"SELECT x, y, z, wp FROM V1 ORDER BY wp DESC, x, y, z LIMIT %d",
				1+rng.Intn(30))
			qs = append(qs, goldenQuery{sql, ghExact})
		}
	}
	return qs
}

// TestDifferentialBudgetSweep runs the sweep corpus at every budget against
// the same executor's unbudgeted output. IJ output is byte-deterministic,
// so the IJ leg compares every query exactly; the GH leg compares under
// each query's declared mode (GH row arrival order is scheduling-dependent
// with or without a budget).
func TestDifferentialBudgetSweep(t *testing.T) {
	cases := []struct {
		name  string
		nj    int
		force string
	}{
		{"ij-nj2", 2, "ij"},
		{"gh-nj2", 2, "gh"},
	}
	corpus := sweepCorpus()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex := goldenExecutor(t, tc.nj, tc.force)
			for _, q := range corpus {
				ex.MemBudget = 0
				want, wantErr := ex.Exec(q.sql)
				for _, budget := range sweepBudgets {
					ex.MemBudget = budget
					got, gotErr := ex.Exec(q.sql)
					if (wantErr != nil) != (gotErr != nil) {
						t.Fatalf("%s @ budget %d: err = %v, unbudgeted err = %v",
							q.sql, budget, gotErr, wantErr)
					}
					if wantErr != nil {
						continue
					}
					compareGolden(t, q, want, got)
				}
			}
		})
	}
}

// TestBudgetSweepSpillsAllOperators pins the degradation floor: at the
// smallest sweep budget a sort + grouped-aggregate + join query must push
// all three blocking operators out-of-core in a single run — visible in
// the per-operator spill counters — while the rows stay identical to the
// unbudgeted run.
func TestBudgetSweepSpillsAllOperators(t *testing.T) {
	const sql = "SELECT x, y, COUNT(*), MIN(wp) FROM V1 GROUP BY x, y ORDER BY x DESC, y"
	ex := goldenExecutor(t, 2, "ij")
	ex.MemBudget = 0
	want, err := ex.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	ex.MemBudget = sweepBudgets[len(sweepBudgets)-1]
	got, err := ex.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, goldenQuery{sql, ghExact}, want, got)

	if got.Result == nil {
		t.Fatal("budgeted run carried no engine result")
	}
	spilled := map[string]bool{}
	for _, st := range got.Result.Operators {
		kind := st.Op
		if k := strings.IndexByte(kind, '('); k >= 0 {
			kind = kind[:k]
		}
		switch {
		case strings.HasPrefix(kind, "Sort"):
			if st.SpillBytes > 0 && st.SpillParts > 0 {
				spilled["sort"] = true
			}
		case strings.HasPrefix(kind, "Aggregate"):
			if st.SpillBytes > 0 && st.SpillParts > 0 {
				spilled["aggregate"] = true
			}
		case strings.HasPrefix(kind, "Join"):
			if st.SpillBytes > 0 && st.SpillReadBytes > 0 {
				spilled["join"] = true
			}
		}
	}
	for _, op := range []string{"sort", "aggregate", "join"} {
		if !spilled[op] {
			t.Errorf("budget %d: %s did not spill; operator stats: %+v",
				sweepBudgets[len(sweepBudgets)-1], op, got.Result.Operators)
		}
	}

	// The unbudgeted reference must not have spilled anything.
	if want.Result != nil {
		for _, st := range want.Result.Operators {
			if st.SpillBytes != 0 || st.SpillParts != 0 {
				t.Errorf("unbudgeted run spilled: %+v", st)
			}
		}
	}
}

// TestExplainSpillAnnotations: budget-stamped plans render the spill line
// on every spill-capable operator, with the mode the estimate selects.
func TestExplainSpillAnnotations(t *testing.T) {
	ex := goldenExecutor(t, 2, "ij")
	const sql = "EXPLAIN SELECT x, COUNT(*) FROM V1 GROUP BY x ORDER BY x"

	out, err := ex.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.Explain, "spill:") {
		t.Errorf("unbudgeted explain has a spill line:\n%s", out.Explain)
	}

	ex.MemBudget = 1 << 10
	out, err = ex.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.Explain, "spill: budget="); n != 3 {
		t.Errorf("budgeted explain has %d spill lines, want 3 (sort, aggregate, join):\n%s", n, out.Explain)
	}
	if !strings.Contains(out.Explain, "mode=external") {
		t.Errorf("1 KiB budget over ~256 join rows should show an external mode:\n%s", out.Explain)
	}

	ex.MemBudget = 1 << 30
	out, err = ex.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.Explain, "mode=external") {
		t.Errorf("1 GiB budget should keep every operator in-mem:\n%s", out.Explain)
	}
}
