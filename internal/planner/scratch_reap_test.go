package planner

import (
	"fmt"
	"testing"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/fault"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/retry"
	"sciview/internal/simio"
)

// spillAllQuery pushes sort, grouped aggregation and the join build side
// out-of-core at reapBudget over the golden dataset.
const (
	spillAllQuery = "SELECT x, y, COUNT(*), MIN(wp) FROM V1 GROUP BY x, y ORDER BY x DESC, y"
	reapBudget    = 256
)

// reapExecutor builds an executor whose compute scratch disks are backed
// by auditable file stores (via cluster.Config.ScratchStores), so tests
// can verify every spill file's lifecycle ends in deletion.
func reapExecutor(t *testing.T, budget int64, faults string) (*Executor, []simio.Store, *fault.Injector) {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4),
		StorageNodes: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stores []simio.Store
	cfg := cluster.Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 16 << 20,
		ScratchStores: func(j int) simio.Store {
			fs, err := simio.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			stores = append(stores, fs)
			return fs
		},
	}
	var inj *fault.Injector
	if faults != "" {
		if inj, err = fault.Parse(faults); err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
		cfg.Retry = retry.Policy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond}
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = 20 * time.Millisecond
	}
	cl, err := cluster.New(cfg, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cl)
	ex.Planner.AlphaBuild = 80e-9
	ex.Planner.AlphaLookup = 40e-9
	ex.Planner.Force = "ij"
	ex.MemBudget = budget
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	return ex, stores, inj
}

// auditReaped fails if any compute scratch store still holds objects.
func auditReaped(t *testing.T, scenario string, stores []simio.Store) {
	t.Helper()
	for j, s := range stores {
		names, err := s.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) > 0 {
			t.Errorf("%s: compute-%d scratch not reaped: %v", scenario, j, names)
		}
	}
}

// scratchWritten sums the compute scratch disks' write counters — proof
// the scenario actually exercised the spill path before the reap audit.
func scratchWritten(ex *Executor) int64 {
	var n int64
	for _, cn := range ex.Cluster.Compute {
		n += cn.Scratch.Counters.BytesWritten.Load()
	}
	return n
}

// TestScratchReaped is the spill-hygiene test: whatever way a budgeted
// query ends — success, LIMIT early exit mid-join, or an injected fault
// on the spill path — no scratch file may outlive the run.
func TestScratchReaped(t *testing.T) {
	t.Run("success", func(t *testing.T) {
		ex, stores, _ := reapExecutor(t, reapBudget, "")
		out, err := ex.Exec(spillAllQuery)
		if err != nil {
			t.Fatal(err)
		}
		var parts int64
		if out.Result != nil {
			for _, st := range out.Result.Operators {
				parts += st.SpillParts
			}
		}
		if parts == 0 {
			t.Error("run recorded no spill parts; the reap audit is vacuous")
		}
		auditReaped(t, "success", stores)
	})

	t.Run("limit-early-exit", func(t *testing.T) {
		ex, stores, _ := reapExecutor(t, reapBudget, "")
		if _, err := ex.Exec("SELECT * FROM V1 LIMIT 3"); err != nil {
			t.Fatal(err)
		}
		if scratchWritten(ex) == 0 {
			t.Error("early-exit run wrote no scratch; the reap audit is vacuous")
		}
		auditReaped(t, "limit-early-exit", stores)
	})

	// Faulted scenarios: a short write on a scratch append, a dropped
	// scratch read during run merge / partition replay, and a compute-node
	// crash mid-spill. Each must end in a clean error or a result
	// byte-identical to the clean run — never silent truncation — and the
	// scratch stores must be empty afterward.
	faulted := []struct {
		name   string
		faults string
	}{
		{"shortwrite-scratch", "shortwrite:compute-0:write:2,shortwrite:compute-1:write:2"},
		{"drop-scratch-read", "drop:compute-0:read:2,drop:compute-1:read:2"},
		{"crash-mid-spill", "crash:compute-1:write:2"},
	}
	for _, tc := range faulted {
		t.Run(tc.name, func(t *testing.T) {
			ref, _, _ := reapExecutor(t, reapBudget, "")
			want, err := ref.Exec(spillAllQuery)
			if err != nil {
				t.Fatal(err)
			}
			ex, stores, inj := reapExecutor(t, reapBudget, tc.faults)
			got, err := ex.Exec(spillAllQuery)
			st := inj.Stats()
			if st.ShortWrites+st.Drops+st.Crashes == 0 {
				t.Errorf("%s: no fault fired; the scenario is vacuous (%+v)", tc.name, st)
			}
			if err == nil {
				// Survived the fault: the rows must be exact — a spill file
				// truncated by the short write must never decode partially.
				wr, gr := goldenRows(want.Rows), goldenRows(got.Rows)
				if fmt.Sprint(wr) != fmt.Sprint(gr) {
					t.Errorf("%s: faulted rows diverge from clean run:\ngot  %v\nwant %v", tc.name, gr, wr)
				}
			}
			auditReaped(t, tc.name, stores)
		})
	}
}
