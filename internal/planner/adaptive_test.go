package planner

import (
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/oilres"
	"sciview/internal/partition"
)

// TestCalibrationMovesConstantsAndFlipsDecision is the tentpole's feedback
// proof: when the configured constants disagree with what the hardware
// actually delivers, observed runs must pull the calibrated constants
// toward the measured simio-throttled rates and flip the planner's engine
// choice.
//
// Setup: the static CPU constants are grossly pessimistic (100µs/op —
// wrong by three orders of magnitude versus the native kernel), so the
// static model dreads IJ's per-edge lookup volume (ne·cS > 2·T here) and
// picks GH. The measured truth is that CPU is nearly free while GH's
// scratch spill pays a real (simio-throttled) disk penalty, so IJ is
// faster. After a few observed runs the calibration layer must have
// learned both facts and switched the decision to IJ.
func TestCalibrationMovesConstantsAndFlipsDecision(t *testing.T) {
	const spillBw = 2e6 // scratch writes throttled to 2 MB/s
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4),
		StorageNodes: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 16 << 20,
		DiskReadBw: 4e6, DiskWriteBw: spillBw,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cl)
	ex.Planner.AlphaBuild = 1e-4
	ex.Planner.AlphaLookup = 1e-4
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	v, _ := ex.View("V1")
	req, err := v.Request(nil, false)
	if err != nil {
		t.Fatal(err)
	}

	_, before, err := ex.Planner.Decide(cl, req)
	if err != nil {
		t.Fatal(err)
	}
	if before.Calibrated {
		t.Fatalf("cold planner claims calibrated constants: %+v", before.Constants)
	}
	if before.Chosen != "gh" {
		t.Fatalf("static decision = %s, the pessimistic alphas should make it dread IJ's %d lookups",
			before.Chosen, before.Params.Ne*before.Params.CS)
	}

	// Each observed run folds alpha, fetch and (while GH keeps winning)
	// spill measurements; DefaultMinSamples runs graduate every signal.
	for i := 0; i < 4; i++ {
		if _, err := ex.Exec("SELECT COUNT(*) FROM V1"); err != nil {
			t.Fatal(err)
		}
	}

	_, after, err := ex.Planner.Decide(cl, req)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Calibrated {
		t.Fatalf("no calibrated constants after 4 observed runs: %+v", after.Constants)
	}
	if after.Chosen != "ij" {
		t.Fatalf("calibrated decision = %s, want the flip to ij (constants %s)",
			after.Chosen, after.Constants)
	}
	c := after.Constants
	if !c.AlphaLive || c.AlphaBuild >= 1e-5 {
		t.Errorf("calibrated α_build = %g (live=%v), should have collapsed toward the native ns-scale cost",
			c.AlphaBuild, c.AlphaLive)
	}
	// The spill estimate must track the throttled scratch disk, not the
	// configured-elsewhere or unthrottled rate. Wide tolerance: the simio
	// sleep is exact but host-side work rides on top of it.
	if !c.SpillLive {
		t.Fatalf("spill signal never graduated: %s", c)
	}
	if c.SpillWriteBw < spillBw/5 || c.SpillWriteBw > spillBw*3 {
		t.Errorf("calibrated spill write bw = %.0f B/s, want near the %.0f B/s simio throttle",
			c.SpillWriteBw, spillBw)
	}
}
