package planner

import (
	"context"
	"fmt"

	"sciview/internal/plan"
	"sciview/internal/query"
	"sciview/internal/tuple"
)

// Lowering: translating a parsed SELECT into a streaming plan
// (internal/plan). The plan's source is either the view's join — engine
// chosen by the cost model here, filter merged and projection pushed down
// into the engine request — or a chunked table scan; Aggregate/Project,
// Sort and Limit stack above it exactly as the materialized post-
// processing steps did, so the streamed result is byte-identical.

// Lowered is a parsed and lowered SELECT, ready to execute. The service
// layer lowers first to weigh admission by the plan's memory estimate,
// then executes the same plan.
type Lowered struct {
	Plan *plan.Plan
	// Decision is the cost-model record for join-backed plans (nil for
	// table scans).
	Decision *Decision
	// Join is the plan's join node, if any; its Req may be adjusted
	// (shared mode, prefetch, parallelism) before Exec.
	Join *plan.JoinNode
	// AsOf is the catalog version the statement was pinned to at lowering:
	// chunk resolution everywhere in the plan sees exactly the dataset as
	// of this version, so ingest committing between admission and execution
	// never perturbs the result (snapshot isolation).
	AsOf int64
}

// Lower parses one SELECT statement and lowers it to a plan.
func (ex *Executor) Lower(sql string) (*Lowered, error) {
	st, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	s, ok := st.(*query.Select)
	if !ok {
		return nil, fmt.Errorf("planner: only SELECT statements can be lowered, got %T", st)
	}
	return ex.lowerSelect(s)
}

// lowerSelect builds the plan for a SELECT: source (join or scan), then
// Aggregate or Project, then Sort, then Limit.
func (ex *Executor) lowerSelect(s *query.Select) (*Lowered, error) {
	star, plain, aggs, err := classifyItems(s)
	if err != nil {
		return nil, err
	}
	needed := neededAttrs(star, plain, aggs, s)

	// Pin the statement to the catalog version current at lowering. Every
	// chunk resolution below — the join engines' side filters, the cost
	// model's parameter derivation, the table scan's desc list — carries
	// this pin, so a concurrent append batch is either entirely visible
	// (committed before this line) or entirely invisible.
	asOf := ex.Cluster.Catalog.Version()

	l := &Lowered{AsOf: asOf}
	var node plan.Node
	if v, ok := ex.View(s.From); ok {
		req, err := v.Request(s.Where, false)
		if err != nil {
			return nil, err
		}
		req.AsOf = asOf
		req.Project = ex.pushdownFor(v, needed)
		req.Trace = ex.Trace
		eng, dec, err := ex.Planner.Choose(ex.Cluster, req)
		if err != nil {
			return nil, err
		}
		jn, err := plan.NewJoin(eng, ex.Cluster, v.Name, req, &plan.JoinCost{
			Chosen: dec.Chosen, Forced: dec.Forced, Params: dec.Params,
			PredictIJ: dec.PredictIJ, PredictGH: dec.PredictGH,
			Calibrated: dec.Calibrated, Constants: dec.Constants,
		})
		if err != nil {
			return nil, err
		}
		l.Decision, l.Join = dec, jn
		node = jn
	} else {
		sn, err := plan.NewScan(ex.Cluster, s.From, s.Where, needed, asOf)
		if err != nil {
			return nil, err
		}
		node = sn
	}

	outID := tuple.ID{Table: -1, Chunk: -1}
	if len(aggs) > 0 {
		// Partitioned aggregation (one partial per join part, merged in
		// part order) replicates the materialized per-joiner fold; a
		// scan's rows were a single input there.
		an, err := plan.NewAggregate(node, aggs, s.GroupBy, s.Having, l.Join != nil)
		if err != nil {
			return nil, err
		}
		node = an
		outID = tuple.ID{Table: -3, Chunk: -1}
	} else if !star {
		pn, err := plan.NewProject(node, plain)
		if err != nil {
			return nil, err
		}
		node = pn
	}
	if len(s.OrderBy) > 0 {
		sn, err := plan.NewSort(node, s.OrderBy)
		if err != nil {
			return nil, err
		}
		node = sn
	}
	if s.Limit >= 0 {
		node = plan.NewLimit(node, s.Limit)
	}
	l.Plan = &plan.Plan{Root: node, OutID: outID, Trace: ex.Trace, Metrics: ex.Metrics}
	if ex.MemBudget > 0 {
		l.Plan.SetBudget(ex.MemBudget)
	}
	return l, nil
}

// ExecLowered runs a lowered plan and packages the output like Exec.
// Each call builds a fresh operator tree, so a Lowered can be executed
// repeatedly.
func (ex *Executor) ExecLowered(ctx context.Context, l *Lowered) (*Output, error) {
	rows, res, err := plan.Run(ctx, l.Plan)
	if err != nil {
		return nil, err
	}
	// Feed the run's measured costs back into the planner's calibration
	// layer, closing the decide→run→observe loop for the SQL path.
	ex.Planner.Observe(res)
	return &Output{Rows: rows, Result: res, Decision: l.Decision}, nil
}
