package planner

import (
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/oilres"
	"sciview/internal/partition"
)

// fastPlanner returns a planner with fixed alphas (no calibration noise).
func fastPlanner() *Planner {
	p := New()
	p.AlphaBuild = 80e-9
	p.AlphaLookup = 40e-9
	return p
}

func makeCluster(t *testing.T, grid, p, q partition.Dims, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: p, RightPart: q,
		StorageNodes: cfg.StorageNodes, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cfg, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func req() engine.Request {
	return engine.Request{
		LeftTable: "T1", RightTable: "T2",
		JoinAttrs: []string{"x", "y", "z"},
	}
}

func TestParamsFor(t *testing.T) {
	cfg := cluster.Config{
		StorageNodes: 2, ComputeNodes: 3,
		DiskReadBw: 30e6, DiskWriteBw: 25e6, NetBw: 12e6,
		CacheBytes: 8 << 20,
	}
	cl := makeCluster(t, partition.D(16, 16, 8), partition.D(8, 8, 8), partition.D(4, 4, 8), cfg)
	p := fastPlanner()
	params, err := p.ParamsFor(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if params.T != 16*16*8 {
		t.Errorf("T = %d", params.T)
	}
	if params.CR != 8*8*8 || params.CS != 4*4*8 {
		t.Errorf("c_R=%d c_S=%d", params.CR, params.CS)
	}
	wantNe := partition.NumEdges(partition.D(16, 16, 8), partition.D(8, 8, 8), partition.D(4, 4, 8))
	if params.Ne != wantNe {
		t.Errorf("n_e = %d, want %d", params.Ne, wantNe)
	}
	if params.RSR != 16 || params.RSS != 16 {
		t.Errorf("record sizes = %d, %d", params.RSR, params.RSS)
	}
	if params.Ns != 2 || params.Nj != 3 {
		t.Errorf("nodes = %d, %d", params.Ns, params.Nj)
	}
	// Net aggregate = min(ns,nj)·NetBw = 2·12e6.
	if params.NetBw != 24e6 {
		t.Errorf("NetBw = %g", params.NetBw)
	}
}

func TestParamsRespectRange(t *testing.T) {
	cfg := cluster.Config{StorageNodes: 2, ComputeNodes: 2, CacheBytes: 8 << 20}
	cl := makeCluster(t, partition.D(16, 16, 8), partition.D(4, 4, 8), partition.D(4, 4, 8), cfg)
	p := fastPlanner()
	r := req()
	r.Filter.Attrs = []string{"x"}
	r.Filter.Lo = []float64{0}
	r.Filter.Hi = []float64{7}
	params, err := p.ParamsFor(cl, r)
	if err != nil {
		t.Fatal(err)
	}
	if params.T != 8*16*8 {
		t.Errorf("ranged T = %d, want %d", params.T, 8*16*8)
	}
}

func TestChooseMatchesModels(t *testing.T) {
	cfg := cluster.Config{
		StorageNodes: 2, ComputeNodes: 2,
		DiskReadBw: 20e6, DiskWriteBw: 20e6, NetBw: 50e6,
		CacheBytes: 32 << 20,
	}
	// Degree-1 graph: IJ should win.
	cl := makeCluster(t, partition.D(16, 16, 8), partition.D(4, 4, 8), partition.D(4, 4, 8), cfg)
	p := fastPlanner()
	eng, dec, err := p.Choose(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen != "ij" || eng.Name() != "ij" {
		t.Errorf("chose %s (IJ %v vs GH %v)", dec.Chosen,
			dec.PredictIJ.Total, dec.PredictGH.Total)
	}
	// Extreme connectivity: left split into thin columns, right into large
	// slabs => each right sub-table overlaps 256 lefts, so its records are
	// probed 256 times. IJ's lookup term explodes => GH.
	cl2 := makeCluster(t, partition.D(16, 16, 8), partition.D(1, 1, 8), partition.D(16, 16, 1), cfg)
	eng2, dec2, err := p.Choose(cl2, req())
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Chosen != "gh" || eng2.Name() != "gh" {
		t.Errorf("chose %s for high-degree graph (IJ %v vs GH %v)", dec2.Chosen,
			dec2.PredictIJ.Total, dec2.PredictGH.Total)
	}
}

func TestForce(t *testing.T) {
	cfg := cluster.Config{StorageNodes: 1, ComputeNodes: 1, CacheBytes: 8 << 20}
	cl := makeCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), cfg)
	p := fastPlanner()
	p.Force = "gh"
	eng, dec, err := p.Choose(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "gh" || !dec.Forced {
		t.Errorf("force failed: %s forced=%v", eng.Name(), dec.Forced)
	}
	p.Force = "zzz"
	if _, _, err := p.Choose(cl, req()); err == nil {
		t.Error("unknown forced engine accepted")
	}
}

func TestRunExecutes(t *testing.T) {
	cfg := cluster.Config{StorageNodes: 2, ComputeNodes: 2, CacheBytes: 16 << 20}
	cl := makeCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), cfg)
	res, dec, err := fastPlanner().Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 8*8*4 {
		t.Errorf("tuples = %d", res.Tuples)
	}
	if dec.Chosen != res.Engine {
		t.Errorf("decision %s but engine ran %s", dec.Chosen, res.Engine)
	}
}

func TestParamsErrors(t *testing.T) {
	cfg := cluster.Config{StorageNodes: 1, ComputeNodes: 1, CacheBytes: 8 << 20}
	cl := makeCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), cfg)
	p := fastPlanner()
	bad := req()
	bad.LeftTable = "nope"
	if _, err := p.ParamsFor(cl, bad); err == nil {
		t.Error("unknown table accepted")
	}
	empty := req()
	empty.Filter.Attrs = []string{"x"}
	empty.Filter.Lo = []float64{1000}
	empty.Filter.Hi = []float64{2000}
	if _, err := p.ParamsFor(cl, empty); err == nil {
		t.Error("empty range accepted")
	}
}

func TestCalibrationRunsOnce(t *testing.T) {
	cfg := cluster.Config{StorageNodes: 1, ComputeNodes: 1, CacheBytes: 8 << 20}
	cl := makeCluster(t, partition.D(4, 4, 2), partition.D(2, 2, 2), partition.D(2, 2, 2), cfg)
	p := New() // no alphas set: must self-calibrate
	if _, err := p.ParamsFor(cl, req()); err != nil {
		t.Fatal(err)
	}
	if p.AlphaBuild <= 0 || p.AlphaLookup <= 0 {
		t.Error("calibration did not run")
	}
	a, b := p.AlphaBuild, p.AlphaLookup
	if _, err := p.ParamsFor(cl, req()); err != nil {
		t.Fatal(err)
	}
	if p.AlphaBuild != a || p.AlphaLookup != b {
		t.Error("calibration re-ran")
	}
}

func TestParamsUseProjectedRecordSizes(t *testing.T) {
	cfg := cluster.Config{StorageNodes: 1, ComputeNodes: 1, CacheBytes: 8 << 20}
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 4), RightPart: partition.D(4, 4, 4),
		LeftMeasures:  []string{"oilp", "a", "b", "c", "d"},
		RightMeasures: []string{"wp", "e", "f", "g", "h"},
		StorageNodes:  1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cfg, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	p := fastPlanner()
	full, err := p.ParamsFor(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if full.RSR != 32 || full.RSS != 32 {
		t.Fatalf("full record sizes = %d, %d", full.RSR, full.RSS)
	}
	narrow := req()
	narrow.Project = []string{"wp"}
	proj, err := p.ParamsFor(cl, narrow)
	if err != nil {
		t.Fatal(err)
	}
	// Left keeps only join keys (12 B); right keeps keys + wp (16 B).
	if proj.RSR != 12 || proj.RSS != 16 {
		t.Errorf("projected record sizes = %d, %d, want 12, 16", proj.RSR, proj.RSS)
	}
}
