package planner

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"sciview/internal/cluster"
	"sciview/internal/fault"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/retry"
)

// Property-based differential harness: a seeded generator produces random
// SELECTs over randomized oil-reservoir datasets, and each query executes
// along several legs that must agree —
//
//   - streaming vs materialized, per engine (the golden oracle relation);
//   - streaming with random prefetch/parallelism knobs vs the default;
//   - IJ vs GH cross-engine (sorted multiset, or byte-exact when the query
//     pins a total order / is an order-insensitive aggregate);
//   - a fault-injected leg (TestDifferentialUnderFaults) where fresh
//     op-counted injectors give materialized and streaming runs identical
//     fault schedules.
//
// The generator only emits queries whose comparison mode is decidable:
// aggregates use COUNT/MIN/MAX (never SUM/AVG, whose float accumulation
// order differs across engines), and LIMIT only follows a total ORDER BY.

// genDiffWhere returns a random conjunction of range predicates over the
// coordinate axes (possibly empty). Bounds stay inside the grid, so no
// generated query has an empty result.
func genDiffWhere(r *rand.Rand, dims [3]int) string {
	axes := []string{"x", "y", "z"}
	var preds []string
	for i, a := range axes {
		switch r.Intn(4) {
		case 0:
			lo := r.Intn(dims[i])
			hi := lo + r.Intn(dims[i]-lo)
			preds = append(preds, fmt.Sprintf("%s BETWEEN %d AND %d", a, lo, hi))
		case 1:
			preds = append(preds, fmt.Sprintf("%s < %d", a, 1+r.Intn(dims[i])))
		}
	}
	if len(preds) == 0 {
		return ""
	}
	return " WHERE " + strings.Join(preds, " AND ")
}

// genDiffQuery returns one random SELECT over the join view V1 plus
// whether its output order is pinned (total ORDER BY or order-insensitive
// aggregate), in which case even cross-engine comparisons are byte-exact.
func genDiffQuery(r *rand.Rand, dims [3]int) (string, bool) {
	where := genDiffWhere(r, dims)
	if r.Intn(4) == 0 {
		// Aggregate leg: COUNT/MIN/MAX are insensitive to arrival order,
		// and grouping by one coordinate with a matching ORDER BY pins the
		// output totally.
		gb := []string{"x", "y", "z"}[r.Intn(3)]
		sql := fmt.Sprintf("SELECT %s, COUNT(*), MIN(wp), MAX(oilp) FROM V1%s GROUP BY %s", gb, where, gb)
		if r.Intn(2) == 0 {
			sql += fmt.Sprintf(" HAVING COUNT(*) >= %d", 1+r.Intn(4))
		}
		return sql + " ORDER BY " + gb, true
	}
	proj := [...]string{"*", "x, y, z, wp", "x, y, z, oilp, wp", "x, y, z"}[r.Intn(4)]
	sql := fmt.Sprintf("SELECT %s FROM V1%s", proj, where)
	if r.Intn(2) == 0 {
		// (x, y, z) identifies a join row, so this ORDER BY is total and
		// LIMIT is deterministic under it.
		sql += " ORDER BY x, y, z"
		if r.Intn(2) == 0 {
			sql += fmt.Sprintf(" LIMIT %d", r.Intn(40))
		}
		return sql, true
	}
	return sql, false
}

// diffConfigs are the dataset shapes the generator draws from; seeds and
// cluster sizes are randomized on top.
var diffConfigs = []oilres.Config{
	{Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4)},
	{Grid: partition.D(6, 6, 6), LeftPart: partition.D(3, 2, 3), RightPart: partition.D(2, 3, 2)},
	{Grid: partition.D(8, 4, 4), LeftPart: partition.D(2, 2, 2), RightPart: partition.D(4, 2, 1)},
}

func genDiffDataset(t *testing.T, r *rand.Rand) (*oilres.Dataset, oilres.Config, [3]int) {
	t.Helper()
	cfg := diffConfigs[r.Intn(len(diffConfigs))]
	cfg.StorageNodes = 2 + r.Intn(2)
	cfg.Seed = 1 + r.Int63n(1<<30)
	ds, err := oilres.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cfg, [3]int{cfg.Grid.X, cfg.Grid.Y, cfg.Grid.Z}
}

func diffExecutor(t *testing.T, ds *oilres.Dataset, cfg oilres.Config, nj int, force string) *Executor {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		StorageNodes: cfg.StorageNodes, ComputeNodes: nj, CacheBytes: 16 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cl)
	ex.Planner.AlphaBuild = 80e-9
	ex.Planner.AlphaLookup = 40e-9
	ex.Planner.Force = force
	if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
		t.Fatal(err)
	}
	return ex
}

// diffCompare asserts two legs produced the same result: identical schema
// and rows, sorted canonically first unless exact.
func diffCompare(t *testing.T, sql, legs string, a, b *Output, exact bool) {
	t.Helper()
	an, bn := a.Rows.Schema.Names(), b.Rows.Schema.Names()
	if fmt.Sprint(an) != fmt.Sprint(bn) {
		t.Fatalf("%s [%s]: schema %v vs %v", sql, legs, an, bn)
	}
	ar, br := goldenRows(a.Rows), goldenRows(b.Rows)
	if !exact {
		sort.Strings(ar)
		sort.Strings(br)
	}
	if len(ar) != len(br) {
		t.Fatalf("%s [%s]: %d rows vs %d", sql, legs, len(ar), len(br))
	}
	for i := range ar {
		if ar[i] != br[i] {
			t.Fatalf("%s [%s]: row %d = %s vs %s", sql, legs, i, ar[i], br[i])
		}
	}
}

// runDiffLeg executes sql on ex, materialized or streaming, with optional
// engine-request knobs on the streaming leg.
func runDiffLeg(t *testing.T, ex *Executor, sql string, materialize bool, prefetch, parallelism int) *Output {
	t.Helper()
	if materialize {
		ex.Materialize = true
		defer func() { ex.Materialize = false }()
		out, err := ex.Exec(sql)
		if err != nil {
			t.Fatalf("%s [materialized]: %v", sql, err)
		}
		return out
	}
	l, err := ex.Lower(sql)
	if err != nil {
		t.Fatalf("%s [lower]: %v", sql, err)
	}
	if l.Join != nil {
		l.Join.Req.Prefetch = prefetch
		l.Join.Req.Parallelism = parallelism
	}
	out, err := ex.ExecLowered(context.Background(), l)
	if err != nil {
		t.Fatalf("%s [streaming]: %v", sql, err)
	}
	return out
}

// TestDifferentialRandomQueries is the property harness' fault-free body:
// per seed, one randomized dataset and a batch of generated queries, each
// run along the streaming/materialized, knob, and cross-engine legs.
func TestDifferentialRandomQueries(t *testing.T) {
	const queriesPerSeed = 6
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed * 9176))
			ds, cfg, dims := genDiffDataset(t, r)
			nj := 1 + r.Intn(3)
			exIJ := diffExecutor(t, ds, cfg, nj, "ij")
			exGH := diffExecutor(t, ds, cfg, nj, "gh")
			for q := 0; q < queriesPerSeed; q++ {
				sql, pinned := genDiffQuery(r, dims)
				matIJ := runDiffLeg(t, exIJ, sql, true, 0, 0)
				strIJ := runDiffLeg(t, exIJ, sql, false, 0, 0)
				matGH := runDiffLeg(t, exGH, sql, true, 0, 0)
				strGH := runDiffLeg(t, exGH, sql, false, 0, 0)

				// Streaming must reproduce materialized: byte-exact under
				// IJ (deterministic engine), sorted multiset under GH
				// unless the query pins a total order.
				diffCompare(t, sql, "ij stream vs mat", matIJ, strIJ, true)
				diffCompare(t, sql, "gh stream vs mat", matGH, strGH, pinned)

				// Scheduling knobs change timing, never bytes.
				pf, par := r.Intn(3), r.Intn(3)
				knob := runDiffLeg(t, exIJ, sql, false, pf, par)
				diffCompare(t, fmt.Sprintf("%s [prefetch=%d parallel=%d]", sql, pf, par),
					"ij knobs vs mat", matIJ, knob, true)

				// Cross-engine: the two QES implementations agree on the
				// row multiset (and on bytes when the order is pinned).
				diffCompare(t, sql, "ij vs gh", matIJ, matGH, pinned)
			}
		})
	}
}

// TestDifferentialUnderFaults adds the fault-injected leg: generated
// queries over a replicated dataset, streaming vs materialized under an
// op-counted chaos schedule. Fresh clusters per leg give both runs the
// identical fault sequence, so recovery must be byte-invisible.
func TestDifferentialUnderFaults(t *testing.T) {
	cfg := oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(4, 4, 2), RightPart: partition.D(2, 2, 4),
		StorageNodes: 3, Seed: 23,
	}
	ds, err := oilres.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := oilres.Replicate(ds.Catalog, ds.Stores, 2); err != nil {
		t.Fatal(err)
	}
	newEx := func(t *testing.T, faults string) *Executor {
		inj, err := fault.Parse(faults)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			StorageNodes: 3, ComputeNodes: 2, CacheBytes: 16 << 20,
			Faults:           inj,
			Retry:            retry.Policy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond},
			BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond,
		}, ds.Catalog, ds.Stores)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(cl)
		ex.Planner.AlphaBuild = 80e-9
		ex.Planner.AlphaLookup = 40e-9
		ex.Planner.Force = "ij"
		if _, err := ex.Exec("CREATE VIEW V1 AS SELECT * FROM T1 JOIN T2 ON (x, y, z)"); err != nil {
			t.Fatal(err)
		}
		return ex
	}
	const faults = "crash:storage-1:fetch:5,crash:compute-0:edge:3"
	r := rand.New(rand.NewSource(4242))
	dims := [3]int{8, 8, 4}
	for q := 0; q < 4; q++ {
		sql, _ := genDiffQuery(r, dims)
		mat := runDiffLeg(t, newEx(t, faults), sql, true, 0, 0)
		str := runDiffLeg(t, newEx(t, faults), sql, false, 0, 0)
		diffCompare(t, sql, "faulted stream vs mat", mat, str, true)
	}
}
