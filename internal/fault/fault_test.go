package fault

import (
	"errors"
	"testing"
	"time"

	"sciview/internal/transport"
)

func TestCrashAfterN(t *testing.T) {
	in := New(Rule{Node: "storage-1", Op: OpFetch, Action: Crash, After: 3})
	for i := 0; i < 2; i++ {
		if err := in.Op("storage-1", OpFetch); err != nil {
			t.Fatalf("op %d failed early: %v", i+1, err)
		}
	}
	err := in.Op("storage-1", OpFetch)
	node, ok := IsNodeDown(err)
	if !ok || node != "storage-1" {
		t.Fatalf("op 3: err = %v, want NodeDownError{storage-1}", err)
	}
	if !transport.IsRetryable(err) {
		t.Fatal("node-down error must classify as retryable (failover target)")
	}
	if !in.Down("storage-1") {
		t.Fatal("Down() = false after crash")
	}
	// Every later op fails too, and other nodes are unaffected.
	if err := in.Op("storage-1", OpRead); err == nil {
		t.Fatal("crashed node accepted a later op")
	}
	if err := in.Op("storage-0", OpFetch); err != nil {
		t.Fatalf("healthy node faulted: %v", err)
	}
	if s := in.Stats(); s.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", s.Crashes)
	}
}

func TestDropEveryN(t *testing.T) {
	in := New(Rule{Node: "*", Op: OpFetch, Action: Drop, Every: 3})
	var failures int
	for i := 0; i < 9; i++ {
		if err := in.Op("storage-0", OpFetch); err != nil {
			failures++
			if !errors.Is(err, transport.ErrUnavailable) {
				t.Fatalf("drop error %v lacks ErrUnavailable", err)
			}
		}
	}
	if failures != 3 {
		t.Fatalf("failures = %d over 9 ops with every=3, want 3", failures)
	}
	if s := in.Stats(); s.Drops != 3 {
		t.Fatalf("Drops = %d, want 3", s.Drops)
	}
}

func TestDelayEveryN(t *testing.T) {
	in := New(Rule{Node: "compute-0", Op: OpWrite, Action: Delay, Every: 2, Delay: 5 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := in.Op("compute-0", OpWrite); err != nil {
			t.Fatalf("delay rule returned error: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("4 ops with every-2nd delayed 5ms took only %v", elapsed)
	}
	if s := in.Stats(); s.Delays != 2 {
		t.Fatalf("Delays = %d, want 2", s.Delays)
	}
}

func TestRuleScoping(t *testing.T) {
	in := New(Rule{Node: "storage-0", Op: OpFetch, Action: Drop, Every: 1})
	if err := in.Op("storage-0", OpRead); err != nil {
		t.Fatalf("op outside rule scope faulted: %v", err)
	}
	if err := in.Op("storage-1", OpFetch); err != nil {
		t.Fatalf("node outside rule scope faulted: %v", err)
	}
	if err := in.Op("storage-0", OpFetch); err == nil {
		t.Fatal("matching op not dropped")
	}
}

func TestKillAndRevive(t *testing.T) {
	in := New()
	in.Kill("compute-1")
	if err := in.Op("compute-1", OpEdge); err == nil {
		t.Fatal("killed node accepted op")
	}
	if got := in.Downed(); len(got) != 1 || got[0] != "compute-1" {
		t.Fatalf("Downed() = %v, want [compute-1]", got)
	}
	in.Revive("compute-1")
	if err := in.Op("compute-1", OpEdge); err != nil {
		t.Fatalf("revived node still failing: %v", err)
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if err := in.Op("storage-0", OpFetch); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	if in.Down("storage-0") {
		t.Fatal("nil injector reports node down")
	}
	in.Kill("storage-0") // must not panic
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats = %+v", s)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("crash:storage-1:fetch:5, drop:*:call:7, delay:compute-0:write:2:3ms")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(in.rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(in.rules))
	}
	want := []Rule{
		{Node: "storage-1", Op: "fetch", Action: Crash, After: 5},
		{Node: "*", Op: "call", Action: Drop, Every: 7},
		{Node: "compute-0", Op: "write", Action: Delay, Every: 2, Delay: 3 * time.Millisecond},
	}
	for i, w := range want {
		if in.rules[i] != w {
			t.Fatalf("rule %d = %+v, want %+v", i, in.rules[i], w)
		}
	}
	if _, err := Parse(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{"boom:storage-0:fetch:1", "crash:storage-0:fetch", "drop:a:b:0", "delay:a:b:1:zz"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestTransportHook(t *testing.T) {
	in := New(Rule{Node: "storage-2", Op: OpCall, Action: Drop, Every: 1})
	if _, err := in.Fault("bds-2", "subtable"); err == nil {
		t.Fatal("bds-2 call not dropped")
	}
	if _, err := in.Fault("bds-0", "subtable"); err != nil {
		t.Fatalf("bds-0 faulted: %v", err)
	}
	// Non-BDS services are outside the schedule's node namespace.
	if _, err := in.Fault("query", "submit"); err != nil {
		t.Fatalf("unrelated service faulted: %v", err)
	}
}

func TestCrashDeterminism(t *testing.T) {
	// Two injectors with the same schedule crash at the same op count.
	mk := func() int {
		in := New(Rule{Node: "storage-0", Op: OpFetch, Action: Crash, After: 7})
		for i := 1; ; i++ {
			if err := in.Op("storage-0", OpFetch); err != nil {
				return i
			}
		}
	}
	if a, b := mk(), mk(); a != b || a != 7 {
		t.Fatalf("crash points %d and %d, want both 7", a, b)
	}
}

func TestRestartRule(t *testing.T) {
	in := New(Rule{Node: "storage-1", Op: OpFetch, Action: Restart, After: 3, DownFor: 4})
	var revived []string
	in.SetOnRestart(func(node string) { revived = append(revived, node) })

	for i := 0; i < 2; i++ {
		if err := in.Op("storage-1", OpFetch); err != nil {
			t.Fatalf("op %d failed early: %v", i+1, err)
		}
	}
	err := in.Op("storage-1", OpFetch)
	if node, ok := IsNodeDown(err); !ok || node != "storage-1" {
		t.Fatalf("op 3: err = %v, want NodeDownError{storage-1}", err)
	}
	if !in.Down("storage-1") {
		t.Fatal("Down() = false after restart rule crashed the node")
	}
	// Downtime is measured in cluster-wide operations: 4 more ops anywhere
	// revive the node. Ops addressed to the down node count too.
	for i := 0; i < 3; i++ {
		if err := in.Op("storage-0", OpRead); err != nil {
			t.Fatalf("healthy node faulted: %v", err)
		}
		if !in.Down("storage-1") {
			t.Fatalf("node revived after only %d of 4 ops", i+1)
		}
	}
	if err := in.Op("storage-0", OpRead); err != nil {
		t.Fatalf("healthy node faulted: %v", err)
	}
	if in.Down("storage-1") {
		t.Fatal("node still down after DownFor ops elapsed")
	}
	if len(revived) != 1 || revived[0] != "storage-1" {
		t.Fatalf("restart callback saw %v, want [storage-1]", revived)
	}
	// The revived node serves again and does NOT immediately re-crash:
	// the rule fired at exactly After and never again.
	for i := 0; i < 5; i++ {
		if err := in.Op("storage-1", OpFetch); err != nil {
			t.Fatalf("revived node faulted on op %d: %v", i+1, err)
		}
	}
	s := in.Stats()
	if s.Crashes != 1 || s.Restarts != 1 {
		t.Fatalf("stats = %+v, want 1 crash / 1 restart", s)
	}
}

func TestRestartDefaultDowntime(t *testing.T) {
	// 4-field restart clause: DownFor defaults to After.
	in, err := Parse("restart:storage-0:fetch:2")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	in.Op("storage-0", OpFetch)
	if err := in.Op("storage-0", OpFetch); err == nil {
		t.Fatal("node not crashed at op 2")
	}
	in.Op("storage-1", OpFetch)
	if !in.Down("storage-0") {
		t.Fatal("revived after 1 op, want downtime 2")
	}
	in.Op("storage-1", OpFetch)
	if in.Down("storage-0") {
		t.Fatal("still down after default downtime elapsed")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	// Every rule kind survives Spec() -> Parse() -> Spec().
	specs := []string{
		"crash:storage-1:fetch:5",
		"drop:*:call:7",
		"delay:compute-0:write:2:3ms",
		"restart:storage-2:fetch:10:25",
		"crash:storage-0:read:1,drop:storage-1:fetch:3,restart:*:call:4:4",
	}
	for _, spec := range specs {
		in, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		got := in.Spec()
		in2, err := Parse(got)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", got, err)
		}
		if got2 := in2.Spec(); got2 != got {
			t.Fatalf("Spec not stable: %q -> %q -> %q", spec, got, got2)
		}
		if len(in2.rules) != len(in.rules) {
			t.Fatalf("%q: re-parse lost rules (%d vs %d)", spec, len(in2.rules), len(in.rules))
		}
		for i := range in.rules {
			if in2.rules[i] != in.rules[i] {
				t.Fatalf("%q rule %d: %+v != %+v", spec, i, in2.rules[i], in.rules[i])
			}
		}
	}
	// A 4-field restart renders with its defaulted downtime made explicit.
	in, err := Parse("restart:storage-0:fetch:6")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got, want := in.Spec(), "restart:storage-0:fetch:6:6"; got != want {
		t.Fatalf("Spec() = %q, want %q", got, want)
	}
	if (*Injector)(nil).Spec() != "" {
		t.Fatal("nil injector Spec() != \"\"")
	}
}

func TestParseRestartErrors(t *testing.T) {
	for _, bad := range []string{
		"restart:storage-0:fetch",       // too few fields
		"restart:storage-0:fetch:0",     // zero count
		"restart:storage-0:fetch:-2",    // negative count
		"restart:storage-0:fetch:3:0",   // zero downtime
		"restart:storage-0:fetch:3:x",   // non-numeric downtime
		"restart:storage-0:fetch:3:4:5", // too many fields
		"crash:storage-0:fetch:3:4",     // crash with restart's arity
		"drop:storage-0:fetch:3:4",      // drop with restart's arity
		"delay:storage-0:write:2:3ms:9", // delay with extra field
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}
